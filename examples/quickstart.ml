(* Quickstart: authenticated message exchange on a jammed radio network.

   A 40-node single-hop network with C = t+1 = 3 channels; the adversary
   jams 2 channels per round, aiming at the protocol's own schedule.  f-AME
   still delivers all but a t-coverable set of the requested exchanges, and
   nothing the adversary injects is ever accepted.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let t = 2 and n = 40 in
  let triples =
    [ (0, 10, "meet at dawn");
      (1, 11, "bring the keys");
      (2, 12, "channel plan B");
      (3, 13, "all clear");
      (4, 14, "rendezvous set");
      (5, 15, "confirm receipt") ]
  in
  let report = Core.exchange ~t ~n ~attack:Core.Schedule_jam triples in
  Printf.printf "f-AME on %d pairs, n=%d, t=%d, C=%d (schedule-aware jammer)\n"
    (List.length triples) n t (t + 1);
  Printf.printf "  rounds used:        %d\n" report.rounds;
  Printf.printf "  delivered:          %d\n" (List.length report.delivered);
  List.iter
    (fun ((v, w), body) -> Printf.printf "    %2d -> %-2d %S\n" v w body)
    report.delivered;
  Printf.printf "  failed (disrupted): %d\n" (List.length report.failed);
  List.iter (fun (v, w) -> Printf.printf "    %2d -> %-2d\n" v w) report.failed;
  (match report.disruption_cover with
   | Some cover ->
     Printf.printf "  disruption vertex cover: %d (guarantee: <= t = %d)\n" cover t
   | None -> ());
  Printf.printf "  all payloads authentic:  %b\n" report.authentic;
  Printf.printf "  whp machinery held:      %b\n" (not report.diverged)
