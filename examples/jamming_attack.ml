(* Why deterministic scheduling matters: the Theorem 2 attack in action.

   A purely randomized exchange protocol cannot authenticate: the adversary
   simulates each sender with a fake payload, and the receiver provably
   cannot tell them apart.  This example runs that attack against the naive
   protocol, then runs the same workload through f-AME, whose deterministic
   broadcast schedule makes every spoof collide with an honest transmission.

   Run with: dune exec examples/jamming_attack.exe *)

let () =
  let t = 3 in
  let n = 60 in
  (* 9 disjoint pairs: enough that f-AME must deliver most of them (its
     disruption graph may have vertex cover at most t = 3), while the
     adversary simulates the first t senders. *)
  let pairs = Core.Rgraph.Workload.disjoint_pairs ~n ~count:(3 * t) in
  let messages (v, w) = Printf.sprintf "secret-%d-%d" v w in
  Printf.printf "Theorem 2 attack: %d disjoint pairs, t = %d, C = %d\n\n"
    (List.length pairs) t (t + 1);
  (* Naive protocol vs the simulating adversary, many trials. *)
  let trials = 40 in
  let fooled = ref 0 and genuine = ref 0 and nothing = ref 0 in
  for trial = 1 to trials do
    let seed = Int64.of_int (trial * 7919) in
    let cfg = Core.Radio.Config.make ~seed ~n ~channels:(t + 1) ~t () in
    let adversary =
      Core.Ame.Naive.simulating_adversary
        (Core.Prng.Rng.create (Int64.of_int (trial * 104729)))
        ~pairs ~channels:(t + 1) ~budget:t
    in
    let r = Core.Ame.Naive.run ~rounds:80 ~cfg ~pairs ~messages ~adversary () in
    let attacked = List.filteri (fun i _ -> i < t) pairs in
    List.iter
      (fun (pair, verdict) ->
        if List.mem pair attacked then
          match verdict with
          | Core.Ame.Naive.Fooled -> incr fooled
          | Core.Ame.Naive.Genuine -> incr genuine
          | Core.Ame.Naive.Nothing -> incr nothing)
      r.verdicts
  done;
  (* The simulating adversary targets the first t pairs; those are the
     pair-trials whose outputs Theorem 2 constrains. *)
  let total = trials * t in
  Printf.printf "Naive randomized exchange (%d attacked pair-trials):\n" total;
  Printf.printf "  accepted the FAKE payload:    %d (%.0f%%)\n" !fooled
    (100.0 *. float_of_int !fooled /. float_of_int total);
  Printf.printf "  accepted the genuine payload: %d (%.0f%%)\n" !genuine
    (100.0 *. float_of_int !genuine /. float_of_int total);
  Printf.printf "  accepted nothing:             %d\n\n" !nothing;
  (* The same workload through f-AME: spoofs always collide. *)
  let cfg = Core.Radio.Config.make ~seed:5L ~n ~channels:(t + 1) ~t ~record_transcript:true () in
  let adversary _board =
    Core.Ame.Naive.simulating_adversary (Core.Prng.Rng.create 99L) ~pairs ~channels:(t + 1)
      ~budget:t
  in
  let o = Core.Ame.Fame.run ~cfg ~pairs ~messages ~adversary () in
  let bad =
    List.filter (fun (pair, body) -> body <> messages pair) o.Core.Ame.Fame.delivered
  in
  Printf.printf "f-AME under the same simulating adversary:\n";
  Printf.printf "  delivered: %d / %d\n"
    (List.length o.Core.Ame.Fame.delivered)
    (List.length pairs);
  Printf.printf "  fake payloads accepted: %d (guarantee: 0)\n" (List.length bad);
  Printf.printf "  spoofed frames that reached any listener: %d\n"
    o.Core.Ame.Fame.engine.Core.Radio.Engine.stats.Core.Radio.Transcript.Stats.spoofed_deliveries
