(* Piconet pairing without pre-shared secrets.

   The scenario from the paper's introduction: a roomful of devices wants a
   Bluetooth-style piconet, but there is no passkey, no PKI — and someone is
   actively jamming.  The devices bootstrap a shared group key from nothing
   (Section 6), then run a long-lived encrypted chat over the emulated
   secure channel (Section 7).

   Run with: dune exec examples/piconet_pairing.exe *)

let () =
  let t = 1 and n = 20 in
  Printf.printf "Piconet of %d devices, adversary on %d of %d channels.\n\n" n t (t + 1);
  (* Phase 1: establish the group key from scratch under jamming. *)
  let gk = Core.establish_group_key ~seed:42L ~t ~n ~attack:Core.Random_jam () in
  Printf.printf "Group key setup: %d rounds\n" gk.setup_rounds;
  Printf.printf "  devices holding the agreed key: %d / %d (guarantee: >= n - t = %d)\n"
    gk.agreed_holders n (n - t);
  Printf.printf "  devices holding a wrong key:    %d (guarantee: 0)\n" gk.wrong_holders;
  Printf.printf "  devices aware they lack it:     %d\n\n" gk.ignorant;
  (* Phase 2: chat over the emulated secure channel using that key. *)
  match gk.group_key_of 5 with
  | None -> Printf.printf "device 5 missed the key; pick another initiator\n"
  | Some key ->
    let chat =
      [ (0, 5, "hi everyone, channel is up");
        (1, 9, "reading you loud and clear");
        (2, 14, "same here despite the jammer");
        (3, 5, "starting file transfer") ]
    in
    let ch = Core.open_channel ~seed:43L ~key ~t ~n ~attack:Core.Random_jam chat in
    Printf.printf "Secure channel: %d real rounds per message\n" ch.rounds_per_message;
    List.iter
      (fun (er, sender, msg, receivers) ->
        Printf.printf "  [er %d] device %d: %-35S heard by %d devices\n" er sender msg receivers)
      ch.deliveries;
    Printf.printf "  secrecy (no plaintext on air): %b\n" ch.secrecy_ok;
    Printf.printf "  authentication (no forgeries): %b\n" ch.authentication_ok
