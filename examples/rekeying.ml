(* Re-keying after a device compromise.

   The paper's introduction motivates on-air key establishment partly by the
   need to "re-key dynamically, for example, after the detection of a
   compromised device".  This example establishes a group key from nothing,
   then declares two devices compromised and rotates the key without
   re-running the expensive f-AME phase: the surviving pairwise keys carry
   fresh leader proposals, the compromised devices are cut out, and the old
   group key becomes worthless to them.

   Run with: dune exec examples/rekeying.exe *)

let () =
  let t = 1 and n = 20 in
  let cfg =
    Core.Radio.Config.make ~n ~channels:(t + 1) ~t ~seed:2024L ~max_rounds:50_000_000 ()
  in
  Printf.printf "Network of %d devices, t = %d.\n\n" n t;
  (* Initial setup: full Section 6 protocol. *)
  let setup =
    Core.Groupkey.Protocol.run ~cfg
      ~fame_adversary:(fun board ->
        Core.Ame.Attacks.schedule_jammer board ~channels:(t + 1) ~budget:t
          ~prefer:Core.Ame.Attacks.Prefer_edges)
      ~hop_adversary:
        (Core.Radio.Adversary.random_jammer (Core.Prng.Rng.create 9L) ~channels:(t + 1)
           ~budget:t)
      ()
  in
  Printf.printf "Initial setup: %d rounds, %d/%d devices hold the group key.\n"
    setup.Core.Groupkey.Protocol.total_rounds setup.Core.Groupkey.Protocol.agreed_key_holders
    n;
  (* Devices 7 and 12 are found compromised. *)
  let compromised = [ 7; 12 ] in
  Printf.printf "\nDevices %s compromised -- rotating the key.\n"
    (String.concat " and " (List.map string_of_int compromised));
  let rk =
    Core.Groupkey.Rekey.run ~cfg ~previous:setup ~compromised
      ~hop_adversary:
        (Core.Radio.Adversary.random_jammer (Core.Prng.Rng.create 10L) ~channels:(t + 1)
           ~budget:t)
      ()
  in
  Printf.printf "Re-key: %d rounds (%.0f%% of a full setup).\n" rk.Core.Groupkey.Rekey.rounds
    (100.0
    *. float_of_int rk.Core.Groupkey.Rekey.rounds
    /. float_of_int setup.Core.Groupkey.Protocol.total_rounds);
  Printf.printf "  surviving devices on the new key: %d / %d\n"
    rk.Core.Groupkey.Rekey.agreed_key_holders
    (n - List.length compromised);
  Printf.printf "  compromised devices that got it:  %d (guarantee: 0)\n"
    rk.Core.Groupkey.Rekey.excluded_with_key;
  (* The rotated key runs the secure channel; the compromised devices are
     now locked out like any outsider. *)
  match rk.Core.Groupkey.Rekey.group_key.(0) with
  | None -> Printf.printf "device 0 missed the new key\n"
  | Some key ->
    let holders =
      List.filter
        (fun i -> rk.Core.Groupkey.Rekey.group_key.(i) = Some key)
        (List.init n Fun.id)
    in
    let spec = Core.Secure_channel.Service.make_spec ~key ~cfg () in
    let o =
      Core.Secure_channel.Service.run_workload ~cfg ~key_holders:holders ~spec
        ~sends:[ (0, 0, "post-rotation traffic") ]
        ~adversary:
          (Core.Radio.Adversary.random_jammer (Core.Prng.Rng.create 11L) ~channels:(t + 1)
             ~budget:t)
        ()
    in
    let d = List.hd o.Core.Secure_channel.Service.deliveries in
    Printf.printf "\nPost-rotation broadcast heard by %d devices;\n"
      (List.length d.Core.Secure_channel.Service.received_by);
    Printf.printf "compromised devices received it: %b\n"
      (List.exists (fun c -> List.mem c d.Core.Secure_channel.Service.received_by) compromised)
