(* The Section 5.6 optimization: constant-size frames.

   Basic f-AME broadcasts whole message vectors, so a node with many
   destinations puts Theta(n) payloads in one frame.  The optimized protocol
   gossips individual messages tagged with reconstruction hashes, then uses
   f-AME only to authenticate a constant-size vector signature — even while
   a spoofer floods the gossip phase with fake candidates.

   Run with: dune exec examples/message_size.exe *)

let () =
  let t = 1 in
  let n = 24 in
  (* Four broadcasters each send to six destinations: vectors are large
     (6 payloads per frame in basic f-AME) while the exchange graph's vertex
     cover (4) comfortably exceeds t, so the adversary cannot blank it. *)
  let sources = [ 0; 1; 2; 3 ] in
  let dests = [ 10; 11; 12; 13; 14; 15 ] in
  let pairs = List.concat_map (fun v -> List.map (fun w -> (v, w)) dests) sources in
  let messages (v, w) = Printf.sprintf "bulk-payload-%02d-%02d-%s" v w (String.make 16 'x') in
  let cfg = Core.Radio.Config.make ~seed:9L ~n ~channels:(t + 1) ~t () in
  let fame_adversary board =
    Core.Ame.Attacks.schedule_jammer board ~channels:(t + 1) ~budget:t
      ~prefer:Core.Ame.Attacks.Any
  in
  (* Basic f-AME: the hub's vector rides in one frame. *)
  let basic = Core.Ame.Fame.run ~cfg ~pairs ~messages ~adversary:fame_adversary () in
  Printf.printf "Basic f-AME:     delivered %d/%d, largest honest frame %4d bytes, %6d rounds\n"
    (List.length basic.Core.Ame.Fame.delivered)
    (List.length pairs)
    basic.Core.Ame.Fame.engine.Core.Radio.Engine.stats.Core.Radio.Transcript.Stats.max_payload
    basic.Core.Ame.Fame.engine.Core.Radio.Engine.rounds_used;
  (* Optimized: gossip + reconstruction + vector signatures, spoof-flooded. *)
  let compact =
    Core.Ame.Compact.run ~cfg ~pairs ~messages
      ~gossip_adversary:(fun cal ->
        Core.Ame.Compact.chain_spoofer (Core.Prng.Rng.create 17L) cal ~channels:(t + 1)
          ~budget:t)
      ~fame_adversary ()
  in
  Printf.printf "Optimized (5.6): delivered %d/%d, largest honest frame %4d bytes, %6d rounds\n"
    (List.length compact.Core.Ame.Compact.delivered)
    (List.length pairs) compact.Core.Ame.Compact.max_honest_payload
    (compact.Core.Ame.Compact.gossip_engine.Core.Radio.Engine.rounds_used
    + compact.Core.Ame.Compact.fame.Core.Ame.Fame.engine.Core.Radio.Engine.rounds_used);
  Printf.printf "Spoof flood absorbed: %d reconstruction failures\n"
    compact.Core.Ame.Compact.reconstruction_failures;
  List.iter
    (fun (pair, body) ->
      if body <> messages pair then
        Printf.printf "PAYLOAD CORRUPTION on (%d,%d)!\n" (fst pair) (snd pair))
    compact.Core.Ame.Compact.delivered
