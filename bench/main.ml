(* Benchmark harness.

   Usage:
     dune exec bench/main.exe              -- all experiment tables + micro
     dune exec bench/main.exe -- quick     -- smaller grids
     dune exec bench/main.exe -- e4        -- one experiment
     dune exec bench/main.exe -- micro     -- Bechamel micro-benchmarks only

   Each experiment table regenerates one exhibit of the paper (Figure 3's
   three rows, plus the theorem-level claims); see EXPERIMENTS.md for the
   paper-vs-measured record. *)

open Bechamel

(* -- micro-benchmarks: one Test.make per core operation -- *)

let sha_input_small = String.make 64 'x'
let sha_input_large = String.make 4096 'y'

let micro_tests () =
  let greedy_move =
    let g = Rgraph.Digraph.of_edges (Rgraph.Workload.complete ~n:10) in
    let st = Game.State.create g ~t:2 in
    Test.make ~name:"game/greedy-proposal" (Staged.stage (fun () -> ignore (Game.Greedy.proposal st)))
  in
  let game_full =
    let g = Rgraph.Digraph.of_edges (Rgraph.Workload.complete ~n:8) in
    Test.make ~name:"game/full-play-K8"
      (Staged.stage (fun () ->
           ignore (Game.Runner.play (Game.State.create g ~t:2) Game.Referee.minimal_first)))
  in
  let sha_small =
    Test.make ~name:"crypto/sha256-64B"
      (Staged.stage (fun () -> ignore (Crypto.Sha256.digest sha_input_small)))
  in
  let sha_large =
    Test.make ~name:"crypto/sha256-4KiB"
      (Staged.stage (fun () -> ignore (Crypto.Sha256.digest sha_input_large)))
  in
  let hmac =
    Test.make ~name:"crypto/hmac-sha256"
      (Staged.stage (fun () -> ignore (Crypto.Hmac.mac ~key:"key" sha_input_small)))
  in
  let dh =
    let rng = Prng.Rng.create 1L in
    Test.make ~name:"crypto/dh-keygen"
      (Staged.stage (fun () -> ignore (Crypto.Dh.generate rng)))
  in
  let seal =
    Test.make ~name:"crypto/seal-64B"
      (Staged.stage (fun () -> ignore (Crypto.Cipher.seal ~key:"k" ~nonce:7L sha_input_small)))
  in
  let vc =
    let g = Rgraph.Digraph.of_edges (Rgraph.Workload.complete ~n:8) in
    Test.make ~name:"graph/min-vertex-cover-K8"
      (Staged.stage (fun () -> ignore (Rgraph.Vertex_cover.minimum g)))
  in
  let engine_round =
    Test.make ~name:"radio/1000-round-run"
      (Staged.stage (fun () ->
           let cfg = Radio.Config.make ~n:8 ~channels:2 ~t:1 ~seed:3L () in
           ignore
             (Radio.Engine.run_nodes cfg ~adversary:Radio.Adversary.null
                (fun (ctx : Radio.Engine.ctx) ->
                  for _ = 1 to 1000 do
                    if ctx.Radio.Engine.id = 0 then
                      Radio.Engine.transmit ~chan:0
                        (Radio.Frame.Plain { src = 0; dst = 1; body = "x" })
                    else ignore (Radio.Engine.listen ~chan:0)
                  done))))
  in
  let fame_small =
    Test.make ~name:"ame/fame-4-pairs-t1"
      (Staged.stage (fun () ->
           let cfg = Radio.Config.make ~n:25 ~channels:2 ~t:1 ~seed:5L () in
           let pairs = Rgraph.Workload.disjoint_pairs ~n:25 ~count:4 in
           ignore
             (Ame.Fame.run ~cfg ~pairs
                ~messages:(fun (v, w) -> Printf.sprintf "%d-%d" v w)
                ~adversary:(fun _ -> Radio.Adversary.null)
                ())))
  in
  let prng =
    let rng = Prng.Rng.create 9L in
    Test.make ~name:"prng/bits64" (Staged.stage (fun () -> ignore (Prng.Rng.bits64 rng)))
  in
  [ prng; sha_small; sha_large; hmac; dh; seal; vc; greedy_move; game_full; engine_round;
    fame_small ]

let run_micro () =
  print_endline "\n== Micro-benchmarks (Bechamel, monotonic clock) ==\n";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (est :: _) -> est
            | Some [] | None -> nan
          in
          if ns > 1_000_000.0 then Printf.printf "  %-28s %10.2f ms/run\n" name (ns /. 1e6)
          else if ns > 1_000.0 then Printf.printf "  %-28s %10.2f us/run\n" name (ns /. 1e3)
          else Printf.printf "  %-28s %10.2f ns/run\n" name ns)
        analyzed)
    (micro_tests ())

let run_experiment ~quick (e : Experiments.Registry.experiment) =
  Format.printf "@.### %s: %s@." e.Experiments.Registry.id e.Experiments.Registry.title;
  e.Experiments.Registry.run ~quick Format.std_formatter;
  Format.print_flush ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "micro" ] -> run_micro ()
  | [] | [ "quick" ] ->
    let quick = args = [ "quick" ] in
    List.iter (run_experiment ~quick) Experiments.Registry.all;
    run_micro ()
  | ids ->
    List.iter
      (fun id ->
        match Experiments.Registry.find id with
        | Some e -> run_experiment ~quick:false e
        | None ->
          Printf.eprintf "unknown experiment %S; available: %s, micro\n" id
            (String.concat ", " Experiments.Registry.ids);
          exit 1)
      ids
