(* Benchmark harness.

   Usage:
     dune exec bench/main.exe                 -- all experiment tables + micro
     dune exec bench/main.exe -- quick        -- smaller grids
     dune exec bench/main.exe -- e4 e16       -- selected experiments
     dune exec bench/main.exe -- micro        -- Bechamel micro-benchmarks only
     dune exec bench/main.exe -- quick --jobs 4 --json BENCH.json

   --jobs N          worker domains for the parallel experiment runner
   --jobs-sweep L    re-run the experiments at each worker count in the
                     comma-separated list L, reporting wall clock per count
                     (output must stay byte-identical; see bench_compare)
   --json P          write structured results + per-experiment wall-clock to P

   Each experiment table regenerates one exhibit of the paper (Figure 3's
   three rows, plus the theorem-level claims); see EXPERIMENTS.md for the
   paper-vs-measured record. *)

open Bechamel

(* -- micro-benchmarks: one Test.make per core operation -- *)

let sha_input_small = String.make 64 'x'
let sha_input_large = String.make 4096 'y'

(* Engine throughput benches: one "run" simulates [rounds_per_run] rounds, so
   rounds/sec = rounds_per_run / (ns_per_run / 1e9).  The 2t2 configuration is
   Figure 3's large-channel regime (C = 2t^2 at t = 8), where per-round channel
   resolution dominates.  The workload is a busy DGGN epoch: n/2 disjoint
   sender/receiver pairs, each pair hopping over its own deterministic channel
   schedule, while a sweep jammer spends the full budget every round — the hop
   arithmetic is trivial on purpose so the benchmark measures the engine's
   round machinery, not the node bodies. *)
let rounds_per_run = 200

let engine_bench ~name ~n ~channels ~t =
  let hop ~round ~slot = (31 * round + (17 * slot)) mod channels in
  Test.make ~name
    (Staged.stage (fun () ->
         let cfg = Radio.Config.make ~n ~channels ~t ~seed:11L () in
         let adversary = Radio.Adversary.sweep_jammer ~channels ~budget:t in
         ignore
           (Radio.Engine.run_nodes cfg ~adversary (fun (ctx : Radio.Engine.ctx) ->
                let id = ctx.Radio.Engine.id in
                let slot = id / 2 in
                if id land 1 = 0 then
                  for round = 1 to rounds_per_run do
                    Radio.Engine.transmit ~chan:(hop ~round ~slot)
                      (Radio.Frame.Plain { src = id; dst = id + 1; body = "x" })
                  done
                else
                  for round = 1 to rounds_per_run do
                    ignore (Radio.Engine.listen ~chan:(hop ~round ~slot))
                  done))))

(* n-scaling families: the same engine and f-AME workloads at growing node
   counts, so a baseline comparison shows how round-machinery and protocol
   costs scale.  The large instances (n >= 1024) only run outside quick
   mode — they dominate suite wall-clock and quick baselines skip them.
   The n = 10^5 member rides on the sparse engine rewrite; the n = 10^6
   population sits in the plain-timed `population --huge` families (see
   below) rather than under Bechamel, whose repeat-until-quota protocol is
   the wrong instrument for minutes-long single runs. *)
let scaling_ns ~quick = if quick then [ 64; 256 ] else [ 64; 256; 1024; 4096; 100_000 ]

let engine_scaling ~quick =
  List.map
    (fun n -> engine_bench ~name:(Printf.sprintf "engine/rounds-per-sec-n%d" n) ~n ~channels:16 ~t:4)
    (scaling_ns ~quick)

let fame_scaling ~quick =
  List.map
    (fun n ->
      Test.make ~name:(Printf.sprintf "ame/fame-4-pairs-n%d" n)
        (Staged.stage (fun () ->
             let cfg = Radio.Config.make ~n ~channels:2 ~t:1 ~seed:5L () in
             let pairs = Rgraph.Workload.disjoint_pairs ~n ~count:4 in
             ignore
               (Ame.Fame.run ~cfg ~pairs
                  ~messages:(fun (v, w) -> Printf.sprintf "%d-%d" v w)
                  ~adversary:(fun _ -> Radio.Adversary.null)
                  ()))))
    (scaling_ns ~quick)

(* K-scaling families for the bitset graph/game kernel.  [graph/vc-n-scaling]
   runs the exact minimum-vertex-cover solver on the complete graph K_n with
   the memo cache disabled, so the branch-and-bound kernel itself is measured
   rather than a digest lookup ([graph/min-vertex-cover-K8] keeps the cache on
   and so tracks the end-to-end memoized path).  [game/full-play] plays the
   starred-edge removal game to completion on K_n; the K8 member is the
   long-standing [game/full-play-K8] benchmark above.  K in {32, 64} only
   runs outside quick mode. *)
let kernel_ks ~quick = if quick then [ 8; 16 ] else [ 8; 16; 32; 64 ]

let vc_scaling ~quick =
  List.map
    (fun n ->
      let g = Rgraph.Digraph.Dense.of_edges ~n (Rgraph.Workload.complete ~n) in
      Test.make ~name:(Printf.sprintf "graph/vc-n-scaling-K%d" n)
        (Staged.stage (fun () ->
             ignore
               (Cache.with_disabled (fun () -> Rgraph.Vertex_cover.minimum_size_dense g)))))
    (kernel_ks ~quick)

let game_full_play ~name ~n =
  let g = Rgraph.Digraph.of_edges (Rgraph.Workload.complete ~n) in
  Test.make ~name
    (Staged.stage (fun () ->
         ignore (Game.Runner.play (Game.State.create g ~t:2) Game.Referee.minimal_first)))

let game_scaling ~quick =
  List.filter_map
    (fun n ->
      if n = 8 then None (* covered by game/full-play-K8 *)
      else Some (game_full_play ~name:(Printf.sprintf "game/full-play-K%d" n) ~n))
    (kernel_ks ~quick)

let micro_tests ~quick =
  let greedy_move =
    let g = Rgraph.Digraph.of_edges (Rgraph.Workload.complete ~n:10) in
    let st = Game.State.create g ~t:2 in
    Test.make ~name:"game/greedy-proposal" (Staged.stage (fun () -> ignore (Game.Greedy.proposal st)))
  in
  let game_full = game_full_play ~name:"game/full-play-K8" ~n:8 in
  let sha_small =
    Test.make ~name:"crypto/sha256-64B"
      (Staged.stage (fun () -> ignore (Crypto.Sha256.digest sha_input_small)))
  in
  let sha_large =
    Test.make ~name:"crypto/sha256-4KiB"
      (Staged.stage (fun () -> ignore (Crypto.Sha256.digest sha_input_large)))
  in
  let hmac =
    Test.make ~name:"crypto/hmac-sha256"
      (Staged.stage (fun () -> ignore (Crypto.Hmac.mac ~key:"key" sha_input_small)))
  in
  let dh =
    let rng = Prng.Rng.create 1L in
    Test.make ~name:"crypto/dh-keygen"
      (Staged.stage (fun () -> ignore (Crypto.Dh.generate rng)))
  in
  let seal =
    Test.make ~name:"crypto/seal-64B"
      (Staged.stage (fun () -> ignore (Crypto.Cipher.seal ~key:"k" ~nonce:7L sha_input_small)))
  in
  let vc =
    let g = Rgraph.Digraph.of_edges (Rgraph.Workload.complete ~n:8) in
    Test.make ~name:"graph/min-vertex-cover-K8"
      (Staged.stage (fun () -> ignore (Rgraph.Vertex_cover.minimum g)))
  in
  let engine_round =
    Test.make ~name:"radio/1000-round-run"
      (Staged.stage (fun () ->
           let cfg = Radio.Config.make ~n:8 ~channels:2 ~t:1 ~seed:3L () in
           ignore
             (Radio.Engine.run_nodes cfg ~adversary:Radio.Adversary.null
                (fun (ctx : Radio.Engine.ctx) ->
                  for _ = 1 to 1000 do
                    if ctx.Radio.Engine.id = 0 then
                      Radio.Engine.transmit ~chan:0
                        (Radio.Frame.Plain { src = 0; dst = 1; body = "x" })
                    else ignore (Radio.Engine.listen ~chan:0)
                  done))))
  in
  let fame_small =
    Test.make ~name:"ame/fame-4-pairs-t1"
      (Staged.stage (fun () ->
           let cfg = Radio.Config.make ~n:25 ~channels:2 ~t:1 ~seed:5L () in
           let pairs = Rgraph.Workload.disjoint_pairs ~n:25 ~count:4 in
           ignore
             (Ame.Fame.run ~cfg ~pairs
                ~messages:(fun (v, w) -> Printf.sprintf "%d-%d" v w)
                ~adversary:(fun _ -> Radio.Adversary.null)
                ())))
  in
  let prng =
    let rng = Prng.Rng.create 9L in
    Test.make ~name:"prng/bits64" (Staged.stage (fun () -> ignore (Prng.Rng.bits64 rng)))
  in
  let engine_small = engine_bench ~name:"engine/rounds-per-sec-small" ~n:8 ~channels:2 ~t:1 in
  let engine_2t2 =
    engine_bench ~name:"engine/rounds-per-sec-2t2" ~n:64 ~channels:128 ~t:8
  in
  let prf_naive =
    Test.make ~name:"crypto/prf-channel-hop-naive"
      (Staged.stage (fun () ->
           ignore (Crypto.Prf.channel_hop ~key:"shared-hop-key" ~round:12345 ~channels:128)))
  in
  let prf_keyed =
    let handle = Crypto.Prf.Keyed.create "shared-hop-key" in
    Test.make ~name:"crypto/prf-channel-hop-keyed"
      (Staged.stage (fun () ->
           ignore (Crypto.Prf.Keyed.channel_hop handle ~round:12345 ~channels:128)))
  in
  let hmac_keyed =
    let handle = Crypto.Hmac.key "key" in
    Test.make ~name:"crypto/hmac-sha256-keyed"
      (Staged.stage (fun () -> ignore (Crypto.Hmac.mac_keyed handle sha_input_small)))
  in
  [ prng; sha_small; sha_large; hmac; hmac_keyed; dh; seal; vc; greedy_move; game_full;
    engine_round; fame_small; engine_small; engine_2t2; prf_naive; prf_keyed ]
  @ vc_scaling ~quick @ game_scaling ~quick @ engine_scaling ~quick @ fame_scaling ~quick

type micro_row = {
  bench_name : string;
  ns_per_run : float;
  minor_words_per_run : float;
  major_words_per_run : float;
  promoted_words_per_run : float;
}

(* Runs the Bechamel suite, printing the human table, and returns the rows
   for the structured --bench-json emitter. *)
let run_micro ~quick =
  print_endline "\n== Micro-benchmarks (Bechamel, monotonic clock) ==\n";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let clock = Toolkit.Instance.monotonic_clock in
  let minor = Toolkit.Instance.minor_allocated in
  let major = Toolkit.Instance.major_allocated in
  let promoted = Toolkit.Instance.promoted in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) () in
  let estimate analyzed name =
    match Hashtbl.find_opt analyzed name with
    | Some ols_result -> (
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> est
      | Some [] | None -> nan)
    | None -> nan
  in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg [ clock; minor; major; promoted ] test in
      let by_time = Analyze.all ols clock results in
      let by_minor = Analyze.all ols minor results in
      let by_major = Analyze.all ols major results in
      let by_promoted = Analyze.all ols promoted results in
      let rows = ref [] in
      Det.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (est :: _) -> est
            | Some [] | None -> nan
          in
          let words = estimate by_minor name in
          if ns > 1_000_000.0 then Printf.printf "  %-28s %10.2f ms/run\n" name (ns /. 1e6)
          else if ns > 1_000.0 then Printf.printf "  %-28s %10.2f us/run\n" name (ns /. 1e3)
          else Printf.printf "  %-28s %10.2f ns/run\n" name ns;
          rows :=
            { bench_name = name; ns_per_run = ns; minor_words_per_run = words;
              major_words_per_run = estimate by_major name;
              promoted_words_per_run = estimate by_promoted name }
            :: !rows)
        by_time;
      List.rev !rows)
    (micro_tests ~quick)

(* -- population-scale benches (plain timed, not Bechamel) --

   The n = 10^5..10^6 families: each row is a full engine (or f-AME) run
   timed wall-clock, repeated [pop_runs] times, reporting the median —
   Bechamel's repeat-until-quota protocol would either truncate to one
   unstable sample or burn minutes per row.  Rows are emitted into the
   radio-bench/v1 `micro` section with ns_per_run normalized to a single
   simulated round, so `ops_per_sec` reads as rounds/sec and bench_compare
   tracks the family like any other (timing is reported, never gated).

   The dense rows reproduce Figure 3's three channel regimes (C = t+1, 2t,
   2t^2 at t = 8) as busy DGGN epochs at population scale; the sparse row
   is the engine's reason to exist at n = 10^5 (a handful of active pairs,
   everyone else parked in the wake queue); the fame row is the paper's
   protocol end-to-end.  `--huge` (the nightly leg) adds the n = 10^6
   members, single-run — at that scale one execution is minutes, and the
   nightly trend across days substitutes for within-run repeats. *)

let pop_runs = 3

let median xs =
  let sorted = List.sort Float.compare xs in
  List.nth sorted (List.length sorted / 2)

(* Each workload returns the number of simulated rounds, so rounds/sec can
   be computed without trusting the workload description. *)
let pop_engine_dense ~n ~channels ~t ~rounds () =
  let hop ~round ~slot = ((31 * round) + (17 * slot)) mod channels in
  let cfg = Radio.Config.make ~n ~channels ~t ~seed:11L () in
  let adversary = Radio.Adversary.sweep_jammer ~channels ~budget:t in
  let result =
    Radio.Engine.run_nodes cfg ~adversary (fun (ctx : Radio.Engine.ctx) ->
        let id = ctx.Radio.Engine.id in
        let slot = id / 2 in
        if id land 1 = 0 then
          for round = 1 to rounds do
            Radio.Engine.transmit ~chan:(hop ~round ~slot)
              (Radio.Frame.Plain { src = id; dst = id + 1; body = "x" })
          done
        else
          for round = 1 to rounds do
            ignore (Radio.Engine.listen ~chan:(hop ~round ~slot))
          done)
  in
  result.Radio.Engine.rounds_used

let pop_engine_sparse ~n ~rounds () =
  (* 8 active sender/receiver pairs hop channels for [rounds] rounds; the
     other n - 16 nodes idle the whole time.  The sparse core parks them
     once, so per-round cost tracks the 16 active nodes, not n. *)
  let channels = 16 and t = 4 in
  let cfg = Radio.Config.make ~n ~channels ~t ~seed:11L () in
  let active_pairs = 8 in
  let result =
    Radio.Engine.run_nodes cfg ~adversary:Radio.Adversary.null
      (fun (ctx : Radio.Engine.ctx) ->
        let id = ctx.Radio.Engine.id in
        if id < 2 * active_pairs then begin
          let slot = id / 2 in
          if id land 1 = 0 then
            for round = 1 to rounds do
              Radio.Engine.transmit
                ~chan:(((31 * round) + (17 * slot)) mod channels)
                (Radio.Frame.Plain { src = id; dst = id + 1; body = "x" })
            done
          else
            for round = 1 to rounds do
              ignore (Radio.Engine.listen ~chan:(((31 * round) + (17 * slot)) mod channels))
            done
        end
        else Radio.Engine.idle_for rounds)
  in
  result.Radio.Engine.rounds_used

(* One iteration = one [Schedule.build] over a busy 16-channel proposal plus
   a full [role_of] + [witness_channel] sweep across all n nodes — the
   protocol's per-move query pattern, dominated by the inverted role index.
   Returns the total query count, so ns_per_run normalizes to one indexed
   role query (the build amortized in) and ops_per_sec reads as queries/sec. *)
let pop_schedule ~n ~iters () =
  let channels = 16 in
  let proposal = List.init channels (fun i -> Game.State.Edge (2 * i, (2 * i) + 1)) in
  let scratch = Ame.Schedule.make_scratch () in
  let acc = ref 0 in
  for _ = 1 to iters do
    let sched =
      Ame.Schedule.build ~scratch ~proposal ~surrogates:(fun _ -> [||]) ~n
        ~witness_size:channels ~watchers_per_channel:(3 * channels) ()
    in
    for id = 0 to n - 1 do
      (match Ame.Schedule.role_of sched id with
      | Ame.Schedule.Broadcast _ -> incr acc
      | Ame.Schedule.Receive _ | Ame.Schedule.Watch _ | Ame.Schedule.Off -> ());
      match Ame.Schedule.witness_channel sched id with Some _ -> incr acc | None -> ()
    done
  done;
  ignore (Sys.opaque_identity !acc);
  iters * n

let pop_fame ~n () =
  let cfg = Radio.Config.make ~n ~channels:2 ~t:1 ~seed:5L () in
  let pairs = Rgraph.Workload.disjoint_pairs ~n ~count:4 in
  let outcome =
    Ame.Fame.run ~cfg ~pairs
      ~messages:(fun (v, w) -> Printf.sprintf "%d-%d" v w)
      ~adversary:(fun _ -> Radio.Adversary.null)
      ()
  in
  outcome.Ame.Fame.engine.Radio.Engine.rounds_used

let population_rows ~huge =
  let t = 8 in
  let regimes = [ ("t+1", t + 1); ("2t", 2 * t); ("2t2", 2 * t * t) ] in
  let n5 = 100_000 in
  let dense ~n ~rounds ~runs suffix =
    List.map
      (fun (tag, channels) ->
        ( Printf.sprintf "population/engine-dense-%s-%s" tag suffix,
          runs,
          fun () -> pop_engine_dense ~n ~channels ~t ~rounds () ))
      regimes
  in
  dense ~n:n5 ~rounds:200 ~runs:pop_runs "n1e5"
  @ [ ( "population/engine-sparse-n1e5",
        pop_runs,
        fun () -> pop_engine_sparse ~n:n5 ~rounds:5000 () );
      ("population/fame-pair-hop-n1e5", pop_runs, fun () -> pop_fame ~n:n5 ());
      ( "schedule/build-role-sweep-n1e4",
        pop_runs,
        fun () -> pop_schedule ~n:10_000 ~iters:5_000 () );
      ( "schedule/build-role-sweep-n1e5",
        pop_runs,
        fun () -> pop_schedule ~n:n5 ~iters:500 () ) ]
  @
  if not huge then []
  else
    dense ~n:1_000_000 ~rounds:50 ~runs:1 "n1e6"
    @ [ ( "population/engine-sparse-n1e6",
          1,
          fun () -> pop_engine_sparse ~n:1_000_000 ~rounds:5000 () );
        ("population/fame-pair-hop-n1e6", 1, fun () -> pop_fame ~n:1_000_000 ()) ]

let run_population ~huge =
  print_endline "\n== Population-scale benches (plain timed, median of runs) ==\n";
  Printf.printf "  %-36s %6s %10s %12s  %s\n" "bench" "runs" "median s" "rounds/sec"
    "runs (s)";
  List.map
    (fun (name, runs, work) ->
      let samples =
        List.init runs (fun _ ->
            let rounds, wall_s = Parallel.Clock.time work in
            (rounds, wall_s))
      in
      let rounds = fst (List.hd samples) in
      let med = median (List.map snd samples) in
      let rps = float_of_int rounds /. med in
      Printf.printf "  %-36s %6d %10.3f %12.0f  [%s]\n%!" name runs med rps
        (String.concat "; " (List.map (fun (_, s) -> Printf.sprintf "%.3f" s) samples));
      { bench_name = name;
        ns_per_run = med *. 1e9 /. float_of_int rounds;
        minor_words_per_run = 0.0;
        major_words_per_run = 0.0;
        promoted_words_per_run = 0.0 })
    (population_rows ~huge)

(* -- service throughput benches (plain timed, medians of alternating runs) --

   The multiplexed secure-channel service (Secure_channel.Mux) driven at
   growing logical-channel counts under a null and a jamming adversary,
   once with the batched crypto entry points and once with the naive
   per-message API.  Each (channels, adversary) cell runs the two crypto
   modes [service_runs] times in strict alternation (B,P,B,P,...) so slow
   drift in machine load cancels out of the A/B comparison; the reported
   figure is the median.  ns_per_run is wall-clock per *delivered message*,
   so `ops_per_sec` in the radio-bench document reads as messages/sec.

   The two modes must also be bit-for-bit equivalent: every run's
   {!Mux.render_stats} digest is asserted identical across all runs of the
   cell, and the shared digest plus the engine round count become a
   `service/c{M}-{adv}` determinism row that bench_compare gates on.  The
   p99 emulated-round delivery latency rides along as its own micro row
   (units are emulated rounds, not nanoseconds; reported, never gated). *)

module Mux = Secure_channel.Mux

let service_runs = 3

(* Enough emulated rounds that one-off edges — queue ramp-up at the start,
   the piggybacked mode's single flush round at the end — amortize into the
   steady state being measured: at 6 rounds the flush round alone inflated
   the piggybacked side's per-message cost by a sixth. *)
let service_emulated_rounds = 24

let service_spec ?(ack_mode = Mux.Slotted) ~channels ~crypto () =
  Mux.make ~key:"bench-service-group-key" ~logical:channels ~phys:16 ~budget:4
    ~ack_mode ~crypto ~rounds:service_emulated_rounds ~rate:1 ~queue_cap:8 ~window:32
    ~epoch_len:2 ~grace:1 ~payload:16 ~seed:42L ()

(* Fresh adversary per run: random_jammer holds mutable PRNG state, and
   reusing one across runs would break the A/B byte-identity assertion. *)
let service_adversaries =
  [ ("null", fun () -> Radio.Adversary.null);
    ("jam", fun () -> Experiments.Common.random_jam ~seed:77L ~channels:16 ~budget:4) ]

type service_det = { service_id : string; service_rounds : int; service_sha : string }

let run_service ~jobs ~channels_list =
  print_endline "\n== Service throughput (plain timed, median of alternating A/B runs) ==\n";
  Printf.printf "  %-22s %8s %10s %10s %8s %10s %8s %6s\n" "cell" "msgs" "batched s"
    "permsg s" "speedup" "pig s" "pig-x" "p99";
  Parallel.Pool.with_pool ~domains:jobs (fun pool ->
      List.concat_map
        (fun channels ->
          (* Piggybacked acks need an even duplex-paired channel count. *)
          let pig_ok = channels land 1 = 0 in
          List.concat_map
            (fun (adv_name, mk_adv) ->
              let one ?ack_mode crypto =
                let spec = service_spec ?ack_mode ~channels ~crypto () in
                Parallel.Clock.time (fun () -> Mux.run ~pool spec ~adversary:(mk_adv ()))
              in
              (* Strict alternation B,P,G,B,P,G,... so machine-load drift
                 cancels out of every pairwise comparison. *)
              let runs =
                List.init service_runs (fun _ ->
                    ( one Mux.Batched,
                      one Mux.Per_message,
                      if pig_ok then Some (one ~ack_mode:Mux.Piggybacked Mux.Batched)
                      else None ))
              in
              let sample = match List.hd runs with b, _, _ -> fst b in
              let sha = Mux.output_digest sample in
              let pig_sample =
                match List.hd runs with _, _, Some g -> Some (fst g) | _, _, None -> None
              in
              let pig_sha = Option.map Mux.output_digest pig_sample in
              List.iteri
                (fun i (b, p, g) ->
                  let checks =
                    [ ("batched", fst b, sha); ("per-message", fst p, sha) ]
                    @
                    match (g, pig_sha) with
                    | Some (r, _), Some psha -> [ ("piggybacked", r, psha) ]
                    | _ -> []
                  in
                  List.iter
                    (fun (mode, (r : Mux.result), expect) ->
                      if Mux.output_digest r <> expect then (
                        Printf.eprintf
                          "service/c%d-%s: %s run %d diverged from run 0 (runs are not \
                           byte-identical)\n"
                          channels adv_name mode i;
                        exit 1))
                    checks)
                runs;
              let msgs = sample.Mux.stats.Mux.delivered in
              let med_b = median (List.map (fun ((_, s), _, _) -> s) runs) in
              let med_p = median (List.map (fun (_, (_, s), _) -> s) runs) in
              let pig =
                match pig_sample with
                | None -> None
                | Some ps ->
                  let med_g =
                    median
                      (List.filter_map (fun (_, _, g) -> Option.map snd g) runs)
                  in
                  Some (ps, med_g)
              in
              let p99 = Mux.latency_percentile sample 0.99 in
              let mps msgs wall = float_of_int msgs /. wall in
              (match pig with
              | Some (ps, med_g) ->
                (* Throughput ratio, not raw wall-clock: the two ack modes
                   deliver (slightly) different message counts under load. *)
                let pig_x =
                  mps ps.Mux.stats.Mux.delivered med_g /. mps msgs med_b
                in
                Printf.printf "  %-22s %8d %10.3f %10.3f %7.2fx %10.3f %7.2fx %6d\n%!"
                  (Printf.sprintf "c%d-%s" channels adv_name)
                  msgs med_b med_p (med_p /. med_b) med_g pig_x p99
              | None ->
                Printf.printf "  %-22s %8d %10.3f %10.3f %7.2fx %10s %8s %6d\n%!"
                  (Printf.sprintf "c%d-%s" channels adv_name)
                  msgs med_b med_p (med_p /. med_b) "-" "-" p99);
              let per_msg_ns msgs wall =
                if msgs > 0 then wall *. 1e9 /. float_of_int msgs else nan
              in
              let row name ns =
                { bench_name = name; ns_per_run = ns; minor_words_per_run = 0.0;
                  major_words_per_run = 0.0; promoted_words_per_run = 0.0 }
              in
              let micro =
                [ row
                    (Printf.sprintf "service/msgs-per-sec-c%d-%s-batched" channels adv_name)
                    (per_msg_ns msgs med_b);
                  row
                    (Printf.sprintf "service/msgs-per-sec-c%d-%s-permsg" channels adv_name)
                    (per_msg_ns msgs med_p);
                  row
                    (Printf.sprintf "service/p99-latency-rounds-c%d-%s" channels adv_name)
                    (float_of_int p99) ]
                @
                match pig with
                | Some (ps, med_g) ->
                  [ row
                      (Printf.sprintf "service/msgs-per-sec-c%d-%s-piggyback" channels
                         adv_name)
                      (per_msg_ns ps.Mux.stats.Mux.delivered med_g) ]
                | None -> []
              in
              let det =
                { service_id = Printf.sprintf "service/c%d-%s" channels adv_name;
                  service_rounds = sample.Mux.engine.Radio.Engine.rounds_used;
                  service_sha = sha }
                ::
                (match (pig_sample, pig_sha) with
                | Some ps, Some psha ->
                  [ { service_id = Printf.sprintf "service/c%d-%s-piggyback" channels adv_name;
                      service_rounds = ps.Mux.engine.Radio.Engine.rounds_used;
                      service_sha = psha } ]
                | _ -> [])
              in
              [ (micro, det) ])
            service_adversaries)
        channels_list)
  |> List.split
  |> fun (micro, det) -> (List.concat micro, List.concat det)

let render_outcome (o : Experiments.Runner.outcome) =
  Format.printf "@.### %s: %s@." o.experiment.Experiments.Registry.id
    o.experiment.Experiments.Registry.title;
  Experiments.Runner.render Format.std_formatter o;
  Format.print_flush ()

let timing_summary outcomes =
  print_newline ();
  print_endline "== Experiment wall-clock summary ==";
  List.iter
    (fun (o : Experiments.Runner.outcome) ->
      Printf.printf "  %-4s %8.2fs  %12d simulated rounds\n"
        o.Experiments.Runner.experiment.Experiments.Registry.id o.wall_s
        o.result.Experiments.Common.total_rounds)
    outcomes;
  Printf.printf "  total %7.2fs\n"
    (List.fold_left (fun acc (o : Experiments.Runner.outcome) -> acc +. o.wall_s) 0.0 outcomes)

(* --jobs-sweep: re-run the selected experiments once per requested worker
   count and record wall clock.  The digest over the concatenated rendered
   tables must be identical across entries — bench_compare refuses a
   document whose sweep rows disagree. *)
type sweep_row = { sweep_jobs : int; sweep_wall_s : float; sweep_sha : string }

let run_jobs_sweep ~quick ~experiments jobs_list =
  List.map
    (fun jobs ->
      let outcomes, wall_s =
        Parallel.Clock.time (fun () -> Experiments.Runner.run_many ~quick ~jobs experiments)
      in
      let buf = Buffer.create 4096 in
      List.iter
        (fun (o : Experiments.Runner.outcome) ->
          Buffer.add_string buf (Format.asprintf "%a" Experiments.Runner.render o))
        outcomes;
      { sweep_jobs = jobs; sweep_wall_s = wall_s;
        sweep_sha = Crypto.Sha256.digest_hex (Buffer.contents buf) })
    jobs_list

let jobs_sweep_report rows =
  print_newline ();
  print_endline "== --jobs sweep (wall-clock per worker count) ==";
  List.iter
    (fun r ->
      Printf.printf "  jobs=%-3d %8.2fs  output sha256 %s...\n" r.sweep_jobs r.sweep_wall_s
        (String.sub r.sweep_sha 0 12))
    rows;
  match rows with
  | [] -> ()
  | first :: rest ->
    if List.for_all (fun r -> r.sweep_sha = first.sweep_sha) rest then
      print_endline "  output: byte-identical across all worker counts"
    else print_endline "  WARNING: output differs across worker counts (nondeterminism!)"

(* The radio-bench/v1 document: micro-benchmark estimates plus a determinism
   fingerprint (rendered-output hash and round count) per experiment.  The
   fingerprint fields are exact — bench_compare gates on them — while the
   timing fields are environment-dependent and only ever reported. *)
let bench_json ~quick ~micro_rows ~outcomes ~sweep_rows ~service_det =
  let open Experiments in
  Json.Obj
    [ ("schema", Json.String "radio-bench/v1");
      ("quick", Json.Bool quick);
      ( "micro",
        Json.List
          (List.map
             (fun row ->
               Json.Obj
                 [ ("name", Json.String row.bench_name);
                   ("ns_per_run", Json.Float row.ns_per_run);
                   ( "ops_per_sec",
                     Json.Float (if row.ns_per_run > 0.0 then 1e9 /. row.ns_per_run else nan) );
                   ("minor_words_per_run", Json.Float row.minor_words_per_run);
                   ("major_words_per_run", Json.Float row.major_words_per_run);
                   ("promoted_words_per_run", Json.Float row.promoted_words_per_run) ])
             micro_rows) );
      ( "jobs_sweep",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [ ("jobs", Json.Int r.sweep_jobs);
                   ("wall_s", Json.Float r.sweep_wall_s);
                   ("output_sha256", Json.String r.sweep_sha) ])
             sweep_rows) );
      ( "determinism",
        Json.List
          (List.map
             (fun (o : Runner.outcome) ->
               Json.Obj
                 [ ("id", Json.String o.experiment.Registry.id);
                   ("total_rounds", Json.Int o.result.Common.total_rounds);
                   ( "output_sha256",
                     Json.String
                       (Crypto.Sha256.digest_hex (Format.asprintf "%a" Runner.render o)) ) ])
             outcomes
          @ List.map
              (fun d ->
                Json.Obj
                  [ ("id", Json.String d.service_id);
                    ("total_rounds", Json.Int d.service_rounds);
                    ("output_sha256", Json.String d.service_sha) ])
              service_det) ) ]

let write_bench_json ~path ~quick ~micro_rows ~outcomes ~sweep_rows ~service_det =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (Experiments.Json.to_string
           (bench_json ~quick ~micro_rows ~outcomes ~sweep_rows ~service_det));
      output_char oc '\n')

type cli = {
  quick : bool;
  micro : bool;
  population : bool;
  huge : bool;
  service : bool;
  service_channels : int list option;
  jobs : int;
  jobs_sweep : int list;
  json : string option;
  bench_json : string option;
  ids : string list;
}

let usage () =
  Printf.eprintf
    "usage: main.exe [quick] [micro] [service [--service-channels N,N,...]] \
     [population [--huge]] [ID...] [--jobs N] [--jobs-sweep N,N,...] [--json PATH] \
     [--bench-json PATH]\n\
     available: %s, micro, service, population\n"
    (String.concat ", " Experiments.Registry.ids);
  exit 1

let parse_jobs_sweep spec =
  let parts = String.split_on_char ',' spec in
  let jobs =
    List.filter_map
      (fun s -> match int_of_string_opt (String.trim s) with Some j when j >= 1 -> Some j | _ -> None)
      parts
  in
  if List.length jobs <> List.length parts || jobs = [] then usage () else jobs

let parse_service_channels spec =
  let parts = String.split_on_char ',' spec in
  let channels =
    List.filter_map
      (fun s -> match int_of_string_opt (String.trim s) with Some c when c >= 1 -> Some c | _ -> None)
      parts
  in
  if List.length channels <> List.length parts || channels = [] then usage () else channels

let parse_args args =
  let rec go acc = function
    | [] -> acc
    | "quick" :: rest -> go { acc with quick = true } rest
    | "micro" :: rest -> go { acc with micro = true } rest
    | "population" :: rest -> go { acc with population = true } rest
    | "service" :: rest -> go { acc with service = true } rest
    | "--service-channels" :: spec :: rest ->
      go { acc with service_channels = Some (parse_service_channels spec) } rest
    | "--huge" :: rest -> go { acc with huge = true } rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
       | Some jobs when jobs >= 1 -> go { acc with jobs } rest
       | _ -> usage ())
    | "--jobs-sweep" :: spec :: rest -> go { acc with jobs_sweep = parse_jobs_sweep spec } rest
    | "--json" :: path :: rest -> go { acc with json = Some path } rest
    | "--bench-json" :: path :: rest -> go { acc with bench_json = Some path } rest
    | id :: rest ->
      if Experiments.Registry.find id = None then usage ()
      else go { acc with ids = acc.ids @ [ id ] } rest
  in
  go
    { quick = false; micro = false; population = false; huge = false; service = false;
      service_channels = None; jobs = Parallel.default_jobs (); jobs_sweep = [];
      json = None; bench_json = None; ids = [] }
    args

let () =
  let cli = parse_args (List.tl (Array.to_list Sys.argv)) in
  (* `population` is its own mode: the big-n plain-timed families, no
     experiment tables, no Bechamel micro suite. *)
  if cli.population then begin
    let rows = run_population ~huge:cli.huge in
    match cli.bench_json with
    | Some path -> (
      match
        write_bench_json ~path ~quick:false ~micro_rows:rows ~outcomes:[] ~sweep_rows:[]
          ~service_det:[]
      with
      | () -> Printf.printf "population benchmark document written to %s\n" path
      | exception Sys_error msg ->
        Printf.eprintf "cannot write --bench-json results: %s\n" msg;
        exit 1)
    | None -> ()
  end
  else begin
  (* Bare `main.exe` (or just `quick`) keeps the historical behavior: every
     experiment table, then the micro-benchmarks.  `micro` alone skips the
     tables; explicit ids skip micro unless it is also requested. *)
  let run_experiments = cli.ids <> [] || not cli.micro in
  let run_micro_too = cli.micro || cli.ids = [] in
  let experiments =
    match cli.ids with
    | [] -> Experiments.Registry.all
    | ids -> List.filter_map Experiments.Registry.find ids
  in
  let outcomes =
    if not run_experiments then []
    else begin
      let outcomes =
        Experiments.Runner.run_many ~quick:cli.quick ~jobs:cli.jobs experiments
      in
      List.iter render_outcome outcomes;
      timing_summary outcomes;
      (match cli.json with
       | Some path -> (
         match
           Experiments.Runner.write_json ~path ~quick:cli.quick ~jobs:cli.jobs outcomes
         with
         | () -> Printf.printf "structured results written to %s\n" path
         | exception Sys_error msg ->
           Printf.eprintf "cannot write --json results: %s\n" msg;
           exit 1)
       | None -> ());
      outcomes
    end
  in
  let sweep_rows =
    if cli.jobs_sweep = [] then []
    else begin
      let rows = run_jobs_sweep ~quick:cli.quick ~experiments cli.jobs_sweep in
      jobs_sweep_report rows;
      rows
    end
  in
  let micro_rows = if run_micro_too then run_micro ~quick:cli.quick else [] in
  let service_micro, service_det =
    if not cli.service then ([], [])
    else begin
      let channels_list =
        match cli.service_channels with
        | Some list -> list
        | None -> if cli.quick then [ 64; 256 ] else [ 64; 256; 1024; 4096 ]
      in
      run_service ~jobs:cli.jobs ~channels_list
    end
  in
  let micro_rows = micro_rows @ service_micro in
  match cli.bench_json with
  | Some path -> (
    match
      write_bench_json ~path ~quick:cli.quick ~micro_rows ~outcomes ~sweep_rows
        ~service_det
    with
    | () -> Printf.printf "benchmark baseline written to %s\n" path
    | exception Sys_error msg ->
      Printf.eprintf "cannot write --bench-json results: %s\n" msg;
      exit 1)
  | None -> ()
  end
