(* Benchmark harness.

   Usage:
     dune exec bench/main.exe                 -- all experiment tables + micro
     dune exec bench/main.exe -- quick        -- smaller grids
     dune exec bench/main.exe -- e4 e16       -- selected experiments
     dune exec bench/main.exe -- micro        -- Bechamel micro-benchmarks only
     dune exec bench/main.exe -- quick --jobs 4 --json BENCH.json

   --jobs N   worker domains for the parallel experiment runner
   --json P   write structured results + per-experiment wall-clock to P

   Each experiment table regenerates one exhibit of the paper (Figure 3's
   three rows, plus the theorem-level claims); see EXPERIMENTS.md for the
   paper-vs-measured record. *)

open Bechamel

(* -- micro-benchmarks: one Test.make per core operation -- *)

let sha_input_small = String.make 64 'x'
let sha_input_large = String.make 4096 'y'

let micro_tests () =
  let greedy_move =
    let g = Rgraph.Digraph.of_edges (Rgraph.Workload.complete ~n:10) in
    let st = Game.State.create g ~t:2 in
    Test.make ~name:"game/greedy-proposal" (Staged.stage (fun () -> ignore (Game.Greedy.proposal st)))
  in
  let game_full =
    let g = Rgraph.Digraph.of_edges (Rgraph.Workload.complete ~n:8) in
    Test.make ~name:"game/full-play-K8"
      (Staged.stage (fun () ->
           ignore (Game.Runner.play (Game.State.create g ~t:2) Game.Referee.minimal_first)))
  in
  let sha_small =
    Test.make ~name:"crypto/sha256-64B"
      (Staged.stage (fun () -> ignore (Crypto.Sha256.digest sha_input_small)))
  in
  let sha_large =
    Test.make ~name:"crypto/sha256-4KiB"
      (Staged.stage (fun () -> ignore (Crypto.Sha256.digest sha_input_large)))
  in
  let hmac =
    Test.make ~name:"crypto/hmac-sha256"
      (Staged.stage (fun () -> ignore (Crypto.Hmac.mac ~key:"key" sha_input_small)))
  in
  let dh =
    let rng = Prng.Rng.create 1L in
    Test.make ~name:"crypto/dh-keygen"
      (Staged.stage (fun () -> ignore (Crypto.Dh.generate rng)))
  in
  let seal =
    Test.make ~name:"crypto/seal-64B"
      (Staged.stage (fun () -> ignore (Crypto.Cipher.seal ~key:"k" ~nonce:7L sha_input_small)))
  in
  let vc =
    let g = Rgraph.Digraph.of_edges (Rgraph.Workload.complete ~n:8) in
    Test.make ~name:"graph/min-vertex-cover-K8"
      (Staged.stage (fun () -> ignore (Rgraph.Vertex_cover.minimum g)))
  in
  let engine_round =
    Test.make ~name:"radio/1000-round-run"
      (Staged.stage (fun () ->
           let cfg = Radio.Config.make ~n:8 ~channels:2 ~t:1 ~seed:3L () in
           ignore
             (Radio.Engine.run_nodes cfg ~adversary:Radio.Adversary.null
                (fun (ctx : Radio.Engine.ctx) ->
                  for _ = 1 to 1000 do
                    if ctx.Radio.Engine.id = 0 then
                      Radio.Engine.transmit ~chan:0
                        (Radio.Frame.Plain { src = 0; dst = 1; body = "x" })
                    else ignore (Radio.Engine.listen ~chan:0)
                  done))))
  in
  let fame_small =
    Test.make ~name:"ame/fame-4-pairs-t1"
      (Staged.stage (fun () ->
           let cfg = Radio.Config.make ~n:25 ~channels:2 ~t:1 ~seed:5L () in
           let pairs = Rgraph.Workload.disjoint_pairs ~n:25 ~count:4 in
           ignore
             (Ame.Fame.run ~cfg ~pairs
                ~messages:(fun (v, w) -> Printf.sprintf "%d-%d" v w)
                ~adversary:(fun _ -> Radio.Adversary.null)
                ())))
  in
  let prng =
    let rng = Prng.Rng.create 9L in
    Test.make ~name:"prng/bits64" (Staged.stage (fun () -> ignore (Prng.Rng.bits64 rng)))
  in
  [ prng; sha_small; sha_large; hmac; dh; seal; vc; greedy_move; game_full; engine_round;
    fame_small ]

let run_micro () =
  print_endline "\n== Micro-benchmarks (Bechamel, monotonic clock) ==\n";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Det.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (est :: _) -> est
            | Some [] | None -> nan
          in
          if ns > 1_000_000.0 then Printf.printf "  %-28s %10.2f ms/run\n" name (ns /. 1e6)
          else if ns > 1_000.0 then Printf.printf "  %-28s %10.2f us/run\n" name (ns /. 1e3)
          else Printf.printf "  %-28s %10.2f ns/run\n" name ns)
        analyzed)
    (micro_tests ())

let render_outcome (o : Experiments.Runner.outcome) =
  Format.printf "@.### %s: %s@." o.experiment.Experiments.Registry.id
    o.experiment.Experiments.Registry.title;
  Experiments.Runner.render Format.std_formatter o;
  Format.print_flush ()

let timing_summary outcomes =
  print_newline ();
  print_endline "== Experiment wall-clock summary ==";
  List.iter
    (fun (o : Experiments.Runner.outcome) ->
      Printf.printf "  %-4s %8.2fs  %12d simulated rounds\n"
        o.Experiments.Runner.experiment.Experiments.Registry.id o.wall_s
        o.result.Experiments.Common.total_rounds)
    outcomes;
  Printf.printf "  total %7.2fs\n"
    (List.fold_left (fun acc (o : Experiments.Runner.outcome) -> acc +. o.wall_s) 0.0 outcomes)

type cli = {
  quick : bool;
  micro : bool;
  jobs : int;
  json : string option;
  ids : string list;
}

let usage () =
  Printf.eprintf
    "usage: main.exe [quick] [micro] [ID...] [--jobs N] [--json PATH]\navailable: %s, micro\n"
    (String.concat ", " Experiments.Registry.ids);
  exit 1

let parse_args args =
  let rec go acc = function
    | [] -> acc
    | "quick" :: rest -> go { acc with quick = true } rest
    | "micro" :: rest -> go { acc with micro = true } rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
       | Some jobs when jobs >= 1 -> go { acc with jobs } rest
       | _ -> usage ())
    | "--json" :: path :: rest -> go { acc with json = Some path } rest
    | id :: rest ->
      if Experiments.Registry.find id = None then usage ()
      else go { acc with ids = acc.ids @ [ id ] } rest
  in
  go
    { quick = false; micro = false; jobs = Parallel.default_jobs (); json = None; ids = [] }
    args

let () =
  let cli = parse_args (List.tl (Array.to_list Sys.argv)) in
  (* Bare `main.exe` (or just `quick`) keeps the historical behavior: every
     experiment table, then the micro-benchmarks.  `micro` alone skips the
     tables; explicit ids skip micro unless it is also requested. *)
  let run_experiments = cli.ids <> [] || not cli.micro in
  let run_micro_too = cli.micro || cli.ids = [] in
  if run_experiments then begin
    let experiments =
      match cli.ids with
      | [] -> Experiments.Registry.all
      | ids -> List.filter_map Experiments.Registry.find ids
    in
    let outcomes =
      Experiments.Runner.run_many ~quick:cli.quick ~jobs:cli.jobs experiments
    in
    List.iter render_outcome outcomes;
    timing_summary outcomes;
    match cli.json with
    | Some path -> (
      match
        Experiments.Runner.write_json ~path ~quick:cli.quick ~jobs:cli.jobs outcomes
      with
      | () -> Printf.printf "structured results written to %s\n" path
      | exception Sys_error msg ->
        Printf.eprintf "cannot write --json results: %s\n" msg;
        exit 1)
    | None -> ()
  end;
  if run_micro_too then run_micro ()
