(* radio_lint: AST-level determinism & protocol-safety linter.

   Walks every .ml under the configured roots (default: lint.toml's
   [lint].roots) and fails on nondeterminism escapes, partial functions
   in protocol modules, module-level mutable state, stray printing, and
   missing .mli interfaces.  See the README "Static analysis" section
   for the rule table and escape-comment syntax.

   Exit codes: 0 clean, 1 violations or unparseable files, 2 usage or
   configuration errors. *)

open Cmdliner

let json_of_violation (v : Lint.Engine.violation) =
  Experiments.Json.Obj
    [ ("file", Experiments.Json.String v.file);
      ("line", Experiments.Json.Int v.line);
      ("col", Experiments.Json.Int v.col);
      ("rule", Experiments.Json.String v.rule);
      ("message", Experiments.Json.String v.message) ]

let json_of_report ~config_path (r : Lint.Engine.report) =
  let open Experiments.Json in
  Obj
    [ ("schema", String "radio-lint/v1");
      ("config", String config_path);
      ("files_checked", Int (List.length r.files));
      ( "rules",
        List
          (Stdlib.List.map
             (fun (rule : Lint.Rules.t) ->
               Obj
                 [ ("id", String rule.id);
                   ("family", String (Lint.Rules.family_name rule.family));
                   ("summary", String rule.summary) ])
             Lint.Rules.all) );
      ("violations", List (Stdlib.List.map json_of_violation r.active));
      ( "suppressed",
        List
          (Stdlib.List.map
             (fun (v, reason) ->
               match json_of_violation v with
               | Obj fields -> Obj (fields @ [ ("reason", String reason) ])
               | other -> other)
             r.suppressed) );
      ( "errors",
        List
          (Stdlib.List.map
             (fun (file, msg) -> Obj [ ("file", String file); ("message", String msg) ])
             r.errors) ) ]

(* 0 = clean, 1 = violations or unparseable files, 2 = usage/config. *)
let run config_path json_path quiet roots =
  match Lint.Config.load config_path with
  | Error msg ->
    Printf.eprintf "radio_lint: cannot load %s: %s\n%!" config_path msg;
    2
  | Ok config -> (
    let roots = if roots = [] then config.Lint.Config.roots else roots in
    match List.filter (fun r -> not (Sys.file_exists r)) roots with
    | missing :: _ ->
      Printf.eprintf "radio_lint: no such file or directory: %s\n%!" missing;
      2
    | [] ->
    let report = Lint.Engine.run ~config roots in
    if not quiet then begin
      List.iter
        (fun v -> Format.printf "%a@." Lint.Engine.pp_violation v)
        report.Lint.Engine.active;
      List.iter
        (fun (file, msg) -> Format.printf "%s: error: %s@." file msg)
        report.Lint.Engine.errors;
      Format.printf "radio_lint: %d file(s), %d violation(s), %d suppressed, %d error(s)@."
        (List.length report.Lint.Engine.files)
        (List.length report.Lint.Engine.active)
        (List.length report.Lint.Engine.suppressed)
        (List.length report.Lint.Engine.errors)
    end;
    let status = if Lint.Engine.ok report then 0 else 1 in
    match json_path with
    | Some path -> (
      match
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc (Experiments.Json.to_string (json_of_report ~config_path report));
            output_char oc '\n')
      with
      | () -> status
      | exception Sys_error msg ->
        Printf.eprintf "radio_lint: cannot write --json results: %s\n%!" msg;
        2)
    | None -> status)

let config_arg =
  Arg.(
    value & opt string "lint.toml"
    & info [ "config" ] ~docv:"FILE" ~doc:"Lint configuration file.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:"Also write the report as radio-lint/v1 JSON to $(docv).")

let quiet_arg =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the text report (exit code only).")

let roots_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"ROOT"
        ~doc:"Directories or files to lint (default: the configuration's roots).")

let cmd =
  let doc = "statically enforce determinism and protocol-safety invariants" in
  let info = Cmd.info "radio_lint" ~doc ~exits:Cmd.Exit.defaults in
  Cmd.v info Term.(const run $ config_arg $ json_arg $ quiet_arg $ roots_arg)

let () = exit (Cmd.eval' cmd)
