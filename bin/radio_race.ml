(* radio_race: typed interprocedural race & determinism analyzer.

   Loads the .cmt typedtrees dune produces (`dune build @check`), links a
   whole-repo call graph, and checks two invariants the syntactic linter
   cannot see:

   - race-escape: a closure submitted across the pool boundary
     (Parallel.map_ordered, Pool.map_ordered, Common.replicates/sweep)
     must not write mutable state allocated outside itself — through any
     chain of aliases and calls;
   - race-taint: everything reachable from the experiment runner/registry
     or from a pool task must stay at or below DetLocal on the
     Pure < DetLocal < Tainted lattice.

   Shares lint.toml (race-escape / race-taint allowlists) and the exit
   code contract with radio_lint: 0 clean, 1 active findings, 2 usage,
   configuration, or cmt-loading errors.  Per-line escapes are
   `(* radio-race: allow <rule> *)` on the offending line or the line
   above.  The JSON report (radio-race/v1) is byte-identical for any
   --jobs. *)

open Cmdliner

let run root config_path build_dir json_path jobs quiet roots =
  let config_file =
    if Filename.is_relative config_path then Filename.concat root config_path
    else config_path
  in
  match Lint.Config.load config_file with
  | Error msg ->
    Printf.eprintf "radio_race: cannot load %s: %s\n%!" config_file msg;
    2
  | Ok config -> (
    let roots = if roots = [] then config.Lint.Config.roots else roots in
    let opts =
      { (Analysis.Driver.default_options ~config) with
        Analysis.Driver.build_dir = Filename.concat root build_dir;
        source_root = root;
        roots;
        jobs }
    in
    match Analysis.Driver.run opts with
    | Error msg ->
      Printf.eprintf "radio_race: %s\n%!" msg;
      2
    | Ok outcome -> (
      let report = outcome.Analysis.Driver.o_report in
      if not quiet then begin
        Format.printf "%a" Analysis.Report.pp_text report;
        Format.printf
          "radio_race: %d cmt(s), %d unit(s), %d active finding(s), %d suppressed, %d \
           error(s)@."
          outcome.Analysis.Driver.o_cmts outcome.Analysis.Driver.o_units
          (List.length (Analysis.Report.active report))
          (List.length report.Analysis.Report.r_findings
          - List.length (Analysis.Report.active report))
          (List.length report.Analysis.Report.r_errors)
      end;
      let status = Analysis.Report.exit_code report in
      match json_path with
      | Some path -> (
        match
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc (Experiments.Json.to_string (Analysis.Report.to_json report));
              output_char oc '\n')
        with
        | () -> status
        | exception Sys_error msg ->
          Printf.eprintf "radio_race: cannot write --json results: %s\n%!" msg;
          2)
      | None -> status))

let root_arg =
  Arg.(
    value & opt string "."
    & info [ "root" ] ~docv:"DIR"
        ~doc:"Workspace root: lint.toml, sources, and _build live here.")

let config_arg =
  Arg.(
    value & opt string "lint.toml"
    & info [ "config" ] ~docv:"FILE"
        ~doc:"Configuration file (shared with radio_lint), relative to --root.")

let build_dir_arg =
  Arg.(
    value
    & opt string (Filename.concat "_build" "default")
    & info [ "build-dir" ] ~docv:"DIR"
        ~doc:"Where dune put the .cmt files, relative to --root.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:"Also write the report as radio-race/v1 JSON to $(docv).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Domains for the cmt loading phase.  The report is byte-identical for any \
           value.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the text report (exit code only).")

let roots_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"ROOT"
        ~doc:"Source subtrees to analyze (default: the configuration's roots).")

let cmd =
  let doc = "typed interprocedural race & determinism analysis over cmt typedtrees" in
  let info = Cmd.info "radio_race" ~doc ~exits:Cmd.Exit.defaults in
  Cmd.v info
    Term.(
      const run $ root_arg $ config_arg $ build_dir_arg $ json_arg $ jobs_arg $ quiet_arg
      $ roots_arg)

let () = exit (Cmd.eval' cmd)
