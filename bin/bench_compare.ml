(* Compare two radio-bench/v1 documents (see bench/main.ml --bench-json).

   Usage: bench_compare [OPTIONS] BASELINE.json CURRENT.json

   Options (flags and positionals may be interleaved):
     --timing-tolerance PCT    flag micro-benchmarks slower by more than PCT%
     --require-bench PREFIXES  comma-separated name prefixes; each must match
                               at least one micro row of CURRENT (coverage
                               gate: a family silently dropped from the suite
                               exits nonzero)
     --append-history PATH     append a dated radio-bench-history/v1 entry
                               summarizing CURRENT (and its speedup vs
                               BASELINE) to the JSON history file at PATH,
                               creating it if absent
     --history-trend PATH      compare CURRENT micro timings against the most
                               recent entry of the history file at PATH and
                               print a TREND row for every benchmark slower
                               by more than 25%% (informational only: like
                               every timing signal, it never changes the
                               exit status; a missing or empty history file
                               is skipped with a note)

   Determinism fields (per-experiment total_rounds and output_sha256, and
   sha-consistency across any --jobs-sweep rows) are a hard gate: any
   drift, or an experiment that disappeared, exits nonzero.  Timing fields
   (ns/run, ops/sec, allocation words) are environment-dependent and only
   reported, never gated — CI machines and laptops disagree on speed, but
   never on simulated bytes.  --timing-tolerance PCT additionally flags
   micro-benchmarks that slowed down by more than PCT percent; the flags
   are informational and do not change the exit status. *)

module Json = Experiments.Json

let die fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 2) fmt

let load ~role path =
  (* A missing file gets its own message: "No such file or directory" buried
     in a Sys_error reads like an I/O fault, but the usual cause is a bench
     run that never produced the document this role expects. *)
  if not (Sys.file_exists path) then
    die "%s file %s does not exist (produce it with: dune exec bench/main.exe -- --bench-json %s)"
      role path path;
  let contents =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error msg -> die "cannot read %s file: %s" role msg
  in
  match Json.of_string contents with
  | Ok doc -> doc
  | Error msg -> die "%s: malformed JSON: %s" path msg

let check_schema path doc =
  match Option.bind (Json.member "schema" doc) Json.to_string_opt with
  | Some "radio-bench/v1" -> ()
  | Some other -> die "%s: unsupported schema %S (want radio-bench/v1)" path other
  | None -> die "%s: missing schema field" path

let rows key doc =
  match Option.bind (Json.member key doc) Json.to_list with
  | Some items -> items
  | None -> []

let str_field name row = Option.bind (Json.member name row) Json.to_string_opt
let int_field name row = Option.bind (Json.member name row) Json.to_int_opt
let float_field name row = Option.bind (Json.member name row) Json.to_float_opt

let assoc_rows ~key_field items =
  List.filter_map
    (fun row -> Option.map (fun k -> (k, row)) (str_field key_field row))
    items

(* -- benchmark history (radio-bench-history/v1) --

   A history file is an append-only JSON document:
     { "schema": "radio-bench-history/v1", "entries": [ ... ] }
   Each entry snapshots one bench_compare run: a UTC timestamp, the two
   document paths, whether the determinism gate passed, and per-micro
   timing/allocation medians from CURRENT with the speedup against
   BASELINE.  Timing history is observability data, never a gate — the
   trend across entries is what a human reads (see README). *)

let history_schema = "radio-bench-history/v1"

let load_history path =
  if not (Sys.file_exists path) then []
  else begin
    let doc = load ~role:"history" path in
    (match Option.bind (Json.member "schema" doc) Json.to_string_opt with
     | Some s when s = history_schema -> ()
     | Some other -> die "%s: unsupported history schema %S (want %s)" path other history_schema
     | None -> die "%s: missing schema field" path);
    match Option.bind (Json.member "entries" doc) Json.to_list with
    | Some entries -> entries
    | None -> []
  end

let history_entry ~baseline_path ~current_path ~current ~base_micro ~cur_micro
    ~determinism_ok =
  let micro =
    List.map
      (fun (name, cur_row) ->
        let speedup =
          match
            ( Option.bind (List.assoc_opt name base_micro) (float_field "ns_per_run"),
              float_field "ns_per_run" cur_row )
          with
          | Some b, Some c when b > 0.0 && c > 0.0 -> Json.Float (b /. c)
          | _ -> Json.Null
        in
        Json.Obj
          [ ("name", Json.String name);
            ( "ns_per_run",
              match float_field "ns_per_run" cur_row with
              | Some v -> Json.Float v
              | None -> Json.Null );
            ( "minor_words_per_run",
              match float_field "minor_words_per_run" cur_row with
              | Some v -> Json.Float v
              | None -> Json.Null );
            ("speedup_vs_baseline", speedup) ])
      cur_micro
  in
  Json.Obj
    [ ("recorded_utc", Json.String (Parallel.Clock.utc_iso8601 ()));
      ("baseline", Json.String baseline_path);
      ("current", Json.String current_path);
      ( "quick",
        match Option.bind (Json.member "quick" current) Json.to_bool_opt with
        | Some b -> Json.Bool b
        | None -> Json.Null );
      ("determinism_ok", Json.Bool determinism_ok);
      ("micro", Json.List micro) ]

let append_history ~path entry =
  let entries = load_history path @ [ entry ] in
  let doc =
    Json.Obj [ ("schema", Json.String history_schema); ("entries", Json.List entries) ]
  in
  let oc = try open_out path with Sys_error msg -> die "cannot write %s: %s" path msg in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string doc);
      output_char oc '\n');
  Printf.printf "history: appended entry %d to %s\n" (List.length entries) path

(* -- history trend (informational): CURRENT vs the last history entry --

   Nightly legs append an entry per run, so "the last entry" is yesterday's
   measurement on the same class of machine — a much fairer timing referent
   than a baseline checked in from a developer laptop.  Regressions beyond
   the fixed 25% threshold are printed and nothing more: day-to-day CI
   noise makes timing a trend to read, not a gate to trip. *)

let history_trend_threshold_pct = 25.0

let report_history_trend ~path ~cur_micro =
  match load_history path with
  | [] -> Printf.printf "trend: no history entries at %s yet, skipping\n" path
  | entries ->
    let last = List.nth entries (List.length entries - 1) in
    let last_micro =
      match Option.bind (Json.member "micro" last) Json.to_list with
      | Some rows -> assoc_rows ~key_field:"name" rows
      | None -> []
    in
    let when_ =
      Option.value ~default:"(undated)"
        (Option.bind (Json.member "recorded_utc" last) Json.to_string_opt)
    in
    let regressions =
      List.filter_map
        (fun (name, cur_row) ->
          match
            ( Option.bind (List.assoc_opt name last_micro) (float_field "ns_per_run"),
              float_field "ns_per_run" cur_row )
          with
          | Some prev, Some cur
            when prev > 0.0 && cur > 0.0
                 && (cur -. prev) /. prev *. 100.0 > history_trend_threshold_pct ->
            Some (name, (cur -. prev) /. prev *. 100.0)
          | _ -> None)
        cur_micro
    in
    (match regressions with
     | [] ->
       Printf.printf "trend: all micro-benchmarks within %.0f%% of the last history entry (%s)\n"
         history_trend_threshold_pct when_
     | rs ->
       Printf.printf
         "trend: %d micro-benchmark(s) slower than the last history entry (%s) by more \
          than %.0f%%:\n"
         (List.length rs) when_ history_trend_threshold_pct;
       List.iter (fun (name, d) -> Printf.printf "  TREND %-36s +%.1f%%\n" name d) rs;
       print_endline "  (informational only: timing never affects the exit status)")

type cli = {
  tolerance : float option;
  require_bench : string list;
  history : string option;
  history_trend : string option;
  paths : string list;
}

let () =
  let usage () =
    prerr_endline
      "usage: bench_compare [--timing-tolerance PCT] [--require-bench PREFIXES] \
       [--append-history PATH] [--history-trend PATH] BASELINE.json CURRENT.json";
    exit 2
  in
  let rec parse acc = function
    | [] -> acc
    | "--timing-tolerance" :: pct :: rest -> (
      match float_of_string_opt pct with
      | Some p when p >= 0.0 -> parse { acc with tolerance = Some p } rest
      | _ -> usage ())
    | "--require-bench" :: spec :: rest -> (
      let prefixes =
        List.filter (fun s -> s <> "") (List.map String.trim (String.split_on_char ',' spec))
      in
      match prefixes with
      | [] -> usage ()
      | _ -> parse { acc with require_bench = acc.require_bench @ prefixes } rest)
    | "--append-history" :: path :: rest -> parse { acc with history = Some path } rest
    | "--history-trend" :: path :: rest -> parse { acc with history_trend = Some path } rest
    | flag :: _ when String.length flag > 2 && String.sub flag 0 2 = "--" -> usage ()
    | path :: rest -> parse { acc with paths = acc.paths @ [ path ] } rest
  in
  let cli =
    parse
      { tolerance = None; require_bench = []; history = None; history_trend = None;
        paths = [] }
      (List.tl (Array.to_list Sys.argv))
  in
  let tolerance = cli.tolerance in
  let baseline_path, current_path =
    match cli.paths with [ b; c ] -> (b, c) | _ -> usage ()
  in
  let baseline = load ~role:"baseline" baseline_path
  and current = load ~role:"current" current_path in
  check_schema baseline_path baseline;
  check_schema current_path current;
  (* -- determinism gate -- *)
  let base_det = assoc_rows ~key_field:"id" (rows "determinism" baseline) in
  let cur_det = assoc_rows ~key_field:"id" (rows "determinism" current) in
  let drift = ref 0 in
  let complain fmt = Printf.ksprintf (fun msg -> incr drift; Printf.printf "DRIFT %s\n" msg) fmt in
  List.iter
    (fun (id, base_row) ->
      match List.assoc_opt id cur_det with
      | None -> complain "%s: experiment missing from %s" id current_path
      | Some cur_row ->
        (match (int_field "total_rounds" base_row, int_field "total_rounds" cur_row) with
         | Some b, Some c when b <> c -> complain "%s: total_rounds %d -> %d" id b c
         | _ -> ());
        (match (str_field "output_sha256" base_row, str_field "output_sha256" cur_row) with
         | Some b, Some c when b <> c -> complain "%s: output_sha256 %s -> %s" id b c
         | _ -> ()))
    base_det;
  List.iter
    (fun (id, _) ->
      if not (List.mem_assoc id base_det) then
        Printf.printf "note: %s present only in %s (new experiment?)\n" id current_path)
    cur_det;
  (* -- jobs-sweep consistency gate: every sweep row of a document must carry
     the same output hash, or the runner was nondeterministic under that
     worker count.  Wall-clock differences across rows are expected. -- *)
  let check_sweep path doc =
    let shas =
      List.filter_map (fun row -> str_field "output_sha256" row) (rows "jobs_sweep" doc)
    in
    match shas with
    | [] | [ _ ] -> ()
    | first :: rest ->
      if not (List.for_all (String.equal first) rest) then
        complain "%s: jobs_sweep output_sha256 differs across worker counts" path
  in
  check_sweep baseline_path baseline;
  check_sweep current_path current;
  (* -- timing report (informational only) -- *)
  let base_micro = assoc_rows ~key_field:"name" (rows "micro" baseline) in
  let cur_micro = assoc_rows ~key_field:"name" (rows "micro" current) in
  let slow = ref [] in
  if base_micro <> [] && cur_micro <> [] then begin
    Printf.printf "\n%-32s %12s %12s %8s\n" "micro-benchmark" "base ns" "cur ns" "speedup";
    List.iter
      (fun (name, base_row) ->
        match List.assoc_opt name cur_micro with
        | None -> Printf.printf "%-32s %12s %12s %8s\n" name "-" "-" "gone"
        | Some cur_row -> (
          match (float_field "ns_per_run" base_row, float_field "ns_per_run" cur_row) with
          | Some b, Some c when c > 0.0 ->
            Printf.printf "%-32s %12.1f %12.1f %7.2fx\n" name b c (b /. c);
            (match tolerance with
             | Some pct when b > 0.0 && (c -. b) /. b *. 100.0 > pct ->
               slow := (name, (c -. b) /. b *. 100.0) :: !slow
             | _ -> ())
          | _ -> Printf.printf "%-32s %12s %12s %8s\n" name "?" "?" "?"))
      base_micro
  end;
  (match tolerance with
   | None -> ()
   | Some pct ->
     (match List.rev !slow with
      | [] ->
        Printf.printf "\ntiming: all micro-benchmarks within %.1f%% of baseline\n" pct
      | regressions ->
        Printf.printf "\ntiming: %d micro-benchmark(s) slower than baseline by more than %.1f%%:\n"
          (List.length regressions) pct;
        List.iter (fun (name, d) -> Printf.printf "  SLOW %-32s +%.1f%%\n" name d) regressions;
        print_endline "  (informational only: timing never affects the exit status)"));
  (* -- coverage gate: every --require-bench prefix must match a micro row of
     CURRENT.  This catches a benchmark family silently dropped from the
     suite, which a pure diff-against-baseline would report as "gone" without
     failing. -- *)
  let missing_families =
    List.filter
      (fun prefix ->
        not (List.exists (fun (name, _) -> String.starts_with ~prefix name) cur_micro))
      cli.require_bench
  in
  List.iter
    (fun p ->
      Printf.printf "MISSING no micro-benchmark in %s matches prefix %S\n" current_path p)
    missing_families;
  (* The trend runs before any --append-history write, so it always compares
     against the previous run's entry, never the one being recorded now. *)
  (match cli.history_trend with
   | Some path -> report_history_trend ~path ~cur_micro
   | None -> ());
  let determinism_ok = !drift = 0 in
  (match cli.history with
   | Some path ->
     append_history ~path
       (history_entry ~baseline_path ~current_path ~current ~base_micro ~cur_micro
          ~determinism_ok)
   | None -> ());
  if not determinism_ok then begin
    Printf.printf "\n%d determinism drift(s): simulated output changed.\n" !drift;
    exit 1
  end;
  if missing_families <> [] then begin
    Printf.printf "\n%d required benchmark famil(ies) missing from %s.\n"
      (List.length missing_families) current_path;
    exit 1
  end;
  print_endline "\ndeterminism: OK (simulated outputs byte-identical to baseline)"
