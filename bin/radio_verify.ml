(* radio_verify: the exhaustive small-model theorem verifier.

   Runs the certificate suite of lib/verify over a bounded tier and exits
   0 iff every certificate passed.  Stdout (the human report) and the
   --json document are deterministic — byte-identical across --jobs
   counts and hosts; wall-clock goes to stderr only. *)

open Cmdliner

let tier_arg =
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Quick tier: all graphs on <= 5 nodes, t <= 2, C <= 6 (the CI gate; default).")
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:"Full tier: all graphs on <= 6 nodes, C <= 8, tree feedback at t = 2 (nightly).")
  in
  let pick quick full =
    match (quick, full) with
    | _, false -> `Ok "quick"
    | false, true -> `Ok "full"
    | true, true -> `Error (false, "--quick and --full are mutually exclusive")
  in
  Term.(ret (const pick $ quick $ full))

let jobs_arg =
  Arg.(
    value
    & opt int (Parallel.default_jobs ())
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the enumeration shards (default: the recommended \
           domain count).  Certificates are byte-identical for every N.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:"Also write the radio-verify/v1 certificate document to $(docv).")

let run tier_label jobs json =
  match Verify.Instances.of_label tier_label with
  | None -> `Error (false, Printf.sprintf "unknown tier %S" tier_label)
  | Some tier ->
    let t0 = Parallel.Clock.now_s () in
    let report = Verify.Suite.run tier ~jobs in
    let wall = Parallel.Clock.now_s () -. t0 in
    Experiments.Common.render Format.std_formatter report.Verify.Suite.human;
    Format.pp_print_flush Format.std_formatter ();
    (match json with
     | None -> ()
     | Some path ->
       let oc = open_out path in
       output_string oc (Experiments.Json.to_string report.Verify.Suite.doc);
       output_char oc '\n';
       close_out oc;
       Printf.eprintf "certificates written to %s\n%!" path);
    (* Timing is observability only: stderr, never in the certificates. *)
    Printf.eprintf "[verify-%s] %.2fs wall-clock, %d simulated rounds\n%!" tier_label wall
      report.Verify.Suite.human.Experiments.Common.total_rounds;
    if report.Verify.Suite.passed then `Ok ()
    else begin
      (* Exit 1, distinct from cmdliner's 124 for CLI misuse: CI gates on
         this code and the violation lines just rendered to stdout. *)
      Printf.eprintf "certificate suite FAILED\n%!";
      exit 1
    end

let main =
  let info =
    Cmd.info "radio_verify"
      ~doc:
        "Exhaustively verify the paper's theorems on small models: every graph, every \
         referee strategy, every strike sequence within the tier's bounds."
  in
  Cmd.v info Term.(ret (const run $ tier_arg $ jobs_arg $ json_arg))

let () = exit (Cmd.eval main)
