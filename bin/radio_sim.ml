(* radio_sim: command-line driver for the secure-radio protocol suite.

   Subcommands:
     exchange    run f-AME on a generated workload
     groupkey    establish a shared group key (Section 6)
     channel     emulate the long-lived secure channel (Section 7)
     service     run the multiplexed secure-channel service (Section 7 at scale)
     game        play the starred-edge removal game (Section 5.1-5.2)
     experiment  regenerate a paper experiment table (e1..e12)
     list        list available experiments *)

open Cmdliner

let attack_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Core.attack_of_string s) in
  let print fmt a =
    let name =
      match a with
      | Core.No_attack -> "none"
      | Core.Random_jam -> "random-jam"
      | Core.Sweep_jam -> "sweep-jam"
      | Core.Schedule_jam -> "schedule-jam"
      | Core.Spoof -> "spoof"
    in
    Format.pp_print_string fmt name
  in
  Arg.conv (parse, print)

let seed_arg =
  Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"Master random seed.")

let t_arg =
  Arg.(value & opt int 2 & info [ "t" ] ~docv:"T" ~doc:"Adversary budget (channels per round).")

let n_arg =
  Arg.(value & opt int 0 & info [ "n" ] ~docv:"N" ~doc:"Node count (0 = smallest legal).")

let attack_arg =
  Arg.(
    value
    & opt attack_conv Core.Schedule_jam
    & info [ "attack" ] ~docv:"ATTACK"
        ~doc:(Printf.sprintf "Adversary strategy: %s." (String.concat ", " Core.attack_names)))

let pairs_arg =
  Arg.(value & opt int 6 & info [ "pairs" ] ~docv:"K" ~doc:"Number of disjoint exchange pairs.")

let resolve_n ~t n =
  if n > 0 then n
  else
    Ame.Params.nodes_required Ame.Params.default ~channels_used:(t + 1) ~budget:t
      ~channels:(t + 1)
    + 8

let exchange_cmd =
  let run seed t n attack pairs_count =
    let n = resolve_n ~t n in
    let pairs_count = min pairs_count (n / 2) in
    let pairs = Core.Rgraph.Workload.disjoint_pairs ~n ~count:pairs_count in
    let triples = List.map (fun (v, w) -> (v, w, Printf.sprintf "msg-%d-%d" v w)) pairs in
    let r = Core.exchange ~seed ~t ~n ~attack triples in
    Printf.printf "f-AME: n=%d t=%d C=%d |E|=%d\n" n t (t + 1) pairs_count;
    Printf.printf "rounds=%d delivered=%d failed=%d authentic=%b diverged=%b\n" r.rounds
      (List.length r.delivered) (List.length r.failed) r.authentic r.diverged;
    (match r.disruption_cover with
     | Some c -> Printf.printf "disruption vertex cover = %d (bound t = %d)\n" c t
     | None -> ());
    List.iter (fun ((v, w), body) -> Printf.printf "  %d -> %d : %S\n" v w body) r.delivered
  in
  Cmd.v (Cmd.info "exchange" ~doc:"Run f-AME on a disjoint-pairs workload.")
    Term.(const run $ seed_arg $ t_arg $ n_arg $ attack_arg $ pairs_arg)

let groupkey_cmd =
  let run seed t n attack =
    let n = resolve_n ~t n in
    let r = Core.establish_group_key ~seed ~t ~n ~attack () in
    Printf.printf "group key: n=%d t=%d rounds=%d\n" n t r.setup_rounds;
    Printf.printf "agreed=%d wrong=%d ignorant=%d (guarantee: agreed >= %d, wrong = 0)\n"
      r.agreed_holders r.wrong_holders r.ignorant (n - t)
  in
  Cmd.v (Cmd.info "groupkey" ~doc:"Establish a shared group key (Section 6).")
    Term.(const run $ seed_arg $ t_arg $ n_arg $ attack_arg)

let channel_cmd =
  let messages_arg =
    Arg.(value & opt int 5 & info [ "messages" ] ~docv:"M" ~doc:"Messages to broadcast.")
  in
  let run seed t n attack count =
    let n = resolve_n ~t n in
    let sends = List.init count (fun i -> (i, i mod n, Printf.sprintf "broadcast-%d" i)) in
    let r = Core.open_channel ~seed ~t ~n ~attack sends in
    Printf.printf "secure channel: n=%d t=%d, %d real rounds per message\n" n t
      r.rounds_per_message;
    List.iter
      (fun (er, sender, msg, receivers) ->
        Printf.printf "  [%d] node %d %S -> %d receivers\n" er sender msg receivers)
      r.deliveries;
    Printf.printf "secrecy=%b authentication=%b\n" r.secrecy_ok r.authentication_ok
  in
  Cmd.v (Cmd.info "channel" ~doc:"Emulate the long-lived secure channel (Section 7).")
    Term.(const run $ seed_arg $ t_arg $ n_arg $ attack_arg $ messages_arg)

let service_cmd =
  let module Mux = Core.Secure_channel.Mux in
  let channels_arg =
    Arg.(value & opt int 256 & info [ "channels" ] ~docv:"M" ~doc:"Logical channels.")
  in
  let phys_arg =
    Arg.(value & opt int 16 & info [ "phys" ] ~docv:"C" ~doc:"Physical radio channels.")
  in
  let rounds_arg =
    Arg.(value & opt int 12 & info [ "rounds" ] ~docv:"R" ~doc:"Emulated rounds to run.")
  in
  let epoch_arg =
    Arg.(value & opt int 4 & info [ "epoch-len" ] ~docv:"E" ~doc:"Emulated rounds per key epoch.")
  in
  let outsiders_arg =
    Arg.(
      value & opt int 0
      & info [ "outsiders" ] ~docv:"K" ~doc:"Keyless nodes that snoop and forge.")
  in
  let crypto_arg =
    Arg.(
      value & opt string "batched"
      & info [ "crypto" ] ~docv:"MODE"
          ~doc:"Crypto back end: batched or per-message (byte-identical output).")
  in
  let jam_arg =
    Arg.(value & flag & info [ "jam" ] ~doc:"Random jammer spending the full budget (-t).")
  in
  let ack_arg =
    Arg.(
      value & opt string "slotted"
      & info [ "ack-mode" ] ~docv:"MODE"
          ~doc:
            "Ack mode: slotted (dedicated ack phase) or piggybacked (cumulative acks ride \
             in duplex-paired data frames; needs an even channel count).")
  in
  let run seed t channels phys rounds epoch_len outsiders crypto ack_mode jam =
    match
      match
        match crypto with
        | "batched" -> Ok Mux.Batched
        | "per-message" | "permsg" -> Ok Mux.Per_message
        | other -> Error (Printf.sprintf "unknown crypto mode %S (batched, per-message)" other)
      with
      | Error _ as e -> e
      | Ok crypto -> (
        match ack_mode with
        | "slotted" -> Ok (crypto, Mux.Slotted)
        | "piggybacked" | "pig" -> Ok (crypto, Mux.Piggybacked)
        | other -> Error (Printf.sprintf "unknown ack mode %S (slotted, piggybacked)" other))
    with
    | Error msg -> `Error (false, msg)
    | Ok (crypto, ack_mode) ->
      let spec =
        Mux.make ~key:"radio-sim-service-key" ~logical:channels ~phys ~budget:t ~crypto
          ~ack_mode ~rounds ~epoch_len ~grace:(max 1 (epoch_len / 4)) ~outsiders ~seed ()
      in
      let adversary =
        if jam then
          Core.Radio.Adversary.random_jammer (Core.Prng.Rng.create seed) ~channels:phys
            ~budget:t
        else Core.Radio.Adversary.null
      in
      let r = Mux.run spec ~adversary in
      print_string (Mux.render_stats r);
      `Ok ()
  in
  Cmd.v
    (Cmd.info "service"
       ~doc:"Run the multiplexed secure-channel service (Section 7 at scale).")
    Term.(
      ret
        (const run $ seed_arg $ t_arg $ channels_arg $ phys_arg $ rounds_arg $ epoch_arg
       $ outsiders_arg $ crypto_arg $ ack_arg $ jam_arg))

let game_cmd =
  let nodes_arg =
    Arg.(value & opt int 8 & info [ "nodes" ] ~docv:"M" ~doc:"Complete graph size.")
  in
  let referee_arg =
    Arg.(
      value & opt string "minimal"
      & info [ "referee" ] ~docv:"R" ~doc:"Referee: generous, minimal, spiteful, random.")
  in
  let run seed t m referee_name =
    let g = Core.Rgraph.Digraph.of_edges (Core.Rgraph.Workload.complete ~n:m) in
    let referee =
      match referee_name with
      | "generous" -> Core.Game.Referee.generous
      | "minimal" -> Core.Game.Referee.minimal_first
      | "spiteful" -> Core.Game.Referee.spiteful ~min_return:1
      | "random" -> Core.Game.Referee.random (Core.Prng.Rng.create seed) ~min_return:1
      | other -> failwith (Printf.sprintf "unknown referee %S" other)
    in
    let o = Core.Game.Runner.play (Core.Game.State.create g ~t) referee in
    Printf.printf "starred-edge removal on K%d (|E|=%d), t=%d, referee=%s\n" m
      (Core.Rgraph.Digraph.edge_count g) t referee_name;
    Printf.printf "moves=%d stars=%d edges_removed=%d won=%b\n" o.moves o.stars
      o.edges_removed o.won
  in
  Cmd.v (Cmd.info "game" ~doc:"Play the starred-edge removal game.")
    Term.(const run $ seed_arg $ t_arg $ nodes_arg $ referee_arg)

let experiment_cmd =
  let ids_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"ID"
          ~doc:"Experiment ids (e1..e17), or 'all' for the full registry.")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller parameter grid.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int (Parallel.default_jobs ())
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the parallel runner (default: the \
             recommended domain count).  Output is byte-identical for \
             every N.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Also write structured results (tables as data, per-experiment \
                wall-clock metrics) to $(docv).")
  in
  let run ids quick jobs json =
    let resolve id =
      match Experiments.Registry.find id with
      | Some e -> Ok e
      | None ->
        Error
          (Printf.sprintf "unknown experiment %S; available: %s" id
             (String.concat ", " Experiments.Registry.ids))
    in
    let experiments =
      if ids = [ "all" ] then Ok Experiments.Registry.all
      else
        List.fold_right
          (fun id acc ->
            match (resolve id, acc) with
            | Ok e, Ok es -> Ok (e :: es)
            | Error m, _ | _, Error m -> Error m)
          ids (Ok [])
    in
    match experiments with
    | Error msg -> `Error (false, msg)
    | Ok experiments ->
      let outcomes = Experiments.Runner.run_many ~quick ~jobs experiments in
      List.iter
        (fun (o : Experiments.Runner.outcome) ->
          Format.printf "%s: %s@." o.experiment.Experiments.Registry.id
            o.experiment.Experiments.Registry.title;
          Experiments.Runner.render Format.std_formatter o;
          (* Timing goes to stderr so stdout stays independent of machine
             speed and --jobs. *)
          Printf.eprintf "[%s] %.2fs wall-clock, %d simulated rounds\n%!"
            o.experiment.Experiments.Registry.id o.wall_s
            o.result.Experiments.Common.total_rounds)
        outcomes;
      (match json with
       | None -> `Ok ()
       | Some path -> (
         match Experiments.Runner.write_json ~path ~quick ~jobs outcomes with
         | () ->
           Printf.eprintf "structured results written to %s\n%!" path;
           `Ok ()
         | exception Sys_error msg ->
           `Error (false, Printf.sprintf "cannot write --json results: %s" msg)))
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Regenerate paper experiment tables.")
    Term.(ret (const run $ ids_arg $ quick_arg $ jobs_arg $ json_arg))

let rekey_cmd =
  let compromised_arg =
    Arg.(
      value & opt (list int) [ 7 ]
      & info [ "compromised" ] ~docv:"IDS" ~doc:"Comma-separated compromised node ids.")
  in
  let run seed t n compromised =
    let n = resolve_n ~t n in
    let channels = t + 1 in
    let cfg = Core.Radio.Config.make ~seed ~n ~channels ~t ~max_rounds:50_000_000 () in
    let setup =
      Core.Groupkey.Protocol.run ~cfg
        ~fame_adversary:(fun _ -> Core.Radio.Adversary.null)
        ~hop_adversary:
          (Core.Radio.Adversary.random_jammer (Core.Prng.Rng.create seed) ~channels ~budget:t)
        ()
    in
    Printf.printf "setup: %d rounds, %d/%d agreed\n" setup.total_rounds
      setup.agreed_key_holders n;
    let rk =
      Core.Groupkey.Rekey.run ~cfg ~previous:setup ~compromised
        ~hop_adversary:
          (Core.Radio.Adversary.random_jammer
             (Core.Prng.Rng.create (Int64.add seed 1L))
             ~channels ~budget:t)
        ()
    in
    Printf.printf "rekey (excluding %s): %d rounds, %d survivors agreed, %d wrong, %d leaked\n"
      (String.concat "," (List.map string_of_int compromised))
      rk.rounds rk.agreed_key_holders rk.wrong_key_holders rk.excluded_with_key
  in
  Cmd.v (Cmd.info "rekey" ~doc:"Establish a group key, then rotate it after a compromise.")
    Term.(const run $ seed_arg $ t_arg $ n_arg $ compromised_arg)

let trace_cmd =
  let rounds_arg =
    Arg.(value & opt int 12 & info [ "rounds" ] ~docv:"R" ~doc:"Rounds to display.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Write CSV here.")
  in
  let run seed t pairs_count shown csv =
    let n = resolve_n ~t 0 in
    let channels = t + 1 in
    let cfg = Core.Radio.Config.make ~seed ~n ~channels ~t ~record_transcript:true () in
    let pairs = Core.Rgraph.Workload.disjoint_pairs ~n ~count:(min pairs_count (n / 2)) in
    let o =
      Core.Ame.Fame.run ~cfg ~pairs
        ~messages:(fun (v, w) -> Printf.sprintf "msg-%d-%d" v w)
        ~adversary:(fun board ->
          Core.Ame.Attacks.schedule_jammer board ~channels ~budget:t
            ~prefer:Core.Ame.Attacks.Prefer_edges)
        ()
    in
    let transcript = o.Core.Ame.Fame.engine.Core.Radio.Engine.transcript in
    Format.printf "f-AME trace: %d rounds total, showing %d@.@." (List.length transcript) shown;
    Core.Radio.Trace.pp_rounds ~limit:shown Format.std_formatter transcript;
    Format.printf "@.channel utilization:@.";
    Core.Radio.Trace.pp_utilization Format.std_formatter
      (Core.Radio.Trace.utilization ~channels transcript);
    match csv with
    | Some path ->
      let oc = open_out path in
      output_string oc (Core.Radio.Trace.to_csv transcript);
      close_out oc;
      Printf.printf "CSV written to %s\n" path
    | None -> ()
  in
  Cmd.v (Cmd.info "trace" ~doc:"Run f-AME with transcript recording and display the trace.")
    Term.(const run $ seed_arg $ t_arg $ pairs_arg $ rounds_arg $ csv_arg)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Experiments.Registry.experiment) -> Printf.printf "%-4s %s\n" e.id e.title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments.") Term.(const run $ const ())

let main =
  let info =
    Cmd.info "radio_sim" ~version:Core.version
      ~doc:"Secure communication over multi-channel radio with a malicious adversary."
  in
  Cmd.group info
    [ exchange_cmd; groupkey_cmd; rekey_cmd; channel_cmd; service_cmd; game_cmd; trace_cmd;
      experiment_cmd; list_cmd ]

let () = exit (Cmd.eval main)
