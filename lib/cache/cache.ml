(* Deterministic, pool-safe memoization.

   The store is domain-local ([Domain.DLS]): every domain — the main one
   and each [Parallel.Pool] worker — owns a private table, so lookups and
   inserts need no lock, impose no cross-domain ordering, and cannot leak
   one worker's progress into another's.  Because a memo may only cache a
   *pure* function of its key, a hit returns exactly what a fresh solve
   would, so simulated output is byte-identical whether the cache is hot,
   cold, shared, or disabled — the property `bench_compare` gates on.

   The only cross-domain state is monotonically-increasing [Atomic]
   hit/miss counters (observability only; never branched on by simulated
   code) and the global enable flag, flipped by tests around deterministic
   sections. *)

type stats = { hits : int; misses : int }

type 'v t = {
  name : string;
  capacity : int;
  store : (string, 'v) Hashtbl.t Domain.DLS.key;
  hit_count : int Atomic.t;
  miss_count : int Atomic.t;
}

let enabled_flag = Atomic.make true

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

let with_disabled f =
  let prev = Atomic.get enabled_flag in
  Atomic.set enabled_flag false;
  Fun.protect ~finally:(fun () -> Atomic.set enabled_flag prev) f

let create ?(capacity = 1 lsl 16) name =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be positive";
  { name;
    capacity;
    store = Domain.DLS.new_key (fun () -> Hashtbl.create 256);
    hit_count = Atomic.make 0;
    miss_count = Atomic.make 0 }

let name t = t.name

let clear t = Hashtbl.reset (Domain.DLS.get t.store)

let find_or_compute t ~key f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let tbl = Domain.DLS.get t.store in
    match Hashtbl.find_opt tbl key with
    | Some v ->
      Atomic.incr t.hit_count;
      v
    | None ->
      let v = f () in
      (* Overflow policy: drop the whole (domain-local) table.  Eviction
         order never influences results — only which future queries
         re-solve — so the cheapest deterministic policy wins. *)
      if Hashtbl.length tbl >= t.capacity then Hashtbl.reset tbl;
      Hashtbl.add tbl key v;
      Atomic.incr t.miss_count;
      v
  end

let stats t = { hits = Atomic.get t.hit_count; misses = Atomic.get t.miss_count }

(* -- canonical digest keys -------------------------------------------- *)

module Key = struct
  (* Two independent 63-bit mixing lanes (splitmix-style xorshift-multiply)
     over the appended ints give a ~126-bit digest: collisions between
     distinct canonical forms are negligible at any realistic query count.
     All arithmetic is native-int and allocation-free until [finish]. *)

  type builder = {
    mutable h1 : int;
    mutable h2 : int;
    mutable len : int;
  }

  let mix h x =
    let h = h lxor x in
    let h = h * 0x2545F4914F6CDD1D in
    let h = h lxor (h lsr 29) in
    let h = h * 0x1B03738712FAD5C9 in
    h lxor (h lsr 32)

  let create () = { h1 = 0x517CC1B727220A5; h2 = 0x2C62272E07BB0142; len = 0 }

  let add_int b x =
    b.h1 <- mix b.h1 x;
    b.h2 <- mix b.h2 (x lxor 0x27D4EB2F165667C5);
    b.len <- b.len + 1

  let finish b =
    let h1 = mix b.h1 b.len and h2 = mix b.h2 (b.len lxor 0x165667B19E3779F9) in
    let bytes = Bytes.create 16 in
    for i = 0 to 7 do
      Bytes.unsafe_set bytes i (Char.unsafe_chr ((h1 lsr (8 * i)) land 0xFF));
      Bytes.unsafe_set bytes (8 + i) (Char.unsafe_chr ((h2 lsr (8 * i)) land 0xFF))
    done;
    Bytes.unsafe_to_string bytes

  let of_ints xs =
    let b = create () in
    List.iter (add_int b) xs;
    finish b
end
