(** Deterministic, pool-safe memoization keyed on canonical digests.

    A ['v t] memoizes a {e pure} function [key -> 'v]: callers must
    guarantee that every computation stored under a key would return the
    same value if re-run.  Under that contract a cache hit is
    indistinguishable from a fresh solve, so memoized paths stay
    byte-identical across [--jobs] counts and across cache on/off — the
    invariant the experiment-determinism gates check.

    Storage is domain-local ([Domain.DLS]): the main domain and every
    [Parallel.Pool] worker hold independent tables, so no locks are taken
    and workers never contend or interleave.  Repeated queries hit within
    the domain that first solved them; a query duplicated across domains
    re-solves at most once per domain.  Hit/miss totals are aggregated
    across domains with [Atomic] counters (observability only). *)

type 'v t

type stats = { hits : int; misses : int }

val create : ?capacity:int -> string -> 'v t
(** [create name] makes a named memo.  [capacity] (default [65536])
    bounds each domain-local table; on overflow the table is dropped
    wholesale — the cheapest policy whose effect on results is provably
    none (only future re-solves change).  Raises [Invalid_argument] on a
    non-positive capacity. *)

val find_or_compute : 'v t -> key:string -> (unit -> 'v) -> 'v
(** [find_or_compute t ~key f] returns the cached value for [key] in the
    calling domain's table, or runs [f], stores, and returns the result.
    When the global switch is off (see {!set_enabled}) it always runs [f]
    and stores nothing. *)

val name : 'v t -> string

val clear : 'v t -> unit
(** Drops the {e calling domain's} table.  Other domains' tables are
    untouched (they are unreachable by design). *)

val stats : 'v t -> stats
(** Cumulative hit/miss totals across all domains. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Global switch shared by every memo (reads are a single [Atomic.get]).
    Intended for tests and A/B measurement; flipping it never changes any
    memoized result, only whether solves repeat. *)

val with_disabled : (unit -> 'a) -> 'a
(** [with_disabled f] runs [f] with the switch off, restoring the
    previous state afterwards (even on exceptions). *)

(** Canonical digest keys: append ints, get a 16-byte key string built
    from two independent 63-bit mixing lanes.  Deterministic across runs,
    domains, and hosts; collision odds are negligible (~2^-126 per
    pair). *)
module Key : sig
  type builder

  val create : unit -> builder

  val add_int : builder -> int -> unit

  val finish : builder -> string

  val of_ints : int list -> string
end
