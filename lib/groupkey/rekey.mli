(** Dynamic re-keying after device compromise.

    The paper's introduction motivates establishing keys without
    pre-programming partly because "it might be useful to be able to re-key
    dynamically, for example, after the detection of a compromised device".
    This module provides that operation: given the pairwise keys from an
    earlier {!Protocol.run}, it distributes {e fresh} leader proposals and
    re-runs the agreement — skipping the expensive f-AME Part 1 — while
    excluding the compromised devices, whose pairwise keys are never used
    again.

    Cost: Theta(n t^2 log n) rounds (Parts 2-3 only), versus
    Theta(n t^3 log n) for a full setup. *)

type outcome = {
  engine : Radio.Engine.result;
  group_key : string option array;  (** per node *)
  agreed_key_holders : int;
  wrong_key_holders : int;
  excluded_with_key : int;
      (** compromised nodes that ended up holding the new key: must be 0 *)
  rounds : int;
}

val run :
  ?part2_beta:float ->
  ?part3_beta:float ->
  ?seed_salt:int64 ->
  cfg:Radio.Config.t ->
  previous:Protocol.outcome ->
  compromised:int list ->
  hop_adversary:Radio.Adversary.t ->
  unit ->
  outcome
(** [run ~cfg ~previous ~compromised ~hop_adversary ()] re-keys the group
    from [previous]'s pairwise keys, cutting out [compromised].  Requires
    [compromised] to contain no leader (a compromised leader's pairwise keys
    are all suspect; re-run the full protocol in that case —
    [Invalid_argument] otherwise). *)
