(** Establishing a shared secret group key (Section 6).

    Part 1 — pairwise keys: f-AME swaps one-round Diffie-Hellman messages
    over the (t+1)-leader spanner (every ordered pair touching a leader), so
    each leader ends up sharing a secret key with all but at most t nodes.

    Part 2 — leader key dissemination: every (leader, node) pair with a
    shared key gets an epoch of Theta(t log n) rounds; the pair hops
    channels pseudo-randomly (PRF of the shared key), the leader
    transmitting its chosen group-key proposal encrypted and MACed.  A
    leader that failed to pair with more than t nodes instead announces
    itself incomplete.

    Part 3 — agreement: 2t+1 designated non-leader reporters each get an
    epoch of Theta(t^2 log n) rounds to broadcast, on random channels, the
    smallest leader whose key they received together with that key's hash.
    A node adopts the smallest leader for which it holds the key and has
    verified t+1 distinct reporters.  Since the smallest complete leader is
    reported by at least t+1 honest reporters and its key reached all but t
    nodes, all but t nodes adopt the same key, with high probability.

    Total cost Theta(n t^3 log n) rounds, dominated by Part 1. *)

type node_result = {
  pairwise : (int * string) list;  (** peer id, shared symmetric key *)
  leader_keys : (int * string) list;  (** leader id, received proposal *)
  group_key : string option;
}

type outcome = {
  fame : Ame.Fame.outcome;  (** Part 1 transcript *)
  engine : Radio.Engine.result;  (** Parts 2-3 transcript *)
  nodes : node_result array;
  complete_leaders : int list;
  agreed_key_holders : int;
      (** nodes holding the most common adopted key *)
  wrong_key_holders : int;
      (** nodes holding some other key (should be 0) *)
  no_key_holders : int;  (** nodes that correctly report ignorance *)
  total_rounds : int;
}

val leader_count : t:int -> int
(** t + 1. *)

val reporters : t:int -> int list
(** The 2t+1 designated reporters of Part 3 (smallest non-leader ids). *)

val run :
  ?ame_params:Ame.Params.t ->
  ?dh_params:Crypto.Dh.params ->
  ?part2_beta:float ->
  ?part3_beta:float ->
  cfg:Radio.Config.t ->
  fame_adversary:(Ame.Oracle.t -> Radio.Adversary.t) ->
  hop_adversary:Radio.Adversary.t ->
  unit ->
  outcome
(** [hop_adversary] faces Parts 2-3, where honest channel choices are
    pseudo-random (Part 2) or uniform (Part 3); it cannot predict either. *)
