type outcome = {
  engine : Radio.Engine.result;
  group_key : string option array;
  agreed_key_holders : int;
  wrong_key_holders : int;
  excluded_with_key : int;
  rounds : int;
}

let log2 x = log x /. log 2.0

let run ?(part2_beta = 4.0) ?(part3_beta = 4.0) ?(seed_salt = 0x4E657741L) ~cfg ~previous
    ~compromised ~hop_adversary () =
  let n = cfg.Radio.Config.n in
  let t = cfg.Radio.Config.t in
  let leaders = List.init (t + 1) Fun.id in
  List.iter
    (fun c ->
      if List.mem c leaders then
        invalid_arg "Rekey.run: compromised leader requires a full re-setup")
    compromised;
  let master = Prng.Rng.create (Int64.logxor cfg.Radio.Config.seed seed_salt) in
  let fresh_proposals =
    Array.init n (fun v ->
        let rng = Prng.Rng.split_at master (9000 + v) in
        String.concat ""
          (List.init 4 (fun _ -> Crypto.Dh.encode_public (Prng.Rng.bits64 rng))))
  in
  (* Pairwise keys survive from the previous setup, minus compromised
     peers. *)
  let pairwise v =
    if List.mem v compromised then []
    else
      List.filter
        (fun (peer, _) -> not (List.mem peer compromised))
        previous.Protocol.nodes.(v).Protocol.pairwise
  in
  let complete_leaders =
    (* A leader is complete for the re-key if it still shares keys with all
       but t of the surviving nodes. *)
    let survivors = n - List.length compromised in
    List.filter (fun v -> List.length (pairwise v) >= survivors - 1 - t) leaders
  in
  let part2_reps =
    max 1 (int_of_float (ceil (part2_beta *. float_of_int (t + 1) *. log2 (float_of_int (max n 4)))))
  in
  let part3_reps =
    max 1
      (int_of_float
         (ceil (part3_beta *. float_of_int ((t + 1) * (t + 1)) *. log2 (float_of_int (max n 4)))))
  in
  let diss =
    Dissemination.run
      ~cfg:{ cfg with Radio.Config.seed = Int64.add cfg.Radio.Config.seed seed_salt }
      ~pairwise
      ~proposals:(fun v -> fresh_proposals.(v))
      ~complete_leaders ~excluded:compromised ~part2_reps ~part3_reps
      ~adversary:hop_adversary ()
  in
  let group_key = diss.Dissemination.group_key in
  let tally = Hashtbl.create 8 in
  Array.iteri
    (fun id k ->
      if not (List.mem id compromised) then
        match k with
        | Some k -> Hashtbl.replace tally k (1 + Option.value (Hashtbl.find_opt tally k) ~default:0)
        | None -> ())
    group_key;
  let majority_key, majority_count =
    Det.fold (fun k c (bk, bc) -> if c > bc then (Some k, c) else (bk, bc)) tally (None, 0)
  in
  let wrong =
    let count = ref 0 in
    Array.iteri
      (fun id k ->
        match (k, majority_key) with
        | Some k, Some mk when k <> mk && not (List.mem id compromised) -> incr count
        | _ -> ())
      group_key;
    !count
  in
  let excluded_with_key =
    List.length (List.filter (fun c -> group_key.(c) <> None) compromised)
  in
  { engine = diss.Dissemination.engine; group_key;
    agreed_key_holders = majority_count; wrong_key_holders = wrong; excluded_with_key;
    rounds = diss.Dissemination.engine.Radio.Engine.rounds_used }
