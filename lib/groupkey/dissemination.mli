(** Parts 2-3 of the group-key protocol, reusable for re-keying.

    Given already-established pairwise keys, disseminates per-leader
    proposals over key-seeded channel hopping (Part 2) and runs the
    reporter-based agreement rule (Part 3).  {!Protocol.run} invokes this
    after the f-AME + DH setup; {!Rekey.run} invokes it directly with fresh
    proposals, skipping the expensive Part 1. *)

type outcome = {
  engine : Radio.Engine.result;
  leader_keys : (int * string) list array;  (** per node: leader, proposal *)
  group_key : string option array;  (** per node, after the agreement rule *)
}

val run :
  cfg:Radio.Config.t ->
  pairwise:(int -> (int * string) list) ->
  proposals:(int -> string) ->
  complete_leaders:int list ->
  excluded:int list ->
  part2_reps:int ->
  part3_reps:int ->
  adversary:Radio.Adversary.t ->
  unit ->
  outcome
(** [pairwise v] is v's established (peer, key) list (sorted); [proposals v]
    is leader v's fresh group-key proposal; [excluded] nodes (compromised
    devices during a re-key) are skipped: leaders never run epochs toward
    them and they are dropped from reporter duty. *)
