type node_result = {
  pairwise : (int * string) list;
  leader_keys : (int * string) list;
  group_key : string option;
}

type outcome = {
  fame : Ame.Fame.outcome;
  engine : Radio.Engine.result;
  nodes : node_result array;
  complete_leaders : int list;
  agreed_key_holders : int;
  wrong_key_holders : int;
  no_key_holders : int;
  total_rounds : int;
}

let leader_count ~t = t + 1

let reporters ~t = List.init ((2 * t) + 1) (fun i -> t + 1 + i)

let log2 x = log x /. log 2.0

let bytes_of_int64 v =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * (7 - i))) 0xFFL)))

let random_key rng =
  String.concat "" (List.init 4 (fun _ -> bytes_of_int64 (Prng.Rng.bits64 rng)))

let pair_label v w = Printf.sprintf "%d|%d" (min v w) (max v w)

let run ?(ame_params = Ame.Params.default) ?dh_params ?(part2_beta = 4.0) ?(part3_beta = 4.0)
    ~cfg ~fame_adversary ~hop_adversary () =
  let n = cfg.Radio.Config.n in
  let t = cfg.Radio.Config.t in
  let leaders = List.init (leader_count ~t) Fun.id in
  (* Deterministic per-node DH key pairs and leader proposals. *)
  let master = Prng.Rng.create (Int64.logxor cfg.Radio.Config.seed 0x6B65795F67656EL) in
  let keypairs =
    Array.init n (fun v -> Crypto.Dh.generate ?params:dh_params (Prng.Rng.split_at master (1000 + v)))
  in
  let proposals =
    Array.init n (fun v -> random_key (Prng.Rng.split_at master (5000 + v)))
  in
  (* Part 1: f-AME over the leader spanner carrying DH public keys. *)
  let pairs = Rgraph.Spanner.pairs ~n ~t in
  let messages (v, _) = Crypto.Dh.encode_public keypairs.(v).Crypto.Dh.public in
  let fame =
    Ame.Fame.run ~ame_params ~cfg ~pairs ~messages ~adversary:fame_adversary ()
  in
  (* Derive each node's pairwise keys from its own part-1 observations:
     v uses the pair with w iff it received w's public key (edge (w, v)
     delivered to v) and its own key reached w (edge (v, w) confirmed). *)
  let confirmed = fame.Ame.Fame.confirmed in
  let pairwise = Array.make n [] in
  List.iter
    (fun ((w, v), body) ->
      if List.mem (v, w) confirmed then
        match Crypto.Dh.decode_public body with
        | Some pub when Crypto.Dh.valid_public ?params:dh_params pub ->
          let shared =
            Crypto.Dh.shared_secret ?params:dh_params ~secret:keypairs.(v).Crypto.Dh.secret pub
          in
          let key = Crypto.Dh.derive_key ~info:(pair_label v w) shared in
          pairwise.(v) <- (w, key) :: pairwise.(v)
        | Some _ | None -> ())
    fame.Ame.Fame.delivered;
  Array.iteri
    (fun v lst ->
      pairwise.(v) <-
        List.sort
          (fun (a, x) (b, y) -> if a <> b then Int.compare a b else String.compare x y)
          lst)
    pairwise;
  let complete_leaders =
    List.filter (fun v -> List.length pairwise.(v) >= n - 1 - t) leaders
  in
  (* Parts 2-3 run as a second synchronous execution. *)
  let part2_reps =
    max 1 (int_of_float (ceil (part2_beta *. float_of_int (t + 1) *. log2 (float_of_int (max n 4)))))
  in
  let part3_reps =
    max 1
      (int_of_float
         (ceil (part3_beta *. float_of_int ((t + 1) * (t + 1)) *. log2 (float_of_int (max n 4)))))
  in
  let diss =
    Dissemination.run
      ~cfg:{ cfg with Radio.Config.seed = Int64.add cfg.Radio.Config.seed 0x9E3779B9L }
      ~pairwise:(fun v -> pairwise.(v))
      ~proposals:(fun v -> proposals.(v))
      ~complete_leaders ~excluded:[] ~part2_reps ~part3_reps ~adversary:hop_adversary ()
  in
  let engine = diss.Dissemination.engine in
  let nodes =
    Array.init n (fun id ->
        { pairwise = pairwise.(id);
          leader_keys = diss.Dissemination.leader_keys.(id);
          group_key = diss.Dissemination.group_key.(id) })
  in
  (* Majority key statistics. *)
  let tally = Hashtbl.create 8 in
  Array.iter
    (fun r ->
      match r.group_key with
      | Some k -> Hashtbl.replace tally k (1 + Option.value (Hashtbl.find_opt tally k) ~default:0)
      | None -> ())
    nodes;
  let majority_key, majority_count =
    Det.fold (fun k c (bk, bc) -> if c > bc then (Some k, c) else (bk, bc)) tally (None, 0)
  in
  let wrong =
    Array.fold_left
      (fun acc r ->
        match (r.group_key, majority_key) with
        | Some k, Some mk when k <> mk -> acc + 1
        | _ -> acc)
      0 nodes
  in
  let none = Array.fold_left (fun acc r -> if r.group_key = None then acc + 1 else acc) 0 nodes in
  { fame; engine; nodes; complete_leaders;
    agreed_key_holders = majority_count; wrong_key_holders = wrong; no_key_holders = none;
    total_rounds = fame.Ame.Fame.engine.Radio.Engine.rounds_used + engine.Radio.Engine.rounds_used }
