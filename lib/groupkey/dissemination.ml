type outcome = {
  engine : Radio.Engine.result;
  leader_keys : (int * string) list array;
  group_key : string option array;
}

(* (leader id, key) order: id first, then key bytes. *)
let keyed_compare (a, x) (b, y) =
  if a <> b then Int.compare a b else String.compare x y

let run ~cfg ~pairwise ~proposals ~complete_leaders ~excluded ~part2_reps ~part3_reps
    ~adversary () =
  let n = cfg.Radio.Config.n in
  let t = cfg.Radio.Config.t in
  let channels = cfg.Radio.Config.channels in
  let leaders = List.init (t + 1) Fun.id in
  let part2_epochs =
    List.concat_map
      (fun v ->
        List.filter_map
          (fun w -> if w <> v && not (List.mem w excluded) then Some (v, w) else None)
          (List.init n Fun.id))
      leaders
  in
  let reporter_ids =
    List.filter (fun i -> not (List.mem i excluded)) (List.init ((2 * t) + 1) (fun i -> t + 1 + i))
  in
  let leader_keys_out = Array.make n [] in
  let reports_out = Array.make n [] in
  let node_body (ctx : Radio.Engine.ctx) =
    let id = ctx.id in
    let my_pairs = pairwise id in
    let my_leader_keys : (int * string) list ref = ref [] in
    let my_reports : (int * int * string) list ref = ref [] in
    let am_complete_leader = List.mem id complete_leaders in
    (* Part 2: one epoch per (leader, receiver) pair. *)
    List.iter
      (fun (v, w) ->
        let pair_key =
          if id = v || id = w then
            List.assoc_opt (if id = v then w else v) my_pairs
          else None
        in
        match pair_key with
        | None ->
          for _ = 1 to part2_reps do
            Radio.Engine.idle ()
          done
        | Some key ->
          (* The pair key is fixed for the whole epoch: prepare the hop PRF
             and cipher midstates once, not once per repetition. *)
          let hop_prf = Crypto.Prf.Keyed.create key in
          let ck = Crypto.Cipher.key key in
          for _ = 1 to part2_reps do
            let round = Radio.Engine.current_round () in
            let chan = Crypto.Prf.Keyed.channel_hop hop_prf ~round ~channels in
            if id = v then begin
              let payload = if am_complete_leader then "K" ^ proposals id else "I" in
              let sealed = Crypto.Cipher.seal_keyed ck ~nonce:(Int64.of_int round) payload in
              Radio.Engine.transmit ~chan (Radio.Frame.Sealed (Crypto.Cipher.encode sealed))
            end
            else begin
              match Radio.Engine.listen ~chan with
              | Some (Radio.Frame.Sealed blob) ->
                (match Crypto.Cipher.decode blob with
                 | Some sealed ->
                   (match Crypto.Cipher.open_keyed ck sealed with
                    | Some payload when String.length payload > 0 && payload.[0] = 'K' ->
                      let k = String.sub payload 1 (String.length payload - 1) in
                      if not (List.mem_assoc v !my_leader_keys) then
                        my_leader_keys := (v, k) :: !my_leader_keys
                    | Some _ | None -> ())
                 | None -> ())
              | Some _ | None -> ()
            end
          done)
      part2_epochs;
    (* Leaders know their own proposal. *)
    if am_complete_leader && not (List.mem_assoc id !my_leader_keys) then
      my_leader_keys := (id, proposals id) :: !my_leader_keys;
    (* Part 3: one epoch per reporter. *)
    List.iter
      (fun i ->
        let my_smallest =
          match List.sort keyed_compare !my_leader_keys with (j, _) :: _ -> Some j | [] -> None
        in
        (* The report is identical for every repetition of the epoch: hash
           the key once. *)
        let my_report =
          if id = i then
            match my_smallest with
            | Some j ->
              let key_hash = Crypto.Sha256.digest (List.assoc j !my_leader_keys) in
              Some (Radio.Frame.Report { reporter = i; leader = j; key_hash })
            | None -> None
          else None
        in
        for _ = 1 to part3_reps do
          if id = i then begin
            match my_report with
            | Some frame -> Radio.Engine.transmit ~chan:(Prng.Rng.int ctx.rng channels) frame
            | None -> Radio.Engine.idle ()
          end
          else begin
            match Radio.Engine.listen ~chan:(Prng.Rng.int ctx.rng channels) with
            | Some (Radio.Frame.Report { reporter; leader; key_hash }) ->
              if not (List.mem (reporter, leader, key_hash) !my_reports) then
                my_reports := (reporter, leader, key_hash) :: !my_reports
            | Some _ | None -> ()
          end
        done)
      reporter_ids;
    leader_keys_out.(id) <- List.sort keyed_compare !my_leader_keys;
    reports_out.(id) <- !my_reports
  in
  let engine = Radio.Engine.run_nodes cfg ~adversary node_body in
  (* Agreement rule, evaluated per node on its own observations. *)
  let adopt id =
    let known = leader_keys_out.(id) in
    let verified_support j =
      match List.assoc_opt j known with
      | None -> 0
      | Some k ->
        let h = Crypto.Sha256.digest k in
        List.length
          (List.sort_uniq Int.compare
             (List.filter_map
                (fun (reporter, leader, key_hash) ->
                  if leader = j && key_hash = h then Some reporter else None)
                reports_out.(id)))
    in
    List.find_map
      (fun j -> if verified_support j >= t + 1 then List.assoc_opt j known else None)
      leaders
  in
  { engine; leader_keys = leader_keys_out; group_key = Array.init n adopt }
