(* Exhaustive sweep of the removal game over every labeled digraph on a
   small node set, one complete minimax walk per instance. *)

type config = { label : string; budget : int; channels_used : int }

(* All ordered pairs (v, w), v <> w, of [0..n-1], lexicographic: bit i of
   a digraph mask names pairs.(i). *)
let ordered_pairs n =
  let acc = ref [] in
  for v = n - 1 downto 0 do
    for w = n - 1 downto 0 do
      if v <> w then acc := (v, w) :: !acc
    done
  done;
  Array.of_list !acc

let edges_of_mask pairs mask =
  let acc = ref [] in
  for i = Array.length pairs - 1 downto 0 do
    if mask land (1 lsl i) <> 0 then acc := pairs.(i) :: !acc
  done;
  !acc

type result = {
  instances : int;
  states : int;
  choices : int;
  strategies : int;
  worst_moves : int;
  worst_edges : int;
  worst_instance : string;
  tight_instances : int;
  tight_example : string;
  violations : string list;
}

let empty =
  { instances = 0; states = 0; choices = 0; strategies = 0; worst_moves = -1;
    worst_edges = 0; worst_instance = ""; tight_instances = 0; tight_example = "";
    violations = [] }

let merge a b =
  { instances = a.instances + b.instances;
    states = a.states + b.states;
    choices = a.choices + b.choices;
    strategies = a.strategies + b.strategies;
    worst_moves = (if b.worst_moves > a.worst_moves then b.worst_moves else a.worst_moves);
    worst_edges = (if b.worst_moves > a.worst_moves then b.worst_edges else a.worst_edges);
    worst_instance =
      (if b.worst_moves > a.worst_moves then b.worst_instance else a.worst_instance);
    tight_instances = a.tight_instances + b.tight_instances;
    tight_example = (if a.tight_example = "" then b.tight_example else a.tight_example);
    violations = a.violations @ b.violations }

let pp_edges edges =
  Printf.sprintf "[%s]"
    (String.concat ";" (List.map (fun (v, w) -> Printf.sprintf "%d,%d" v w) edges))

let check_chunk ~nodes config (lo, hi) =
  let pairs = ordered_pairs nodes in
  let acc = ref empty in
  for mask = lo to hi - 1 do
    let edges = edges_of_mask pairs mask in
    let edge_count = List.length edges in
    let root =
      Game.State.create_dense ~proposal_size:config.channels_used
        ~min_proposal:(config.budget + 1)
        (Rgraph.Digraph.Dense.of_edges ~n:nodes edges)
        ~t:config.budget
    in
    let r = Game_tree.explore root in
    let describe () = Printf.sprintf "%s n=%d %s" config.label nodes (pp_edges edges) in
    let violations =
      List.map (fun v -> Printf.sprintf "%s: %s" config.label v) r.Game_tree.violations
    in
    let violations =
      if r.Game_tree.worst_moves > 3 * edge_count then
        Printf.sprintf "%s: worst referee forces %d moves > bound 3|E|=%d on %s" config.label
          r.Game_tree.worst_moves (3 * edge_count) (describe ())
        :: violations
      else violations
    in
    let tight = edge_count >= 1 && r.Game_tree.worst_moves >= edge_count in
    acc :=
      merge !acc
        { instances = 1;
          states = r.Game_tree.states;
          choices = r.Game_tree.choices;
          strategies = r.Game_tree.strategies;
          worst_moves = r.Game_tree.worst_moves;
          worst_edges = edge_count;
          worst_instance = describe ();
          tight_instances = (if tight then 1 else 0);
          tight_example =
            (if tight then
               Printf.sprintf "%s: %d moves on |E|=%d" (describe ()) r.Game_tree.worst_moves
                 edge_count
             else "");
          violations }
  done;
  !acc

let chunk_size = 256

let check ~nodes config ~jobs =
  let total = 1 lsl (nodes * (nodes - 1)) in
  let spans = ref [] in
  let lo = ref 0 in
  while !lo < total do
    let hi = min total (!lo + chunk_size) in
    spans := (!lo, hi) :: !spans;
    lo := hi
  done;
  let results =
    Parallel.map_ordered ~jobs (fun span -> check_chunk ~nodes config span) (List.rev !spans)
  in
  let r = List.fold_left merge empty results in
  let violations =
    if r.tight_instances = 0 then
      Printf.sprintf
        "%s: bound not tight anywhere: no instance with |E| >= 1 needed |E| moves" config.label
      :: r.violations
    else r.violations
  in
  { r with violations }
