(** Exhaustive minimax over the starred-edge removal game (Theorem 4).

    The greedy player of Section 5.2 is deterministic, so the only free
    agent in a play is the referee (the radio analogue: which <= t of the
    proposal channels the adversary disrupts each move).  This module
    walks the {e complete} game tree — every legal referee response at
    every reachable state — and returns the worst case exactly, instead
    of sampling referee strategies the way experiment E4 does.

    Legal responses at a state with proposal P are the subsets S of P
    with [max 1 (|P| - t) <= |S| <= |P|]: the base game (|P| = t+1) lets
    the referee concede a single item, the wider C >= 2t regimes force at
    least |P| - t items (the adversary can disrupt at most t channels).

    States are memoized on a canonical digest (universe, budget, proposal
    bounds, starred set, directed edge set) in a pool-safe {!Cache}; the
    memo is cleared at the start of every [explore] so the reported
    counters are a deterministic function of the instance alone, not of
    which worker domain previously walked which instance. *)

type result = {
  worst_moves : int;  (** minimax move count: no referee does better *)
  states : int;  (** distinct game states expanded *)
  choices : int;  (** referee-response edges explored (DAG edges) *)
  strategies : int;  (** root-to-leaf paths = complete referee strategies *)
  violations : string list;
      (** proposal-rule or terminal-win failures anywhere in the tree;
          empty on a pass (Lemma 3: greedy stops only in won states) *)
  worst_path : string list;  (** one response sequence attaining the max *)
}

val explore : Game.State.t -> result

val strike_paths : Game.State.t -> limit:int -> (int list list list, string) Stdlib.result
(** All root-to-leaf referee strategies, each rendered as the per-move
    ascending list of {e jammed proposal positions} (the complement of
    the response; position i of a proposal is broadcast on channel i, so
    these are exactly the adversary's strike sets).  [Error] if the tree
    has more than [limit] leaves — the caller chose an instance too large
    to enumerate, which must fail loudly rather than truncate. *)

type replay = {
  replay_moves : int;
  delivered_edges : (int * int) list;  (** edges removed over the play; sorted *)
  failed_edges : (int * int) list;  (** edges of the final graph; sorted *)
  proposal_sizes : int list;  (** |P| per move, in move order *)
}

val replay : Game.State.t -> jams:int list list -> replay
(** Deterministic pure-game replay of one strike path: at move k the
    referee response is the proposal minus the positions in [jams_k]
    (missing trailing entries mean "no strike").  This is the oracle the
    f-AME engine runs are compared against, pair for pair. *)
