(* Exhaustive minimax over referee strategies for the removal game.

   The greedy player is deterministic, so the game tree branches only on
   the referee's response.  Distinct response orders can reach the same
   position (star v then w, or w then v), so the tree is really a DAG:
   positions are memoized on a canonical digest and each is expanded
   once.  [strategies] still counts tree leaves (every complete referee
   strategy), which the f-AME strike enumeration must reproduce exactly. *)

module State = Game.State

type value = {
  moves : int;  (* worst-case moves to termination from this position *)
  leaves : int;  (* root-to-leaf paths below this position *)
  best : State.item list;  (* a response attaining [moves] *)
}

(* Pool-safe memo on the canonical position digest.  Capacity is far above
   any reachable-position count of the tiny instances this module is for;
   overflow would only cost re-solves, never change results. *)
let memo : value Cache.t = Cache.create ~capacity:(1 lsl 20) "verify/game-minimax"

let digest (st : State.t) =
  let b = Cache.Key.create () in
  Cache.Key.add_int b (Rgraph.Digraph.Dense.universe st.State.graph);
  Cache.Key.add_int b st.State.budget;
  Cache.Key.add_int b st.State.min_proposal;
  Cache.Key.add_int b st.State.max_proposal;
  List.iter (Cache.Key.add_int b) st.State.starred;
  Cache.Key.add_int b (-1);
  Rgraph.Digraph.Dense.iter_edges
    (fun (v, w) ->
      Cache.Key.add_int b v;
      Cache.Key.add_int b w)
    st.State.graph;
  Cache.Key.finish b

let pp_items items =
  String.concat "+" (List.map (fun i -> Format.asprintf "%a" State.pp_item i) items)

let describe (st : State.t) =
  Printf.sprintf "edges=[%s] starred=[%s]"
    (String.concat ";"
       (List.map
          (fun (v, w) -> Printf.sprintf "%d,%d" v w)
          (Rgraph.Digraph.Dense.edges st.State.graph)))
    (String.concat ";" (List.map string_of_int st.State.starred))

(* Legal responses: subsets of the proposal keeping at least
   [max 1 (|P| - t)] items — the complement of a <= t strike. *)
let min_keep (st : State.t) len = max 1 (len - st.State.budget)

let items_of_mask arr mask =
  let acc = ref [] in
  for i = Array.length arr - 1 downto 0 do
    if mask land (1 lsl i) <> 0 then acc := arr.(i) :: !acc
  done;
  !acc

type result = {
  worst_moves : int;
  states : int;
  choices : int;
  strategies : int;
  violations : string list;
  worst_path : string list;
}

let explore root =
  (* Fresh memo per instance: the counters below must be a function of the
     instance, not of what else ran on this worker domain. *)
  Cache.clear memo;
  let states = ref 0 and choices = ref 0 and violations = ref [] in
  let violation msg st = violations := (msg ^ " at " ^ describe st) :: !violations in
  let rec value st =
    Cache.find_or_compute memo ~key:(digest st) (fun () ->
      incr states;
      match Game.Greedy.proposal st with
      | None ->
        (* Lemma 3: greedy terminates only in won positions. *)
        if not (State.won st) then violation "terminal position not won" st;
        { moves = 0; leaves = 1; best = [] }
      | Some proposal ->
        (match State.check_proposal st proposal with
         | Ok () -> ()
         | Error msg -> violation ("greedy proposal illegal: " ^ msg) st);
        let arr = Array.of_list proposal in
        let len = Array.length arr in
        let keep = min_keep st len in
        let worst = ref (-1) and best = ref [] and leaves = ref 0 in
        for mask = 1 to (1 lsl len) - 1 do
          if Rgraph.Bitset.popcount_word mask >= keep then begin
            incr choices;
            let response = items_of_mask arr mask in
            let v = value (State.apply st response) in
            leaves := !leaves + v.leaves;
            if v.moves + 1 > !worst then begin
              worst := v.moves + 1;
              best := response
            end
          end
        done;
        { moves = !worst; leaves = !leaves; best = !best })
  in
  let v = value root in
  (* Reconstruct one worst-case play from the (still hot) memo. *)
  let path = ref [] in
  let st = ref root in
  let steps = ref v.moves in
  while !steps > 0 do
    let here = value !st in
    path := pp_items here.best :: !path;
    st := State.apply !st here.best;
    decr steps
  done;
  { worst_moves = v.moves;
    states = !states;
    choices = !choices;
    strategies = v.leaves;
    violations = List.rev !violations;
    worst_path = List.rev !path }

exception Too_many of int

let strike_paths root ~limit =
  let count = ref 0 in
  let acc = ref [] in
  let rec walk st prefix =
    match Game.Greedy.proposal st with
    | None ->
      incr count;
      if !count > limit then raise (Too_many !count);
      acc := List.rev prefix :: !acc
    | Some proposal ->
      let arr = Array.of_list proposal in
      let len = Array.length arr in
      let max_jam = len - min_keep st len in
      for jam_mask = 0 to (1 lsl len) - 1 do
        if Rgraph.Bitset.popcount_word jam_mask <= max_jam then begin
          let jammed = ref [] in
          for i = len - 1 downto 0 do
            if jam_mask land (1 lsl i) <> 0 then jammed := i :: !jammed
          done;
          let survivors = items_of_mask arr (lnot jam_mask land ((1 lsl len) - 1)) in
          walk (State.apply st survivors) (!jammed :: prefix)
        end
      done
  in
  match walk root [] with
  | () -> Ok (List.rev !acc)
  | exception Too_many n ->
    Error
      (Printf.sprintf
         "strike-path enumeration exceeded the %d-leaf limit (at least %d): instance too \
          large for exhaustive engine replay"
         limit n)

type replay = {
  replay_moves : int;
  delivered_edges : (int * int) list;
  failed_edges : (int * int) list;
  proposal_sizes : int list;
}

let replay root ~jams =
  let delivered = ref [] and sizes = ref [] and moves = ref 0 in
  let rec loop st jams =
    match Game.Greedy.proposal st with
    | None -> st
    | Some proposal ->
      let jam, rest = match jams with [] -> ([], []) | j :: rest -> (j, rest) in
      let arr = Array.of_list proposal in
      let survivors = ref [] in
      Array.iteri
        (fun i item -> if not (List.mem i jam) then survivors := item :: !survivors)
        arr;
      let survivors = List.rev !survivors in
      List.iter
        (fun item ->
          match item with
          | State.Edge e -> delivered := e :: !delivered
          | State.Node _ -> ())
        survivors;
      sizes := Array.length arr :: !sizes;
      incr moves;
      loop (State.apply st survivors) rest
  in
  let final = loop root jams in
  { replay_moves = !moves;
    delivered_edges = List.sort Rgraph.Digraph.edge_compare !delivered;
    failed_edges = Rgraph.Digraph.Dense.edges final.State.graph;
    proposal_sizes = List.rev !sizes }
