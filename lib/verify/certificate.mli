(** Structured verification certificates (schema [radio-verify/v1]).

    Each exhaustive check emits one certificate: what was enumerated (the
    instance space and its size), how much work the walk did (in the
    check's own unit — game states, cover subsets, strike strategies),
    the bound that was verified, the worst case attained (with a witness
    the reader can replay), and the violations found (empty on a pass).

    Certificates are pure data: no wall-clock, no cache statistics, no
    machine identity.  Every field is a deterministic function of the
    instance enumeration, so the serialized document is byte-identical
    across runs, hosts, and [--jobs] counts — the property CI gates on
    and the pinned-certificate regression test compares field-for-field. *)

type t = {
  check : string;  (** stable identifier, e.g. ["removal-game-move-bound"] *)
  theorem : string;  (** the paper claim verified, e.g. ["Theorem 4"] *)
  description : string;  (** one-line statement of the verified property *)
  instances : int;  (** instances exhaustively enumerated *)
  explored : (string * int) list;
      (** named work counters (states, subsets, strategies, engine runs);
          deterministic, so they double as enumeration fingerprints *)
  bound : string;  (** the bound checked, in human-readable form *)
  violations : string list;  (** empty iff the check passed *)
  worst : (string * Experiments.Json.t) list;
      (** worst-case witness fields (instance, attained value, tightness) *)
}

val passed : t -> bool

val to_json : t -> Experiments.Json.t

val schema : string
(** ["radio-verify/v1"]. *)

val document : tier:string -> t list -> Experiments.Json.t
(** The full certificate suite document:
    [{ schema; tier; passed; checks }]. *)
