(** Exhaustive f-AME verification against every strike strategy
    (Theorem 6, in the three channel regimes of Section 5.5).

    Honest coins are derandomized by fixing the configuration seed, so a
    full f-AME execution is a deterministic function of the adversary's
    strike sequence alone.  The adversary's only protocol-relevant choice
    is which <= t of the scheduled channels to strike in each
    message-transmission round (spoofing an occupied channel collides
    into the same silence as a jam, and feedback rounds keep every
    channel occupied by witnesses, so jamming is the whole strike space
    at message granularity).  That makes the strike-strategy space
    isomorphic to the referee tree of {!Game_tree}, which this module
    enumerates completely: one engine execution per strategy, each
    compared move-for-move against the pure-game replay oracle —
    delivered pairs, failed pairs, confirmed (sender-awareness) pairs,
    authenticated payloads, disruption cover <= t, zero divergence, and
    an {e exact} round count predicted from the feedback arithmetic. *)

type regime = {
  name : string;  (** e.g. ["C=t+1 sequential"] *)
  budget : int;  (** the adversary's t *)
  channels : int;  (** C *)
  channels_used : int;  (** the game's proposal size *)
  mode : Ame.Fame.feedback_mode;
  pairs : (int * int) list;  (** the exchange set E *)
  jam_feedback : bool;
      (** additionally jam channels [0..t-1] during every feedback round
          (stresses Lemma 5's agreement on top of the scripted strikes) *)
  seed : int64;  (** the derandomized honest-coin seed *)
}

type result = {
  strategies : int;  (** distinct strike strategies enumerated (tree leaves) *)
  runs : int;  (** engine executions (one per strategy) *)
  engine_rounds : int;  (** simulated rounds summed over all runs *)
  worst_rounds : int;  (** slowest completion over all strategies *)
  worst_moves : int;  (** most game moves over all strategies *)
  worst_path : string;  (** a strike sequence attaining [worst_rounds] *)
  violations : string list;
}

val check : regime -> path_limit:int -> jobs:int -> result
(** Enumerates all strike strategies of [regime] (failing loudly, never
    truncating, past [path_limit] leaves), runs each through the radio
    engine sharded across the domain pool, and merges in enumeration
    order — identical output for every [jobs]. *)
