module Json = Experiments.Json

type t = {
  check : string;
  theorem : string;
  description : string;
  instances : int;
  explored : (string * int) list;
  bound : string;
  violations : string list;
  worst : (string * Json.t) list;
}

let passed t = t.violations = []

let to_json t =
  Json.Obj
    [ ("check", Json.String t.check);
      ("theorem", Json.String t.theorem);
      ("description", Json.String t.description);
      ("passed", Json.Bool (passed t));
      ("instances", Json.Int t.instances);
      ("explored", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) t.explored));
      ("bound", Json.String t.bound);
      ("violations", Json.List (List.map (fun v -> Json.String v) t.violations));
      ("worst", Json.Obj t.worst) ]

let schema = "radio-verify/v1"

let document ~tier checks =
  Json.Obj
    [ ("schema", Json.String schema);
      ("tier", Json.String tier);
      ("passed", Json.Bool (List.for_all passed checks));
      ("checks", Json.List (List.map to_json checks)) ]
