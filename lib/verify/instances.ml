type tier = {
  label : string;
  disrupt_nodes : int;
  disrupt_budgets : int list;
  game_sweeps : (int * Game_check.config list) list;
  regimes : Fame_check.regime list;
  path_limit : int;
}

let two_pairs = [ (0, 1); (2, 3) ]
let three_pairs = [ (0, 1); (2, 3); (4, 5) ]
let four_pairs = [ (0, 1); (2, 3); (4, 5); (6, 7) ]

(* Pairs sharing a source: the failure graph can need its cover at the
   shared endpoint, exercising the non-matching side of Theorem 2. *)
let shared_source_pairs = [ (0, 1); (0, 2); (3, 4) ]

let game_configs =
  [ { Game_check.label = "t=1,C'=2"; budget = 1; channels_used = 2 };
    { Game_check.label = "t=2,C'=3"; budget = 2; channels_used = 3 };
    { Game_check.label = "t=2,C'=4"; budget = 2; channels_used = 4 } ]

(* Regime names are certificate keys: keep them stable. *)
let quick_regimes =
  [ { Fame_check.name = "seq-t1-C2"; budget = 1; channels = 2; channels_used = 2;
      mode = Ame.Fame.Sequential; pairs = two_pairs; jam_feedback = false; seed = 101L };
    { Fame_check.name = "tree-t1-C2"; budget = 1; channels = 2; channels_used = 2;
      mode = Ame.Fame.Tree; pairs = two_pairs; jam_feedback = false; seed = 102L };
    { Fame_check.name = "seq-t1-C2-fbjam"; budget = 1; channels = 2; channels_used = 2;
      mode = Ame.Fame.Sequential; pairs = two_pairs; jam_feedback = true; seed = 103L };
    { Fame_check.name = "seq-t2-C3"; budget = 2; channels = 3; channels_used = 3;
      mode = Ame.Fame.Sequential; pairs = three_pairs; jam_feedback = false; seed = 104L };
    { Fame_check.name = "seq-t2-C4"; budget = 2; channels = 4; channels_used = 4;
      mode = Ame.Fame.Sequential; pairs = three_pairs; jam_feedback = false; seed = 105L } ]

let full_regimes =
  quick_regimes
  @ [ { Fame_check.name = "tree-t2-C8"; budget = 2; channels = 8; channels_used = 4;
        mode = Ame.Fame.Tree; pairs = four_pairs; jam_feedback = false; seed = 106L };
      { Fame_check.name = "tree-t2-C8-fbjam"; budget = 2; channels = 8; channels_used = 4;
        mode = Ame.Fame.Tree; pairs = four_pairs; jam_feedback = true; seed = 107L };
      { Fame_check.name = "seq-t2-C3-shared"; budget = 2; channels = 3; channels_used = 3;
        mode = Ame.Fame.Sequential; pairs = shared_source_pairs; jam_feedback = false;
        seed = 108L };
      { Fame_check.name = "seq-t2-C4-fbjam"; budget = 2; channels = 4; channels_used = 4;
        mode = Ame.Fame.Sequential; pairs = three_pairs; jam_feedback = true; seed = 109L } ]

let quick =
  { label = "quick";
    disrupt_nodes = 5;
    disrupt_budgets = [ 0; 1; 2 ];
    game_sweeps = [ (4, game_configs) ];
    regimes = quick_regimes;
    path_limit = 50_000 }

let full =
  { label = "full";
    disrupt_nodes = 6;
    disrupt_budgets = [ 0; 1; 2; 3 ];
    game_sweeps =
      [ (4, game_configs);
        (5, [ { Game_check.label = "t=1,C'=2"; budget = 1; channels_used = 2 } ]) ];
    regimes = full_regimes;
    path_limit = 100_000 }

let of_label = function
  | "quick" -> Some quick
  | "full" -> Some full
  | _ -> None
