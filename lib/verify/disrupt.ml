module Dense = Rgraph.Digraph.Dense

(* All unordered pairs of [0..n-1], lexicographic: bit i of an edge mask
   names pairs.(i). *)
let pairs_of n =
  let acc = ref [] in
  for v = n - 1 downto 0 do
    for w = n - 1 downto v + 1 do
      acc := (v, w) :: !acc
    done
  done;
  Array.of_list !acc

let edges_of_mask pairs mask =
  let acc = ref [] in
  for i = Array.length pairs - 1 downto 0 do
    if mask land (1 lsl i) <> 0 then acc := pairs.(i) :: !acc
  done;
  !acc

let covers edges node_mask =
  List.for_all (fun (v, w) -> node_mask land ((1 lsl v) lor (1 lsl w)) <> 0) edges

let brute_at_most g k =
  let n = Dense.universe g in
  let edges = Dense.edges g in
  let tested = ref 0 in
  let found = ref false in
  let mask = ref 0 in
  while (not !found) && !mask < 1 lsl n do
    if Rgraph.Bitset.popcount_word !mask <= k then begin
      incr tested;
      if covers edges !mask then found := true
    end;
    incr mask
  done;
  (!found, !tested)

let brute_minimum_size g =
  let n = Dense.universe g in
  let edges = Dense.edges g in
  let best = ref n in
  for mask = 0 to (1 lsl n) - 1 do
    let size = Rgraph.Bitset.popcount_word mask in
    if size < !best && covers edges mask then best := size
  done;
  !best

type result = {
  graphs : int;
  queries : int;
  subsets : int;
  violations : string list;
  worst_cover : int;
  worst_graph : string;
}

let pp_edges edges =
  Printf.sprintf "[%s]"
    (String.concat ";" (List.map (fun (v, w) -> Printf.sprintf "%d,%d" v w) edges))

(* One enumeration chunk: graphs [lo, hi) of the n-node edge-mask space. *)
let check_chunk ~n ~budgets (lo, hi) =
  let pairs = pairs_of n in
  let queries = ref 0 and subsets = ref 0 and violations = ref [] in
  let worst_cover = ref (-1) and worst_graph = ref "" in
  for mask = lo to hi - 1 do
    let edges = edges_of_mask pairs mask in
    let g = Dense.of_edges ~n edges in
    let brute_min = brute_minimum_size g in
    subsets := !subsets + (1 lsl n);
    let kernel_min = Rgraph.Vertex_cover.minimum_size_dense g in
    incr queries;
    if kernel_min <> brute_min then
      violations :=
        Printf.sprintf "minimum_size_dense=%d but brute force says %d on n=%d %s" kernel_min
          brute_min n (pp_edges edges)
        :: !violations;
    let cover = Rgraph.Vertex_cover.minimum_dense g in
    incr queries;
    let cover_mask = List.fold_left (fun acc v -> acc lor (1 lsl v)) 0 cover in
    if not (covers edges cover_mask && List.length cover = brute_min) then
      violations :=
        Printf.sprintf "minimum_dense returned a non-minimum or non-cover [%s] on n=%d %s"
          (String.concat ";" (List.map string_of_int cover))
          n (pp_edges edges)
        :: !violations;
    List.iter
      (fun t ->
        let kernel = Rgraph.Vertex_cover.at_most_dense g t in
        let brute, tested = brute_at_most g t in
        queries := !queries + 1;
        subsets := !subsets + tested;
        if kernel <> brute then
          violations :=
            Printf.sprintf "at_most_dense t=%d says %b but brute force says %b on n=%d %s" t
              kernel brute n (pp_edges edges)
            :: !violations)
      budgets;
    if brute_min > !worst_cover then begin
      worst_cover := brute_min;
      worst_graph := Printf.sprintf "n=%d %s" n (pp_edges edges)
    end
  done;
  { graphs = hi - lo;
    queries = !queries;
    subsets = !subsets;
    violations = List.rev !violations;
    worst_cover = !worst_cover;
    worst_graph = !worst_graph }

let merge a b =
  { graphs = a.graphs + b.graphs;
    queries = a.queries + b.queries;
    subsets = a.subsets + b.subsets;
    violations = a.violations @ b.violations;
    worst_cover = (if b.worst_cover > a.worst_cover then b.worst_cover else a.worst_cover);
    worst_graph = (if b.worst_cover > a.worst_cover then b.worst_graph else a.worst_graph) }

let empty =
  { graphs = 0; queries = 0; subsets = 0; violations = []; worst_cover = -1; worst_graph = "" }

let chunk_size = 1024

let check ~max_nodes ~budgets ~jobs =
  let tasks = ref [] in
  for n = max_nodes downto 1 do
    let total = 1 lsl (n * (n - 1) / 2) in
    let lo = ref 0 in
    let chunks = ref [] in
    while !lo < total do
      let hi = min total (!lo + chunk_size) in
      chunks := (n, (!lo, hi)) :: !chunks;
      lo := hi
    done;
    tasks := List.rev !chunks @ !tasks
  done;
  let results =
    Parallel.map_ordered ~jobs (fun (n, span) -> check_chunk ~n ~budgets span) !tasks
  in
  List.fold_left merge empty results
