(** The certificate suite: runs all three exhaustive checks of a tier and
    assembles the [radio-verify/v1] document plus a human-readable report.

    Everything — certificates, JSON, rendered text — is a deterministic
    function of the tier alone: sharding across the domain pool merges in
    enumeration order, so output is byte-identical for every job count. *)

type report = {
  tier : string;
  certificates : Certificate.t list;
  passed : bool;  (** every certificate's violation list is empty *)
  human : Experiments.Common.result;  (** table + violations, render-ready *)
  doc : Experiments.Json.t;  (** the [radio-verify/v1] document *)
}

val run : Instances.tier -> jobs:int -> report
