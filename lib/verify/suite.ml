module Json = Experiments.Json
module Common = Experiments.Common

(* Certificates stay readable when a broken kernel fails thousands of
   instances: keep the head of the list and say how much was elided. *)
let cap_violations vs =
  let cap = 25 in
  let n = List.length vs in
  if n <= cap then vs
  else List.filteri (fun i _ -> i < cap) vs @ [ Printf.sprintf "... and %d more" (n - cap) ]

let disrupt_certificate (tier : Instances.tier) ~jobs =
  let r = Disrupt.check ~max_nodes:tier.Instances.disrupt_nodes ~budgets:tier.Instances.disrupt_budgets ~jobs in
  let budgets = String.concat "," (List.map string_of_int tier.Instances.disrupt_budgets) in
  ( { Certificate.check = "disruptability-kernel-agreement";
      theorem = "Theorem 2";
      description =
        Printf.sprintf
          "bitset vertex-cover kernel agrees with exhaustive subset enumeration on every \
           graph on <= %d labeled nodes, for t in {%s}"
          tier.Instances.disrupt_nodes budgets;
      instances = r.Disrupt.graphs;
      explored =
        [ ("kernel_queries", r.Disrupt.queries); ("subsets_tested", r.Disrupt.subsets) ];
      bound = Printf.sprintf "t-disruptability thresholds for t in {%s}" budgets;
      violations = cap_violations r.Disrupt.violations;
      worst =
        [ ("largest_minimum_cover", Json.Int r.Disrupt.worst_cover);
          ("witness", Json.String r.Disrupt.worst_graph) ] },
    0 )

let game_certificate (tier : Instances.tier) ~jobs =
  let results =
    List.concat_map
      (fun (nodes, configs) ->
        List.map
          (fun config -> (nodes, config, Game_check.check ~nodes config ~jobs))
          configs)
      tier.Instances.game_sweeps
  in
  let sum f = List.fold_left (fun acc (_, _, r) -> acc + f r) 0 results in
  let worst =
    List.fold_left
      (fun acc (_, _, r) ->
        match acc with
        | Some best when best.Game_check.worst_moves >= r.Game_check.worst_moves -> acc
        | _ -> Some r)
      None results
  in
  let tight =
    List.find_opt (fun (_, _, r) -> r.Game_check.tight_instances > 0) results
  in
  ( { Certificate.check = "removal-game-move-bound";
      theorem = "Theorem 4";
      description =
        "no referee strategy forces greedy play past 3|E| moves, on every digraph of every \
         sweep, by complete minimax";
      instances = sum (fun r -> r.Game_check.instances);
      explored =
        ( "strategies", sum (fun r -> r.Game_check.strategies) )
        :: ( "states", sum (fun r -> r.Game_check.states) )
        :: ( "choices", sum (fun r -> r.Game_check.choices) )
        :: List.map
             (fun (nodes, (config : Game_check.config), r) ->
               (Printf.sprintf "worst_moves[n=%d,%s]" nodes config.Game_check.label,
                r.Game_check.worst_moves))
             results;
      bound = "3|E| moves, tight: >= 1 instance needs >= |E|";
      violations = cap_violations (List.concat_map (fun (_, _, r) -> r.Game_check.violations) results);
      worst =
        (match worst with
         | None -> []
         | Some w ->
           [ ("moves", Json.Int w.Game_check.worst_moves);
             ("edges", Json.Int w.Game_check.worst_edges);
             ("instance", Json.String w.Game_check.worst_instance);
             ("tight_example",
              Json.String
                (match tight with
                 | Some (_, _, r) -> r.Game_check.tight_example
                 | None -> "")) ]) },
    0 )

let fame_certificate (tier : Instances.tier) ~jobs =
  let results =
    List.map
      (fun regime -> (regime, Fame_check.check regime ~path_limit:tier.Instances.path_limit ~jobs))
      tier.Instances.regimes
  in
  let sum f = List.fold_left (fun acc (_, r) -> acc + f r) 0 results in
  let worst =
    List.fold_left
      (fun acc (regime, r) ->
        match acc with
        | Some (_, best) when best.Fame_check.worst_rounds >= r.Fame_check.worst_rounds -> acc
        | _ -> Some (regime, r))
      None results
  in
  let total_rounds = sum (fun r -> r.Fame_check.engine_rounds) in
  ( { Certificate.check = "fame-exhaustive-strikes";
      theorem = "Theorem 6";
      description =
        "f-AME on derandomized coins completes against every strike strategy in every \
         regime, matching the pure-game replay move-for-move, round-exact";
      instances = sum (fun r -> r.Fame_check.runs);
      explored =
        ( "engine_rounds", total_rounds )
        :: List.map
             (fun ((regime : Fame_check.regime), r) ->
               (Printf.sprintf "strategies[%s]" regime.Fame_check.name, r.Fame_check.strategies))
             results;
      bound = "delivered/confirmed/failed = replay; cover <= t; rounds = feedback arithmetic";
      violations = cap_violations (List.concat_map (fun (_, r) -> r.Fame_check.violations) results);
      worst =
        (match worst with
         | Some (regime, r) ->
           [ ("regime", Json.String regime.Fame_check.name);
             ("rounds", Json.Int r.Fame_check.worst_rounds);
             ("moves", Json.Int r.Fame_check.worst_moves);
             ("strikes", Json.String r.Fame_check.worst_path) ]
         | None -> []) },
    total_rounds )

type report = {
  tier : string;
  certificates : Certificate.t list;
  passed : bool;
  human : Experiments.Common.result;
  doc : Experiments.Json.t;
}

let human_blocks tier certificates =
  let header = [ "check"; "theorem"; "instances"; "result" ] in
  let rows =
    List.map
      (fun (c : Certificate.t) ->
        [ c.Certificate.check;
          c.Certificate.theorem;
          string_of_int c.Certificate.instances;
          (if Certificate.passed c then "ok" else
             Printf.sprintf "FAIL (%d violations)" (List.length c.Certificate.violations)) ])
      certificates
  in
  let violations =
    List.concat_map
      (fun (c : Certificate.t) ->
        List.map
          (fun v -> Common.textf "  violation [%s] %s" c.Certificate.check v)
          c.Certificate.violations)
      certificates
  in
  Common.textf "certificate suite: tier=%s schema=%s" tier Certificate.schema
  :: Common.table ~header rows
  :: violations

let run (tier : Instances.tier) ~jobs =
  Parallel.run ~jobs (fun () ->
      let disrupt, r1 = disrupt_certificate tier ~jobs in
      let game, r2 = game_certificate tier ~jobs in
      let fame, r3 = fame_certificate tier ~jobs in
      let certificates = [ disrupt; game; fame ] in
      let passed = List.for_all Certificate.passed certificates in
      let label = tier.Instances.label in
      { tier = label;
        certificates;
        passed;
        human =
          Common.result
            ~total_rounds:(r1 + r2 + r3)
            (human_blocks label certificates
            @ [ Common.textf "verdict: %s" (if passed then "PASS" else "FAIL") ]);
        doc = Certificate.document ~tier:label certificates })
