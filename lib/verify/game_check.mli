(** Exhaustive verification of the removal-game move bound (Theorem 4).

    Enumerates {e every} directed graph on a small labeled node set (all
    2^(n(n-1)) ordered-pair subsets) and, for each one, walks the
    complete referee tree with {!Game_tree.explore} under a given
    (t, channels_used) configuration.  Checks, per instance:

    - the minimax worst case never exceeds 3|E| moves (experiment E4's
      bound: |E| removals plus at most 2|E| node starrings);
    - greedy proposals are legal at every reachable state;
    - greedy terminates only in won states (Lemma 3);

    and across the sweep, that the bound is {e tight} in the Omega(|E|)
    sense: at least one instance whose worst case needs >= |E| moves. *)

type config = {
  label : string;
  budget : int;  (** the adversary's t *)
  channels_used : int;  (** proposal-size cap C' *)
}

type result = {
  instances : int;  (** digraphs enumerated *)
  states : int;  (** distinct game states expanded, summed *)
  choices : int;  (** referee responses explored, summed *)
  strategies : int;  (** complete referee strategies, summed *)
  worst_moves : int;  (** max minimax move count over the sweep *)
  worst_edges : int;  (** |E| of an instance attaining it *)
  worst_instance : string;
  tight_instances : int;  (** instances with |E| >= 1 and worst >= |E| *)
  tight_example : string;  (** one of them (tightness witness) *)
  violations : string list;
}

val check : nodes:int -> config -> jobs:int -> result
(** Shards the 2^(n(n-1)) edge-mask space across the domain pool in
    fixed-size chunks and merges in enumeration order: identical output
    for every [jobs]. *)
