(** Brute-force t-disruptability oracle (Theorem 2).

    A pair set is within the paper's disruption threshold when its failure
    graph admits a vertex cover of size <= t.  The optimized kernel
    ({!Rgraph.Vertex_cover}: FPT branch-and-bound on bitset adjacency,
    memoized) decides this on every game move and every experiment row —
    so this module re-decides it the dumbest possible way, by enumerating
    {e all} node subsets of size <= t, and demands bit-for-bit agreement
    across {e every} graph on a bounded node count.  An optimization that
    ever disagrees with the subset walk fails the certificate suite. *)

val brute_at_most : Rgraph.Digraph.Dense.t -> int -> bool * int
(** [brute_at_most g k] decides "vertex cover of size <= k" by testing
    node subsets in ascending bitmask order; also returns the number of
    subsets tested (deterministic: the scan stops at the first cover). *)

val brute_minimum_size : Rgraph.Digraph.Dense.t -> int
(** Exact minimum vertex cover size by full subset scan. *)

type result = {
  graphs : int;  (** graphs enumerated *)
  queries : int;  (** kernel decisions checked (graphs x budgets, + minima) *)
  subsets : int;  (** node subsets tested by the brute-force side *)
  violations : string list;
  worst_cover : int;  (** largest minimum cover seen *)
  worst_graph : string;  (** a graph attaining it, as an edge list *)
}

val check : max_nodes:int -> budgets:int list -> jobs:int -> result
(** Enumerates every undirected graph on [n <= max_nodes] labeled nodes
    (all 2^(n(n-1)/2) edge subsets for each n), and for each one checks
    that [Vertex_cover.at_most_dense] matches {!brute_at_most} for every
    budget, that [minimum_size_dense] matches {!brute_minimum_size}, and
    that [minimum_dense] really is a cover of that size.  Graph chunks
    are sharded across the domain pool and merged in enumeration order,
    so the result is identical for every [jobs]. *)
