(* Exhaustive f-AME verification: one radio-engine execution per strike
   strategy, each compared against the pure-game replay oracle.

   Position i of a move's proposal is broadcast on channel i (the
   schedule posts exactly that to the oracle), so a pure-game strike path
   — per-move jammed proposal positions — translates verbatim into a
   scripted jamming adversary.  The script reads the oracle to recognize
   message rounds, exactly like [Experiments.Common.schedule_jam]. *)

module Fame = Ame.Fame

type regime = {
  name : string;
  budget : int;
  channels : int;
  channels_used : int;
  mode : Fame.feedback_mode;
  pairs : (int * int) list;
  jam_feedback : bool;
  seed : int64;
}

type result = {
  strategies : int;
  runs : int;
  engine_rounds : int;
  worst_rounds : int;
  worst_moves : int;
  worst_path : string;
  violations : string list;
}

let root regime =
  (* Must mirror Fame.run's initial state exactly: Dense over the inferred
     endpoint range, proposal size = channels used, min proposal t+1. *)
  Game.State.create_dense ~proposal_size:regime.channels_used
    ~min_proposal:(regime.budget + 1)
    (Rgraph.Digraph.Dense.of_edges regime.pairs)
    ~t:regime.budget

let pp_path path =
  match path with
  | [] -> "(no-move)"
  | _ ->
    String.concat " "
      (List.map
         (fun jam -> Printf.sprintf "[%s]" (String.concat ";" (List.map string_of_int jam)))
         path)

(* The scripted adversary: jam the listed proposal positions (= channels)
   of each successive message round; optionally also jam channels
   [0..t-1] of every feedback round. *)
let scripted board ~budget ~jam_feedback path =
  let move = ref 0 in
  let jam chan = { Radio.Adversary.chan; spoof = None } in
  { Radio.Adversary.name = "verify-scripted";
    act =
      (fun ~round ->
        match Ame.Oracle.get board ~round with
        | Some _ ->
          let jams = if !move < Array.length path then path.(!move) else [] in
          incr move;
          List.map jam jams
        | None -> if jam_feedback then List.init budget jam else []);
    observe = (fun _ -> ());
    observes = false }

(* Exact round-count prediction: each move costs 1 message round plus the
   feedback rounds its proposal size dictates (Fame falls back to
   sequential feedback on tail proposals narrower than channels_used). *)
let predicted_rounds regime ~n sizes =
  let params = Ame.Params.default in
  let seq_reps =
    Ame.Params.feedback_reps params ~channels:regime.channels ~budget:regime.budget ~n
  in
  let tr = Ame.Params.tree_reps params ~n in
  List.fold_left
    (fun acc p ->
      let fb =
        match regime.mode with
        | Fame.Tree when p = regime.channels_used ->
          Ame.Tree_feedback.rounds_consumed ~groups:p ~reps:tr
        | Fame.Tree | Fame.Sequential ->
          Ame.Feedback.rounds_consumed ~witnesses:(Array.make p [||]) ~reps:seq_reps
      in
      acc + 1 + fb)
    0 sizes

let edge_lists_equal a b = List.equal (fun (v, w) (x, y) -> v = x && w = y) a b

let pp_pairs pairs =
  Printf.sprintf "[%s]"
    (String.concat ";" (List.map (fun (v, w) -> Printf.sprintf "%d,%d" v w) pairs))

type run_result = { rounds : int; moves : int; viols : string list }

let run_one regime ~n ~initial path =
  let cfg =
    Radio.Config.make ~seed:regime.seed ~n ~channels:regime.channels ~t:regime.budget ()
  in
  let path_arr = Array.of_list path in
  let outcome =
    Fame.run ~channels_used:regime.channels_used ~feedback_mode:regime.mode ~cfg
      ~pairs:regime.pairs ~messages:Experiments.Common.default_messages
      ~adversary:(fun board ->
        scripted board ~budget:regime.budget ~jam_feedback:regime.jam_feedback path_arr)
      ()
  in
  let expected = Game_tree.replay initial ~jams:path in
  let viols = ref [] in
  let fail fmt =
    Printf.ksprintf
      (fun msg -> viols := Printf.sprintf "%s: %s on %s" regime.name msg (pp_path path) :: !viols)
      fmt
  in
  if outcome.Fame.diverged then fail "whp failure: nodes diverged";
  if not outcome.Fame.engine.Radio.Engine.completed then fail "engine hit max_rounds";
  if outcome.Fame.moves <> expected.Game_tree.replay_moves then
    fail "engine played %d moves, game replay says %d" outcome.Fame.moves
      expected.Game_tree.replay_moves;
  let delivered_pairs = List.map fst outcome.Fame.delivered in
  if not (edge_lists_equal delivered_pairs expected.Game_tree.delivered_edges) then
    fail "delivered %s, game replay says %s" (pp_pairs delivered_pairs)
      (pp_pairs expected.Game_tree.delivered_edges);
  List.iter
    (fun (pair, body) ->
      let want = Experiments.Common.default_messages pair in
      if String.compare body want <> 0 then
        fail "authentication: pair %s output %S, not the sent %S" (pp_pairs [ pair ]) body want)
    outcome.Fame.delivered;
  if not (edge_lists_equal outcome.Fame.confirmed expected.Game_tree.delivered_edges) then
    fail "sender awareness: confirmed %s, delivered %s" (pp_pairs outcome.Fame.confirmed)
      (pp_pairs expected.Game_tree.delivered_edges);
  if not (edge_lists_equal outcome.Fame.failed expected.Game_tree.failed_edges) then
    fail "failed set %s, game replay says %s" (pp_pairs outcome.Fame.failed)
      (pp_pairs expected.Game_tree.failed_edges);
  (match outcome.Fame.disruption_vc with
   | Some vc when vc <= regime.budget -> ()
   | Some vc -> fail "t-disruptability: failed-pair cover %d > t=%d" vc regime.budget
   | None -> fail "t-disruptability: cover not decided");
  let want_rounds = predicted_rounds regime ~n expected.Game_tree.proposal_sizes in
  if outcome.Fame.engine.Radio.Engine.rounds_used <> want_rounds then
    fail "used %d rounds, feedback arithmetic predicts %d"
      outcome.Fame.engine.Radio.Engine.rounds_used want_rounds;
  { rounds = outcome.Fame.engine.Radio.Engine.rounds_used;
    moves = outcome.Fame.moves;
    viols = List.rev !viols }

let chunk_size = 8

let chunks xs =
  let rec go acc cur k rest =
    match rest with
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest when k = chunk_size -> go (List.rev cur :: acc) [ x ] 1 rest
    | x :: rest -> go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

let check regime ~path_limit ~jobs =
  let initial = root regime in
  let n =
    Experiments.Common.fame_nodes_for ~t:regime.budget ~channels_used:regime.channels_used
      ~channels:regime.channels
  in
  match Game_tree.strike_paths initial ~limit:path_limit with
  | Error msg ->
    { strategies = 0; runs = 0; engine_rounds = 0; worst_rounds = 0; worst_moves = 0;
      worst_path = ""; violations = [ Printf.sprintf "%s: %s" regime.name msg ] }
  | Ok paths ->
    (* Cross-check the enumeration against the minimax DAG: the leaf count
       must match, and no engine run may out-move the minimax bound. *)
    let tree = Game_tree.explore initial in
    let results =
      Parallel.map_ordered ~jobs
        (fun batch -> List.map (fun path -> (path, run_one regime ~n ~initial path)) batch)
        (chunks paths)
    in
    let runs = ref 0 and engine_rounds = ref 0 in
    let worst_rounds = ref (-1) and worst_moves = ref 0 and worst_path = ref "" in
    let violations = ref [] in
    List.iter
      (List.iter (fun (path, r) ->
           incr runs;
           engine_rounds := !engine_rounds + r.rounds;
           if r.moves > !worst_moves then worst_moves := r.moves;
           if r.rounds > !worst_rounds then begin
             worst_rounds := r.rounds;
             worst_path := pp_path path
           end;
           violations := List.rev_append r.viols !violations))
      results;
    let violations = ref (List.rev !violations) in
    if List.length paths <> tree.Game_tree.strategies then
      violations :=
        Printf.sprintf "%s: enumerated %d strike paths but the minimax tree has %d strategies"
          regime.name (List.length paths) tree.Game_tree.strategies
        :: !violations;
    if !worst_moves > tree.Game_tree.worst_moves then
      violations :=
        Printf.sprintf "%s: an engine run took %d moves, above the minimax worst case %d"
          regime.name !worst_moves tree.Game_tree.worst_moves
        :: !violations;
    { strategies = List.length paths;
      runs = !runs;
      engine_rounds = !engine_rounds;
      worst_rounds = (if !worst_rounds < 0 then 0 else !worst_rounds);
      worst_moves = !worst_moves;
      worst_path = !worst_path;
      violations = !violations }
