(** The bounded model: which instances each certificate tier exhausts.

    Quick (the CI gate) stays within n <= 5 graphs, t <= 2, C <= 6 and
    must finish in well under a minute; full (the nightly tier) pushes to
    n <= 6 graphs, C <= 8, and the C = 2t^2 tree regime at t = 2.  Every
    number here is part of the verified claim, so the sets are data the
    suite reports verbatim into certificates — not tunables. *)

type tier = {
  label : string;  (** ["quick"] or ["full"] *)
  disrupt_nodes : int;  (** all graphs on <= this many labeled nodes *)
  disrupt_budgets : int list;  (** t values checked per graph *)
  game_sweeps : (int * Game_check.config list) list;
      (** (n, configs): all digraphs on n labeled nodes, per config *)
  regimes : Fame_check.regime list;
  path_limit : int;  (** hard cap on strike strategies per regime *)
}

val quick : tier
val full : tier

val of_label : string -> tier option
(** ["quick"] or ["full"]. *)
