(** Point-to-point secure channels (Section 8, open question 4).

    Once a pair shares a secret key — from the group-key setup's Part 1, or
    derived from the group key — the two can meet on a pairwise
    pseudo-random hopping pattern that no one else (adversary or other
    nodes) can predict.  One emulated unicast round costs Theta(t log n)
    real rounds, like the broadcast service, but multiple pairs can run
    {e concurrently}: distinct pairs hop independently, colliding with each
    other only when their patterns coincide (probability 1/C per round),
    so aggregate throughput grows with C until self-collisions bite —
    which experiment E14 measures. *)

type spec = {
  key : string;  (** the pairwise secret *)
  channels : int;
  budget : int;
  reps : int;
  hop_prf : Crypto.Prf.Keyed.t;
      (** prepared hop PRF for [key] — built once in {!make_spec}, queried
          every round *)
  cipher : Crypto.Cipher.key;  (** prepared seal/open key for [key] *)
}

val make_spec : ?beta:float -> key:string -> cfg:Radio.Config.t -> unit -> spec

val hop : spec -> round:int -> int
(** Pairwise pattern, domain-separated from the broadcast service's. *)

type stream = {
  sender : int;
  receiver : int;
  payloads : string list;  (** one message per emulated round *)
}

type stream_result = {
  stream : stream;
  received : (int * string) list;  (** (emulated round, payload) delivered *)
}

type outcome = {
  engine : Radio.Engine.result;
  results : stream_result list;
  emulated_rounds : int;
  delivered_total : int;
  offered_total : int;
}

val run_streams :
  cfg:Radio.Config.t ->
  keys:(int * int -> string) ->
  streams:stream list ->
  adversary:Radio.Adversary.t ->
  unit ->
  outcome
(** Runs all streams concurrently; [keys (v, w)] is the pairwise secret of
    the (unordered) pair.  Streams must have node-disjoint endpoints.
    Nodes not in any stream idle. *)
