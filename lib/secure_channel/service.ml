type spec = {
  key : string;
  channels : int;
  budget : int;
  reps : int;
  hop_prf : Crypto.Prf.Keyed.t;
  cipher : Crypto.Cipher.key;
  scratch : Crypto.Cipher.scratch;
}

let log2 x = log x /. log 2.0

let make_spec ?(beta = 4.0) ~key ~cfg () =
  let t = cfg.Radio.Config.t in
  let n = cfg.Radio.Config.n in
  let reps =
    max 1 (int_of_float (ceil (beta *. float_of_int (t + 1) *. log2 (float_of_int (max n 4)))))
  in
  { key; channels = cfg.Radio.Config.channels; budget = t; reps;
    hop_prf = Crypto.Prf.Keyed.create key; cipher = Crypto.Cipher.key key;
    scratch = Crypto.Cipher.scratch () }

let hop spec ~round = Crypto.Prf.Keyed.channel_hop spec.hop_prf ~round ~channels:spec.channels

let encode_payload ~sender ~seq msg =
  let field n =
    String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xFF))
  in
  field sender ^ field seq ^ msg

let decode_payload payload =
  if String.length payload < 8 then None
  else begin
    let field pos =
      let v = ref 0 in
      for i = 0 to 3 do
        v := (!v lsl 8) lor Char.code payload.[pos + i]
      done;
      !v
    in
    Some (field 0, field 4, String.sub payload 8 (String.length payload - 8))
  end

let broadcast spec ~sender ~seq msg =
  for _ = 1 to spec.reps do
    let round = Radio.Engine.current_round () in
    let chan = hop spec ~round in
    let payload = encode_payload ~sender ~seq msg in
    let sealed =
      Crypto.Cipher.seal_scratch spec.cipher spec.scratch ~nonce:(Int64.of_int round) payload
    in
    Radio.Engine.transmit ~chan (Radio.Frame.Sealed (Crypto.Cipher.encode sealed))
  done

let recv spec rng =
  let got = ref None in
  for _ = 1 to spec.reps do
    let round = Radio.Engine.current_round () in
    let chan = hop spec ~round in
    ignore rng;
    match Radio.Engine.listen ~chan with
    | Some (Radio.Frame.Sealed blob) when !got = None ->
      (match Crypto.Cipher.decode blob with
       | Some sealed ->
         (match Crypto.Cipher.open_scratch spec.cipher spec.scratch sealed with
          | Some payload -> got := decode_payload payload
          | None -> ())
       | None -> ())
    | Some _ | None -> ()
  done;
  !got

let idle spec =
  for _ = 1 to spec.reps do
    Radio.Engine.idle ()
  done

type delivery = {
  emulated_round : int;
  sender : int;
  message : string;
  received_by : int list;
}

type outcome = {
  engine : Radio.Engine.result;
  deliveries : delivery list;
  emulated_rounds : int;
  real_rounds_per_emulated : int;
  plaintext_leaks : int;
  forged_accepts : int;
}

let run_workload ~cfg ~key_holders ~spec ~sends ~adversary () =
  let n = cfg.Radio.Config.n in
  let emulated_rounds =
    1 + List.fold_left (fun acc (er, _, _) -> max acc er) 0 sends
  in
  List.iter
    (fun (_, sender, _) ->
      if not (List.mem sender key_holders) then
        invalid_arg "Service.run_workload: sender lacks the group key")
    sends;
  (* receptions.(node) collects (emulated_round, sender, seq, msg). *)
  let receptions = Array.make n [] in
  let node_body (ctx : Radio.Engine.ctx) =
    let id = ctx.id in
    let holds_key = List.mem id key_holders in
    for er = 0 to emulated_rounds - 1 do
      match List.find_opt (fun (r, s, _) -> r = er && s = id) sends with
      | Some (_, _, msg) -> broadcast spec ~sender:id ~seq:er msg
      | None ->
        if holds_key then begin
          match recv spec ctx.rng with
          | Some (sender, seq, msg) -> receptions.(id) <- (er, sender, seq, msg) :: receptions.(id)
          | None -> ()
        end
        else
          (* Key outsiders cannot follow the hopping pattern; they scan
             random channels and (provably) decode nothing useful. *)
          for _ = 1 to spec.reps do
            ignore (Radio.Engine.listen ~chan:(Prng.Rng.int ctx.rng spec.channels))
          done
    done
  in
  let engine = Radio.Engine.run_nodes cfg ~adversary node_body in
  let deliveries =
    List.map
      (fun (er, sender, msg) ->
        let received_by =
          List.sort Int.compare
            (Array.to_list
               (Array.mapi
                  (fun id recs ->
                    if List.exists (fun (r, s, _, m) -> r = er && s = sender && m = msg) recs
                    then id
                    else -1)
                  receptions)
             |> List.filter (fun id -> id >= 0 && id <> sender))
        in
        { emulated_round = er; sender; message = msg; received_by })
      (List.sort
         (fun (r1, s1, m1) (r2, s2, m2) ->
           let c = Int.compare r1 r2 in
           if c <> 0 then c
           else
             let c = Int.compare s1 s2 in
             if c <> 0 then c else String.compare m1 m2)
         sends)
  in
  let forged_accepts =
    Array.fold_left
      (fun acc recs ->
        acc
        + List.length
            (List.filter
               (fun (_, sender, seq, msg) ->
                 not (List.exists (fun (r, s, m) -> r = seq && s = sender && m = msg) sends))
               recs))
      0 receptions
  in
  (* Secrecy scan: every honest transmission in this protocol must be a
     Sealed frame (checked via the payload-size stats being consistent is
     weak; instead we rely on construction plus the transcript when
     recorded). *)
  let plaintext_leaks =
    List.fold_left
      (fun acc record ->
        acc
        + List.length
            (List.filter
               (fun (_, _, frame) ->
                 match frame with Radio.Frame.Sealed _ -> false | _ -> true)
               record.Radio.Transcript.honest_tx))
      0 engine.Radio.Engine.transcript
  in
  { engine; deliveries; emulated_rounds; real_rounds_per_emulated = spec.reps;
    plaintext_leaks; forged_accepts }
