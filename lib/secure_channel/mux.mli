(** Multiplexed secure-channel service: thousands of logical channels over
    one simulated radio network (ROADMAP item 2, Section 7 at scale).

    Each logical channel carries a sustained message stream with per-channel
    sequence numbers and a replay window; the group key is rolled forward
    every [epoch_len] emulated rounds (epoch keys derived by PRF from the
    group key and the epoch counter), with frames from the previous epoch
    honoured only during a [grace] window; bounded per-channel send queues
    shed load when the radio cannot keep up.

    All protocol work is centralized in a once-per-emulated-round prepare
    step that batch-seals, batch-opens, batch-MACs and batch-verifies every
    frame of the round through {!Crypto.Cipher} / {!Crypto.Hmac} batch
    entry points ([crypto = Batched]) or through the naive one-shot API
    re-deriving key material per frame ([crypto = Per_message]).  Both
    modes produce byte-identical frames, decisions, and {!render_stats}
    output — the throughput bench A/Bs them. *)

(** Pure sliding replay window over per-channel sequence numbers.  Exposed
    for property tests. *)
module Window : sig
  type t

  type verdict = Fresh | Duplicate | Out_of_window

  val create : width:int -> t
  (** [width] in 1..62 (the mask lives in one OCaml int). *)

  val check : t -> int -> verdict
  (** Judge a sequence number: above the window top is [Fresh]; more than
      [width - 1] below it is [Out_of_window]; inside the window, [Duplicate]
      iff already delivered. *)

  val note : t -> int -> unit
  (** Record a delivery (callers [note] exactly the [Fresh] ones). *)

  val highest : t -> int
  (** Highest delivered sequence number, or [-1] if none yet. *)
end

type epoch_verdict = Current | Previous | Stale

val epoch_verdict :
  epoch_len:int -> grace:int -> now:int -> frame_epoch:int -> epoch_verdict
(** Judge a frame sealed under [frame_epoch] arriving in emulated round
    [now]: the current epoch ([now / epoch_len]) always decodes; the
    previous one only within the first [grace] rounds after the boundary;
    everything else — including claimed future epochs — is [Stale] and is
    rejected without a decryption attempt.  Pure; exposed for property
    tests. *)

val epoch_of : epoch_len:int -> now:int -> int

type crypto_mode = Batched | Per_message

type transport =
  | Acked
      (** One sender/receiver pair per logical channel; slotted data and
          ack phases, each closed by a sync round
          ([2 * ceil(logical / phys) + 2] real rounds per emulated round).
          A message is sent, delivered, and acknowledged within one
          emulated round; lost frames or acks drive retransmission and
          queue draining. *)
  | Repeat of { reps : int; group : int }
      (** [group] members per logical channel; the designated sender
          repeats the sealed head frame [reps] times on a PRF-hopping
          channel ([reps + 1] real rounds per emulated round) — the E9
          broadcast shape. *)

type ack_mode =
  | Slotted  (** dedicated ack phase: [2S + 2] real rounds per emulated *)
  | Piggybacked
      (** Acked transport only, [logical] even.  Channels are paired as
          duplex streams (channel [c] and [c lxor 1] run between the same
          two nodes, one node per channel), and the cumulative ack for the
          opposite direction rides inside each sealed data frame — or a
          bare sealed ack carrier when the queue is empty — so an emulated
          round is [max(S, 2) + 1] real rounds instead of [2S + 2].  A
          send window of 2 keeps the pipeline full at rate 1; one extra
          flush emulated round retires the final deliveries, so drained
          runs end with [acked = delivered] just like the slotted mode. *)

type spec = {
  key : string;  (** group key *)
  logical : int;  (** number of logical channels *)
  phys : int;  (** physical radio channels *)
  budget : int;  (** adversary strikes per round *)
  transport : transport;
  ack_mode : ack_mode;
  crypto : crypto_mode;
  rounds : int;  (** emulated rounds to run *)
  rate : int;  (** messages offered per channel per emulated round *)
  queue_cap : int;  (** bounded send queue; overflow is shed *)
  window : int;  (** replay-window width *)
  epoch_len : int;  (** emulated rounds per key epoch *)
  grace : int;  (** rounds the previous epoch stays decodable *)
  payload : int;  (** message body bytes *)
  outsiders : int;  (** keyless nodes that snoop and forge *)
  seed : int64;
}

val make :
  key:string ->
  logical:int ->
  phys:int ->
  budget:int ->
  ?transport:transport ->
  ?ack_mode:ack_mode ->
  ?crypto:crypto_mode ->
  rounds:int ->
  ?rate:int ->
  ?queue_cap:int ->
  ?window:int ->
  ?epoch_len:int ->
  ?grace:int ->
  ?payload:int ->
  ?outsiders:int ->
  ?seed:int64 ->
  unit ->
  spec
(** Validates every field; raises [Invalid_argument] otherwise.  Defaults:
    [Acked], [Slotted], [Batched], rate 1, queue_cap 8, window 32,
    epoch_len 16, grace 4, payload 16, outsiders 0, seed 1. *)

val node_count : spec -> int
(** Engine nodes the run needs: 2 per channel (Acked, Slotted), 1 per
    channel (Acked, Piggybacked) or [group] per channel (Repeat), plus
    [outsiders]. *)

val real_rounds_per_emulated : spec -> int

type stats = {
  mutable offered : int;  (** messages the application tried to enqueue *)
  mutable delivered : int;  (** fresh in-window deliveries *)
  mutable acked : int;  (** sender-side: head retired by a valid ack *)
  mutable duplicates : int;  (** replay-window hits (lost-ack retransmits) *)
  mutable stale_epoch : int;  (** frames rejected unopened by epoch check *)
  mutable out_of_window : int;
  mutable bad_frames : int;  (** malformed, MAC-rejected, or spliced frames *)
  mutable shed : int;  (** offered messages dropped by backpressure *)
  mutable retransmissions : int;
  mutable rekeys : int;  (** epoch boundaries crossed *)
  mutable messages_done : int;  (** Repeat: heads retired *)
  mutable full_deliveries : int;  (** Repeat: heads heard by every receiver *)
  mutable forged_accepts : int;  (** authenticated frames with wrong bodies (0) *)
  mutable plaintext_leaks : int;  (** outsider decryptions that succeeded (0) *)
  mutable snooped : int;  (** sealed frames outsiders overheard *)
}

type result = {
  spec : spec;
  stats : stats;
  engine : Radio.Engine.result;
  latency_hist : int array;
      (** bucket [d] counts deliveries [d] emulated rounds after enqueue
          (last bucket absorbs the tail) *)
  emulated_rounds : int;
  real_rounds_per_emulated : int;
}

val latency_percentile : result -> float -> int
(** [latency_percentile r 0.99]: delivery latency in emulated rounds. *)

val run : ?pool:Parallel.Pool.t -> spec -> adversary:Radio.Adversary.t -> result
(** Run the workload on the sparse engine (channel-usage tracking on).
    Deterministic in [spec]: byte-identical stats and {!render_stats} for
    every pool size and for both crypto modes. *)

val render_stats : result -> string
(** Canonical multi-line rendering of everything observable about the run.
    Deliberately excludes the crypto mode, so Batched and Per_message runs
    of the same spec render identically — the bench's determinism rows
    hash this. *)

val output_digest : result -> string
(** SHA-256 (hex) of {!render_stats}. *)
