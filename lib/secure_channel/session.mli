(** Message sessions over the emulated secure channel: fragmentation,
    reassembly, and duplicate suppression.

    The broadcast service of Section 7 moves one frame per emulated round;
    real payloads (files, long messages) need a session layer on top.  This
    module fragments a message into MTU-sized pieces — one per emulated
    round — and reassembles on the receiver side, dropping duplicates and
    replays by (sender, message id).  Everything rides inside the service's
    encrypted, MACed frames, so the adversary can at worst suppress
    fragments (forcing a reassembly timeout), never corrupt or splice. *)

(** {1 Fragment codec} *)

val fragment : mtu:int -> msg_id:int -> string -> string list
(** Split a message into [ceil (len / mtu)] encoded fragments.  Requires
    [mtu > 0] and [0 <= msg_id < 2^31]; messages up to 65535 fragments. *)

val decode_fragment : string -> (int * int * int * string) option
(** [Some (msg_id, index, count, piece)] for a well-formed fragment. *)

(** {1 Reassembly} *)

type reassembler

val create_reassembler : unit -> reassembler

val feed : reassembler -> sender:int -> string -> (int * string) option
(** Feed one received fragment payload; [Some (msg_id, message)] exactly
    once, when the last missing piece of a (sender, msg_id) arrives.
    Duplicate fragments and already-completed messages are ignored. *)

val pending : reassembler -> (int * int * int * int) list
(** Incomplete reassemblies: (sender, msg_id, have, want). *)

(** {1 Workload runner} *)

type delivery = {
  sender : int;
  msg_id : int;
  message : string;
  completed_by : int list;  (** nodes that fully reassembled it; sorted *)
}

type outcome = {
  engine : Radio.Engine.result;
  deliveries : delivery list;
  emulated_rounds : int;
  fragments_sent : int;
}

val run_workload :
  cfg:Radio.Config.t ->
  key_holders:int list ->
  spec:Service.spec ->
  mtu:int ->
  sends:(int * string) list ->
  adversary:Radio.Adversary.t ->
  unit ->
  outcome
(** [sends] is a list of (sender, message); messages are transmitted
    back-to-back (each fragment in its own emulated round), all nodes
    listening otherwise.  Senders take turns in list order. *)
