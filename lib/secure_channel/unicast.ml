type spec = {
  key : string;
  channels : int;
  budget : int;
  reps : int;
  hop_prf : Crypto.Prf.Keyed.t;
  cipher : Crypto.Cipher.key;
}

let log2 x = log x /. log 2.0

let make_spec ?(beta = 4.0) ~key ~cfg () =
  let t = cfg.Radio.Config.t in
  let n = cfg.Radio.Config.n in
  let reps =
    max 1 (int_of_float (ceil (beta *. float_of_int (t + 1) *. log2 (float_of_int (max n 4)))))
  in
  { key; channels = cfg.Radio.Config.channels; budget = t; reps;
    hop_prf = Crypto.Prf.Keyed.create key; cipher = Crypto.Cipher.key key }

let hop spec ~round =
  Crypto.Prf.Keyed.below spec.hop_prf ~label:"unicast-hop" ~counter:round spec.channels

type stream = {
  sender : int;
  receiver : int;
  payloads : string list;
}

type stream_result = {
  stream : stream;
  received : (int * string) list;
}

type outcome = {
  engine : Radio.Engine.result;
  results : stream_result list;
  emulated_rounds : int;
  delivered_total : int;
  offered_total : int;
}

let encode_payload ~seq msg =
  String.init 4 (fun i -> Char.chr ((seq lsr (8 * (3 - i))) land 0xFF)) ^ msg

let decode_payload payload =
  if String.length payload < 4 then None
  else begin
    let seq = ref 0 in
    for i = 0 to 3 do
      seq := (!seq lsl 8) lor Char.code payload.[i]
    done;
    Some (!seq, String.sub payload 4 (String.length payload - 4))
  end

let run_streams ~cfg ~keys ~streams ~adversary () =
  (* Endpoint disjointness: each node plays one role. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun s ->
      List.iter
        (fun v ->
          if Hashtbl.mem seen v then invalid_arg "Unicast.run_streams: overlapping endpoints";
          Hashtbl.add seen v ())
        [ s.sender; s.receiver ])
    streams;
  let emulated_rounds =
    List.fold_left (fun acc s -> max acc (List.length s.payloads)) 0 streams
  in
  let received_cells : (int * int, (int * string) list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace received_cells (s.sender, s.receiver) (ref [])) streams;
  let node_body (ctx : Radio.Engine.ctx) =
    let id = ctx.id in
    let my_stream_as v = List.find_opt (fun s -> v s = id) streams in
    match (my_stream_as (fun s -> s.sender), my_stream_as (fun s -> s.receiver)) with
    | Some stream, _ ->
      let spec = make_spec ~key:(keys (stream.sender, stream.receiver)) ~cfg () in
      List.iteri
        (fun seq payload ->
          for _ = 1 to spec.reps do
            let round = Radio.Engine.current_round () in
            let sealed =
              Crypto.Cipher.seal_keyed spec.cipher ~nonce:(Int64.of_int round)
                (encode_payload ~seq payload)
            in
            Radio.Engine.transmit ~chan:(hop spec ~round)
              (Radio.Frame.Sealed (Crypto.Cipher.encode sealed))
          done)
        stream.payloads;
      (* Pad to the longest stream so all fibers stay in lockstep. *)
      for _ = List.length stream.payloads + 1 to emulated_rounds do
        for _ = 1 to spec.reps do
          Radio.Engine.idle ()
        done
      done
    | None, Some stream ->
      let spec = make_spec ~key:(keys (stream.sender, stream.receiver)) ~cfg () in
      let cell = Hashtbl.find received_cells (stream.sender, stream.receiver) in
      for _er = 0 to emulated_rounds - 1 do
        for _ = 1 to spec.reps do
          let round = Radio.Engine.current_round () in
          match Radio.Engine.listen ~chan:(hop spec ~round) with
          | Some (Radio.Frame.Sealed blob) ->
            (match Crypto.Cipher.decode blob with
             | Some sealed ->
               (match Crypto.Cipher.open_ ~key:spec.key sealed with
                | Some payload ->
                  (match decode_payload payload with
                   | Some (seq, msg) ->
                     if not (List.mem_assoc seq !cell) then cell := (seq, msg) :: !cell
                   | None -> ())
                | None -> ())
             | None -> ())
          | Some _ | None -> ()
        done
      done
    | None, None ->
      let reps = (make_spec ~key:"idle" ~cfg ()).reps in
      for _ = 1 to emulated_rounds * reps do
        Radio.Engine.idle ()
      done
  in
  let engine = Radio.Engine.run_nodes cfg ~adversary node_body in
  let results =
    List.map
      (fun s ->
        let cell = Hashtbl.find received_cells (s.sender, s.receiver) in
        { stream = s;
          received =
            List.sort
              (fun (a, x) (b, y) -> if a <> b then Int.compare a b else String.compare x y)
              !cell })
      streams
  in
  let delivered_total = List.fold_left (fun acc r -> acc + List.length r.received) 0 results in
  let offered_total = List.fold_left (fun acc s -> acc + List.length s.payloads) 0 streams in
  { engine; results; emulated_rounds; delivered_total; offered_total }
