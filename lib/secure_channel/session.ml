let u16 n = String.init 2 (fun i -> Char.chr ((n lsr (8 * (1 - i))) land 0xFF))
let u32 n = String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xFF))

let read_u16 s pos = (Char.code s.[pos] lsl 8) lor Char.code s.[pos + 1]

let read_u32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let fragment ~mtu ~msg_id message =
  if mtu <= 0 then invalid_arg "Session.fragment: mtu must be positive";
  if msg_id < 0 then invalid_arg "Session.fragment: negative msg_id";
  let len = String.length message in
  let count = max 1 ((len + mtu - 1) / mtu) in
  if count > 0xFFFF then invalid_arg "Session.fragment: message too large for mtu";
  List.init count (fun index ->
      let piece = String.sub message (index * mtu) (min mtu (len - (index * mtu))) in
      "F" ^ u32 msg_id ^ u16 index ^ u16 count ^ piece)

let decode_fragment payload =
  if String.length payload < 9 || payload.[0] <> 'F' then None
  else begin
    let msg_id = read_u32 payload 1 in
    let index = read_u16 payload 5 in
    let count = read_u16 payload 7 in
    if msg_id < 0 || count = 0 || index >= count then None
    else Some (msg_id, index, count, String.sub payload 9 (String.length payload - 9))
  end

type partial = { count : int; pieces : (int, string) Hashtbl.t }

type reassembler = {
  partials : (int * int, partial) Hashtbl.t;  (* (sender, msg_id) *)
  completed : (int * int, unit) Hashtbl.t;
}

let create_reassembler () = { partials = Hashtbl.create 16; completed = Hashtbl.create 16 }

let feed r ~sender payload =
  match decode_fragment payload with
  | None -> None
  | Some (msg_id, index, count, piece) ->
    let key = (sender, msg_id) in
    if Hashtbl.mem r.completed key then None
    else begin
      let partial =
        match Hashtbl.find_opt r.partials key with
        | Some p when p.count = count -> p
        | Some _ ->
          (* Conflicting fragment count for the same id: start over (can
             only happen with a malformed sender; frames are MACed). *)
          let p = { count; pieces = Hashtbl.create 8 } in
          Hashtbl.replace r.partials key p;
          p
        | None ->
          let p = { count; pieces = Hashtbl.create 8 } in
          Hashtbl.replace r.partials key p;
          p
      in
      if not (Hashtbl.mem partial.pieces index) then
        Hashtbl.replace partial.pieces index piece;
      if Hashtbl.length partial.pieces = partial.count then begin
        Hashtbl.remove r.partials key;
        Hashtbl.replace r.completed key ();
        let buf = Buffer.create 64 in
        for i = 0 to partial.count - 1 do
          Buffer.add_string buf (Hashtbl.find partial.pieces i)
        done;
        Some (msg_id, Buffer.contents buf)
      end
      else None
    end

let pending r =
  List.map
    (fun ((sender, msg_id), partial) ->
      (sender, msg_id, Hashtbl.length partial.pieces, partial.count))
    (Det.bindings r.partials)

type delivery = {
  sender : int;
  msg_id : int;
  message : string;
  completed_by : int list;
}

type outcome = {
  engine : Radio.Engine.result;
  deliveries : delivery list;
  emulated_rounds : int;
  fragments_sent : int;
}

let run_workload ~cfg ~key_holders ~spec ~mtu ~sends ~adversary () =
  let n = cfg.Radio.Config.n in
  (* Lay out the schedule: message i gets msg_id i and a contiguous block of
     emulated rounds, one per fragment. *)
  let plan =
    List.mapi (fun i (sender, message) -> (i, sender, message, fragment ~mtu ~msg_id:i message)) sends
  in
  let schedule =
    List.concat_map (fun (_, sender, _, frags) -> List.map (fun f -> (sender, f)) frags) plan
  in
  let emulated_rounds = List.length schedule in
  let completed : (int, (int * int) list) Hashtbl.t = Hashtbl.create 16 in
  let node_body (ctx : Radio.Engine.ctx) =
    let id = ctx.id in
    let holds_key = List.mem id key_holders in
    let reassembler = create_reassembler () in
    List.iteri
      (fun er (sender, frag_payload) ->
        if id = sender then Service.broadcast spec ~sender:id ~seq:er frag_payload
        else if holds_key then begin
          match Service.recv spec ctx.rng with
          | Some (from, _, payload) ->
            (match feed reassembler ~sender:from payload with
             | Some (msg_id, _message) ->
               let existing = Option.value (Hashtbl.find_opt completed id) ~default:[] in
               Hashtbl.replace completed id ((from, msg_id) :: existing)
             | None -> ())
          | None -> ()
        end
        else Service.idle spec)
      schedule
  in
  let engine = Radio.Engine.run_nodes cfg ~adversary node_body in
  let deliveries =
    List.map
      (fun (msg_id, sender, message, _) ->
        let completed_by =
          List.sort Int.compare
            (List.filter
               (fun id ->
                 id <> sender
                 && List.mem (sender, msg_id)
                      (Option.value (Hashtbl.find_opt completed id) ~default:[]))
               (List.init n Fun.id))
        in
        { sender; msg_id; message; completed_by })
      plan
  in
  { engine; deliveries; emulated_rounds;
    fragments_sent = List.length schedule }
