(* Multiplexed secure-channel service (ROADMAP item 2).

   Thousands of logical channels share one simulated radio network.  All
   protocol intelligence is central: once per emulated round, the first
   fiber resumed runs [prepare], which processes everything heard in the
   previous emulated round, runs the epoch / replay-window / backpressure
   state machines, and batch-seals and batch-MACs every frame the round
   will transmit.  Node fibers are thin actors — they read their slot plan
   from the shared state and move bytes.  Fibers resume strictly
   sequentially in node-id order within the engine's domain (the
   determinism contract; harvest sharding only ever reads engine-internal
   arrays), so the central mutable state needs no synchronization, and the
   batch crypto amortizes key schedules and scratch buffers across every
   frame of the round.

   Emulated-round layout (Acked transport): S data slots, a mid sync
   round, S ack slots, an end sync round — 2S+2 real rounds,
   S = ceil(logical / phys).  Logical channel c occupies slot [c mod S] at
   position [c / S]; a PRF-keyed offset per (emulated round, slot) rotates
   the whole slot across the physical band, so co-scheduled channels never
   collide with each other while the adversary cannot predict where any
   one channel lands.  The central step is split in two: [prepare_data]
   (round start: process last round's acks, enqueue offered load, seal
   this round's data frames) and [prepare_acks] (after the mid sync:
   process this round's received data, MAC this round's acks) — so a
   message is sent, delivered, and acknowledged within one emulated round.
   Each sync round guarantees that every listen of the preceding phase has
   stored its result before the next central step reads it.

   Repeat transport (the E9 broadcast shape): [group] members per logical
   channel; the designated sender repeats the sealed head frame [reps]
   times on a hopping channel while the rest listen — reps+1 real rounds
   per emulated round, no acks, the head is retired after its round. *)

module Cipher = Crypto.Cipher
module Hmac = Crypto.Hmac
module Prf = Crypto.Prf
module Sha256 = Crypto.Sha256

(* ------------------------------------------------------------------ *)
(* Pure replay-window and epoch-acceptance state machines.             *)
(* ------------------------------------------------------------------ *)

module Window = struct
  type t = { width : int; mutable hi : int; mutable mask : int }

  type verdict = Fresh | Duplicate | Out_of_window

  let create ~width =
    if width < 1 || width > 62 then
      invalid_arg "Mux.Window.create: width must be in 1..62";
    { width; hi = -1; mask = 0 }

  (* [mask] bit k records whether seq [hi - k] was delivered (bit 0 is
     [hi] itself); bits at or beyond [width] are never consulted. *)
  let check w seq =
    if seq < 0 then Out_of_window
    else if w.hi < 0 || seq > w.hi then Fresh
    else if w.hi - seq >= w.width then Out_of_window
    else if w.mask land (1 lsl (w.hi - seq)) <> 0 then Duplicate
    else Fresh

  let note w seq =
    if w.hi < 0 || seq > w.hi then begin
      let shift = if w.hi < 0 then 1 else seq - w.hi in
      w.mask <- (if shift >= 62 then 0 else (w.mask lsl shift) land ((1 lsl 62) - 1)) lor 1;
      w.hi <- seq
    end
    else w.mask <- w.mask lor (1 lsl (w.hi - seq))

  let highest w = w.hi
end

type epoch_verdict = Current | Previous | Stale

(* A frame sealed under [frame_epoch] is judged against the emulated round
   [now] it arrives in: the current epoch always decodes; the previous
   epoch is honoured only within [grace] emulated rounds of the boundary;
   anything older — or claiming a future epoch — is rejected unopened. *)
let epoch_verdict ~epoch_len ~grace ~now ~frame_epoch =
  let cur = now / epoch_len in
  if frame_epoch = cur then Current
  else if frame_epoch = cur - 1 && now mod epoch_len < grace then Previous
  else Stale

let epoch_of ~epoch_len ~now = now / epoch_len

(* ------------------------------------------------------------------ *)
(* Epoch key derivation and the two crypto back ends.                  *)
(* ------------------------------------------------------------------ *)

type crypto_mode = Batched | Per_message

let epoch_raw group_prf ~epoch =
  Prf.Keyed.bytes group_prf ~label:"mux-epoch" ~counter:epoch

let ack_raw raw = Sha256.digest ("mux-ack|" ^ raw)

(* Batch-shaped crypto interface.  The protocol logic only ever talks to
   these four entry points, so [Batched] and [Per_message] produce
   byte-identical frames and decisions by construction — only the work per
   frame differs. *)
type ops = {
  seal_many : epoch:int -> nonces:int64 array -> string array -> Cipher.sealed array;
  open_many : epoch:int -> Cipher.sealed array -> string option array;
  mac_many : epoch:int -> string array -> string array;
  verify_many : epoch:int -> tags:string array -> string array -> bool array;
}

type epoch_keys = { ek_epoch : int; ck : Cipher.key; ak : Hmac.key }

(* The batched back end: epoch-key handles cached by epoch parity (exactly
   the current and previous epoch are ever decodable, so two slots never
   thrash), one cipher scratch for the whole run, and the multi-message
   batch entry points of {!Cipher} and {!Hmac}. *)
let batched_ops group_prf =
  let scratch = Cipher.scratch () in
  let cache : epoch_keys option array = [| None; None |] in
  let keys epoch =
    let slot = epoch land 1 in
    match cache.(slot) with
    | Some k when k.ek_epoch = epoch -> k
    | Some _ | None ->
      let raw = epoch_raw group_prf ~epoch in
      let k = { ek_epoch = epoch; ck = Cipher.key raw; ak = Hmac.key (ack_raw raw) } in
      cache.(slot) <- Some k;
      k
  in
  { seal_many =
      (fun ~epoch ~nonces msgs -> Cipher.seal_batch (keys epoch).ck scratch ~nonces msgs);
    open_many = (fun ~epoch frames -> Cipher.open_batch (keys epoch).ck scratch frames);
    mac_many = (fun ~epoch msgs -> Hmac.mac_batch (keys epoch).ak msgs);
    verify_many = (fun ~epoch ~tags msgs -> Hmac.verify_batch (keys epoch).ak ~tags msgs) }

(* The per-message back end: the naive path, re-deriving everything a
   frame needs — the group PRF handle from the raw group key, the epoch
   key material from it, and the cipher/MAC subkey schedules — for every
   single frame through the one-shot crypto API, exactly as a caller with
   no caching layer would.  Byte-identical outputs; this is the baseline
   side of the throughput bench's A/B. *)
let per_message_ops key =
  let raw ~epoch = epoch_raw (Prf.Keyed.create key) ~epoch in
  { seal_many =
      (fun ~epoch ~nonces msgs ->
        Array.init (Array.length msgs) (fun i ->
            Cipher.seal ~key:(raw ~epoch) ~nonce:nonces.(i) msgs.(i)));
    open_many = (fun ~epoch frames -> Array.map (fun f -> Cipher.open_ ~key:(raw ~epoch) f) frames);
    mac_many =
      (fun ~epoch msgs -> Array.map (fun m -> Hmac.mac ~key:(ack_raw (raw ~epoch)) m) msgs);
    verify_many =
      (fun ~epoch ~tags msgs ->
        Array.init (Array.length msgs) (fun i ->
            Hmac.verify ~key:(ack_raw (raw ~epoch)) ~tag:tags.(i) msgs.(i))) }

let ops_of_mode mode ~key group_prf =
  match mode with
  | Batched -> batched_ops group_prf
  | Per_message -> per_message_ops key

(* ------------------------------------------------------------------ *)
(* Wire formats.                                                       *)
(* ------------------------------------------------------------------ *)

let u32 n = String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xFF))

(* Same big-endian bytes as [u32] (int32 truncation keeps the low 32 bits
   bytewise), written in place. *)
let set_u32 b pos n = Bytes.set_int32_be b pos (Int32.of_int n)

let read_u32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

(* Authenticated payload of a data frame: channel id (epoch keys are shared
   by the whole group, so without the binding a valid frame could be
   spliced onto another logical channel), sequence number, sealing epoch,
   enqueue round (for latency accounting). *)
let encode_payload ~chan ~seq ~epoch ~enq body =
  let bl = String.length body in
  let out = Bytes.create (16 + bl) in
  set_u32 out 0 chan;
  set_u32 out 4 seq;
  set_u32 out 8 epoch;
  set_u32 out 12 enq;
  Bytes.blit_string body 0 out 16 bl;
  (* radio-lint: allow partial-array-unsafe — freshly built, uniquely owned *)
  Bytes.unsafe_to_string out

let decode_payload payload =
  if String.length payload < 16 then None
  else
    Some
      ( read_u32 payload 0,
        read_u32 payload 4,
        read_u32 payload 8,
        read_u32 payload 12,
        String.sub payload 16 (String.length payload - 16) )

(* Data frame on the air: clear epoch header (selects the trial key without
   one MAC attempt per live epoch) + the sealed blob, framed in one
   buffer and parsed in place. *)
let encode_data ~epoch sealed =
  let out = Bytes.create (4 + Cipher.encoded_size sealed) in
  set_u32 out 0 epoch;
  Cipher.encode_into sealed out ~pos:4;
  (* radio-lint: allow partial-array-unsafe — freshly built, uniquely owned *)
  Bytes.unsafe_to_string out

let decode_data blob =
  if String.length blob < 4 then None
  else
    match Cipher.decode_sub blob ~pos:4 with
    | Some sealed -> Some (read_u32 blob 0, sealed)
    | None -> None

(* Ack frame: marker, channel, seq, epoch, 32-byte HMAC under the epoch's
   ack subkey.  MAC-only — a bare sequence number needs no secrecy. *)
let ack_msg ~chan ~seq ~epoch = "ack|" ^ u32 chan ^ u32 seq ^ u32 epoch

let encode_ack ~chan ~seq ~epoch tag = "A" ^ u32 chan ^ u32 seq ^ u32 epoch ^ tag

let decode_ack blob =
  if String.length blob <> 45 || blob.[0] <> 'A' then None
  else Some (read_u32 blob 1, read_u32 blob 5, read_u32 blob 9, String.sub blob 13 32)

(* Piggybacked-mode sealed payloads.  The first word carries the cumulative
   ack for the opposite direction (stored as ack + 1 so -1, "nothing
   delivered yet", encodes cleanly) with the kind flag folded into its top
   bit: flag clear is a data frame, flag set a bare ack carrier sent when
   the sender's queue is empty but the partner still has unretired frames.

   The layout is sized to the keystream: {!Cipher} keystream blocks are 32
   bytes, and the slotted data payload (16-byte header + default 16-byte
   body) fills exactly one.  A naive kind byte + ack word + full slotted
   header would spill the piggybacked payload into a second block and
   nearly double the stream-cipher work of every frame, so the sealing
   epoch — redundant inside the payload, because the clear epoch header
   selects the (epoch-derived) key and any tampering with it fails
   authentication outright — is dropped and the kind flag costs no bytes.
   At the default body size a piggybacked data payload is the same 32
   bytes as its slotted counterpart.  Distinct encodings keep the slotted
   wire format byte-for-byte untouched. *)
let pig_ack_flag = 1 lsl 31

let encode_pig_data ~ack ~chan ~seq ~enq body =
  let bl = String.length body in
  let out = Bytes.create (16 + bl) in
  set_u32 out 0 (ack + 1);
  set_u32 out 4 chan;
  set_u32 out 8 seq;
  set_u32 out 12 enq;
  Bytes.blit_string body 0 out 16 bl;
  (* radio-lint: allow partial-array-unsafe — freshly built, uniquely owned *)
  Bytes.unsafe_to_string out

let encode_pig_ack ~ack ~chan ~epoch ~round =
  u32 ((ack + 1) lor pig_ack_flag) ^ u32 chan ^ u32 epoch ^ u32 round

(* Piggybacked frames are re-sealed whenever the folded ack advances, so
   their nonces are keyed by (channel, emulated round) — unique per sealed
   blob — with tag bits keeping them disjoint from the slotted
   [nonce_of] space and from each other. *)
let pig_nonce ~tag ~chan ~round =
  Int64.logor
    (Int64.shift_left 1L tag)
    (Int64.logor (Int64.shift_left (Int64.of_int chan) 32) (Int64.of_int round))

(* Deterministic message stream: the body of message (channel, seq), padded
   or truncated to the configured size.  Receivers regenerate it, so a
   forged-but-authenticated delivery (impossible short of a MAC break) is
   detected without storing the offered payloads. *)
let gen_body ~payload ~chan ~seq =
  let base = Printf.sprintf "m|%d|%d|" chan seq in
  let b = String.length base in
  if b >= payload then String.sub base 0 payload
  else base ^ String.make (payload - b) 'x'

(* ------------------------------------------------------------------ *)
(* Specification.                                                      *)
(* ------------------------------------------------------------------ *)

type transport = Acked | Repeat of { reps : int; group : int }

type ack_mode = Slotted | Piggybacked

type spec = {
  key : string;
  logical : int;
  phys : int;
  budget : int;
  transport : transport;
  ack_mode : ack_mode;
  crypto : crypto_mode;
  rounds : int;
  rate : int;
  queue_cap : int;
  window : int;
  epoch_len : int;
  grace : int;
  payload : int;
  outsiders : int;
  seed : int64;
}

let make ~key ~logical ~phys ~budget ?(transport = Acked) ?(ack_mode = Slotted)
    ?(crypto = Batched) ~rounds ?(rate = 1) ?(queue_cap = 8) ?(window = 32)
    ?(epoch_len = 16) ?(grace = 4) ?(payload = 16) ?(outsiders = 0) ?(seed = 1L) () =
  if logical < 1 then invalid_arg "Mux.make: need at least one logical channel";
  if phys < 2 then invalid_arg "Mux.make: need at least 2 physical channels";
  if budget < 0 || budget >= phys then invalid_arg "Mux.make: need 0 <= budget < phys";
  if rounds < 1 then invalid_arg "Mux.make: need at least one emulated round";
  if rate < 0 then invalid_arg "Mux.make: negative rate";
  if queue_cap < 1 then invalid_arg "Mux.make: queue_cap must be positive";
  if epoch_len < 1 then invalid_arg "Mux.make: epoch_len must be positive";
  if grace < 0 || grace > epoch_len then invalid_arg "Mux.make: need 0 <= grace <= epoch_len";
  if payload < 0 then invalid_arg "Mux.make: negative payload";
  if outsiders < 0 then invalid_arg "Mux.make: negative outsiders";
  (match transport with
  | Acked -> ()
  | Repeat { reps; group } ->
    if reps < 1 then invalid_arg "Mux.make: Repeat needs reps >= 1";
    if group < 2 then invalid_arg "Mux.make: Repeat needs group >= 2");
  (match ack_mode with
  | Slotted -> ()
  | Piggybacked ->
    if transport <> Acked then
      invalid_arg "Mux.make: Piggybacked acks need the Acked transport";
    if logical < 2 || logical land 1 <> 0 then
      invalid_arg "Mux.make: Piggybacked acks need an even number of logical channels");
  ignore (Window.create ~width:window);
  { key; logical; phys; budget; transport; ack_mode; crypto; rounds; rate; queue_cap;
    window; epoch_len; grace; payload; outsiders; seed }

let service_nodes spec =
  match (spec.transport, spec.ack_mode) with
  | Acked, Slotted -> 2 * spec.logical
  (* Duplex pairing: node c is both the sender of channel c and the
     receiver of channel [c lxor 1], so one node per channel suffices. *)
  | Acked, Piggybacked -> spec.logical
  | Repeat { group; _ }, _ -> spec.logical * group

let node_count spec = service_nodes spec + spec.outsiders

(* Data (and ack) slots per phase: with S = ceil(logical / phys), the at
   most [phys] channels sharing a slot occupy distinct physical channels.
   Piggybacked mode needs S >= 2 so a node's out-channel c and in-channel
   [c lxor 1] (consecutive ids) always land in different slots. *)
let slots spec =
  match (spec.transport, spec.ack_mode) with
  | Acked, Slotted -> (spec.logical + spec.phys - 1) / spec.phys
  | Acked, Piggybacked -> max ((spec.logical + spec.phys - 1) / spec.phys) 2
  | Repeat { reps; _ }, _ -> reps

let real_rounds_per_emulated spec =
  match (spec.transport, spec.ack_mode) with
  | Acked, Slotted -> (2 * slots spec) + 2
  (* No ack phase and no mid sync: S data slots + the end sync round.  The
     cumulative ack rides inside the next data frame of the opposite
     direction. *)
  | Acked, Piggybacked -> slots spec + 1
  | Repeat { reps; _ }, _ -> reps + 1

(* ------------------------------------------------------------------ *)
(* Run statistics.                                                     *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable offered : int;
  mutable delivered : int;
  mutable acked : int;
  mutable duplicates : int;
  mutable stale_epoch : int;
  mutable out_of_window : int;
  mutable bad_frames : int;
  mutable shed : int;
  mutable retransmissions : int;
  mutable rekeys : int;
  mutable messages_done : int;
  mutable full_deliveries : int;
  mutable forged_accepts : int;
  mutable plaintext_leaks : int;
  mutable snooped : int;
}

let create_stats () =
  { offered = 0; delivered = 0; acked = 0; duplicates = 0; stale_epoch = 0;
    out_of_window = 0; bad_frames = 0; shed = 0; retransmissions = 0; rekeys = 0;
    messages_done = 0; full_deliveries = 0; forged_accepts = 0;
    plaintext_leaks = 0; snooped = 0 }

type result = {
  spec : spec;
  stats : stats;
  engine : Radio.Engine.result;
  latency_hist : int array;
  emulated_rounds : int;
  real_rounds_per_emulated : int;
}

let lat_buckets = 512

let latency_percentile result p =
  let hist = result.latency_hist in
  let total = Array.fold_left ( + ) 0 hist in
  if total = 0 then 0
  else begin
    let target = 1 + int_of_float (p *. float_of_int (total - 1)) in
    let acc = ref 0 and ans = ref (Array.length hist - 1) and found = ref false in
    Array.iteri
      (fun d count ->
        if not !found then begin
          acc := !acc + count;
          if !acc >= target then begin
            ans := d;
            found := true
          end
        end)
      hist;
    !ans
  end

(* ------------------------------------------------------------------ *)
(* Central run state.                                                  *)
(* ------------------------------------------------------------------ *)

type state = {
  sp : spec;
  s : int;  (* slots per phase *)
  rpe : int;  (* real rounds per emulated round *)
  hop_prf : Prf.Keyed.t;
  ops : ops;
  st : stats;
  lat : int array;
  mutable prepared_data : int;  (* last round [prepare_data] ran for; -1 before start *)
  mutable prepared_acks : int;  (* last round [prepare_acks] ran for; -1 before start *)
  (* The round plan fibers execute, per logical channel. *)
  data_blob : string array;  (* "" = nothing to send *)
  ack_blob : string array;  (* "" = no ack pending *)
  data_chan : int array;
  ack_chan : int array;
  (* What fibers heard last emulated round (stored at resume time). *)
  heard_data : Radio.Frame.t option array;  (* Acked: receiver of channel c *)
  heard_ack : Radio.Frame.t option array;  (* Acked: sender of channel c *)
  heard_multi : string list array;  (* Repeat: per node, reverse arrival order *)
  (* Bounded per-channel send queues (flat ring buffers). *)
  q_seq : int array;
  q_enq : int array;
  q_head : int array;
  q_len : int array;
  next_seq : int array;
  (* Sender side, per channel. *)
  sent_once : bool array;  (* head already transmitted at least once *)
  seal_seq : int array;  (* cache identity of [data_blob]; -1 = empty *)
  seal_epoch : int array;
  (* Receiver side, per channel (Acked). *)
  windows : Window.t array;
  ack_pend_seq : int array;  (* latest delivered seq, re-acked each round; -1 none *)
  ack_built_seq : int array;  (* cache identity of [ack_blob]; -1 = empty *)
  ack_built_epoch : int array;
  (* Piggybacked-ack extras, per channel. *)
  inflight : int array;  (* queue entries transmitted at least once *)
  cum_delivered : int array;  (* receiver: contiguous delivered prefix; -1 none *)
  (* Repeat transport extras. *)
  r_sender : int array;  (* member index transmitting this round's head *)
  r_windows : Window.t array;  (* per node *)
  r_chans : int array;  (* logical * reps hop assignments for this round *)
}

let create_state spec =
  let m = spec.logical in
  let nodes = node_count spec in
  let group_prf = Prf.Keyed.create spec.key in
  let multi = match spec.transport with Acked -> 0 | Repeat _ -> nodes in
  let reps = match spec.transport with Acked -> 0 | Repeat { reps; _ } -> reps in
  { sp = spec;
    s = slots spec;
    rpe = real_rounds_per_emulated spec;
    hop_prf = Prf.Keyed.create (Sha256.digest ("mux-hop|" ^ spec.key));
    ops = ops_of_mode spec.crypto ~key:spec.key group_prf;
    st = create_stats ();
    lat = Array.make lat_buckets 0;
    prepared_data = -1;
    prepared_acks = -1;
    data_blob = Array.make m "";
    ack_blob = Array.make m "";
    data_chan = Array.make m 0;
    ack_chan = Array.make m 0;
    heard_data = Array.make m None;
    heard_ack = Array.make m None;
    heard_multi = Array.make (max 1 multi) [];
    q_seq = Array.make (m * spec.queue_cap) 0;
    q_enq = Array.make (m * spec.queue_cap) 0;
    q_head = Array.make m 0;
    q_len = Array.make m 0;
    next_seq = Array.make m 0;
    sent_once = Array.make m false;
    seal_seq = Array.make m (-1);
    seal_epoch = Array.make m 0;
    windows = Array.init m (fun _ -> Window.create ~width:spec.window);
    ack_pend_seq = Array.make m (-1);
    ack_built_seq = Array.make m (-1);
    ack_built_epoch = Array.make m (-1);
    inflight = Array.make m 0;
    cum_delivered = Array.make m (-1);
    r_sender = Array.make m 0;
    r_windows = Array.init (max 1 multi) (fun _ -> Window.create ~width:spec.window);
    r_chans = Array.make (max 1 (m * reps)) 0 }

let note_latency t d =
  let d = if d < 0 then 0 else if d >= lat_buckets then lat_buckets - 1 else d in
  t.lat.(d) <- t.lat.(d) + 1

(* Queue ring accessors. *)
let q_slot t c k = (c * t.sp.queue_cap) + ((t.q_head.(c) + k) mod t.sp.queue_cap)

let q_push t c ~enq =
  if t.q_len.(c) >= t.sp.queue_cap then false
  else begin
    let i = q_slot t c t.q_len.(c) in
    t.q_seq.(i) <- t.next_seq.(c);
    t.q_enq.(i) <- enq;
    t.next_seq.(c) <- t.next_seq.(c) + 1;
    t.q_len.(c) <- t.q_len.(c) + 1;
    true
  end

let q_pop t c =
  t.q_head.(c) <- (t.q_head.(c) + 1) mod t.sp.queue_cap;
  t.q_len.(c) <- t.q_len.(c) - 1;
  t.sent_once.(c) <- false;
  t.seal_seq.(c) <- -1;
  t.data_blob.(c) <- ""

let head_seq t c = t.q_seq.(q_slot t c 0)
let head_enq t c = t.q_enq.(q_slot t c 0)

(* Epoch-batched accumulation: collect items per distinct epoch (at most
   two epochs are ever decodable), then drain each group through a single
   [ops] call.  Items within a group keep collection order; groups drain
   in first-seen order — all deterministic. *)
let add_item items epoch v =
  match !items with
  | (e0, l0) :: rest when e0 = epoch -> items := (e0, v :: l0) :: rest
  | l -> (
    match List.assoc_opt epoch l with
    | Some prev ->
      items := (epoch, v :: prev) :: List.filter (fun (e, _) -> e <> epoch) l
    | None -> items := (epoch, [ v ]) :: l)

let drain_items items ~apply =
  List.iter
    (fun (epoch, rev_list) -> apply epoch (Array.of_list (List.rev rev_list)))
    (List.rev !items)

let verdict_at t ~now ~frame_epoch =
  epoch_verdict ~epoch_len:t.sp.epoch_len ~grace:t.sp.grace ~now ~frame_epoch

let nonce_of ~chan ~seq =
  Int64.logor (Int64.shift_left (Int64.of_int chan) 32) (Int64.of_int seq)

(* ------------------------------------------------------------------ *)
(* prepare: the once-per-emulated-round central step (Acked).          *)
(* ------------------------------------------------------------------ *)

(* One successfully opened data payload for channel [c], received in
   emulated round [arrival], already parsed into its fields.  Returns the
   seq to (re-)ack, if any. *)
let deliver_parsed t c ~arrival ~chan:c' ~seq ~enq ~body =
  if c' <> c then begin
    (* Valid MAC under the shared epoch key, but bound to another logical
       channel: a splice attempt, not a delivery. *)
    t.st.bad_frames <- t.st.bad_frames + 1;
    None
  end
  else begin
    match Window.check t.windows.(c) seq with
    | Window.Duplicate ->
      t.st.duplicates <- t.st.duplicates + 1;
      Some seq (* the previous ack was lost: re-ack *)
    | Window.Out_of_window ->
      t.st.out_of_window <- t.st.out_of_window + 1;
      None
    | Window.Fresh ->
      Window.note t.windows.(c) seq;
      t.st.delivered <- t.st.delivered + 1;
      note_latency t (arrival - enq);
      if not (String.equal body (gen_body ~payload:t.sp.payload ~chan:c ~seq)) then
        t.st.forged_accepts <- t.st.forged_accepts + 1;
      Some seq
  end

let deliver_payload t c ~arrival payload =
  match decode_payload payload with
  | None ->
    t.st.bad_frames <- t.st.bad_frames + 1;
    None
  | Some (c', seq, _epoch, enq, body) -> deliver_parsed t c ~arrival ~chan:c' ~seq ~enq ~body

let process_heard_data t ~arrival =
  let items = ref [] in
  for c = 0 to t.sp.logical - 1 do
    (match t.heard_data.(c) with
    | None -> ()
    | Some (Radio.Frame.Sealed blob) -> (
      match decode_data blob with
      | None -> t.st.bad_frames <- t.st.bad_frames + 1
      | Some (frame_epoch, sealed) -> (
        match verdict_at t ~now:arrival ~frame_epoch with
        | Stale -> t.st.stale_epoch <- t.st.stale_epoch + 1
        | Current | Previous -> add_item items frame_epoch (c, sealed)))
    | Some _ ->
      (* A decodable non-sealed frame on our slot: spoofed traffic. *)
      t.st.bad_frames <- t.st.bad_frames + 1);
    t.heard_data.(c) <- None
  done;
  drain_items items ~apply:(fun epoch batch ->
      let opened = t.ops.open_many ~epoch (Array.map snd batch) in
      Array.iteri
        (fun i (c, _) ->
          match opened.(i) with
          | None -> t.st.bad_frames <- t.st.bad_frames + 1
          | Some payload -> (
            match deliver_payload t c ~arrival payload with
            | Some seq -> t.ack_pend_seq.(c) <- seq
            | None -> ()))
        batch)

let process_heard_acks t ~arrival =
  let items = ref [] in
  for c = 0 to t.sp.logical - 1 do
    (match t.heard_ack.(c) with
    | None -> ()
    | Some (Radio.Frame.Sealed blob) -> (
      match decode_ack blob with
      | None -> t.st.bad_frames <- t.st.bad_frames + 1
      | Some (c', seq, epoch, tag) -> (
        match verdict_at t ~now:arrival ~frame_epoch:epoch with
        | Stale -> t.st.stale_epoch <- t.st.stale_epoch + 1
        | Current | Previous -> add_item items epoch (c, c', seq, tag)))
    | Some _ -> t.st.bad_frames <- t.st.bad_frames + 1);
    t.heard_ack.(c) <- None
  done;
  drain_items items ~apply:(fun epoch batch ->
      let msgs = Array.map (fun (_, c', seq, _) -> ack_msg ~chan:c' ~seq ~epoch) batch in
      let tags = Array.map (fun (_, _, _, tag) -> tag) batch in
      let ok = t.ops.verify_many ~epoch ~tags msgs in
      Array.iteri
        (fun i (c, c', seq, _) ->
          if not ok.(i) then t.st.bad_frames <- t.st.bad_frames + 1
          else if c' <> c then t.st.bad_frames <- t.st.bad_frames + 1
          else if t.q_len.(c) > 0 && head_seq t c = seq then begin
            q_pop t c;
            t.st.acked <- t.st.acked + 1
          end)
        batch)

let offer_load t ~e =
  for c = 0 to t.sp.logical - 1 do
    for _ = 1 to t.sp.rate do
      t.st.offered <- t.st.offered + 1;
      if not (q_push t c ~enq:e) then t.st.shed <- t.st.shed + 1
    done
  done

(* Build (or reuse) the sealed data frame for every busy channel.  A cached
   frame survives as long as its sealing epoch is still decodable at the
   receiver — which is exactly how the epoch grace window gets exercised:
   a retransmission sealed just before a boundary rides the grace period
   instead of being re-sealed the instant the epoch turns. *)
let build_data_frames t ~e =
  let cur = epoch_of ~epoch_len:t.sp.epoch_len ~now:e in
  let items = ref [] in
  for c = 0 to t.sp.logical - 1 do
    if t.q_len.(c) = 0 then begin
      t.seal_seq.(c) <- -1;
      t.data_blob.(c) <- ""
    end
    else begin
      let seq = head_seq t c in
      let reusable =
        t.seal_seq.(c) = seq
        && (match verdict_at t ~now:e ~frame_epoch:t.seal_epoch.(c) with
           | Current | Previous -> true
           | Stale -> false)
      in
      if not reusable then add_item items cur (c, seq);
      if t.sent_once.(c) then t.st.retransmissions <- t.st.retransmissions + 1;
      t.sent_once.(c) <- true
    end
  done;
  drain_items items ~apply:(fun epoch batch ->
      let nonces = Array.map (fun (c, seq) -> nonce_of ~chan:c ~seq) batch in
      let payloads =
        Array.map
          (fun (c, seq) ->
            encode_payload ~chan:c ~seq ~epoch ~enq:(head_enq t c)
              (gen_body ~payload:t.sp.payload ~chan:c ~seq))
          batch
      in
      let sealed = t.ops.seal_many ~epoch ~nonces payloads in
      Array.iteri
        (fun i (c, seq) ->
          t.seal_seq.(c) <- seq;
          t.seal_epoch.(c) <- epoch;
          t.data_blob.(c) <- encode_data ~epoch sealed.(i))
        batch)

(* Build (or reuse) the pending ack frame for every channel that has
   delivered at least once.  Acks are re-sent every emulated round (the
   slot is reserved anyway), which is what recovers from lost acks. *)
let build_ack_frames t ~e =
  let cur = epoch_of ~epoch_len:t.sp.epoch_len ~now:e in
  let items = ref [] in
  for c = 0 to t.sp.logical - 1 do
    let seq = t.ack_pend_seq.(c) in
    if seq < 0 then t.ack_blob.(c) <- ""
    else begin
      let reusable =
        t.ack_built_seq.(c) = seq
        && (match verdict_at t ~now:e ~frame_epoch:t.ack_built_epoch.(c) with
           | Current | Previous -> true
           | Stale -> false)
      in
      if not reusable then add_item items cur (c, seq)
    end
  done;
  drain_items items ~apply:(fun epoch batch ->
      let msgs = Array.map (fun (c, seq) -> ack_msg ~chan:c ~seq ~epoch) batch in
      let tags = t.ops.mac_many ~epoch msgs in
      Array.iteri
        (fun i (c, seq) ->
          t.ack_built_seq.(c) <- seq;
          t.ack_built_epoch.(c) <- epoch;
          t.ack_blob.(c) <- encode_ack ~chan:c ~seq ~epoch tags.(i))
        batch)

(* PRF-keyed slot rotation: every channel of slot s lands on a distinct
   physical channel, and the whole slot's placement is unpredictable.  The
   offset depends only on the slot, so the PRF is drawn once per (slot,
   phase) and fanned out — with thousands of channels over a few dozen
   slots, drawing it per channel made this loop as expensive as sealing
   the frames it was placing. *)
let assign_channels t ~e =
  let off_d =
    Array.init t.s (fun s ->
        Prf.Keyed.below t.hop_prf ~label:"mux-hop-data" ~counter:((e * t.s) + s) t.sp.phys)
  in
  let off_a =
    Array.init t.s (fun s ->
        Prf.Keyed.below t.hop_prf ~label:"mux-hop-ack" ~counter:((e * t.s) + s) t.sp.phys)
  in
  for c = 0 to t.sp.logical - 1 do
    let s = c mod t.s and p = c / t.s in
    t.data_chan.(c) <- (p + off_d.(s)) mod t.sp.phys;
    t.ack_chan.(c) <- (p + off_a.(s)) mod t.sp.phys
  done

(* ------------------------------------------------------------------ *)
(* prepare (Acked transport, piggybacked acks).                        *)
(* ------------------------------------------------------------------ *)

(* Frames a sender may have in the air before its first retire: the ack
   for round e's frame rides the opposite direction's round e+1 frame and
   is processed at the start of round e+2, so a window of two keeps the
   pipeline full at rate 1. *)
let pig_send_window = 2

(* Receiver side: extend the contiguous delivered prefix of channel [c]
   using the replay window's own delivery record. *)
let advance_cum t c =
  while Window.check t.windows.(c) (t.cum_delivered.(c) + 1) = Window.Duplicate do
    t.cum_delivered.(c) <- t.cum_delivered.(c) + 1
  done

(* Sender side of channel [c]: a cumulative ack retires every queued head
   up to [ack].  Only frames sent at least once can be acknowledged, so
   [inflight] shrinks in step with the queue. *)
let apply_cum_ack t c ~ack =
  while t.q_len.(c) > 0 && t.inflight.(c) > 0 && head_seq t c <= ack do
    q_pop t c;
    t.inflight.(c) <- t.inflight.(c) - 1;
    t.st.acked <- t.st.acked + 1
  done

(* One opened piggybacked payload heard on channel [c]: fold the carried
   ack into the opposite direction's queue, then (for data frames) run the
   regular delivery judgement and advance the cumulative prefix. *)
let deliver_pig_payload t c ~arrival payload =
  let len = String.length payload in
  if len < 16 then t.st.bad_frames <- t.st.bad_frames + 1
  else begin
    let word = read_u32 payload 0 in
    let ack = (word land lnot pig_ack_flag) - 1 in
    if word land pig_ack_flag <> 0 then begin
      (* Bare ack carrier: fixed size, bound to its own channel. *)
      if len <> 16 || read_u32 payload 4 <> c then
        t.st.bad_frames <- t.st.bad_frames + 1
      else apply_cum_ack t (c lxor 1) ~ack
    end
    else begin
      apply_cum_ack t (c lxor 1) ~ack;
      let chan = read_u32 payload 4 and seq = read_u32 payload 8 and enq = read_u32 payload 12 in
      let body = String.sub payload 16 (len - 16) in
      (match deliver_parsed t c ~arrival ~chan ~seq ~enq ~body with
      | Some _ | None -> ());
      advance_cum t c
    end
  end

let process_heard_pig t ~arrival =
  let items = ref [] in
  for c = 0 to t.sp.logical - 1 do
    (match t.heard_data.(c) with
    | None -> ()
    | Some (Radio.Frame.Sealed blob) -> (
      match decode_data blob with
      | None -> t.st.bad_frames <- t.st.bad_frames + 1
      | Some (frame_epoch, sealed) -> (
        match verdict_at t ~now:arrival ~frame_epoch with
        | Stale -> t.st.stale_epoch <- t.st.stale_epoch + 1
        | Current | Previous -> add_item items frame_epoch (c, sealed)))
    | Some _ -> t.st.bad_frames <- t.st.bad_frames + 1);
    t.heard_data.(c) <- None
  done;
  drain_items items ~apply:(fun epoch batch ->
      let opened = t.ops.open_many ~epoch (Array.map snd batch) in
      Array.iteri
        (fun i (c, _) ->
          match opened.(i) with
          | None -> t.st.bad_frames <- t.st.bad_frames + 1
          | Some payload -> deliver_pig_payload t c ~arrival payload)
        batch)

(* Build this round's frame per channel: the next unsent queue entry while
   the send window has room, the unacknowledged head otherwise, or a bare
   ack carrier when the queue is empty but the partner still has frames in
   flight.  Every frame folds in the current cumulative ack, so frames are
   re-sealed each round under a (channel, round)-keyed nonce. *)
let build_pig_frames t ~e =
  let cur = epoch_of ~epoch_len:t.sp.epoch_len ~now:e in
  let items = ref [] in
  for c = 0 to t.sp.logical - 1 do
    t.data_blob.(c) <- "";
    if t.q_len.(c) > 0 then begin
      let fresh = t.inflight.(c) < t.q_len.(c) && t.inflight.(c) < pig_send_window in
      let slot = q_slot t c (if fresh then t.inflight.(c) else 0) in
      if fresh then t.inflight.(c) <- t.inflight.(c) + 1
      else t.st.retransmissions <- t.st.retransmissions + 1;
      add_item items cur (c, Some (t.q_seq.(slot), t.q_enq.(slot)))
    end
    else if t.inflight.(c lxor 1) > 0 && t.cum_delivered.(c lxor 1) >= 0 then
      add_item items cur (c, None)
  done;
  drain_items items ~apply:(fun epoch batch ->
      let nonces =
        Array.map
          (fun (c, k) ->
            match k with
            | Some _ -> pig_nonce ~tag:61 ~chan:c ~round:e
            | None -> pig_nonce ~tag:62 ~chan:c ~round:e)
          batch
      in
      let payloads =
        Array.map
          (fun (c, k) ->
            let ack = t.cum_delivered.(c lxor 1) in
            match k with
            | Some (seq, enq) ->
              encode_pig_data ~ack ~chan:c ~seq ~enq
                (gen_body ~payload:t.sp.payload ~chan:c ~seq)
            | None -> encode_pig_ack ~ack ~chan:c ~epoch ~round:e)
          batch
      in
      let sealed = t.ops.seal_many ~epoch ~nonces payloads in
      Array.iteri
        (fun i (c, _) -> t.data_blob.(c) <- encode_data ~epoch sealed.(i))
        batch)

(* Same PRF stream and counters as the slotted data phase, so a given
   (channel, emulated round) lands on the same physical channel in both
   ack modes whenever the slot counts coincide.  One PRF draw per slot,
   as in {!assign_channels}. *)
let assign_pig_channels t ~e =
  let off =
    Array.init t.s (fun s ->
        Prf.Keyed.below t.hop_prf ~label:"mux-hop-data" ~counter:((e * t.s) + s) t.sp.phys)
  in
  for c = 0 to t.sp.logical - 1 do
    let s = c mod t.s and p = c / t.s in
    t.data_chan.(c) <- (p + off.(s)) mod t.sp.phys
  done

(* ------------------------------------------------------------------ *)
(* prepare (Repeat transport).                                         *)
(* ------------------------------------------------------------------ *)

let process_heard_multi t ~arrival ~group =
  (* Collect the distinct sealed blobs heard across all members, batch-open
     them once per epoch, then judge each member's arrival list against the
     opened table.  The table is lookup-only, so the Hashtbl introduces no
     iteration-order nondeterminism. *)
  let opened : (string, string option) Hashtbl.t = Hashtbl.create 64 in
  let items = ref [] in
  for node = 0 to (t.sp.logical * group) - 1 do
    List.iter
      (fun blob ->
        if not (Hashtbl.mem opened blob) then begin
          Hashtbl.add opened blob None;
          match decode_data blob with
          | None -> t.st.bad_frames <- t.st.bad_frames + 1
          | Some (frame_epoch, sealed) -> (
            match verdict_at t ~now:arrival ~frame_epoch with
            | Stale -> t.st.stale_epoch <- t.st.stale_epoch + 1
            | Current | Previous -> add_item items frame_epoch (blob, sealed))
        end)
      (List.rev t.heard_multi.(node))
  done;
  drain_items items ~apply:(fun epoch batch ->
      let res = t.ops.open_many ~epoch (Array.map snd batch) in
      Array.iteri
        (fun i (blob, _) ->
          match res.(i) with
          | None -> t.st.bad_frames <- t.st.bad_frames + 1
          | Some _ -> Hashtbl.replace opened blob res.(i))
        batch);
  (* Per-node delivery, then per-channel head accounting: the head was
     repeated [reps] times in round [arrival] and is now retired — either
     every receiver has it (a full delivery) or the adversary won the round
     for the missing ones. *)
  for c = 0 to t.sp.logical - 1 do
    if t.q_len.(c) > 0 && t.sent_once.(c) then begin
      let seq = head_seq t c in
      let hits = ref 0 in
      for m = 0 to group - 1 do
        let node = (c * group) + m in
        if m <> t.r_sender.(c) then begin
          let got = ref false in
          List.iter
            (fun blob ->
              if not !got then
                match Hashtbl.find_opt opened blob with
                | Some (Some payload) -> (
                  match decode_payload payload with
                  | Some (c', seq', _, enq', body) when c' = c -> (
                    got := true;
                    match Window.check t.r_windows.(node) seq' with
                    | Window.Duplicate -> t.st.duplicates <- t.st.duplicates + 1
                    | Window.Out_of_window ->
                      t.st.out_of_window <- t.st.out_of_window + 1
                    | Window.Fresh ->
                      Window.note t.r_windows.(node) seq';
                      t.st.delivered <- t.st.delivered + 1;
                      note_latency t (arrival - enq');
                      if
                        not
                          (String.equal body
                             (gen_body ~payload:t.sp.payload ~chan:c ~seq:seq'))
                      then t.st.forged_accepts <- t.st.forged_accepts + 1)
                  | Some _ | None -> ())
                | Some None | None -> ())
            (List.rev t.heard_multi.(node));
          if !got then
            match Window.check t.r_windows.(node) seq with
            | Window.Duplicate -> incr hits (* the head is in this node's window *)
            | Window.Fresh | Window.Out_of_window -> ()
        end
      done;
      if !hits = group - 1 then t.st.full_deliveries <- t.st.full_deliveries + 1;
      t.st.messages_done <- t.st.messages_done + 1;
      q_pop t c
    end
  done;
  for node = 0 to (t.sp.logical * group) - 1 do
    t.heard_multi.(node) <- []
  done

let build_repeat_frames t ~e ~reps ~group =
  let cur = epoch_of ~epoch_len:t.sp.epoch_len ~now:e in
  let items = ref [] in
  for c = 0 to t.sp.logical - 1 do
    if t.q_len.(c) = 0 then begin
      t.seal_seq.(c) <- -1;
      t.data_blob.(c) <- "";
      t.sent_once.(c) <- false
    end
    else begin
      let seq = head_seq t c in
      add_item items cur (c, seq);
      t.r_sender.(c) <- seq mod group;
      t.sent_once.(c) <- true
    end
  done;
  drain_items items ~apply:(fun epoch batch ->
      let nonces = Array.map (fun (c, seq) -> nonce_of ~chan:c ~seq) batch in
      let payloads =
        Array.map
          (fun (c, seq) ->
            encode_payload ~chan:c ~seq ~epoch ~enq:(head_enq t c)
              (gen_body ~payload:t.sp.payload ~chan:c ~seq))
          batch
      in
      let sealed = t.ops.seal_many ~epoch ~nonces payloads in
      Array.iteri
        (fun i (c, seq) ->
          t.seal_seq.(c) <- seq;
          t.seal_epoch.(c) <- epoch;
          t.data_blob.(c) <- encode_data ~epoch sealed.(i))
        batch);
  for c = 0 to t.sp.logical - 1 do
    for j = 0 to reps - 1 do
      t.r_chans.((c * reps) + j) <-
        Prf.Keyed.below t.hop_prf ~label:"mux-hop-r"
          ~counter:((((e * reps) + j) * t.sp.logical) + c)
          t.sp.phys
    done
  done

(* ------------------------------------------------------------------ *)
(* The emulated-round driver.                                          *)
(* ------------------------------------------------------------------ *)

(* Round start: retire heads acknowledged last round, take offered load,
   seal this round's data frames, place the slots.  (Repeat transport does
   everything here — it has no ack phase.) *)
let prepare_data t ~e =
  if e > 0 && e mod t.sp.epoch_len = 0 then t.st.rekeys <- t.st.rekeys + 1;
  (match (t.sp.transport, t.sp.ack_mode) with
  | Acked, Slotted ->
    if e > 0 then process_heard_acks t ~arrival:(e - 1);
    offer_load t ~e;
    build_data_frames t ~e;
    assign_channels t ~e
  | Acked, Piggybacked ->
    if e > 0 then process_heard_pig t ~arrival:(e - 1);
    (* Round [rounds] is the flush round: acks and retransmissions still
       flow so the final deliveries get retired, but no new load enters. *)
    if e < t.sp.rounds then offer_load t ~e;
    build_pig_frames t ~e;
    assign_pig_channels t ~e
  | Repeat { reps; group }, _ ->
    if e > 0 then process_heard_multi t ~arrival:(e - 1) ~group;
    offer_load t ~e;
    build_repeat_frames t ~e ~reps ~group);
  t.prepared_data <- e

(* After the mid sync: every data listen of this round has stored its
   result, so deliveries can be judged and this round's acks MACed now —
   the ack a sender hears acknowledges the frame it sent this round. *)
let prepare_acks t ~e =
  process_heard_data t ~arrival:e;
  build_ack_frames t ~e;
  t.prepared_acks <- e

(* Fibers resume in node-id order, so the first service fiber woken at each
   phase boundary runs the central step before any fiber reads the plan. *)
let ensure_prepared_data t ~e = if t.prepared_data < e then prepare_data t ~e
let ensure_prepared_acks t ~e = if t.prepared_acks < e then prepare_acks t ~e

(* Drain what the final round's ack phase delivered (fibers have exited; no
   frames left to build).  Data heard in the final round was already
   processed by its own [prepare_acks]; Repeat processes everything here. *)
let finalize t =
  match (t.sp.transport, t.sp.ack_mode) with
  | Acked, Slotted -> process_heard_acks t ~arrival:(t.sp.rounds - 1)
  | Acked, Piggybacked -> process_heard_pig t ~arrival:t.sp.rounds
  | Repeat { group; _ }, _ -> process_heard_multi t ~arrival:(t.sp.rounds - 1) ~group

let acked_service_body t (ctx : Radio.Engine.ctx) =
  let c = ctx.Radio.Engine.id / 2 in
  let is_sender = ctx.Radio.Engine.id land 1 = 0 in
  let s = c mod t.s in
  for e = 0 to t.sp.rounds - 1 do
    (* Data phase. *)
    ensure_prepared_data t ~e;
    Radio.Engine.idle_for s;
    if is_sender then
      if String.length t.data_blob.(c) > 0 then
        Radio.Engine.transmit ~chan:t.data_chan.(c) (Radio.Frame.Sealed t.data_blob.(c))
      else Radio.Engine.idle ()
    else t.heard_data.(c) <- Radio.Engine.listen ~chan:t.data_chan.(c);
    Radio.Engine.idle_for (t.s - 1 - s);
    Radio.Engine.idle ();
    (* Ack phase. *)
    ensure_prepared_acks t ~e;
    Radio.Engine.idle_for s;
    if is_sender then t.heard_ack.(c) <- Radio.Engine.listen ~chan:t.ack_chan.(c)
    else if String.length t.ack_blob.(c) > 0 then
      Radio.Engine.transmit ~chan:t.ack_chan.(c) (Radio.Frame.Sealed t.ack_blob.(c))
    else Radio.Engine.idle ();
    Radio.Engine.idle_for (t.s - 1 - s);
    Radio.Engine.idle ()
  done

(* Piggybacked service body: node [c] sends on channel c and listens on
   channel [c lxor 1]; consecutive channel ids occupy different slots
   (S >= 2), so one node covers both duties within the S data slots of the
   round.  One extra flush round (e = rounds) lets the final acks land. *)
let pig_service_body t (ctx : Radio.Engine.ctx) =
  let out_c = ctx.Radio.Engine.id in
  let in_c = out_c lxor 1 in
  let so = out_c mod t.s and si = in_c mod t.s in
  let lo = min so si and hi = max so si in
  let act slot =
    if slot = so then begin
      if String.length t.data_blob.(out_c) > 0 then
        Radio.Engine.transmit ~chan:t.data_chan.(out_c)
          (Radio.Frame.Sealed t.data_blob.(out_c))
      else Radio.Engine.idle ()
    end
    else t.heard_data.(in_c) <- Radio.Engine.listen ~chan:t.data_chan.(in_c)
  in
  for e = 0 to t.sp.rounds do
    ensure_prepared_data t ~e;
    Radio.Engine.idle_for lo;
    act lo;
    Radio.Engine.idle_for (hi - lo - 1);
    act hi;
    Radio.Engine.idle_for (t.s - 1 - hi);
    Radio.Engine.idle ()
  done

let repeat_service_body t ~reps ~group (ctx : Radio.Engine.ctx) =
  let node = ctx.Radio.Engine.id in
  let c = node / group in
  let m = node mod group in
  for e = 0 to t.sp.rounds - 1 do
    ensure_prepared_data t ~e;
    let sending = t.sent_once.(c) && m = t.r_sender.(c) in
    for j = 0 to reps - 1 do
      let chan = t.r_chans.((c * reps) + j) in
      if sending then
        Radio.Engine.transmit ~chan (Radio.Frame.Sealed t.data_blob.(c))
      else begin
        match Radio.Engine.listen ~chan with
        | Some (Radio.Frame.Sealed blob) ->
          t.heard_multi.(node) <- blob :: t.heard_multi.(node)
        | Some _ -> t.st.bad_frames <- t.st.bad_frames + 1
        | None -> ()
      end
    done;
    Radio.Engine.idle ()
  done

(* Outsiders hold no key.  They snoop (and provably decode nothing) and
   periodically inject well-formed frames sealed under their own key —
   frames that pass every syntactic check and die on the MAC. *)
let outsider_body t (ctx : Radio.Engine.ctx) =
  let wrong = Cipher.key (Printf.sprintf "outsider-%d" ctx.Radio.Engine.id) in
  let scr = Cipher.scratch () in
  for e = 0 to t.sp.rounds - 1 do
    let epoch = epoch_of ~epoch_len:t.sp.epoch_len ~now:e in
    for r = 0 to t.rpe - 1 do
      if Prng.Rng.int ctx.Radio.Engine.rng 8 = 0 then begin
        let nonce = Int64.of_int (((e * t.rpe) + r) lxor ctx.Radio.Engine.id) in
        let payload =
          encode_payload
            ~chan:(Prng.Rng.int ctx.Radio.Engine.rng t.sp.logical)
            ~seq:e ~epoch ~enq:e
            (gen_body ~payload:t.sp.payload ~chan:0 ~seq:e)
        in
        let blob = encode_data ~epoch (Cipher.seal_scratch wrong scr ~nonce payload) in
        Radio.Engine.transmit
          ~chan:(Prng.Rng.int ctx.Radio.Engine.rng t.sp.phys)
          (Radio.Frame.Sealed blob)
      end
      else begin
        match Radio.Engine.listen ~chan:(Prng.Rng.int ctx.Radio.Engine.rng t.sp.phys) with
        | Some (Radio.Frame.Sealed blob) -> (
          t.st.snooped <- t.st.snooped + 1;
          match decode_data blob with
          | None -> ()
          | Some (_, sealed) -> (
            match Cipher.open_scratch wrong scr sealed with
            | Some _ -> t.st.plaintext_leaks <- t.st.plaintext_leaks + 1
            | None -> ()))
        | Some _ | None -> ()
      end
    done
  done

let run ?pool spec ~adversary =
  let t = create_state spec in
  let n = node_count spec in
  (* Piggybacked mode runs one extra (flush) emulated round. *)
  let emulated = spec.rounds + (match spec.ack_mode with Slotted -> 0 | Piggybacked -> 1) in
  let cfg =
    Radio.Config.make ~seed:spec.seed
      ~max_rounds:((emulated * t.rpe) + 4)
      ~track_channels:true ~n ~channels:spec.phys ~t:spec.budget ()
  in
  let service = service_nodes spec in
  let body (ctx : Radio.Engine.ctx) =
    if ctx.Radio.Engine.id >= service then outsider_body t ctx
    else
      match (spec.transport, spec.ack_mode) with
      | Acked, Slotted -> acked_service_body t ctx
      | Acked, Piggybacked -> pig_service_body t ctx
      | Repeat { reps; group }, _ -> repeat_service_body t ~reps ~group ctx
  in
  let engine = Radio.Engine.run_nodes ?pool cfg ~adversary body in
  finalize t;
  { spec; stats = t.st; engine; latency_hist = t.lat; emulated_rounds = spec.rounds;
    real_rounds_per_emulated = t.rpe }

(* ------------------------------------------------------------------ *)
(* Canonical rendering (crypto-mode- and pool-independent).            *)
(* ------------------------------------------------------------------ *)

let transport_name = function
  | Acked -> "acked"
  | Repeat { reps; group } -> Printf.sprintf "repeat(reps=%d,group=%d)" reps group

let ack_mode_name = function Slotted -> "slotted" | Piggybacked -> "piggybacked"

(* Everything here must be byte-identical across crypto modes and pool
   sizes — it is the text the bench's determinism rows hash.  The crypto
   mode itself is deliberately excluded. *)
let render_stats r =
  let b = Buffer.create 1024 in
  let s = r.stats in
  Printf.bprintf b "mux/v1 transport=%s ack=%s logical=%d phys=%d budget=%d rounds=%d\n"
    (transport_name r.spec.transport)
    (ack_mode_name r.spec.ack_mode)
    r.spec.logical r.spec.phys r.spec.budget r.spec.rounds;
  Printf.bprintf b
    "cfg rate=%d queue_cap=%d window=%d epoch_len=%d grace=%d payload=%d outsiders=%d seed=%Ld\n"
    r.spec.rate r.spec.queue_cap r.spec.window r.spec.epoch_len r.spec.grace
    r.spec.payload r.spec.outsiders r.spec.seed;
  Printf.bprintf b
    "load offered=%d delivered=%d acked=%d shed=%d retransmissions=%d duplicates=%d\n"
    s.offered s.delivered s.acked s.shed s.retransmissions s.duplicates;
  Printf.bprintf b
    "guard stale_epoch=%d out_of_window=%d bad_frames=%d forged_accepts=%d leaks=%d snooped=%d rekeys=%d\n"
    s.stale_epoch s.out_of_window s.bad_frames s.forged_accepts s.plaintext_leaks
    s.snooped s.rekeys;
  Printf.bprintf b "repeat messages_done=%d full_deliveries=%d\n" s.messages_done
    s.full_deliveries;
  Printf.bprintf b "latency p50=%d p99=%d samples=%d\n" (latency_percentile r 0.50)
    (latency_percentile r 0.99)
    (Array.fold_left ( + ) 0 r.latency_hist);
  Printf.bprintf b "rounds emulated=%d real_per_emulated=%d used=%d completed=%b\n"
    r.emulated_rounds r.real_rounds_per_emulated r.engine.Radio.Engine.rounds_used
    r.engine.Radio.Engine.completed;
  Printf.bprintf b "engine %s\n"
    (Format.asprintf "%a" Radio.Transcript.Stats.pp r.engine.Radio.Engine.stats);
  (match r.engine.Radio.Engine.channel_usage with
  | None -> Buffer.add_string b "usage none\n"
  | Some u ->
    let d = u.Radio.Transcript.Channel_usage.deliveries in
    let mn = Array.fold_left min max_int d and mx = Array.fold_left max 0 d in
    let total = Array.fold_left ( + ) 0 d in
    let coll = Array.fold_left ( + ) 0 u.Radio.Transcript.Channel_usage.collisions in
    let jam = Array.fold_left ( + ) 0 u.Radio.Transcript.Channel_usage.jammed in
    Printf.bprintf b "usage phys=%d deliveries=%d min=%d max=%d collisions=%d jammed=%d\n"
      (Array.length d) total mn mx coll jam);
  Buffer.contents b

let output_digest r = Sha256.digest_hex (render_stats r)
