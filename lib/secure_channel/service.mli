(** The long-lived secure communication service (Section 7).

    Once a group key K exists, the nodes emulate a single reliable broadcast
    channel: the channel-hopping pattern is PRF(K, round), so the adversary
    — who does not know K — cannot predict where the nodes meet.  One
    emulated round costs Theta(t log n) real rounds: the broadcaster repeats
    its encrypted, MACed frame on the hopping channel while everyone else
    listens there.  Guarantees (each measured by E9): t-reliability (only
    the at most t nodes without K are excluded), secrecy (all honest
    payloads travel encrypted), and authentication (a frame is attributed to
    v only if v sent it — the adversary cannot forge MACs under K).

    The emulation inherits real broadcast-channel semantics: if two key
    holders broadcast in the same emulated round their frames collide and
    may both be lost. *)

type spec = {
  key : string;
  channels : int;
  budget : int;
  reps : int;  (** real rounds per emulated round *)
  hop_prf : Crypto.Prf.Keyed.t;
      (** prepared hop PRF for [key] — built once in {!make_spec}, queried
          every round *)
  cipher : Crypto.Cipher.key;  (** prepared seal/open key for [key] *)
  scratch : Crypto.Cipher.scratch;
      (** shared seal/open working buffers — safe because node fibers run
          strictly sequentially within the engine's domain *)
}

val make_spec : ?beta:float -> key:string -> cfg:Radio.Config.t -> unit -> spec
(** [reps = ceil(beta * (t+1) * log2 n)] — the Theta(t log n) knob; with
    C >= 2t the hop channel avoids the jammer with probability >= 1/2 and
    beta can shrink accordingly (same formula, smaller constant). *)

val hop : spec -> round:int -> int
(** The meeting channel for absolute engine round [round]. *)

(** {1 Node-side operations} — each consumes exactly [spec.reps] engine
    rounds, so all participants stay in lockstep. *)

val broadcast : spec -> sender:int -> seq:int -> string -> unit
(** Transmit [msg] in this emulated round (requires holding the key). *)

val recv : spec -> Prng.Rng.t -> (int * int * string) option
(** Listen through this emulated round; [Some (sender, seq, msg)] on the
    first authentic frame.  Spoofed or corrupted frames fail MAC
    verification and are ignored.  Pass the node's rng (used only by key
    outsiders; key holders follow the hop deterministically). *)

val idle : spec -> unit
(** Sit out this emulated round (still consumes [spec.reps] rounds). *)

(** {1 Workload runner} *)

type delivery = {
  emulated_round : int;
  sender : int;
  message : string;
  received_by : int list;  (** sorted; excludes the sender *)
}

type outcome = {
  engine : Radio.Engine.result;
  deliveries : delivery list;
  emulated_rounds : int;
  real_rounds_per_emulated : int;
  plaintext_leaks : int;
      (** honest transmissions whose frame exposed a payload unencrypted:
          must be 0 (secrecy) *)
  forged_accepts : int;
      (** receptions attributed to a sender that never sent them: must be 0
          (authentication) *)
}

val run_workload :
  cfg:Radio.Config.t ->
  key_holders:int list ->
  spec:spec ->
  sends:(int * int * string) list ->
  adversary:Radio.Adversary.t ->
  unit ->
  outcome
(** [sends] lists (emulated_round, sender, message); rounds not mentioned
    are listen-only.  [key_holders] are the nodes possessing K (typically
    all but t).  Requires senders to hold the key. *)
