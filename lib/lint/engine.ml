(* The AST walker.  Sources are parsed with compiler-libs ([Parse] on a
   [Lexing] buffer — the real OCaml grammar, not regexes), then scanned by
   two passes:

   - an [Ast_iterator] over every expression, for identifier-keyed rules
     (nondeterminism escapes, partial functions, printing) and bare
     [assert false];
   - a shallow structure walk for module-level mutable state, which must
     distinguish a top-level [let t = Hashtbl.create 16] from the same
     expression inside a function body.

   Escape hatches are comments of the form [(* radio-lint: allow <rule> *)]
   on the offending line or the line above; they are matched textually
   because comments are not part of the parsetree.

   Known limitation: identifier rules see syntactic paths, so an aliased
   module ([module H = Hashtbl]) or a functor-made table escapes them.
   The repo avoids such aliases; the lint run keeps it that way de facto. *)

type violation = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

type report = {
  active : violation list;
  suppressed : (violation * string) list;
  errors : (string * string) list;
  files : string list;
}

let ok r = r.active = [] && r.errors = []

let pp_violation fmt v =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" v.file v.line v.col v.rule v.message

(* --- identifier classification ------------------------------------- *)

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply (l, _) -> flatten_lid l

let strip_stdlib = function "Stdlib" :: rest -> rest | p -> p

let is_unsafe_accessor f =
  String.length f > 7 && String.sub f 0 7 = "unsafe_"

let order_sensitive = function
  | "iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values" | "filter_map_inplace" ->
    true
  | _ -> false

let bare_print = function
  | "print_endline" | "print_string" | "print_newline" | "print_char" | "print_int"
  | "print_float" | "print_bytes" | "prerr_endline" | "prerr_string" | "prerr_newline" ->
    true
  | _ -> false

let ident_rule path =
  match strip_stdlib path with
  | "Random" :: _ -> Some "nondet-random"
  | [ "Sys"; "time" ] -> Some "nondet-time"
  | ("Unix" | "UnixLabels") :: _ -> Some "nondet-unix"
  | [ "Hashtbl"; f ] | [ "MoreLabels"; "Hashtbl"; f ] when order_sensitive f ->
    Some "nondet-hashtbl-order"
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param") ] -> Some "nondet-poly-hash"
  | [ "Atomic";
      ( "make" | "set" | "exchange" | "compare_and_set" | "fetch_and_add" | "incr"
      | "decr" ) ] ->
    Some "nondet-atomic"
  | [ "Domain"; ("spawn" | "join") ]
  | [ ("Mutex" | "Condition" | "Semaphore"); "create" ]
  | [ "Semaphore"; ("Counting" | "Binary"); "make" ] ->
    Some "nondet-domain"
  | [ "compare" ] -> Some "nondet-poly-compare"
  | [ ("List" | "ListLabels"); ("hd" | "nth") ] -> Some "partial-list"
  | [ "Option"; "get" ] -> Some "partial-option-get"
  | [ ("Array" | "ArrayLabels" | "Bytes" | "BytesLabels"); f ] when is_unsafe_accessor f ->
    Some "partial-array-unsafe"
  | [ f ] when bare_print f -> Some "io-print"
  | [ ("Printf" | "Format"); ("printf" | "eprintf") ] -> Some "io-print"
  | [ "Format"; ("std_formatter" | "err_formatter" | "print_string" | "print_newline"
                | "print_flush") ] ->
    Some "io-print"
  | _ -> None

let summary_of rule =
  match Rules.find rule with
  | Some r -> r.Rules.summary
  | None -> "unknown rule"

(* --- AST passes ----------------------------------------------------- *)

let violation ~file ~loc ~rule ~what =
  let p = loc.Location.loc_start in
  { file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    message = Printf.sprintf "%s: %s" what (summary_of rule) }

let expression_pass ~file structure =
  let acc = ref [] in
  let report ~loc ~rule ~what = acc := violation ~file ~loc ~rule ~what :: !acc in
  let default = Ast_iterator.default_iterator in
  let expr self (e : Parsetree.expression) =
    (match e.pexp_desc with
     | Parsetree.Pexp_ident { txt; loc } -> (
       let path = flatten_lid txt in
       match ident_rule path with
       | Some rule -> report ~loc ~rule ~what:(String.concat "." path)
       | None -> ())
     | Parsetree.Pexp_assert
         { pexp_desc = Parsetree.Pexp_construct ({ txt = Longident.Lident "false"; _ }, None);
           _ } ->
       report ~loc:e.pexp_loc ~rule:"partial-assert-false" ~what:"assert false"
     | _ -> ());
    default.expr self e
  in
  let iterator = { default with expr } in
  iterator.structure iterator structure;
  List.rev !acc

let rec creates_mutable (e : Parsetree.expression) =
  match e.pexp_desc with
  | Parsetree.Pexp_constraint (e, _) -> creates_mutable e
  | Parsetree.Pexp_apply ({ pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ }, _) -> (
    match strip_stdlib (flatten_lid txt) with
    | [ "ref" ] | [ "Hashtbl"; "create" ] | [ "Buffer"; "create" ] -> true
    | _ -> false)
  | _ -> false

let global_state_pass ~file structure =
  let acc = ref [] in
  let rec check_structure items = List.iter check_item items
  and check_item (item : Parsetree.structure_item) =
    match item.pstr_desc with
    | Parsetree.Pstr_value (_, vbs) ->
      List.iter
        (fun (vb : Parsetree.value_binding) ->
          if creates_mutable vb.pvb_expr then
            acc :=
              violation ~file ~loc:vb.pvb_loc ~rule:"global-mutable"
                ~what:"module-level binding"
              :: !acc)
        vbs
    | Parsetree.Pstr_module mb -> check_module_expr mb.pmb_expr
    | Parsetree.Pstr_recmodule mbs ->
      List.iter (fun (mb : Parsetree.module_binding) -> check_module_expr mb.pmb_expr) mbs
    | Parsetree.Pstr_include incl -> check_module_expr incl.pincl_mod
    | _ -> ()
  and check_module_expr (me : Parsetree.module_expr) =
    match me.pmod_desc with
    | Parsetree.Pmod_structure st -> check_structure st
    | Parsetree.Pmod_constraint (me, _) -> check_module_expr me
    (* Functor bodies allocate per application, not per program: skip. *)
    | _ -> ()
  in
  check_structure structure;
  List.rev !acc

(* --- escape comments ------------------------------------------------ *)

let escape_marker = "radio-lint: allow"

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

(* Rule ids granted on a source line: every [a-z0-9-] token after the
   marker that names a known rule.  Free-form justification text around
   the ids is ignored. *)
let escapes_on_line line =
  match find_sub line escape_marker with
  | None -> []
  | Some i ->
    let rest = String.sub line (i + String.length escape_marker)
                 (String.length line - i - String.length escape_marker) in
    let tokens = ref [] in
    let buf = Buffer.create 16 in
    let flush () =
      if Buffer.length buf > 0 then begin
        let t = Buffer.contents buf in
        if List.mem t Rules.ids then tokens := t :: !tokens;
        Buffer.clear buf
      end
    in
    String.iter
      (fun c ->
        match c with
        | 'a' .. 'z' | '0' .. '9' | '-' -> Buffer.add_char buf c
        | _ -> flush ())
      rest;
    flush ();
    List.rev !tokens

let escape_map source =
  String.split_on_char '\n' source
  |> List.mapi (fun i line -> (i + 1, escapes_on_line line))
  |> List.filter (fun (_, rules) -> rules <> [])

let escaped escapes ~line ~rule =
  let granted l =
    match List.assoc_opt l escapes with
    | Some rules -> List.mem rule rules
    | None -> false
  in
  granted line || granted (line - 1)

(* --- file collection ------------------------------------------------ *)

let hidden name = name = "" || name.[0] = '.' || name.[0] = '_'

let normalize path =
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let collect_files roots =
  let rec walk path acc =
    if Sys.is_directory path then
      Array.to_list (Sys.readdir path)
      |> List.sort String.compare
      |> List.fold_left
           (fun acc name ->
             if hidden name then acc else walk (Filename.concat path name) acc)
           acc
    else if Filename.check_suffix path ".ml" then path :: acc
    else acc
  in
  List.fold_left (fun acc root -> walk (normalize root) acc) [] roots
  |> List.sort_uniq String.compare

(* --- driver --------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_implementation ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  Parse.implementation lexbuf

let raw_file_violations ~file source =
  let structure = parse_implementation ~path:file source in
  expression_pass ~file structure @ global_state_pass ~file structure

let interface_pass ~config files =
  let cfg = Config.rule_cfg config "iface-missing-mli" in
  if not cfg.Config.enabled then []
  else
    List.filter_map
      (fun file ->
        let in_scope = cfg.Config.scope = [] || Config.path_in cfg.Config.scope file in
        if in_scope && not (Sys.file_exists (file ^ "i")) then
          Some
            { file;
              line = 1;
              col = 0;
              rule = "iface-missing-mli";
              message =
                Printf.sprintf "%s has no %si: %s" (Filename.basename file)
                  (Filename.basename file)
                  (summary_of "iface-missing-mli") }
        else None)
      files

type verdict =
  | Active
  | Suppressed of string
  | Dropped

let classify ~config ~escapes v =
  let cfg = Config.rule_cfg config v.rule in
  if not cfg.Config.enabled then Dropped
  else if cfg.Config.scope <> [] && not (Config.path_in cfg.Config.scope v.file) then Dropped
  else if Config.path_in cfg.Config.allow v.file then Suppressed "allowlist"
  else if escaped escapes ~line:v.line ~rule:v.rule then Suppressed "escape-comment"
  else Active

let compare_violation a b =
  compare (a.file, a.line, a.col, a.rule) (b.file, b.line, b.col, b.rule)

let run ~config roots =
  let files = collect_files roots in
  let active = ref [] and suppressed = ref [] and errors = ref [] in
  let consider ~escapes v =
    match classify ~config ~escapes v with
    | Active -> active := v :: !active
    | Suppressed reason -> suppressed := (v, reason) :: !suppressed
    | Dropped -> ()
  in
  List.iter
    (fun file ->
      match read_file file with
      | exception Sys_error msg -> errors := (file, msg) :: !errors
      | source -> (
        let escapes = escape_map source in
        match raw_file_violations ~file source with
        | raw -> List.iter (consider ~escapes) raw
        | exception exn ->
          let msg =
            match Location.error_of_exn exn with
            | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
            | Some `Already_displayed | None -> Printexc.to_string exn
          in
          errors := (file, "parse error: " ^ String.trim msg) :: !errors))
    files;
  List.iter (consider ~escapes:[]) (interface_pass ~config files);
  { active = List.sort compare_violation !active;
    suppressed =
      List.sort (fun (a, _) (b, _) -> compare_violation a b) !suppressed;
    errors = List.sort compare !errors;
    files }
