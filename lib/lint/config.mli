(** `lint.toml` configuration: which files each rule applies to and where
    hits are pre-approved.  Hand-rolled parser for the TOML subset the
    linter needs ([section] headers, string / bool / string-array values,
    [#] comments); no external dependency. *)

type rule_cfg = {
  enabled : bool;  (** rule runs at all (default [true]) *)
  allow : string list;
      (** path prefixes where hits are reported as suppressed, e.g. the
          PRNG implementation for [nondet-random] *)
  scope : string list;
      (** path prefixes the rule applies to; [[]] means every linted file *)
}

val default_rule : rule_cfg

type t = {
  roots : string list;  (** directories walked when the CLI gets no roots *)
  rules : (string * rule_cfg) list;
}

val default : t

val rule_cfg : t -> string -> rule_cfg
(** Configured entry for a rule id, or {!default_rule}. *)

val prefix_matches : string -> string -> bool
(** [prefix_matches path prefix]: [prefix] names [path] itself or one of
    its ancestor directories ("lib/prng" matches "lib/prng/rng.ml" but not
    "lib/prng_x/evil.ml"). *)

val path_in : string list -> string -> bool

val parse_string : ?known:string list -> string -> (t, string) result
(** Parse configuration text.  [known] is the set of accepted rule ids
    (defaults to {!Rules.config_ids}, which includes the [radio_race]
    rule ids sharing this file); an unknown id is a parse error so typos
    cannot silently disable a rule. *)

val load : ?known:string list -> string -> (t, string) result
