(* The rule catalogue.  Detection logic lives in [Engine]; this module is
   the single source of truth for ids, families, and human summaries, so
   the config parser, the JSON report, and the README table cannot drift
   apart on what rules exist. *)

type family =
  | Nondet
  | Partiality
  | Global_state
  | Io
  | Interface

type t = {
  id : string;
  family : family;
  summary : string;
}

let family_name = function
  | Nondet -> "nondeterminism"
  | Partiality -> "partiality"
  | Global_state -> "global-state"
  | Io -> "side-channel-io"
  | Interface -> "public-surface"

let all =
  [ { id = "nondet-random";
      family = Nondet;
      summary = "Stdlib.Random bypasses the seeded PRNG; thread a Prng.Rng instead" };
    { id = "nondet-time";
      family = Nondet;
      summary = "Sys.time reads the wall clock; simulated logic must count rounds" };
    { id = "nondet-unix";
      family = Nondet;
      summary = "Unix.* reads OS state; only the observability clock may touch it" };
    { id = "nondet-hashtbl-order";
      family = Nondet;
      summary = "Hashtbl iteration order is unspecified; use Det.bindings/fold/iter" };
    { id = "nondet-poly-hash";
      family = Nondet;
      summary = "polymorphic Hashtbl.hash is not a stable fingerprint; serialize instead" };
    { id = "nondet-domain";
      family = Nondet;
      summary =
        "raw Domain/Mutex/Condition primitives schedule nondeterministically; go through \
         Parallel (lib/parallel owns the domain budget and the ordered merge)" };
    { id = "nondet-atomic";
      family = Nondet;
      summary =
        "Atomic cells outside the parallel runtime invite cross-domain coordination that \
         the deterministic merge cannot see; only lib/parallel and lib/cache may own them" };
    { id = "nondet-poly-compare";
      family = Nondet;
      summary =
        "polymorphic compare walks runtime representations (slow, and a trap on functional \
         or abstract values); use Int.compare/String.compare or a typed comparator" };
    { id = "partial-list";
      family = Partiality;
      summary = "List.hd/List.nth can raise; match or use nth_opt with a total fallback" };
    { id = "partial-option-get";
      family = Partiality;
      summary = "Option.get can raise; match on the option" };
    { id = "partial-array-unsafe";
      family = Partiality;
      summary = "Array.unsafe_* skips bounds checks in protocol code" };
    { id = "partial-assert-false";
      family = Partiality;
      summary = "bare 'assert false' in protocol code; make the function total or justify" };
    { id = "global-mutable";
      family = Global_state;
      summary = "module-level ref/Hashtbl.create/Buffer.create is hidden global state" };
    { id = "io-print";
      family = Io;
      summary = "direct stdout/stderr printing in library code; return structured results" };
    { id = "iface-missing-mli";
      family = Interface;
      summary = "library module without an .mli leaves its public surface unchecked" };
  ]

let ids = List.map (fun r -> r.id) all

let race_ids = [ "race-escape"; "race-taint" ]

let config_ids = ids @ race_ids

let find id = List.find_opt (fun r -> r.id = id) all
