(* Hand-rolled parser for the `lint.toml`-style configuration.  The
   grammar is the small TOML subset the linter needs — `[section]`
   headers, `key = value` with string / bool / string-array values, `#`
   comments — parsed line by line with no external dependency.  Arrays
   may span lines until the closing bracket. *)

type rule_cfg = {
  enabled : bool;
  allow : string list;  (* path prefixes where hits are suppressed *)
  scope : string list;  (* path prefixes the rule applies to; [] = everywhere *)
}

let default_rule = { enabled = true; allow = []; scope = [] }

type t = {
  roots : string list;
  rules : (string * rule_cfg) list;
}

let default = { roots = [ "lib"; "bin" ]; rules = [] }

let rule_cfg t id =
  match List.assoc_opt id t.rules with
  | Some c -> c
  | None -> default_rule

(* A prefix matches a path when it names the path itself, a parent
   directory (prefix ends in '/' or the next path char is '/'), or any
   leading portion ending at a separator — so "lib/prng" matches
   "lib/prng/rng.ml" but not "lib/prng_x/evil.ml". *)
let prefix_matches path prefix =
  let lp = String.length prefix in
  if lp = 0 then false
  else if String.length path < lp then false
  else if String.sub path 0 lp <> prefix then false
  else
    String.length path = lp
    || prefix.[lp - 1] = '/'
    || path.[lp] = '/'

let path_in prefixes path = List.exists (prefix_matches path) prefixes

(* --- parsing ------------------------------------------------------- *)

let trim = String.trim

let is_blank line = trim line = "" || (trim line).[0] = '#'

let strip_inline_comment line =
  (* Drop a trailing comment, tracking double quotes so '#' inside a
     string literal survives. *)
  let buf = Buffer.create (String.length line) in
  let in_string = ref false in
  (try
     String.iter
       (fun c ->
         if c = '"' then in_string := not !in_string;
         if c = '#' && not !in_string then raise Exit;
         Buffer.add_char buf c)
       line
   with Exit -> ());
  Buffer.contents buf

let parse_string_literal ~line s =
  let s = trim s in
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then Ok (String.sub s 1 (n - 2))
  else Error (Printf.sprintf "line %d: expected a double-quoted string, got %S" line s)

type value =
  | Bool of bool
  | Str of string
  | Str_list of string list

let parse_array ~line s =
  let n = String.length s in
  let inner = trim (String.sub s 1 (n - 2)) in
  if inner = "" then Ok (Str_list [])
  else
    let parts = String.split_on_char ',' inner in
    let parts = List.filter (fun p -> trim p <> "") parts in
    let rec go acc = function
      | [] -> Ok (Str_list (List.rev acc))
      | p :: rest -> (
        match parse_string_literal ~line p with
        | Ok s -> go (s :: acc) rest
        | Error e -> Error e)
    in
    go [] parts

let parse_value ~line s =
  let s = trim s in
  match s with
  | "true" -> Ok (Bool true)
  | "false" -> Ok (Bool false)
  | _ ->
    if s <> "" && s.[0] = '[' then parse_array ~line s
    else Result.map (fun v -> Str v) (parse_string_literal ~line s)

type section =
  | Top  (* before any header *)
  | Lint
  | Rule of string

let parse_section_header ~known ~line s =
  let n = String.length s in
  let name = trim (String.sub s 1 (n - 2)) in
  if name = "lint" then Ok Lint
  else
    match String.index_opt name '.' with
    | Some i when String.sub name 0 i = "rule" ->
      let id = String.sub name (i + 1) (String.length name - i - 1) in
      if List.mem id known then Ok (Rule id)
      else Error (Printf.sprintf "line %d: unknown rule id %S in section header" line id)
    | _ -> Error (Printf.sprintf "line %d: unknown section [%s]" line name)

let set_rule rules id f =
  let cur = match List.assoc_opt id rules with Some c -> c | None -> default_rule in
  (id, f cur) :: List.remove_assoc id rules

let parse_string ?(known = Rules.config_ids) text =
  let lines = String.split_on_char '\n' text in
  (* Join multi-line arrays: while a value opens '[' without closing it,
     splice following lines in. *)
  let rec join acc pending pending_line = function
    | [] ->
      if pending = "" then Ok (List.rev acc)
      else Error (Printf.sprintf "line %d: unterminated array" pending_line)
    | (ln, line) :: rest ->
      let line = strip_inline_comment line in
      if pending <> "" then
        let merged = pending ^ " " ^ trim line in
        if String.contains line ']' then join ((pending_line, merged) :: acc) "" 0 rest
        else join acc merged pending_line rest
      else if
        String.contains line '['
        && (not (String.contains line ']'))
        && String.contains line '='
        && not (is_blank line)
      then join acc line ln rest
      else join ((ln, line) :: acc) "" 0 rest
  in
  let numbered = List.mapi (fun i l -> (i + 1, l)) lines in
  match join [] "" 0 numbered with
  | Error e -> Error e
  | Ok joined ->
    let rec go section cfg = function
      | [] -> Ok cfg
      | (_, line) :: rest when is_blank line -> go section cfg rest
      | (ln, line) :: rest -> (
        let s = trim line in
        if s.[0] = '[' && s.[String.length s - 1] = ']' then
          match parse_section_header ~known ~line:ln s with
          | Ok sec -> go sec cfg rest
          | Error e -> Error e
        else
          match String.index_opt s '=' with
          | None -> Error (Printf.sprintf "line %d: expected 'key = value', got %S" ln s)
          | Some i -> (
            let key = trim (String.sub s 0 i) in
            let raw = String.sub s (i + 1) (String.length s - i - 1) in
            match parse_value ~line:ln raw with
            | Error e -> Error e
            | Ok v -> (
              match (section, key, v) with
              | Lint, "roots", Str_list roots -> go section { cfg with roots } rest
              | Lint, "roots", _ ->
                Error (Printf.sprintf "line %d: 'roots' takes a string array" ln)
              | Rule id, "enabled", Bool b ->
                go section
                  { cfg with rules = set_rule cfg.rules id (fun c -> { c with enabled = b }) }
                  rest
              | Rule id, "allow", Str_list allow ->
                go section
                  { cfg with rules = set_rule cfg.rules id (fun c -> { c with allow }) }
                  rest
              | Rule id, "scope", Str_list scope ->
                go section
                  { cfg with rules = set_rule cfg.rules id (fun c -> { c with scope }) }
                  rest
              | Rule _, ("enabled" | "allow" | "scope"), _ ->
                Error (Printf.sprintf "line %d: bad value type for %S" ln key)
              | (Top | Lint | Rule _), _, _ ->
                Error (Printf.sprintf "line %d: unknown key %S here" ln key))))
    in
    go Top default joined

let load ?known path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    parse_string ?known text
