(** The `radio_lint` rule catalogue: ids, families, and one-line
    summaries.  Detection logic lives in {!Engine}. *)

type family =
  | Nondet  (** randomness, clocks, OS state, hash-order escapes *)
  | Partiality  (** functions that can raise in protocol modules *)
  | Global_state  (** module-level mutable state *)
  | Io  (** printing from library code *)
  | Interface  (** public-surface hygiene (.mli coverage) *)

type t = {
  id : string;  (** stable rule id, e.g. ["nondet-random"] *)
  family : family;
  summary : string;  (** one-line description used in reports *)
}

val family_name : family -> string

val all : t list

val ids : string list

val race_ids : string list
(** Rule ids owned by the typed analyzer ([radio_race]); they share
    [lint.toml] (scope/allow sections) but have no syntactic detector
    here. *)

val config_ids : string list
(** Every id the configuration file may mention: {!ids} @ {!race_ids}. *)

val find : string -> t option
