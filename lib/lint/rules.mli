(** The `radio_lint` rule catalogue: ids, families, and one-line
    summaries.  Detection logic lives in {!Engine}. *)

type family =
  | Nondet  (** randomness, clocks, OS state, hash-order escapes *)
  | Partiality  (** functions that can raise in protocol modules *)
  | Global_state  (** module-level mutable state *)
  | Io  (** printing from library code *)
  | Interface  (** public-surface hygiene (.mli coverage) *)

type t = {
  id : string;  (** stable rule id, e.g. ["nondet-random"] *)
  family : family;
  summary : string;  (** one-line description used in reports *)
}

val family_name : family -> string

val all : t list

val ids : string list

val find : string -> t option
