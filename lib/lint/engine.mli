(** The lint engine: parses `.ml` sources with compiler-libs and walks
    the parsetree for rule hits, classifying each against the
    configuration (enabled / scope / allowlist) and
    [(* radio-lint: allow <rule> *)] escape comments on the offending
    line or the line above.

    Identifier rules are syntactic: a module alias ([module H = Hashtbl])
    or functor-made table is not seen.  The lint run itself keeps the
    tree free of such aliases. *)

type violation = {
  file : string;
  line : int;
  col : int;
  rule : string;  (** a {!Rules.t} id *)
  message : string;
}

type report = {
  active : violation list;  (** violations that fail the build, sorted *)
  suppressed : (violation * string) list;
      (** hits quieted by an allowlist entry or escape comment, with the
          reason ("allowlist" or "escape-comment") *)
  errors : (string * string) list;  (** unreadable or unparseable files *)
  files : string list;  (** the [.ml] files scanned *)
}

val ok : report -> bool
(** No active violations and no errors. *)

val pp_violation : Format.formatter -> violation -> unit
(** ["file:line:col: [rule] message"]. *)

val collect_files : string list -> string list
(** Recursively gather [.ml] files under the given roots (files are taken
    as-is), skipping hidden and [_build]-style directories; sorted and
    deduplicated. *)

val run : config:Config.t -> string list -> report
(** Lint every [.ml] under [roots] (directories or single files).  The
    interface rule ([iface-missing-mli]) checks for a sibling [.mli] on
    disk; it can be scoped or allowlisted but not escape-commented. *)
