(** Experiment E4: Theorem 4 — greedy-removal solves the starred-edge
    removal game in O(|E|) moves, against every referee strategy. *)

val e4 : quick:bool -> jobs:int -> Common.result
