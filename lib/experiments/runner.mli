(** The experiment runner: parallel execution with deterministic output and
    a structured-results emitter.

    Determinism contract: rendered output is a pure function of the
    experiment list, [quick], and the seeds baked into each experiment —
    never of [jobs].  Wall-clock timings live only in {!outcome} (and the
    JSON emitted from it), outside the rendered tables. *)

type outcome = {
  experiment : Registry.experiment;
  result : Common.result;
  wall_s : float;  (** wall-clock seconds for this experiment's run *)
}

val run_one : quick:bool -> jobs:int -> Registry.experiment -> outcome
(** Run one experiment, fanning its internal replicate loops out over
    [jobs] domains. *)

val run_many : quick:bool -> jobs:int -> Registry.experiment list -> outcome list
(** Run several experiments.  With two or more, the [jobs] domains are
    spent across experiments (each experiment's inner loops run serially);
    a singleton behaves exactly like {!run_one}.  Outcomes come back in
    request order. *)

val render : Format.formatter -> outcome -> unit
(** Render the outcome's tables/notes; prints nothing about timing. *)

val json_of_outcome : outcome -> Json.t

val json_of_outcomes : quick:bool -> jobs:int -> outcome list -> Json.t
(** The [radio-experiments/v1] document: run parameters, per-experiment
    wall-clock and round metrics, tables as data. *)

val write_json : path:string -> quick:bool -> jobs:int -> outcome list -> unit
