(** Experiment E13: the Byzantine-corruption open question (Section 8).

    The paper notes that under node corruption, surrogates become a
    liability — a corrupted surrogate can forge the vector it relays, and
    the receiver has no way to notice (the frame arrives on the scheduled
    channel) — and sketches the fix: eliminate surrogates and receive every
    message directly from its source, settling for 2t-disruptability.

    This experiment stages exactly that: corrupted nodes that follow the
    schedule but forge when relaying.  Against f-AME they poison deliveries;
    against the direct baseline they can only garble their {e own} messages,
    so every honest-source delivery stays authentic. *)

val e13 : quick:bool -> jobs:int -> Common.result
