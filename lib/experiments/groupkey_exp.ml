let e8 ~quick ~jobs =
  let scenarios =
    if quick then [ (1, 20) ] else [ (1, 20); (1, 28); (1, 36); (2, 40); (2, 52) ]
  in
  let outcomes =
    Common.sweep ~jobs
      (fun (t, n) ->
        let channels = t + 1 in
        let cfg =
          Radio.Config.make ~seed:(Int64.of_int ((t * 7919) + n)) ~n ~channels ~t
            ~max_rounds:50_000_000 ()
        in
        let o =
          Groupkey.Protocol.run ~cfg
            ~fame_adversary:(Common.schedule_jam ~channels ~budget:t)
            ~hop_adversary:
              (Common.random_jam ~seed:(Int64.of_int (n + 3)) ~channels ~budget:t)
            ()
        in
        let norm =
          float_of_int o.Groupkey.Protocol.total_rounds
          /. (float_of_int (n * t * t * t) *. Common.log2 (float_of_int n))
        in
        ( [ string_of_int t; string_of_int n;
            string_of_int o.Groupkey.Protocol.total_rounds; Printf.sprintf "%.2f" norm;
            Printf.sprintf "%d/%d" o.Groupkey.Protocol.agreed_key_holders n;
            string_of_int o.Groupkey.Protocol.wrong_key_holders;
            string_of_int o.Groupkey.Protocol.no_key_holders;
            string_of_int (n - t);
            String.concat "," (List.map string_of_int o.Groupkey.Protocol.complete_leaders) ],
          o.Groupkey.Protocol.total_rounds ))
      scenarios
  in
  Common.result ~total_rounds:(List.fold_left (fun acc (_, r) -> acc + r) 0 outcomes)
    [ Common.Blank;
      Common.text "== E8 / Section 6: shared group key in Theta(n t^3 log n) rounds ==";
      Common.Blank;
      Common.table
        ~header:
          [ "t"; "n"; "rounds"; "rounds/(n t^3 lg n)"; "agreed"; "wrong"; "none"; "need>=";
            "complete leaders" ]
        (List.map fst outcomes) ]
