(** Experiment E15: the bounded-energy adversary model of the related work
    (Gilbert-Guerraoui-Newport 2006; Koo et al. 2006).

    The paper's adversary has unbounded energy (t channels every round,
    forever); the related-work model charges per transmission.  This
    experiment sweeps the total strike budget and shows f-AME degrading
    gracefully: disruption stays within t regardless, and once the budget
    runs dry the protocol finishes every exchange the game can still
    propose. *)

val e15 : quick:bool -> jobs:int -> Common.result
