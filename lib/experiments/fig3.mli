(** Experiments E1-E3: the three rows of Figure 3, measured.

    Each row of the paper's table claims an asymptotic running time for
    f-AME in a channel regime; these experiments sweep |E| (and t, n) and
    report measured rounds next to the claimed normalization — a flat
    normalized column reproduces the row's shape. *)

val e1 : quick:bool -> jobs:int -> Common.result
(** C = t+1: rounds / (|E| t^2 log n) should be near-constant. *)

val e2 : quick:bool -> jobs:int -> Common.result
(** C = 2t: rounds / (|E| log n) should be near-constant. *)

val e3 : quick:bool -> jobs:int -> Common.result
(** C = 2t^2 with tree feedback: rounds / (|E| log^2 n / t) near-constant. *)
