(** Experiment E17: information-theoretic secret growing against the
    eavesdropping-restricted adversary (Section 8, open question 2). *)

val e17 : quick:bool -> jobs:int -> Common.result
