(** Experiment E10: the oblivious-gossip baseline of [13] against f-AME.

    Two comparisons the paper's introduction and related-work sections make:
    (1) speed on a sparse exchange set — gossip must disseminate everything
    to everyone while f-AME only pays for the requested pairs; and
    (2) authenticity — gossip accepts spoofed rumors at face value, f-AME
    accepts none. *)

val e10 : quick:bool -> jobs:int -> Common.result
