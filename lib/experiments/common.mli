(** Shared plumbing for the experiment harness: table rendering, parameter
    grids, adversary construction, and normalization helpers. *)

val log2 : float -> float

val fmt_table : Format.formatter -> header:string list -> string list list -> unit
(** Render rows as an aligned ASCII table. *)

val mean : float list -> float

val pow2_floor : int -> int
(** Largest power of two <= x (x >= 1). *)

val fame_nodes_for : t:int -> channels_used:int -> channels:int -> int
(** A node count comfortably above {!Ame.Params.nodes_required}. *)

val schedule_jam : channels:int -> budget:int -> Ame.Oracle.t -> Radio.Adversary.t

val random_jam : seed:int64 -> channels:int -> budget:int -> Radio.Adversary.t

val default_messages : int * int -> string

type fame_point = {
  rounds : int;
  moves : int;
  delivered : int;
  failed : int;
  vc : int option;
  diverged : bool;
}

val run_fame :
  ?channels_used:int ->
  ?feedback_mode:Ame.Fame.feedback_mode ->
  ?adversary:(Ame.Oracle.t -> Radio.Adversary.t) ->
  seed:int64 ->
  n:int ->
  channels:int ->
  t:int ->
  pairs:(int * int) list ->
  unit ->
  fame_point
