(** Shared plumbing for the experiment harness: table rendering, parameter
    grids, adversary construction, and normalization helpers. *)

val log2 : float -> float

(** {1 Structured results}

    Experiments build a [result] — data, not prose — and rendering to the
    historical text tables happens here, centrally.  Keeping the two apart
    is what lets the runner fan experiments (and their replicates) out
    across domains and still merge output byte-identically. *)

type block =
  | Text of string  (** one full line *)
  | Blank  (** a blank line *)
  | Table of { header : string list; rows : string list list }

type result = {
  blocks : block list;  (** rendered top to bottom *)
  total_rounds : int;
      (** simulated radio rounds consumed, summed over the experiment's
          runs; [0] when the experiment has no natural round count *)
}

val result : ?total_rounds:int -> block list -> result

val text : string -> block

val textf : ('a, unit, string, block) format4 -> 'a
(** [Printf]-style {!text}. *)

val table : header:string list -> string list list -> block

val render : Format.formatter -> result -> unit
(** Render every block: [Text] lines, blank separators, and aligned ASCII
    tables, exactly as the pre-structured experiments printed them. *)

val render_to_string : result -> string

val fmt_table : Format.formatter -> header:string list -> string list list -> unit
(** Render rows as an aligned ASCII table. *)

(** {1 Replicate fan-out}

    Experiments run their independent units of work — seed-indexed trials,
    parameter-grid points — through these combinators instead of serial
    [List.map]/[List.init] loops.  Inside a {!Parallel.run} scope (the
    runner installs one) the closures execute on the shared domain pool;
    the merge is order-preserving, so output is byte-identical to the
    serial run for any job count.  Each closure must derive its randomness
    from its own argument (trial index or grid point), never from shared
    state. *)

val sweep : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [sweep ~jobs f xs] is [List.map f xs] fanned out through the pool with
    an order-preserving merge ({!Parallel.map_ordered}). *)

val replicates : jobs:int -> trials:int -> (int -> 'a) -> 'a list
(** [replicates ~jobs ~trials f] runs [f 1 .. f trials] (1-based, matching
    the historical trial loops) through the pool and returns the results in
    trial order.  Exceptions propagate from the earliest-submitted failing
    trial. *)

val mean : float list -> float

val pow2_floor : int -> int
(** Largest power of two <= x (x >= 1). *)

val fame_nodes_for : t:int -> channels_used:int -> channels:int -> int
(** A node count comfortably above {!Ame.Params.nodes_required}. *)

val schedule_jam : channels:int -> budget:int -> Ame.Oracle.t -> Radio.Adversary.t

val random_jam : seed:int64 -> channels:int -> budget:int -> Radio.Adversary.t

val default_messages : int * int -> string

type fame_point = {
  rounds : int;
  moves : int;
  delivered : int;
  failed : int;
  vc : int option;
  diverged : bool;
}

val run_fame :
  ?channels_used:int ->
  ?feedback_mode:Ame.Fame.feedback_mode ->
  ?adversary:(Ame.Oracle.t -> Radio.Adversary.t) ->
  seed:int64 ->
  n:int ->
  channels:int ->
  t:int ->
  pairs:(int * int) list ->
  unit ->
  fame_point
