(** Shared plumbing for the experiment harness: table rendering, parameter
    grids, adversary construction, and normalization helpers. *)

val log2 : float -> float

(** {1 Structured results}

    Experiments build a [result] — data, not prose — and rendering to the
    historical text tables happens here, centrally.  Keeping the two apart
    is what lets the runner fan experiments (and their replicates) out
    across domains and still merge output byte-identically. *)

type block =
  | Text of string  (** one full line *)
  | Blank  (** a blank line *)
  | Table of { header : string list; rows : string list list }

type result = {
  blocks : block list;  (** rendered top to bottom *)
  total_rounds : int;
      (** simulated radio rounds consumed, summed over the experiment's
          runs; [0] when the experiment has no natural round count *)
}

val result : ?total_rounds:int -> block list -> result

val text : string -> block

val textf : ('a, unit, string, block) format4 -> 'a
(** [Printf]-style {!text}. *)

val table : header:string list -> string list list -> block

val render : Format.formatter -> result -> unit
(** Render every block: [Text] lines, blank separators, and aligned ASCII
    tables, exactly as the pre-structured experiments printed them. *)

val render_to_string : result -> string

val fmt_table : Format.formatter -> header:string list -> string list list -> unit
(** Render rows as an aligned ASCII table. *)

val mean : float list -> float

val pow2_floor : int -> int
(** Largest power of two <= x (x >= 1). *)

val fame_nodes_for : t:int -> channels_used:int -> channels:int -> int
(** A node count comfortably above {!Ame.Params.nodes_required}. *)

val schedule_jam : channels:int -> budget:int -> Ame.Oracle.t -> Radio.Adversary.t

val random_jam : seed:int64 -> channels:int -> budget:int -> Radio.Adversary.t

val default_messages : int * int -> string

type fame_point = {
  rounds : int;
  moves : int;
  delivered : int;
  failed : int;
  vc : int option;
  diverged : bool;
}

val run_fame :
  ?channels_used:int ->
  ?feedback_mode:Ame.Fame.feedback_mode ->
  ?adversary:(Ame.Oracle.t -> Radio.Adversary.t) ->
  seed:int64 ->
  n:int ->
  channels:int ->
  t:int ->
  pairs:(int * int) list ->
  unit ->
  fame_point
