let e4 ~quick ~jobs =
  let sizes = if quick then [ 6; 10 ] else [ 6; 10; 14; 18; 24 ] in
  let rows =
    List.concat
      (Common.sweep ~jobs
         (fun m ->
           let g = Rgraph.Digraph.of_edges (Rgraph.Workload.complete ~n:m) in
           let edges = Rgraph.Digraph.edge_count g in
           let t = 2 in
           (* The random referee draws from a per-size seed so sizes stay
              independent replicates under parallel execution. *)
           let referees =
             [ Game.Referee.generous; Game.Referee.minimal_first;
               Game.Referee.spiteful ~min_return:1;
               Game.Referee.random (Prng.Rng.create (Int64.of_int (31 + m))) ~min_return:1 ]
           in
           List.map
             (fun (referee : Game.Referee.t) ->
               let o = Game.Runner.play (Game.State.create g ~t) referee in
               [ Printf.sprintf "K%d" m; string_of_int edges; referee.Game.Referee.name;
                 string_of_int o.Game.Runner.moves; string_of_int o.Game.Runner.stars;
                 string_of_int o.Game.Runner.edges_removed; string_of_bool o.Game.Runner.won;
                 string_of_int (3 * edges);
                 Printf.sprintf "%.2f" (float_of_int o.Game.Runner.moves /. float_of_int edges) ])
             referees)
         sizes)
  in
  Common.result
    [ Common.Blank; Common.text "== E4 / Theorem 4: greedy-removal finishes in O(|E|) moves ==";
      Common.text
        "bound column = |E| + 2|E| (edge removals + possible starrings); moves must stay below";
      Common.Blank;
      Common.table
        ~header:
          [ "graph"; "|E|"; "referee"; "moves"; "stars"; "removed"; "won"; "bound";
            "moves/|E|" ]
        rows ]
