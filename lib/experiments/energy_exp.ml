let e15 ~quick ~jobs =
  let t = 2 in
  let channels = t + 1 in
  let n = Common.fame_nodes_for ~t ~channels_used:channels ~channels in
  let pairs = Rgraph.Workload.disjoint_pairs ~n ~count:8 in
  let budgets = if quick then [ 0; 100 ] else [ 0; 20; 50; 100; 200; 500; max_int ] in
  let outcomes =
    Common.sweep ~jobs
      (fun total ->
        let adversary board =
          let inner =
            Ame.Attacks.schedule_jammer board ~channels ~budget:t
              ~prefer:Ame.Attacks.Prefer_edges
          in
          if total = max_int then inner else Radio.Adversary.energy_bounded ~total inner
        in
        let p =
          Common.run_fame ~adversary ~seed:(Int64.of_int (total land 0xFFFF)) ~n ~channels ~t
            ~pairs ()
        in
        ( [ (if total = max_int then "unbounded" else string_of_int total);
            string_of_int p.Common.rounds; string_of_int p.Common.delivered;
            string_of_int p.Common.failed;
            (match p.Common.vc with Some v -> string_of_int v | None -> "-") ],
          p.Common.rounds ))
      budgets
  in
  Common.result ~total_rounds:(List.fold_left (fun acc (_, r) -> acc + r) 0 outcomes)
    [ Common.Blank;
      Common.text "== E15 / related-work model: adversary with a total energy budget ==";
      Common.Blank;
      Common.table
        ~header:[ "energy budget"; "rounds"; "delivered"; "failed"; "vc (bound t=2)" ]
        (List.map fst outcomes) ]
