(** Experiment E9: the Section 7 long-lived communication service.

    Per emulated round the service costs Theta(t log n) real rounds; under a
    jamming adversary that cannot predict the key-seeded hopping pattern,
    key holders receive every broadcast with high probability, the <= t
    outsiders decode nothing, and no frame travels unencrypted. *)

val e9 : quick:bool -> jobs:int -> Common.result
