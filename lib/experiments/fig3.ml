type point = {
  cells : string list;
  diverged : bool;
  rounds : int;
}

let row ~t ~channels ~channels_used ~feedback_mode ~edges ~seed ~normalizer =
  let n = max (Common.fame_nodes_for ~t ~channels_used ~channels) (2 * edges + 2) in
  let pairs = Rgraph.Workload.disjoint_pairs ~n ~count:edges in
  let p =
    Common.run_fame ~channels_used ~feedback_mode ~seed ~n ~channels ~t ~pairs ()
  in
  let norm = float_of_int p.Common.rounds /. normalizer ~edges ~t ~n in
  { cells =
      [ string_of_int t; string_of_int channels; string_of_int n; string_of_int edges;
        string_of_int p.Common.rounds; string_of_int p.Common.moves;
        string_of_int p.Common.delivered;
        (match p.Common.vc with Some v -> string_of_int v | None -> "-");
        Printf.sprintf "%.2f" norm ];
    diverged = p.Common.diverged;
    rounds = p.Common.rounds }

let header = [ "t"; "C"; "n"; "|E|"; "rounds"; "moves"; "delivered"; "vc"; "normalized" ]

let regime_blocks ~title ~normalizer_label points =
  [ Common.Blank; Common.textf "== %s ==" title;
    Common.textf "normalized = rounds / %s (flat column = paper's shape holds)"
      normalizer_label;
    Common.Blank; Common.table ~header (List.map (fun p -> p.cells) points) ]
  @
  if List.exists (fun p -> p.diverged) points then
    [ Common.text "WARNING: some runs diverged (whp failure)" ]
  else []

let total_rounds points = List.fold_left (fun acc p -> acc + p.rounds) 0 points

let e1 ~quick ~jobs =
  let normalizer ~edges ~t ~n =
    float_of_int edges *. float_of_int (t * t) *. Common.log2 (float_of_int n)
  in
  let sweeps =
    if quick then [ (1, 4); (1, 8); (2, 8) ]
    else [ (1, 4); (1, 8); (1, 16); (2, 4); (2, 8); (2, 16); (3, 8); (3, 16) ]
  in
  let points =
    Common.sweep ~jobs
      (fun (t, edges) ->
        row ~t ~channels:(t + 1) ~channels_used:(t + 1) ~feedback_mode:Ame.Fame.Sequential
          ~edges ~seed:(Int64.of_int ((t * 1000) + edges)) ~normalizer)
      sweeps
  in
  Common.result ~total_rounds:(total_rounds points)
    (regime_blocks ~title:"E1 / Figure 3 row 1: C = t+1, f-AME in O(|E| t^2 log n)"
       ~normalizer_label:"(|E| * t^2 * log2 n)" points)

let e2 ~quick ~jobs =
  let normalizer ~edges ~t ~n =
    ignore t;
    float_of_int edges *. Common.log2 (float_of_int n)
  in
  let sweeps =
    if quick then [ (2, 8) ] else [ (2, 4); (2, 8); (2, 16); (3, 8); (3, 16); (4, 8) ]
  in
  let points =
    Common.sweep ~jobs
      (fun (t, edges) ->
        row ~t ~channels:(2 * t) ~channels_used:(2 * t) ~feedback_mode:Ame.Fame.Sequential
          ~edges ~seed:(Int64.of_int ((t * 2000) + edges)) ~normalizer)
      sweeps
  in
  let main =
    regime_blocks ~title:"E2 / Figure 3 row 2: C = 2t, f-AME in O(|E| log n)"
      ~normalizer_label:"(|E| * log2 n)" points
  in
  (* Interpolation between rows 1 and 2: the paper only states the two
     endpoints, but the same protocol runs at any t < C <= 2t; rounds
     should fall monotonically as channels are added. *)
  let interp =
    if quick then []
    else
      let t = 3 and edges = 8 in
      let points =
        Common.sweep ~jobs
          (fun channels ->
            row ~t ~channels ~channels_used:channels ~feedback_mode:Ame.Fame.Sequential
              ~edges ~seed:(Int64.of_int ((t * 2500) + channels))
              ~normalizer:(fun ~edges ~t:_ ~n ->
                float_of_int edges *. Common.log2 (float_of_int n)))
          [ t + 1; t + 2; 2 * t ]
      in
      [ Common.Blank; Common.textf "interpolation t = %d, |E| = %d, C from t+1 to 2t:" t edges;
        Common.Blank; Common.table ~header (List.map (fun p -> p.cells) points) ]
  in
  Common.result ~total_rounds:(total_rounds points) (main @ interp)

let e3 ~quick ~jobs =
  let normalizer ~edges ~t ~n =
    let l = Common.log2 (float_of_int n) in
    float_of_int edges *. l *. l /. float_of_int t
  in
  let sweeps =
    if quick then [ (2, 8) ] else [ (2, 4); (2, 8); (2, 16); (3, 8); (3, 16) ]
  in
  let points =
    Common.sweep ~jobs
      (fun (t, edges) ->
        (* C' must be a power of two for the hypercube merge; round 2t up to
           one and give the adversary-facing channel count C = t * C'
           (>= 2t^2, the regime's requirement). *)
        let channels_used =
          let rec up p = if p >= 2 * t then p else up (2 * p) in
          up 2
        in
        let channels = t * channels_used in
        row ~t ~channels ~channels_used ~feedback_mode:Ame.Fame.Tree ~edges
          ~seed:(Int64.of_int ((t * 3000) + edges)) ~normalizer)
      sweeps
  in
  Common.result ~total_rounds:(total_rounds points)
    (regime_blocks
       ~title:"E3 / Figure 3 row 3: C >= 2t^2, tree feedback, f-AME in O(|E| log^2 n / t)"
       ~normalizer_label:"(|E| * log2^2 n / t)" points)
