type outcome = {
  experiment : Registry.experiment;
  result : Common.result;
  wall_s : float;
}

let run_one ~quick ~jobs (e : Registry.experiment) =
  (* Installs the shared pool if no outer scope did, so a lone experiment
     still fans its replicates out across the full budget. *)
  Parallel.run ~jobs (fun () ->
      let result, wall_s = Parallel.Clock.time (fun () -> e.Registry.run ~quick ~jobs) in
      { experiment = e; result; wall_s })

let run_many ~quick ~jobs es =
  (* One shared pool serves both levels: the fan-out across experiments
     here and each experiment's own replicate fan-out.  The helping join in
     [Parallel.Pool] lets the nested submissions share the global domain
     budget instead of squaring it, and the order-preserving merges keep
     the outcome order equal to the request order at every level. *)
  Parallel.run ~jobs (fun () ->
      match es with
      | [ e ] -> [ run_one ~quick ~jobs e ]
      | es -> Parallel.map_ordered ~jobs (fun e -> run_one ~quick ~jobs e) es)

let render fmt (o : outcome) = Common.render fmt o.result

let json_of_outcome (o : outcome) =
  let tables, notes =
    List.fold_left
      (fun (tables, notes) block ->
        match block with
        | Common.Table { header; rows } ->
          let cells row = Json.List (List.map (fun c -> Json.String c) row) in
          ( Json.Obj [ ("header", cells header); ("rows", Json.List (List.map cells rows)) ]
            :: tables,
            notes )
        | Common.Text s -> (tables, Json.String s :: notes)
        | Common.Blank -> (tables, notes))
      ([], []) o.result.Common.blocks
  in
  Json.Obj
    [ ("id", Json.String o.experiment.Registry.id);
      ("title", Json.String o.experiment.Registry.title);
      ("wall_s", Json.Float o.wall_s);
      ("total_rounds", Json.Int o.result.Common.total_rounds);
      ("tables", Json.List (List.rev tables));
      ("notes", Json.List (List.rev notes)) ]

let json_of_outcomes ~quick ~jobs outcomes =
  Json.Obj
    [ ("schema", Json.String "radio-experiments/v1");
      ("quick", Json.Bool quick);
      ("jobs", Json.Int jobs);
      ( "total_wall_s",
        Json.Float (List.fold_left (fun acc o -> acc +. o.wall_s) 0.0 outcomes) );
      ("experiments", Json.List (List.map json_of_outcome outcomes)) ]

let write_json ~path ~quick ~jobs outcomes =
  (* The sanctioned output sink on the results path: everything in
     [outcomes] is already deterministic, and serializing it to disk is
     this function's contract, so the file I/O is audited here rather
     than allowlisted for the whole module. *)
  (* radio-race: allow race-taint *)
  let oc = open_out path in
  Fun.protect
    (* radio-race: allow race-taint *)
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (* radio-race: allow race-taint *)
      output_string oc (Json.to_string (json_of_outcomes ~quick ~jobs outcomes));
      output_char oc '\n')
