type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* JSON has no nan/inf; emit null so the document always validates. *)
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
    else Buffer.add_string buf "null"
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        write buf (String k);
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  write buf v;
  Buffer.contents buf

(* -- parsing: recursive descent over the grammar this module emits -- *)

exception Parse_error of string

let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail (Printf.sprintf "expected %c, found %c" c got)
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > len then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some '/' -> Buffer.add_char buf '/'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'u' ->
           advance ();
           let v = try parse_hex4 () with Failure _ -> fail "bad \\u escape" in
           (* The emitter only writes \u00XX control codes; decode the
              Latin-1 range bytewise and pass anything else through as a
              UTF-8 replacement-free question mark to stay total. *)
           if v < 0x100 then Buffer.add_char buf (Char.chr v) else Buffer.add_char buf '?'
         | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
        advance ();
        go ()
      | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "malformed number"
    else begin
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "malformed number")
    end
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        let rec go () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items := parse_value () :: !items;
            go ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ] in array"
        in
        go ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        let rec go () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields := field () :: !fields;
            go ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or } in object"
        in
        go ();
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> len then Error (Printf.sprintf "trailing garbage at offset %d" !pos) else Ok v
  | exception Parse_error msg -> Error msg

(* -- accessors for consumers of parsed documents -- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
