(** Registry of all paper experiments, keyed by the ids used in DESIGN.md,
    EXPERIMENTS.md, `bench/main.exe`, and `bin/radio_sim.exe experiment`. *)

type experiment = {
  id : string;
  title : string;
  run : quick:bool -> jobs:int -> Common.result;
}

val all : experiment list

val find : string -> experiment option

val ids : string list
