type experiment = {
  id : string;
  title : string;
  run : quick:bool -> jobs:int -> Common.result;
}

let all =
  [ { id = "e1"; title = "Figure 3 row 1: f-AME at C = t+1"; run = Fig3.e1 };
    { id = "e2"; title = "Figure 3 row 2: f-AME at C = 2t"; run = Fig3.e2 };
    { id = "e3"; title = "Figure 3 row 3: f-AME at C = 2t^2 (tree feedback)"; run = Fig3.e3 };
    { id = "e4"; title = "Theorem 4: greedy-removal in O(|E|) moves"; run = Game_exp.e4 };
    { id = "e5"; title = "Lemma 5: communication-feedback agreement"; run = Feedback_exp.e5 };
    { id = "e6"; title = "Theorems 2+6: optimal t-disruptability"; run = Disruption_exp.e6 };
    { id = "e7"; title = "Theorem 2: spoofing the naive protocol"; run = Spoof_exp.e7 };
    { id = "e8"; title = "Section 6: shared group key"; run = Groupkey_exp.e8 };
    { id = "e9"; title = "Section 7: long-lived secure channel"; run = Channel_exp.e9 };
    { id = "e10"; title = "Gossip baseline [13] vs f-AME"; run = Gossip_exp.e10 };
    { id = "e11"; title = "Section 5.6: constant message size"; run = Size_exp.e11 };
    { id = "e12"; title = "Ablation: surrogates on/off"; run = Disruption_exp.e12 };
    { id = "e13"; title = "Section 8: corrupted surrogates (Byzantine sketch)"; run = Byzantine_exp.e13 };
    { id = "e14"; title = "Section 8: concurrent pairwise channels"; run = Unicast_exp.e14 };
    { id = "e15"; title = "Related work: energy-bounded adversary"; run = Energy_exp.e15 };
    { id = "e16"; title = "whp claims over many seeds + transcript audit"; run = Robustness_exp.e16 };
    { id = "e17"; title = "Section 8: secrets vs a t-channel eavesdropper"; run = Secrecy_exp.e17 } ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids = List.map (fun e -> e.id) all
