type experiment = {
  id : string;
  title : string;
  run : quick:bool -> Format.formatter -> unit;
}

let all =
  [ { id = "e1"; title = "Figure 3 row 1: f-AME at C = t+1"; run = (fun ~quick fmt -> Fig3.e1 ~quick fmt) };
    { id = "e2"; title = "Figure 3 row 2: f-AME at C = 2t"; run = (fun ~quick fmt -> Fig3.e2 ~quick fmt) };
    { id = "e3"; title = "Figure 3 row 3: f-AME at C = 2t^2 (tree feedback)"; run = (fun ~quick fmt -> Fig3.e3 ~quick fmt) };
    { id = "e4"; title = "Theorem 4: greedy-removal in O(|E|) moves"; run = (fun ~quick fmt -> Game_exp.e4 ~quick fmt) };
    { id = "e5"; title = "Lemma 5: communication-feedback agreement"; run = (fun ~quick fmt -> Feedback_exp.e5 ~quick fmt) };
    { id = "e6"; title = "Theorems 2+6: optimal t-disruptability"; run = (fun ~quick fmt -> Disruption_exp.e6 ~quick fmt) };
    { id = "e7"; title = "Theorem 2: spoofing the naive protocol"; run = (fun ~quick fmt -> Spoof_exp.e7 ~quick fmt) };
    { id = "e8"; title = "Section 6: shared group key"; run = (fun ~quick fmt -> Groupkey_exp.e8 ~quick fmt) };
    { id = "e9"; title = "Section 7: long-lived secure channel"; run = (fun ~quick fmt -> Channel_exp.e9 ~quick fmt) };
    { id = "e10"; title = "Gossip baseline [13] vs f-AME"; run = (fun ~quick fmt -> Gossip_exp.e10 ~quick fmt) };
    { id = "e11"; title = "Section 5.6: constant message size"; run = (fun ~quick fmt -> Size_exp.e11 ~quick fmt) };
    { id = "e12"; title = "Ablation: surrogates on/off"; run = (fun ~quick fmt -> Disruption_exp.e12 ~quick fmt) };
    { id = "e13"; title = "Section 8: corrupted surrogates (Byzantine sketch)"; run = (fun ~quick fmt -> Byzantine_exp.e13 ~quick fmt) };
    { id = "e14"; title = "Section 8: concurrent pairwise channels"; run = (fun ~quick fmt -> Unicast_exp.e14 ~quick fmt) };
    { id = "e15"; title = "Related work: energy-bounded adversary"; run = (fun ~quick fmt -> Energy_exp.e15 ~quick fmt) };
    { id = "e16"; title = "whp claims over many seeds + transcript audit"; run = (fun ~quick fmt -> Robustness_exp.e16 ~quick fmt) };
    { id = "e17"; title = "Section 8: secrets vs a t-channel eavesdropper"; run = (fun ~quick fmt -> Secrecy_exp.e17 ~quick fmt) } ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids = List.map (fun e -> e.id) all
