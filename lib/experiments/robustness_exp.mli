(** Experiment E16: the "with high probability" claims under repetition.

    Every paper guarantee is whp; a single run proves little.  This
    experiment re-runs f-AME across many independent seeds per
    configuration and reports the {e worst} observed disruption cover, the
    divergence (whp-failure) count, and an audit of every recorded
    transcript against the model rules — turning "whp" into a measured
    failure rate at the default repetition constants. *)

val e16 : quick:bool -> jobs:int -> Common.result
