let e13 ~quick ~jobs =
  let t = 1 in
  let channels = t + 1 in
  let corruption_levels = if quick then [ 4 ] else [ 0; 2; 4; 8 ] in
  let outcomes =
    Common.sweep ~jobs
      (fun corrupt_count ->
        (* Two sources fan out to 20..25.  With t = 1 both sources are
           starred in the first game move, so watcher (and therefore
           surrogate) duty starts at node 2 -- which is exactly where the
           corrupted nodes sit. *)
        let sources = [ 0; 1 ] in
        let dests = [ 20; 21; 22; 23; 24; 25 ] in
        let pairs = List.concat_map (fun v -> List.map (fun w -> (v, w)) dests) sources in
        let corrupted = List.init corrupt_count (fun i -> 2 + i) in
        let n = 30 in
        let cfg =
          Radio.Config.make ~n ~channels ~t ~seed:(Int64.of_int (7 + corrupt_count))
            ~max_rounds:Radio.Config.default_max_rounds ()
        in
        let forged delivered =
          List.length
            (List.filter (fun (pair, body) -> body <> Common.default_messages pair) delivered)
        in
        let fame_with corruption =
          Ame.Fame.run ~corrupted ~corruption ~cfg ~pairs ~messages:Common.default_messages
            ~adversary:(Common.schedule_jam ~channels ~budget:t)
            ()
        in
        let forging = fame_with Ame.Fame.Forge_as_surrogate in
        let lying = fame_with Ame.Fame.Lie_as_witness in
        let direct =
          Ame.Direct.run ~cfg ~pairs ~messages:Common.default_messages
            ~adversary:(Common.schedule_jam ~channels ~budget:t)
            ()
        in
        let fame_row label (o : Ame.Fame.outcome) =
          [ label; string_of_int corrupt_count;
            string_of_int (List.length o.Ame.Fame.delivered);
            string_of_int (forged o.Ame.Fame.delivered);
            string_of_bool o.Ame.Fame.diverged ]
        in
        ( [ fame_row "f-AME/forging-surrogates" forging;
            fame_row "f-AME/lying-witnesses" lying;
            [ "direct"; string_of_int corrupt_count;
              string_of_int (List.length direct.Ame.Direct.delivered);
              string_of_int (forged direct.Ame.Direct.delivered);
              string_of_bool direct.Ame.Direct.diverged ] ],
          forging.Ame.Fame.engine.Radio.Engine.rounds_used
          + lying.Ame.Fame.engine.Radio.Engine.rounds_used
          + direct.Ame.Direct.engine.Radio.Engine.rounds_used ))
      corruption_levels
  in
  Common.result ~total_rounds:(List.fold_left (fun acc (_, r) -> acc + r) 0 outcomes)
    [ Common.Blank;
      Common.text
        "== E13 / Section 8 open question 1: corrupted surrogates vs direct exchange ==";
      Common.text
        "two attacks: forging relayed vectors (poisons f-AME, direct immune) and lying in";
      Common.text
        "feedback (breaks f-AME agreement -- why Byzantine t-disruptability stays open)";
      Common.Blank;
      Common.table
        ~header:
          [ "protocol/attack"; "corrupted"; "delivered"; "forged accepted";
            "agreement broken" ]
        (List.concat_map fst outcomes) ]
