let e16 ~quick fmt =
  Format.fprintf fmt "@.== E16 / whp claims under repetition: worst case over many seeds ==@.@.";
  let trials = if quick then 5 else 30 in
  let configs = if quick then [ (1, "random") ] else [ (1, "random"); (1, "schedule"); (2, "random"); (2, "schedule") ] in
  let rows =
    List.map
      (fun (t, adv_name) ->
        let channels = t + 1 in
        let n =
          Ame.Params.nodes_required Ame.Params.default ~channels_used:channels ~budget:t
            ~channels
          + 4
        in
        let pairs = Rgraph.Workload.disjoint_pairs ~n ~count:(3 * t + 2) in
        let worst_vc = ref 0 and divergences = ref 0 and audit_violations = ref 0 in
        let delivered_total = ref 0 in
        for trial = 1 to trials do
          let seed = Int64.of_int ((trial * 7919) + t) in
          let cfg =
            Radio.Config.make ~n ~channels ~t ~seed ~max_rounds:20_000_000
              ~record_transcript:true ()
          in
          let adversary board =
            if adv_name = "random" then
              Radio.Adversary.random_jammer
                (Prng.Rng.create (Int64.of_int (trial * 13)))
                ~channels ~budget:t
            else
              Ame.Attacks.schedule_jammer board ~channels ~budget:t
                ~prefer:Ame.Attacks.Prefer_edges
          in
          let o =
            Ame.Fame.run ~cfg ~pairs ~messages:Common.default_messages ~adversary ()
          in
          if o.Ame.Fame.diverged then incr divergences;
          (match o.Ame.Fame.disruption_vc with
           | Some vc -> worst_vc := max !worst_vc vc
           | None -> ());
          delivered_total := !delivered_total + List.length o.Ame.Fame.delivered;
          audit_violations :=
            !audit_violations
            + List.length
                (Radio.Auditor.audit ~channels ~budget:t
                   o.Ame.Fame.engine.Radio.Engine.transcript)
        done;
        [ string_of_int t; adv_name; string_of_int trials;
          string_of_int !worst_vc; string_of_int t;
          Printf.sprintf "%d/%d" !divergences trials;
          string_of_int !audit_violations;
          Printf.sprintf "%.1f"
            (float_of_int !delivered_total /. float_of_int trials) ])
      configs
  in
  Common.fmt_table fmt
    ~header:
      [ "t"; "adversary"; "trials"; "worst vc"; "bound"; "divergences"; "audit violations";
        "avg delivered" ]
    rows
