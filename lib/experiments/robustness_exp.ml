type trial_outcome = {
  diverged : bool;
  vc : int option;
  delivered : int;
  violations : int;
  rounds : int;
}

let one_trial ~t ~adv_name ~n ~channels ~pairs ~trial =
  let seed = Int64.of_int ((trial * 7919) + t) in
  let cfg =
    Radio.Config.make ~n ~channels ~t ~seed ~max_rounds:Radio.Config.default_max_rounds
      ~record_transcript:true ()
  in
  let adversary board =
    if adv_name = "random" then
      Radio.Adversary.random_jammer
        (Prng.Rng.create (Int64.of_int (trial * 13)))
        ~channels ~budget:t
    else
      Ame.Attacks.schedule_jammer board ~channels ~budget:t
        ~prefer:Ame.Attacks.Prefer_edges
  in
  let o = Ame.Fame.run ~cfg ~pairs ~messages:Common.default_messages ~adversary () in
  { diverged = o.Ame.Fame.diverged;
    vc = o.Ame.Fame.disruption_vc;
    delivered = List.length o.Ame.Fame.delivered;
    violations =
      List.length
        (Radio.Auditor.audit ~channels ~budget:t o.Ame.Fame.engine.Radio.Engine.transcript);
    rounds = o.Ame.Fame.engine.Radio.Engine.rounds_used }

let e16 ~quick ~jobs =
  let trials = if quick then 5 else 30 in
  let configs =
    if quick then [ (1, "random") ]
    else [ (1, "random"); (1, "schedule"); (2, "random"); (2, "schedule") ]
  in
  (* Each grid point returns (row, rounds); the fold happens after the
     merge so nothing mutates shared state from pool tasks. *)
  let outcomes =
    Common.sweep ~jobs
      (fun (t, adv_name) ->
        let channels = t + 1 in
        let n =
          Ame.Params.nodes_required Ame.Params.default ~channels_used:channels ~budget:t
            ~channels
          + 4
        in
        let pairs = Rgraph.Workload.disjoint_pairs ~n ~count:(3 * t + 2) in
        (* The whp sweep: every trial derives its RNG from an explicit seed,
           so the worst-case fold below is independent of domain scheduling. *)
        let outcomes =
          Common.replicates ~jobs ~trials (fun trial ->
              one_trial ~t ~adv_name ~n ~channels ~pairs ~trial)
        in
        let worst_vc =
          List.fold_left (fun acc o -> match o.vc with Some v -> max acc v | None -> acc) 0
            outcomes
        in
        let divergences =
          List.length (List.filter (fun o -> o.diverged) outcomes)
        in
        let audit_violations = List.fold_left (fun acc o -> acc + o.violations) 0 outcomes in
        let delivered_total = List.fold_left (fun acc o -> acc + o.delivered) 0 outcomes in
        let rounds = List.fold_left (fun acc o -> acc + o.rounds) 0 outcomes in
        ( [ string_of_int t; adv_name; string_of_int trials;
            string_of_int worst_vc; string_of_int t;
            Printf.sprintf "%d/%d" divergences trials;
            string_of_int audit_violations;
            Printf.sprintf "%.1f" (float_of_int delivered_total /. float_of_int trials) ],
          rounds ))
      configs
  in
  let rows = List.map fst outcomes in
  let total = List.fold_left (fun acc (_, r) -> acc + r) 0 outcomes in
  Common.result ~total_rounds:total
    [ Common.Blank;
      Common.text "== E16 / whp claims under repetition: worst case over many seeds ==";
      Common.Blank;
      Common.table
        ~header:
          [ "t"; "adversary"; "trials"; "worst vc"; "bound"; "divergences";
            "audit violations"; "avg delivered" ]
        rows ]
