let e14 ~quick ~jobs =
  let t = 1 in
  let msgs_per_stream = 4 in
  let configs =
    if quick then [ (2, 2) ]
    else [ (2, 1); (2, 2); (2, 4); (4, 1); (4, 2); (4, 4); (4, 6); (8, 4); (8, 6) ]
  in
  let outcomes =
    Common.sweep ~jobs
      (fun (channels, pair_count) ->
        let n = max 16 (2 * pair_count + 2) in
        let cfg =
          Radio.Config.make ~n ~channels ~t
            ~seed:(Int64.of_int ((channels * 100) + pair_count)) ()
        in
        let keys (v, w) =
          Crypto.Sha256.digest (Printf.sprintf "pair-%d-%d" (min v w) (max v w))
        in
        let streams =
          List.init pair_count (fun i ->
              { Secure_channel.Unicast.sender = 2 * i;
                receiver = (2 * i) + 1;
                payloads = List.init msgs_per_stream (Printf.sprintf "s%d-%d" i) })
        in
        let o =
          Secure_channel.Unicast.run_streams ~cfg ~keys ~streams
            ~adversary:
              (Common.random_jam ~seed:(Int64.of_int (channels + pair_count)) ~channels
                 ~budget:t)
            ()
        in
        let rate =
          100.0 *. float_of_int o.Secure_channel.Unicast.delivered_total
          /. float_of_int (max 1 o.Secure_channel.Unicast.offered_total)
        in
        ( [ string_of_int channels; string_of_int pair_count;
            string_of_int o.Secure_channel.Unicast.offered_total;
            string_of_int o.Secure_channel.Unicast.delivered_total;
            Printf.sprintf "%.0f%%" rate;
            string_of_int o.Secure_channel.Unicast.engine.Radio.Engine.rounds_used ],
          o.Secure_channel.Unicast.engine.Radio.Engine.rounds_used ))
      configs
  in
  Common.result ~total_rounds:(List.fold_left (fun acc (_, r) -> acc + r) 0 outcomes)
    [ Common.Blank;
      Common.text "== E14 / Section 8 open question 4: concurrent pairwise channels ==";
      Common.text
        "delivery rate vs concurrent pairs; self-collisions + jamming degrade narrow C first";
      Common.Blank;
      Common.table
        ~header:[ "C"; "pairs"; "offered"; "delivered"; "rate"; "rounds" ]
        (List.map fst outcomes) ]
