(** Experiment E8: the Section 6 group-key protocol.

    Measures total setup rounds against the claimed Theta(n t^3 log n) and
    verifies the agreement guarantee: at least n - t nodes adopt one common
    key, nobody adopts a different one. *)

val e8 : quick:bool -> jobs:int -> Common.result
