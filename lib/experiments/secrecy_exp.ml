type trial_tally = {
  agreed : int;
  overheard : int;
  breached : bool;
  mismatched : bool;
}

let e17 ~quick ~jobs =
  let trials = if quick then 5 else 40 in
  let configs =
    if quick then [ (4, 1, 60) ] else [ (3, 1, 60); (4, 1, 60); (4, 2, 60); (6, 2, 90) ]
  in
  (* Each grid point returns (row, rounds); the fold happens after the
     merge so nothing mutates shared state from pool tasks. *)
  let points =
    Common.sweep ~jobs
      (fun (channels, eaves, rounds) ->
        let outcomes =
          Common.replicates ~jobs ~trials (fun trial ->
              let cfg =
                Radio.Config.make ~n:6 ~channels ~t:(min eaves (channels - 1))
                  ~seed:(Int64.of_int ((trial * 101) + channels)) ()
              in
              let o =
                Ame.Secret_bits.run ~rounds ~cfg ~sender:0 ~receiver:1
                  ~eavesdrop_channels:eaves ()
              in
              { agreed = o.Ame.Secret_bits.agreed;
                overheard = o.Ame.Secret_bits.overheard;
                breached = o.Ame.Secret_bits.breached;
                mismatched = o.Ame.Secret_bits.sender_key <> o.Ame.Secret_bits.receiver_key })
        in
        let agreed_total = List.fold_left (fun acc o -> acc + o.agreed) 0 outcomes in
        let overheard_total = List.fold_left (fun acc o -> acc + o.overheard) 0 outcomes in
        let breaches = List.length (List.filter (fun o -> o.breached) outcomes) in
        let mismatches = List.length (List.filter (fun o -> o.mismatched) outcomes) in
        let frac =
          if agreed_total = 0 then 0.0
          else float_of_int overheard_total /. float_of_int agreed_total
        in
        ( [ string_of_int channels; string_of_int eaves; string_of_int rounds;
            Printf.sprintf "%.1f" (float_of_int agreed_total /. float_of_int trials);
            Printf.sprintf "%.2f" frac;
            Printf.sprintf "%.2f" (float_of_int eaves /. float_of_int channels);
            Printf.sprintf "%d/%d" breaches trials;
            string_of_int mismatches ],
          rounds * trials ))
      configs
  in
  let rows = List.map fst points in
  let total = List.fold_left (fun acc (_, r) -> acc + r) 0 points in
  Common.result ~total_rounds:total
    [ Common.Blank;
      Common.text
        "== E17 / Section 8 open question 2: secrets against a t-channel eavesdropper ==";
      Common.text
        "breach = eavesdropper overheard EVERY agreed value; expectation ~ (t/C)^agreed";
      Common.Blank;
      Common.table
        ~header:
          [ "C"; "eavesdrop ch"; "rounds"; "avg agreed"; "overheard frac"; "t/C"; "breaches";
            "key mismatches" ]
        rows ]
