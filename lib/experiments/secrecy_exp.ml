let e17 ~quick fmt =
  Format.fprintf fmt
    "@.== E17 / Section 8 open question 2: secrets against a t-channel eavesdropper ==@.";
  Format.fprintf fmt
    "breach = eavesdropper overheard EVERY agreed value; expectation ~ (t/C)^agreed@.@.";
  let trials = if quick then 5 else 40 in
  let configs =
    if quick then [ (4, 1, 60) ] else [ (3, 1, 60); (4, 1, 60); (4, 2, 60); (6, 2, 90) ]
  in
  let rows =
    List.map
      (fun (channels, eaves, rounds) ->
        let agreed_total = ref 0 and overheard_total = ref 0 and breaches = ref 0 in
        let mismatches = ref 0 in
        for trial = 1 to trials do
          let cfg =
            Radio.Config.make ~n:6 ~channels ~t:(min eaves (channels - 1))
              ~seed:(Int64.of_int ((trial * 101) + channels)) ()
          in
          let o =
            Ame.Secret_bits.run ~rounds ~cfg ~sender:0 ~receiver:1
              ~eavesdrop_channels:eaves ()
          in
          agreed_total := !agreed_total + o.Ame.Secret_bits.agreed;
          overheard_total := !overheard_total + o.Ame.Secret_bits.overheard;
          if o.Ame.Secret_bits.breached then incr breaches;
          if o.Ame.Secret_bits.sender_key <> o.Ame.Secret_bits.receiver_key then
            incr mismatches
        done;
        let frac =
          if !agreed_total = 0 then 0.0
          else float_of_int !overheard_total /. float_of_int !agreed_total
        in
        [ string_of_int channels; string_of_int eaves; string_of_int rounds;
          Printf.sprintf "%.1f" (float_of_int !agreed_total /. float_of_int trials);
          Printf.sprintf "%.2f" frac;
          Printf.sprintf "%.2f" (float_of_int eaves /. float_of_int channels);
          Printf.sprintf "%d/%d" !breaches trials;
          string_of_int !mismatches ])
      configs
  in
  Common.fmt_table fmt
    ~header:
      [ "C"; "eavesdrop ch"; "rounds"; "avg agreed"; "overheard frac"; "t/C"; "breaches";
        "key mismatches" ]
    rows
