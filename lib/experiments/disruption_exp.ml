let triangles ~t = List.init t (fun i -> [ 3 * i; (3 * i) + 1; (3 * i) + 2 ])

let triangle_pairs ~t =
  List.concat_map (fun tri -> Rgraph.Workload.complete_on tri) (triangles ~t)

let triple_of ~t v = if v < 3 * t then Some (v / 3) else None

let fame_row ~name ~t ~pairs ~adversary ~seed =
  let channels = t + 1 in
  let n =
    max (Common.fame_nodes_for ~t ~channels_used:channels ~channels)
      (2 + List.fold_left (fun acc (v, w) -> max acc (max v w)) 0 pairs)
  in
  let p = Common.run_fame ~seed ~n ~channels ~t ~pairs ~adversary () in
  ( [ "f-AME"; name; string_of_int t; string_of_int (List.length pairs);
      string_of_int p.Common.delivered; string_of_int p.Common.failed;
      (match p.Common.vc with Some v -> string_of_int v | None -> "-");
      string_of_int t ],
    p.Common.rounds )

let direct_row ~name ~t ~pairs ~adversary ~seed =
  let channels = t + 1 in
  let n =
    max (Common.fame_nodes_for ~t ~channels_used:channels ~channels)
      (2 + List.fold_left (fun acc (v, w) -> max acc (max v w)) 0 pairs)
  in
  let cfg =
    Radio.Config.make ~seed ~n ~channels ~t ~max_rounds:Radio.Config.default_max_rounds ()
  in
  let o =
    Ame.Direct.run ~cfg ~pairs ~messages:Common.default_messages ~adversary ()
  in
  ( [ "direct"; name; string_of_int t; string_of_int (List.length pairs);
      string_of_int (List.length o.Ame.Direct.delivered);
      string_of_int (List.length o.Ame.Direct.failed);
      (match o.Ame.Direct.disruption_vc with Some v -> string_of_int v | None -> "-");
      string_of_int (2 * t) ],
    o.Ame.Direct.engine.Radio.Engine.rounds_used )

let header = [ "protocol"; "adversary"; "t"; "|E|"; "delivered"; "failed"; "vc"; "bound" ]

(* Each row is one protocol run with an explicit seed: an independent task
   for the domain pool. *)
let run_rows ~jobs specs =
  let outcomes = Common.sweep ~jobs (fun spec -> spec ()) specs in
  (List.map fst outcomes, List.fold_left (fun acc (_, r) -> acc + r) 0 outcomes)

let e6 ~quick ~jobs =
  let ts = if quick then [ 2 ] else [ 1; 2; 3 ] in
  let specs =
    List.concat_map
      (fun t ->
        let channels = t + 1 in
        let n = Common.fame_nodes_for ~t ~channels_used:channels ~channels in
        let disjoint = Rgraph.Workload.disjoint_pairs ~n ~count:(4 * t) in
        let clustered = triangle_pairs ~t in
        [ (fun () ->
            fame_row ~name:"schedule-jam" ~t ~pairs:disjoint
              ~adversary:(Common.schedule_jam ~channels ~budget:t)
              ~seed:(Int64.of_int (100 + t)));
          (fun () ->
            fame_row ~name:"random-jam" ~t ~pairs:disjoint
              ~adversary:(fun _ ->
                Common.random_jam ~seed:(Int64.of_int (200 + t)) ~channels ~budget:t)
              ~seed:(Int64.of_int (300 + t)));
          (fun () ->
            fame_row ~name:"triangle" ~t ~pairs:clustered
              ~adversary:(fun board ->
                Ame.Attacks.triangle_jammer board ~channels ~budget:t
                  ~triple_of:(triple_of ~t))
              ~seed:(Int64.of_int (400 + t))) ])
      ts
  in
  let rows, total_rounds = run_rows ~jobs specs in
  Common.result ~total_rounds
    [ Common.Blank;
      Common.text "== E6 / Theorems 2+6: f-AME disruption cover <= t (optimal) ==";
      Common.Blank; Common.table ~header rows ]

let e12 ~quick ~jobs =
  let ts = if quick then [ 2 ] else [ 1; 2; 3 ] in
  let specs =
    List.concat_map
      (fun t ->
        let channels = t + 1 in
        let pairs = triangle_pairs ~t in
        let adversary board =
          Ame.Attacks.triangle_jammer board ~channels ~budget:t ~triple_of:(triple_of ~t)
        in
        [ (fun () -> direct_row ~name:"triangle" ~t ~pairs ~adversary ~seed:(Int64.of_int (500 + t)));
          (fun () -> fame_row ~name:"triangle" ~t ~pairs ~adversary ~seed:(Int64.of_int (600 + t))) ])
      ts
  in
  let rows, total_rounds = run_rows ~jobs specs in
  Common.result ~total_rounds
    [ Common.Blank;
      Common.text "== E12 / ablation: surrogates on vs off under the triangle adversary ==";
      Common.text
        "direct exchange (no surrogates) is cornered into vertex cover 2t; f-AME stays at <= t";
      Common.Blank; Common.table ~header rows ]
