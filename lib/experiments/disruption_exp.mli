(** Experiments E6 and E12: disruptability.

    E6: f-AME's disruption graph has vertex cover <= t under every adversary
    tried (Theorem 6), while Theorem 2 says no protocol can beat t — so
    f-AME is optimally resilient.

    E12 (ablation): remove the surrogate mechanism (the direct baseline) and
    the triangle-isolating adversary of Section 5 forces a disruption graph
    with vertex cover 2t — exactly the gap the paper's second insight
    closes. *)

val e6 : quick:bool -> jobs:int -> Common.result

val e12 : quick:bool -> jobs:int -> Common.result
