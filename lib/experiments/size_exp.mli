(** Experiment E11: the Section 5.6 message-size optimization.

    Basic f-AME frames carry whole vectors — Theta(k) payloads for a node
    with k destinations — while the optimized protocol's largest honest
    frame holds one payload plus two hashes, independent of k, even under a
    spoof flood aimed at the reconstruction machinery. *)

val e11 : quick:bool -> jobs:int -> Common.result
