(** Experiment E7: the Theorem 2 impossibility, measured.

    Against a purely randomized exchange, the simulating adversary makes
    destinations accept the fake payload about as often as the genuine one
    (the two executions are statistically indistinguishable).  Against
    f-AME, where every receive channel is occupied by a deterministically
    scheduled honest broadcaster, zero spoofed frames are ever accepted. *)

val e7 : quick:bool -> jobs:int -> Common.result
