let log2 x = log x /. log 2.0

(* -- structured results ------------------------------------------------ *)

type block =
  | Text of string
  | Blank
  | Table of { header : string list; rows : string list list }

type result = {
  blocks : block list;
  total_rounds : int;
}

let result ?(total_rounds = 0) blocks = { blocks; total_rounds }

let text s = Text s

let textf f = Printf.ksprintf (fun s -> Text s) f

let table ~header rows = Table { header; rows }

let fmt_table fmt ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell -> Format.fprintf fmt "%-*s  " (List.nth widths c) cell)
      row;
    Format.fprintf fmt "@."
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let render_block fmt = function
  | Text s -> Format.fprintf fmt "%s@." s
  | Blank -> Format.fprintf fmt "@."
  | Table { header; rows } -> fmt_table fmt ~header rows

let render fmt r = List.iter (render_block fmt) r.blocks

let render_to_string r =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  render fmt r;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(* -- replicate fan-out ------------------------------------------------- *)

let sweep ~jobs f xs = Parallel.map_ordered ~jobs f xs

let replicates ~jobs ~trials f = sweep ~jobs f (List.init trials (fun i -> i + 1))

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let pow2_floor x =
  assert (x >= 1);
  let rec go p = if p * 2 <= x then go (p * 2) else p in
  go 1

let fame_nodes_for ~t ~channels_used ~channels =
  let required =
    Ame.Params.nodes_required Ame.Params.default ~channels_used ~budget:t ~channels
  in
  required + (2 * channels_used) + 4

let schedule_jam ~channels ~budget board =
  Ame.Attacks.schedule_jammer board ~channels ~budget ~prefer:Ame.Attacks.Prefer_edges

let random_jam ~seed ~channels ~budget =
  Radio.Adversary.random_jammer (Prng.Rng.create seed) ~channels ~budget

let default_messages (v, w) = Printf.sprintf "m-%d-%d" v w

type fame_point = {
  rounds : int;
  moves : int;
  delivered : int;
  failed : int;
  vc : int option;
  diverged : bool;
}

let run_fame ?channels_used ?feedback_mode ?adversary ~seed ~n ~channels ~t ~pairs () =
  let cfg =
    Radio.Config.make ~seed ~n ~channels ~t ~max_rounds:Radio.Config.default_max_rounds ()
  in
  let adversary =
    Option.value adversary ~default:(schedule_jam ~channels ~budget:t)
  in
  let o =
    Ame.Fame.run ?channels_used ?feedback_mode ~cfg ~pairs
      ~messages:default_messages ~adversary ()
  in
  { rounds = o.Ame.Fame.engine.Radio.Engine.rounds_used;
    moves = o.Ame.Fame.moves;
    delivered = List.length o.Ame.Fame.delivered;
    failed = List.length o.Ame.Fame.failed;
    vc = o.Ame.Fame.disruption_vc;
    diverged = o.Ame.Fame.diverged }
