(** Experiment E5: Lemma 5 — communication-feedback terminates in
    O(t^2 log n) rounds and gets every node to agree on the disrupted-channel
    set with high probability.

    Sweeps the repetition multiplier beta to expose the failure-rate cliff:
    at the default beta the observed failure rate is 0 across all trials;
    starving the routine (beta < 1) makes disagreement appear, as the
    Chernoff argument predicts. *)

val e5 : quick:bool -> jobs:int -> Common.result

val agreement_trial :
  beta:float -> t:int -> n:int -> seed:int64 -> bool * int
(** One standalone invocation; returns (all nodes agreed with ground truth,
    rounds consumed).  Exposed for tests and benches. *)
