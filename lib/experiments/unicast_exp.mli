(** Experiment E14: concurrent point-to-point channels (Section 8, open
    question 4).

    Multiple pairs holding pairwise keys run private hopping channels
    simultaneously.  Throughput scales with the number of pairs until
    self-collisions (two pairs hopping onto the same channel) and the
    jammer's t channels eat the gains — the crossover moves right as C
    grows. *)

val e14 : quick:bool -> jobs:int -> Common.result
