let e9 ~quick ~jobs =
  let scenarios = if quick then [ (1, 20) ] else [ (1, 20); (2, 30); (3, 40) ] in
  let messages_per_run = 6 in
  let outcomes =
    Common.sweep ~jobs
      (fun (t, n) ->
        let channels = t + 1 in
        let cfg =
          Radio.Config.make ~seed:(Int64.of_int ((t * 31) + n)) ~n ~channels ~t
            ~record_transcript:true ()
        in
        let key = Crypto.Sha256.digest (Printf.sprintf "group-key-%d-%d" t n) in
        let spec = Secure_channel.Service.make_spec ~key ~cfg () in
        let holders = List.init (n - t) Fun.id in
        let sends =
          List.init messages_per_run (fun i -> (i, i mod (n - t), Printf.sprintf "msg-%d" i))
        in
        let o =
          Secure_channel.Service.run_workload ~cfg ~key_holders:holders ~spec ~sends
            ~adversary:(Common.random_jam ~seed:(Int64.of_int (n * 7)) ~channels ~budget:t)
            ()
        in
        let full_deliveries =
          List.length
            (List.filter
               (fun (d : Secure_channel.Service.delivery) ->
                 List.length d.received_by = n - t - 1)
               o.Secure_channel.Service.deliveries)
        in
        let norm =
          float_of_int o.Secure_channel.Service.real_rounds_per_emulated
          /. (float_of_int t *. Common.log2 (float_of_int n))
        in
        ( [ string_of_int t; string_of_int n;
            string_of_int o.Secure_channel.Service.real_rounds_per_emulated;
            Printf.sprintf "%.2f" norm;
            Printf.sprintf "%d/%d" full_deliveries messages_per_run;
            string_of_int o.Secure_channel.Service.plaintext_leaks;
            string_of_int o.Secure_channel.Service.forged_accepts ],
          o.Secure_channel.Service.real_rounds_per_emulated * messages_per_run ))
      scenarios
  in
  Common.result ~total_rounds:(List.fold_left (fun acc (_, r) -> acc + r) 0 outcomes)
    [ Common.Blank;
      Common.text "== E9 / Section 7: emulated secure channel, Theta(t log n) per round ==";
      Common.Blank;
      Common.table
        ~header:
          [ "t"; "n"; "rounds/msg"; "norm/(t lg n)"; "fully delivered"; "plaintext leaks";
            "forged accepts" ]
        (List.map fst outcomes) ]
