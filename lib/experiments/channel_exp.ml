(* E9 runs the Section 7 secure channel as a 1-channel special case of the
   multiplexed service: one logical broadcast group of the n-t key holders
   (Repeat transport, Theta(t log n) repetitions per emulated round) with
   the t key outsiders snooping and forging from inside the network. *)

module Mux = Secure_channel.Mux

let e9 ~quick ~jobs =
  let scenarios = if quick then [ (1, 20) ] else [ (1, 20); (2, 30); (3, 40) ] in
  let messages_per_run = 6 in
  let outcomes =
    Common.sweep ~jobs
      (fun (t, n) ->
        let channels = t + 1 in
        let group = n - t in
        let reps =
          max 1
            (int_of_float
               (ceil (4.0 *. float_of_int (t + 1) *. Common.log2 (float_of_int (max n 4)))))
        in
        let key = Crypto.Sha256.digest (Printf.sprintf "group-key-%d-%d" t n) in
        let spec =
          Mux.make ~key ~logical:1 ~phys:channels ~budget:t
            ~transport:(Mux.Repeat { reps; group })
            ~rounds:messages_per_run ~outsiders:t
            ~seed:(Int64.of_int ((t * 31) + n))
            ()
        in
        let r =
          Mux.run spec
            ~adversary:(Common.random_jam ~seed:(Int64.of_int (n * 7)) ~channels ~budget:t)
        in
        let rpe = r.Mux.real_rounds_per_emulated in
        let norm = float_of_int rpe /. (float_of_int t *. Common.log2 (float_of_int n)) in
        ( [ string_of_int t; string_of_int n; string_of_int rpe;
            Printf.sprintf "%.2f" norm;
            Printf.sprintf "%d/%d" r.Mux.stats.Mux.full_deliveries
              r.Mux.stats.Mux.messages_done;
            string_of_int r.Mux.stats.Mux.plaintext_leaks;
            string_of_int r.Mux.stats.Mux.forged_accepts ],
          rpe * messages_per_run ))
      scenarios
  in
  Common.result ~total_rounds:(List.fold_left (fun acc (_, r) -> acc + r) 0 outcomes)
    [ Common.Blank;
      Common.text "== E9 / Section 7: emulated secure channel, Theta(t log n) per round ==";
      Common.Blank;
      Common.table
        ~header:
          [ "t"; "n"; "rounds/msg"; "norm/(t lg n)"; "fully delivered"; "plaintext leaks";
            "forged accepts" ]
        (List.map fst outcomes) ]
