(** A minimal JSON value, serializer, and parser (no external dependencies).

    What the structured-results emitter and the benchmark comparison tool
    need: construction, compact always-valid printing, and parsing of the
    documents this module emits.  Non-finite floats serialize as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parse one JSON document; [Error msg] on malformed input or trailing
    garbage.  Integral numbers parse as [Int], anything with a fraction or
    exponent as [Float]. *)

(** {1 Accessors} — shallow, [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]. *)

val to_list : t -> t list option
val to_string_opt : t -> string option
val to_int_opt : t -> int option
val to_bool_opt : t -> bool option

val to_float_opt : t -> float option
(** Accepts [Int] too (integral-valued floats round-trip as [Int]). *)
