(** A minimal JSON value and serializer (no external dependencies).

    Only what the structured-results emitter needs: construction and
    compact, always-valid printing.  Non-finite floats serialize as
    [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
