let e11 ~quick ~jobs =
  let t = 1 in
  let channels = 2 in
  let fan_outs = if quick then [ 4 ] else [ 2; 4; 8; 12 ] in
  let outcomes =
    Common.sweep ~jobs
      (fun k ->
        let sources = [ 0; 1; 2; 3 ] in
        let dests = List.init k (fun i -> 10 + i) in
        let pairs = List.concat_map (fun v -> List.map (fun w -> (v, w)) dests) sources in
        let n = max 24 (12 + k) in
        let cfg = Radio.Config.make ~seed:(Int64.of_int (k * 3)) ~n ~channels ~t () in
        let messages (v, w) = Printf.sprintf "payload-%02d-%02d-%s" v w (String.make 12 'p') in
        let fame_adversary = Common.schedule_jam ~channels ~budget:t in
        let basic = Ame.Fame.run ~cfg ~pairs ~messages ~adversary:fame_adversary () in
        let compact =
          Ame.Compact.run ~cfg ~pairs ~messages
            ~gossip_adversary:(fun cal ->
              Ame.Compact.chain_spoofer (Prng.Rng.create (Int64.of_int (k * 7))) cal
                ~channels ~budget:t)
            ~fame_adversary ()
        in
        let basic_rounds = basic.Ame.Fame.engine.Radio.Engine.rounds_used in
        let compact_rounds =
          compact.Ame.Compact.gossip_engine.Radio.Engine.rounds_used
          + compact.Ame.Compact.fame.Ame.Fame.engine.Radio.Engine.rounds_used
        in
        ( [ [ "basic"; string_of_int k; string_of_int (List.length pairs);
              string_of_int
                basic.Ame.Fame.engine.Radio.Engine.stats.Radio.Transcript.Stats.max_payload;
              string_of_int (List.length basic.Ame.Fame.delivered);
              string_of_int basic_rounds; "-" ];
            [ "optimized"; string_of_int k; string_of_int (List.length pairs);
              string_of_int compact.Ame.Compact.max_honest_payload;
              string_of_int (List.length compact.Ame.Compact.delivered);
              string_of_int compact_rounds;
              string_of_int compact.Ame.Compact.reconstruction_failures ] ],
          basic_rounds + compact_rounds ))
      fan_outs
  in
  Common.result ~total_rounds:(List.fold_left (fun acc (_, r) -> acc + r) 0 outcomes)
    [ Common.Blank;
      Common.text "== E11 / Section 5.6: honest frame size, basic vs optimized ==";
      Common.Blank;
      Common.table
        ~header:
          [ "protocol"; "fan-out k"; "|E|"; "max honest frame (B)"; "delivered"; "rounds";
            "recon failures" ]
        (List.concat_map fst outcomes) ]
