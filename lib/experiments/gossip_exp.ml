let rumor i = Printf.sprintf "rumor-%d" i

let e10 ~quick ~jobs =
  let t = 1 in
  let channels = 2 in
  let ns = if quick then [ 20 ] else [ 20; 28; 36; 44 ] in
  let outcomes =
    Common.sweep ~jobs
      (fun n ->
        (* Gossip under a spoofing adversary that plants fake rumors. *)
        let cfg = Radio.Config.make ~seed:(Int64.of_int n) ~n ~channels ~t () in
        let spoof_rng = Prng.Rng.create (Int64.of_int (n * 13)) in
        let adversary =
          Radio.Adversary.spoofer spoof_rng ~channels ~budget:t
            ~forge:(fun ~round chan ->
              Radio.Frame.Vector
                { owner = chan;
                  entries = [ ((round mod n), Printf.sprintf "FAKE-%d" round) ] })
        in
        let g = Ame.Gossip.run ~cfg ~rumors:rumor ~adversary () in
        let gossip_rounds =
          match g.Ame.Gossip.rounds_to_completion with
          | Some r -> string_of_int r
          | None -> ">" ^ string_of_int g.Ame.Gossip.engine.Radio.Engine.rounds_used
        in
        (* f-AME on a sparse pair set of the same population. *)
        let pairs = Rgraph.Workload.disjoint_pairs ~n ~count:(n / 4) in
        let p =
          Common.run_fame ~seed:(Int64.of_int (n + 1)) ~n ~channels ~t ~pairs ()
        in
        ( [ [ "gossip"; string_of_int n; "all-to-all"; gossip_rounds;
              string_of_int g.Ame.Gossip.fake_rumors_accepted ];
            [ "f-AME"; string_of_int n;
              Printf.sprintf "%d pairs" (List.length pairs); string_of_int p.Common.rounds;
              "0" ] ],
          g.Ame.Gossip.engine.Radio.Engine.rounds_used + p.Common.rounds ))
      ns
  in
  Common.result ~total_rounds:(List.fold_left (fun acc (_, r) -> acc + r) 0 outcomes)
    [ Common.Blank; Common.text "== E10 / gossip baseline [13] vs f-AME (t = 1, C = 2) ==";
      Common.Blank;
      Common.table
        ~header:[ "protocol"; "n"; "workload"; "rounds"; "fake payloads accepted" ]
        (List.concat_map fst outcomes) ]
