let agreement_trial ~beta ~t ~n ~seed =
  let channels = t + 1 in
  let cfg = Radio.Config.make ~seed ~n ~channels ~t () in
  let params = { Ame.Params.default with Ame.Params.beta_feedback = beta } in
  let reps = Ame.Params.feedback_reps params ~channels ~budget:t ~n in
  (* Witness sets: channels blocks of C nodes each; requires n >= C^2. *)
  if n < channels * channels then invalid_arg "agreement_trial: n < C^2";
  let witnesses =
    Array.init channels (fun c -> Array.init channels (fun i -> (c * channels) + i))
  in
  (* Ground-truth per-channel flags, deterministic from the seed. *)
  let truth_rng = Prng.Rng.create (Int64.logxor seed 0x7EEDL) in
  let truth = Array.init channels (fun _ -> Prng.Rng.bool truth_rng) in
  let truth_set =
    List.filter (fun c -> truth.(c)) (List.init channels Fun.id)
  in
  let outputs = Array.make n [] in
  let node_body (ctx : Radio.Engine.ctx) =
    let id = ctx.id in
    let my_flag =
      let flag = ref false in
      Array.iteri
        (fun c group -> if Array.exists (fun w -> w = id) group then flag := truth.(c))
        witnesses;
      !flag
    in
    outputs.(id) <-
      Ame.Feedback.run ~my_id:id ~rng:ctx.rng ~channels ~reps ~witnesses
        ~witness_size:channels ~my_flag
  in
  let adversary =
    Radio.Adversary.random_jammer (Prng.Rng.create (Int64.add seed 17L)) ~channels ~budget:t
  in
  let result = Radio.Engine.run_nodes cfg ~adversary node_body in
  let agreed = Array.for_all (fun d -> d = truth_set) outputs in
  (agreed, result.Radio.Engine.rounds_used)

let e5 ~quick ~jobs =
  let betas = if quick then [ 0.25; 3.0 ] else [ 0.25; 0.5; 1.0; 2.0; 3.0 ] in
  let trials = if quick then 10 else 40 in
  let scenarios = if quick then [ (2, 30) ] else [ (1, 20); (2, 30); (3, 40) ] in
  (* Flatten the (scenario, beta) grid so the sweep sees every point; each
     point returns (row, rounds) and the fold happens after the merge so
     nothing mutates shared state from pool tasks. *)
  let grid =
    List.concat_map (fun (t, n) -> List.map (fun beta -> (t, n, beta)) betas) scenarios
  in
  let points =
    Common.sweep ~jobs
      (fun (t, n, beta) ->
        (* Each trial is an independent replicate keyed by an explicit
           seed, so the fan-out over domains cannot perturb results. *)
        let outcomes =
          Common.replicates ~jobs ~trials (fun trial ->
              agreement_trial ~beta ~t ~n ~seed:(Int64.of_int ((trial * 37) + (t * 1009))))
        in
        let failures =
          List.length (List.filter (fun (agreed, _) -> not agreed) outcomes)
        in
        let rounds = List.fold_left (fun _ (_, r) -> r) 0 outcomes in
        let rounds_sum = List.fold_left (fun acc (_, r) -> acc + r) 0 outcomes in
        let norm =
          float_of_int rounds
          /. (float_of_int (t * t) *. Common.log2 (float_of_int n))
        in
        ( [ string_of_int t; string_of_int n; Printf.sprintf "%.2f" beta;
            string_of_int rounds; Printf.sprintf "%.2f" norm;
            Printf.sprintf "%d/%d" failures trials ],
          rounds_sum ))
      grid
  in
  let rows = List.map fst points in
  let total = List.fold_left (fun acc (_, r) -> acc + r) 0 points in
  Common.result ~total_rounds:total
    [ Common.Blank;
      Common.text "== E5 / Lemma 5: communication-feedback agreement and cost ==";
      Common.text
        "per invocation: rounds = C * reps = Theta(t^2 log n); failures should vanish as beta grows";
      Common.Blank;
      Common.table
        ~header:[ "t"; "n"; "beta"; "rounds"; "rounds/(t^2 lg n)"; "disagreements" ]
        rows ]
