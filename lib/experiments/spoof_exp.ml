type naive_tally = { fooled : int; genuine : int; nothing : int }

let e7 ~quick ~jobs =
  let trials = if quick then 10 else 50 in
  let ts = if quick then [ 2 ] else [ 1; 2; 3 ] in
  (* Each t returns (rows, rounds); the fold happens after the merge so
     nothing mutates shared state from pool tasks. *)
  let points =
    Common.sweep ~jobs
      (fun t ->
        let channels = t + 1 in
        let n = Common.fame_nodes_for ~t ~channels_used:channels ~channels in
        let pairs = Rgraph.Workload.disjoint_pairs ~n ~count:(3 * t) in
        let attacked = List.filteri (fun i _ -> i < t) pairs in
        (* Naive protocol: independent replicates per trial seed. *)
        let naive_tallies =
          Common.replicates ~jobs ~trials (fun trial ->
              let seed = Int64.of_int ((trial * 131) + t) in
              let cfg = Radio.Config.make ~seed ~n ~channels ~t () in
              let adversary =
                Ame.Naive.simulating_adversary
                  (Prng.Rng.create (Int64.of_int ((trial * 523) + t)))
                  ~pairs ~channels ~budget:t
              in
              let r =
                Ame.Naive.run ~rounds:80 ~cfg ~pairs ~messages:Common.default_messages
                  ~adversary ()
              in
              List.fold_left
                (fun acc (pair, verdict) ->
                  if List.mem pair attacked then
                    match verdict with
                    | Ame.Naive.Fooled -> { acc with fooled = acc.fooled + 1 }
                    | Ame.Naive.Genuine -> { acc with genuine = acc.genuine + 1 }
                    | Ame.Naive.Nothing -> { acc with nothing = acc.nothing + 1 }
                  else acc)
                { fooled = 0; genuine = 0; nothing = 0 }
                r.Ame.Naive.verdicts)
        in
        let tally =
          List.fold_left
            (fun acc o ->
              { fooled = acc.fooled + o.fooled;
                genuine = acc.genuine + o.genuine;
                nothing = acc.nothing + o.nothing })
            { fooled = 0; genuine = 0; nothing = 0 }
            naive_tallies
        in
        (* f-AME under the same adversary. *)
        let fame_outcomes =
          Common.replicates ~jobs ~trials:(trials / 5) (fun trial ->
              let seed = Int64.of_int ((trial * 733) + t) in
              let cfg =
                Radio.Config.make ~seed ~n ~channels ~t
                  ~max_rounds:Radio.Config.default_max_rounds ()
              in
              let adversary _board =
                Ame.Naive.simulating_adversary
                  (Prng.Rng.create (Int64.of_int ((trial * 877) + t)))
                  ~pairs ~channels ~budget:t
              in
              let o =
                Ame.Fame.run ~cfg ~pairs ~messages:Common.default_messages ~adversary ()
              in
              let fakes =
                List.length
                  (List.filter
                     (fun (pair, body) -> body <> Common.default_messages pair)
                     o.Ame.Fame.delivered)
              in
              (List.length o.Ame.Fame.delivered, fakes,
               o.Ame.Fame.engine.Radio.Engine.rounds_used))
        in
        let fame_delivered =
          List.fold_left (fun acc (d, _, _) -> acc + d) 0 fame_outcomes
        in
        let fame_fakes = List.fold_left (fun acc (_, f, _) -> acc + f) 0 fame_outcomes in
        let rounds = List.fold_left (fun acc (_, _, r) -> acc + r) 0 fame_outcomes in
        let all = trials * t in
        ( [ [ "naive"; string_of_int t; string_of_int all;
              Printf.sprintf "%d (%.0f%%)" tally.fooled
                (100.0 *. float_of_int tally.fooled /. float_of_int all);
              Printf.sprintf "%d (%.0f%%)" tally.genuine
                (100.0 *. float_of_int tally.genuine /. float_of_int all);
              string_of_int tally.nothing ];
            [ "f-AME"; string_of_int t; string_of_int fame_delivered;
              string_of_int fame_fakes; "-"; "-" ] ],
          rounds ))
      ts
  in
  let rows = List.concat_map fst points in
  let total = List.fold_left (fun acc (_, r) -> acc + r) 0 points in
  Common.result ~total_rounds:total
    [ Common.Blank; Common.text "== E7 / Theorem 2: spoof-acceptance, naive vs f-AME ==";
      Common.Blank;
      Common.table
        ~header:[ "protocol"; "t"; "outputs"; "fake accepted"; "genuine"; "none" ]
        rows ]
