let e7 ~quick fmt =
  Format.fprintf fmt "@.== E7 / Theorem 2: spoof-acceptance, naive vs f-AME ==@.@.";
  let trials = if quick then 10 else 50 in
  let ts = if quick then [ 2 ] else [ 1; 2; 3 ] in
  let rows =
    List.concat_map
      (fun t ->
        let channels = t + 1 in
        let n = Common.fame_nodes_for ~t ~channels_used:channels ~channels in
        let pairs = Rgraph.Workload.disjoint_pairs ~n ~count:(3 * t) in
        let attacked = List.filteri (fun i _ -> i < t) pairs in
        (* Naive protocol. *)
        let fooled = ref 0 and genuine = ref 0 and nothing = ref 0 in
        for trial = 1 to trials do
          let seed = Int64.of_int ((trial * 131) + t) in
          let cfg = Radio.Config.make ~seed ~n ~channels ~t () in
          let adversary =
            Ame.Naive.simulating_adversary
              (Prng.Rng.create (Int64.of_int ((trial * 523) + t)))
              ~pairs ~channels ~budget:t
          in
          let r =
            Ame.Naive.run ~rounds:80 ~cfg ~pairs ~messages:Common.default_messages
              ~adversary ()
          in
          List.iter
            (fun (pair, verdict) ->
              if List.mem pair attacked then
                match verdict with
                | Ame.Naive.Fooled -> incr fooled
                | Ame.Naive.Genuine -> incr genuine
                | Ame.Naive.Nothing -> incr nothing)
            r.Ame.Naive.verdicts
        done;
        (* f-AME under the same adversary. *)
        let fame_fakes = ref 0 and fame_delivered = ref 0 in
        for trial = 1 to trials / 5 do
          let seed = Int64.of_int ((trial * 733) + t) in
          let cfg = Radio.Config.make ~seed ~n ~channels ~t ~max_rounds:20_000_000 () in
          let adversary _board =
            Ame.Naive.simulating_adversary
              (Prng.Rng.create (Int64.of_int ((trial * 877) + t)))
              ~pairs ~channels ~budget:t
          in
          let o =
            Ame.Fame.run ~cfg ~pairs ~messages:Common.default_messages ~adversary ()
          in
          fame_delivered := !fame_delivered + List.length o.Ame.Fame.delivered;
          List.iter
            (fun (pair, body) ->
              if body <> Common.default_messages pair then incr fame_fakes)
            o.Ame.Fame.delivered
        done;
        let total = trials * t in
        [ [ "naive"; string_of_int t; string_of_int total;
            Printf.sprintf "%d (%.0f%%)" !fooled (100.0 *. float_of_int !fooled /. float_of_int total);
            Printf.sprintf "%d (%.0f%%)" !genuine (100.0 *. float_of_int !genuine /. float_of_int total);
            string_of_int !nothing ];
          [ "f-AME"; string_of_int t; string_of_int !fame_delivered;
            string_of_int !fame_fakes; "-"; "-" ] ])
      ts
  in
  Common.fmt_table fmt
    ~header:[ "protocol"; "t"; "outputs"; "fake accepted"; "genuine"; "none" ]
    rows
