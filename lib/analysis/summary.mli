(** Per-compilation-unit extraction over a [.cmt] typedtree.

    One walk produces, for every definition in the unit (top-level
    binding, nested-module binding, or lexically nested closure): its
    call-graph edges with per-argument origins, the mutable allocation
    sites it owns, the writes it performs (each naming the origin of the
    mutated value), its own determinism taint, and the pool-boundary
    calls it contains.  The interprocedural fixpoints live in
    {!Callgraph}; this module is purely local to one unit. *)

type site_key = string * int
(** (unit name, per-unit allocation index). *)

(** A value captured from an enclosing frame: which frame owns it, and
    whether it is one of that frame's parameters or an opaque local. *)
type outer_base =
  | Oparam of int
  | Oopaque

type outer = {
  oframe : string;
  obase : outer_base;
  oname : string;
}

(** Where a value came from, as far as one unit can see. *)
type origin =
  | OParam of int  (** the enclosing definition's [i]-th parameter *)
  | OSite of site_key  (** a known mutable allocation site *)
  | OFunc of string  (** a known function definition (by canonical key) *)
  | OGlobal of string  (** a top-level value, own or external, by key *)
  | OReturn of string  (** the return value of a call to the named function *)
  | OOuter of outer  (** captured from an enclosing frame *)
  | OOther  (** opaque local value *)

type site = {
  s_key : site_key;
  s_loc : Names.loc;
  s_kind : Names.alloc_kind;
  s_owner : string;  (** key of the definition whose body allocates it *)
  s_top : bool;  (** [true] for module-level allocations *)
  s_name : string;  (** binder name, for reports *)
}

type call = {
  c_callee : string;  (** canonical key: repo definition or external path *)
  c_args : (Asttypes.arg_label * origin) list;
  c_loc : Names.loc;
}

(** A pool-boundary call site and the closure that crosses it. *)
type entry = {
  e_fn : string;  (** display name, e.g. ["Parallel.map_ordered"] *)
  e_loc : Names.loc;
  e_closure : origin;
}

type def = {
  d_key : string;
  d_name : string;
  d_loc : Names.loc;
  d_span : Names.span;  (** lexical extent of the body, for freshness tests *)
  d_params : Asttypes.arg_label list;
  d_fun : bool;
  d_calls : call list;
  d_writes : (origin * Names.loc * string) list;
      (** (what is written, where, which primitive) *)
  d_taint : (string * Names.loc) option;
      (** first direct nondeterminism source referenced, if any *)
  d_det : bool;  (** owns/touches local mutable state (at least DetLocal) *)
  d_entries : entry list;
  d_returns : origin;  (** origin of the tail value, for alias chasing *)
}

type t = {
  u_name : string;  (** canonical unit name, e.g. ["Experiments.Common"] *)
  u_source : string;  (** workspace-relative source path *)
  u_defs : def list;
  u_sites : site list;
  u_globals : (string * origin) list;
      (** top-level bindings by canonical key, for cross-unit aliasing *)
}

val of_structure : unit_name:string -> source:string -> Typedtree.structure -> t
(** Summarize one unit.  Uses only per-call state, so it is safe to run
    concurrently from the loader's parallel loop. *)
