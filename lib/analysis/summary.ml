(* Per-compilation-unit extraction: one pass over a .cmt typedtree
   producing, for every definition (top-level binding, nested module
   binding, or lexically nested closure), a summary of

   - the calls and references it makes (the call-graph edges), with the
     origin of each argument so mutation effects can be translated
     through parameter positions interprocedurally;
   - the mutable allocation sites it owns and the writes it performs,
     each write naming the *origin* of the mutated value (own parameter,
     known allocation site, captured binding, global);
   - its own determinism taint (references to clocks, randomness,
     unordered traversal, raw domain primitives, I/O);
   - the pool-boundary calls it contains ([Parallel.map_ordered],
     [Pool.map_ordered], [Common.replicates]/[sweep]) and which closure
     crosses each one.

   Because the walk is over the *typedtree*, every identifier carries its
   resolved [Path.t]: module aliases, [open]s, and functor-free renamings
   are already resolved, which is exactly what the syntactic linter
   cannot see.  Value aliases ([let t = table]) are handled by copy
   propagation in [bind_vbs]; partial application and values returned
   from unknown higher-order functions remain out of scope (documented in
   DESIGN.md).

   Scoping uses the fact that idents are unique per unit: the environment
   maps [Ident.unique_name] to [(owning frame, origin)] and is never
   popped.  A lookup from a different frame than the owner demotes
   frame-relative origins (parameters, opaque locals) to [OOuter] — a
   value captured from an enclosing scope. *)

type site_key = string * int

type outer_base =
  | Oparam of int
  | Oopaque

type outer = {
  oframe : string;
  obase : outer_base;
  oname : string;
}

type origin =
  | OParam of int
  | OSite of site_key
  | OFunc of string
  | OGlobal of string
  | OReturn of string
  | OOuter of outer
  | OOther

type site = {
  s_key : site_key;
  s_loc : Names.loc;
  s_kind : Names.alloc_kind;
  s_owner : string;
  s_top : bool;
  s_name : string;
}

type call = {
  c_callee : string;
  c_args : (Asttypes.arg_label * origin) list;
  c_loc : Names.loc;
}

type entry = {
  e_fn : string;
  e_loc : Names.loc;
  e_closure : origin;
}

type def = {
  d_key : string;
  d_name : string;
  d_loc : Names.loc;
  d_span : Names.span;
  d_params : Asttypes.arg_label list;
  d_fun : bool;
  d_calls : call list;
  d_writes : (origin * Names.loc * string) list;
  d_taint : (string * Names.loc) option;
  d_det : bool;
  d_entries : entry list;
  d_returns : origin;
}

type t = {
  u_name : string;
  u_source : string;
  u_defs : def list;
  u_sites : site list;
  u_globals : (string * origin) list;
}

(* --- extraction state ----------------------------------------------- *)

type frame = {
  f_key : string;
  f_name : string;
  f_loc : Names.loc;
  f_span : Names.span;
  mutable f_params : Asttypes.arg_label list;  (* reversed *)
  mutable f_fun : bool;
  mutable f_calls : call list;  (* reversed *)
  mutable f_writes : (origin * Names.loc * string) list;  (* reversed *)
  mutable f_taint : (string * Names.loc) option;
  mutable f_det : bool;
  mutable f_entries : entry list;  (* reversed *)
  mutable f_returns : origin;
}

type ctx = {
  cx_unit : string;
  cx_source : string;
  cx_env : (string, string * origin) Hashtbl.t;
  cx_funs : (string, string) Hashtbl.t;  (* function-expression loc -> def key *)
  mutable cx_frames : frame list;
  mutable cx_defs : def list;  (* reversed *)
  mutable cx_sites : site list;  (* reversed *)
  mutable cx_globals : (string * origin) list;  (* reversed *)
  mutable cx_nsites : int;
  (* the per-unit Tast_iterator, closed over this ctx (set up by
     [of_structure]); per-unit state keeps the summarizer safe to run
     from the analyzer's own parallel loading loop *)
  mutable cx_iter : Tast_iterator.iterator;
}

let top_frame_key = "<top>"

let current ctx =
  match ctx.cx_frames with
  | f :: _ -> f
  | [] ->
    (* Bindings outside any frame (pass-1 registration) attribute to the
       module top level. *)
    { f_key = top_frame_key;
      f_name = top_frame_key;
      f_loc = { Names.file = ctx.cx_source; line = 0; col = 0 };
      f_span = Names.null_span;
      f_params = [];
      f_fun = false;
      f_calls = [];
      f_writes = [];
      f_taint = None;
      f_det = false;
      f_entries = [];
      f_returns = OOther }

let loc_of ctx (l : Location.t) = Names.loc_of ~file:ctx.cx_source l

let span_of ctx (l : Location.t) = Names.span_of ~file:ctx.cx_source l

let loc_key (l : Location.t) =
  let p = l.Location.loc_start and e = l.Location.loc_end in
  Printf.sprintf "%d:%d-%d:%d" p.Lexing.pos_lnum p.Lexing.pos_cnum e.Lexing.pos_lnum
    e.Lexing.pos_cnum

let bind ctx ?frame id origin =
  let fk = match frame with Some k -> k | None -> (current ctx).f_key in
  Hashtbl.replace ctx.cx_env (Ident.unique_name id) (fk, origin)

let lookup ctx id =
  match Hashtbl.find_opt ctx.cx_env (Ident.unique_name id) with
  | None -> OOther
  | Some (fk, o) -> (
    match o with
    | OSite _ | OFunc _ | OGlobal _ | OOuter _ -> o
    | OParam i ->
      if fk = (current ctx).f_key then o
      else OOuter { oframe = fk; obase = Oparam i; oname = Ident.name id }
    | OReturn _ ->
      (* [let t = make () in ...]: in the binding frame the value is
         fresh per execution; captured by an inner closure it is shared
         across that closure's calls, so demote to a capture *)
      if fk = (current ctx).f_key then o
      else OOuter { oframe = fk; obase = Oopaque; oname = Ident.name id }
    | OOther ->
      if fk = (current ctx).f_key then o
      else OOuter { oframe = fk; obase = Oopaque; oname = Ident.name id })

let new_site ctx ~kind ~name ~top (l : Location.t) =
  let key = (ctx.cx_unit, ctx.cx_nsites) in
  ctx.cx_nsites <- ctx.cx_nsites + 1;
  let s =
    { s_key = key;
      s_loc = loc_of ctx l;
      s_kind = kind;
      s_owner = (current ctx).f_key;
      s_top = top;
      s_name = name }
  in
  ctx.cx_sites <- s :: ctx.cx_sites;
  s

let add_call ctx callee args loc =
  let f = current ctx in
  if f.f_key <> top_frame_key then
    f.f_calls <- { c_callee = callee; c_args = args; c_loc = loc_of ctx loc } :: f.f_calls

let add_write ctx origin loc what =
  let f = current ctx in
  f.f_det <- true;
  if f.f_key <> top_frame_key then
    f.f_writes <- (origin, loc_of ctx loc, what) :: f.f_writes

let add_taint ctx what loc =
  let f = current ctx in
  if f.f_taint = None then f.f_taint <- Some (what, loc_of ctx loc)

let add_entry ctx fn closure loc =
  let f = current ctx in
  if f.f_key <> top_frame_key then
    f.f_entries <- { e_fn = fn; e_loc = loc_of ctx loc; e_closure = closure } :: f.f_entries

(* --- patterns -------------------------------------------------------- *)

let rec pat_vars : type k. k Typedtree.general_pattern -> Ident.t list =
 fun p ->
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_var (id, _) -> [ id ]
  | Typedtree.Tpat_alias (p, id, _) -> id :: pat_vars p
  | Typedtree.Tpat_tuple ps -> List.concat_map pat_vars ps
  | Typedtree.Tpat_array ps -> List.concat_map pat_vars ps
  | Typedtree.Tpat_construct (_, _, ps, _) -> List.concat_map pat_vars ps
  | Typedtree.Tpat_variant (_, Some p, _) -> pat_vars p
  | Typedtree.Tpat_record (fields, _) -> List.concat_map (fun (_, _, p) -> pat_vars p) fields
  | Typedtree.Tpat_or (a, b, _) -> pat_vars a @ pat_vars b
  | Typedtree.Tpat_lazy p -> pat_vars p
  | Typedtree.Tpat_value arg -> pat_vars (arg :> Typedtree.value Typedtree.general_pattern)
  | Typedtree.Tpat_exception p -> pat_vars p
  | _ -> []

(* A pattern that names the whole argument (keeps parameter tracking). *)
let rec simple_param_ids : type k. k Typedtree.general_pattern -> Ident.t list option =
 fun p ->
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_var (id, _) -> Some [ id ]
  | Typedtree.Tpat_any -> Some []
  | Typedtree.Tpat_alias (p, id, _) -> (
    match simple_param_ids p with Some ids -> Some (id :: ids) | None -> None)
  | _ -> None

(* A binding pattern that names exactly one value: [let x = ...] or the
   annotated form [let x : t = ...], which types as
   [Tpat_alias (Tpat_any, x, _)]. *)
let single_var (p : Typedtree.pattern) =
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_var (id, { txt; _ }) -> Some (id, txt)
  | Typedtree.Tpat_alias ({ pat_desc = Typedtree.Tpat_any; _ }, id, { txt; _ }) ->
    Some (id, txt)
  | _ -> None

(* --- expression shapes ----------------------------------------------- *)

let mutable_record_fields fields =
  Array.exists
    (fun ((lbl : Types.label_description), _) -> lbl.Types.lbl_mut = Asttypes.Mutable)
    fields

(* Components of the (possibly alias-resolved) head of an application. *)
let head_components ctx (f : Typedtree.expression) =
  match f.Typedtree.exp_desc with
  | Typedtree.Texp_ident (Path.Pident id, _, _) -> (
    match lookup ctx id with
    | OGlobal g -> Some (String.split_on_char '.' g)
    | _ -> None)
  | Typedtree.Texp_ident (p, _, _) -> Some (Names.normalize p)
  | _ -> None

type rhs_shape =
  | Sfun
  | Salloc of Names.alloc_kind
  | Sident
  | Sapply
  | Sother

let rhs_shape ctx (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function _ -> Sfun
  | Typedtree.Texp_ident _ | Typedtree.Texp_field _ -> Sident
  | Typedtree.Texp_array _ -> Salloc Names.Arr
  | Typedtree.Texp_record { fields; _ } when mutable_record_fields fields ->
    Salloc Names.Mrec
  | Typedtree.Texp_apply (f, _) -> (
    match head_components ctx f with
    | Some comps -> (
      match Names.mutable_alloc comps with Some k -> Salloc k | None -> Sapply)
    | None -> Sapply)
  | _ -> Sother

let rec origin_of ctx (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (Path.Pident id, _, _) -> lookup ctx id
  | Typedtree.Texp_ident (p, _, _) ->
    OGlobal (Names.key_of_components (Names.normalize p))
  | Typedtree.Texp_field (e1, _, _) -> origin_of ctx e1
  | Typedtree.Texp_apply (f, _) -> (
    match f.Typedtree.exp_desc with
    | Typedtree.Texp_ident (Path.Pident id, _, _) -> (
      match lookup ctx id with
      | OFunc k -> OReturn k
      | OGlobal g -> OReturn g
      | _ -> OOther)
    | Typedtree.Texp_ident (p, _, _) ->
      OReturn (Names.key_of_components (Names.normalize p))
    | _ -> OOther)
  | _ -> OOther

let rec tail_origin ctx (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_let (_, _, body)
  | Typedtree.Texp_sequence (_, body)
  | Typedtree.Texp_open (_, body) ->
    tail_origin ctx body
  | Typedtree.Texp_ident _ | Typedtree.Texp_field _ | Typedtree.Texp_apply _ ->
    origin_of ctx e
  | Typedtree.Texp_function _ -> OOther  (* resolved by the caller via cx_funs *)
  | _ -> OOther

(* --- the walker ------------------------------------------------------ *)

let default = Tast_iterator.default_iterator

let make ~unit_name ~source =
  { cx_unit = unit_name;
    cx_source = source;
    cx_env = Hashtbl.create 512;
    cx_funs = Hashtbl.create 64;
    cx_frames = [];
    cx_defs = [];
    cx_sites = [];
    cx_globals = [];
    cx_nsites = 0;
    cx_iter = default }

let push_frame ctx ~key ~name ~loc ~span =
  let f =
    { f_key = key;
      f_name = name;
      f_loc = loc;
      f_span = span;
      f_params = [];
      f_fun = false;
      f_calls = [];
      f_writes = [];
      f_taint = None;
      f_det = false;
      f_entries = [];
      f_returns = OOther }
  in
  ctx.cx_frames <- f :: ctx.cx_frames;
  f

let pop_frame ctx =
  match ctx.cx_frames with
  | f :: rest ->
    ctx.cx_frames <- rest;
    let def =
      { d_key = f.f_key;
        d_name = f.f_name;
        d_loc = f.f_loc;
        d_span = f.f_span;
        d_params = List.rev f.f_params;
        d_fun = f.f_fun;
        d_calls = List.rev f.f_calls;
        d_writes = List.rev f.f_writes;
        d_taint = f.f_taint;
        d_det = f.f_det;
        d_entries = List.rev f.f_entries;
        d_returns = f.f_returns }
    in
    ctx.cx_defs <- def :: ctx.cx_defs;
    def
  | [] -> invalid_arg "Summary.pop_frame: no frame"

let walk_expr ctx e = ctx.cx_iter.Tast_iterator.expr ctx.cx_iter e

(* Mutually recursive group: expression pre-processing, application
   handling, binding handling, and function-definition building. *)
let rec pre_expr ctx (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> (
    match p with
    | Path.Pident _ -> ()
    | _ ->
      let comps = Names.normalize p in
      (match Names.taint_source comps with
       | Some what -> add_taint ctx what e.Typedtree.exp_loc
       | None -> ());
      if Names.det_local_source comps then (current ctx).f_det <- true;
      add_call ctx (Names.key_of_components comps) [] e.Typedtree.exp_loc)
  | Typedtree.Texp_function _ -> ignore (synth_fun ctx ?name:None e)
  | Typedtree.Texp_apply (f, args) ->
    let base, all_args = flatten_apply f args in
    handle_apply ctx e.Typedtree.exp_loc base all_args
  | Typedtree.Texp_let (_, vbs, _) -> bind_vbs ctx vbs
  | Typedtree.Texp_match (_, cases, _) ->
    List.iter
      (fun (c : Typedtree.computation Typedtree.case) ->
        List.iter (fun id -> bind ctx id OOther) (pat_vars c.Typedtree.c_lhs))
      cases
  | Typedtree.Texp_try (_, cases) ->
    List.iter
      (fun (c : Typedtree.value Typedtree.case) ->
        List.iter (fun id -> bind ctx id OOther) (pat_vars c.Typedtree.c_lhs))
      cases
  | Typedtree.Texp_setfield (e1, _, lbl, _) ->
    add_write ctx (origin_of ctx e1) e.Typedtree.exp_loc
      (lbl.Types.lbl_name ^ " <-")
  | Typedtree.Texp_for (id, _, _, _, _, _) -> bind ctx id OOther
  | _ -> ()

and flatten_apply f args =
  match f.Typedtree.exp_desc with
  | Typedtree.Texp_apply (g, args') -> flatten_apply g (args' @ args)
  | _ -> (f, args)

and handle_apply ctx loc (f : Typedtree.expression) args =
  let comps = head_components ctx f in
  let stripped = match comps with Some c -> Names.strip_stdlib c | None -> [] in
  (* Pipeline operators: [x |> f] is [f x], [f @@ x] is [f x]. *)
  match (stripped, args) with
  | [ "|>" ], [ (_, Some x); (_, Some fn) ] | [ "@@" ], [ (_, Some fn); (_, Some x) ] ->
    let base, inner = flatten_apply fn [] in
    handle_apply ctx loc base (inner @ [ (Asttypes.Nolabel, Some x) ])
  | _ -> (
    let nolabel_args =
      List.filter_map
        (fun (l, a) ->
          match (l, a) with (Asttypes.Nolabel, Some a) -> Some a | _ -> None)
        args
    in
    (* Pool boundary? *)
    (match comps with
     | Some c -> (
       match Names.pool_entry c with
       | Some (fn_name, closure_idx) -> (
         match List.nth_opt nolabel_args closure_idx with
         | Some closure_expr ->
           let o = origin_rich ctx closure_expr in
           add_entry ctx fn_name o loc;
           (* the pool runs the closure: taint flows through the edge *)
           (match o with OFunc k -> add_call ctx k [] loc | _ -> ())
         | None -> ())
       | None -> ())
     | None -> ());
    (* Mutation primitive? *)
    (match comps with
     | Some c -> (
       match Names.mutates c with
       | Some idxs ->
         let what = Names.key_of_components (Names.strip_stdlib c) in
         List.iter
           (fun i ->
             match List.nth_opt nolabel_args i with
             | Some target -> add_write ctx (origin_of ctx target) loc what
             | None -> ())
           idxs
       | None -> ())
     | None -> ());
    (* Ordinary call edge, with argument origins for the fixpoint. *)
    let callee =
      match f.Typedtree.exp_desc with
      | Typedtree.Texp_ident (Path.Pident id, _, _) -> (
        match lookup ctx id with OFunc k -> Some k | OGlobal g -> Some g | _ -> None)
      | Typedtree.Texp_ident (p, _, _) ->
        Some (Names.key_of_components (Names.normalize p))
      | _ -> None
    in
    let arg_origins =
      List.filter_map
        (fun (l, a) ->
          match a with Some a -> Some (l, origin_rich ctx a) | None -> None)
        args
    in
    (match callee with
     | Some k -> add_call ctx k arg_origins loc
     | None -> ());
    (* A function passed anywhere may be called by its receiver: treat
       function-valued arguments as potential callees of this frame, so
       effects and taint in callbacks given to unknown higher-order
       functions (List.iter, ...) still reach the caller. *)
    List.iter
      (fun (_, o) -> match o with OFunc k -> add_call ctx k [] loc | _ -> ())
      arg_origins)

(* Origin including function literals (synthesizing their defs). *)
and origin_rich ctx (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function _ -> synth_fun ctx ?name:None e
  | _ -> origin_of ctx e

and bind_vbs ctx vbs =
  List.iter
    (fun (vb : Typedtree.value_binding) ->
      match single_var vb.Typedtree.vb_pat with
      | Some (id, txt) -> (
        match rhs_shape ctx vb.Typedtree.vb_expr with
        | Sfun -> bind ctx id (synth_fun ctx ~name:txt vb.Typedtree.vb_expr)
        | Salloc kind ->
          let s = new_site ctx ~kind ~name:txt ~top:false vb.Typedtree.vb_expr.Typedtree.exp_loc in
          (current ctx).f_det <- true;
          bind ctx id (OSite s.s_key)
        | Sident | Sapply -> bind ctx id (origin_of ctx vb.Typedtree.vb_expr)
        | Sother -> bind ctx id OOther)
      | None ->
        List.iter (fun id -> bind ctx id OOther) (pat_vars vb.Typedtree.vb_pat))
    vbs

(* Build the definition for a function expression: flatten the curried
   parameter chain, bind each parameter, then walk the innermost body in
   a fresh frame. *)
and build_fun ctx ~key ~name (e : Typedtree.expression) =
  let frame =
    push_frame ctx ~key ~name
      ~loc:(loc_of ctx e.Typedtree.exp_loc)
      ~span:(span_of ctx e.Typedtree.exp_loc)
  in
  frame.f_fun <- true;
  let rec flatten (e : Typedtree.expression) i =
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_function
        { arg_label; param; cases = [ { c_lhs; c_guard = None; c_rhs } ]; _ }
      when simple_param_ids c_lhs <> None ->
      frame.f_params <- arg_label :: frame.f_params;
      bind ctx param (OParam i);
      (match simple_param_ids c_lhs with
       | Some ids -> List.iter (fun id -> bind ctx id (OParam i)) ids
       | None -> ());
      flatten c_rhs (i + 1)
    | Typedtree.Texp_function { arg_label; param; cases; _ } ->
      (* destructuring or multi-case: the parameter's pieces are local
         opaque values of this frame *)
      frame.f_params <- arg_label :: frame.f_params;
      bind ctx param (OParam i);
      List.iter
        (fun (c : Typedtree.value Typedtree.case) ->
          List.iter (fun id -> bind ctx id OOther) (pat_vars c.Typedtree.c_lhs);
          (match c.Typedtree.c_guard with Some g -> walk_expr ctx g | None -> ());
          walk_expr ctx c.Typedtree.c_rhs)
        cases;
      frame.f_returns <- OOther
    | body_expr ->
      ignore body_expr;
      walk_expr ctx e;
      frame.f_returns <-
        (match e.Typedtree.exp_desc with
         | Typedtree.Texp_function _ -> OOther
         | _ -> resolve_tail ctx e)
  in
  flatten e 0;
  ignore (pop_frame ctx)

and resolve_tail ctx e =
  match tail_origin ctx e with
  | OOther -> (
    (* a tail closure: its def key is memoized by now *)
    match last_fun_tail ctx e with Some k -> OFunc k | None -> OOther)
  | o -> o

and last_fun_tail ctx (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_let (_, _, body)
  | Typedtree.Texp_sequence (_, body)
  | Typedtree.Texp_open (_, body) ->
    last_fun_tail ctx body
  | Typedtree.Texp_function _ ->
    Hashtbl.find_opt ctx.cx_funs (loc_key e.Typedtree.exp_loc)
  | _ -> None

and synth_fun ctx ?name (e : Typedtree.expression) =
  let lk = loc_key e.Typedtree.exp_loc in
  match Hashtbl.find_opt ctx.cx_funs lk with
  | Some key -> OFunc key
  | None ->
    let l = loc_of ctx e.Typedtree.exp_loc in
    let base = match name with Some n -> n | None -> "fun" in
    let key = Printf.sprintf "%s.<%s:%d:%d>" ctx.cx_unit base l.Names.line l.Names.col in
    let display =
      match name with
      | Some n -> Printf.sprintf "%s (%s:%d)" n l.Names.file l.Names.line
      | None -> Printf.sprintf "<fun> (%s:%d)" l.Names.file l.Names.line
    in
    Hashtbl.replace ctx.cx_funs lk key;
    build_fun ctx ~key ~name:display e;
    OFunc key

(* --- structures ------------------------------------------------------ *)

let toplevel_key mpath name = Names.key_of_components (mpath @ [ name ])

let register_toplevel ctx mpath (vb : Typedtree.value_binding) =
  match single_var vb.Typedtree.vb_pat with
  | Some (id, txt) -> (
    let key = toplevel_key mpath txt in
    match rhs_shape ctx vb.Typedtree.vb_expr with
    | Sfun ->
      (* pre-claim the function-def key so in-unit and cross-unit
         references resolve to the same canonical name *)
      Hashtbl.replace ctx.cx_funs (loc_key vb.Typedtree.vb_expr.Typedtree.exp_loc) key;
      bind ctx ~frame:top_frame_key id (OFunc key);
      ctx.cx_globals <- (key, OFunc key) :: ctx.cx_globals
    | Salloc kind ->
      let s = new_site ctx ~kind ~name:txt ~top:true vb.Typedtree.vb_expr.Typedtree.exp_loc in
      bind ctx ~frame:top_frame_key id (OSite s.s_key);
      ctx.cx_globals <- (key, OSite s.s_key) :: ctx.cx_globals
    | Sident ->
      let o = origin_of ctx vb.Typedtree.vb_expr in
      bind ctx ~frame:top_frame_key id o;
      ctx.cx_globals <- (key, o) :: ctx.cx_globals
    | Sapply | Sother ->
      bind ctx ~frame:top_frame_key id (OGlobal key);
      ctx.cx_globals <- (key, OGlobal key) :: ctx.cx_globals)
  | None ->
    List.iter
      (fun id -> bind ctx ~frame:top_frame_key id OOther)
      (pat_vars vb.Typedtree.vb_pat)

let walk_toplevel ctx mpath (vb : Typedtree.value_binding) =
  match single_var vb.Typedtree.vb_pat with
  | Some (_, txt) -> (
    let key = toplevel_key mpath txt in
    match rhs_shape ctx vb.Typedtree.vb_expr with
    | Sfun ->
      (* the key was pre-claimed during registration, so build directly:
         a memoized synth would skip the body *)
      build_fun ctx ~key ~name:txt vb.Typedtree.vb_expr
    | _ ->
      (* module-initialization code: calls and taint here run once at
         program start; give it a definition of its own *)
      let e = vb.Typedtree.vb_expr in
      let frame =
        push_frame ctx ~key ~name:key
          ~loc:(loc_of ctx e.Typedtree.exp_loc)
          ~span:(span_of ctx e.Typedtree.exp_loc)
      in
      walk_expr ctx e;
      frame.f_returns <- resolve_tail ctx e;
      ignore (pop_frame ctx))
  | None ->
    let e = vb.Typedtree.vb_expr in
    let l = loc_of ctx e.Typedtree.exp_loc in
    let key =
      Printf.sprintf "%s.<bind:%d:%d>" (Names.key_of_components mpath) l.Names.line
        l.Names.col
    in
    let frame =
      push_frame ctx ~key ~name:key ~loc:l ~span:(span_of ctx e.Typedtree.exp_loc)
    in
    walk_expr ctx e;
    ignore frame;
    ignore (pop_frame ctx)

let rec walk_structure ctx mpath (items : Typedtree.structure_item list) =
  (* pass 1: register every top-level binding of this structure, so
     forward references (and let rec) resolve *)
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.Typedtree.str_desc with
      | Typedtree.Tstr_value (_, vbs) -> List.iter (register_toplevel ctx mpath) vbs
      | _ -> ())
    items;
  (* pass 2: walk bodies *)
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.Typedtree.str_desc with
      | Typedtree.Tstr_value (_, vbs) -> List.iter (walk_toplevel ctx mpath) vbs
      | Typedtree.Tstr_module mb -> walk_module ctx mpath mb
      | Typedtree.Tstr_recmodule mbs -> List.iter (walk_module ctx mpath) mbs
      | Typedtree.Tstr_include incl ->
        walk_module_expr ctx mpath incl.Typedtree.incl_mod
      | Typedtree.Tstr_eval (e, _) ->
        let l = loc_of ctx e.Typedtree.exp_loc in
        let key =
          Printf.sprintf "%s.<init:%d:%d>" (Names.key_of_components mpath) l.Names.line
            l.Names.col
        in
        let frame =
          push_frame ctx ~key ~name:key ~loc:l ~span:(span_of ctx e.Typedtree.exp_loc)
        in
        ignore frame;
        walk_expr ctx e;
        ignore (pop_frame ctx)
      | _ -> ())
    items

and walk_module ctx mpath (mb : Typedtree.module_binding) =
  let name =
    match mb.Typedtree.mb_name.Location.txt with Some n -> n | None -> "_"
  in
  walk_module_expr ctx (mpath @ [ name ]) mb.Typedtree.mb_expr

and walk_module_expr ctx mpath (me : Typedtree.module_expr) =
  match me.Typedtree.mod_desc with
  | Typedtree.Tmod_structure str -> walk_structure ctx mpath str.Typedtree.str_items
  | Typedtree.Tmod_constraint (me, _, _, _) -> walk_module_expr ctx mpath me
  | Typedtree.Tmod_functor (_, body) -> walk_module_expr ctx mpath body
  | _ -> ()

(* --- entry point ----------------------------------------------------- *)

let of_structure ~unit_name ~source (str : Typedtree.structure) =
  let ctx = make ~unit_name ~source in
  ctx.cx_iter <-
    { default with
      Tast_iterator.expr =
        (fun self e ->
          pre_expr ctx e;
          match e.Typedtree.exp_desc with
          | Typedtree.Texp_function _ -> ()  (* walked in its own frame *)
          | _ -> default.Tast_iterator.expr self e)
    };
  walk_structure ctx [ unit_name ] str.Typedtree.str_items;
  { u_name = unit_name;
    u_source = source;
    u_defs = List.rev ctx.cx_defs;
    u_sites = List.rev ctx.cx_sites;
    u_globals = List.rev ctx.cx_globals }
