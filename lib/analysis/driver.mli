(** Orchestration of the typed race/determinism analysis: cmt discovery
    and (parallel, order-merged) loading, call-graph linking, the
    race-escape and race-taint checks, and classification against
    lint.toml allowlists and [(* radio-race: allow <rule> *)] escape
    comments.

    Deterministic by construction: the only parallel phase is the loader,
    whose results merge in submission order; findings are sorted and
    deduplicated.  The report is byte-identical for any [jobs]. *)

type options = {
  build_dir : string;  (** where dune put the cmts, e.g. [_build/default] *)
  source_root : string;  (** workspace root the cmt source paths are relative to *)
  roots : string list;  (** subtrees to analyze, e.g. [["lib"; "bin"; "bench"]] *)
  config : Lint.Config.t;  (** shared lint.toml (race-escape / race-taint) *)
  jobs : int;
  read_source : (string -> string option) option;
      (** test hook: overrides on-disk source text for escape-comment
          scanning *)
}

type outcome = {
  o_report : Report.t;
  o_cmts : int;  (** cmt files discovered *)
  o_units : int;  (** implementation units summarized *)
}

val default_options : config:Lint.Config.t -> options
(** [_build/default], source root ["."], the config's roots, one job. *)

val run : options -> (outcome, string) result
(** [Error msg] when no cmt files exist at all — the message names
    [dune build @check] as the fix. *)
