(** Findings, escape-comment suppression, and the radio-race/v1 JSON
    report.

    Mirrors radio_lint's contract: a finding is active unless lint.toml's
    allowlist pre-approves its file or the offending line (or the line
    above) carries [(* radio-race: allow <rule> *)].  Findings are sorted
    and deduplicated before classification, so the JSON is byte-identical
    for any [--jobs]. *)

type step = {
  st_def : string;
  st_loc : Names.loc;
  st_action : string;
}

type finding = {
  f_rule : string;  (** ["race-escape"] or ["race-taint"] *)
  f_loc : Names.loc;  (** primary: allocation site / taint source *)
  f_def : string;  (** offending definition (task closure, tainted fn) *)
  f_entry : (string * Names.loc) option;  (** pool boundary crossed, if any *)
  f_message : string;
  f_chain : step list;  (** derivation: defs and calls down to the write *)
}

type status =
  | Active
  | Suppressed of string

type classified = {
  c_finding : finding;
  c_status : status;
}

type t = {
  r_findings : classified list;
  r_errors : (string * string) list;
}

val escape_marker : string
(** ["radio-race: allow"]. *)

val make :
  config:Lint.Config.t ->
  read_source:(string -> string option) ->
  errors:(string * string) list ->
  finding list ->
  t
(** Sort, deduplicate, and classify findings.  [read_source] maps a
    workspace-relative path to its text for escape-comment scanning. *)

val active : t -> finding list

val exit_code : t -> int
(** 2 when there are loading errors, 1 when any finding is active, 0
    otherwise — the same contract as radio_lint. *)

val to_json : t -> Experiments.Json.t

val pp_text : Format.formatter -> t -> unit
