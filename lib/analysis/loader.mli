(** Discovery and loading of the [.cmt] typedtrees dune produces under
    [_build/default/**/.*.objs/byte/].

    Loading is the analyzer's only parallel phase: the sorted path list
    goes through [Parallel.map_ordered], whose ordered merge keeps the
    unit list — and hence everything downstream — deterministic for any
    [jobs]. *)

type error = {
  e_path : string;
  e_msg : string;
}

type t = {
  units : Summary.t list;
  errors : error list;
}

val regen_hint : string
(** User-facing recovery hint: ["run `dune build @check` ..."]. *)

val find_cmts : build_dir:string -> roots:string list -> string list
(** All [*.cmt] files under [build_dir/<root>] for each root, descending
    into dune's dot-directories; sorted. *)

val source_text : source_root:string -> string -> string option
(** [source_text ~source_root rel] reads the source file a cmt refers to,
    for escape-comment scanning; tries [source_root/rel] and, because
    generated wrappers sometimes carry one extra leading path component,
    [source_root/<rel minus its first component>]. *)

val load_one : string -> (Summary.t option, string) result
(** Load and summarize one cmt.  [Ok None] for non-implementation
    artifacts (interfaces, packs). *)

val load : build_dir:string -> roots:string list -> jobs:int -> t
