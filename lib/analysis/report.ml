(* Findings, escape-comment suppression, and the radio-race/v1 JSON
   report.

   Mirrors radio_lint's contract: a finding is [Active] unless the
   allowlist in lint.toml pre-approves its file or the offending line (or
   the line above) carries [(* radio-race: allow <rule> *)]; the process
   exits 1 iff any finding is active, 2 on configuration or loading
   errors, 0 otherwise.  JSON rendering goes through [Experiments.Json]
   and findings are sorted, so the report is byte-identical for any
   [--jobs]. *)

type step = {
  st_def : string;
  st_loc : Names.loc;
  st_action : string;
}

type finding = {
  f_rule : string;
  f_loc : Names.loc;
  f_def : string;
  f_entry : (string * Names.loc) option;
  f_message : string;
  f_chain : step list;
}

type status =
  | Active
  | Suppressed of string

type classified = {
  c_finding : finding;
  c_status : status;
}

type t = {
  r_findings : classified list;
  r_errors : (string * string) list;  (* (path, message) *)
}

let escape_marker = "radio-race: allow"

let contains_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  m > 0 && go 0

let escapes_rule line rule = contains_sub line (escape_marker ^ " " ^ rule)

(* --- classification --------------------------------------------------- *)

let split_lines text =
  let lines = String.split_on_char '\n' text in
  Array.of_list lines

let line_of lines n = if n >= 1 && n <= Array.length lines then lines.(n - 1) else ""

(* [read_source] maps a workspace-relative path to its text (None when
   the file cannot be found — findings there stay active). *)
let classify ~config ~read_source findings =
  let cache : (string, string array option) Hashtbl.t = Hashtbl.create 16 in
  let lines_for file =
    match Hashtbl.find_opt cache file with
    | Some v -> v
    | None ->
      let v = Option.map split_lines (read_source file) in
      Hashtbl.replace cache file v;
      v
  in
  List.map
    (fun f ->
      let cfg = Lint.Config.rule_cfg config f.f_rule in
      let status =
        if not cfg.Lint.Config.enabled then Suppressed "disabled"
        else if Lint.Config.path_in cfg.Lint.Config.allow f.f_loc.Names.file then
          Suppressed "allowlist"
        else
          match lines_for f.f_loc.Names.file with
          | Some lines
            when escapes_rule (line_of lines f.f_loc.Names.line) f.f_rule
                 || escapes_rule (line_of lines (f.f_loc.Names.line - 1)) f.f_rule ->
            Suppressed "escape-comment"
          | _ -> Active
      in
      { c_finding = f; c_status = status })
    findings

let compare_findings a b =
  let la = a.f_loc and lb = b.f_loc in
  let c = compare la.Names.file lb.Names.file in
  if c <> 0 then c
  else
    let c = compare la.Names.line lb.Names.line in
    if c <> 0 then c
    else
      let c = compare la.Names.col lb.Names.col in
      if c <> 0 then c
      else
        let c = compare a.f_rule b.f_rule in
        if c <> 0 then c
        else
          let c = compare a.f_def b.f_def in
          if c <> 0 then c else compare a.f_message b.f_message

let dedupe findings =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun f ->
      let key = (f.f_rule, f.f_loc, f.f_def, f.f_message) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    findings

let make ~config ~read_source ~errors findings =
  let findings = dedupe (List.sort compare_findings findings) in
  { r_findings = classify ~config ~read_source findings; r_errors = errors }

let active r =
  List.filter_map
    (fun c -> match c.c_status with Active -> Some c.c_finding | Suppressed _ -> None)
    r.r_findings

let exit_code r =
  if r.r_errors <> [] then 2 else if active r <> [] then 1 else 0

(* --- rendering -------------------------------------------------------- *)

let json_of_loc (l : Names.loc) =
  Experiments.Json.Obj
    [ ("file", Experiments.Json.String l.Names.file);
      ("line", Experiments.Json.Int l.Names.line);
      ("col", Experiments.Json.Int l.Names.col) ]

let json_of_step s =
  Experiments.Json.Obj
    [ ("def", Experiments.Json.String s.st_def);
      ("loc", json_of_loc s.st_loc);
      ("action", Experiments.Json.String s.st_action) ]

let json_of_classified c =
  let f = c.c_finding in
  Experiments.Json.Obj
    [ ("rule", Experiments.Json.String f.f_rule);
      ("loc", json_of_loc f.f_loc);
      ("def", Experiments.Json.String f.f_def);
      ( "entry",
        match f.f_entry with
        | Some (fn, loc) ->
          Experiments.Json.Obj
            [ ("fn", Experiments.Json.String fn); ("loc", json_of_loc loc) ]
        | None -> Experiments.Json.Null );
      ("message", Experiments.Json.String f.f_message);
      ( "status",
        Experiments.Json.String
          (match c.c_status with Active -> "active" | Suppressed r -> "suppressed:" ^ r)
      );
      ("chain", Experiments.Json.List (List.map json_of_step f.f_chain)) ]

let to_json r =
  let n_active = List.length (active r) in
  Experiments.Json.Obj
    [ ("version", Experiments.Json.String "radio-race/v1");
      ("findings", Experiments.Json.List (List.map json_of_classified r.r_findings));
      ( "errors",
        Experiments.Json.List
          (List.map
             (fun (path, msg) ->
               Experiments.Json.Obj
                 [ ("path", Experiments.Json.String path);
                   ("error", Experiments.Json.String msg) ])
             r.r_errors) );
      ( "summary",
        Experiments.Json.Obj
          [ ("active", Experiments.Json.Int n_active);
            ( "suppressed",
              Experiments.Json.Int (List.length r.r_findings - n_active) );
            ("errors", Experiments.Json.Int (List.length r.r_errors)) ] ) ]

let pp_text fmt r =
  List.iter
    (fun c ->
      let f = c.c_finding in
      let tag = match c.c_status with Active -> "" | Suppressed why -> " (" ^ why ^ ")" in
      Format.fprintf fmt "%a: [%s]%s %s@." Names.pp_loc f.f_loc f.f_rule tag f.f_message;
      (match f.f_entry with
      | Some (fn, loc) ->
        Format.fprintf fmt "    enters the pool via %s at %a@." fn Names.pp_loc loc
      | None -> ());
      List.iter
        (fun s ->
          Format.fprintf fmt "    %s %s at %a@." s.st_def s.st_action Names.pp_loc s.st_loc)
        f.f_chain)
    r.r_findings;
  List.iter
    (fun (path, msg) -> Format.fprintf fmt "error: %s: %s@." path msg)
    r.r_errors
