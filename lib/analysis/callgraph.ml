(* Whole-repo linking of unit summaries, plus the two interprocedural
   fixpoints.

   The writes-effect fixpoint answers "which values does calling [f]
   mutate, described from [f]'s own frame?" — parameters translate
   through argument origins at each call site, allocation sites pass
   through unchanged, and captured-value writes resolve against the
   frame that owns the binding.  The one subtlety is freshness: a callee
   that allocates a table and mutates it is pure from the outside, so a
   site is dropped at the lift if its allocation lies within the
   callee's own span (fresh per call).

   The taint fixpoint propagates [Pure < Det_local < Tainted] backwards
   over calls, with a per-definition cap for files inside the sanctioned
   boundary (lib/parallel may use the clock and locks without tainting
   its callers — that is its contract).

   Both fixpoints iterate definitions in sorted-key order and record a
   witness the first time a fact is derived, so the reconstructed
   explanation chains are deterministic. *)

type res =
  | RFunc of string
  | RSite of Summary.site_key
  | RUnknown

type target =
  | TParam of int
  | TSite of Summary.site_key
  | TGlobal of string
  | TOuter of Summary.outer

type witness =
  | Direct of Names.loc * string
  | Via of string * Names.loc * target
      (** (callee, call site, the callee-frame target this lifted from) *)

type tchain =
  | TCdirect of string * Names.loc
  | TCvia of string * Names.loc

type eff = {
  etbl : (target, witness) Hashtbl.t;
  mutable eorder : target list;  (* reversed insertion order *)
}

type t = {
  defs : (string, Summary.def) Hashtbl.t;
  sites : (Summary.site_key, Summary.site) Hashtbl.t;
  globals : (string, Summary.origin) Hashtbl.t;
  def_order : string list;
  effects : (string, eff) Hashtbl.t;
  tlevels : (string, Names.taint * tchain option) Hashtbl.t;
}

let def t key = Hashtbl.find_opt t.defs key

let site t key = Hashtbl.find_opt t.sites key

let defs_in_order t = List.filter_map (def t) t.def_order

(* --- alias resolution ------------------------------------------------ *)

(* Chase a value origin to a function or allocation site through
   top-level aliases ([let go = Impl.run]) and through the returns of
   non-function bindings ([let table = make_table ()]). *)
let resolve t origin =
  let rec go seen o =
    match o with
    | Summary.OSite s -> RSite s
    | Summary.OFunc k -> RFunc k
    | Summary.OGlobal g ->
      if List.mem g seen then RUnknown
      else begin
        let seen = g :: seen in
        match Hashtbl.find_opt t.globals g with
        | Some (Summary.OGlobal g') when g' = g -> (
          (* opaque top-level binding: chase what its initializer returns *)
          match Hashtbl.find_opt t.defs g with
          | Some d when not d.Summary.d_fun -> go seen d.Summary.d_returns
          | _ -> RUnknown)
        | Some o' -> go seen o'
        | None -> (
          (* nested-closure keys are not globals; they are defs directly *)
          match Hashtbl.find_opt t.defs g with
          | Some d when d.Summary.d_fun -> RFunc g
          | Some d -> go seen d.Summary.d_returns
          | None -> RUnknown)
      end
    | Summary.OReturn k ->
      let tag = "ret:" ^ k in
      if List.mem tag seen then RUnknown
      else (
        match go (tag :: seen) (Summary.OGlobal k) with
        | RFunc k' -> (
          match Hashtbl.find_opt t.defs k' with
          | Some d -> (
            (* A site the function both allocates and returns is fresh
               per call (a factory) — not a stable shared name.  A site
               allocated elsewhere (an accessor handing out shared
               state) resolves normally. *)
            match go (tag :: seen) d.Summary.d_returns with
            | RSite s -> (
              match Hashtbl.find_opt t.sites s with
              | Some site
                when Names.loc_in_span site.Summary.s_loc d.Summary.d_span ->
                RUnknown
              | _ -> RSite s)
            | r -> r)
          | None -> RUnknown)
        | RSite _ | RUnknown -> RUnknown)
    | Summary.OParam _ | Summary.OOuter _ | Summary.OOther -> RUnknown
  in
  go [] origin

(* The definition a call edge lands on, through aliases. *)
let callee_def t key =
  match resolve t (Summary.OGlobal key) with
  | RFunc k -> Hashtbl.find_opt t.defs k
  | RSite _ | RUnknown -> None

(* --- the writes-effect fixpoint -------------------------------------- *)

(* Translate an origin observed inside frame [f] into one of [f]'s
   effect targets; [None] means the write stays local to a call. *)
let target_in_frame t origin =
  match origin with
  | Summary.OParam i -> Some (TParam i)
  | Summary.OSite s -> Some (TSite s)
  | Summary.OOuter o -> Some (TOuter o)
  | Summary.OGlobal g -> (
    match resolve t origin with
    | RSite s -> Some (TSite s)
    | RFunc _ -> None
    | RUnknown -> Some (TGlobal g))
  | Summary.OReturn _ -> (
    match resolve t origin with RSite s -> Some (TSite s) | _ -> None)
  | Summary.OFunc _ | Summary.OOther -> None

(* The argument feeding the callee's [j]-th parameter: labelled args
   match by name, positional args by position among positionals. *)
let arg_for_param params (args : (Asttypes.arg_label * Summary.origin) list) j =
  match List.nth_opt params j with
  | None -> None
  | Some (Asttypes.Labelled s) | Some (Asttypes.Optional s) ->
    List.find_map
      (fun (l, o) ->
        match l with
        | (Asttypes.Labelled s' | Asttypes.Optional s') when s' = s -> Some o
        | _ -> None)
      args
  | Some Asttypes.Nolabel ->
    let rec count_nolabel k i = function
      | [] -> k
      | Asttypes.Nolabel :: rest -> if i = 0 then k else count_nolabel (k + 1) (i - 1) rest
      | _ :: rest -> count_nolabel k i rest
    in
    let pos = count_nolabel 0 j params in
    let positional =
      List.filter_map
        (fun (l, o) -> match l with Asttypes.Nolabel -> Some o | _ -> None)
        args
    in
    List.nth_opt positional pos

(* Lift one of callee [g]'s targets into caller [f] at call [c]. *)
let lift t (f : Summary.def) (g : Summary.def) (c : Summary.call) tg =
  match tg with
  | TParam j -> (
    match arg_for_param g.Summary.d_params c.Summary.c_args j with
    | Some o -> target_in_frame t o
    | None -> None)
  | TSite s -> (
    match Hashtbl.find_opt t.sites s with
    | Some site when Names.loc_in_span site.Summary.s_loc g.Summary.d_span ->
      None  (* allocated inside g: fresh per call *)
    | _ -> Some tg)
  | TGlobal _ -> Some tg
  | TOuter o ->
    if o.Summary.oframe = f.Summary.d_key then (
      match o.Summary.obase with
      | Summary.Oparam i -> Some (TParam i)
      | Summary.Oopaque -> None (* one of f's own locals: call-local write *))
    else Some tg

let eff_of t key =
  match Hashtbl.find_opt t.effects key with
  | Some e -> e
  | None ->
    let e = { etbl = Hashtbl.create 8; eorder = [] } in
    Hashtbl.replace t.effects key e;
    e

let add_effect t key tg w =
  let e = eff_of t key in
  if Hashtbl.mem e.etbl tg then false
  else begin
    Hashtbl.replace e.etbl tg w;
    e.eorder <- tg :: e.eorder;
    true
  end

let effects t key =
  match Hashtbl.find_opt t.effects key with
  | None -> []
  | Some e ->
    List.rev_map
      (fun tg ->
        match Hashtbl.find_opt e.etbl tg with
        | Some w -> (tg, w)
        | None -> (tg, Direct (Names.{ file = ""; line = 0; col = 0 }, "?")))
      e.eorder

let compute_effects t =
  (* seed with each definition's own writes *)
  List.iter
    (fun (d : Summary.def) ->
      List.iter
        (fun (o, loc, what) ->
          match target_in_frame t o with
          | Some tg -> ignore (add_effect t d.Summary.d_key tg (Direct (loc, what)))
          | None -> ())
        d.Summary.d_writes)
    (defs_in_order t);
  (* propagate over call edges until stable *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Summary.def) ->
        List.iter
          (fun (c : Summary.call) ->
            match callee_def t c.Summary.c_callee with
            | None -> ()
            | Some g ->
              List.iter
                (fun (tg, _) ->
                  match lift t f g c tg with
                  | Some tg' ->
                    if add_effect t f.Summary.d_key tg'
                         (Via (g.Summary.d_key, c.Summary.c_loc, tg))
                    then changed := true
                  | None -> ())
                (effects t g.Summary.d_key))
          f.Summary.d_calls)
      (defs_in_order t)
  done

(* --- the taint fixpoint ---------------------------------------------- *)

let taint_of t key =
  match Hashtbl.find_opt t.tlevels key with
  | Some (lvl, _) -> lvl
  | None -> Names.Pure

let compute_taint t ~capped =
  (* seed with each definition's direct sources *)
  List.iter
    (fun (d : Summary.def) ->
      let lvl, chain =
        match d.Summary.d_taint with
        | Some (what, loc) -> (Names.Tainted, Some (TCdirect (what, loc)))
        | None -> ((if d.Summary.d_det then Names.Det_local else Names.Pure), None)
      in
      Hashtbl.replace t.tlevels d.Summary.d_key (lvl, chain))
    (defs_in_order t);
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Summary.def) ->
        let cur, cur_chain =
          match Hashtbl.find_opt t.tlevels f.Summary.d_key with
          | Some v -> v
          | None -> (Names.Pure, None)
        in
        if cur <> Names.Tainted then
          List.iter
            (fun (c : Summary.call) ->
              match callee_def t c.Summary.c_callee with
              | None -> ()
              | Some g ->
                let glvl = taint_of t g.Summary.d_key in
                (* the sanctioned boundary: taint inside an allowed file is
                   that module's contract, not the caller's problem *)
                let glvl =
                  if capped g && not (Names.taint_le glvl Names.Det_local) then
                    Names.Det_local
                  else glvl
                in
                let cur', _ =
                  match Hashtbl.find_opt t.tlevels f.Summary.d_key with
                  | Some v -> v
                  | None -> (Names.Pure, None)
                in
                let merged = Names.taint_max cur' glvl in
                if merged <> cur' then begin
                  let chain =
                    if merged = Names.Tainted then
                      Some (TCvia (g.Summary.d_key, c.Summary.c_loc))
                    else cur_chain
                  in
                  Hashtbl.replace t.tlevels f.Summary.d_key (merged, chain);
                  changed := true
                end)
            f.Summary.d_calls)
      (defs_in_order t)
  done

(* --- witness chains --------------------------------------------------- *)

let write_chain t key tg =
  let rec go seen key tg =
    if List.length seen > 32 || List.mem (key, tg) seen then []
    else
      let seen = (key, tg) :: seen in
      match Hashtbl.find_opt t.effects key with
      | None -> []
      | Some e -> (
        match Hashtbl.find_opt e.etbl tg with
        | Some (Direct (loc, what)) -> [ (key, loc, "writes (" ^ what ^ ")") ]
        | Some (Via (callee, loc, inner)) ->
          (key, loc, "calls " ^ callee) :: go seen callee inner
        | None -> [])
  in
  go [] key tg

let taint_chain t key =
  let rec go depth key =
    if depth > 32 then []
    else
      match Hashtbl.find_opt t.tlevels key with
      | Some (_, Some (TCdirect (what, loc))) -> [ (key, loc, what) ]
      | Some (_, Some (TCvia (callee, loc))) ->
        (key, loc, "calls " ^ callee) :: go (depth + 1) callee
      | _ -> []
  in
  go 0 key

(* --- construction ----------------------------------------------------- *)

let build ~capped (units : Summary.t list) =
  let defs = Hashtbl.create 1024 in
  let sites = Hashtbl.create 256 in
  let globals = Hashtbl.create 512 in
  List.iter
    (fun (u : Summary.t) ->
      List.iter (fun (d : Summary.def) -> Hashtbl.replace defs d.Summary.d_key d) u.Summary.u_defs;
      List.iter (fun (s : Summary.site) -> Hashtbl.replace sites s.Summary.s_key s) u.Summary.u_sites;
      List.iter (fun (k, o) -> Hashtbl.replace globals k o) u.Summary.u_globals)
    units;
  let def_order =
    List.sort compare
      (List.concat_map
         (fun (u : Summary.t) ->
           List.map (fun (d : Summary.def) -> d.Summary.d_key) u.Summary.u_defs)
         units)
  in
  let t =
    { defs;
      sites;
      globals;
      def_order;
      effects = Hashtbl.create 1024;
      tlevels = Hashtbl.create 1024 }
  in
  compute_effects t;
  compute_taint t ~capped;
  t
