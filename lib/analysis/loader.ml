(* Discovery and loading of the [.cmt] typedtrees dune produces.

   dune hides compilation artifacts in dot-directories
   ([_build/default/lib/parallel/.parallel.objs/byte/*.cmt]), so the scan
   must descend into directories ordinary tree walks skip.  Loading is
   the analyzer's only parallel phase: files are read and summarized
   through [Parallel.map_ordered] over the *sorted* path list, and the
   ordered merge keeps everything downstream deterministic. *)

type error = {
  e_path : string;
  e_msg : string;
}

type t = {
  units : Summary.t list;
  errors : error list;
}

let regen_hint = "run `dune build @check` to (re)generate typedtrees"

let is_dir p = try Sys.is_directory p with Sys_error _ -> false

let has_suffix suf s =
  let n = String.length s and m = String.length suf in
  n >= m && String.sub s (n - m) m = suf

(* All *.cmt files under [build_dir/<root>] for each requested root,
   sorted for a deterministic work list. *)
let find_cmts ~build_dir ~roots =
  let acc = ref [] in
  let rec scan dir =
    match Sys.readdir dir with
    | entries ->
      Array.sort compare entries;
      Array.iter
        (fun entry ->
          let p = Filename.concat dir entry in
          if is_dir p then scan p
          else if has_suffix ".cmt" entry then acc := p :: !acc)
        entries
    | exception Sys_error _ -> ()
  in
  List.iter
    (fun root ->
      let dir = Filename.concat build_dir root in
      if is_dir dir then scan dir)
    roots;
  List.sort compare !acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Source text for escape-comment scanning.  [cmt_sourcefile] is recorded
   relative to dune's build context, which usually matches the workspace
   root; generated wrappers sometimes carry one extra leading component,
   so try both. *)
let source_text ~source_root rel =
  let candidates =
    [ Filename.concat source_root rel;
      (match String.index_opt rel '/' with
      | Some i ->
        Filename.concat source_root (String.sub rel (i + 1) (String.length rel - i - 1))
      | None -> rel) ]
  in
  let rec try_all = function
    | [] -> None
    | c :: rest -> (
      if Sys.file_exists c && not (is_dir c) then
        match read_file c with
        | text -> Some text
        | exception Sys_error _ -> try_all rest
      else try_all rest)
  in
  try_all candidates

(* Load one cmt.  [Ok None] for non-implementation artifacts (interfaces,
   packs, partial trees) — they carry no structure to analyze. *)
let load_one path =
  match Cmt_format.read_cmt path with
  | exception Sys_error msg -> Error msg
  | exception Cmt_format.Error (Cmt_format.Not_a_typedtree msg) ->
    Error ("not a typedtree: " ^ msg)
  | exception Failure msg -> Error msg
  | infos -> (
    match infos.Cmt_format.cmt_annots with
    | Cmt_format.Implementation str ->
      let unit_name = Names.normalize_unit infos.Cmt_format.cmt_modname in
      let source =
        match infos.Cmt_format.cmt_sourcefile with Some s -> s | None -> ""
      in
      Ok (Some (Summary.of_structure ~unit_name ~source str))
    | _ -> Ok None)

let load ~build_dir ~roots ~jobs =
  let paths = find_cmts ~build_dir ~roots in
  let results =
    Parallel.map_ordered ~jobs (fun path -> (path, load_one path)) paths
  in
  let units, errors =
    List.fold_left
      (fun (us, es) (path, r) ->
        match r with
        | Ok (Some u) -> (u :: us, es)
        | Ok None -> (us, es)
        | Error msg -> (us, { e_path = path; e_msg = msg } :: es))
      ([], []) results
  in
  { units = List.rev units; errors = List.rev errors }
