(* Orchestration: discover and load cmts (the only parallel phase), link
   the call graph, run both checks, classify against lint.toml and escape
   comments, and hand back a report plus counters.  Everything after the
   ordered parallel load is serial and sorted, so the same tree yields
   the same report for any [jobs]. *)

type options = {
  build_dir : string;
  source_root : string;
  roots : string list;
  config : Lint.Config.t;
  jobs : int;
  read_source : (string -> string option) option;
      (** test hook: overrides on-disk source text for escape-comment
          scanning *)
}

type outcome = {
  o_report : Report.t;
  o_cmts : int;
  o_units : int;
}

let default_options ~config =
  { build_dir = Filename.concat "_build" "default";
    source_root = ".";
    roots = config.Lint.Config.roots;
    config;
    jobs = 1;
    read_source = None }

let run (opts : options) =
  let cmts = Loader.find_cmts ~build_dir:opts.build_dir ~roots:opts.roots in
  if cmts = [] then
    Error
      (Printf.sprintf "no .cmt files under %s for roots [%s]; %s" opts.build_dir
         (String.concat ", " opts.roots)
         Loader.regen_hint)
  else begin
    let loaded = Loader.load ~build_dir:opts.build_dir ~roots:opts.roots ~jobs:opts.jobs in
    let taint_cfg = Lint.Config.rule_cfg opts.config "race-taint" in
    let escape_cfg = Lint.Config.rule_cfg opts.config "race-escape" in
    let capped (d : Summary.def) =
      Lint.Config.path_in taint_cfg.Lint.Config.allow d.Summary.d_loc.Names.file
    in
    let graph = Callgraph.build ~capped loaded.Loader.units in
    let escape_findings =
      Escape.check graph ~allowed:(Lint.Config.path_in escape_cfg.Lint.Config.allow)
    in
    let taint_findings = Taint.check graph ~capped in
    let read_source =
      match opts.read_source with
      | Some f -> f
      | None -> Loader.source_text ~source_root:opts.source_root
    in
    let errors =
      List.map (fun (e : Loader.error) -> (e.Loader.e_path, e.Loader.e_msg)) loaded.Loader.errors
    in
    let report =
      Report.make ~config:opts.config ~read_source ~errors
        (escape_findings @ taint_findings)
    in
    Ok
      { o_report = report;
        o_cmts = List.length cmts;
        o_units = List.length loaded.Loader.units }
  end
