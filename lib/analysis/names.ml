(* Canonical naming and the primitive-classification tables.

   Typedtree paths arrive in two spellings for the same definition —
   through dune's alias module ("Experiments.Common.replicates") or the
   mangled unit name ("Experiments__Common.replicates") — and the whole
   analysis rests on both mapping to one canonical key.  [normalize]
   splits every component on the "__" mangling separator, so both
   spellings become ["Experiments"; "Common"; "replicates"].

   The tables at the bottom are the semantic counterpart of radio_lint's
   syntactic identifier rules: which stdlib calls allocate mutable state,
   which mutate (and which argument is the mutated one), which are
   nondeterminism sources, and which calls are the pool boundary. *)

type loc = {
  file : string;
  line : int;
  col : int;
}

type span = {
  sp_file : string;
  sp_bline : int;
  sp_bcol : int;
  sp_eline : int;
  sp_ecol : int;
}

let loc_of ~file (l : Location.t) =
  let p = l.Location.loc_start in
  { file; line = p.Lexing.pos_lnum; col = p.Lexing.pos_cnum - p.Lexing.pos_bol }

let span_of ~file (l : Location.t) =
  let b = l.Location.loc_start and e = l.Location.loc_end in
  { sp_file = file;
    sp_bline = b.Lexing.pos_lnum;
    sp_bcol = b.Lexing.pos_cnum - b.Lexing.pos_bol;
    sp_eline = e.Lexing.pos_lnum;
    sp_ecol = e.Lexing.pos_cnum - e.Lexing.pos_bol }

let null_span = { sp_file = ""; sp_bline = 0; sp_bcol = 0; sp_eline = 0; sp_ecol = 0 }

let loc_in_span (l : loc) (s : span) =
  l.file = s.sp_file
  && (l.line > s.sp_bline || (l.line = s.sp_bline && l.col >= s.sp_bcol))
  && (l.line < s.sp_eline || (l.line = s.sp_eline && l.col <= s.sp_ecol))

let pp_loc fmt (l : loc) = Format.fprintf fmt "%s:%d:%d" l.file l.line l.col

(* --- canonical paths ------------------------------------------------ *)

(* "Experiments__Common" -> ["Experiments"; "Common"]; "Parallel__" ->
   ["Parallel"] (the trailing separator of dune's alias-only units). *)
let split_mangled comp =
  let n = String.length comp in
  let out = ref [] and start = ref 0 in
  let flush stop = if stop > !start then out := String.sub comp !start (stop - !start) :: !out in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && comp.[!i] = '_' && comp.[!i + 1] = '_' then begin
      flush !i;
      (* skip the full run of underscores *)
      while !i < n && comp.[!i] = '_' do incr i done;
      start := !i
    end
    else incr i
  done;
  flush n;
  List.rev !out

let rec flatten_path = function
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> flatten_path p @ [ s ]
  | Path.Papply (p, _) -> flatten_path p
  | Path.Pextra_ty (p, _) -> flatten_path p

let normalize_components comps = List.concat_map split_mangled comps

let normalize p = normalize_components (flatten_path p)

let key_of_components comps = String.concat "." comps

let normalize_unit modname = key_of_components (split_mangled modname)

let strip_stdlib = function "Stdlib" :: rest -> rest | p -> p

(* --- mutable allocation sites --------------------------------------- *)

type alloc_kind =
  | Ref
  | Arr
  | Byt
  | Tbl
  | Buf
  | Atom
  | Mrec
  | Que
  | Stk
  | Dls

let alloc_kind_name = function
  | Ref -> "ref"
  | Arr -> "array"
  | Byt -> "bytes"
  | Tbl -> "hashtbl"
  | Buf -> "buffer"
  | Atom -> "atomic"
  | Mrec -> "mutable-record"
  | Que -> "queue"
  | Stk -> "stack"
  | Dls -> "domain-local"

(* Calls whose result is freshly allocated mutable state.  Producers that
   merely transform (map, append, ...) count too: what matters is that the
   bound value is mutable and distinct from its inputs. *)
let mutable_alloc path =
  match strip_stdlib path with
  | [ "ref" ] -> Some Ref
  | [ ("Array" | "ArrayLabels" | "Float" | "Floatarray");
      ( "make" | "create" | "create_float" | "init" | "make_matrix" | "make_float" | "copy"
      | "of_list" | "sub" | "append" | "concat" | "map" | "mapi" | "map2" ) ] ->
    Some Arr
  | [ ("Bytes" | "BytesLabels");
      ( "create" | "make" | "init" | "copy" | "of_string" | "sub" | "extend" | "cat"
      | "concat" ) ] ->
    Some Byt
  | [ "Hashtbl"; ("create" | "copy" | "of_seq") ]
  | [ "MoreLabels"; "Hashtbl"; ("create" | "copy" | "of_seq") ] ->
    Some Tbl
  | [ "Buffer"; "create" ] -> Some Buf
  | [ "Atomic"; "make" ] -> Some Atom
  | [ "Queue"; ("create" | "copy" | "of_seq") ] -> Some Que
  | [ "Stack"; ("create" | "copy" | "of_seq") ] -> Some Stk
  | [ "Domain"; "DLS"; "new_key" ] -> Some Dls
  | _ -> None

(* --- mutation primitives -------------------------------------------- *)

(* [mutates path] returns the positions (among the call's unlabelled
   arguments) of the values being mutated. *)
let mutates path =
  match strip_stdlib path with
  | [ ":=" ] | [ "incr" ] | [ "decr" ] -> Some [ 0 ]
  | [ ("Array" | "ArrayLabels" | "Floatarray"); ("set" | "unsafe_set" | "fill") ] ->
    Some [ 0 ]
  | [ ("Array" | "ArrayLabels"); ("sort" | "stable_sort" | "fast_sort" | "shuffle") ] ->
    Some [ 1 ]
  | [ ("Array" | "ArrayLabels"); "blit" ] -> Some [ 2 ]
  | [ ("Bytes" | "BytesLabels");
      ("set" | "unsafe_set" | "fill" | "unsafe_fill" | "set_uint8" | "set_uint16_le"
      | "set_uint16_be" | "set_int32_le" | "set_int32_be" | "set_int64_le" | "set_int64_be")
    ] ->
    Some [ 0 ]
  | [ ("Bytes" | "BytesLabels"); ("blit" | "blit_string" | "unsafe_blit") ] -> Some [ 2 ]
  | [ "String"; "blit" ] -> Some [ 2 ]
  | [ "Hashtbl"; ("add" | "replace" | "remove" | "reset" | "clear" | "filter_map_inplace") ]
  | [ "MoreLabels"; "Hashtbl";
      ("add" | "replace" | "remove" | "reset" | "clear" | "filter_map_inplace") ] ->
    Some [ 0 ]
  | [ "Buffer";
      ( "add_char" | "add_string" | "add_bytes" | "add_substring" | "add_subbytes"
      | "add_utf_8_uchar" | "add_utf_16le_uchar" | "add_utf_16be_uchar" | "add_channel"
      | "add_buffer" | "clear" | "reset" | "truncate" ) ] ->
    Some [ 0 ]
  | [ "Atomic"; ("set" | "exchange" | "compare_and_set" | "fetch_and_add" | "incr" | "decr") ]
    ->
    Some [ 0 ]
  | [ "Queue"; ("push" | "add") ] -> Some [ 1 ]
  | [ "Queue"; ("pop" | "take" | "clear") ] -> Some [ 0 ]
  | [ "Queue"; "transfer" ] -> Some [ 0; 1 ]
  | [ "Stack"; "push" ] -> Some [ 1 ]
  | [ "Stack"; ("pop" | "clear") ] -> Some [ 0 ]
  | [ "Domain"; "DLS"; "set" ] -> Some [ 0 ]
  | _ -> None

(* --- determinism taint sources -------------------------------------- *)

type taint =
  | Pure
  | Det_local  (** deterministic given the merge discipline; owns local state *)
  | Tainted  (** clock, OS state, randomness, unordered traversal, raw domains *)

let taint_name = function
  | Pure -> "Pure"
  | Det_local -> "DetLocal"
  | Tainted -> "Tainted"

let taint_rank = function Pure -> 0 | Det_local -> 1 | Tainted -> 2

let taint_max a b = if taint_rank a >= taint_rank b then a else b

let taint_le a b = taint_rank a <= taint_rank b

(* [taint_source path] classifies an identifier reference; [Some msg]
   describes why touching it taints the caller. *)
let taint_source path =
  match strip_stdlib path with
  | "Random" :: _ -> Some "Stdlib.Random (unseeded randomness)"
  | [ "Sys"; ("time" | "getenv" | "getenv_opt" | "getcwd" | "readdir" | "command") ] ->
    Some ("Sys." ^ List.nth (strip_stdlib path) 1 ^ " (OS state)")
  | ("Unix" | "UnixLabels") :: _ -> Some "Unix (wall clock / OS state)"
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param") ]
  | [ "MoreLabels"; "Hashtbl"; ("hash" | "seeded_hash" | "hash_param") ] ->
    Some "polymorphic Hashtbl.hash (layout-dependent fingerprint)"
  | [ "Hashtbl";
      ( "iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values" | "stats" | "randomize"
      | "rebuild" ) ]
  | [ "MoreLabels"; "Hashtbl";
      ( "iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values" | "stats" | "randomize"
      | "rebuild" ) ] ->
    Some "unordered Hashtbl traversal"
  | [ "Domain"; ("spawn" | "join" | "self" | "cpu_relax" | "recommended_domain_count") ] ->
    Some "raw Domain primitive"
  | ("Mutex" | "Condition" | "Semaphore") :: _ -> Some "raw lock primitive"
  | [ ( "print_endline" | "print_string" | "print_newline" | "print_char" | "print_int"
      | "print_float" | "print_bytes" | "prerr_endline" | "prerr_string" | "prerr_newline"
      | "read_line" | "read_int" | "read_int_opt" | "stdin" | "stdout" | "stderr" ) ] ->
    Some "stdout/stderr/stdin I/O"
  | [ f ]
    when String.length f >= 5
         && (String.sub f 0 5 = "open_" || String.sub f 0 5 = "input"
            || String.sub f 0 5 = "close")
         || String.length f >= 6 && String.sub f 0 6 = "output" ->
    Some "channel I/O"
  | ("In_channel" | "Out_channel") :: _ -> Some "channel I/O"
  | [ "Printf"; ("printf" | "eprintf") ] | [ "Format"; ("printf" | "eprintf") ] ->
    Some "stdout/stderr printing"
  | [ "Format";
      ("std_formatter" | "err_formatter" | "print_string" | "print_newline" | "print_flush")
    ] ->
    Some "stdout/stderr printing"
  | [ "Filename"; ("temp_file" | "open_temp_file" | "temp_dir" | "get_temp_dir_name") ] ->
    Some "temp-file I/O"
  | _ -> None

(* References that mark a function as at least [Det_local] without
   tainting it: per-domain storage and GC observability. *)
let det_local_source path =
  match strip_stdlib path with
  | "Domain" :: "DLS" :: _ -> true
  | "Gc" :: _ -> true
  | _ -> false

(* --- the pool boundary ---------------------------------------------- *)

(* [pool_entry path] recognizes a call that submits work to the shared
   domain pool and returns (display name, index of the task closure among
   the call's unlabelled arguments). *)
let pool_entry path =
  let ends_with suffix =
    let n = List.length path and m = List.length suffix in
    n >= m
    &&
    let rec drop k l = if k = 0 then l else drop (k - 1) (List.tl l) in
    drop (n - m) path = suffix
  in
  if ends_with [ "Parallel"; "Pool"; "map_ordered" ] then Some ("Pool.map_ordered", 1)
  else if ends_with [ "Parallel"; "map_ordered" ] then Some ("Parallel.map_ordered", 0)
  else if ends_with [ "Common"; "replicates" ] then Some ("Common.replicates", 0)
  else if ends_with [ "Common"; "sweep" ] then Some ("Common.sweep", 0)
  else None
