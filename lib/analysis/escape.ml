(* The race-escape check: for every closure submitted across the pool
   boundary, inspect its interprocedural writes-effect.  Writing its own
   parameters or values allocated inside its span is per-task and fine;
   writing an allocation site from outside the closure, a captured
   binding of an enclosing frame, or an unresolved top-level value means
   every task mutates the same store concurrently — a race the ordered
   merge cannot repair.  Per-domain DLS state and sites owned by the
   sanctioned runtime (the race-escape allowlist) are exempt. *)

let chain_tail_loc (chain : Report.step list) fallback =
  match List.rev chain with [] -> fallback | last :: _ -> last.Report.st_loc

let steps_of t key tg =
  List.map
    (fun (st_def, st_loc, st_action) -> { Report.st_def; st_loc; st_action })
    (Callgraph.write_chain t key tg)

let finding_of t ~entry_fn ~entry_loc ~closure_key tg =
  let chain = steps_of t closure_key tg in
  let mk loc message =
    Some
      { Report.f_rule = "race-escape";
        f_loc = loc;
        f_def = closure_key;
        f_entry = Some (entry_fn, entry_loc);
        f_message = message;
        f_chain = chain }
  in
  match tg with
  | Callgraph.TParam _ -> None
  | Callgraph.TSite s -> (
    match Callgraph.site t s with
    | None -> None
    | Some site ->
      let kind = site.Summary.s_kind in
      if kind = Names.Dls then None  (* per-domain by construction *)
      else
        mk site.Summary.s_loc
          (Printf.sprintf
             "task closure writes mutable %s `%s` allocated outside it (%s); every pool \
              task shares this store"
             (Names.alloc_kind_name kind) site.Summary.s_name
             (if site.Summary.s_top then "module level" else "enclosing scope")))
  | Callgraph.TGlobal g ->
    let loc =
      match Callgraph.def t g with
      | Some d -> d.Summary.d_loc
      | None -> chain_tail_loc chain entry_loc
    in
    mk loc
      (Printf.sprintf "task closure writes top-level value `%s`; every pool task shares it"
         g)
  | Callgraph.TOuter o ->
    mk (chain_tail_loc chain entry_loc)
      (Printf.sprintf
         "task closure writes `%s`, captured from enclosing definition %s; every pool \
          task shares it"
         o.Summary.oname o.Summary.oframe)

(* Exempt sites whose own file is allowlisted (the pool's internal queue,
   the per-domain cache): [allowed] tests the *site's* file, which is the
   semantic difference from line-based suppression. *)
let site_allowed t ~allowed tg =
  match tg with
  | Callgraph.TSite s -> (
    match Callgraph.site t s with
    | Some site -> allowed site.Summary.s_loc.Names.file
    | None -> false)
  | Callgraph.TGlobal g -> (
    match Callgraph.def t g with
    | Some d -> allowed d.Summary.d_loc.Names.file
    | None -> false)
  | Callgraph.TParam _ | Callgraph.TOuter _ -> false

let check t ~allowed =
  List.concat_map
    (fun (d : Summary.def) ->
      List.concat_map
        (fun (e : Summary.entry) ->
          match Callgraph.resolve t e.Summary.e_closure with
          | Callgraph.RFunc closure_key -> (
            match Callgraph.def t closure_key with
            | None -> []
            | Some c ->
              List.filter_map
                (fun (tg, _w) ->
                  let local =
                    match tg with
                    | Callgraph.TSite s -> (
                      match Callgraph.site t s with
                      | Some site ->
                        Names.loc_in_span site.Summary.s_loc c.Summary.d_span
                      | None -> false)
                    | _ -> false
                  in
                  if local || site_allowed t ~allowed tg then None
                  else
                    finding_of t ~entry_fn:e.Summary.e_fn ~entry_loc:e.Summary.e_loc
                      ~closure_key tg)
                (Callgraph.effects t closure_key))
          | Callgraph.RSite _ | Callgraph.RUnknown -> [])
        d.Summary.d_entries)
    (Callgraph.defs_in_order t)
