(** Canonical naming and primitive-classification tables for the typed
    analyzer.

    Typedtree paths spell the same definition two ways — through dune's
    alias module ("Experiments.Common.replicates") or the mangled unit
    name ("Experiments__Common.replicates"); {!normalize} maps both onto
    one canonical component list, which is what makes the call graph
    alias-robust where radio_lint's syntactic rules are not. *)

(** {1 Source positions} *)

type loc = {
  file : string;
  line : int;
  col : int;
}

type span = {
  sp_file : string;
  sp_bline : int;
  sp_bcol : int;
  sp_eline : int;
  sp_ecol : int;
}

val loc_of : file:string -> Location.t -> loc

val span_of : file:string -> Location.t -> span

val null_span : span

val loc_in_span : loc -> span -> bool
(** Lexical containment: does [loc] fall inside the span (same file,
    position within the range)? *)

val pp_loc : Format.formatter -> loc -> unit
(** ["file:line:col"]. *)

(** {1 Canonical paths} *)

val flatten_path : Path.t -> string list

val normalize : Path.t -> string list
(** Flatten and split each component on the "__" mangling separator. *)

val normalize_components : string list -> string list

val key_of_components : string list -> string

val normalize_unit : string -> string
(** Canonical form of a compilation-unit name
    (["Experiments__Common"] -> ["Experiments.Common"]). *)

val strip_stdlib : string list -> string list

(** {1 Mutable allocation} *)

type alloc_kind =
  | Ref
  | Arr
  | Byt
  | Tbl
  | Buf
  | Atom
  | Mrec  (** record with at least one mutable field *)
  | Que
  | Stk
  | Dls  (** [Domain.DLS.new_key] — per-domain, sanctioned *)

val alloc_kind_name : alloc_kind -> string

val mutable_alloc : string list -> alloc_kind option
(** Calls whose result is freshly allocated mutable state. *)

val mutates : string list -> int list option
(** Positions (among the call's unlabelled arguments) of the values a
    primitive mutates, e.g. [Hashtbl.replace] -> [[0]],
    [Bytes.blit] -> [[2]]. *)

(** {1 Determinism taint} *)

type taint =
  | Pure
  | Det_local
  | Tainted
      (** The lattice [Pure < Det_local < Tainted]: [Det_local] owns local
          mutable state but stays deterministic under the ordered-merge
          discipline; [Tainted] observes the clock, OS state, randomness,
          unordered traversal, or raw domain primitives. *)

val taint_name : taint -> string

val taint_max : taint -> taint -> taint

val taint_le : taint -> taint -> bool

val taint_source : string list -> string option
(** [Some description] when referencing the identifier taints the caller. *)

val det_local_source : string list -> bool
(** References that mark a function [Det_local] without tainting it
    (per-domain DLS storage, GC observability counters). *)

(** {1 The pool boundary} *)

val pool_entry : string list -> (string * int) option
(** Recognize a call that submits work to the shared domain pool:
    [(display name, index of the task closure among the call's unlabelled
    arguments)].  Covers [Parallel.map_ordered], [Pool.map_ordered],
    [Common.replicates], and [Common.sweep]. *)
