(** The race-taint check: every definition reachable from the experiment
    runner/registry or from a pool-crossing closure must stay at or below
    [Det_local].  The walk stops at definitions for which [capped] holds
    (files inside the race-taint allowlist — their taint is an audited
    contract). *)

val anchor_prefixes : string list
(** Definition-key prefixes anchoring reachability
    (["Experiments.Runner."], ["Experiments.Registry."]). *)

val check : Callgraph.t -> capped:(Summary.def -> bool) -> Report.finding list
