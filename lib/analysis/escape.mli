(** The race-escape check: closures submitted across the pool boundary
    must not write mutable state allocated outside themselves.  Writes to
    own parameters and to allocations inside the closure's span are
    per-task; per-domain DLS state and sites owned by allowlisted files
    are sanctioned. *)

val check : Callgraph.t -> allowed:(string -> bool) -> Report.finding list
(** [allowed file] holds for files inside the race-escape allowlist
    (tested against the *allocation site's* file, not the closure's). *)
