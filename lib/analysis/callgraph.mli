(** Whole-repo linking of unit summaries and the two interprocedural
    fixpoints: writes-effects (what does calling [f] mutate, seen from
    [f]'s frame) and determinism taint ([Pure < Det_local < Tainted]
    propagated backwards over calls, capped at the sanctioned boundary).

    Both fixpoints iterate definitions in sorted-key order and record a
    witness when a fact is first derived, so explanation chains are
    deterministic. *)

type res =
  | RFunc of string
  | RSite of Summary.site_key
  | RUnknown

(** A value a definition mutates, described from its own frame. *)
type target =
  | TParam of int
  | TSite of Summary.site_key
  | TGlobal of string  (** a top-level value we could not resolve to a site *)
  | TOuter of Summary.outer  (** a value captured from an enclosing frame *)

type witness =
  | Direct of Names.loc * string
  | Via of string * Names.loc * target
      (** (callee, call site, the callee-frame target this lifted from) *)

type t

val build : capped:(Summary.def -> bool) -> Summary.t list -> t
(** Link the units and run both fixpoints.  [capped d] holds for
    definitions inside the sanctioned taint boundary (their taint is
    capped to [Det_local] when it flows to callers). *)

val def : t -> string -> Summary.def option

val site : t -> Summary.site_key -> Summary.site option

val defs_in_order : t -> Summary.def list
(** All definitions, sorted by key. *)

val resolve : t -> Summary.origin -> res
(** Chase a value origin to a function or allocation site through
    top-level aliases and initializer returns. *)

val callee_def : t -> string -> Summary.def option
(** The definition a call edge lands on, through aliases. *)

val effects : t -> string -> (target * witness) list
(** The writes-effect of a definition, in first-derived order. *)

val taint_of : t -> string -> Names.taint

val write_chain : t -> string -> target -> (string * Names.loc * string) list
(** Reconstruct the derivation of one effect target as presentation
    steps [(definition, location, action)], ending at the direct write. *)

val taint_chain : t -> string -> (string * Names.loc * string) list
(** Reconstruct why a definition is [Tainted], ending at the direct
    source reference. *)
