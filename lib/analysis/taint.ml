(* The race-taint check: every definition reachable from the result
   paths — the experiment runner and registry, plus every closure that
   crosses the pool boundary — must stay at or below Det_local on the
   [Pure < Det_local < Tainted] lattice.

   The traversal is a breadth-first walk of the call graph from those
   anchors.  It stops at definitions whose file is inside the race-taint
   allowlist: taint there (the pool's clock, the loader's file I/O) is
   that module's audited contract and does not flow to callers.  A
   finding is reported at the definition that *directly* references a
   nondeterminism source; transitively tainted callers are covered by
   the chain on that one finding rather than repeated. *)

let anchor_prefixes = [ "Experiments.Runner."; "Experiments.Registry." ]

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let is_anchor (d : Summary.def) =
  List.exists (fun p -> has_prefix p d.Summary.d_key) anchor_prefixes

(* Pool-crossing closures, resolved. *)
let entry_closures t =
  List.concat_map
    (fun (d : Summary.def) ->
      List.filter_map
        (fun (e : Summary.entry) ->
          match Callgraph.resolve t e.Summary.e_closure with
          | Callgraph.RFunc k -> Some k
          | Callgraph.RSite _ | Callgraph.RUnknown -> None)
        d.Summary.d_entries)
    (Callgraph.defs_in_order t)

let check t ~capped =
  let anchors =
    List.sort_uniq compare
      (List.filter_map
         (fun (d : Summary.def) ->
           if is_anchor d then Some d.Summary.d_key else None)
         (Callgraph.defs_in_order t)
      @ entry_closures t)
  in
  let visited = Hashtbl.create 256 in
  let findings = ref [] in
  let queue = Queue.create () in
  List.iter
    (fun a -> Queue.add (a, [ (a, "anchor") ]) queue)
    anchors;
  while not (Queue.is_empty queue) do
    let key, path = Queue.pop queue in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.replace visited key ();
      match Callgraph.def t key with
      | None -> ()
      | Some d ->
        if not (capped d) then begin
          (match d.Summary.d_taint with
          | Some (what, loc) ->
            let chain =
              List.rev_map
                (fun (step_key, action) ->
                  let st_loc =
                    match Callgraph.def t step_key with
                    | Some sd -> sd.Summary.d_loc
                    | None -> loc
                  in
                  { Report.st_def = step_key; st_loc; st_action = action })
                path
            in
            findings :=
              { Report.f_rule = "race-taint";
                f_loc = loc;
                f_def = key;
                f_entry = None;
                f_message =
                  Printf.sprintf
                    "%s references %s; it is reachable from deterministic result paths \
                     and must stay at or below DetLocal"
                    key what;
                f_chain = chain }
              :: !findings
          | None -> ());
          List.iter
            (fun (c : Summary.call) ->
              match Callgraph.callee_def t c.Summary.c_callee with
              | Some g ->
                if not (Hashtbl.mem visited g.Summary.d_key) then
                  Queue.add
                    (g.Summary.d_key, (g.Summary.d_key, "called by " ^ key) :: path)
                    queue
              | None -> ())
            d.Summary.d_calls
        end
    end
  done;
  List.rev !findings
