(** The "(t+1)-leader spanner" of Section 6.

    A sparse exchange set with about n(t+1) ordered pairs: every pair with at
    least one endpoint among the t+1 leaders.  Removing any t nodes leaves at
    least one leader connected to every surviving node, which is the
    connectivity property the group-key protocol relies on. *)

val leaders : t:int -> int list
(** The t+1 leader ids: [0 .. t]. *)

val pairs : n:int -> t:int -> (int * int) list
(** All ordered pairs (v, w), v <> w, with v or w a leader; sorted. *)

val graph : n:int -> t:int -> Digraph.t

val dense : n:int -> t:int -> Digraph.Dense.t
(** The same spanner in the bitset representation (universe [0..n-1]). *)

val survives_removal : n:int -> t:int -> removed:int list -> bool
(** After deleting [removed] (any set of at most t nodes), is the undirected
    spanner on the remaining nodes connected?  Bitset BFS over the dense
    spanner; used by tests to validate the (t+1)-connectivity claim by
    exhaustive/sampled removal. *)

val connected_after : Digraph.Dense.t -> alive:Bitset.t -> bool
(** Is the undirected restriction of the graph to [alive] connected?
    (Vacuously true when [alive] is empty.) *)
