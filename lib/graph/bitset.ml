(* Flat bitsets over small-int node universes: the storage primitive under
   [Digraph.Dense], the vertex-cover solver's scratch graphs, and the game
   state's starred/universe sets.

   A set over capacity [n] is an [int array] of ceil(n/63) words, 63 bits
   per word (the OCaml native-int payload), bit [i] of word [w] holding
   node [w*63 + i].  All iteration is in ascending node order, so every
   traversal is deterministic. *)

type t = int array

let bits_per_word = 63

let words_for n =
  if n < 0 then invalid_arg "Bitset: negative capacity";
  (n + bits_per_word - 1) / bits_per_word

let create n = Array.make (words_for n) 0

let capacity s = Array.length s * bits_per_word

(* Per-word popcount, split into two halves so every mask constant fits in
   a 63-bit literal. *)
let popcount_word x =
  let half y =
    let y = y - ((y lsr 1) land 0x55555555) in
    let y = (y land 0x33333333) + ((y lsr 2) land 0x33333333) in
    let y = (y + (y lsr 4)) land 0x0F0F0F0F in
    (* Native-int multiply doesn't wrap at 32 bits like the classic trick
       assumes: extract the accumulator byte explicitly. *)
    ((y * 0x01010101) lsr 24) land 0xFF
  in
  half (x land 0xFFFFFFFF) + half (x lsr 32)

(* Number of trailing zeros of [b], a value with exactly one bit set. *)
let bit_index b = popcount_word (b - 1)

let mem s i =
  if i < 0 then false
  else
    let w = i / bits_per_word in
    w < Array.length s && s.(w) land (1 lsl (i mod bits_per_word)) <> 0

let check_range s i op =
  if i < 0 || i / bits_per_word >= Array.length s then
    invalid_arg (Printf.sprintf "Bitset.%s: index %d out of range" op i)

let set s i =
  check_range s i "set";
  s.(i / bits_per_word) <- s.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))

let unset s i =
  check_range s i "unset";
  s.(i / bits_per_word) <- s.(i / bits_per_word) land lnot (1 lsl (i mod bits_per_word))

let copy = Array.copy

let add s i =
  if mem s i then s
  else begin
    let s' = Array.copy s in
    set s' i;
    s'
  end

let count s =
  let total = ref 0 in
  for w = 0 to Array.length s - 1 do
    total := !total + popcount_word s.(w)
  done;
  !total

let is_empty s =
  let rec go w = w >= Array.length s || (s.(w) = 0 && go (w + 1)) in
  go 0

let iter f s =
  for w = 0 to Array.length s - 1 do
    let x = ref s.(w) in
    let base = w * bits_per_word in
    while !x <> 0 do
      let b = !x land - !x in
      f (base + bit_index b);
      x := !x lxor b
    done
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list n xs =
  let s = create n in
  List.iter (fun i -> set s i) xs;
  s

let equal = ( = )

let word s w = s.(w)

let set_word s w x = s.(w) <- x

let words s = Array.length s
