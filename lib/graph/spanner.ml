let leaders ~t = List.init (t + 1) Fun.id

let pairs ~n ~t =
  if n < t + 2 then invalid_arg "Spanner.pairs: need n >= t + 2";
  let is_leader v = v <= t in
  let acc = ref [] in
  for v = n - 1 downto 0 do
    for w = n - 1 downto 0 do
      if v <> w && (is_leader v || is_leader w) then acc := (v, w) :: !acc
    done
  done;
  !acc

let graph ~n ~t = Digraph.of_edges (pairs ~n ~t)

let survives_removal ~n ~t ~removed =
  let module S = Set.Make (Int) in
  let gone = S.of_list removed in
  let alive v = v >= 0 && v < n && not (S.mem v gone) in
  let adjacency = Hashtbl.create 64 in
  List.iter
    (fun (v, w) ->
      if alive v && alive w then begin
        Hashtbl.replace adjacency v (w :: (try Hashtbl.find adjacency v with Not_found -> []));
        Hashtbl.replace adjacency w (v :: (try Hashtbl.find adjacency w with Not_found -> []))
      end)
    (pairs ~n ~t);
  let survivors = List.filter alive (List.init n Fun.id) in
  match survivors with
  | [] -> true
  | start :: _ ->
    let visited = Hashtbl.create 64 in
    let rec bfs = function
      | [] -> ()
      | v :: rest ->
        if Hashtbl.mem visited v then bfs rest
        else begin
          Hashtbl.add visited v ();
          bfs ((try Hashtbl.find adjacency v with Not_found -> []) @ rest)
        end
    in
    bfs [ start ];
    List.for_all (Hashtbl.mem visited) survivors
