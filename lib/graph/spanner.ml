let leaders ~t = List.init (t + 1) Fun.id

let pairs ~n ~t =
  if n < t + 2 then invalid_arg "Spanner.pairs: need n >= t + 2";
  let is_leader v = v <= t in
  let acc = ref [] in
  for v = n - 1 downto 0 do
    for w = n - 1 downto 0 do
      if v <> w && (is_leader v || is_leader w) then acc := (v, w) :: !acc
    done
  done;
  !acc

let graph ~n ~t = Digraph.of_edges (pairs ~n ~t)

let dense ~n ~t = Digraph.Dense.of_edges ~n (pairs ~n ~t)

(* Connectivity of the undirected survivor graph by bitset BFS: the
   frontier's out|in rows are or-ed into the visited word set, so each BFS
   round costs O(frontier * words) instead of list appends per edge. *)
let connected_after g ~alive =
  let n = Digraph.Dense.universe g in
  let nwords = Bitset.words alive in
  match Bitset.fold (fun v acc -> match acc with None -> Some v | some -> some) alive None with
  | None -> true
  | Some start ->
    let visited = Bitset.create n in
    Bitset.set visited start;
    let frontier = ref [ start ] in
    while !frontier <> [] do
      let next = ref [] in
      List.iter
        (fun v ->
          let ov = Digraph.Dense.out_row g v and iv = Digraph.Dense.in_row g v in
          for w = 0 to nwords - 1 do
            (* Undirected reachable neighbors, still alive, not yet seen. *)
            let fresh =
              (Bitset.word ov w lor Bitset.word iv w)
              land Bitset.word alive w
              land lnot (Bitset.word visited w)
            in
            if fresh <> 0 then begin
              Bitset.set_word visited w (Bitset.word visited w lor fresh);
              let x = ref fresh in
              let base = w * Bitset.bits_per_word in
              while !x <> 0 do
                let b = !x land - !x in
                next := (base + Bitset.bit_index b) :: !next;
                x := !x lxor b
              done
            end
          done)
        !frontier;
      frontier := !next
    done;
    (* Connected iff every alive node was visited. *)
    let rec all w =
      w >= nwords
      || (Bitset.word alive w land lnot (Bitset.word visited w) = 0 && all (w + 1))
    in
    all 0

let survives_removal ~n ~t ~removed =
  let g = dense ~n ~t in
  let alive = Bitset.create n in
  for v = 0 to n - 1 do
    Bitset.set alive v
  done;
  List.iter (fun v -> if v >= 0 && v < n then Bitset.unset alive v) removed;
  connected_after g ~alive
