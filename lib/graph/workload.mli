(** Generators for AME exchange sets E (ordered pairs of distinct nodes).

    These are the workloads the experiments sweep: disjoint pairs (the
    lower-bound construction of Theorem 2), complete graphs (the
    triangle-adversary construction of Section 5), stars, leader spanners,
    and random pair sets. *)

val disjoint_pairs : n:int -> count:int -> (int * int) list
(** [count] pairwise node-disjoint pairs (i, i + count): the workload of
    Theorem 2's proof.  Requires [2 * count <= n]. *)

val complete : n:int -> (int * int) list
(** Every ordered pair of distinct nodes in [0, n). *)

val complete_on : int list -> (int * int) list
(** Every ordered pair of distinct nodes from the given list. *)

val star : n:int -> hub:int -> (int * int) list
(** Hub sends to every other node. *)

val inverse_star : n:int -> hub:int -> (int * int) list
(** Every other node sends to the hub. *)

val random_pairs : Prng.Rng.t -> n:int -> count:int -> (int * int) list
(** [count] distinct ordered pairs drawn uniformly. Requires
    [count <= n * (n-1)]. *)

val bidirectional : (int * int) list -> (int * int) list
(** Close a pair set under reversal (needed for key exchange, where both
    directions must carry a message). *)
