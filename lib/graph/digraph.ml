module Edge_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type edge = int * int

type t = Edge_set.t

let empty = Edge_set.empty

let check (v, w) =
  if v = w then invalid_arg "Digraph: self-loop"
  else if v < 0 || w < 0 then invalid_arg "Digraph: negative node id"

let add_edge t e =
  check e;
  Edge_set.add e t

let of_edges es = List.fold_left add_edge empty es

let remove_edge t e = Edge_set.remove e t

let mem_edge t e = Edge_set.mem e t

let edges t = Edge_set.elements t

let edge_count t = Edge_set.cardinal t

let is_empty t = Edge_set.is_empty t

module Int_set = Set.Make (Int)

let vertices t =
  Int_set.elements
    (Edge_set.fold (fun (v, w) acc -> Int_set.add v (Int_set.add w acc)) t Int_set.empty)

let sources t =
  (* Edge_set.fold visits edges in increasing (v, w) order, so duplicate
     sources are adjacent: dedup on the fly instead of building a set. *)
  List.rev
    (Edge_set.fold
       (fun (v, _) acc -> match acc with x :: _ when x = v -> acc | _ -> v :: acc)
       t [])

let out_edges t v = Edge_set.elements (Edge_set.filter (fun (x, _) -> x = v) t)

let in_edges t w = Edge_set.elements (Edge_set.filter (fun (_, y) -> y = w) t)

let out_degree t v = List.length (out_edges t v)

let has_outgoing t v = Edge_set.exists (fun (x, _) -> x = v) t

let equal = Edge_set.equal

let pp fmt t =
  Format.fprintf fmt "{";
  List.iteri
    (fun i (v, w) -> Format.fprintf fmt "%s(%d,%d)" (if i = 0 then "" else "; ") v w)
    (edges t);
  Format.fprintf fmt "}"
