type edge = int * int

(* Monomorphic edge order: lexicographic on (source, destination).  The
   polymorphic [compare] this replaces walked the tuple structure through
   the generic runtime path on every Set rebalance — wasted work, and a
   nondeterminism hazard pattern the [nondet-poly-compare] lint rule now
   bans in protocol-adjacent modules. *)
let edge_compare (a, b) (c, d) = if a <> c then Int.compare a c else Int.compare b d

module Edge_set = Set.Make (struct
  type t = int * int

  let compare = edge_compare
end)

type t = Edge_set.t

let empty = Edge_set.empty

let check (v, w) =
  if v = w then invalid_arg "Digraph: self-loop"
  else if v < 0 || w < 0 then invalid_arg "Digraph: negative node id"

let add_edge t e =
  check e;
  Edge_set.add e t

let of_edges es = List.fold_left add_edge empty es

let remove_edge t e = Edge_set.remove e t

let mem_edge t e = Edge_set.mem e t

let edges t = Edge_set.elements t

let edge_count t = Edge_set.cardinal t

let is_empty t = Edge_set.is_empty t

module Int_set = Set.Make (Int)

let vertices t =
  Int_set.elements
    (Edge_set.fold (fun (v, w) acc -> Int_set.add v (Int_set.add w acc)) t Int_set.empty)

let sources t =
  (* Edge_set.fold visits edges in increasing (v, w) order, so duplicate
     sources are adjacent: dedup on the fly instead of building a set. *)
  List.rev
    (Edge_set.fold
       (fun (v, _) acc -> match acc with x :: _ when x = v -> acc | _ -> v :: acc)
       t [])

let out_edges t v = Edge_set.elements (Edge_set.filter (fun (x, _) -> x = v) t)

let in_edges t w = Edge_set.elements (Edge_set.filter (fun (_, y) -> y = w) t)

let out_degree t v = List.length (out_edges t v)

let has_outgoing t v = Edge_set.exists (fun (x, _) -> x = v) t

let equal = Edge_set.equal

let pp fmt t =
  Format.fprintf fmt "{";
  List.iteri
    (fun i (v, w) -> Format.fprintf fmt "%s(%d,%d)" (if i = 0 then "" else "; ") v w)
    (edges t);
  Format.fprintf fmt "}"

(* -- dense bitset representation -------------------------------------- *)

module Dense = struct
  type sparse = t

  (* The outer [of_edges] before Dense's own shadows it. *)
  let sparse_of_edges = of_edges

  type t = {
    n : int;  (* node universe: ids 0..n-1 *)
    out_rows : Bitset.t array;  (* out_rows.(v) = successors of v *)
    in_rows : Bitset.t array;  (* in_rows.(w) = predecessors of w *)
    m : int;  (* edge count *)
  }

  let universe t = t.n

  let edge_count t = t.m

  let is_empty t = t.m = 0

  let create ~n =
    if n < 0 then invalid_arg "Digraph.Dense.create: negative universe";
    (* All rows share one zero bitset: updates are copy-on-write, so the
       shared row is never mutated. *)
    let zero = Bitset.create n in
    { n; out_rows = Array.make n zero; in_rows = Array.make n zero; m = 0 }

  let check_universe t (v, w) =
    check (v, w);
    if v >= t.n || w >= t.n then
      invalid_arg
        (Printf.sprintf "Digraph.Dense: edge (%d,%d) outside universe 0..%d" v w (t.n - 1))

  let mem_edge t (v, w) = v >= 0 && v < t.n && Bitset.mem t.out_rows.(v) w

  let add_edge t ((v, w) as e) =
    check_universe t e;
    if mem_edge t e then t
    else begin
      let out_rows = Array.copy t.out_rows and in_rows = Array.copy t.in_rows in
      let ov = Bitset.copy out_rows.(v) and iw = Bitset.copy in_rows.(w) in
      Bitset.set ov w;
      Bitset.set iw v;
      out_rows.(v) <- ov;
      in_rows.(w) <- iw;
      { t with out_rows; in_rows; m = t.m + 1 }
    end

  let remove_edge t ((v, w) as e) =
    if not (mem_edge t e) then t
    else begin
      let out_rows = Array.copy t.out_rows and in_rows = Array.copy t.in_rows in
      let ov = Bitset.copy out_rows.(v) and iw = Bitset.copy in_rows.(w) in
      Bitset.unset ov w;
      Bitset.unset iw v;
      out_rows.(v) <- ov;
      in_rows.(w) <- iw;
      { t with out_rows; in_rows; m = t.m - 1 }
    end

  (* Builder used by [of_edges]/[of_sparse]: rows owned by the builder are
     mutated in place; sharing with the zero row marks "not yet owned". *)
  let build ~n es =
    let zero = Bitset.create n in
    let out_rows = Array.make n zero and in_rows = Array.make n zero in
    let own rows v =
      if rows.(v) == zero then rows.(v) <- Bitset.create n;
      rows.(v)
    in
    let m = ref 0 in
    List.iter
      (fun ((v, w) as e) ->
        check e;
        if v >= n || w >= n then
          invalid_arg
            (Printf.sprintf "Digraph.Dense: edge (%d,%d) outside universe 0..%d" v w (n - 1));
        let ov = own out_rows v in
        if not (Bitset.mem ov w) then begin
          Bitset.set ov w;
          Bitset.set (own in_rows w) v;
          incr m
        end)
      es;
    { n; out_rows; in_rows; m = !m }

  let bound_of es =
    List.fold_left (fun acc (v, w) -> max acc (max v w + 1)) 0 es

  let of_edges ?n es =
    let n = match n with Some n -> n | None -> bound_of es in
    build ~n es

  let of_sparse ?n g =
    let es = edges g in
    let n = match n with Some n -> n | None -> bound_of es in
    build ~n es

  let out_row t v = t.out_rows.(v)

  let in_row t v = t.in_rows.(v)

  let iter_edges f t =
    for v = 0 to t.n - 1 do
      Bitset.iter (fun w -> f (v, w)) t.out_rows.(v)
    done

  let edges t =
    let acc = ref [] in
    for v = t.n - 1 downto 0 do
      let row = t.out_rows.(v) in
      if not (Bitset.is_empty row) then
        (* fold visits ascending, so the per-row list comes out descending:
           reverse it before grafting onto the tail. *)
        acc := List.rev_append (Bitset.fold (fun w es -> (v, w) :: es) row []) !acc
    done;
    !acc

  let to_sparse t = sparse_of_edges (edges t)

  let has_outgoing t v = v >= 0 && v < t.n && not (Bitset.is_empty t.out_rows.(v))

  let has_incoming t v = v >= 0 && v < t.n && not (Bitset.is_empty t.in_rows.(v))

  let vertices t =
    let acc = ref [] in
    for v = t.n - 1 downto 0 do
      if has_outgoing t v || has_incoming t v then acc := v :: !acc
    done;
    !acc

  let vertex_count t =
    let c = ref 0 in
    for v = 0 to t.n - 1 do
      if has_outgoing t v || has_incoming t v then incr c
    done;
    !c

  let sources t =
    let acc = ref [] in
    for v = t.n - 1 downto 0 do
      if not (Bitset.is_empty t.out_rows.(v)) then acc := v :: !acc
    done;
    !acc

  let out_edges t v =
    if has_outgoing t v then Bitset.fold (fun w acc -> (v, w) :: acc) t.out_rows.(v) [] |> List.rev
    else []

  let in_edges t w =
    if has_incoming t w then Bitset.fold (fun v acc -> (v, w) :: acc) t.in_rows.(w) [] |> List.rev
    else []

  let out_degree t v = if v >= 0 && v < t.n then Bitset.count t.out_rows.(v) else 0

  let in_degree t v = if v >= 0 && v < t.n then Bitset.count t.in_rows.(v) else 0

  let equal a b =
    if a.m <> b.m then false
    else if a.n = b.n then
      let rec rows v = v >= a.n || (Bitset.equal a.out_rows.(v) b.out_rows.(v) && rows (v + 1)) in
      rows 0
    else
      (* Different universe capacities can still carry the same edge set. *)
      edges a = edges b

  let pp fmt t =
    Format.fprintf fmt "{";
    List.iteri
      (fun i (v, w) -> Format.fprintf fmt "%s(%d,%d)" (if i = 0 then "" else "; ") v w)
      (edges t);
    Format.fprintf fmt "}"

  (* Canonical digest of the undirected view (the object vertex-cover
     queries depend on), mixing the universe size and every or-ed
     adjacency word in node order.  Used as the memo-cache key. *)
  let undirected_key ?(extra = -1) t =
    let b = Cache.Key.create () in
    Cache.Key.add_int b t.n;
    Cache.Key.add_int b extra;
    for v = 0 to t.n - 1 do
      let ov = t.out_rows.(v) and iv = t.in_rows.(v) in
      for w = 0 to Bitset.words ov - 1 do
        Cache.Key.add_int b (Bitset.word ov w lor Bitset.word iv w)
      done
    done;
    Cache.Key.finish b
end
