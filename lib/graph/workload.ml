let disjoint_pairs ~n ~count =
  if 2 * count > n then invalid_arg "Workload.disjoint_pairs: need 2*count <= n";
  List.init count (fun i -> (i, i + count))

let complete ~n =
  let acc = ref [] in
  for v = n - 1 downto 0 do
    for w = n - 1 downto 0 do
      if v <> w then acc := (v, w) :: !acc
    done
  done;
  !acc

let complete_on nodes =
  List.concat_map (fun v -> List.filter_map (fun w -> if v <> w then Some (v, w) else None) nodes) nodes

let star ~n ~hub = List.filter_map (fun w -> if w <> hub then Some (hub, w) else None) (List.init n Fun.id)

let inverse_star ~n ~hub =
  List.filter_map (fun v -> if v <> hub then Some (v, hub) else None) (List.init n Fun.id)

let random_pairs rng ~n ~count =
  if count > n * (n - 1) then invalid_arg "Workload.random_pairs: too many pairs";
  let module S = Set.Make (struct
    type t = int * int

    let compare = Digraph.edge_compare
  end) in
  let rec fill acc =
    if S.cardinal acc = count then S.elements acc
    else
      let v = Prng.Rng.int rng n in
      let w = Prng.Rng.int rng n in
      if v = w then fill acc else fill (S.add (v, w) acc)
  in
  fill S.empty

let bidirectional pairs =
  let module S = Set.Make (struct
    type t = int * int

    let compare = Digraph.edge_compare
  end) in
  S.elements (List.fold_left (fun acc (v, w) -> S.add (v, w) (S.add (w, v) acc)) S.empty pairs)
