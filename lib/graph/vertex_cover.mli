(** Vertex covers of (the undirected view of) a directed graph.

    Disruptability (Definition 1, property 3) is stated as a bound on the
    minimum vertex cover of the disruption graph, so the experiments need an
    exact solver: {!minimum} is a branch-and-bound search, exponential in the
    worst case but fast at the disruption-graph sizes we measure (covers of
    size <= 2t).  {!greedy_2approx} (maximal matching) is provided for larger
    graphs and as a cross-check upper bound. *)

val is_cover : Digraph.t -> int list -> bool
(** Does the node set touch every edge? *)

val minimum : Digraph.t -> int list
(** An exact minimum vertex cover (sorted).  Exponential-time in general;
    intended for graphs whose cover is small. *)

val minimum_size : Digraph.t -> int

val greedy_2approx : Digraph.t -> int list
(** Cover from a maximal matching: at most twice the optimum. *)

val at_most : Digraph.t -> int -> bool
(** [at_most g k]: is there a vertex cover of size <= k?  Decides directly
    with the bounded search (cheaper than computing {!minimum} when the
    answer is no). *)
