(** Exact minimum vertex cover on the undirected view of a digraph.

    The referee's win condition ([Game.State.won]) and the f-AME
    disruptability check both reduce to "does the failure graph admit a
    vertex cover of size <= budget?", so this solver sits on the hot path
    of every game move and every adversary evaluation.

    {2 Algorithm and complexity contract}

    The solver is a kernelized FPT branch-and-bound:

    - {b kernelization} (per search node, O(n·w) with w = words per
      bitset row): vertices of degree > k are forced into the cover;
      degree-1 vertices are folded by taking their unique neighbor;
      repeated to fixpoint;
    - {b pruning}: a node is abandoned when [m > k * max_degree]
      (k vertices cover at most [k * max_degree] edges) or when a greedy
      maximal matching exceeds k (each matched edge needs its own cover
      vertex);
    - {b branching} on a maximum-degree vertex v: either v joins the
      cover (k-1 left) or all of N(v) does (k - deg v left), giving the
      textbook O(1.47^k · poly(n)) bound, far below it in practice on the
      sparse failure graphs the game produces.

    [at_most g k] therefore runs in O(1.47^k · n·w) worst case and O(n·w)
    when the [m > k * max_degree] early-exit fires — the common case for
    over-budget dense rounds.  [minimum] iteratively deepens k starting
    from the matching lower bound, so it never explores budgets below the
    provable optimum.

    {2 Memoization}

    The [_dense] entry points memoize on {!Digraph.Dense.undirected_key}
    in a pool-safe {!Cache}: repeated queries on the same position — across
    game replays, replicate trials, bench iterations, and [Parallel.Pool]
    workers — hit instead of re-solving.  The solver is a pure function of
    the graph, so cached answers are byte-identical to fresh ones and the
    cache never perturbs deterministic transcripts. *)

val at_most : Digraph.t -> int -> bool
(** [at_most g k]: does [g] (viewed undirected) have a vertex cover of
    size at most [k]?  Edge-set entry point; converts to {!Digraph.Dense}
    and defers to [at_most_dense]. *)

val minimum : Digraph.t -> int list
(** A minimum vertex cover, sorted ascending.  Deterministic: equal
    graphs always yield the identical cover. *)

val minimum_size : Digraph.t -> int

val is_cover : Digraph.t -> int list -> bool

val greedy_2approx : Digraph.t -> int list
(** Endpoints of a greedy maximal matching (first-vertex order): a cover
    of size at most twice the optimum, in O(n·w) time. *)

val at_most_dense : Digraph.Dense.t -> int -> bool
(** Memoized dense entry point used by the game kernel. *)

val minimum_dense : Digraph.Dense.t -> int list

val minimum_size_dense : Digraph.Dense.t -> int

val cache_stats : unit -> (string * Cache.stats) list
(** Hit/miss totals of the two memo caches, for benchmarks and tests. *)
