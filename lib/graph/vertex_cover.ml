(* Exact vertex cover on the undirected view of a digraph.

   The solver works on a mutable bitset scratch graph (one adjacency row
   per node, a degree array, and an edge counter) built from a
   [Digraph.Dense] value.  [bounded] is the classic FPT branch-and-bound:

   - kernelization loop: any vertex of degree > k must join the cover;
     the neighbor of any degree-1 vertex may join an optimal cover
     (degree-1 folding); both repeat until the kernel has
     1 <= deg(v) <= k everywhere;
   - infeasibility bounds: m > k * max_degree (each chosen vertex covers
     at most max_degree edges) and a greedy maximal matching (any cover
     needs one endpoint per matched edge);
   - branching: on a maximum-degree vertex v (smallest id among ties),
     either v is in the cover, or all of N(v) is.

   Branch state is copied per branch node (rows + degrees), so there is
   no undo bookkeeping; at the n <= a-few-hundred scales the experiments
   decide, the copies are two small arrays.

   Results are memoized in a pool-safe [Cache] keyed on the canonical
   undirected digest, so repeated queries — the same game position across
   replicate trials, bench iterations, or [Parallel.Pool] workers — hit
   instead of re-solving.  Both solver and digest are pure functions of
   the graph, so cached and fresh answers are identical by construction. *)

type scratch = {
  n : int;
  adj : Bitset.t array;  (* undirected adjacency rows, mutated in place *)
  deg : int array;
  mutable m : int;  (* undirected edge count *)
}

let scratch_of_dense g =
  let n = Digraph.Dense.universe g in
  let adj = Array.init n (fun v -> Bitset.copy (Digraph.Dense.out_row g v)) in
  let deg = Array.make n 0 in
  let m = ref 0 in
  for v = 0 to n - 1 do
    let row = adj.(v) and irow = Digraph.Dense.in_row g v in
    for w = 0 to Bitset.words row - 1 do
      Bitset.set_word row w (Bitset.word row w lor Bitset.word irow w)
    done;
    deg.(v) <- Bitset.count row;
    m := !m + deg.(v)
  done;
  { n; adj; deg; m = !m / 2 }

let copy_scratch s =
  { n = s.n; adj = Array.map Bitset.copy s.adj; deg = Array.copy s.deg; m = s.m }

(* Remove [v] and its incident edges. *)
let remove_vertex s v =
  let row = s.adj.(v) in
  Bitset.iter
    (fun w ->
      Bitset.unset s.adj.(w) v;
      s.deg.(w) <- s.deg.(w) - 1)
    row;
  s.m <- s.m - s.deg.(v);
  s.deg.(v) <- 0;
  s.adj.(v) <- Bitset.create s.n

(* First vertex of degree 1 and smallest max-degree vertex, in one scan. *)
let scan_degrees s =
  let deg1 = ref (-1) and vmax = ref (-1) and dmax = ref 0 in
  for v = 0 to s.n - 1 do
    let d = s.deg.(v) in
    if d = 1 && !deg1 < 0 then deg1 := v;
    if d > !dmax then begin
      dmax := d;
      vmax := v
    end
  done;
  (!deg1, !vmax, !dmax)

(* Size of a greedy maximal matching: a lower bound on any vertex cover.
   Non-destructive (tracks matched vertices in a side bitset). *)
let matching_lower_bound s =
  let matched = Bitset.create s.n in
  let size = ref 0 in
  for v = 0 to s.n - 1 do
    if s.deg.(v) > 0 && not (Bitset.mem matched v) then begin
      (* First unmatched neighbor of v, by word. *)
      let row = s.adj.(v) in
      let found = ref (-1) and w = ref 0 in
      let nwords = Bitset.words row in
      while !found < 0 && !w < nwords do
        let cand = Bitset.word row !w land lnot (Bitset.word matched !w) in
        if cand <> 0 then
          found := (!w * Bitset.bits_per_word) + Bitset.bit_index (cand land -cand);
        incr w
      done;
      if !found >= 0 then begin
        Bitset.set matched v;
        Bitset.set matched !found;
        incr size
      end
    end
  done;
  !size

(* A cover of size <= k extending [acc], or None.  Owns (and destroys)
   [s]. *)
let rec bounded s k acc =
  (* In-place kernelization: high-degree forcing and degree-1 folding. *)
  let k = ref k and acc = ref acc and infeasible = ref false and kernelized = ref false in
  while (not !kernelized) && not !infeasible do
    if s.m = 0 then kernelized := true
    else if !k <= 0 then infeasible := true
    else begin
      let deg1, vmax, dmax = scan_degrees s in
      if dmax > !k then begin
        (* Any cover omitting vmax needs its > k neighbors: take it. *)
        remove_vertex s vmax;
        acc := vmax :: !acc;
        decr k
      end
      else if deg1 >= 0 then begin
        (* Degree-1 folding: some optimal cover takes the neighbor. *)
        let u =
          let row = s.adj.(deg1) in
          let rec first w =
            let x = Bitset.word row w in
            if x <> 0 then (w * Bitset.bits_per_word) + Bitset.bit_index (x land -x)
            else first (w + 1)
          in
          first 0
        in
        remove_vertex s u;
        acc := u :: !acc;
        decr k
      end
      else kernelized := true
    end
  done;
  if !infeasible then None
  else if s.m = 0 then Some !acc
  else begin
    let _, vmax, dmax = scan_degrees s in
    (* Each cover vertex kills at most dmax edges. *)
    if s.m > !k * dmax then None
    else if matching_lower_bound s > !k then None
    else begin
      (* Branch 1: vmax in the cover. *)
      let s1 = copy_scratch s in
      remove_vertex s1 vmax;
      match bounded s1 (!k - 1) (vmax :: !acc) with
      | Some cover -> Some cover
      | None ->
        (* Branch 2: all of N(vmax) in the cover (dmax <= k after the
           kernel loop, so the budget cannot go negative). *)
        let neighbors = Bitset.to_list s.adj.(vmax) in
        List.iter (fun w -> remove_vertex s w) neighbors;
        bounded s (!k - List.length neighbors) (neighbors @ !acc)
    end
  end

let max_degree s =
  let d = ref 0 in
  for v = 0 to s.n - 1 do
    if s.deg.(v) > !d then d := s.deg.(v)
  done;
  !d

let at_most_scratch s k =
  if s.m = 0 then true
  else if k <= 0 then false
  else if s.m > k * max_degree s then
    (* Trivial infeasibility: k vertices cover at most k * max_degree
       edges.  Decides dense over-budget queries without any search. *)
    false
  else bounded s k [] <> None

let minimum_scratch s =
  if s.m = 0 then []
  else begin
    let lb = matching_lower_bound s in
    let rec try_size k =
      match bounded (copy_scratch s) k [] with
      | Some cover -> List.sort_uniq Int.compare cover
      | None -> try_size (k + 1)
    in
    try_size lb
  end

(* -- memoized dense entry points -------------------------------------- *)

let at_most_memo : bool Cache.t = Cache.create "vertex-cover/at-most"

let minimum_memo : int list Cache.t = Cache.create "vertex-cover/minimum"

let at_most_dense g k =
  Cache.find_or_compute at_most_memo
    ~key:(Digraph.Dense.undirected_key ~extra:k g)
    (fun () -> at_most_scratch (scratch_of_dense g) k)

let minimum_dense g =
  Cache.find_or_compute minimum_memo
    ~key:(Digraph.Dense.undirected_key g)
    (fun () -> minimum_scratch (scratch_of_dense g))

let minimum_size_dense g = List.length (minimum_dense g)

let cache_stats () =
  [ (Cache.name at_most_memo, Cache.stats at_most_memo);
    (Cache.name minimum_memo, Cache.stats minimum_memo) ]

(* -- edge-set (reference representation) entry points ------------------ *)

let is_cover g cover =
  let n = List.fold_left (fun acc v -> max acc (v + 1)) 0 cover in
  let s = Bitset.of_list n cover in
  List.for_all (fun (v, w) -> Bitset.mem s v || Bitset.mem s w) (Digraph.edges g)

let at_most g k = at_most_dense (Digraph.Dense.of_sparse g) k

let minimum g = minimum_dense (Digraph.Dense.of_sparse g)

let minimum_size g = List.length (minimum g)

let greedy_2approx g =
  let s = scratch_of_dense (Digraph.Dense.of_sparse g) in
  let matched = Bitset.create s.n in
  for v = 0 to s.n - 1 do
    if s.deg.(v) > 0 && not (Bitset.mem matched v) then begin
      let row = s.adj.(v) in
      let found = ref (-1) and w = ref 0 in
      let nwords = Bitset.words row in
      while !found < 0 && !w < nwords do
        let cand = Bitset.word row !w land lnot (Bitset.word matched !w) in
        if cand <> 0 then
          found := (!w * Bitset.bits_per_word) + Bitset.bit_index (cand land -cand);
        incr w
      done;
      if !found >= 0 then begin
        Bitset.set matched v;
        Bitset.set matched !found
      end
    end
  done;
  Bitset.to_list matched
