let is_cover g cover =
  let module S = Set.Make (Int) in
  let s = S.of_list cover in
  List.for_all (fun (v, w) -> S.mem v s || S.mem w s) (Digraph.edges g)

let remove_incident g v =
  List.fold_left
    (fun acc ((x, y) as e) -> if x = v || y = v then Digraph.remove_edge acc e else acc)
    g (Digraph.edges g)

(* Bounded search: a cover of size <= k containing the accumulator, or None.
   Branch on an endpoint of a maximum-degree edge; the standard 2-way
   branching gives O(2^k) nodes, plenty fast for the covers (<= 2t) that the
   experiments decide. *)
let rec search g k acc =
  match Digraph.edges g with
  | [] -> Some acc
  | (v, w) :: _ ->
    if k = 0 then None
    else begin
      match search (remove_incident g v) (k - 1) (v :: acc) with
      | Some cover -> Some cover
      | None -> search (remove_incident g w) (k - 1) (w :: acc)
    end

let at_most g k = Option.is_some (search g k [])

let minimum g =
  let rec try_size k =
    match search g k [] with
    | Some cover -> List.sort_uniq compare cover
    | None -> try_size (k + 1)
  in
  try_size 0

let minimum_size g = List.length (minimum g)

let greedy_2approx g =
  let module S = Set.Make (Int) in
  let rec go g acc =
    match Digraph.edges g with
    | [] -> S.elements acc
    | (v, w) :: _ -> go (remove_incident (remove_incident g v) w) (S.add v (S.add w acc))
  in
  go g S.empty
