(** Flat bitsets over small-int node universes (63 bits per word).

    The storage primitive shared by {!Digraph.Dense}, the vertex-cover
    solver, and the game state.  Values are plain word arrays: the
    in-place operations ([set], [unset], [set_word]) are for code that
    owns the array (builders, solver scratch); modules exposing a bitset
    in an immutable position must use the copying operations ([add],
    [copy]) and never hand out an array they later mutate.  All iteration
    is in ascending index order — deterministic by construction. *)

type t

val bits_per_word : int

val words_for : int -> int
(** Words needed for a capacity (ceil(n/63)); raises on negative. *)

val create : int -> t
(** [create n]: all-clear set able to hold indices [0 .. n-1]. *)

val capacity : t -> int
(** Largest representable index + 1 (rounded up to a word boundary). *)

val mem : t -> int -> bool
(** Total: out-of-range (including negative) indices are simply absent. *)

val set : t -> int -> unit
(** In-place; raises [Invalid_argument] out of range. *)

val unset : t -> int -> unit

val add : t -> int -> t
(** Functional insert: returns [t] itself (physically) when the index is
    already present, a copy otherwise. *)

val copy : t -> t

val count : t -> int
(** Number of set bits. *)

val is_empty : t -> bool

val iter : (int -> unit) -> t -> unit
(** Ascending index order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending index order. *)

val to_list : t -> int list
(** Sorted ascending. *)

val of_list : int -> int list -> t
(** [of_list n xs]; raises if an element exceeds the capacity. *)

val equal : t -> t -> bool
(** Structural equality of the word arrays (same capacity class). *)

val popcount_word : int -> int

val bit_index : int -> int
(** Index of the single set bit of the argument. *)

val word : t -> int -> int
(** Raw word access for hot loops ([Digraph.Dense], the VC solver). *)

val set_word : t -> int -> int -> unit

val words : t -> int
