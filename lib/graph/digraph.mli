(** Immutable directed graphs over integer node ids.

    This is the shared representation for the AME exchange set E, the
    starred-edge-removal game graph, and the disruption graph.  Nodes are
    identified by small non-negative integers (process indices).

    Two implementations share one semantics:
    - the original edge-set representation (this module's [t]) — compact
      for sparse ad-hoc graphs and kept as the executable reference;
    - {!Dense}, flat bitset adjacency over an explicit node universe —
      the hot-path representation used by the game kernel and the
      vertex-cover solver.  The QCheck equivalence suite checks them
      operation-for-operation. *)

type t

type edge = int * int
(** Ordered pair (source, destination). *)

val edge_compare : edge -> edge -> int
(** Monomorphic lexicographic order (source, then destination): the
    blessed comparator for sorting edge lists in protocol code. *)

val empty : t

val of_edges : edge list -> t
(** Duplicate edges are collapsed; self-loops are rejected with
    [Invalid_argument]. *)

val add_edge : t -> edge -> t

val remove_edge : t -> edge -> t

val mem_edge : t -> edge -> bool

val edges : t -> edge list
(** Sorted lexicographically: deterministic iteration order everywhere. *)

val edge_count : t -> int

val is_empty : t -> bool

val vertices : t -> int list
(** Sorted list of nodes that appear as an endpoint of some edge. *)

val sources : t -> int list
(** Sorted list of nodes with at least one outgoing edge. *)

val out_edges : t -> int -> edge list

val in_edges : t -> int -> edge list

val out_degree : t -> int -> int

val has_outgoing : t -> int -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** Flat bitset adjacency over a fixed node universe [0..n-1].

    Rows are {!Bitset.t} per node (out- and in-adjacency), so membership
    is O(1), degree is a popcount, and neighborhood scans are word-wide.
    Values are immutable: [add_edge]/[remove_edge] copy the two affected
    rows and the row spines, sharing everything else, which keeps
    per-game-move updates allocation-light.  All iteration is in
    ascending (source, destination) order — identical to the edge-set
    representation, so the two can be swapped without disturbing any
    deterministic transcript. *)
module Dense : sig
  type sparse = t

  type t

  val create : n:int -> t
  (** Empty graph on universe [0..n-1]. *)

  val universe : t -> int
  (** The universe size [n] fixed at creation. *)

  val of_edges : ?n:int -> edge list -> t
  (** Universe defaults to [1 + max endpoint] (0 for the empty list).
      Duplicates collapse; self-loops, negative ids, and ids outside an
      explicit universe raise [Invalid_argument]. *)

  val of_sparse : ?n:int -> sparse -> t

  val to_sparse : t -> sparse
  (** Equivalence bridge: the edge-set view of the same graph. *)

  val add_edge : t -> edge -> t

  val remove_edge : t -> edge -> t
  (** Physically returns [t] when the edge is absent (callers rely on
      [==] to detect no-ops). *)

  val mem_edge : t -> edge -> bool

  val edges : t -> edge list

  val iter_edges : (edge -> unit) -> t -> unit
  (** Ascending lexicographic order, no intermediate list. *)

  val edge_count : t -> int

  val is_empty : t -> bool

  val vertices : t -> int list

  val vertex_count : t -> int

  val sources : t -> int list

  val out_edges : t -> int -> edge list

  val in_edges : t -> int -> edge list

  val out_degree : t -> int -> int

  val in_degree : t -> int -> int

  val has_outgoing : t -> int -> bool

  val has_incoming : t -> int -> bool

  val out_row : t -> int -> Bitset.t
  (** The successor bitset of a node — the live row, not a copy: callers
      must treat it as read-only.  Raises on out-of-range ids. *)

  val in_row : t -> int -> Bitset.t

  val equal : t -> t -> bool
  (** Same edge set (universe capacities may differ). *)

  val pp : Format.formatter -> t -> unit

  val undirected_key : ?extra:int -> t -> string
  (** Canonical digest of the undirected view plus an optional query
      parameter, for memo-cache keys: graphs with equal universes and
      equal undirected adjacency collide, all others differ with
      overwhelming probability. *)
end
