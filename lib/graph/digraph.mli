(** Immutable directed graphs over integer node ids.

    This is the shared representation for the AME exchange set E, the
    starred-edge-removal game graph, and the disruption graph.  Nodes are
    identified by small non-negative integers (process indices). *)

type t

type edge = int * int
(** Ordered pair (source, destination). *)

val empty : t

val of_edges : edge list -> t
(** Duplicate edges are collapsed; self-loops are rejected with
    [Invalid_argument]. *)

val add_edge : t -> edge -> t

val remove_edge : t -> edge -> t

val mem_edge : t -> edge -> bool

val edges : t -> edge list
(** Sorted lexicographically: deterministic iteration order everywhere. *)

val edge_count : t -> int

val is_empty : t -> bool

val vertices : t -> int list
(** Sorted list of nodes that appear as an endpoint of some edge. *)

val sources : t -> int list
(** Sorted list of nodes with at least one outgoing edge. *)

val out_edges : t -> int -> edge list

val in_edges : t -> int -> edge list

val out_degree : t -> int -> int

val has_outgoing : t -> int -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
