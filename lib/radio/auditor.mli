(** Offline transcript auditing.

    Replays a recorded transcript against the Section 3 model rules and
    protocol-level security properties.  Used three ways: as a test oracle
    (every engine run must audit clean), as a debugging aid when writing new
    protocols, and as an independent check that experiment results were
    produced by a model-conforming execution rather than a simulator bug. *)

type violation = {
  round : int;
  channel : int option;
  what : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check_model :
  channels:int -> budget:int -> Transcript.round_record list -> violation list
(** Model conformance:
    - at most [budget] adversary strikes per round, each on a distinct valid
      channel;
    - every channel's recorded outcome matches what the transmission sets
      dictate (exactly one decodable transmitter = that delivery; zero =
      empty; otherwise collision, flagged jammed iff the adversary
      participated);
    - every honest node performs at most one action per round. *)

val check_no_spoofed_delivery : Transcript.round_record list -> violation list
(** Protocol-level: no listener ever received an adversarial frame.  This
    is f-AME's authentication in transcript form — it must hold for every
    f-AME execution, and will generally NOT hold for the naive protocol. *)

val audit :
  channels:int -> budget:int -> Transcript.round_record list -> violation list
(** Both checks, concatenated. *)
