(** The malicious adversary of Section 3.

    Per round it may transmit on up to [t] channels — either pure noise
    (jamming) or a fabricated frame (spoofing) — and it hears everything.
    Information model, enforced by construction: {!field-act} is called
    {e before} honest nodes' current-round random choices exist, and
    {!field-observe} delivers the completed round afterwards (the paper lets
    the adversary learn all past random choices).

    Protocol-{e aware} attacks (e.g. jamming the deterministic f-AME
    schedule) are built by closing [act] over a schedule oracle supplied by
    the experiment; the oracle must expose only protocol-deterministic
    information. *)

type strike = { chan : int; spoof : Frame.t option }
(** One adversarial transmission: [spoof = None] is a jam (noise),
    [Some frame] attempts to plant a fake message. *)

type t = {
  name : string;
  act : round:int -> strike list;
  observe : Transcript.round_record -> unit;
  observes : bool;
      (** Declares whether [observe] actually consumes round records.  When
          false (and transcript recording is off) the engine takes a cheap
          path that skips materializing per-round records entirely, and
          [observe] is never called — so a strategy whose [observe] has side
          effects MUST set [observes = true]. *)
}

val validate : channels:int -> budget:int -> strike list -> strike list
(** Enforce the model: strikes beyond [budget] are clamped (dropped from
    the end of the list — transmissions the model simply ignores); each
    kept strike must name a distinct valid channel, anything else raises
    [Invalid_argument] (an adversary bug). *)

(** {1 Generic strategies} *)

val null : t
(** No interference. *)

val random_jammer : Prng.Rng.t -> channels:int -> budget:int -> t
(** Jams [budget] channels chosen uniformly at random each round. *)

val sweep_jammer : channels:int -> budget:int -> t
(** Deterministic round-robin over channel windows. *)

val targeted_jammer : channels:int -> channels_of_round:(int -> int list) -> budget:int -> t
(** Jams the (first [budget] of the) channels named by the oracle for the
    current round; falls back to channel 0.. when the oracle names fewer. *)

val spoofer : Prng.Rng.t -> channels:int -> budget:int -> forge:(round:int -> int -> Frame.t) -> t
(** On each of [budget] random channels, transmits a forged frame produced
    by [forge ~round chan]. *)

val reactive_jammer : Prng.Rng.t -> channels:int -> budget:int -> t
(** Jams the channels that carried the most honest traffic in the previous
    round (ties broken at random); models a listen-then-jam attacker against
    protocols with round-to-round channel locality. *)

val energy_bounded : total:int -> t -> t
(** Wraps a strategy with a total-energy budget (the related-work model of
    Gilbert-Guerraoui-Newport and Koo et al.): every transmitted strike
    costs one unit, and once [total] units are spent the adversary falls
    silent forever.  Strikes beyond the remaining budget are dropped from
    the end of the inner strategy's list. *)

val combine : name:string -> t list -> budget:int -> channels:int -> t
(** Round-robin between sub-strategies (one per round), e.g. alternating
    jamming and spoofing.  Each sub-strategy still observes every round. *)
