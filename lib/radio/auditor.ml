type violation = {
  round : int;
  channel : int option;
  what : string;
}

let pp_violation fmt v =
  match v.channel with
  | Some c -> Format.fprintf fmt "round %d, channel %d: %s" v.round c v.what
  | None -> Format.fprintf fmt "round %d: %s" v.round v.what

let check_record ~channels ~budget (r : Transcript.round_record) =
  let violations = ref [] in
  let flag ?channel what = violations := { round = r.Transcript.round; channel; what } :: !violations in
  (* Adversary discipline. *)
  if List.length r.Transcript.strikes > budget then
    flag (Printf.sprintf "%d strikes exceed budget %d" (List.length r.Transcript.strikes) budget);
  let strike_channels = List.map fst r.Transcript.strikes in
  if List.length (List.sort_uniq Int.compare strike_channels) <> List.length strike_channels then
    flag "duplicate strike channels";
  List.iter
    (fun c -> if c < 0 || c >= channels then flag ~channel:c "strike outside channel range")
    strike_channels;
  (* One action per node per round. *)
  let actors =
    List.map (fun (v, _, _) -> v) r.Transcript.honest_tx
    @ List.map fst r.Transcript.listeners
  in
  if List.length (List.sort_uniq Int.compare actors) <> List.length actors then
    flag "a node performed two actions in one round";
  (* Outcome reconstruction per channel. *)
  Array.iteri
    (fun chan outcome ->
      let honest = List.filter (fun (_, c, _) -> c = chan) r.Transcript.honest_tx in
      let strike = List.assoc_opt chan r.Transcript.strikes in
      let expected =
        match (honest, strike) with
        | [], None -> `Empty
        | [ (v, _, frame) ], None -> `Delivered (Transcript.Honest v, frame)
        | [], Some (Some frame) -> `Delivered (Transcript.Adversarial, frame)
        | [], Some None -> `Collision (1, true)
        | hs, s ->
          let adv = if Option.is_some s then 1 else 0 in
          `Collision (List.length hs + adv, adv > 0)
      in
      match (expected, outcome) with
      | `Empty, Transcript.Empty -> ()
      | `Delivered (eo, ef), Transcript.Delivered { origin; frame } ->
        if origin <> eo then flag ~channel:chan "wrong delivery origin";
        if not (Frame.equal frame ef) then flag ~channel:chan "wrong delivered frame"
      | `Collision (et, ej), Transcript.Collision { transmitters; jammed } ->
        if transmitters <> et then flag ~channel:chan "wrong collision transmitter count";
        if jammed <> ej then flag ~channel:chan "wrong jam attribution"
      | _, _ -> flag ~channel:chan "outcome kind contradicts transmissions")
    r.Transcript.outcomes;
  List.rev !violations

let check_model ~channels ~budget records =
  List.concat_map (check_record ~channels ~budget) records

let check_no_spoofed_delivery records =
  List.filter_map
    (fun (r : Transcript.round_record) ->
      if Transcript.spoof_delivered r then
        Some { round = r.Transcript.round; channel = None;
               what = "a listener received an adversarial frame" }
      else None)
    records

let audit ~channels ~budget records =
  check_model ~channels ~budget records @ check_no_spoofed_delivery records
