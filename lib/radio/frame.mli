(** Radio frames: the unit of transmission on a channel.

    One shared frame format serves every protocol in the repository, the way
    a real radio stack shares one PHY frame layout.  All identity fields
    inside payloads are mere {e claims}: the medium does not authenticate, and
    the adversary can fabricate any frame (spoofing).  Ground truth about who
    actually transmitted lives only in the engine's transcript. *)

type payload =
  | Plain of { src : int; dst : int; body : string }
      (** Unauthenticated point-to-point data: naive exchange, gossip rumors. *)
  | Vector of { owner : int; entries : (int * string) list }
      (** f-AME message-transmission frame: the vector of all values
          m_owner,* (entries are (destination, body) pairs). *)
  | Feedback_true of int
      (** communication-feedback: witness reports channel [r] succeeded. *)
  | Feedback_false
      (** communication-feedback: witness occupies a channel to block spoofing. *)
  | Feedback_set of (int * bool) list
      (** Section 5.5 (C >= 2t^2) tree feedback: a witness's accumulated
          knowledge of per-channel success flags, merged hypercube-style. *)
  | Chain of { owner : int; index : int; body : string; recon_hash : string }
      (** Section 5.6 gossip epoch: message m_owner,index plus the
          reconstruction hash H1(m_i, ..., m_k). *)
  | Sealed of string
      (** Encrypted + MACed blob ({!Crypto.Cipher} wire encoding), used once
          shared keys exist (Sections 6-7). *)
  | Report of { reporter : int; leader : int; key_hash : string }
      (** Group-key Part 3: reporter claims it got [leader]'s key. *)
  | Noise
      (** Meaningless energy: what a jammer emits.  Receivers cannot decode
          it; the engine never delivers it as a message. *)

type t = payload

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val payload_size : t -> int
(** Approximate wire size in bytes (ids count 4 bytes each); drives the
    message-size experiment E11. *)
