type ctx = { id : int; rng : Prng.Rng.t; cfg : Config.t }

type action = Transmit of int * Frame.t | Listen of int | Idle

type obs = Received of Frame.t | Nothing

type _ Effect.t += Act : action -> obs Effect.t
type _ Effect.t += Round : int Effect.t

let transmit ~chan frame =
  match Effect.perform (Act (Transmit (chan, frame))) with
  | Received _ | Nothing -> ()

let listen ~chan =
  match Effect.perform (Act (Listen chan)) with
  | Received frame -> Some frame
  | Nothing -> None

let idle () =
  match Effect.perform (Act Idle) with
  | Received _ | Nothing -> ()

let idle_for k =
  for _ = 1 to k do
    idle ()
  done

let current_round () = Effect.perform Round

exception Aborted

type fiber =
  | Waiting of action * (obs, unit) Effect.Deep.continuation
  | Finished

type result = {
  stats : Transcript.Stats.t;
  transcript : Transcript.round_record list;
  completed : bool;
  rounds_used : int;
}

let run cfg ~adversary nodes =
  if Array.length nodes <> cfg.Config.n then
    invalid_arg "Engine.run: node array length must equal cfg.n";
  let round_counter = ref 0 in
  let fibers = Array.make cfg.Config.n Finished in
  let start i body ctx =
    let handler =
      { Effect.Deep.retc = (fun () -> fibers.(i) <- Finished);
        exnc = (fun e -> fibers.(i) <- Finished; if e <> Aborted then raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Act action ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  fibers.(i) <- Waiting (action, k))
            | Round -> Some (fun k -> Effect.Deep.continue k !round_counter)
            | _ -> None) }
    in
    Effect.Deep.match_with body ctx handler
  in
  Array.iteri
    (fun i body ->
      let ctx = { id = i; rng = Prng.Rng.split_at (Prng.Rng.create cfg.Config.seed) (i + 1); cfg } in
      start i body ctx)
    nodes;
  let stats = Transcript.Stats.create () in
  let transcript = ref [] in
  let all_finished () =
    Array.for_all (function Finished -> true | Waiting _ -> false) fibers
  in
  let validate_chan chan =
    if chan < 0 || chan >= cfg.Config.channels then
      invalid_arg (Printf.sprintf "Engine: action on invalid channel %d" chan)
  in
  while (not (all_finished ())) && !round_counter < cfg.Config.max_rounds do
    let round = !round_counter in
    (* 1. Harvest declared actions. *)
    let honest_tx = ref [] and listeners = ref [] in
    Array.iteri
      (fun i fiber ->
        match fiber with
        | Finished -> ()
        | Waiting (Transmit (chan, frame), _) ->
          validate_chan chan;
          honest_tx := (i, chan, frame) :: !honest_tx
        | Waiting (Listen chan, _) ->
          validate_chan chan;
          listeners := (i, chan) :: !listeners
        | Waiting (Idle, _) -> ())
      fibers;
    let honest_tx = List.rev !honest_tx and listeners = List.rev !listeners in
    (* 2. Adversary commits its strikes without seeing this round's choices. *)
    let strikes =
      Adversary.validate ~channels:cfg.Config.channels ~budget:cfg.Config.t
        (adversary.Adversary.act ~round)
    in
    (* 3. Resolve each channel. *)
    let outcomes =
      Array.init cfg.Config.channels (fun chan ->
          let honest_here = List.filter (fun (_, c, _) -> c = chan) honest_tx in
          let strike_here =
            List.find_opt (fun s -> s.Adversary.chan = chan) strikes
          in
          let honest_count = List.length honest_here in
          let adv_count = match strike_here with Some _ -> 1 | None -> 0 in
          match (honest_here, strike_here, honest_count + adv_count) with
          | [], None, _ -> Transcript.Empty
          | [ (sender, _, frame) ], None, 1 ->
            Transcript.Delivered { origin = Transcript.Honest sender; frame }
          | [], Some { Adversary.spoof = Some frame; _ }, 1 ->
            Transcript.Delivered { origin = Transcript.Adversarial; frame }
          | [], Some { Adversary.spoof = None; _ }, 1 ->
            (* A lone jam: energy but no decodable frame. *)
            Transcript.Collision { transmitters = 1; jammed = true }
          | _, _, total ->
            Transcript.Collision { transmitters = total; jammed = adv_count > 0 })
    in
    let record =
      { Transcript.round; honest_tx; listeners; strikes = List.map (fun s -> (s.Adversary.chan, s.Adversary.spoof)) strikes; outcomes }
    in
    Transcript.Stats.absorb stats record;
    if cfg.Config.record_transcript then transcript := record :: !transcript;
    adversary.Adversary.observe record;
    incr round_counter;
    (* 4. Resume fibers with their observations, in node-id order. *)
    Array.iteri
      (fun i fiber ->
        match fiber with
        | Finished -> ()
        | Waiting (action, k) ->
          let obs =
            match action with
            | Transmit _ | Idle -> Nothing
            | Listen chan ->
              (match outcomes.(chan) with
               | Transcript.Delivered { frame; _ } -> Received frame
               | Transcript.Empty | Transcript.Collision _ -> Nothing)
          in
          fibers.(i) <- Finished;
          (* The continuation re-populates fibers.(i) if the node suspends
             again; otherwise it stays Finished. *)
          Effect.Deep.continue k obs)
      fibers
  done;
  let completed = all_finished () in
  if not completed then
    Array.iter
      (function
        | Finished -> ()
        | Waiting (_, k) -> ( try Effect.Deep.discontinue k Aborted with Aborted -> ()))
      fibers;
  { stats; transcript = List.rev !transcript; completed; rounds_used = !round_counter }

let run_nodes cfg ~adversary body =
  run cfg ~adversary (Array.make cfg.Config.n body)
