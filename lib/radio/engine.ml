type ctx = { id : int; rng : Prng.Rng.t; cfg : Config.t }

type obs = Received of Frame.t | Nothing

(* One effect constructor per action keeps the perform path lean: [EIdle] is
   a constant (no allocation at all), [EListen]/[ETransmit] are a single
   block each — there is no wrapper [action] box on the hot path.
   [EIdleFor] carries the whole idle run in one suspension so the sparse
   engine can park the fiber until its wake round. *)
type _ Effect.t += ETransmit : int * Frame.t -> obs Effect.t
type _ Effect.t += EListen : int -> obs Effect.t
type _ Effect.t += EIdle : obs Effect.t
type _ Effect.t += EIdleFor : int -> obs Effect.t
type _ Effect.t += EListenSeq : int array * Frame.t option array -> obs Effect.t
type _ Effect.t += Round : int Effect.t

let transmit ~chan frame =
  match Effect.perform (ETransmit (chan, frame)) with
  | Received _ | Nothing -> ()

let listen ~chan =
  match Effect.perform (EListen chan) with
  | Received frame -> Some frame
  | Nothing -> None

let idle () =
  match Effect.perform EIdle with
  | Received _ | Nothing -> ()

let idle_for k =
  if k > 0 then
    match Effect.perform (EIdleFor k) with
    | Received _ | Nothing -> ()

let listen_series ~chans ~into =
  let len = Array.length chans in
  if Array.length into <> len then
    invalid_arg "Engine.listen_series: chans and into must have equal length";
  if len > 0 then
    match Effect.perform (EListenSeq (chans, into)) with
    | Received _ | Nothing -> ()

let current_round () = Effect.perform Round

exception Aborted

type result = {
  stats : Transcript.Stats.t;
  transcript : Transcript.round_record list;
  completed : bool;
  rounds_used : int;
  channel_usage : Transcript.Channel_usage.t option;
}

(* Placeholder occupying [first_frame] slots whose [first_sender] is -1; the
   sentinel is the sender index, so the dummy is never read. *)
let dummy_frame = Frame.Plain { src = -1; dst = -1; body = "" }

(* ------------------------------------------------------------------ *)
(* Reference engine: the original dense round loop.                    *)
(* ------------------------------------------------------------------ *)

type fiber =
  | WaitT of int * Frame.t * (obs, unit) Effect.Deep.continuation
  | WaitL of int * (obs, unit) Effect.Deep.continuation
  | WaitI of (obs, unit) Effect.Deep.continuation
  | WaitS of int * (obs, unit) Effect.Deep.continuation
      (** sleeping; the int counts remaining idle rounds, current included *)
  | WaitLS of series
      (** listening through a pre-declared channel sequence, one per round *)
  | Finished

and series = {
  ls_chans : int array;
  ls_out : Frame.t option array;
  mutable ls_pos : int;
  ls_k : (obs, unit) Effect.Deep.continuation;
}

(* The original execution core, kept as the semantic oracle for the sparse
   engine (the Dense-vs-sparse pattern from the graph kernel): every round
   scans all n fibers, so work is proportional to population rather than
   activity.  [EIdleFor k] is handled as a sleep countdown observationally
   identical to k successive [EIdle] suspensions.

   Channel resolution is a single O(T) harvest pass into reusable
   per-channel accumulators followed by one pass over the channels actually
   touched this round.  When neither the transcript nor the adversary
   consumes round records ([record_transcript] off and [Adversary.observes]
   false), the cons-heavy record lists are never materialized and the
   outcome array is reused across rounds.

   Allocation discipline: every suspension handler closure is hoisted and
   shared across fibers (the pending-action scratch cells below are filled
   by [effc] immediately before the matching closure runs — fibers are
   strictly sequential within the domain, so one set of cells suffices). *)
let run_reference cfg ~adversary nodes =
  let n = cfg.Config.n in
  if Array.length nodes <> n then
    invalid_arg "Engine.run_reference: node array length must equal cfg.n";
  let channels = cfg.Config.channels in
  let round_counter = ref 0 in
  let fibers = Array.make n Finished in
  (* Scratch cells carrying the perform's payload from [effc] to the shared
     suspension closures. *)
  let pending_i = ref 0 in
  let pending_chan = ref 0 in
  let pending_frame = ref dummy_frame in
  let pending_chans = ref [||] in
  let pending_out : Frame.t option array ref = ref [||] in
  let some_transmit =
    Some
      (fun (k : (obs, unit) Effect.Deep.continuation) ->
        Array.set fibers !pending_i (WaitT (!pending_chan, !pending_frame, k)))
  in
  let some_listen =
    Some
      (fun (k : (obs, unit) Effect.Deep.continuation) ->
        Array.set fibers !pending_i (WaitL (!pending_chan, k)))
  in
  let some_idle =
    Some
      (fun (k : (obs, unit) Effect.Deep.continuation) ->
        Array.set fibers !pending_i (WaitI k))
  in
  let some_sleep =
    Some
      (fun (k : (obs, unit) Effect.Deep.continuation) ->
        Array.set fibers !pending_i (WaitS (!pending_chan, k)))
  in
  let some_listen_seq =
    Some
      (fun (k : (obs, unit) Effect.Deep.continuation) ->
        Array.set fibers !pending_i
          (WaitLS { ls_chans = !pending_chans; ls_out = !pending_out; ls_pos = 0; ls_k = k }))
  in
  let some_round =
    Some
      (fun (k : (int, unit) Effect.Deep.continuation) ->
        Effect.Deep.continue k !round_counter)
  in
  let start i body ctx =
    let handler =
      { Effect.Deep.retc = (fun () -> fibers.(i) <- Finished);
        exnc = (fun e -> fibers.(i) <- Finished; if e <> Aborted then raise e);
        effc =
          (fun (type a) (eff : a Effect.t) :
               ((a, unit) Effect.Deep.continuation -> unit) option ->
            match eff with
            | ETransmit (chan, frame) ->
              pending_i := i;
              pending_chan := chan;
              pending_frame := frame;
              some_transmit
            | EListen chan ->
              pending_i := i;
              pending_chan := chan;
              some_listen
            | EIdle ->
              pending_i := i;
              some_idle
            | EIdleFor k ->
              pending_i := i;
              pending_chan := k;
              some_sleep
            | EListenSeq (chans, out) ->
              pending_i := i;
              pending_chans := chans;
              pending_out := out;
              some_listen_seq
            | Round -> some_round
            | _ -> None) }
    in
    Effect.Deep.match_with body ctx handler
  in
  Array.iteri
    (fun i body ->
      let ctx =
        { id = i; rng = Prng.Rng.split_at (Prng.Rng.create cfg.Config.seed) (i + 1); cfg }
      in
      start i body ctx)
    nodes;
  let stats = Transcript.Stats.create () in
  let usage =
    if cfg.Config.track_channels then Some (Transcript.Channel_usage.create channels)
    else None
  in
  let transcript = ref [] in
  let validate_chan chan =
    if chan < 0 || chan >= channels then
      invalid_arg (Printf.sprintf "Engine: action on invalid channel %d" chan)
  in
  (* Per-channel accumulators; only the channels touched in a round (tracked
     in [touched]) are visited and reset, so quiet channels cost nothing. *)
  let tx_count = Array.make channels 0 in
  let first_sender = Array.make channels (-1) in
  let first_frame = Array.make channels dummy_frame in
  let listeners_on = Array.make channels 0 in
  let struck = Array.make channels false in
  let spoof_on : Frame.t option array = Array.make channels None in
  let touched = Array.make channels 0 in
  let n_touched = ref 0 in
  let[@inline] touch chan =
    if
      Array.get tx_count chan = 0
      && Array.get listeners_on chan = 0
      && not (Array.get struck chan)
    then begin
      Array.set touched !n_touched chan;
      incr n_touched
    end
  in
  let shared_outcomes = Array.make channels Transcript.Empty in
  let record_wanted = cfg.Config.record_transcript || adversary.Adversary.observes in
  let running = ref true in
  (* Round-loop state hoisted so the per-round closures below capture only
     loop-invariant cells and are allocated once per run. *)
  let honest_tx = ref [] and listeners = ref [] in
  let tx_total = ref 0 in
  let waiting = ref 0 in
  let strike_count = ref 0 in
  let apply_strike s =
    incr strike_count;
    touch s.Adversary.chan;
    struck.(s.Adversary.chan) <- true;
    spoof_on.(s.Adversary.chan) <- s.Adversary.spoof
  in
  while !running && !round_counter < cfg.Config.max_rounds do
    let round = !round_counter in
    (* 1. Harvest declared actions: one pass over the fibers. *)
    honest_tx := [];
    listeners := [];
    tx_total := 0;
    waiting := 0;
    for i = 0 to n - 1 do
      match Array.get fibers i with
      | Finished -> ()
      | WaitT (chan, frame, _) ->
        incr waiting;
        validate_chan chan;
        incr tx_total;
        touch chan;
        let count = Array.get tx_count chan in
        Array.set tx_count chan (count + 1);
        if count = 0 then begin
          Array.set first_sender chan i;
          Array.set first_frame chan frame
        end;
        let payload = Frame.payload_size frame in
        if payload > stats.Transcript.Stats.max_payload then
          stats.Transcript.Stats.max_payload <- payload;
        if record_wanted then honest_tx := (i, chan, frame) :: !honest_tx
      | WaitL (chan, _) ->
        incr waiting;
        validate_chan chan;
        touch chan;
        Array.set listeners_on chan (Array.get listeners_on chan + 1);
        if record_wanted then listeners := (i, chan) :: !listeners
      | WaitLS s ->
        incr waiting;
        let chan = s.ls_chans.(s.ls_pos) in
        validate_chan chan;
        touch chan;
        Array.set listeners_on chan (Array.get listeners_on chan + 1);
        if record_wanted then listeners := (i, chan) :: !listeners
      | WaitI _ | WaitS _ -> incr waiting
    done;
    if !waiting = 0 then running := false
    else begin
      (* 2. Adversary commits its strikes without seeing this round's
         choices. *)
      let strikes =
        Adversary.validate ~channels ~budget:cfg.Config.t
          (adversary.Adversary.act ~round)
      in
      strike_count := 0;
      List.iter apply_strike strikes;
      (* 3. Resolve the touched channels, fold the round into the stats, and
         reset the accumulators — untouched channels stay Empty. *)
      let outcomes =
        if record_wanted then Array.make channels Transcript.Empty else shared_outcomes
      in
      let jammed_this_round = ref false in
      for j = 0 to !n_touched - 1 do
        let chan = Array.get touched j in
        let honest = Array.get tx_count chan in
        let outcome =
          if Array.get struck chan then
            if honest = 0 then
              match Array.get spoof_on chan with
              | Some frame -> Transcript.Delivered { origin = Transcript.Adversarial; frame }
              | None ->
                (* A lone jam: energy but no decodable frame. *)
                Transcript.Collision { transmitters = 1; jammed = true }
            else Transcript.Collision { transmitters = honest + 1; jammed = true }
          else if honest = 0 then Transcript.Empty
          else if honest = 1 then
            Transcript.Delivered
              { origin = Transcript.Honest (Array.get first_sender chan);
                frame = Array.get first_frame chan }
          else Transcript.Collision { transmitters = honest; jammed = false }
        in
        Array.set outcomes chan outcome;
        (match usage with
         | Some u ->
           Transcript.Channel_usage.note u chan outcome
             ~hearers:(Array.get listeners_on chan)
         | None -> ());
        (match outcome with
         | Transcript.Empty -> ()
         | Transcript.Delivered { origin; _ } ->
           let hearers = Array.get listeners_on chan in
           stats.Transcript.Stats.deliveries <- stats.Transcript.Stats.deliveries + hearers;
           (match origin with
            | Transcript.Adversarial ->
              stats.Transcript.Stats.spoofed_deliveries <-
                stats.Transcript.Stats.spoofed_deliveries + hearers
            | Transcript.Honest _ -> ())
         | Transcript.Collision { jammed; _ } ->
           stats.Transcript.Stats.collisions <- stats.Transcript.Stats.collisions + 1;
           if jammed then jammed_this_round := true);
        Array.set tx_count chan 0;
        Array.set first_sender chan (-1);
        Array.set first_frame chan dummy_frame;
        Array.set listeners_on chan 0;
        Array.set struck chan false;
        Array.set spoof_on chan None
      done;
      n_touched := 0;
      stats.Transcript.Stats.rounds <- stats.Transcript.Stats.rounds + 1;
      stats.Transcript.Stats.honest_transmissions <-
        stats.Transcript.Stats.honest_transmissions + !tx_total;
      stats.Transcript.Stats.strikes <- stats.Transcript.Stats.strikes + !strike_count;
      if !jammed_this_round then
        stats.Transcript.Stats.jammed_rounds <- stats.Transcript.Stats.jammed_rounds + 1;
      if record_wanted then begin
        let record =
          { Transcript.round;
            honest_tx = List.rev !honest_tx;
            listeners = List.rev !listeners;
            strikes = List.map (fun s -> (s.Adversary.chan, s.Adversary.spoof)) strikes;
            outcomes }
        in
        if cfg.Config.record_transcript then transcript := record :: !transcript;
        if adversary.Adversary.observes then adversary.Adversary.observe record
      end;
      incr round_counter;
      (* 4. Resume fibers with their observations, in node-id order.  A
         resumed fiber re-populates fibers.(i) if it suspends again. *)
      for i = 0 to n - 1 do
        match Array.get fibers i with
        | Finished -> ()
        | WaitL (chan, k) ->
          let obs =
            match Array.get outcomes chan with
            | Transcript.Delivered { frame; _ } -> Received frame
            | Transcript.Empty | Transcript.Collision _ -> Nothing
          in
          fibers.(i) <- Finished;
          Effect.Deep.continue k obs
        | WaitT (_, _, k) ->
          fibers.(i) <- Finished;
          Effect.Deep.continue k Nothing
        | WaitI k ->
          fibers.(i) <- Finished;
          Effect.Deep.continue k Nothing
        | WaitS (r, k) ->
          if r <= 1 then begin
            fibers.(i) <- Finished;
            Effect.Deep.continue k Nothing
          end
          else fibers.(i) <- WaitS (r - 1, k)
        | WaitLS s ->
          let chan = s.ls_chans.(s.ls_pos) in
          (s.ls_out.(s.ls_pos) <-
             (match Array.get outcomes chan with
              | Transcript.Delivered { frame; _ } -> Some frame
              | Transcript.Empty | Transcript.Collision _ -> None));
          if s.ls_pos + 1 >= Array.length s.ls_chans then begin
            fibers.(i) <- Finished;
            Effect.Deep.continue s.ls_k Nothing
          end
          else s.ls_pos <- s.ls_pos + 1
      done
    end
  done;
  let completed =
    Array.for_all
      (function
        | Finished -> true
        | WaitT _ | WaitL _ | WaitI _ | WaitS _ | WaitLS _ -> false)
      fibers
  in
  if not completed then
    Array.iter
      (fun fiber ->
        match fiber with
        | Finished -> ()
        | WaitT (_, _, k) | WaitL (_, k) | WaitI k | WaitS (_, k) -> (
          try Effect.Deep.discontinue k Aborted with Aborted -> ())
        | WaitLS s -> (
          try Effect.Deep.discontinue s.ls_k Aborted with Aborted -> ()))
      fibers;
  { stats; transcript = List.rev !transcript; completed; rounds_used = !round_counter;
    channel_usage = usage }

(* ------------------------------------------------------------------ *)
(* Sparse event-driven engine (the default core).                      *)
(* ------------------------------------------------------------------ *)

(* Suspended-continuation slot: a two-constructor variant instead of the
   reference's 4-5 word fiber records, so each suspension allocates one
   two-word block beside the runtime continuation itself. *)
type kont = NoK | K of (obs, unit) Effect.Deep.continuation

(* Per-shard channel accumulators for the intra-round sharded harvest.
   One scratch per shard, written by exactly one pool task per round and
   merged serially in shard order afterwards, which reproduces the serial
   id-order harvest byte for byte (shards are contiguous id ranges of the
   sorted active list). *)
type shard_scratch = {
  s_tx : int array;
  s_first : int array;
  s_frame : Frame.t array;
  s_listen : int array;
  s_touched : int array;
  mutable s_n_touched : int;
  mutable s_tx_total : int;
  mutable s_max_payload : int;
}

(* Minimum active-node count before a round's harvest is sharded across the
   pool: below this the per-task queue overhead beats the scan. *)
let default_shard_min = 16384

(* State codes for the per-node SoA byte array: 'f' finished, 't' transmit
   declared, 'l' listen declared, 'w' idle (one round) or parked sleeper,
   's' mid listen-series (a run of per-round listen channels declared by a
   single [listen_series] suspension; the fiber is resumed once, after the
   last round of the run). *)

(* The sparse core.  Three ideas over [run_reference]:

   1. Sparse event-driven rounds — the engine keeps a sorted active list
      (double-buffered [cur]/[nxt]) of node ids suspended on this round's
      actions plus a wake queue (hash of round -> ids) for fibers parked by
      [idle_for k]; a round's cost is O(active + touched channels), not
      O(n).  With the null adversary and no recording, runs of rounds with
      an empty active list are fast-forwarded to the next wake round in one
      step.

   2. Struct-of-arrays node state — action codes live in one [Bytes.t],
      channels/frames/continuations in flat arrays indexed by node id, so
      the harvest is a cache-linear scan over active indices instead of
      chasing per-fiber heap records.

   3. Intra-round sharding — when a pool is available and the active list
      is large, the harvest pass is partitioned into contiguous shards with
      per-shard accumulators merged in shard order, preserving the serial
      engine's byte-identical transcripts for every [--jobs].

   Determinism contract unchanged: fibers are started, resumed, and aborted
   in strictly ascending node-id order, and every run is a pure function of
   the configuration seed. *)
let run_core ~pool ~shard_min cfg ~adversary ~get_body =
  let n = cfg.Config.n in
  let channels = cfg.Config.channels in
  let max_rounds = cfg.Config.max_rounds in
  let round_counter = ref 0 in
  (* SoA node state. *)
  let st = Bytes.make n 'f' in
  let chan_of = Array.make n 0 in
  let frame_of = Array.make n dummy_frame in
  let konts = Array.make n NoK in
  (* Listen-series state: the declared channel run, the caller's result
     buffer, and the cursor.  [chan_of] always holds the series' channel for
     the *current* round, so the harvest treats 's' exactly like 'l'.  For
     parked series ('p', below) [ser_pos] holds the series' first round
     instead of a cursor. *)
  let ser_chans : int array array = Array.make n [||] in
  let ser_out : Frame.t option array array = Array.make n [||] in
  let ser_pos = Array.make n 0 in
  let validate_chan chan =
    if chan < 0 || chan >= channels then
      invalid_arg (Printf.sprintf "Engine: action on invalid channel %d" chan)
  in
  let record_wanted = cfg.Config.record_transcript || adversary.Adversary.observes in
  (* Parked listen-series rings.  When nothing records per-listener
     identities ([record_wanted] false), a [listen_series] fiber does not
     ride the active list at all: its per-round listener counts are
     pre-accumulated into [series_counts] (a round-ring of per-channel
     ints) at declare time, delivered frames land in [series_hist] (same
     geometry, shared [Some] per channel per round), and the fiber parks in
     the wake queue until the round after its last listen, where the whole
     result buffer is filled from the history ring in one pass.  Rows are
     addressed by [round mod series_depth]; a row is live for exactly one
     round in each ring (counts: consumed and zeroed at its round's
     resolution; history: written at its round's resolution, pre-zeroed
     when the ring wraps back around), so depth >= the longest outstanding
     series suffices. *)
  let series_depth = ref 0 in
  let series_counts = ref [||] in
  let series_hist : Frame.t option array ref = ref [||] in
  let series_outstanding = ref 0 in
  (* Double-buffered sorted active lists. *)
  let cur = ref (Array.make (max n 1) 0) in
  let n_cur = ref 0 in
  let nxt = ref (Array.make (max n 1) 0) in
  let n_nxt = ref 0 in
  let started = ref false in
  let live = ref 0 in
  (* Wake queue: absolute round -> parked node ids (unordered; sorted when
     popped). *)
  let wake : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let push i =
    if !started then begin
      (!nxt).(!n_nxt) <- i;
      incr n_nxt
    end
    else begin
      (!cur).(!n_cur) <- i;
      incr n_cur
    end
  in
  (* Scratch cells carrying the perform's payload from [effc] to the shared
     suspension closures; [running_i] names the fiber currently executing,
     so one hoisted handler serves every fiber. *)
  let running_i = ref 0 in
  let pending_chan = ref 0 in
  let pending_frame = ref dummy_frame in
  let pending_chans = ref [||] in
  let pending_out : Frame.t option array ref = ref [||] in
  let some_transmit =
    Some
      (fun (k : (obs, unit) Effect.Deep.continuation) ->
        let i = !running_i in
        Bytes.set st i 't';
        chan_of.(i) <- !pending_chan;
        frame_of.(i) <- !pending_frame;
        konts.(i) <- K k;
        push i)
  in
  let some_listen =
    Some
      (fun (k : (obs, unit) Effect.Deep.continuation) ->
        let i = !running_i in
        Bytes.set st i 'l';
        chan_of.(i) <- !pending_chan;
        konts.(i) <- K k;
        push i)
  in
  let some_idle =
    Some
      (fun (k : (obs, unit) Effect.Deep.continuation) ->
        let i = !running_i in
        Bytes.set st i 'w';
        konts.(i) <- K k;
        push i)
  in
  let some_sleep =
    Some
      (fun (k : (obs, unit) Effect.Deep.continuation) ->
        let i = !running_i in
        Bytes.set st i 'w';
        konts.(i) <- K k;
        let d = !pending_chan in
        if d = 1 then push i
        else begin
          (* Wake at the end of round [declare + d - 1]; [round_counter]
             already names the fiber's next round at suspension time. *)
          let wake_round = !round_counter + d - 1 in
          let prev =
            match Hashtbl.find_opt wake wake_round with Some ids -> ids | None -> []
          in
          Hashtbl.replace wake wake_round (i :: prev)
        end)
  in
  let some_listen_seq =
    Some
      (fun (k : (obs, unit) Effect.Deep.continuation) ->
        let i = !running_i in
        let chans = !pending_chans in
        Bytes.set st i 's';
        ser_chans.(i) <- chans;
        ser_out.(i) <- !pending_out;
        ser_pos.(i) <- 0;
        chan_of.(i) <- chans.(0);
        konts.(i) <- K k;
        push i)
  in
  (* Regrow the series rings to hold [needed] rounds, re-homing live rows
     under the new modulus.  At regrow time (a declare, so [round_counter]
     is the new series' first round rc) live count rows sit in
     [rc, rc + old_depth - 1] and live history rows in
     [rc - old_depth, rc - 1]; dead rows are all zero / [None], so copying
     each window wholesale is harmless, and each window's size <= old_depth
     <= new depth keeps the re-homed rows distinct. *)
  let series_grow needed =
    let old_depth = !series_depth in
    let depth = max needed (2 * old_depth) in
    let counts = Array.make (depth * channels) 0 in
    let hist : Frame.t option array = Array.make (depth * channels) None in
    if old_depth > 0 then begin
      let rc = !round_counter in
      for rr = rc to rc + old_depth - 1 do
        Array.blit !series_counts (rr mod old_depth * channels) counts
          (rr mod depth * channels) channels
      done;
      for rr = max 0 (rc - old_depth) to rc - 1 do
        Array.blit !series_hist (rr mod old_depth * channels) hist
          (rr mod depth * channels) channels
      done
    end;
    series_counts := counts;
    series_hist := hist;
    series_depth := depth
  in
  let some_listen_park =
    Some
      (fun (k : (obs, unit) Effect.Deep.continuation) ->
        let i = !running_i in
        let chans = !pending_chans in
        let len = Array.length chans in
        (* Validate before touching the rings: a bad channel must not leave
           partial counts behind. *)
        for p = 0 to len - 1 do
          validate_chan chans.(p)
        done;
        if len > !series_depth then series_grow len;
        let r0 = !round_counter in
        let depth = !series_depth in
        let counts = !series_counts in
        let row = ref (r0 mod depth) in
        for p = 0 to len - 1 do
          let idx = (!row * channels) + chans.(p) in
          Array.set counts idx (Array.get counts idx + 1);
          incr row;
          if !row = depth then row := 0
        done;
        Bytes.set st i 'p';
        ser_chans.(i) <- chans;
        ser_out.(i) <- !pending_out;
        ser_pos.(i) <- r0;
        konts.(i) <- K k;
        incr series_outstanding;
        let wake_round = r0 + len - 1 in
        let prev =
          match Hashtbl.find_opt wake wake_round with Some ids -> ids | None -> []
        in
        Hashtbl.replace wake wake_round (i :: prev))
  in
  let some_round =
    Some
      (fun (k : (int, unit) Effect.Deep.continuation) ->
        Effect.Deep.continue k !round_counter)
  in
  let handler =
    { Effect.Deep.retc =
        (fun () ->
          let i = !running_i in
          Bytes.set st i 'f';
          konts.(i) <- NoK;
          decr live);
      exnc =
        (fun e ->
          let i = !running_i in
          Bytes.set st i 'f';
          konts.(i) <- NoK;
          decr live;
          match e with Aborted -> () | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) :
             ((a, unit) Effect.Deep.continuation -> unit) option ->
          match eff with
          | ETransmit (chan, frame) ->
            pending_chan := chan;
            pending_frame := frame;
            some_transmit
          | EListen chan ->
            pending_chan := chan;
            some_listen
          | EIdle -> some_idle
          | EIdleFor d ->
            pending_chan := d;
            some_sleep
          | EListenSeq (chans, out) ->
            pending_chans := chans;
            pending_out := out;
            (* The parked path skips the active list entirely but cannot
               name per-round listeners, so recording runs (transcript or
               observing adversary) keep the per-round variant. *)
            if record_wanted then some_listen_seq else some_listen_park
          | Round -> some_round
          | _ -> None) }
  in
  for i = 0 to n - 1 do
    let ctx =
      { id = i; rng = Prng.Rng.split_at (Prng.Rng.create cfg.Config.seed) (i + 1); cfg }
    in
    incr live;
    running_i := i;
    Effect.Deep.match_with (get_body i) ctx handler
  done;
  started := true;
  let stats = Transcript.Stats.create () in
  let usage =
    if cfg.Config.track_channels then Some (Transcript.Channel_usage.create channels)
    else None
  in
  let transcript = ref [] in
  let tx_count = Array.make channels 0 in
  let first_sender = Array.make channels (-1) in
  let first_frame = Array.make channels dummy_frame in
  let listeners_on = Array.make channels 0 in
  let struck = Array.make channels false in
  let spoof_on : Frame.t option array = Array.make channels None in
  let touched = Array.make channels 0 in
  let n_touched = ref 0 in
  let[@inline] touch chan =
    if
      Array.get tx_count chan = 0
      && Array.get listeners_on chan = 0
      && not (Array.get struck chan)
    then begin
      Array.set touched !n_touched chan;
      incr n_touched
    end
  in
  let shared_outcomes = Array.make channels Transcript.Empty in
  (* Per-channel observation cache: one shared [Received] per delivered
     channel per round, handed to every listener at resume time (the frame
     itself was already shared; now the wrapper is too).  [round_some] is
     the same sharing for series result buffers: one [Some frame] per
     delivered channel per round, stored into every series listener's
     buffer. *)
  let round_obs : obs array = Array.make channels Nothing in
  let round_some : Frame.t option array = Array.make channels None in
  (* Empty-round fast-forward is sound only when nothing can observe the
     skipped rounds: no recording, and the adversary is the stateless null
     strategy (physical equality — [Adversary.t] is a record of closures). *)
  let fast_forward_ok = (not record_wanted) && adversary == Adversary.null in
  let honest_tx = ref [] and listeners = ref [] in
  let tx_total = ref 0 in
  let strike_count = ref 0 in
  let apply_strike s =
    incr strike_count;
    touch s.Adversary.chan;
    struck.(s.Adversary.chan) <- true;
    spoof_on.(s.Adversary.chan) <- s.Adversary.spoof
  in
  let harvest_serial () =
    let arr = !cur in
    for j = 0 to !n_cur - 1 do
      let i = arr.(j) in
      match Bytes.get st i with
      | 't' ->
        let chan = chan_of.(i) in
        validate_chan chan;
        incr tx_total;
        touch chan;
        let count = Array.get tx_count chan in
        Array.set tx_count chan (count + 1);
        let frame = frame_of.(i) in
        if count = 0 then begin
          Array.set first_sender chan i;
          Array.set first_frame chan frame
        end;
        let payload = Frame.payload_size frame in
        if payload > stats.Transcript.Stats.max_payload then
          stats.Transcript.Stats.max_payload <- payload;
        if record_wanted then honest_tx := (i, chan, frame) :: !honest_tx
      | 'l' | 's' ->
        let chan = chan_of.(i) in
        validate_chan chan;
        touch chan;
        Array.set listeners_on chan (Array.get listeners_on chan + 1);
        if record_wanted then listeners := (i, chan) :: !listeners
      | _ -> ()
    done
  in
  (* Sharded harvest.  Each pool task scans one contiguous chunk of the
     sorted active list into its own scratch; the merge below runs serially
     in shard order after the join, so globally-first senders and the
     touched order match the serial scan exactly. *)
  let scratch : shard_scratch array ref = ref [||] in
  let shard_ids : int list ref = ref [] in
  let harvest_shard sc lo hi =
    let arr = !cur in
    for j = lo to hi - 1 do
      let i = arr.(j) in
      match Bytes.get st i with
      | 't' ->
        let chan = chan_of.(i) in
        validate_chan chan;
        sc.s_tx_total <- sc.s_tx_total + 1;
        if sc.s_tx.(chan) = 0 && sc.s_listen.(chan) = 0 then begin
          sc.s_touched.(sc.s_n_touched) <- chan;
          sc.s_n_touched <- sc.s_n_touched + 1
        end;
        let count = sc.s_tx.(chan) in
        sc.s_tx.(chan) <- count + 1;
        if count = 0 then begin
          sc.s_first.(chan) <- i;
          sc.s_frame.(chan) <- frame_of.(i)
        end;
        let payload = Frame.payload_size frame_of.(i) in
        if payload > sc.s_max_payload then sc.s_max_payload <- payload
      | 'l' | 's' ->
        let chan = chan_of.(i) in
        validate_chan chan;
        if sc.s_tx.(chan) = 0 && sc.s_listen.(chan) = 0 then begin
          sc.s_touched.(sc.s_n_touched) <- chan;
          sc.s_n_touched <- sc.s_n_touched + 1
        end;
        sc.s_listen.(chan) <- sc.s_listen.(chan) + 1
      | _ -> ()
    done
  in
  let merge_shard sc =
    for j = 0 to sc.s_n_touched - 1 do
      let chan = sc.s_touched.(j) in
      touch chan;
      let stx = sc.s_tx.(chan) in
      if stx > 0 && Array.get tx_count chan = 0 then begin
        Array.set first_sender chan sc.s_first.(chan);
        Array.set first_frame chan sc.s_frame.(chan)
      end;
      Array.set tx_count chan (Array.get tx_count chan + stx);
      Array.set listeners_on chan (Array.get listeners_on chan + sc.s_listen.(chan));
      sc.s_tx.(chan) <- 0;
      sc.s_listen.(chan) <- 0;
      sc.s_first.(chan) <- -1;
      sc.s_frame.(chan) <- dummy_frame
    done;
    sc.s_n_touched <- 0;
    tx_total := !tx_total + sc.s_tx_total;
    sc.s_tx_total <- 0;
    if sc.s_max_payload > stats.Transcript.Stats.max_payload then
      stats.Transcript.Stats.max_payload <- sc.s_max_payload;
    sc.s_max_payload <- 0
  in
  let harvest_sharded p =
    let nshards = Parallel.Pool.size p in
    if Array.length !scratch = 0 then begin
      scratch :=
        Array.init nshards (fun _ ->
            { s_tx = Array.make channels 0;
              s_first = Array.make channels (-1);
              s_frame = Array.make channels dummy_frame;
              s_listen = Array.make channels 0;
              s_touched = Array.make channels 0;
              s_n_touched = 0;
              s_tx_total = 0;
              s_max_payload = 0 });
      shard_ids := List.init nshards Fun.id
    end;
    let total = !n_cur in
    let chunk = (total + nshards - 1) / nshards in
    ignore
      (Parallel.Pool.map_ordered p
         (fun s ->
           let lo = s * chunk in
           let hi = min total (lo + chunk) in
           (* Each task writes only scratch slot [s]; the join below is the
              barrier before the serial merge. *)
           if lo < hi then harvest_shard (Array.get !scratch s) lo hi)
         !shard_ids);
    Array.iter merge_shard !scratch
  in
  let[@inline] resume_one i =
    match Bytes.get st i with
    | 's' ->
      (* Series step: store this round's observation without resuming the
         fiber; the continuation only runs after the last round of the
         run.  The stored [Some] is the per-channel shared one. *)
      let p = ser_pos.(i) in
      let chans = ser_chans.(i) in
      ser_out.(i).(p) <- Array.get round_some chan_of.(i);
      let p' = p + 1 in
      if p' >= Array.length chans then begin
        ser_chans.(i) <- [||];
        ser_out.(i) <- [||];
        match konts.(i) with
        | NoK -> ()
        | K k ->
          konts.(i) <- NoK;
          running_i := i;
          Effect.Deep.continue k Nothing
      end
      else begin
        ser_pos.(i) <- p';
        chan_of.(i) <- chans.(p');
        push i
      end
    | 'p' ->
      (* Parked series completes: fill the whole result buffer from the
         history ring (row [r0] is [len - 1 < depth] rounds old, so every
         row of the run is still live), then resume the fiber once. *)
      let chans = ser_chans.(i) in
      let out = ser_out.(i) in
      let len = Array.length chans in
      let r0 = ser_pos.(i) in
      let depth = !series_depth in
      let hist = !series_hist in
      let row = ref (r0 mod depth) in
      for p = 0 to len - 1 do
        Array.set out p (Array.get hist ((!row * channels) + chans.(p)));
        incr row;
        if !row = depth then row := 0
      done;
      ser_chans.(i) <- [||];
      ser_out.(i) <- [||];
      decr series_outstanding;
      (match konts.(i) with
       | NoK -> ()
       | K k ->
         konts.(i) <- NoK;
         running_i := i;
         Effect.Deep.continue k Nothing)
    | code -> (
      match konts.(i) with
      | NoK -> ()
      | K k ->
        konts.(i) <- NoK;
        let obs =
          match code with
          | 'l' -> Array.get round_obs chan_of.(i)
          | 't' ->
            (* Drop the frame reference so the engine does not retain every
               node's last payload for the whole run. *)
            frame_of.(i) <- dummy_frame;
            Nothing
          | _ -> Nothing
        in
        running_i := i;
        Effect.Deep.continue k obs)
  in
  (* Resume the active list merged with this round's wakers, in ascending
     node-id order (the order is observable: node bodies may share state). *)
  let resume_round round =
    let wakers =
      match Hashtbl.find_opt wake round with
      | None -> [||]
      | Some ids ->
        Hashtbl.remove wake round;
        let a = Array.of_list ids in
        Array.sort (fun a b -> Int.compare a b) a;
        a
    in
    let ca = !cur and cn = !n_cur in
    let wn = Array.length wakers in
    let ci = ref 0 and wi = ref 0 in
    while !ci < cn || !wi < wn do
      let i =
        if !ci < cn && (!wi >= wn || ca.(!ci) < wakers.(!wi)) then begin
          let v = ca.(!ci) in
          incr ci;
          v
        end
        else begin
          let v = wakers.(!wi) in
          incr wi;
          v
        end
      in
      resume_one i
    done
  in
  let swap_active () =
    let tmp = !cur in
    cur := !nxt;
    nxt := tmp;
    n_cur := !n_nxt;
    n_nxt := 0
  in
  let min_wake () =
    (* A pure minimum over the keys: the unspecified iteration order cannot
       change the result, so no sorted Det.fold detour is needed here. *)
    (* radio-lint: allow nondet-hashtbl-order — min over keys is order-independent *)
    Hashtbl.fold (fun r _ acc -> if acc < 0 || r < acc then r else acc) wake (-1)
  in
  while !live > 0 && !round_counter < max_rounds do
    let round = !round_counter in
    if fast_forward_ok && !n_cur = 0 && !series_outstanding = 0 then begin
      (* Every live fiber is parked: skip straight to the earliest wake
         round (each skipped round is an all-idle round of the reference
         engine — it counts toward the stats but resolves nothing). *)
      let m = min_wake () in
      let last = if m < 0 then max_rounds - 1 else min m (max_rounds - 1) in
      stats.Transcript.Stats.rounds <-
        stats.Transcript.Stats.rounds + (last - round + 1);
      round_counter := last + 1;
      resume_round last;
      swap_active ()
    end
    else begin
      (* 1. Harvest declared actions over the active list. *)
      honest_tx := [];
      listeners := [];
      tx_total := 0;
      (match pool with
      | Some p
        when (not record_wanted) && !n_cur >= shard_min && Parallel.Pool.size p > 1
        ->
        harvest_sharded p
      | _ -> harvest_serial ());
      (* 2. Adversary commits its strikes without seeing this round's
         choices. *)
      let strikes =
        Adversary.validate ~channels ~budget:cfg.Config.t
          (adversary.Adversary.act ~round)
      in
      strike_count := 0;
      List.iter apply_strike strikes;
      (* Parked-series bookkeeping for this round: pre-zero the history row
         (its previous tenant is [depth] rounds dead) and touch channels
         whose only activity is parked listeners.  [series_base] indexes
         this round's ring rows; -1 when no series is outstanding. *)
      let series_base =
        if !series_outstanding = 0 then -1
        else begin
          let base = round mod !series_depth * channels in
          let counts = !series_counts in
          let hist = !series_hist in
          for chan = 0 to channels - 1 do
            Array.set hist (base + chan) None;
            if
              Array.get counts (base + chan) > 0
              && Array.get tx_count chan = 0
              && Array.get listeners_on chan = 0
              && not (Array.get struck chan)
            then begin
              Array.set touched !n_touched chan;
              incr n_touched
            end
          done;
          base
        end
      in
      (* 3. Resolve the touched channels; accumulators reset inline, but
         the touched list and [round_obs] survive until after the resume
         pass below. *)
      let outcomes =
        if record_wanted then Array.make channels Transcript.Empty else shared_outcomes
      in
      let jammed_this_round = ref false in
      for j = 0 to !n_touched - 1 do
        let chan = Array.get touched j in
        let honest = Array.get tx_count chan in
        let outcome =
          if Array.get struck chan then
            if honest = 0 then
              match Array.get spoof_on chan with
              | Some frame -> Transcript.Delivered { origin = Transcript.Adversarial; frame }
              | None ->
                (* A lone jam: energy but no decodable frame. *)
                Transcript.Collision { transmitters = 1; jammed = true }
            else Transcript.Collision { transmitters = honest + 1; jammed = true }
          else if honest = 0 then Transcript.Empty
          else if honest = 1 then
            Transcript.Delivered
              { origin = Transcript.Honest (Array.get first_sender chan);
                frame = Array.get first_frame chan }
          else Transcript.Collision { transmitters = honest; jammed = false }
        in
        Array.set outcomes chan outcome;
        (* Hearers = scalar listeners on the active list + parked series
           listeners tuned here this round (identical to the count the
           active-list scan produced before series parked). *)
        let hearers =
          Array.get listeners_on chan
          + (if series_base >= 0 then Array.get !series_counts (series_base + chan) else 0)
        in
        (match usage with
         | Some u -> Transcript.Channel_usage.note u chan outcome ~hearers
         | None -> ());
        (match outcome with
         | Transcript.Empty -> ()
         | Transcript.Delivered { origin; frame } ->
           let shared_some = Some frame in
           Array.set round_obs chan (Received frame);
           Array.set round_some chan shared_some;
           if series_base >= 0 then
             Array.set !series_hist (series_base + chan) shared_some;
           stats.Transcript.Stats.deliveries <- stats.Transcript.Stats.deliveries + hearers;
           (match origin with
            | Transcript.Adversarial ->
              stats.Transcript.Stats.spoofed_deliveries <-
                stats.Transcript.Stats.spoofed_deliveries + hearers
            | Transcript.Honest _ -> ())
         | Transcript.Collision { jammed; _ } ->
           stats.Transcript.Stats.collisions <- stats.Transcript.Stats.collisions + 1;
           if jammed then jammed_this_round := true);
        if series_base >= 0 then Array.set !series_counts (series_base + chan) 0;
        Array.set tx_count chan 0;
        Array.set first_sender chan (-1);
        Array.set first_frame chan dummy_frame;
        Array.set listeners_on chan 0;
        Array.set struck chan false;
        Array.set spoof_on chan None
      done;
      stats.Transcript.Stats.rounds <- stats.Transcript.Stats.rounds + 1;
      stats.Transcript.Stats.honest_transmissions <-
        stats.Transcript.Stats.honest_transmissions + !tx_total;
      stats.Transcript.Stats.strikes <- stats.Transcript.Stats.strikes + !strike_count;
      if !jammed_this_round then
        stats.Transcript.Stats.jammed_rounds <- stats.Transcript.Stats.jammed_rounds + 1;
      if record_wanted then begin
        let record =
          { Transcript.round;
            honest_tx = List.rev !honest_tx;
            listeners = List.rev !listeners;
            strikes = List.map (fun s -> (s.Adversary.chan, s.Adversary.spoof)) strikes;
            outcomes }
        in
        if cfg.Config.record_transcript then transcript := record :: !transcript;
        if adversary.Adversary.observes then adversary.Adversary.observe record
      end;
      incr round_counter;
      (* 4. Resume actives and wakers in node-id order, then clear the
         per-round observation cache. *)
      resume_round round;
      for j = 0 to !n_touched - 1 do
        let chan = Array.get touched j in
        Array.set round_obs chan Nothing;
        Array.set round_some chan None
      done;
      n_touched := 0;
      swap_active ()
    end
  done;
  let completed = !live = 0 in
  if not completed then
    for i = 0 to n - 1 do
      match konts.(i) with
      | NoK -> ()
      | K k ->
        konts.(i) <- NoK;
        running_i := i;
        (try Effect.Deep.discontinue k Aborted with Aborted -> ())
    done;
  { stats; transcript = List.rev !transcript; completed; rounds_used = !round_counter;
    channel_usage = usage }

let run ?pool ?(shard_min = default_shard_min) cfg ~adversary nodes =
  let n = cfg.Config.n in
  if Array.length nodes <> n then
    invalid_arg "Engine.run: node array length must equal cfg.n";
  let pool = match pool with Some _ as p -> p | None -> Parallel.ambient_pool () in
  run_core ~pool ~shard_min cfg ~adversary ~get_body:(fun i -> Array.get nodes i)

let run_nodes ?pool ?(shard_min = default_shard_min) cfg ~adversary body =
  (* One shared body closure, indexed by [ctx.id] — no n-length array of
     identical closures. *)
  let pool = match pool with Some _ as p -> p | None -> Parallel.ambient_pool () in
  run_core ~pool ~shard_min cfg ~adversary ~get_body:(fun _ -> body)
