type ctx = { id : int; rng : Prng.Rng.t; cfg : Config.t }

type obs = Received of Frame.t | Nothing

(* One effect constructor per action keeps the perform path lean: [EIdle] is
   a constant (no allocation at all), [EListen]/[ETransmit] are a single
   block each — there is no wrapper [action] box on the hot path. *)
type _ Effect.t += ETransmit : int * Frame.t -> obs Effect.t
type _ Effect.t += EListen : int -> obs Effect.t
type _ Effect.t += EIdle : obs Effect.t
type _ Effect.t += Round : int Effect.t

let transmit ~chan frame =
  match Effect.perform (ETransmit (chan, frame)) with
  | Received _ | Nothing -> ()

let listen ~chan =
  match Effect.perform (EListen chan) with
  | Received frame -> Some frame
  | Nothing -> None

let idle () =
  match Effect.perform EIdle with
  | Received _ | Nothing -> ()

let idle_for k =
  for _ = 1 to k do
    idle ()
  done

let current_round () = Effect.perform Round

exception Aborted

type fiber =
  | WaitT of int * Frame.t * (obs, unit) Effect.Deep.continuation
  | WaitL of int * (obs, unit) Effect.Deep.continuation
  | WaitI of (obs, unit) Effect.Deep.continuation
  | Finished

type result = {
  stats : Transcript.Stats.t;
  transcript : Transcript.round_record list;
  completed : bool;
  rounds_used : int;
}

(* Placeholder occupying [first_frame] slots whose [first_sender] is -1; the
   sentinel is the sender index, so the dummy is never read. *)
let dummy_frame = Frame.Plain { src = -1; dst = -1; body = "" }

(* The round loop is the simulator's hottest path: Figure 3's large-channel
   regimes run it with C = 2t^2 channels for hundreds of thousands of
   rounds.  Channel resolution is a single O(T) harvest pass into reusable
   per-channel accumulators followed by one pass over the channels actually
   touched this round — the per-channel [List.filter]/[List.find_opt]
   formulation was O(C*T) per round.  When neither the transcript nor the
   adversary consumes round records ([record_transcript] off and
   [Adversary.observes] false), the cons-heavy record lists are never
   materialized and the outcome array is reused across rounds.

   Allocation discipline: every suspension handler closure is hoisted and
   shared across fibers (the pending-action scratch cells below are filled
   by [effc] immediately before the matching closure runs — fibers are
   strictly sequential within the domain, so one set of cells suffices). *)
let run cfg ~adversary nodes =
  let n = cfg.Config.n in
  if Array.length nodes <> n then
    invalid_arg "Engine.run: node array length must equal cfg.n";
  let channels = cfg.Config.channels in
  let round_counter = ref 0 in
  let fibers = Array.make n Finished in
  (* Scratch cells carrying the perform's payload from [effc] to the shared
     suspension closures. *)
  let pending_i = ref 0 in
  let pending_chan = ref 0 in
  let pending_frame = ref dummy_frame in
  let some_transmit =
    Some
      (fun (k : (obs, unit) Effect.Deep.continuation) ->
        Array.set fibers !pending_i (WaitT (!pending_chan, !pending_frame, k)))
  in
  let some_listen =
    Some
      (fun (k : (obs, unit) Effect.Deep.continuation) ->
        Array.set fibers !pending_i (WaitL (!pending_chan, k)))
  in
  let some_idle =
    Some
      (fun (k : (obs, unit) Effect.Deep.continuation) ->
        Array.set fibers !pending_i (WaitI k))
  in
  let some_round =
    Some
      (fun (k : (int, unit) Effect.Deep.continuation) ->
        Effect.Deep.continue k !round_counter)
  in
  let start i body ctx =
    let handler =
      { Effect.Deep.retc = (fun () -> fibers.(i) <- Finished);
        exnc = (fun e -> fibers.(i) <- Finished; if e <> Aborted then raise e);
        effc =
          (fun (type a) (eff : a Effect.t) :
               ((a, unit) Effect.Deep.continuation -> unit) option ->
            match eff with
            | ETransmit (chan, frame) ->
              pending_i := i;
              pending_chan := chan;
              pending_frame := frame;
              some_transmit
            | EListen chan ->
              pending_i := i;
              pending_chan := chan;
              some_listen
            | EIdle ->
              pending_i := i;
              some_idle
            | Round -> some_round
            | _ -> None) }
    in
    Effect.Deep.match_with body ctx handler
  in
  Array.iteri
    (fun i body ->
      let ctx = { id = i; rng = Prng.Rng.split_at (Prng.Rng.create cfg.Config.seed) (i + 1); cfg } in
      start i body ctx)
    nodes;
  let stats = Transcript.Stats.create () in
  let transcript = ref [] in
  let validate_chan chan =
    if chan < 0 || chan >= channels then
      invalid_arg (Printf.sprintf "Engine: action on invalid channel %d" chan)
  in
  (* Per-channel accumulators; only the channels touched in a round (tracked
     in [touched]) are visited and reset, so quiet channels cost nothing. *)
  let tx_count = Array.make channels 0 in
  let first_sender = Array.make channels (-1) in
  let first_frame = Array.make channels dummy_frame in
  let listeners_on = Array.make channels 0 in
  let struck = Array.make channels false in
  let spoof_on : Frame.t option array = Array.make channels None in
  let touched = Array.make channels 0 in
  let n_touched = ref 0 in
  let[@inline] touch chan =
    if
      Array.get tx_count chan = 0
      && Array.get listeners_on chan = 0
      && not (Array.get struck chan)
    then begin
      Array.set touched !n_touched chan;
      incr n_touched
    end
  in
  let shared_outcomes = Array.make channels Transcript.Empty in
  let record_wanted = cfg.Config.record_transcript || adversary.Adversary.observes in
  let running = ref true in
  (* Round-loop state hoisted so the per-round closures below capture only
     loop-invariant cells and are allocated once per run. *)
  let honest_tx = ref [] and listeners = ref [] in
  let tx_total = ref 0 in
  let waiting = ref 0 in
  let strike_count = ref 0 in
  let apply_strike s =
    incr strike_count;
    touch s.Adversary.chan;
    struck.(s.Adversary.chan) <- true;
    spoof_on.(s.Adversary.chan) <- s.Adversary.spoof
  in
  while !running && !round_counter < cfg.Config.max_rounds do
    let round = !round_counter in
    (* 1. Harvest declared actions: one pass over the fibers. *)
    honest_tx := [];
    listeners := [];
    tx_total := 0;
    waiting := 0;
    for i = 0 to n - 1 do
      match Array.get fibers i with
      | Finished -> ()
      | WaitT (chan, frame, _) ->
        incr waiting;
        validate_chan chan;
        incr tx_total;
        touch chan;
        let count = Array.get tx_count chan in
        Array.set tx_count chan (count + 1);
        if count = 0 then begin
          Array.set first_sender chan i;
          Array.set first_frame chan frame
        end;
        let payload = Frame.payload_size frame in
        if payload > stats.Transcript.Stats.max_payload then
          stats.Transcript.Stats.max_payload <- payload;
        if record_wanted then honest_tx := (i, chan, frame) :: !honest_tx
      | WaitL (chan, _) ->
        incr waiting;
        validate_chan chan;
        touch chan;
        Array.set listeners_on chan (Array.get listeners_on chan + 1);
        if record_wanted then listeners := (i, chan) :: !listeners
      | WaitI _ -> incr waiting
    done;
    if !waiting = 0 then running := false
    else begin
      (* 2. Adversary commits its strikes without seeing this round's
         choices. *)
      let strikes =
        Adversary.validate ~channels ~budget:cfg.Config.t
          (adversary.Adversary.act ~round)
      in
      strike_count := 0;
      List.iter apply_strike strikes;
      (* 3. Resolve the touched channels, fold the round into the stats, and
         reset the accumulators — untouched channels stay Empty. *)
      let outcomes =
        if record_wanted then Array.make channels Transcript.Empty else shared_outcomes
      in
      let jammed_this_round = ref false in
      for j = 0 to !n_touched - 1 do
        let chan = Array.get touched j in
        let honest = Array.get tx_count chan in
        let outcome =
          if Array.get struck chan then
            if honest = 0 then
              match Array.get spoof_on chan with
              | Some frame -> Transcript.Delivered { origin = Transcript.Adversarial; frame }
              | None ->
                (* A lone jam: energy but no decodable frame. *)
                Transcript.Collision { transmitters = 1; jammed = true }
            else Transcript.Collision { transmitters = honest + 1; jammed = true }
          else if honest = 0 then Transcript.Empty
          else if honest = 1 then
            Transcript.Delivered
              { origin = Transcript.Honest (Array.get first_sender chan);
                frame = Array.get first_frame chan }
          else Transcript.Collision { transmitters = honest; jammed = false }
        in
        Array.set outcomes chan outcome;
        (match outcome with
         | Transcript.Empty -> ()
         | Transcript.Delivered { origin; _ } ->
           let hearers = Array.get listeners_on chan in
           stats.Transcript.Stats.deliveries <- stats.Transcript.Stats.deliveries + hearers;
           (match origin with
            | Transcript.Adversarial ->
              stats.Transcript.Stats.spoofed_deliveries <-
                stats.Transcript.Stats.spoofed_deliveries + hearers
            | Transcript.Honest _ -> ())
         | Transcript.Collision { jammed; _ } ->
           stats.Transcript.Stats.collisions <- stats.Transcript.Stats.collisions + 1;
           if jammed then jammed_this_round := true);
        Array.set tx_count chan 0;
        Array.set first_sender chan (-1);
        Array.set first_frame chan dummy_frame;
        Array.set listeners_on chan 0;
        Array.set struck chan false;
        Array.set spoof_on chan None
      done;
      n_touched := 0;
      stats.Transcript.Stats.rounds <- stats.Transcript.Stats.rounds + 1;
      stats.Transcript.Stats.honest_transmissions <-
        stats.Transcript.Stats.honest_transmissions + !tx_total;
      stats.Transcript.Stats.strikes <- stats.Transcript.Stats.strikes + !strike_count;
      if !jammed_this_round then
        stats.Transcript.Stats.jammed_rounds <- stats.Transcript.Stats.jammed_rounds + 1;
      if record_wanted then begin
        let record =
          { Transcript.round;
            honest_tx = List.rev !honest_tx;
            listeners = List.rev !listeners;
            strikes = List.map (fun s -> (s.Adversary.chan, s.Adversary.spoof)) strikes;
            outcomes }
        in
        if cfg.Config.record_transcript then transcript := record :: !transcript;
        if adversary.Adversary.observes then adversary.Adversary.observe record
      end;
      incr round_counter;
      (* 4. Resume fibers with their observations, in node-id order.  A
         resumed fiber re-populates fibers.(i) if it suspends again. *)
      for i = 0 to n - 1 do
        match Array.get fibers i with
        | Finished -> ()
        | WaitL (chan, k) ->
          let obs =
            match Array.get outcomes chan with
            | Transcript.Delivered { frame; _ } -> Received frame
            | Transcript.Empty | Transcript.Collision _ -> Nothing
          in
          fibers.(i) <- Finished;
          Effect.Deep.continue k obs
        | WaitT (_, _, k) ->
          fibers.(i) <- Finished;
          Effect.Deep.continue k Nothing
        | WaitI k ->
          fibers.(i) <- Finished;
          Effect.Deep.continue k Nothing
      done
    end
  done;
  let completed =
    Array.for_all (function Finished -> true | WaitT _ | WaitL _ | WaitI _ -> false) fibers
  in
  if not completed then
    Array.iter
      (fun fiber ->
        match fiber with
        | Finished -> ()
        | WaitT (_, _, k) | WaitL (_, k) | WaitI k -> (
          try Effect.Deep.discontinue k Aborted with Aborted -> ()))
      fibers;
  { stats; transcript = List.rev !transcript; completed; rounds_used = !round_counter }

let run_nodes cfg ~adversary body =
  run cfg ~adversary (Array.make cfg.Config.n body)
