(** Static parameters of a simulated network (Section 3 of the paper).

    [n] nodes, [channels] = C communication channels, adversary budget [t]
    channels per round (t < C).  [seed] makes the whole run deterministic.
    [max_rounds] bounds runaway protocols; [record_transcript] retains the
    full per-round history for tests and debugging (costs memory). *)

type t = {
  n : int;
  channels : int;
  t : int;
  seed : int64;
  max_rounds : int;
  record_transcript : bool;
  track_channels : bool;
      (** accumulate per-physical-channel delivery/collision/jam counters
          (see {!Transcript.Channel_usage}); cheap, but off by default *)
}

val default_max_rounds : int
(** Generous ceiling for experiment-scale runs: far above any honest
    completion time, low enough that a divergent protocol still
    terminates.  Shared by the experiment harness and the test suite. *)

val make :
  ?seed:int64 ->
  ?max_rounds:int ->
  ?record_transcript:bool ->
  ?track_channels:bool ->
  n:int ->
  channels:int ->
  t:int ->
  unit ->
  t
(** Validates [channels >= 2], [0 <= t < channels], [n >= 2]; raises
    [Invalid_argument] otherwise. *)

val ample_nodes : t -> bool
(** The paper's standing assumption (Section 4): n > 3(t+1)^2 + 2(t+1),
    required by f-AME's witness/surrogate scheduling but not by the raw
    simulator. *)

val pp : Format.formatter -> t -> unit
