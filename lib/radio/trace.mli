(** Rendering and analysis of recorded transcripts.

    When a run is configured with [record_transcript = true], the engine
    keeps every {!Transcript.round_record}; this module turns them into
    human-readable logs, CSV for external analysis, and per-channel
    utilization summaries — the debugging surface for protocol work on top
    of the simulator. *)

val pp_round : Format.formatter -> Transcript.round_record -> unit
(** One round as a compact multi-line block: per-channel outcome, honest
    transmitters, strikes, listeners. *)

val pp_rounds :
  ?limit:int -> Format.formatter -> Transcript.round_record list -> unit
(** Render the first [limit] (default 50) rounds. *)

val to_csv : Transcript.round_record list -> string
(** One row per (round, channel): round, channel, outcome kind, origin,
    honest transmitter count, listener count, frame summary.  Header
    included. *)

type channel_usage = {
  channel : int;
  deliveries : int;  (** rounds this channel carried a decodable frame *)
  collisions : int;
  jammed : int;  (** collisions the adversary participated in *)
  idle : int;
  spoofed : int;  (** deliveries that originated from the adversary *)
}

val utilization : channels:int -> Transcript.round_record list -> channel_usage list

val pp_utilization : Format.formatter -> channel_usage list -> unit
