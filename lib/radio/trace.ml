let pp_outcome fmt = function
  | Transcript.Empty -> Format.fprintf fmt "empty"
  | Transcript.Delivered { origin = Transcript.Honest v; frame } ->
    Format.fprintf fmt "delivered from %d: %a" v Frame.pp frame
  | Transcript.Delivered { origin = Transcript.Adversarial; frame } ->
    Format.fprintf fmt "SPOOFED: %a" Frame.pp frame
  | Transcript.Collision { transmitters; jammed } ->
    Format.fprintf fmt "collision (%d transmitters%s)" transmitters
      (if jammed then ", jammed" else "")

let pp_round fmt (r : Transcript.round_record) =
  Format.fprintf fmt "round %d@." r.Transcript.round;
  Array.iteri
    (fun chan outcome ->
      let listeners =
        List.filter_map
          (fun (node, c) -> if c = chan then Some (string_of_int node) else None)
          r.Transcript.listeners
      in
      Format.fprintf fmt "  ch%d: %a%s@." chan pp_outcome outcome
        (if listeners = [] then ""
         else Printf.sprintf "  [listeners: %s]" (String.concat "," listeners)))
    r.Transcript.outcomes

let pp_rounds ?(limit = 50) fmt records =
  let shown = List.filteri (fun i _ -> i < limit) records in
  List.iter (pp_round fmt) shown;
  let remaining = List.length records - List.length shown in
  if remaining > 0 then Format.fprintf fmt "... (%d more rounds)@." remaining

let outcome_fields = function
  | Transcript.Empty -> ("empty", "-", "-")
  | Transcript.Delivered { origin = Transcript.Honest v; frame } ->
    ("delivered", string_of_int v, Format.asprintf "%a" Frame.pp frame)
  | Transcript.Delivered { origin = Transcript.Adversarial; frame } ->
    ("delivered", "adversary", Format.asprintf "%a" Frame.pp frame)
  | Transcript.Collision { transmitters; jammed } ->
    ((if jammed then "jammed" else "collision"), string_of_int transmitters, "-")

let to_csv records =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "round,channel,outcome,origin,honest_tx,listeners,frame\n";
  List.iter
    (fun (r : Transcript.round_record) ->
      Array.iteri
        (fun chan outcome ->
          let kind, origin, frame = outcome_fields outcome in
          let honest =
            List.length (List.filter (fun (_, c, _) -> c = chan) r.Transcript.honest_tx)
          in
          let listeners =
            List.length (List.filter (fun (_, c) -> c = chan) r.Transcript.listeners)
          in
          Buffer.add_string buf
            (Printf.sprintf "%d,%d,%s,%s,%d,%d,%S\n" r.Transcript.round chan kind origin
               honest listeners frame))
        r.Transcript.outcomes)
    records;
  Buffer.contents buf

type channel_usage = {
  channel : int;
  deliveries : int;
  collisions : int;
  jammed : int;
  idle : int;
  spoofed : int;
}

let utilization ~channels records =
  let usage =
    Array.init channels (fun channel ->
        { channel; deliveries = 0; collisions = 0; jammed = 0; idle = 0; spoofed = 0 })
  in
  List.iter
    (fun (r : Transcript.round_record) ->
      Array.iteri
        (fun chan outcome ->
          if chan < channels then
            let u = usage.(chan) in
            usage.(chan) <-
              (match outcome with
               | Transcript.Empty -> { u with idle = u.idle + 1 }
               | Transcript.Delivered { origin = Transcript.Adversarial; _ } ->
                 { u with deliveries = u.deliveries + 1; spoofed = u.spoofed + 1 }
               | Transcript.Delivered _ -> { u with deliveries = u.deliveries + 1 }
               | Transcript.Collision { jammed; _ } ->
                 { u with
                   collisions = u.collisions + 1;
                   jammed = (u.jammed + if jammed then 1 else 0) }))
        r.Transcript.outcomes)
    records;
  Array.to_list usage

let pp_utilization fmt usage =
  Format.fprintf fmt "%-8s %10s %10s %8s %6s %8s@." "channel" "delivered" "collisions"
    "jammed" "idle" "spoofed";
  List.iter
    (fun u ->
      Format.fprintf fmt "%-8d %10d %10d %8d %6d %8d@." u.channel u.deliveries u.collisions
        u.jammed u.idle u.spoofed)
    usage
