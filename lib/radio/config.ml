(** Static parameters of a simulated network (Section 3 of the paper).

    [n] nodes, [channels] = C communication channels, adversary budget [t]
    channels per round (t < C).  [seed] makes the whole run deterministic.
    [max_rounds] bounds runaway protocols; [record_transcript] retains the
    full per-round history for tests and debugging (costs memory). *)

type t = {
  n : int;
  channels : int;
  t : int;
  seed : int64;
  max_rounds : int;
  record_transcript : bool;
  track_channels : bool;
}

(* Generous ceiling for experiment-scale runs: far above any honest
   completion time, low enough that a divergent protocol still terminates.
   Shared by the experiment harness and the test suite. *)
let default_max_rounds = 20_000_000

let make ?(seed = 1L) ?(max_rounds = 2_000_000) ?(record_transcript = false)
    ?(track_channels = false) ~n ~channels ~t () =
  if channels < 2 then invalid_arg "Config.make: need at least 2 channels";
  if t < 0 || t >= channels then invalid_arg "Config.make: need 0 <= t < channels";
  if n < 2 then invalid_arg "Config.make: need at least 2 nodes";
  { n; channels; t; seed; max_rounds; record_transcript; track_channels }

(* The paper's standing assumption (Section 4): n > 3(t+1)^2 + 2(t+1),
   required by f-AME's witness/surrogate scheduling but not by the raw
   simulator, so it is a separate check. *)
let ample_nodes cfg = cfg.n > (3 * (cfg.t + 1) * (cfg.t + 1)) + (2 * (cfg.t + 1))

let pp fmt cfg =
  Format.fprintf fmt "{n=%d; C=%d; t=%d; seed=%Ld}" cfg.n cfg.channels cfg.t cfg.seed
