type payload =
  | Plain of { src : int; dst : int; body : string }
  | Vector of { owner : int; entries : (int * string) list }
  | Feedback_true of int
  | Feedback_false
  | Feedback_set of (int * bool) list
  | Chain of { owner : int; index : int; body : string; recon_hash : string }
  | Sealed of string
  | Report of { reporter : int; leader : int; key_hash : string }
  | Noise

type t = payload

let pp fmt = function
  | Plain { src; dst; body } -> Format.fprintf fmt "Plain(%d->%d,%dB)" src dst (String.length body)
  | Vector { owner; entries } -> Format.fprintf fmt "Vector(owner=%d,%d entries)" owner (List.length entries)
  | Feedback_true r -> Format.fprintf fmt "True(%d)" r
  | Feedback_false -> Format.fprintf fmt "False"
  | Feedback_set flags -> Format.fprintf fmt "Set(%d flags)" (List.length flags)
  | Chain { owner; index; _ } -> Format.fprintf fmt "Chain(%d,#%d)" owner index
  | Sealed s -> Format.fprintf fmt "Sealed(%dB)" (String.length s)
  | Report { reporter; leader; _ } -> Format.fprintf fmt "Report(%d: leader %d)" reporter leader
  | Noise -> Format.fprintf fmt "Noise"

let equal (a : t) (b : t) = a = b

let id_size = 4

let payload_size = function
  | Plain { body; _ } -> (2 * id_size) + String.length body
  | Vector { entries; _ } ->
    id_size + List.fold_left (fun acc (_, body) -> acc + id_size + String.length body) 0 entries
  | Feedback_true _ -> 1 + id_size
  | Feedback_false -> 1
  | Feedback_set flags -> 1 + (List.length flags * (id_size + 1))
  | Chain { body; recon_hash; _ } -> (2 * id_size) + String.length body + String.length recon_hash
  | Sealed s -> String.length s
  | Report { key_hash; _ } -> (2 * id_size) + String.length key_hash
  | Noise -> 0
