(** Ground-truth record of what happened on the air.

    The engine produces one {!round_record} per round.  Adversary strategies
    receive each record after the round completes (the paper grants the
    adversary full knowledge of all completed rounds, including random
    choices); tests use records to verify authenticity and disruption
    claims; {!Stats} aggregates them cheaply when full recording is off. *)

type origin = Honest of int | Adversarial

type outcome =
  | Empty  (** nobody transmitted *)
  | Delivered of { origin : origin; frame : Frame.t }  (** exactly one transmitter *)
  | Collision of { transmitters : int; jammed : bool }
      (** >= 2 transmitters, or a successful jam; [jammed] is true when the
          adversary participated *)

type round_record = {
  round : int;
  honest_tx : (int * int * Frame.t) list;  (** (node, channel, frame) *)
  listeners : (int * int) list;  (** (node, channel) *)
  strikes : (int * Frame.t option) list;  (** adversary: (channel, spoof or jam) *)
  outcomes : outcome array;  (** indexed by channel *)
}

val spoof_delivered : round_record -> bool
(** Did some listener receive an adversarial frame this round? *)

val channel_outcome : round_record -> int -> outcome

module Channel_usage : sig
  type t = {
    deliveries : int array;  (** receptions per physical channel *)
    collisions : int array;  (** collision outcomes per physical channel *)
    jammed : int array;  (** jammed collisions per physical channel *)
  }
  (** Per-physical-channel accounting, accumulated by the engine when
      [Config.track_channels] is on.  Arrays are indexed by channel; the
      counts match {!Stats} semantics exactly (deliveries count receptions,
      a jammed channel contributes to both [collisions] and [jammed]). *)

  val create : int -> t
  (** [create channels]: all-zero counters. *)

  val note : t -> int -> outcome -> hearers:int -> unit
  (** Fold one resolved channel outcome in ([hearers] = listeners tuned to
      that channel this round). *)
end

module Stats : sig
  type t = {
    mutable rounds : int;
    mutable honest_transmissions : int;
    mutable deliveries : int;
    mutable spoofed_deliveries : int;
    mutable collisions : int;
    mutable jammed_rounds : int;
    mutable strikes : int;
    mutable max_payload : int;
  }

  val create : unit -> t

  val absorb : t -> round_record -> unit

  val pp : Format.formatter -> t -> unit
end
