(** Ground-truth record of what happened on the air.

    The engine produces one {!round_record} per round.  Adversary strategies
    receive each record after the round completes (the paper grants the
    adversary full knowledge of all completed rounds, including random
    choices); tests use records to verify authenticity and disruption
    claims; {!Stats} aggregates them cheaply when full recording is off. *)

type origin = Honest of int | Adversarial

type outcome =
  | Empty  (** nobody transmitted *)
  | Delivered of { origin : origin; frame : Frame.t }  (** exactly one transmitter *)
  | Collision of { transmitters : int; jammed : bool }
      (** >= 2 transmitters, or a successful jam; [jammed] is true when the
          adversary participated *)

type round_record = {
  round : int;
  honest_tx : (int * int * Frame.t) list;  (** (node, channel, frame) *)
  listeners : (int * int) list;  (** (node, channel) *)
  strikes : (int * Frame.t option) list;  (** adversary: (channel, spoof or jam) *)
  outcomes : outcome array;  (** indexed by channel *)
}

val spoof_delivered : round_record -> bool
(** Did some listener receive an adversarial frame this round? *)

val channel_outcome : round_record -> int -> outcome

module Stats : sig
  type t = {
    mutable rounds : int;
    mutable honest_transmissions : int;
    mutable deliveries : int;
    mutable spoofed_deliveries : int;
    mutable collisions : int;
    mutable jammed_rounds : int;
    mutable strikes : int;
    mutable max_payload : int;
  }

  val create : unit -> t

  val absorb : t -> round_record -> unit

  val pp : Format.formatter -> t -> unit
end
