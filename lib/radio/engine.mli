(** The synchronous multi-channel radio engine (Section 3 semantics).

    Executions proceed in rounds.  Per round each node transmits or listens
    on one channel (or idles); the adversary adds up to t strikes.  On each
    channel: exactly one transmitter of a decodable frame means every
    listener receives it; zero or several transmitters (or a jam) mean
    listeners receive nothing.  Nodes cannot detect collisions and cannot
    tell a spoofed frame from a real one.

    Nodes are written in direct style as coroutines over OCaml effects: the
    body calls {!transmit} / {!listen} / {!idle}, each consuming exactly one
    round, so protocol code reads like the paper's pseudocode.  The engine
    steps all fibers in node-id order, making every run a deterministic
    function of the configuration seed. *)

type ctx = {
  id : int;  (** this node's index in 0..n-1 *)
  rng : Prng.Rng.t;  (** private random stream (split from the master seed) *)
  cfg : Config.t;
}

(** {1 Round actions} — each call suspends the fiber for one radio round. *)

val transmit : chan:int -> Frame.t -> unit
(** Broadcast a frame on [chan] this round.  The sender learns nothing about
    success (no collision detection). *)

val listen : chan:int -> Frame.t option
(** Tune to [chan]; [Some frame] if a single transmitter was decodable,
    [None] otherwise.  A spoofed frame is indistinguishable from a real
    one. *)

val idle : unit -> unit
(** Participate in the round without transmitting or listening. *)

val idle_for : int -> unit

val current_round : unit -> int
(** The engine's round counter.  Does not consume a round. *)

(** {1 Running} *)

type result = {
  stats : Transcript.Stats.t;
  transcript : Transcript.round_record list;  (** empty unless recording is on *)
  completed : bool;  (** false if [max_rounds] was exhausted first *)
  rounds_used : int;
}

val run : Config.t -> adversary:Adversary.t -> (ctx -> unit) array -> result
(** [run cfg ~adversary nodes] starts one fiber per node (the array must
    have length [cfg.n]) and drives rounds until every fiber returns.
    Raises [Invalid_argument] on malformed node actions (bad channel). *)

val run_nodes : Config.t -> adversary:Adversary.t -> (ctx -> unit) -> result
(** Convenience: the same body for every node (it can branch on [ctx.id]). *)
