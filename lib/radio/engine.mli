(** The synchronous multi-channel radio engine (Section 3 semantics).

    Executions proceed in rounds.  Per round each node transmits or listens
    on one channel (or idles); the adversary adds up to t strikes.  On each
    channel: exactly one transmitter of a decodable frame means every
    listener receives it; zero or several transmitters (or a jam) mean
    listeners receive nothing.  Nodes cannot detect collisions and cannot
    tell a spoofed frame from a real one.

    Nodes are written in direct style as coroutines over OCaml effects: the
    body calls {!transmit} / {!listen} / {!idle}, each consuming exactly one
    round, so protocol code reads like the paper's pseudocode.  The engine
    steps all fibers in node-id order, making every run a deterministic
    function of the configuration seed.

    Two execution cores share this interface.  The default ({!run} /
    {!run_nodes}) is sparse and event-driven: per-node state lives in flat
    struct-of-arrays slots, a round costs work proportional to the number
    of {e active} nodes (fibers parked by {!idle_for} sit in a wake queue
    until their round), and on a multi-domain pool the harvest scan of a
    large round is sharded across domains with a deterministic in-order
    merge.  {!run_reference} is the original dense O(n)-per-round loop,
    kept as the semantic oracle: both cores produce byte-identical stats,
    transcripts, and round counts for the same configuration. *)

type ctx = {
  id : int;  (** this node's index in 0..n-1 *)
  rng : Prng.Rng.t;  (** private random stream (split from the master seed) *)
  cfg : Config.t;
}

(** {1 Round actions} — each call suspends the fiber for one radio round. *)

val transmit : chan:int -> Frame.t -> unit
(** Broadcast a frame on [chan] this round.  The sender learns nothing about
    success (no collision detection). *)

val listen : chan:int -> Frame.t option
(** Tune to [chan]; [Some frame] if a single transmitter was decodable,
    [None] otherwise.  A spoofed frame is indistinguishable from a real
    one. *)

val idle : unit -> unit
(** Participate in the round without transmitting or listening. *)

val idle_for : int -> unit
(** Idle for [k] consecutive rounds ([k <= 0] is a no-op).  Equivalent to
    [k] calls of {!idle}, but a single suspension: the sparse engine parks
    the fiber in its wake queue, so the idle span costs zero per-round
    work. *)

val listen_series : chans:int array -> into:Frame.t option array -> unit
(** Listen for [Array.length chans] consecutive rounds, on [chans.(j)] in
    the j-th round, storing each round's observation into [into.(j)].
    Observationally identical to
    [Array.iteri (fun j c -> into.(j) <- listen ~chan:c) chans] — same
    stats, transcripts, and delivery semantics — but a single suspension:
    the engine steps the fiber's listening cursor itself, so a long run of
    listens costs array reads per round instead of a continuation resume.
    Use it when the channel sequence does not depend on what is heard
    (e.g. the f-AME feedback listeners' random hops).  [into] must have the
    same length as [chans] (else [Invalid_argument]); its previous contents
    are overwritten round by round.  Zero-length [chans] consumes no
    rounds. *)

val current_round : unit -> int
(** The engine's round counter.  Does not consume a round. *)

(** {1 Running} *)

type result = {
  stats : Transcript.Stats.t;
  transcript : Transcript.round_record list;  (** empty unless recording is on *)
  completed : bool;  (** false if [max_rounds] was exhausted first *)
  rounds_used : int;
  channel_usage : Transcript.Channel_usage.t option;
      (** per-physical-channel counters; [Some] iff [Config.track_channels].
          Identical across cores, pool sizes, and sharding. *)
}

val run :
  ?pool:Parallel.Pool.t ->
  ?shard_min:int ->
  Config.t ->
  adversary:Adversary.t ->
  (ctx -> unit) array ->
  result
(** [run cfg ~adversary nodes] starts one fiber per node (the array must
    have length [cfg.n]) and drives rounds until every fiber returns.
    Raises [Invalid_argument] on malformed node actions (bad channel).

    [?pool] (default: the ambient {!Parallel.run} pool, if any) enables
    intra-round sharding of the harvest scan; [?shard_min] (default 16384)
    is the minimum active-node count before a round is sharded.  Sharding
    never changes observable behaviour: per-shard accumulators are merged
    in shard order, so stats, transcripts, and stdout are byte-identical
    for every pool size, including none. *)

val run_nodes :
  ?pool:Parallel.Pool.t ->
  ?shard_min:int ->
  Config.t ->
  adversary:Adversary.t ->
  (ctx -> unit) ->
  result
(** Convenience: the same body for every node (it can branch on [ctx.id]).
    The body closure is shared — node state is indexed by [ctx.id], so no
    n-length array of identical closures is built. *)

val run_reference : Config.t -> adversary:Adversary.t -> (ctx -> unit) array -> result
(** The original dense execution core: scans all [n] fibers every round.
    Kept as the reference implementation for equivalence testing; produces
    byte-identical results to {!run} on the same inputs. *)
