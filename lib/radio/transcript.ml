type origin = Honest of int | Adversarial

type outcome =
  | Empty
  | Delivered of { origin : origin; frame : Frame.t }
  | Collision of { transmitters : int; jammed : bool }

type round_record = {
  round : int;
  honest_tx : (int * int * Frame.t) list;
  listeners : (int * int) list;
  strikes : (int * Frame.t option) list;
  outcomes : outcome array;
}

let spoof_delivered record =
  let adversarial_on chan =
    match record.outcomes.(chan) with
    | Delivered { origin = Adversarial; _ } -> true
    | Delivered { origin = Honest _; _ } | Empty | Collision _ -> false
  in
  List.exists (fun (_, chan) -> adversarial_on chan) record.listeners

let channel_outcome record chan = record.outcomes.(chan)

module Channel_usage = struct
  type t = {
    deliveries : int array;
    collisions : int array;
    jammed : int array;
  }

  let create channels =
    { deliveries = Array.make channels 0;
      collisions = Array.make channels 0;
      jammed = Array.make channels 0 }

  (* Folds one resolved channel outcome in.  [hearers] is the listener count
     on the channel this round, matching the semantics of
     [Stats.deliveries]: deliveries count receptions, not occupied
     channels. *)
  let note t chan outcome ~hearers =
    match outcome with
    | Empty -> ()
    | Delivered _ -> t.deliveries.(chan) <- t.deliveries.(chan) + hearers
    | Collision { jammed = j; _ } ->
      t.collisions.(chan) <- t.collisions.(chan) + 1;
      if j then t.jammed.(chan) <- t.jammed.(chan) + 1
end

module Stats = struct
  type t = {
    mutable rounds : int;
    mutable honest_transmissions : int;
    mutable deliveries : int;
    mutable spoofed_deliveries : int;
    mutable collisions : int;
    mutable jammed_rounds : int;
    mutable strikes : int;
    mutable max_payload : int;
  }

  let create () =
    { rounds = 0; honest_transmissions = 0; deliveries = 0; spoofed_deliveries = 0;
      collisions = 0; jammed_rounds = 0; strikes = 0; max_payload = 0 }

  let absorb t record =
    t.rounds <- t.rounds + 1;
    t.honest_transmissions <- t.honest_transmissions + List.length record.honest_tx;
    t.strikes <- t.strikes + List.length record.strikes;
    List.iter
      (fun (_, _, frame) -> t.max_payload <- max t.max_payload (Frame.payload_size frame))
      record.honest_tx;
    let listeners_on = Array.make (Array.length record.outcomes) 0 in
    List.iter (fun (_, chan) -> listeners_on.(chan) <- listeners_on.(chan) + 1) record.listeners;
    let jammed = ref false in
    Array.iteri
      (fun chan outcome ->
        match outcome with
        | Empty -> ()
        | Delivered { origin; _ } ->
          (* Deliveries count actual receptions, not just occupied channels. *)
          t.deliveries <- t.deliveries + listeners_on.(chan);
          (match origin with
           | Adversarial -> t.spoofed_deliveries <- t.spoofed_deliveries + listeners_on.(chan)
           | Honest _ -> ())
        | Collision { jammed = j; _ } ->
          t.collisions <- t.collisions + 1;
          if j then jammed := true)
      record.outcomes;
    if !jammed then t.jammed_rounds <- t.jammed_rounds + 1

  let pp fmt t =
    Format.fprintf fmt
      "rounds=%d tx=%d delivered=%d spoofed=%d collisions=%d jammed_rounds=%d strikes=%d max_payload=%dB"
      t.rounds t.honest_transmissions t.deliveries t.spoofed_deliveries t.collisions
      t.jammed_rounds t.strikes t.max_payload
end
