type strike = { chan : int; spoof : Frame.t option }

type t = {
  name : string;
  act : round:int -> strike list;
  observe : Transcript.round_record -> unit;
  observes : bool;
}

let validate_nonempty ~channels ~budget strikes =
  (* Over-budget strategies are clamped, not rejected: the model simply
     ignores transmissions beyond the budget (dropped from the end, like
     {!energy_bounded}).  Invalid or duplicate channels are still adversary
     bugs and raise. *)
  let strikes =
    if List.compare_length_with strikes budget > 0 then
      List.filteri (fun i _ -> i < budget) strikes
    else strikes
  in
  (* At most [budget] strikes survive the clamp, so the quadratic duplicate
     scan is tiny — and unlike a hash table it allocates nothing on the
     per-round path. *)
  let rec check = function
    | [] -> ()
    | { chan; _ } :: rest ->
      if chan < 0 || chan >= channels then invalid_arg "Adversary: strike on invalid channel";
      List.iter
        (fun s -> if s.chan = chan then invalid_arg "Adversary: duplicate strike channel")
        rest;
      check rest
  in
  check strikes;
  strikes

let validate ~channels ~budget strikes =
  match strikes with
  | [] ->
    (* Null path: the common case on every quiet round and every round of
       the null adversary.  Short-circuiting here keeps it allocation-free
       (the clamp/duplicate machinery is never entered). *)
    []
  | _ :: _ -> validate_nonempty ~channels ~budget strikes

let no_observe (_ : Transcript.round_record) = ()

let null = { name = "null"; act = (fun ~round:_ -> []); observe = no_observe; observes = false }

let distinct_random_channels rng ~channels ~count =
  let arr = Array.init channels Fun.id in
  Prng.Rng.shuffle rng arr;
  Array.to_list (Array.sub arr 0 (min count channels))

let random_jammer rng ~channels ~budget =
  { name = "random-jammer";
    act =
      (fun ~round:_ ->
        List.map (fun chan -> { chan; spoof = None })
          (distinct_random_channels rng ~channels ~count:budget));
    observe = no_observe;
    observes = false }

let sweep_jammer ~channels ~budget =
  { name = "sweep-jammer";
    act =
      (fun ~round ->
        List.init budget (fun i -> { chan = (round + i) mod channels; spoof = None }));
    observe = no_observe;
    observes = false }

let targeted_jammer ~channels ~channels_of_round ~budget =
  { name = "targeted-jammer";
    act =
      (fun ~round ->
        let module S = Set.Make (Int) in
        let named = S.elements (S.of_list (channels_of_round round)) in
        let primary = List.filteri (fun i _ -> i < budget) named in
        let rec pad acc next =
          if List.length acc >= budget || next >= channels then List.rev acc
          else if List.exists (fun s -> s.chan = next) acc then pad acc (next + 1)
          else pad ({ chan = next; spoof = None } :: acc) (next + 1)
        in
        pad (List.rev_map (fun chan -> { chan; spoof = None }) primary) 0);
    observe = no_observe;
    observes = false }

let spoofer rng ~channels ~budget ~forge =
  { name = "spoofer";
    act =
      (fun ~round ->
        List.map (fun chan -> { chan; spoof = Some (forge ~round chan) })
          (distinct_random_channels rng ~channels ~count:budget));
    observe = no_observe;
    observes = false }

let reactive_jammer rng ~channels ~budget =
  let last_traffic = Array.make channels 0 in
  { name = "reactive-jammer";
    act =
      (fun ~round:_ ->
        (* Rank channels by last round's honest traffic; random tiebreak. *)
        let keyed =
          Array.to_list
            (Array.mapi (fun chan hits -> (hits, Prng.Rng.int rng 1_000_000, chan)) last_traffic)
        in
        let ranked =
          List.sort
            (fun (h1, r1, c1) (h2, r2, c2) ->
              (* Descending (hits, tiebreak, chan): b-vs-a of the old
                 polymorphic sort, spelled out monomorphically. *)
              let c = Int.compare h2 h1 in
              if c <> 0 then c
              else
                let c = Int.compare r2 r1 in
                if c <> 0 then c else Int.compare c2 c1)
            keyed
        in
        List.filteri (fun i _ -> i < budget) ranked
        |> List.map (fun (_, _, chan) -> { chan; spoof = None }));
    observe =
      (fun record ->
        Array.fill last_traffic 0 channels 0;
        List.iter
          (fun (_, chan, _) -> last_traffic.(chan) <- last_traffic.(chan) + 1)
          record.Transcript.honest_tx);
    observes = true }

let energy_bounded ~total inner =
  let remaining = ref total in
  { name = Printf.sprintf "%s[energy<=%d]" inner.name total;
    act =
      (fun ~round ->
        if !remaining <= 0 then []
        else begin
          let strikes = List.filteri (fun i _ -> i < !remaining) (inner.act ~round) in
          remaining := !remaining - List.length strikes;
          strikes
        end);
    observe = inner.observe;
    observes = inner.observes }

let combine ~name subs ~budget ~channels =
  ignore budget;
  ignore channels;
  let count = List.length subs in
  if count = 0 then invalid_arg "Adversary.combine: empty list";
  let arr = Array.of_list subs in
  { name;
    act = (fun ~round -> arr.(round mod count).act ~round);
    observe = (fun record -> Array.iter (fun sub -> sub.observe record) arr);
    observes = Array.exists (fun sub -> sub.observes) arr }
