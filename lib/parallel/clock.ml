(* Wall-clock time for the observability layer.  The simulator itself stays
   clock-free (simulated rounds only); only runners measure real time, so
   this is the single place the tree touches [Unix]. *)

let now_s () = Unix.gettimeofday ()

let time f =
  let t0 = now_s () in
  let y = f () in
  (y, now_s () -. t0)

let utc_iso8601 () =
  let tm = Unix.gmtime (now_s ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
