(* Wall-clock time for the observability layer.  The simulator itself stays
   clock-free (simulated rounds only); only runners measure real time, so
   this is the single place the tree touches [Unix]. *)

let now_s () = Unix.gettimeofday ()

let time f =
  let t0 = now_s () in
  let y = f () in
  (y, now_s () -. t0)
