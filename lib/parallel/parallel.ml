(* Deterministic fan-out across domains (OCaml 5 stdlib only).

   The contract that the whole experiment layer leans on: [map_ordered]
   merges results back in submission order, so a pure task list produces
   output byte-identical to the serial run no matter how the scheduler
   interleaves the domains.  Tasks must therefore not share mutable state;
   each replicate derives its own [Prng.Rng] from an explicit seed. *)

module Pool = Pool
module Clock = Clock

let default_jobs () = Domain.recommended_domain_count ()

let map_ordered ~jobs f xs =
  (* More domains than cores never helps in OCaml 5 (every minor GC is a
     stop-the-world sync across domains), so oversubscription is clamped
     here rather than at each call site.  Results are identical either
     way; only wall-clock changes. *)
  let jobs = min jobs (default_jobs ()) in
  if jobs <= 1 then List.map f xs
  else
    match xs with
    | [] -> []
    | [ x ] -> [ f x ]
    | _ ->
      Pool.with_pool ~domains:(min jobs (List.length xs)) (fun pool ->
          Pool.map_ordered pool f xs)
