(* Deterministic fan-out across domains (OCaml 5 stdlib only).

   The contract that the whole experiment layer leans on: [map_ordered]
   merges results back in submission order, so a pure task list produces
   output byte-identical to the serial run no matter how the scheduler
   interleaves the domains.  Tasks must therefore not share mutable state;
   each replicate derives its own [Prng.Rng] from an explicit seed.

   [run ~jobs f] installs one shared pool for the dynamic extent of [f];
   every [map_ordered] call underneath it — at any nesting depth, from any
   pool domain — feeds that same pool, so the domain budget is global
   instead of per-level.  Outside a [run] scope, [map_ordered] falls back
   to a transient pool (or a plain serial map for [jobs <= 1]). *)

module Pool = Pool
module Clock = Clock

let default_jobs () = Domain.recommended_domain_count ()

(* The ambient pool installed by [run].  Read from worker domains (hence
   atomic), written only by the single outermost [run] caller. *)
let ambient : Pool.t option Atomic.t = Atomic.make None

let ambient_pool () = Atomic.get ambient

let run ~jobs f =
  match Atomic.get ambient with
  | Some _ ->
    (* Nested [run]: the budget is already global; reuse the pool. *)
    f ()
  | None ->
    (* More domains than cores never helps in OCaml 5 (every minor GC is a
       stop-the-world sync across domains), so oversubscription is clamped
       here.  Results are identical either way; only wall-clock changes. *)
    let jobs = min (max jobs 1) (default_jobs ()) in
    if jobs <= 1 then f ()
    else
      Pool.with_pool ~domains:jobs (fun pool ->
          Atomic.set ambient (Some pool);
          Fun.protect ~finally:(fun () -> Atomic.set ambient None) f)

let map_ordered ~jobs f xs =
  match Atomic.get ambient with
  | Some pool -> Pool.map_ordered pool f xs
  | None ->
    let jobs = min jobs (default_jobs ()) in
    if jobs <= 1 then List.map f xs
    else
      match xs with
      | [] -> []
      | [ x ] -> [ f x ]
      | _ ->
        Pool.with_pool ~domains:(min jobs (List.length xs)) (fun pool ->
            Pool.map_ordered pool f xs)
