val now_s : unit -> float
(** Wall-clock seconds since the epoch ([Unix.gettimeofday]). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] is [(f (), elapsed-wall-clock-seconds)]. *)
