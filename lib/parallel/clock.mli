val now_s : unit -> float
(** Wall-clock seconds since the epoch ([Unix.gettimeofday]). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] is [(f (), elapsed-wall-clock-seconds)]. *)

val utc_iso8601 : unit -> string
(** The current UTC wall-clock time as ["YYYY-MM-DDThh:mm:ssZ"], for
    timestamping observability artifacts (e.g. benchmark history entries).
    Never feeds back into simulation state. *)
