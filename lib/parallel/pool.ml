(* A shared work-stealing pool.

   One queue, [budget - 1] worker domains, and a helping join: the caller
   of [map_ordered] (worker or not) executes queued tasks itself while its
   own batch is outstanding, so nested [map_ordered] calls from inside a
   pool task compose without spawning domains or deadlocking — a waiter
   never blocks while the queue is non-empty, and a task that finishes on
   another domain wakes every waiter via [work].

   Invariant: [queue], [stopping], and every join-point's [remaining]
   counter are guarded by [mutex]; [work] is signaled on submission and
   broadcast when a join-point drains, so both workers and helping waiters
   share one wake-up channel. *)

type t = {
  mutex : Mutex.t;
  work : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
  budget : int;
}

let locked pool f =
  Mutex.lock pool.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock pool.mutex) f

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.stopping do
    Condition.wait pool.work pool.mutex
  done;
  match Queue.take_opt pool.queue with
  | Some task ->
    Mutex.unlock pool.mutex;
    task ();
    worker_loop pool
  | None ->
    (* stopping && empty *)
    Mutex.unlock pool.mutex

let create ~domains =
  let budget = max domains 1 in
  let pool =
    { mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [||];
      budget }
  in
  (* The caller of map_ordered always helps, so [budget] concurrent domains
     means [budget - 1] dedicated workers. *)
  pool.workers <- Array.init (budget - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.budget

let shutdown pool =
  let join =
    locked pool (fun () ->
        if pool.stopping then false
        else begin
          pool.stopping <- true;
          Condition.broadcast pool.work;
          true
        end)
  in
  if join then Array.iter Domain.join pool.workers

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let map_ordered pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
    let items = Array.of_list xs in
    let n = Array.length items in
    (* Per-call join point: slots and the counter live on this caller's
       stack; [remaining] is guarded by the pool mutex so completion and
       the helping loop share one lock and one condition. *)
    let slots : ('b, exn * Printexc.raw_backtrace) result option array = Array.make n None in
    let remaining = ref n in
    let run_task i =
      let outcome =
        match f items.(i) with
        | y -> Ok y
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock pool.mutex;
      slots.(i) <- Some outcome;
      decr remaining;
      if !remaining = 0 then Condition.broadcast pool.work;
      Mutex.unlock pool.mutex
    in
    Mutex.lock pool.mutex;
    if pool.stopping then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pool.map_ordered: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.add (fun () -> run_task i) pool.queue
    done;
    if Array.length pool.workers > 0 then Condition.broadcast pool.work;
    (* Helping join: run queued tasks (ours or anyone's) until our batch
       settles; block only when the queue is empty, i.e. every outstanding
       task of ours is already running on another domain. *)
    let rec join () =
      if !remaining > 0 then
        match Queue.take_opt pool.queue with
        | Some task ->
          Mutex.unlock pool.mutex;
          task ();
          Mutex.lock pool.mutex;
          join ()
        | None ->
          Condition.wait pool.work pool.mutex;
          join ()
    in
    join ();
    Mutex.unlock pool.mutex;
    (* Merge in submission order; surface the earliest failure. *)
    Array.to_list slots
    |> List.map (function
         | Some (Ok y) -> y
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
