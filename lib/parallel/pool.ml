type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

let locked pool f =
  Mutex.lock pool.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock pool.mutex) f

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.stopping do
    Condition.wait pool.nonempty pool.mutex
  done;
  match Queue.take_opt pool.queue with
  | Some task ->
    Mutex.unlock pool.mutex;
    task ();
    worker_loop pool
  | None ->
    (* stopping && empty *)
    Mutex.unlock pool.mutex

let create ~domains =
  let domains = max domains 1 in
  let pool =
    { mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [||] }
  in
  pool.workers <- Array.init domains (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = Array.length pool.workers

let submit pool task =
  locked pool (fun () ->
      if pool.stopping then invalid_arg "Pool.submit: pool is shut down";
      Queue.add task pool.queue;
      Condition.signal pool.nonempty)

let shutdown pool =
  let join =
    locked pool (fun () ->
        if pool.stopping then false
        else begin
          pool.stopping <- true;
          Condition.broadcast pool.nonempty;
          true
        end)
  in
  if join then Array.iter Domain.join pool.workers

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Completion tracking for one map_ordered call: its own mutex/condition so
   concurrent map_ordered calls on a shared pool cannot wake each other. *)
type 'b join_point = {
  jp_mutex : Mutex.t;
  jp_done : Condition.t;
  mutable remaining : int;
  slots : ('b, exn * Printexc.raw_backtrace) result option array;
}

let map_ordered pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
    let items = Array.of_list xs in
    let n = Array.length items in
    let jp =
      { jp_mutex = Mutex.create ();
        jp_done = Condition.create ();
        remaining = n;
        slots = Array.make n None }
    in
    for i = 0 to n - 1 do
      submit pool (fun () ->
          let outcome =
            match f items.(i) with
            | y -> Ok y
            | exception e -> Error (e, Printexc.get_raw_backtrace ())
          in
          Mutex.lock jp.jp_mutex;
          jp.slots.(i) <- Some outcome;
          jp.remaining <- jp.remaining - 1;
          if jp.remaining = 0 then Condition.signal jp.jp_done;
          Mutex.unlock jp.jp_mutex)
    done;
    Mutex.lock jp.jp_mutex;
    while jp.remaining > 0 do
      Condition.wait jp.jp_done jp.jp_mutex
    done;
    Mutex.unlock jp.jp_mutex;
    (* Merge in submission order; surface the earliest failure. *)
    Array.to_list jp.slots
    |> List.map (function
         | Some (Ok y) -> y
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
