(** A fixed-size pool of domains fed from a shared work queue, with a
    helping join.

    Workers are plain [Domain.t]s coordinated with a [Mutex]/[Condition]
    pair (no dependencies beyond the stdlib).  Tasks are closures; results
    flow back through the submission site, never through shared state, so a
    pool imposes no ordering of its own — see {!map_ordered} for the
    deterministic merge.

    The join is {e helping}: while a {!map_ordered} caller waits for its
    batch, it pops and runs queued tasks itself — including tasks submitted
    by other callers.  A task running on a pool domain may therefore call
    {!map_ordered} on the same pool: its sub-tasks go through the shared
    queue, the submitting domain keeps executing work instead of blocking,
    and the total domain budget stays global rather than per nesting
    level.  Nested calls cannot deadlock, because a waiter only sleeps when
    the queue is empty, i.e. when every task it still waits on is already
    running on some other domain. *)

type t

val create : domains:int -> t
(** [create ~domains] builds a pool with a total budget of
    [max domains 1] concurrent domains.  Because every {!map_ordered}
    caller helps, the pool spawns [budget - 1] dedicated workers; with
    [domains = 1] no domain is spawned and tasks run on the calling
    domain (still through the queue, so semantics are identical). *)

val size : t -> int
(** Total domain budget: dedicated workers plus the helping caller. *)

val shutdown : t -> unit
(** Drain the queue, join every worker, and make further submission an
    error.  Idempotent. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] on a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

val map_ordered : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_ordered pool f xs] applies [f] to every element of [xs], fanning
    the applications out across the pool's domains, and returns the images
    in the order of [xs] — byte-identical to [List.map f xs] whenever [f]
    is pure.  If any application raises, the exception raised for the
    earliest-submitted failing element is re-raised (with its backtrace)
    after all tasks settle.  [map_ordered pool f []] is [[]] and touches no
    worker.  Safe to call from inside a task running on [pool] (see the
    module header); tasks must not share mutable state across elements. *)
