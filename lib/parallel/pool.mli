(** A fixed-size pool of worker domains fed from a shared work queue.

    Workers are plain [Domain.t]s coordinated with a [Mutex]/[Condition]
    pair (no dependencies beyond the stdlib).  Tasks are closures; results
    flow back through the submission site, never through shared state, so a
    pool imposes no ordering of its own — see {!map_ordered} for the
    deterministic merge. *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [max domains 1] worker domains that block on
    the queue until {!shutdown}. *)

val size : t -> int
(** Number of worker domains. *)

val shutdown : t -> unit
(** Drain the queue, join every worker, and make further submission an
    error.  Idempotent. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] on a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

val map_ordered : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_ordered pool f xs] applies [f] to every element of [xs], fanning
    the applications out across the pool's domains, and returns the images
    in the order of [xs] — byte-identical to [List.map f xs] whenever [f]
    is pure.  If any application raises, the exception raised for the
    earliest-submitted failing element is re-raised (with its backtrace)
    after all tasks settle.  [map_ordered pool f []] is [[]] and touches no
    worker. *)
