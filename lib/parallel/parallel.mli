(** Deterministic fan-out across OCaml 5 domains.

    [map_ordered ~jobs f xs] computes [List.map f xs] with up to [jobs]
    domains and merges results back in submission order, so for pure [f]
    the output is byte-identical to the serial run.

    Parallelism composes vertically through {!run}: [run ~jobs f] installs
    one shared {!Pool.t} for the dynamic extent of [f], and every
    [map_ordered] underneath — experiments fanning out over replicates,
    replicates fanning out over sub-grids, at any depth, from any pool
    domain — submits to that same pool.  The waiting submitter helps
    execute queued tasks instead of blocking a domain, so the [jobs]
    budget is global rather than multiplied per nesting level. *)

module Pool = Pool
module Clock = Clock

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val ambient_pool : unit -> Pool.t option
(** The shared pool installed by the innermost enclosing {!run} scope, if
    any.  Lets lower layers (e.g. the radio engine's intra-round sharding)
    reuse the session's global domain budget instead of spawning their
    own; [None] outside any [run] scope or when [jobs <= 1]. *)

val run : jobs:int -> (unit -> 'a) -> 'a
(** [run ~jobs f] runs [f] with a shared pool of [jobs] domains (clamped
    to {!default_jobs}) installed for its dynamic extent; [jobs <= 1]
    installs nothing and [f] runs serially.  Nested [run] calls reuse the
    already-installed pool — the outermost budget wins.  The pool is shut
    down when [f] returns or raises. *)

val map_ordered : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Inside a {!run} scope, submits to the shared pool ([jobs] is ignored —
    the global budget governs) and is safe to call from inside another
    [map_ordered] task.  Outside any [run] scope, behaves as before: [jobs]
    is clamped to {!default_jobs}, [jobs <= 1] maps serially on the calling
    domain, otherwise a transient pool is used.  Either way results are in
    submission order and byte-identical to the serial map for pure [f].
    Exceptions from tasks are re-raised at the call site; when several
    tasks fail, the earliest-submitted failure wins. *)
