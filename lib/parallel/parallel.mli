(** Deterministic fan-out across OCaml 5 domains.

    [map_ordered ~jobs f xs] computes [List.map f xs] with up to [jobs]
    worker domains and merges results back in submission order, so for pure
    [f] the output is byte-identical to the serial run.  [jobs <= 1] runs
    serially on the calling domain (no domains spawned).  Do not call
    [map_ordered] from inside one of its own tasks with a shared {!Pool.t};
    the transient-pool form here is always safe to nest. *)

module Pool = Pool
module Clock = Clock

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map_ordered : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** See the module header.  [jobs] is clamped to {!default_jobs} — extra
    domains beyond the core count only add GC synchronization stalls — and
    the clamp never changes results, only wall-clock.  Exceptions from
    tasks are re-raised at the call site; when several tasks fail, the
    earliest-submitted failure wins. *)
