(** Modular arithmetic on 61-bit moduli, and primality testing.

    All values are non-negative [Int64]s strictly below the modulus, which
    must itself be below 2^61 so that sums of two residues never overflow a
    signed 64-bit integer.  This is the number-theoretic substrate for the
    Diffie-Hellman key exchange of Section 6. *)

val add_mod : int64 -> int64 -> int64 -> int64
(** [add_mod a b p] = (a + b) mod p. *)

val mul_mod : int64 -> int64 -> int64 -> int64
(** [mul_mod a b p] = (a * b) mod p, computed by binary shift-and-add so no
    intermediate exceeds 2^62. *)

val pow_mod : int64 -> int64 -> int64 -> int64
(** [pow_mod b e p] = b^e mod p, square-and-multiply.  Requires [e >= 0]. *)

val gcd : int64 -> int64 -> int64

val inv_mod : int64 -> int64 -> int64
(** Modular inverse by extended Euclid.  Raises [Invalid_argument] if the
    inverse does not exist. *)

val is_probable_prime : int64 -> bool
(** Miller-Rabin with the first twelve primes as witnesses, which is known to
    be a deterministic test for all integers below 3.3 * 10^24; the answer is
    therefore exact for every representable input. *)

val find_safe_prime : bits:int -> seed:int64 -> int64
(** [find_safe_prime ~bits ~seed] deterministically searches from a
    seed-derived starting point for a safe prime p = 2q + 1 with exactly
    [bits] bits (q prime as well).  Requires [8 <= bits <= 61]. *)
