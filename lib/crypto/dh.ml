type params = { p : int64; q : int64; g : int64 }

type keypair = { secret : int64; public : int64 }

let make_params ~bits ~seed =
  let p = Modarith.find_safe_prime ~bits ~seed in
  let q = Int64.shift_right_logical (Int64.sub p 1L) 1 in
  (* Squaring any h with h^2 mod p <> 1 yields a generator of the order-q
     subgroup (quadratic residues form the unique subgroup of order q). *)
  let rec pick_generator h =
    let g = Modarith.mul_mod (Int64.rem h p) (Int64.rem h p) p in
    if g <> 1L && g <> 0L then g else pick_generator (Int64.add h 1L)
  in
  { p; q; g = pick_generator 2L }

let default_params = lazy (make_params ~bits:61 ~seed:0x5EC0DE2008L)

let get_params = function Some ps -> ps | None -> Lazy.force default_params

let generate ?params rng =
  let ps = get_params params in
  (* Uniform secret in [1, q). q < 2^60, so 63 random bits + rejection. *)
  let rec draw () =
    let v = Int64.shift_right_logical (Prng.Rng.bits64 rng) 4 in
    let v = Int64.rem v ps.q in
    if v >= 1L then v else draw ()
  in
  let secret = draw () in
  { secret; public = Modarith.pow_mod ps.g secret ps.p }

let shared_secret ?params ~secret peer_public =
  let ps = get_params params in
  Modarith.pow_mod peer_public secret ps.p

let derive_key ?(info = "") shared =
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set b i
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical shared (8 * (7 - i))) 0xFFL)))
  done;
  Sha256.digest ("dh-key-v1|" ^ info ^ "|" ^ Bytes.unsafe_to_string b)

let valid_public ?params y =
  let ps = get_params params in
  y > 1L && y < ps.p && Modarith.pow_mod y ps.q ps.p = 1L

let encode_public y =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical y (8 * (7 - i))) 0xFFL)))

let decode_public s =
  if String.length s <> 8 then None
  else begin
    let acc = ref 0L in
    String.iter (fun c -> acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code c))) s;
    if !acc < 0L then None else Some !acc
  end
