(** Keyed pseudo-random function built on HMAC-SHA256.

    The paper uses shared secret keys as seeds for pseudo-random
    channel-hopping patterns (Sections 6 and 7).  This module provides the
    PRF those patterns are drawn from: deterministic for both parties holding
    the key, unpredictable to the adversary.

    The protocols query the PRF with the {e same} key every round, so the
    hot entry point is {!Keyed}: prepare the key once (precomputing the HMAC
    midstates), then evaluate per round.  The one-shot functions below are
    byte-identical conveniences that prepare a throwaway handle per call. *)

module Keyed : sig
  type t
  (** A prepared PRF key.  Immutable; build once per key, reuse every
      round. *)

  val create : string -> t

  val bytes : t -> label:string -> counter:int -> string
  (** 32 pseudo-random bytes for ([label], [counter]). *)

  val int64 : t -> label:string -> counter:int -> int64

  val below : t -> label:string -> counter:int -> int -> int

  val channel_hop : t -> round:int -> channels:int -> int

  val keystream : t -> nonce:string -> int -> string

  type scratch
  (** Reusable working state for {!keystream_into}.  One per domain;
      not reentrant. *)

  val scratch : unit -> scratch

  val keystream_into : t -> scratch -> nonce:string -> Bytes.t -> pos:int -> len:int -> unit
  (** [keystream_into t s ~nonce out ~pos ~len] writes the same bytes
      [keystream t ~nonce len] would return at [pos] of [out], with zero
      per-call allocations — the batch cipher path. *)
end

val bytes : key:string -> label:string -> counter:int -> string
(** 32 pseudo-random bytes for ([label], [counter]). *)

val int64 : key:string -> label:string -> counter:int -> int64
(** First 8 bytes of {!bytes} as a big-endian non-negative Int64. *)

val below : key:string -> label:string -> counter:int -> int -> int
(** [below ~key ~label ~counter bound] is a pseudo-random value in
    [\[0, bound)].  Requires [bound > 0]. *)

val channel_hop : key:string -> round:int -> channels:int -> int
(** The channel for [round] in the hopping pattern keyed by [key]:
    [below] with a fixed domain-separation label. *)

val keystream : key:string -> nonce:string -> int -> string
(** [keystream ~key ~nonce len]: exactly [len] bytes of CTR-mode PRF output
    (generated directly into the result, no over-allocation), used by
    {!Cipher} as a stream cipher. *)
