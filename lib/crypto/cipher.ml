type sealed = { nonce : string; body : string; tag : string }

let enc_key key = Sha256.digest ("cipher-enc|" ^ key)
let mac_key key = Sha256.digest ("cipher-mac|" ^ key)

let encode_nonce n =
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set b i (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical n (8 * (7 - i))) 0xFFL)))
  done;
  Bytes.unsafe_to_string b

let xor_with a b =
  assert (String.length a = String.length b);
  let n = String.length a in
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set out i
      (Char.unsafe_chr (Char.code (String.unsafe_get a i) lxor Char.code (String.unsafe_get b i)))
  done;
  Bytes.unsafe_to_string out

(* A prepared session key: both domain-separated subkeys derived once, the
   stream-cipher PRF and the MAC midstates precomputed.  Long-lived callers
   (the broadcast service, pairwise streams, the group-key dissemination)
   seal and open under one key for thousands of rounds. *)
type key = { enc : Prf.Keyed.t; mac : Hmac.key }

let key raw = { enc = Prf.Keyed.create (enc_key raw); mac = Hmac.key (mac_key raw) }

let tag_of k ~nonce body =
  Hmac.mac_feed k.mac (fun ctx ->
      Sha256.update ctx nonce;
      Sha256.update ctx body)

let seal_keyed k ~nonce plaintext =
  let nonce = encode_nonce nonce in
  let stream = Prf.Keyed.keystream k.enc ~nonce (String.length plaintext) in
  let body = xor_with plaintext stream in
  { nonce; body; tag = tag_of k ~nonce body }

let open_keyed k { nonce; body; tag } =
  if not (Hmac.equal_ct ~expect:(tag_of k ~nonce body) ~tag) then None
  else
    let stream = Prf.Keyed.keystream k.enc ~nonce (String.length body) in
    Some (xor_with body stream)

(* Reusable working state for the batch entry points: PRF and MAC scratch
   plus a growable keystream buffer and a tag buffer, so sealing or opening
   a whole epoch's worth of frames under one key allocates only the output
   strings themselves. *)
type scratch = {
  prf : Prf.Keyed.scratch;
  hmac_s : Hmac.scratch;
  mutable ks : Bytes.t; (* keystream, grown geometrically *)
  tag_buf : Bytes.t; (* 32 bytes *)
}

let scratch () =
  { prf = Prf.Keyed.scratch (); hmac_s = Hmac.scratch ();
    ks = Bytes.create 256; tag_buf = Bytes.create Sha256.digest_size }

let ensure_ks s len =
  if Bytes.length s.ks < len then s.ks <- Bytes.create (max len (2 * Bytes.length s.ks))

let[@inline] xor_into src ks out len =
  for i = 0 to len - 1 do
    Bytes.unsafe_set out i
      (Char.unsafe_chr
         (Char.code (String.unsafe_get src i) lxor Char.code (Bytes.unsafe_get ks i)))
  done

let tag_into k s ~nonce body =
  Hmac.mac_feed_into k.mac s.hmac_s
    (fun ctx ->
      Sha256.update ctx nonce;
      Sha256.update ctx body)
    s.tag_buf ~pos:0

let seal_scratch k s ~nonce plaintext =
  let nonce = encode_nonce nonce in
  let len = String.length plaintext in
  ensure_ks s len;
  Prf.Keyed.keystream_into k.enc s.prf ~nonce s.ks ~pos:0 ~len;
  let body = Bytes.create len in
  xor_into plaintext s.ks body len;
  let body = Bytes.unsafe_to_string body in
  tag_into k s ~nonce body;
  { nonce; body; tag = Bytes.to_string s.tag_buf }

let open_scratch k s { nonce; body; tag } =
  tag_into k s ~nonce body;
  (* [tag_buf] is only read inside this comparison before the next frame
     overwrites it, so the unsafe view never escapes. *)
  if not (Hmac.equal_ct ~expect:(Bytes.unsafe_to_string s.tag_buf) ~tag) then None
  else begin
    let len = String.length body in
    ensure_ks s len;
    Prf.Keyed.keystream_into k.enc s.prf ~nonce s.ks ~pos:0 ~len;
    let out = Bytes.create len in
    xor_into body s.ks out len;
    Some (Bytes.unsafe_to_string out)
  end

let seal_batch k s ~nonces msgs =
  let n = Array.length msgs in
  if Array.length nonces <> n then invalid_arg "Cipher.seal_batch: length mismatch";
  Array.init n (fun i -> seal_scratch k s ~nonce:nonces.(i) msgs.(i))

let open_batch k s frames = Array.map (open_scratch k s) frames

let seal ~key:raw ~nonce plaintext = seal_keyed (key raw) ~nonce plaintext

let open_ ~key:raw sealed = open_keyed (key raw) sealed

let wire_size { nonce; body; tag } =
  String.length nonce + String.length body + String.length tag

let encoded_size { nonce; body; tag } =
  12 + String.length nonce + String.length body + String.length tag

(* Single-buffer encoding: the multiplexed service encodes one frame per
   busy channel per emulated round, so the concat-chain formulation's
   intermediate strings showed up in its prepare step. *)
let encode_into { nonce; body; tag } out ~pos =
  let field p s =
    let len = String.length s in
    Bytes.set_int32_be out p (Int32.of_int len);
    Bytes.blit_string s 0 out (p + 4) len;
    p + 4 + len
  in
  let p = field pos nonce in
  let p = field p body in
  ignore (field p tag : int)

let encode sealed =
  let out = Bytes.create (encoded_size sealed) in
  encode_into sealed out ~pos:0;
  Bytes.unsafe_to_string out

let decode_sub s ~pos =
  let read_len pos =
    if pos + 4 > String.length s then None
    else
      let v = ref 0 in
      for i = 0 to 3 do
        v := (!v lsl 8) lor Char.code s.[pos + i]
      done;
      Some (!v, pos + 4)
  in
  let read_field pos =
    match read_len pos with
    | None -> None
    | Some (len, pos) ->
      if len < 0 || pos + len > String.length s then None
      else Some (String.sub s pos len, pos + len)
  in
  match read_field pos with
  | None -> None
  | Some (nonce, pos) ->
    (match read_field pos with
     | None -> None
     | Some (body, pos) ->
       (match read_field pos with
        | Some (tag, pos) when pos = String.length s -> Some { nonce; body; tag }
        | _ -> None))

let decode s = decode_sub s ~pos:0
