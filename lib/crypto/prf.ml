let encode_counter n =
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set b i (Char.chr ((n lsr (8 * (7 - i))) land 0xFF))
  done;
  Bytes.unsafe_to_string b

let bytes ~key ~label ~counter = Hmac.mac ~key (label ^ "\x00" ^ encode_counter counter)

let int64 ~key ~label ~counter =
  let raw = bytes ~key ~label ~counter in
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code raw.[i]))
  done;
  Int64.shift_right_logical !acc 1

let below ~key ~label ~counter bound =
  assert (bound > 0);
  (* Modulo bias is < bound/2^63: irrelevant for channel counts. *)
  Int64.to_int (Int64.rem (int64 ~key ~label ~counter) (Int64.of_int bound))

let channel_hop ~key ~round ~channels = below ~key ~label:"channel-hop" ~counter:round channels

let keystream ~key ~nonce len =
  let out = Buffer.create (len + 32) in
  let block = ref 0 in
  while Buffer.length out < len do
    Buffer.add_string out (bytes ~key ~label:("ks|" ^ nonce) ~counter:!block);
    incr block
  done;
  Buffer.sub out 0 len
