module Keyed = struct
  type t = { hmac : Hmac.key }

  let create key = { hmac = Hmac.key key }

  let bytes t ~label ~counter =
    (* HMAC(key, label || 0x00 || counter_be8), fed incrementally: no
       pad/label/counter concatenation, and the ipad/opad compressions are
       already paid for by the handle. *)
    Hmac.mac_feed t.hmac (fun ctx ->
        Sha256.update ctx label;
        let tail = Bytes.create 9 in
        Bytes.set tail 0 '\000';
        Bytes.set_int64_be tail 1 (Int64.of_int counter);
        Sha256.update_bytes ctx tail ~pos:0 ~len:9)

  let int64 t ~label ~counter =
    let raw = bytes t ~label ~counter in
    Int64.shift_right_logical (String.get_int64_be raw 0) 1

  let below t ~label ~counter bound =
    assert (bound > 0);
    (* Modulo bias is < bound/2^63: irrelevant for channel counts. *)
    Int64.to_int (Int64.rem (int64 t ~label ~counter) (Int64.of_int bound))

  let channel_hop t ~round ~channels = below t ~label:"channel-hop" ~counter:round channels

  let keystream t ~nonce len =
    let out = Bytes.create len in
    let label = "ks|" ^ nonce in
    let off = ref 0 and block = ref 0 in
    while !off < len do
      let chunk = bytes t ~label ~counter:!block in
      let take = min Sha256.digest_size (len - !off) in
      Bytes.blit_string chunk 0 out !off take;
      off := !off + take;
      incr block
    done;
    Bytes.unsafe_to_string out

  (* Reusable working state for {!keystream_into}: the HMAC scratch, the
     9-byte 0x00+counter tail, and a spill buffer for the final partial
     block.  Lets the batch cipher generate keystream with zero per-frame
     allocations. *)
  type scratch = { hs : Hmac.scratch; tail : Bytes.t; last : Bytes.t }

  let scratch () =
    { hs = Hmac.scratch (); tail = Bytes.make 9 '\000';
      last = Bytes.create Sha256.digest_size }

  let keystream_into t s ~nonce out ~pos ~len =
    (* Byte-identical to {!keystream}: the label ["ks|" ^ nonce] is fed as
       two updates instead of being concatenated, absorbing the same byte
       sequence. *)
    Bytes.set s.tail 0 '\000';
    let off = ref 0 and block = ref 0 in
    while !off < len do
      Bytes.set_int64_be s.tail 1 (Int64.of_int !block);
      let feed ctx =
        Sha256.update ctx "ks|";
        Sha256.update ctx nonce;
        Sha256.update_bytes ctx s.tail ~pos:0 ~len:9
      in
      let take = min Sha256.digest_size (len - !off) in
      if take = Sha256.digest_size then
        Hmac.mac_feed_into t.hmac s.hs feed out ~pos:(pos + !off)
      else begin
        Hmac.mac_feed_into t.hmac s.hs feed s.last ~pos:0;
        Bytes.blit s.last 0 out (pos + !off) take
      end;
      off := !off + take;
      incr block
    done
end

let bytes ~key ~label ~counter = Keyed.bytes (Keyed.create key) ~label ~counter

let int64 ~key ~label ~counter = Keyed.int64 (Keyed.create key) ~label ~counter

let below ~key ~label ~counter bound = Keyed.below (Keyed.create key) ~label ~counter bound

let channel_hop ~key ~round ~channels = Keyed.channel_hop (Keyed.create key) ~round ~channels

let keystream ~key ~nonce len = Keyed.keystream (Keyed.create key) ~nonce len
