(** Authenticated symmetric encryption (encrypt-then-MAC).

    Provides the "encrypt and sign" operations the paper assumes once shared
    secrets exist: secrecy against an eavesdropping adversary and
    authentication against spoofed frames.  Construction: a CTR-style stream
    cipher keyed by HMAC-SHA256 (see {!Prf}), with an HMAC-SHA256 tag over
    nonce and ciphertext.  Encryption and MAC keys are domain-separated
    derivations of the session key. *)

type sealed = { nonce : string; body : string; tag : string }
(** A sealed frame: 8-byte nonce, ciphertext, 32-byte tag. *)

type key
(** A prepared session key: both domain-separated subkeys derived and their
    PRF/MAC midstates precomputed.  Build once per session with {!key};
    {!seal_keyed}/{!open_keyed} are byte-identical to {!seal}/{!open_}
    under the same raw key. *)

val key : string -> key

val seal_keyed : key -> nonce:int64 -> string -> sealed

val open_keyed : key -> sealed -> string option

type scratch
(** Reusable working state (PRF/MAC scratch, keystream and tag buffers) for
    the batch entry points.  One [scratch] serves any number of sequential
    calls under any keys; per-domain, not reentrant. *)

val scratch : unit -> scratch

val seal_scratch : key -> scratch -> nonce:int64 -> string -> sealed
(** {!seal_keyed} with all working state drawn from the scratch: only the
    output frame itself is allocated.  Byte-identical to {!seal_keyed}. *)

val open_scratch : key -> scratch -> sealed -> string option
(** {!open_keyed} with all working state drawn from the scratch.
    Byte-identical to {!open_keyed}. *)

val seal_batch : key -> scratch -> nonces:int64 array -> string array -> sealed array
(** Seal every message under one key, amortizing key schedule, HMAC
    midstate replay, and keystream buffers across the batch.  Element [i]
    equals [seal_keyed k ~nonce:nonces.(i) msgs.(i)].  Raises
    [Invalid_argument] on length mismatch. *)

val open_batch : key -> scratch -> sealed array -> string option array
(** Open every frame under one key; element [i] equals
    [open_keyed k frames.(i)]. *)

val seal : key:string -> nonce:int64 -> string -> sealed
(** [seal ~key ~nonce plaintext].  Nonces must not repeat under one key;
    callers use the round number, which the synchronous model makes unique.
    One-shot form of {!seal_keyed}: prepares a throwaway {!type-key}. *)

val open_ : key:string -> sealed -> string option
(** [open_ ~key sealed] is [Some plaintext] iff the tag verifies. *)

val wire_size : sealed -> int
(** Total bytes on the air, used by the message-size experiment (E11). *)

val encode : sealed -> string
(** Flat wire encoding (length-prefixed fields). *)

val encoded_size : sealed -> int
(** [String.length (encode sealed)], without encoding. *)

val encode_into : sealed -> Bytes.t -> pos:int -> unit
(** Write {!encode}'s bytes at [pos] in a caller-owned buffer, so framing
    layers can prepend their own headers without intermediate strings.
    The buffer needs [encoded_size sealed] bytes from [pos]. *)

val decode : string -> sealed option
(** Inverse of {!encode}; [None] on malformed input. *)

val decode_sub : string -> pos:int -> sealed option
(** {!decode} of the suffix starting at [pos], without copying it out
    first.  The encoding must end exactly at the end of [s]. *)
