let add_mod a b p =
  let s = Int64.add a b in
  if s >= p then Int64.sub s p else s

let mul_mod a b p =
  (* Binary multiplication: every intermediate stays below 2p < 2^62. *)
  assert (a >= 0L && b >= 0L && a < p && b < p);
  let acc = ref 0L in
  let base = ref a in
  let rest = ref b in
  while !rest > 0L do
    if Int64.logand !rest 1L = 1L then acc := add_mod !acc !base p;
    base := add_mod !base !base p;
    rest := Int64.shift_right_logical !rest 1
  done;
  !acc

let pow_mod b e p =
  assert (e >= 0L);
  let acc = ref 1L in
  let base = ref (Int64.rem b p) in
  let rest = ref e in
  while !rest > 0L do
    if Int64.logand !rest 1L = 1L then acc := mul_mod !acc !base p;
    base := mul_mod !base !base p;
    rest := Int64.shift_right_logical !rest 1
  done;
  !acc

let rec gcd a b = if b = 0L then a else gcd b (Int64.rem a b)

let inv_mod a p =
  (* Extended Euclid on (a, p); coefficients tracked only for a. *)
  let rec go old_r r old_s s =
    if r = 0L then (old_r, old_s) else go r (Int64.rem old_r r) s (Int64.sub old_s (Int64.mul (Int64.div old_r r) s))
  in
  let g, x = go (Int64.rem a p) p 1L 0L in
  if g <> 1L then invalid_arg "Modarith.inv_mod: not invertible"
  else Int64.rem (Int64.add (Int64.rem x p) p) p

let witnesses = [ 2L; 3L; 5L; 7L; 11L; 13L; 17L; 19L; 23L; 29L; 31L; 37L ]

let is_probable_prime n =
  if n < 2L then false
  else if List.mem n witnesses then true
  else if Int64.logand n 1L = 0L then false
  else begin
    (* n - 1 = d * 2^s with d odd. *)
    let s = ref 0 and d = ref (Int64.sub n 1L) in
    while Int64.logand !d 1L = 0L do
      d := Int64.shift_right_logical !d 1;
      incr s
    done;
    let strong_pseudoprime a =
      let x = pow_mod a !d n in
      if x = 1L || x = Int64.sub n 1L then true
      else begin
        let x = ref x and ok = ref false in
        for _ = 1 to !s - 1 do
          if not !ok then begin
            x := mul_mod !x !x n;
            if !x = Int64.sub n 1L then ok := true
          end
        done;
        !ok
      end
    in
    List.for_all (fun a -> Int64.rem a n = 0L || strong_pseudoprime (Int64.rem a n)) witnesses
  end

let find_safe_prime ~bits ~seed =
  if bits < 8 || bits > 61 then invalid_arg "Modarith.find_safe_prime: bits out of range";
  let low = Int64.shift_left 1L (bits - 1) in
  let high = Int64.shift_left 1L bits in
  let span = Int64.sub high low in
  let start =
    let raw = Prng.Splitmix64.mix seed in
    Int64.add low (Int64.rem (Int64.shift_right_logical raw 2) span)
  in
  (* Force start odd and scan upward, wrapping once at the top of the range. *)
  let start = Int64.logor start 1L in
  let rec scan candidate wrapped =
    if candidate >= high then
      if wrapped then failwith "Modarith.find_safe_prime: exhausted range"
      else scan (Int64.logor low 1L) true
    else
      let q = Int64.shift_right_logical (Int64.sub candidate 1L) 1 in
      if is_probable_prime candidate && is_probable_prime q then candidate
      else scan (Int64.add candidate 2L) wrapped
  in
  scan start false
