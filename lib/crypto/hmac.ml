let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  if String.length key = block_size then key
  else key ^ String.make (block_size - String.length key) '\000'

let xor_pad key byte =
  String.init block_size (fun i -> Char.chr (Char.code key.[i] lxor byte))

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.digest (xor_pad key 0x36 ^ msg) in
  Sha256.digest (xor_pad key 0x5c ^ inner)

let mac_hex ~key msg = Sha256.hex_of (mac ~key msg)

let verify ~key ~tag msg =
  let expect = mac ~key msg in
  if String.length tag <> String.length expect then false
  else begin
    let diff = ref 0 in
    String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code expect.[i])) tag;
    !diff = 0
  end
