let block_size = 64

(* The padded key block XORed with [byte], for a key already at most one
   block long: shorter keys are implicitly zero-padded (0 lxor byte =
   byte), with no intermediate normalized-key string. *)
let xor_pad key byte =
  let kl = String.length key in
  let b = Bytes.make block_size (Char.chr byte) in
  for i = 0 to kl - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (Char.code (String.unsafe_get key i) lxor byte))
  done;
  Bytes.unsafe_to_string b

(* A prepared key: the SHA-256 midstates after absorbing the ipad and opad
   blocks.  Each MAC then replays a copy of each midstate, saving the two
   pad-block compressions (and the pad/message concatenations) that the
   naive construction pays per call. *)
type key = { inner : Sha256.ctx; outer : Sha256.ctx }

let key raw =
  let k = if String.length raw > block_size then Sha256.digest raw else raw in
  let inner = Sha256.init () in
  Sha256.update inner (xor_pad k 0x36);
  let outer = Sha256.init () in
  Sha256.update outer (xor_pad k 0x5c);
  { inner; outer }

let mac_feed { inner; outer } feed =
  let ictx = Sha256.copy inner in
  feed ictx;
  let inner_digest = Sha256.finalize ictx in
  let octx = Sha256.copy outer in
  Sha256.update octx inner_digest;
  Sha256.finalize octx

let mac_keyed k msg = mac_feed k (fun ctx -> Sha256.update ctx msg)

(* Reusable working state for batch MACs: one inner and one outer context
   plus a buffer for the inner digest, overwritten per frame via
   [Sha256.copy_into] so a whole epoch's worth of MACs performs zero
   per-frame context or digest allocations. *)
type scratch = {
  s_inner : Sha256.ctx;
  s_outer : Sha256.ctx;
  s_digest : Bytes.t; (* 32-byte inner digest *)
}

let scratch () =
  { s_inner = Sha256.init (); s_outer = Sha256.init ();
    s_digest = Bytes.create Sha256.digest_size }

let mac_feed_into { inner; outer } s feed out ~pos =
  Sha256.copy_into inner ~into:s.s_inner;
  feed s.s_inner;
  Sha256.finalize_into s.s_inner s.s_digest ~pos:0;
  Sha256.copy_into outer ~into:s.s_outer;
  Sha256.update_bytes s.s_outer s.s_digest ~pos:0 ~len:Sha256.digest_size;
  Sha256.finalize_into s.s_outer out ~pos

let mac_batch k msgs =
  let s = scratch () in
  let out = Bytes.create Sha256.digest_size in
  Array.map
    (fun msg ->
      mac_feed_into k s (fun ctx -> Sha256.update ctx msg) out ~pos:0;
      Bytes.to_string out)
    msgs

(* One-shot: feed the pads straight into fresh contexts instead of building
   a handle, skipping the midstate snapshots a throwaway key would pay. *)
let mac ~key:raw msg =
  let k = if String.length raw > block_size then Sha256.digest raw else raw in
  let ictx = Sha256.init () in
  Sha256.update ictx (xor_pad k 0x36);
  Sha256.update ictx msg;
  let inner_digest = Sha256.finalize ictx in
  let octx = Sha256.init () in
  Sha256.update octx (xor_pad k 0x5c);
  Sha256.update octx inner_digest;
  Sha256.finalize octx

let mac_hex ~key msg = Sha256.hex_of (mac ~key msg)

(* Constant-time acceptance: the length check is folded into the same
   accumulator as the byte comparison, and the loop always walks the full
   expected tag, so timing does not distinguish a wrong-length tag from a
   wrong-byte tag. *)
let equal_ct ~expect ~tag =
  let le = String.length expect and lt = String.length tag in
  let diff = ref (le lxor lt) in
  for i = 0 to le - 1 do
    let t = if lt = 0 then 0xFF else Char.code (String.unsafe_get tag (i mod lt)) in
    diff := !diff lor (Char.code (String.unsafe_get expect i) lxor t)
  done;
  !diff = 0

let verify_keyed k ~tag msg = equal_ct ~expect:(mac_keyed k msg) ~tag

let verify_batch k ~tags msgs =
  let n = Array.length msgs in
  if Array.length tags <> n then invalid_arg "Hmac.verify_batch: length mismatch";
  let s = scratch () in
  let out = Bytes.create Sha256.digest_size in
  Array.init n (fun i ->
      mac_feed_into k s (fun ctx -> Sha256.update ctx msgs.(i)) out ~pos:0;
      (* [out] is only read inside this [equal_ct] call before the next
         frame overwrites it, so the unsafe view never escapes. *)
      equal_ct ~expect:(Bytes.unsafe_to_string out) ~tag:tags.(i))

let verify ~key:raw ~tag msg = verify_keyed (key raw) ~tag msg
