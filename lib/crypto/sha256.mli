(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used as the collision-resistant hash the paper assumes for reconstruction
    hashes (H1), vector signatures (H2), key hashes, and as the compression
    core of {!Hmac} and {!Prf}.  Verified against the standard NIST test
    vectors in the test suite. *)

type ctx
(** Streaming hash context. *)

val init : unit -> ctx

val copy : ctx -> ctx
(** An independent snapshot of the streaming state.  Feeding or finalizing
    either context leaves the other untouched — this is what lets {!Hmac}
    precompute the ipad/opad midstates once per key and replay them for
    every MAC. *)

val copy_into : ctx -> into:ctx -> unit
(** [copy_into src ~into] overwrites [into] with a snapshot of [src]
    without allocating — the batch-MAC path replays one midstate into the
    same scratch context for every frame of an epoch. *)

val update : ctx -> string -> unit
(** Absorb bytes.  May be called any number of times. *)

val update_bytes : ctx -> Bytes.t -> pos:int -> len:int -> unit

val feed_string : ctx -> string -> off:int -> len:int -> unit
(** Absorb [len] bytes of [s] starting at [off], without copying the slice
    out first. *)

val finalize : ctx -> string
(** The 32-byte raw digest.  The context must not be reused afterwards
    (except via {!copy_into}, which resets it to the copied state). *)

val finalize_into : ctx -> Bytes.t -> pos:int -> unit
(** Like {!finalize}, writing the 32 digest bytes at [pos] of a
    caller-owned buffer instead of allocating a string. *)

val digest : string -> string
(** One-shot: [digest s] is the 32-byte raw digest of [s]. *)

val digest_hex : string -> string
(** One-shot digest rendered as 64 lowercase hex characters. *)

val hex_of : string -> string
(** Render raw bytes as lowercase hex. *)

val digest_size : int
(** 32. *)
