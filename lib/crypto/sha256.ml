(* SHA-256 per FIPS 180-4.  All word arithmetic is on Int32 (wrapping),
   message length is tracked in bytes as Int64. *)

let digest_size = 32
let block_size = 64

let k =
  [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl; 0x59f111f1l;
     0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l; 0x243185bel; 0x550c7dc3l;
     0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l; 0xc19bf174l; 0xe49b69c1l; 0xefbe4786l;
     0x0fc19dc6l; 0x240ca1ccl; 0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal;
     0x983e5152l; 0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
     0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl; 0x53380d13l;
     0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l; 0xa2bfe8a1l; 0xa81a664bl;
     0xc24b8b70l; 0xc76c51a3l; 0xd192e819l; 0xd6990624l; 0xf40e3585l; 0x106aa070l;
     0x19a4c116l; 0x1e376c08l; 0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al;
     0x5b9cca4fl; 0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
     0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

let initial_h () =
  [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al;
     0x510e527fl; 0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |]

type ctx = {
  h : int32 array;
  buf : Bytes.t; (* one block *)
  mutable buf_len : int;
  mutable total_bytes : int64;
  w : int32 array; (* message schedule scratch *)
}

let init () =
  { h = initial_h (); buf = Bytes.create block_size; buf_len = 0; total_bytes = 0L;
    w = Array.make 64 0l }

let rotr x n = Int32.(logor (shift_right_logical x n) (shift_left x (32 - n)))
let shr x n = Int32.shift_right_logical x n

let big_sigma0 x = Int32.logxor (rotr x 2) (Int32.logxor (rotr x 13) (rotr x 22))
let big_sigma1 x = Int32.logxor (rotr x 6) (Int32.logxor (rotr x 11) (rotr x 25))
let small_sigma0 x = Int32.logxor (rotr x 7) (Int32.logxor (rotr x 18) (shr x 3))
let small_sigma1 x = Int32.logxor (rotr x 17) (Int32.logxor (rotr x 19) (shr x 10))

let ch e f g = Int32.logxor (Int32.logand e f) (Int32.logand (Int32.lognot e) g)

let maj a b c =
  Int32.logxor (Int32.logand a b) (Int32.logxor (Int32.logand a c) (Int32.logand b c))

let compress ctx block pos =
  let w = ctx.w in
  for i = 0 to 15 do
    let base = pos + (i * 4) in
    let byte j = Int32.of_int (Char.code (Bytes.get block (base + j))) in
    w.(i) <-
      Int32.(logor (shift_left (byte 0) 24)
               (logor (shift_left (byte 1) 16) (logor (shift_left (byte 2) 8) (byte 3))))
  done;
  for i = 16 to 63 do
    w.(i) <-
      Int32.add (small_sigma1 w.(i - 2))
        (Int32.add w.(i - 7) (Int32.add (small_sigma0 w.(i - 15)) w.(i - 16)))
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let t1 =
      Int32.add !hh
        (Int32.add (big_sigma1 !e) (Int32.add (ch !e !f !g) (Int32.add k.(i) w.(i))))
    in
    let t2 = Int32.add (big_sigma0 !a) (maj !a !b !c) in
    hh := !g;
    g := !f;
    f := !e;
    e := Int32.add !d t1;
    d := !c;
    c := !b;
    b := !a;
    a := Int32.add t1 t2
  done;
  h.(0) <- Int32.add h.(0) !a;
  h.(1) <- Int32.add h.(1) !b;
  h.(2) <- Int32.add h.(2) !c;
  h.(3) <- Int32.add h.(3) !d;
  h.(4) <- Int32.add h.(4) !e;
  h.(5) <- Int32.add h.(5) !f;
  h.(6) <- Int32.add h.(6) !g;
  h.(7) <- Int32.add h.(7) !hh

let update_bytes ctx src ~pos ~len =
  assert (pos >= 0 && len >= 0 && pos + len <= Bytes.length src);
  ctx.total_bytes <- Int64.add ctx.total_bytes (Int64.of_int len);
  let remaining = ref len and offset = ref pos in
  (* Fill a partial buffered block first. *)
  if ctx.buf_len > 0 then begin
    let take = min !remaining (block_size - ctx.buf_len) in
    Bytes.blit src !offset ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    offset := !offset + take;
    remaining := !remaining - take;
    if ctx.buf_len = block_size then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= block_size do
    compress ctx src !offset;
    offset := !offset + block_size;
    remaining := !remaining - block_size
  done;
  if !remaining > 0 then begin
    Bytes.blit src !offset ctx.buf ctx.buf_len !remaining;
    ctx.buf_len <- ctx.buf_len + !remaining
  end

let update ctx s = update_bytes ctx (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let finalize ctx =
  let bit_len = Int64.mul ctx.total_bytes 8L in
  (* Padding: 0x80, zeros, 8-byte big-endian bit length. *)
  let pad_len =
    let rem = (ctx.buf_len + 1 + 8) mod block_size in
    if rem = 0 then 1 else 1 + (block_size - rem)
  in
  let tail = Bytes.make (pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    let shift = 8 * (7 - i) in
    Bytes.set tail (pad_len + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bit_len shift) 0xFFL)))
  done;
  (* Bypass update's length accounting: the padding is not message data. *)
  let remaining = ref (Bytes.length tail) and offset = ref 0 in
  if ctx.buf_len > 0 then begin
    let take = min !remaining (block_size - ctx.buf_len) in
    Bytes.blit tail !offset ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    offset := !offset + take;
    remaining := !remaining - take;
    if ctx.buf_len = block_size then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= block_size do
    compress ctx tail !offset;
    offset := !offset + block_size;
    remaining := !remaining - block_size
  done;
  assert (!remaining = 0 && ctx.buf_len = 0);
  let out = Bytes.create digest_size in
  for i = 0 to 7 do
    let word = ctx.h.(i) in
    for j = 0 to 3 do
      let shift = 8 * (3 - j) in
      Bytes.set out ((i * 4) + j)
        (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical word shift) 0xFFl)))
    done
  done;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  finalize ctx

let hex_of raw =
  let b = Buffer.create (2 * String.length raw) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) raw;
  Buffer.contents b

let digest_hex s = hex_of (digest s)
