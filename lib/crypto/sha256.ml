(* SHA-256 per FIPS 180-4.

   Word arithmetic is done on the native [int] (63-bit on 64-bit hosts)
   masked to 32 bits, rather than on boxed [Int32]: the compression loop is
   the hot path of every MAC and PRF call in the simulator, and native ints
   keep it allocation-free.  Sums of up to five 32-bit terms stay below
   2^35, so a single mask per assignment suffices.  Message length is
   tracked in bytes as Int64. *)

let digest_size = 32
let block_size = 64
let mask32 = 0xFFFFFFFF

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
     0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
     0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
     0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
     0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
     0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
     0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

let initial_h () =
  [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a;
     0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |]

type ctx = {
  h : int array;
  buf : Bytes.t; (* one block *)
  mutable buf_len : int;
  mutable total_bytes : int64;
  w : int array; (* message schedule scratch *)
}

let init () =
  { h = initial_h (); buf = Bytes.create block_size; buf_len = 0; total_bytes = 0L;
    w = Array.make 64 0 }

let copy ctx =
  (* [w] is per-block scratch, fully rewritten before every read inside one
     [compress] call, so sharing it between a context and its copies is
     safe within a domain — and keeps midstate replay (the per-MAC path of
     {!Hmac}) allocation-light.  Contexts must not be shared across
     domains. *)
  { h = Array.copy ctx.h; buf = Bytes.copy ctx.buf; buf_len = ctx.buf_len;
    total_bytes = ctx.total_bytes; w = ctx.w }

let copy_into src ~into =
  (* Overwrite [into] with a snapshot of [src] without allocating: the
     batch MAC path replays one midstate thousands of times per epoch and
     reuses a single scratch context for all of them.  [into] keeps its own
     [w] (per-block scratch, rewritten before every read). *)
  Array.blit src.h 0 into.h 0 8;
  if src.buf_len > 0 then Bytes.blit src.buf 0 into.buf 0 src.buf_len;
  into.buf_len <- src.buf_len;
  into.total_bytes <- src.total_bytes

let[@inline] rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

let[@inline] big_sigma0 x = rotr x 2 lxor rotr x 13 lxor rotr x 22
let[@inline] big_sigma1 x = rotr x 6 lxor rotr x 11 lxor rotr x 25
let[@inline] small_sigma0 x = rotr x 7 lxor rotr x 18 lxor (x lsr 3)
let[@inline] small_sigma1 x = rotr x 17 lxor rotr x 19 lxor (x lsr 10)

(* Equivalent minimal-operation forms of the FIPS boolean functions:
   ch = (e & f) ^ (~e & g), maj = (a & b) ^ (a & c) ^ (b & c). *)
let[@inline] ch e f g = g lxor (e land (f lxor g))
let[@inline] maj a b c = a land b lor (c land (a lor b))

let compress ctx block pos =
  (* The innermost loops of every hash/MAC/PRF call: indices are bounded by
     construction (w and k have 64 entries, h has 8), so unchecked accesses
     are safe and measurably faster. *)
  let w = ctx.w in
  for i = 0 to 15 do
    Array.unsafe_set w i (Int32.to_int (Bytes.get_int32_be block (pos + (i * 4))) land mask32)
  done;
  for i = 16 to 63 do
    Array.unsafe_set w i
      ((small_sigma1 (Array.unsafe_get w (i - 2))
        + Array.unsafe_get w (i - 7)
        + small_sigma0 (Array.unsafe_get w (i - 15))
        + Array.unsafe_get w (i - 16))
      land mask32)
  done;
  let h = ctx.h in
  (* Tail recursion keeps the eight state words in registers: no per-round
     stores, where the ref-based formulation paid eight. *)
  let rec rounds i a b c d e f g hh =
    if i = 64 then begin
      h.(0) <- (h.(0) + a) land mask32;
      h.(1) <- (h.(1) + b) land mask32;
      h.(2) <- (h.(2) + c) land mask32;
      h.(3) <- (h.(3) + d) land mask32;
      h.(4) <- (h.(4) + e) land mask32;
      h.(5) <- (h.(5) + f) land mask32;
      h.(6) <- (h.(6) + g) land mask32;
      h.(7) <- (h.(7) + hh) land mask32
    end
    else begin
      let t1 = hh + big_sigma1 e + ch e f g + Array.unsafe_get k i + Array.unsafe_get w i in
      let t2 = big_sigma0 a + maj a b c in
      rounds (i + 1) ((t1 + t2) land mask32) a b c ((d + t1) land mask32) e f g
    end
  in
  rounds 0 h.(0) h.(1) h.(2) h.(3) h.(4) h.(5) h.(6) h.(7)

let update_bytes ctx src ~pos ~len =
  assert (pos >= 0 && len >= 0 && pos + len <= Bytes.length src);
  ctx.total_bytes <- Int64.add ctx.total_bytes (Int64.of_int len);
  let remaining = ref len and offset = ref pos in
  (* Fill a partial buffered block first. *)
  if ctx.buf_len > 0 then begin
    let take = min !remaining (block_size - ctx.buf_len) in
    Bytes.blit src !offset ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    offset := !offset + take;
    remaining := !remaining - take;
    if ctx.buf_len = block_size then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= block_size do
    compress ctx src !offset;
    offset := !offset + block_size;
    remaining := !remaining - block_size
  done;
  if !remaining > 0 then begin
    Bytes.blit src !offset ctx.buf ctx.buf_len !remaining;
    ctx.buf_len <- ctx.buf_len + !remaining
  end

let feed_string ctx s ~off ~len =
  update_bytes ctx (Bytes.unsafe_of_string s) ~pos:off ~len

let update ctx s = feed_string ctx s ~off:0 ~len:(String.length s)

let finalize_into ctx out ~pos =
  let bit_len = Int64.mul ctx.total_bytes 8L in
  (* Padding: 0x80, zeros, 8-byte big-endian bit length. *)
  let pad_len =
    let rem = (ctx.buf_len + 1 + 8) mod block_size in
    if rem = 0 then 1 else 1 + (block_size - rem)
  in
  let tail = Bytes.make (pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  Bytes.set_int64_be tail pad_len bit_len;
  (* Bypass update's length accounting: the padding is not message data. *)
  let remaining = ref (Bytes.length tail) and offset = ref 0 in
  if ctx.buf_len > 0 then begin
    let take = min !remaining (block_size - ctx.buf_len) in
    Bytes.blit tail !offset ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    offset := !offset + take;
    remaining := !remaining - take;
    if ctx.buf_len = block_size then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= block_size do
    compress ctx tail !offset;
    offset := !offset + block_size;
    remaining := !remaining - block_size
  done;
  assert (!remaining = 0 && ctx.buf_len = 0);
  for i = 0 to 7 do
    Bytes.set_int32_be out (pos + (i * 4)) (Int32.of_int ctx.h.(i))
  done

let finalize ctx =
  let out = Bytes.create digest_size in
  finalize_into ctx out ~pos:0;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  finalize ctx

let hex_of raw =
  let b = Buffer.create (2 * String.length raw) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) raw;
  Buffer.contents b

let digest_hex s = hex_of (digest s)
