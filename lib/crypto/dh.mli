(** One-round Diffie-Hellman key exchange (Section 6, Part 1).

    The paper initialises f-AME with the messages of a one-round key-exchange
    protocol; this module provides exactly that primitive: each party sends a
    single group element, and any pair whose elements were both delivered can
    derive the same shared key.

    The group is the prime-order-q subgroup of Z_p^* for a safe prime
    p = 2q + 1 below 2^61 (see {!Modarith.find_safe_prime}).  The simulated
    adversary never learns exchanged secrets, so the small modulus does not
    weaken any property the reproduction measures; see DESIGN.md. *)

type params = { p : int64; q : int64; g : int64 }
(** Group description: safe prime [p], subgroup order [q = (p-1)/2],
    generator [g] of the order-[q] subgroup. *)

type keypair = { secret : int64; public : int64 }

val default_params : params Lazy.t
(** Deterministically generated 61-bit safe-prime group, shared by all nodes
    (group parameters are public in the paper's model). *)

val make_params : bits:int -> seed:int64 -> params

val generate : ?params:params -> Prng.Rng.t -> keypair
(** Fresh key pair; the secret exponent is uniform in [\[1, q)]. *)

val shared_secret : ?params:params -> secret:int64 -> int64 -> int64
(** [shared_secret ~secret peer_public] = peer_public^secret mod p. *)

val derive_key : ?info:string -> int64 -> string
(** Hash the raw shared group element into a 32-byte symmetric key;
    [info] domain-separates independent keys derived from one secret. *)

val valid_public : ?params:params -> int64 -> bool
(** Subgroup membership check: rejects 0, 1, and elements outside the
    order-q subgroup (protection against small-subgroup confinement). *)

val encode_public : int64 -> string
(** 8-byte big-endian wire encoding of a group element. *)

val decode_public : string -> int64 option
(** Inverse of {!encode_public}; [None] on malformed input. *)
