(** HMAC-SHA256 (RFC 2104 / FIPS 198-1).

    The message-authentication code used by the authenticated cipher and the
    long-lived communication service.  Verified against the RFC 4231 test
    vectors in the test suite. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte raw HMAC-SHA256 tag. *)

val mac_hex : key:string -> string -> string

val verify : key:string -> tag:string -> string -> bool
(** Constant-time comparison of [tag] against the MAC of the message. *)
