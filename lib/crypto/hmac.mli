(** HMAC-SHA256 (RFC 2104 / FIPS 198-1).

    The message-authentication code used by the authenticated cipher and the
    long-lived communication service.  Verified against the RFC 4231 test
    vectors in the test suite.

    Hot callers (the PRF-driven channel hop, the cipher) MAC thousands of
    short messages under one key; {!key} prepares that key once — hashing
    the ipad and opad blocks into reusable SHA-256 midstates — and
    {!mac_keyed} replays the midstates per message, halving the compression
    count for short inputs.  The keyed and one-shot entry points produce
    byte-identical tags. *)

type key
(** A prepared MAC key (precomputed ipad/opad midstates).  Immutable once
    built: one [key] may be shared freely within a domain. *)

val key : string -> key
(** Prepare a raw key string.  Keys longer than the 64-byte block are
    pre-hashed, exactly as in the one-shot {!mac}. *)

val mac_keyed : key -> string -> string
(** [mac_keyed k msg] is the 32-byte raw HMAC-SHA256 tag; equal to
    [mac ~key:raw msg] for [k = key raw]. *)

val mac_feed : key -> (Sha256.ctx -> unit) -> string
(** [mac_feed k feed] MACs the byte sequence that [feed] pushes into the
    inner context — the zero-concatenation path used by {!Prf} to absorb
    label and counter fields without building the message string. *)

type scratch
(** Reusable working state (two contexts + inner-digest buffer) for the
    batch entry points below.  One [scratch] serves any number of
    sequential MACs under any keys; it must not be shared across domains
    or used reentrantly. *)

val scratch : unit -> scratch

val mac_feed_into : key -> scratch -> (Sha256.ctx -> unit) -> Bytes.t -> pos:int -> unit
(** [mac_feed_into k s feed out ~pos] is {!mac_feed} writing the 32-byte
    tag at [pos] of [out], with all working state drawn from [s] — zero
    allocations per call.  Byte-identical to [mac_feed k feed]. *)

val mac_batch : key -> string array -> string array
(** [mac_batch k msgs] tags every message under one key, amortizing the
    midstate replay buffers across the whole batch.  Element [i] equals
    [mac_keyed k msgs.(i)]. *)

val verify_batch : key -> tags:string array -> string array -> bool array
(** [verify_batch k ~tags msgs] checks [tags.(i)] against [msgs.(i)] for
    each [i] (constant-time per element, as {!verify_keyed}).  Raises
    [Invalid_argument] on length mismatch. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte raw HMAC-SHA256 tag. *)

val mac_hex : key:string -> string -> string

val verify_keyed : key -> tag:string -> string -> bool
(** Constant-time acceptance of [tag] for the message: the tag-length check
    is folded into the byte-comparison accumulator, so a wrong-length tag
    and a wrong-byte tag are rejected on the same timing path. *)

val verify : key:string -> tag:string -> string -> bool
(** One-shot {!verify_keyed}. *)

val equal_ct : expect:string -> tag:string -> bool
(** The underlying constant-time comparison (length folded in; always walks
    all of [expect]). *)
