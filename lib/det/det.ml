(* Deterministic views of [Hashtbl].

   [Hashtbl]'s own iteration order depends on the hash function and on
   insertion history, so any fold/iter over a table is a nondeterminism
   hazard in simulated paths — exactly what `radio_lint`'s
   [nondet-hashtbl-order] rule flags.  This module is the blessed way to
   consume a table: every traversal goes through a sort on the keys
   (polymorphic [compare]), so results depend only on the table's
   contents, never on its layout.

   The raw folds below are the single justified use of unordered
   iteration in the tree; each carries a `radio-lint: allow` escape. *)

let bindings t =
  (* radio-lint: allow nondet-hashtbl-order — order erased by the sort *)
  List.sort (fun (k1, _) (k2, _) -> compare k1 k2) (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [])

let keys t =
  (* radio-lint: allow nondet-hashtbl-order — order erased by the sort *)
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

let fold f t init = List.fold_left (fun acc (k, v) -> f k v acc) init (bindings t)

let iter f t = List.iter (fun (k, v) -> f k v) (bindings t)
