(** Deterministic views of [Hashtbl].

    [Hashtbl.fold]/[iter]/[to_seq] visit bindings in an unspecified order,
    which leaks table layout into anything that consumes them — a
    reproducibility hazard the [nondet-hashtbl-order] lint rule forbids in
    simulated paths.  These helpers are the sanctioned alternative: every
    traversal is keyed to a sort with polymorphic [compare], so the result
    depends only on the table's contents.

    All functions cost an extra O(n log n) sort; tables on hot paths
    should be consumed once, not per round. *)

val bindings : ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings, sorted by key ([compare]).  With unique keys this equals
    [List.sort compare] of the binding list. *)

val keys : ('k, 'v) Hashtbl.t -> 'k list
(** All keys, sorted ([compare]). *)

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) Hashtbl.t -> 'acc -> 'acc
(** [fold f t init] folds over bindings in ascending key order. *)

val iter : ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [iter f t] visits bindings in ascending key order. *)
