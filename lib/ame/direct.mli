(** The direct-exchange baseline: message exchange {e without} surrogates.

    Section 5's first insight alone — schedule node-disjoint sender/receiver
    pairs on the t+1 channels, each source transmitting its own message —
    authenticates but achieves only 2t-disruptability: the protocol must
    stop once no more than t node-disjoint edges remain schedulable, and the
    adversary can maneuver it into leaving a residue of t edge-disjoint
    triangles (vertex cover 2t).  Experiments E6/E12 measure this gap
    against f-AME.

    Shares the radio mechanics of f-AME (same witness/feedback machinery),
    differing only in scheduling and the absence of surrogate recruitment. *)

type outcome = {
  engine : Radio.Engine.result;
  delivered : ((int * int) * string) list;
  failed : (int * int) list;
  disruption_vc : int option;
  diverged : bool;
  moves : int;
}

val run :
  ?ame_params:Params.t ->
  ?channels_used:int ->
  cfg:Radio.Config.t ->
  pairs:(int * int) list ->
  messages:(int * int -> string) ->
  adversary:(Oracle.t -> Radio.Adversary.t) ->
  unit ->
  outcome
(** Terminates when fewer than t+1 node-disjoint undelivered edges remain
    (the adversary could then block every scheduled channel forever). *)
