(** The deterministic-schedule oracle offered to protocol-aware adversaries.

    Everything posted here is information a real adversary could compute by
    itself — the f-AME schedule is a deterministic function of the public
    protocol, the exchange set E, and the (publicly audible) outcomes of
    completed rounds.  Node fibers post each upcoming message-transmission
    round's schedule before performing it; adversary strategies may read the
    entry for the round they are about to strike.  Honest random choices are
    never posted. *)

type item_kind = Node_item of int | Edge_item of (int * int)

type entry = {
  channels_in_use : int list;
  kinds : (int * item_kind) list;  (** (channel, what that channel carries) *)
}

type t

val create : unit -> t

val post : t -> round:int -> entry -> unit
(** Idempotent: every node posts the same entry for the same round. *)

val get : t -> round:int -> entry option

val channels_for : t -> round:int -> int list
(** [channels_in_use] of the entry, or [] when none was posted. *)
