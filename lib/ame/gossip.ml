type outcome = {
  engine : Radio.Engine.result;
  rounds_to_completion : int option;
  coverage : int array;
  fake_rumors_accepted : int;
}

let run ?(max_rounds = 200_000) ~cfg ~rumors ~adversary () =
  let channels = cfg.Radio.Config.channels in
  let n = cfg.Radio.Config.n in
  let budget = cfg.Radio.Config.t in
  (* known.(i) maps owner -> rumor body as node i believes it. *)
  let known = Array.init n (fun i -> let h = Hashtbl.create 16 in Hashtbl.replace h i (rumors i); h) in
  let completion_round = ref None in
  let complete () =
    let enough = n - budget in
    let with_enough =
      Array.fold_left (fun acc h -> if Hashtbl.length h >= enough then acc + 1 else acc) 0 known
    in
    with_enough >= enough
  in
  let node_body (ctx : Radio.Engine.ctx) =
    let id = ctx.id in
    let r = ref 0 in
    while Option.is_none !completion_round && !r < max_rounds do
      incr r;
      let chan = Prng.Rng.int ctx.rng channels in
      if Prng.Rng.bool ctx.rng then begin
        Radio.Engine.transmit ~chan
          (Radio.Frame.Vector { owner = id; entries = Det.bindings known.(id) })
      end
      else begin
        match Radio.Engine.listen ~chan with
        | Some (Radio.Frame.Vector { entries; _ }) ->
          List.iter
            (fun (owner, body) ->
              if owner >= 0 && owner < n && not (Hashtbl.mem known.(id) owner) then
                Hashtbl.replace known.(id) owner body)
            entries
        | Some _ | None -> ()
      end;
      (* The last node to act each round evaluates the global completion
         predicate (simulation-level instrumentation, not protocol logic). *)
      if id = n - 1 && Option.is_none !completion_round && complete () then
        completion_round := Some !r
    done
  in
  let engine = Radio.Engine.run_nodes cfg ~adversary node_body in
  let coverage = Array.map Hashtbl.length known in
  let fake_rumors_accepted =
    Array.fold_left
      (fun acc h ->
        Det.fold (fun owner body acc -> if body <> rumors owner then acc + 1 else acc) h acc)
      0 known
  in
  { engine; rounds_to_completion = !completion_round; coverage; fake_rumors_accepted }
