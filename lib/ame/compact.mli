(** The message-size optimization of Section 5.6: constant-size protocol
    frames via gossip epochs, reconstruction hashes, and vector signatures.

    Phase A (message gossip): each edge (v, w) gets an epoch of
    Theta(t^2 log n) rounds in which v broadcasts, on a fresh random channel
    each round, the payload m_v,w tagged with the reconstruction hash
    H1(m_i, ..., m_k) over the rest of its vector; everyone else listens on
    random channels and records every (body, hash) candidate heard — real or
    spoofed.

    Phase B (reconstruction, local computation): per owner, candidates are
    arranged into levels and chained backwards: a level-i candidate links to
    a level-(i+1) suffix exactly when its attached hash matches H1 of the
    combined chain.  Collision resistance caps surviving chains at one per
    candidate, defeating spoof floods.

    Phase C (vector signature): f-AME runs with each owner's vector replaced
    by the constant-size signature H2(M_v); the authenticated signature
    selects the unique genuine chain among the candidates.

    The honest frame size is thereby O(1) payloads + one hash, versus the
    Theta(n)-payload vectors of basic f-AME: experiment E11's measurement. *)

type calendar = {
  epoch_rounds : int;  (** rounds per epoch: the Theta(t^2 log n) knob *)
  epochs : ((int * int) * int * int) array;
      (** epoch e carries (edge, index within owner's vector, owner's vector
          length) *)
}

val make_calendar : ?gossip_beta:float -> pairs:(int * int) list -> budget:int -> n:int -> unit -> calendar
(** Deterministic public schedule of the gossip phase (the adversary may
    read it; epoch boundaries are protocol-deterministic). *)

val epoch_of_round : calendar -> int -> ((int * int) * int * int) option

val hash_chain : string list -> string
(** H1: collision-resistant hash of a message chain (length-prefixed
    concatenation under SHA-256). *)

val vector_signature : string list -> string
(** H2: domain-separated hash of a full vector M_v. *)

type outcome = {
  gossip_engine : Radio.Engine.result;
  fame : Fame.outcome;
  delivered : ((int * int) * string) list;  (** fully reconstructed payloads *)
  failed : (int * int) list;
  reconstruction_failures : int;
      (** pairs whose signature arrived but matched no candidate chain *)
  max_honest_payload : int;  (** largest honest frame across both phases *)
}

val run :
  ?ame_params:Params.t ->
  ?gossip_beta:float ->
  ?candidate_cap:int ->
  cfg:Radio.Config.t ->
  pairs:(int * int) list ->
  messages:(int * int -> string) ->
  gossip_adversary:(calendar -> Radio.Adversary.t) ->
  fame_adversary:(Oracle.t -> Radio.Adversary.t) ->
  unit ->
  outcome
(** [candidate_cap] (default 256) bounds stored candidates per (owner,
    level) against spoof floods. *)

val chain_spoofer :
  Prng.Rng.t -> calendar -> channels:int -> budget:int -> Radio.Adversary.t
(** The natural phase-A attack: floods the current epoch with fake
    (body, hash) candidates carrying the genuine owner and index. *)
