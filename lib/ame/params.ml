type t = {
  beta_feedback : float;
  watchers_factor : int;
}

let default = { beta_feedback = 3.0; watchers_factor = 3 }

let log2 x = log x /. log 2.0

let feedback_reps p ~channels ~budget ~n =
  let c = float_of_int channels and t = float_of_int budget in
  let reps = p.beta_feedback *. (c /. (c -. t)) *. log2 (float_of_int (max n 4)) in
  max 1 (int_of_float (ceil reps))

let tree_reps p ~n =
  max 1 (int_of_float (ceil (p.beta_feedback *. log2 (float_of_int (max n 4)))))

let watchers_per_channel p ~budget ~channels =
  max channels (p.watchers_factor * (budget + 1))

let nodes_required p ~channels_used ~budget ~channels =
  (channels_used * watchers_per_channel p ~budget ~channels) + (2 * (budget + 1)) + 1
