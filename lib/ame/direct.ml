type outcome = {
  engine : Radio.Engine.result;
  delivered : ((int * int) * string) list;
  failed : (int * int) list;
  disruption_vc : int option;
  diverged : bool;
  moves : int;
}

module Int_set = Set.Make (Int)

(* Greedy maximal set of node-disjoint edges, in sorted order. *)
let disjoint_batch edges ~limit =
  let rec go acc used = function
    | [] -> List.rev acc
    | (v, w) :: rest ->
      if List.length acc >= limit then List.rev acc
      else if Int_set.mem v used || Int_set.mem w used then go acc used rest
      else go ((v, w) :: acc) (Int_set.add v (Int_set.add w used)) rest
  in
  go [] Int_set.empty edges

let run ?(ame_params = Params.default) ?channels_used ~cfg ~pairs ~messages ~adversary () =
  let channels = cfg.Radio.Config.channels in
  let budget = cfg.Radio.Config.t in
  let n = cfg.Radio.Config.n in
  let channels_used = Option.value channels_used ~default:channels in
  if channels_used > channels || channels_used <= budget then
    invalid_arg "Direct.run: invalid channels_used";
  let watchers_per_channel = Params.watchers_per_channel ame_params ~budget ~channels in
  let reps = Params.feedback_reps ame_params ~channels ~budget ~n in
  let board = Oracle.create () in
  let delivered_cells : (int * int, string) Hashtbl.t = Hashtbl.create 64 in
  let diverged = ref false in
  let moves_counter = ref 0 in
  (* Shared across all node fibers of this run: builds interleave on one
     domain and never span a suspension, so they cannot overlap. *)
  let sched_scratch = Schedule.make_scratch () in
  let node_body (ctx : Radio.Engine.ctx) =
    let id = ctx.id in
    let remaining = ref (Rgraph.Digraph.of_edges pairs) in
    let rec play () =
      let batch = disjoint_batch (Rgraph.Digraph.edges !remaining) ~limit:channels_used in
      (* With <= t schedulable edges the adversary can jam them all, every
         move: no further progress is guaranteed, so the protocol stops. *)
      if List.length batch <= budget then ()
      else begin
        let proposal = List.map (fun e -> Game.State.Edge e) batch in
        match
          Schedule.build ~scratch:sched_scratch ~proposal ~surrogates:(fun _ -> [||]) ~n
            ~witness_size:channels ~watchers_per_channel ()
        with
        | exception Schedule.Divergence _ -> diverged := true
        | sched ->
          let msg_round = Radio.Engine.current_round () in
          Oracle.post board ~round:msg_round (Schedule.oracle_entry sched);
          let my_recv = ref None in
          (match Schedule.role_of sched id with
           | Schedule.Broadcast { channel; owner } ->
             (* Sources broadcast their own single message: no vectors. *)
             let entries =
               List.filter_map
                 (fun (v, w) -> if v = owner then Some (w, messages (v, w)) else None)
                 batch
             in
             Radio.Engine.transmit ~chan:channel (Radio.Frame.Vector { owner; entries })
           | Schedule.Receive { channel; _ } -> my_recv := Radio.Engine.listen ~chan:channel
           | Schedule.Watch { channel } -> my_recv := Radio.Engine.listen ~chan:channel
           | Schedule.Off -> Radio.Engine.idle ());
          let my_flag = Option.is_some !my_recv in
          let d =
            Feedback.run ~my_id:id ~rng:ctx.rng ~channels ~reps
              ~witnesses:sched.Schedule.watchers ~witness_size:channels ~my_flag
          in
          let successes = List.filter (fun c -> c < Array.length sched.Schedule.items) d in
          List.iter
            (fun c ->
              match sched.Schedule.items.(c) with
              | Game.State.Edge (v, w) ->
                if id = w then begin
                  match !my_recv with
                  | Some (Radio.Frame.Vector { owner; entries }) when owner = v ->
                    (match List.assoc_opt w entries with
                     | Some body -> Hashtbl.replace delivered_cells (v, w) body
                     | None -> ())
                  | _ -> ()
                end;
                remaining := Rgraph.Digraph.remove_edge !remaining (v, w)
              | Game.State.Node _ -> ())
            successes;
          if id = 0 then incr moves_counter;
          if successes = [] then diverged := true
          else if not !diverged then play ()
      end
    in
    play ()
  in
  let engine = Radio.Engine.run_nodes cfg ~adversary:(adversary board) node_body in
  let delivered = Det.bindings delivered_cells in
  let failed =
    List.sort Rgraph.Digraph.edge_compare
      (List.filter (fun pair -> not (Hashtbl.mem delivered_cells pair)) pairs)
  in
  let disruption_vc =
    if List.length failed <= 64 then
      Some (Rgraph.Vertex_cover.minimum_size_dense (Rgraph.Digraph.Dense.of_edges failed))
    else None
  in
  { engine; delivered; failed; disruption_vc; diverged = !diverged; moves = !moves_counter }
