type outcome = {
  engine : Radio.Engine.result;
  delivered : ((int * int) * string) list;
  confirmed : (int * int) list;
  failed : (int * int) list;
  disruption_vc : int option;
  diverged : bool;
  moves : int;
}

let default_vector ~messages ~pairs v =
  List.filter_map (fun (x, w) -> if x = v then Some (w, messages (x, w)) else None) pairs

let extract_entry entries ~dst =
  match List.assoc_opt dst entries with
  | Some body -> Some body
  | None -> List.assoc_opt (-1) entries

type feedback_mode = Sequential | Tree

type corruption = Forge_as_surrogate | Lie_as_witness | Full

let run ?(ame_params = Params.default) ?channels_used ?(feedback_mode = Sequential)
    ?vector_for ?(corrupted = []) ?(corruption = Full) ~cfg ~pairs ~messages ~adversary () =
  let forges = corruption = Forge_as_surrogate || corruption = Full in
  let lies = corruption = Lie_as_witness || corruption = Full in
  let channels = cfg.Radio.Config.channels in
  let budget = cfg.Radio.Config.t in
  let n = cfg.Radio.Config.n in
  let channels_used = Option.value channels_used ~default:channels in
  if channels_used > channels || channels_used < 1 then
    invalid_arg "Fame.run: channels_used out of range";
  if channels_used <= budget then
    invalid_arg "Fame.run: proposal size must exceed the adversary budget";
  (match feedback_mode with
   | Sequential -> ()
   | Tree ->
     if channels_used land (channels_used - 1) <> 0 then
       invalid_arg "Fame.run: tree feedback needs a power-of-two channels_used";
     if channels_used / 2 * budget > channels then
       invalid_arg "Fame.run: tree feedback needs (channels_used/2)*t <= C");
  let watchers_per_channel = Params.watchers_per_channel ame_params ~budget ~channels in
  if n < Params.nodes_required ame_params ~channels_used ~budget ~channels then
    invalid_arg
      (Printf.sprintf "Fame.run: n=%d too small; need >= %d" n
         (Params.nodes_required ame_params ~channels_used ~budget ~channels));
  let sequential_reps = Params.feedback_reps ame_params ~channels ~budget ~n in
  let tree_reps = Params.tree_reps ame_params ~n in
  List.iter
    (fun (v, w) ->
      if v < 0 || v >= n || w < 0 || w >= n then invalid_arg "Fame.run: pair out of range";
      ignore (v, w))
    pairs;
  (* Dense over the inferred endpoint range (not all of 0..n-1): game
     bitsets stay as wide as the exchange actually is. *)
  let graph = Rgraph.Digraph.Dense.of_edges pairs in
  let vector_for = Option.value vector_for ~default:(default_vector ~messages ~pairs) in
  (* Shared (runner-side) result cells; node fibers write, runner reads. *)
  let board = Oracle.create () in
  let delivered_cells : (int * int, string) Hashtbl.t = Hashtbl.create 64 in
  let confirmed_cells : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let diverged = ref false in
  let moves_counter = ref 0 in
  let final_digests = Array.make n "" in
  (* The initial game state is immutable and identical for every node;
     build it once instead of n times (its universe set is the costly
     part). *)
  let initial_state =
    Game.State.create_dense ~proposal_size:channels_used ~min_proposal:(budget + 1) graph
      ~t:budget
  in
  (* One claimed-node workspace for every schedule build of this run: all
     node fibers interleave on the engine's domain and a build never spans
     a suspension, so the builds cannot overlap. *)
  let sched_scratch = Schedule.make_scratch () in
  let node_body (ctx : Radio.Engine.ctx) =
    let id = ctx.id in
    let state = ref initial_state in
    let surrogate_map : (int, int array) Hashtbl.t = Hashtbl.create 16 in
    let known : (int, (int * string) list) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.replace known id (vector_for id);
    let surrogates v = Option.value (Hashtbl.find_opt surrogate_map v) ~default:[||] in
    let rec play () =
      match Game.Greedy.proposal !state with
      | None -> ()
      | Some proposal ->
        (* Tree feedback only fits full power-of-two proposals; a smaller
           tail proposal (still > t items) falls back to the sequential
           routine for that move.  The choice is a deterministic function of
           the proposal, so all nodes agree on it. *)
        let tree_this_move =
          feedback_mode = Tree && List.length proposal = channels_used
        in
        let witness_size = if tree_this_move then budget + 1 else channels in
        (match
           Schedule.build ~scratch:sched_scratch ~proposal ~surrogates ~n ~witness_size
             ~watchers_per_channel ()
         with
         | exception Schedule.Divergence _ -> diverged := true
         | sched ->
           let msg_round = Radio.Engine.current_round () in
           Oracle.post board ~round:msg_round (Schedule.oracle_entry sched);
           (* Query the role once, right after the build: the inverted index
              is still generation-current here (no suspension since the
              build), so this is the O(1) path; the role is reused below in
              the successes pass, where interleaved builds by other fibers
              have already retired the index. *)
           let my_role = Schedule.role_of sched id in
           (* Message-transmission phase: one round. *)
           let my_recv = ref None in
           (match my_role with
            | Schedule.Broadcast { channel; owner } ->
              (match Hashtbl.find_opt known owner with
               | Some entries ->
                 (* A corrupted node acting as a surrogate forges the owner's
                    vector: the receiver cannot tell (the channel is the
                    scheduled one), which is the Byzantine attack of E13. *)
                 let entries =
                   if forges && owner <> id && List.mem id corrupted then
                     List.map (fun (dst, _) -> (dst, Printf.sprintf "FORGED-by-%d" id)) entries
                   else entries
                 in
                 Radio.Engine.transmit ~chan:channel (Radio.Frame.Vector { owner; entries })
               | None ->
                 (* Scheduled as surrogate without the vector: a divergence. *)
                 diverged := true;
                 Radio.Engine.idle ())
            | Schedule.Receive { channel; _ } ->
              my_recv := Radio.Engine.listen ~chan:channel
            | Schedule.Watch { channel } -> my_recv := Radio.Engine.listen ~chan:channel
            | Schedule.Off -> Radio.Engine.idle ());
           (* Feedback phase.  A corrupted witness lies about its channel's
              outcome — the second Byzantine attack of E13: unlike the
              surrogate forgery, this one attacks agreement itself, since
              honest witnesses of the same channel contradict the liar and
              different listeners may believe different reporters. *)
           let my_flag =
             let real = Option.is_some !my_recv in
             if lies && List.mem id corrupted then not real else real
           in
           let d =
             if tree_this_move then
               Tree_feedback.run ~my_id:id ~rng:ctx.rng ~channels ~budget ~reps:tree_reps
                 ~witnesses:sched.Schedule.watchers ~witness_size ~my_flag
             else
               Feedback.run ~my_id:id ~rng:ctx.rng ~channels ~reps:sequential_reps
                 ~witnesses:sched.Schedule.watchers ~witness_size ~my_flag
           in
           (* Referee simulation: items on successful channels are chosen. *)
           let successes =
             List.filter (fun c -> c < Array.length sched.Schedule.items) d
           in
           if successes = [] then
             (* Impossible unless a whp event failed: at most t of the
                channels_used > t channels can be disrupted. *)
             diverged := true
           else begin
             (* One pass: record the bookkeeping for each successful channel
                and collect the chosen items for the referee apply. *)
             let chosen =
               List.map
                 (fun c ->
                   let item = sched.Schedule.items.(c) in
                   (match item with
                    | Game.State.Node v ->
                      (* The watcher array is immutable after the build, so
                         the surrogate record shares it — no per-success
                         copy. *)
                      Hashtbl.replace surrogate_map v sched.Schedule.watchers.(c);
                      (match (my_role, !my_recv) with
                       | Schedule.Watch { channel }, Some (Radio.Frame.Vector { owner; entries })
                         when channel = c && owner = v ->
                         Hashtbl.replace known v entries
                       | _ -> ())
                    | Game.State.Edge (v, w) ->
                      if id = w then begin
                        match !my_recv with
                        | Some (Radio.Frame.Vector { owner; entries }) when owner = v ->
                          (match extract_entry entries ~dst:w with
                           | Some body -> Hashtbl.replace delivered_cells (v, w) body
                           | None -> ())
                        | _ -> ()
                      end;
                      if id = v then Hashtbl.replace confirmed_cells (v, w) ());
                   item)
                 successes
             in
             state := Game.State.apply !state chosen
           end;
           if id = 0 then incr moves_counter;
           if not !diverged then play ())
    in
    play ();
    let final = !state in
    (* Canonical serialization, not [Hashtbl.hash]: the polymorphic hash is
       no cross-host fingerprint, and divergence detection only needs
       equality of the final states. *)
    let buf = Buffer.create 64 in
    List.iteri
      (fun i (v, w) ->
        if i > 0 then Buffer.add_char buf ';';
        Buffer.add_string buf (string_of_int v);
        Buffer.add_char buf '-';
        Buffer.add_string buf (string_of_int w))
      (* Dense.edges is already in ascending lexicographic order. *)
      (Rgraph.Digraph.Dense.edges final.Game.State.graph);
    Buffer.add_char buf '|';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (string_of_int v))
      final.Game.State.starred;
    final_digests.(id) <- Buffer.contents buf
  in
  let engine = Radio.Engine.run_nodes cfg ~adversary:(adversary board) node_body in
  let digest0 = final_digests.(0) in
  Array.iter (fun h -> if h <> digest0 then diverged := true) final_digests;
  let delivered = Det.bindings delivered_cells in
  let confirmed = Det.keys confirmed_cells in
  let failed =
    List.sort Rgraph.Digraph.edge_compare
      (List.filter (fun pair -> not (Hashtbl.mem delivered_cells pair)) pairs)
  in
  let disruption_vc =
    if List.length failed <= 64 then
      Some (Rgraph.Vertex_cover.minimum_size_dense (Rgraph.Digraph.Dense.of_edges failed))
    else None
  in
  { engine; delivered; confirmed; failed; disruption_vc; diverged = !diverged;
    moves = !moves_counter }
