(** The communication-feedback sub-routine (Figure 1, Section 5.3).

    After a communication round, nodes agree on which channels succeeded.
    For each channel index r in turn, its C witnesses occupy all C channels
    for [reps] rounds: broadcasting <true, r> (each on its own rank channel)
    if their channel delivered, <false> otherwise — so every channel is
    always occupied and the adversary can never spoof feedback, only jam.
    Every other node listens on a uniformly random channel each round and
    records r upon hearing <true, r>; with reps = Theta((C/(C-t)) log n) it
    succeeds with high probability (Lemma 5).

    This function is node-side code: it must be called inside an engine
    fiber, by all nodes in the same round, with identical [witnesses]. *)

val run :
  my_id:int ->
  rng:Prng.Rng.t ->
  channels:int ->
  reps:int ->
  witnesses:int array array ->
  my_flag:bool ->
  int list
(** [run ~my_id ~rng ~channels ~reps ~witnesses ~my_flag] consumes exactly
    [Array.length witnesses * reps] rounds and returns the set D of channel
    indices believed to have succeeded, sorted.  [my_flag] is consulted only
    if [my_id] appears in some [witnesses.(r)] (each witness set must have
    size [channels]; a node may witness at most one channel). *)

val rounds_consumed : witnesses:int array array -> reps:int -> int
