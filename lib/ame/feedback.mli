(** The communication-feedback sub-routine (Figure 1, Section 5.3).

    After a communication round, nodes agree on which channels succeeded.
    For each channel index r in turn, its C witnesses occupy all C channels
    for [reps] rounds: broadcasting <true, r> (each on its own rank channel)
    if their channel delivered, <false> otherwise — so every channel is
    always occupied and the adversary can never spoof feedback, only jam.
    Every other node listens on a uniformly random channel each round and
    records r upon hearing <true, r>; with reps = Theta((C/(C-t)) log n) it
    succeeds with high probability (Lemma 5).

    This function is node-side code: it must be called inside an engine
    fiber, by all nodes in the same round, with identical [witnesses]. *)

val run :
  my_id:int ->
  rng:Prng.Rng.t ->
  channels:int ->
  reps:int ->
  witnesses:int array array ->
  witness_size:int ->
  my_flag:bool ->
  int list
(** [run ~my_id ~rng ~channels ~reps ~witnesses ~witness_size ~my_flag]
    consumes exactly [Array.length witnesses * reps] rounds and returns the
    set D of channel indices believed to have succeeded, sorted.  The
    witness set W[r] is the first [witness_size] entries of
    [witnesses.(r)] — callers hand the schedule's full watcher arrays and a
    prefix length instead of copied sub-arrays.  [witness_size] must equal
    [channels] (each witness set occupies every channel during its phase)
    and every [witnesses.(r)] must have at least that many entries.
    [my_flag] is consulted only if [my_id] appears in some witness prefix
    (a node may witness at most one channel).

    Listener rounds are declared through {!Radio.Engine.listen_series} —
    one suspension per feedback phase rather than one per round — which is
    observationally identical (the random hop sequence is drawn from the
    same per-node stream in the same order) but makes population-scale
    feedback cost array reads per listener-round instead of a fiber
    resume. *)

val rounds_consumed : witnesses:int array array -> reps:int -> int
