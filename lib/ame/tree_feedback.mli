(** Parallel-prefix feedback merging for the C >= 2t^2 regime
    (Section 5.5, case 2).

    The C' witness groups (one per proposal channel, t+1 members each) merge
    their per-channel success flags along a hypercube: at level l, groups c
    and [c xor 2^l] exchange accumulated flag sets over a dedicated block of
    t channels, one direction at a time, for [reps] rounds each.  Every
    round, the sending group occupies its whole channel block (t of its t+1
    members broadcast, rotating), so the adversary can jam but never spoof.
    After [log2 C'] levels every witness holds every flag; a final
    dissemination phase (2 * reps rounds) keeps min(C, total witnesses)
    channels occupied with broadcast duty rotating through the whole witness
    pool — so every witness also gets listening rounds to repair knowledge a
    concentrated jammer may have kept out of its merge block — while all
    other nodes listen on random channels and union what they hear.

    Rounds consumed: (2 * log2 C' + 2) * reps = O(log C' * log n), versus
    O(t^2 log n) for sequential feedback — the saving behind Figure 3's
    third row.

    Requires: the number of witness groups is a power of two; each group has
    exactly t+1 members; (C'/2) * t <= C. *)

val rounds_consumed : groups:int -> reps:int -> int

val run :
  my_id:int ->
  rng:Prng.Rng.t ->
  channels:int ->
  budget:int ->
  reps:int ->
  witnesses:int array array ->
  witness_size:int ->
  my_flag:bool ->
  int list
(** Same contract as {!Feedback.run}: call from every node in the same
    round; returns the believed-successful proposal channels, sorted.
    The witness group of channel c is the first [witness_size] entries of
    [witnesses.(c)] (the schedule's watcher-prefix, shared rather than
    copied); [witness_size] must equal [budget + 1].  Non-witnesses park
    through the merge phase with one [idle_for] and declare their
    dissemination hops as one {!Radio.Engine.listen_series} — same rounds,
    same rng stream, one suspension instead of thousands. *)

(** {1 Exposed internals (tested directly)} *)

val pair_index : level:int -> int -> int
(** [pair_index ~level lower] ranks the level-[level] hypercube pair whose
    lower endpoint is [lower] (bit [level] of [lower] must be 0): deletes
    bit [level].  Pair p talks over channel block [p*t .. p*t + t - 1]. *)

val levels_of : int -> int
(** log2 of the group count. *)
