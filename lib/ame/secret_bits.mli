(** Information-theoretic secret growing (Section 8, open question 2).

    The paper asks: if the adversary can listen on only t of the C channels
    per round (instead of all of them), can nodes establish shared secrets
    that are information-theoretically secure?  This module prototypes the
    natural approach the question hints at:

    - for R rounds, the sender broadcasts a fresh random value on a
      uniformly random channel while the receiver listens on a uniformly
      random channel; they coincide with probability 1/C;
    - the receiver then announces {e publicly} which round indices it
      received (indices reveal nothing about contents);
    - both sides hash the concatenation of the agreed values into a key.

    A restricted eavesdropper monitoring t channels per round overhears each
    agreed value independently with probability about t/C, so it knows the
    final key only if it overheard {e every} agreed value: probability
    roughly (t/C)^k for k agreed values — vanishing, without any
    computational assumption.  Experiment E17 measures the agreement rate,
    the overheard fraction, and the empirical breach rate.

    The module stays within the paper's conjecture: it grows a secret
    between one pair; it does not claim efficient IT-secure AME (which the
    paper conjectures requires exponential time). *)

type outcome = {
  engine : Radio.Engine.result;
  agreed : int;  (** values both sides hold *)
  overheard : int;  (** agreed values the eavesdropper also captured *)
  breached : bool;  (** eavesdropper captured every agreed value *)
  sender_key : string option;  (** None when nothing was agreed *)
  receiver_key : string option;
}

val run :
  rounds:int ->
  cfg:Radio.Config.t ->
  sender:int ->
  receiver:int ->
  eavesdrop_channels:int ->
  ?jam_budget:int ->
  unit ->
  outcome
(** [run ~rounds ~cfg ~sender ~receiver ~eavesdrop_channels ()] plays the
    exchange phase; the adversary monitors [eavesdrop_channels] uniformly
    random channels per round and additionally jams [jam_budget] (default
    0, must be <= cfg.t) of the channels it monitors.  Uses the config seed
    for all coins.  Both parties' derived keys are returned so tests can
    check they match. *)
