type preference = Prefer_edges | Prefer_nodes | Any

let take k items = List.filteri (fun i _ -> i < k) items

let jam chan = { Radio.Adversary.chan; spoof = None }

let default_channels budget = List.init budget jam

let schedule_jammer board ~channels ~budget ~prefer =
  ignore channels;
  { Radio.Adversary.name = "schedule-jammer";
    act =
      (fun ~round ->
        match Oracle.get board ~round with
        | None -> default_channels budget
        | Some entry ->
          let score (_, kind) =
            match (prefer, kind) with
            | Prefer_edges, Oracle.Edge_item _ -> 0
            | Prefer_edges, Oracle.Node_item _ -> 1
            | Prefer_nodes, Oracle.Node_item _ -> 0
            | Prefer_nodes, Oracle.Edge_item _ -> 1
            | Any, _ -> 0
          in
          let ranked =
            List.sort
              (fun a b ->
                let c = Int.compare (score a) (score b) in
                if c <> 0 then c else Int.compare (fst a) (fst b))
              entry.Oracle.kinds
          in
          take budget (List.map (fun (chan, _) -> jam chan) ranked));
    observe = (fun _ -> ()); observes = false }

let triangle_jammer board ~channels ~budget ~triple_of =
  ignore channels;
  { Radio.Adversary.name = "triangle-jammer";
    act =
      (fun ~round ->
        match Oracle.get board ~round with
        | None -> default_channels budget
        | Some entry ->
          let intra (_, kind) =
            match kind with
            | Oracle.Edge_item (v, w) ->
              (match (triple_of v, triple_of w) with
               | Some a, Some b -> a = b
               | _ -> false)
            | Oracle.Node_item _ -> false
          in
          let targets = List.filter intra entry.Oracle.kinds in
          take budget (List.map (fun (chan, _) -> jam chan) targets));
    observe = (fun _ -> ()); observes = false }

let feedback_suppressor board ~channels ~budget rng =
  { Radio.Adversary.name = "feedback-suppressor";
    act =
      (fun ~round ->
        match Oracle.get board ~round with
        | Some _ -> []
        | None ->
          let arr = Array.init channels Fun.id in
          Prng.Rng.shuffle rng arr;
          List.init (min budget channels) (fun i -> jam arr.(i)));
    observe = (fun _ -> ()); observes = false }
