type item_kind = Node_item of int | Edge_item of (int * int)

type entry = {
  channels_in_use : int list;
  kinds : (int * item_kind) list;
}

type t = (int, entry) Hashtbl.t

let create () = Hashtbl.create 64

let post t ~round entry = Hashtbl.replace t round entry

let get t ~round = Hashtbl.find_opt t round

let channels_for t ~round =
  match get t ~round with
  | Some entry -> entry.channels_in_use
  | None -> []
