let rounds_consumed ~witnesses ~reps = Array.length witnesses * reps

(* [rank_of] without the per-call ref/closure pair: last matching index
   within the first [len] slots, or -1 when absent (witness sets are
   duplicate-free, so last = first). *)
let rec rank_scan arr id i len acc =
  if i >= len then acc
  (* radio-lint: allow partial-array-unsafe — i < len <= length checked by the caller *)
  else rank_scan arr id (i + 1) len (if Array.unsafe_get arr i = id then i else acc)

(* Per-phase listener step, shared by both accumulator shapes: draw all
   [reps] random hops first, then declare them as one engine listen-series.
   The rng draws are a pure per-node stream and the hop sequence never
   depends on what is heard, so drawing up front consumes the identical
   stream prefix and the engine rounds are byte-identical to [reps]
   separate [listen] calls — but the fiber suspends once per phase instead
   of once per round, which is what makes population-scale feedback cheap
   (every non-witness node listens in every feedback round). *)
let listen_phase ~rng ~channels ~reps ~chans_buf ~out_buf =
  for j = 0 to reps - 1 do
    (* radio-lint: allow partial-array-unsafe — j < reps = length chans_buf *)
    Array.unsafe_set chans_buf j (Prng.Rng.int rng channels)
  done;
  Radio.Engine.listen_series ~chans:chans_buf ~into:out_buf

let validate_witness_size ~channels ~witness_size =
  if witness_size <> channels then
    invalid_arg "Feedback.run: witness prefix must have size C"

let validate_group ~witness_size g =
  if Array.length g < witness_size then
    invalid_arg "Feedback.run: witness sets must have size >= C"

let run_list ~my_id ~rng ~channels ~reps ~witnesses ~witness_size ~my_flag =
  let k = Array.length witnesses in
  let d = ref [] in
  let chans_buf = Array.make reps 0 in
  let out_buf : Radio.Frame.t option array = Array.make reps None in
  for r = 0 to k - 1 do
    validate_group ~witness_size witnesses.(r);
    match rank_scan witnesses.(r) my_id 0 witness_size (-1) with
    | rank when rank >= 0 ->
      (* Witness for channel r: occupy my rank channel every round. *)
      if my_flag && not (List.mem r !d) then d := r :: !d;
      let frame = if my_flag then Radio.Frame.Feedback_true r else Radio.Frame.Feedback_false in
      for _ = 1 to reps do
        Radio.Engine.transmit ~chan:rank frame
      done
    | _ ->
      (* Listener: a random channel per round; collect <true, r>. *)
      listen_phase ~rng ~channels ~reps ~chans_buf ~out_buf;
      for j = 0 to reps - 1 do
        match out_buf.(j) with
        | Some (Radio.Frame.Feedback_true r') when r' = r ->
          if not (List.mem r !d) then d := r :: !d
        | Some _ | None -> ()
      done
  done;
  List.sort Int.compare !d

let run ~my_id ~rng ~channels ~reps ~witnesses ~witness_size ~my_flag =
  validate_witness_size ~channels ~witness_size;
  let k = Array.length witnesses in
  if k > 62 then run_list ~my_id ~rng ~channels ~reps ~witnesses ~witness_size ~my_flag
  else begin
    (* Hot path: accumulate the successful-channel set as a bitmask instead
       of a deduplicated list, then decode ascending (the same value the
       sorted unique list produced). *)
    let d = ref 0 in
    let chans_buf = Array.make reps 0 in
    let out_buf : Radio.Frame.t option array = Array.make reps None in
    for r = 0 to k - 1 do
      validate_group ~witness_size witnesses.(r);
      match rank_scan witnesses.(r) my_id 0 witness_size (-1) with
      | rank when rank >= 0 ->
        if my_flag then d := !d lor (1 lsl r);
        let frame = if my_flag then Radio.Frame.Feedback_true r else Radio.Frame.Feedback_false in
        for _ = 1 to reps do
          Radio.Engine.transmit ~chan:rank frame
        done
      | _ ->
        listen_phase ~rng ~channels ~reps ~chans_buf ~out_buf;
        for j = 0 to reps - 1 do
          match out_buf.(j) with
          | Some (Radio.Frame.Feedback_true r') when r' = r -> d := !d lor (1 lsl r)
          | Some _ | None -> ()
        done
    done;
    let mask = !d in
    let rec decode r =
      if r >= k then []
      else if mask land (1 lsl r) <> 0 then r :: decode (r + 1)
      else decode (r + 1)
    in
    decode 0
  end
