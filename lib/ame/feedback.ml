let rounds_consumed ~witnesses ~reps = Array.length witnesses * reps

(* [rank_of] without the per-call ref/closure pair: last matching index, or
   -1 when absent (witness sets are duplicate-free, so last = first). *)
let rec rank_scan arr id i acc =
  if i >= Array.length arr then acc
  (* radio-lint: allow partial-array-unsafe — i < length checked above *)
  else rank_scan arr id (i + 1) (if Array.unsafe_get arr i = id then i else acc)

let run_list ~my_id ~rng ~channels ~reps ~witnesses ~my_flag =
  let k = Array.length witnesses in
  let d = ref [] in
  for r = 0 to k - 1 do
    if Array.length witnesses.(r) <> channels then
      invalid_arg "Feedback.run: witness sets must have size C";
    match rank_scan witnesses.(r) my_id 0 (-1) with
    | rank when rank >= 0 ->
      (* Witness for channel r: occupy my rank channel every round. *)
      if my_flag && not (List.mem r !d) then d := r :: !d;
      let frame = if my_flag then Radio.Frame.Feedback_true r else Radio.Frame.Feedback_false in
      for _ = 1 to reps do
        Radio.Engine.transmit ~chan:rank frame
      done
    | _ ->
      (* Listener: a random channel per round; collect <true, r>. *)
      for _ = 1 to reps do
        let chan = Prng.Rng.int rng channels in
        match Radio.Engine.listen ~chan with
        | Some (Radio.Frame.Feedback_true r') when r' = r ->
          if not (List.mem r !d) then d := r :: !d
        | Some _ | None -> ()
      done
  done;
  List.sort Int.compare !d

let run ~my_id ~rng ~channels ~reps ~witnesses ~my_flag =
  let k = Array.length witnesses in
  if k > 62 then run_list ~my_id ~rng ~channels ~reps ~witnesses ~my_flag
  else begin
    (* Hot path: accumulate the successful-channel set as a bitmask instead
       of a deduplicated list, then decode ascending (the same value the
       sorted unique list produced). *)
    let d = ref 0 in
    for r = 0 to k - 1 do
      if Array.length witnesses.(r) <> channels then
        invalid_arg "Feedback.run: witness sets must have size C";
      match rank_scan witnesses.(r) my_id 0 (-1) with
      | rank when rank >= 0 ->
        if my_flag then d := !d lor (1 lsl r);
        let frame = if my_flag then Radio.Frame.Feedback_true r else Radio.Frame.Feedback_false in
        for _ = 1 to reps do
          Radio.Engine.transmit ~chan:rank frame
        done
      | _ ->
        for _ = 1 to reps do
          let chan = Prng.Rng.int rng channels in
          match Radio.Engine.listen ~chan with
          | Some (Radio.Frame.Feedback_true r') when r' = r -> d := !d lor (1 lsl r)
          | Some _ | None -> ()
        done
    done;
    let mask = !d in
    let rec decode r =
      if r >= k then []
      else if mask land (1 lsl r) <> 0 then r :: decode (r + 1)
      else decode (r + 1)
    in
    decode 0
  end
