let rounds_consumed ~witnesses ~reps = Array.length witnesses * reps

let rank_of witnesses_r id =
  let rank = ref None in
  Array.iteri (fun i w -> if w = id then rank := Some i) witnesses_r;
  !rank

let run ~my_id ~rng ~channels ~reps ~witnesses ~my_flag =
  let k = Array.length witnesses in
  let d = ref [] in
  for r = 0 to k - 1 do
    if Array.length witnesses.(r) <> channels then
      invalid_arg "Feedback.run: witness sets must have size C";
    match rank_of witnesses.(r) my_id with
    | Some rank ->
      (* Witness for channel r: occupy my rank channel every round. *)
      if my_flag && not (List.mem r !d) then d := r :: !d;
      let frame = if my_flag then Radio.Frame.Feedback_true r else Radio.Frame.Feedback_false in
      for _ = 1 to reps do
        Radio.Engine.transmit ~chan:rank frame
      done
    | None ->
      (* Listener: a random channel per round; collect <true, r>. *)
      for _ = 1 to reps do
        let chan = Prng.Rng.int rng channels in
        match Radio.Engine.listen ~chan with
        | Some (Radio.Frame.Feedback_true r') when r' = r ->
          if not (List.mem r !d) then d := r :: !d
        | Some _ | None -> ()
      done
  done;
  List.sort compare !d
