(** Tunable constants behind the paper's Theta(.) bounds.

    The analysis leaves multiplicative constants unspecified; these knobs
    make them explicit so experiments can sweep them (E5 exposes the
    whp-failure cliff as [beta_feedback] shrinks). *)

type t = {
  beta_feedback : float;
      (** Feedback repetitions per channel iteration =
          ceil(beta * (C / (C - t)) * log2 n); Figure 1's
          Theta((C/(C-t)) lg n). *)
  watchers_factor : int;
      (** Listeners per used channel in the message-transmission phase =
          watchers_factor * (t+1); the paper uses 3(t+1). *)
}

val default : t
(** beta_feedback = 3.0, watchers_factor = 3: zero observed whp failures
    across the test-suite seeds. *)

val feedback_reps : t -> channels:int -> budget:int -> n:int -> int
(** Repetitions of the inner loop of communication-feedback for one channel
    iteration.  [budget] is the adversary's t. *)

val tree_reps : t -> n:int -> int
(** Repetitions per merge direction / dissemination phase in the C >= 2t^2
    tree feedback: ceil(beta * log2 n). *)

val watchers_per_channel : t -> budget:int -> channels:int -> int
(** Listeners assigned to each used channel; at least [channels] so the
    witness set W[c] (of size C) can be carved out of them. *)

val nodes_required : t -> channels_used:int -> budget:int -> channels:int -> int
(** Minimum n for a legal schedule: watchers for every used channel plus the
    at most 2(t+1) nodes involved in the proposal itself.  Generalizes the
    paper's n > 3(t+1)^2 + 2(t+1). *)
