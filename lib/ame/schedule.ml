exception Divergence of string

type t = {
  items : Game.State.item array;
  broadcaster : int array;
  owner : int array;
  receiver : int option array;
  watchers : int array array;
  witnesses : int array array;
}

module Int_set = Set.Make (Int)

let build ~proposal ~surrogates ~n ~witness_size ~watchers_per_channel =
  if watchers_per_channel < witness_size then
    invalid_arg "Schedule.build: watchers_per_channel must be >= witness_size";
  let items = Array.of_list proposal in
  let k = Array.length items in
  if k = 0 then raise (Divergence "empty proposal");
  let used = ref Int_set.empty in
  let claim v =
    if Int_set.mem v !used then raise (Divergence (Printf.sprintf "node %d claimed twice" v));
    used := Int_set.add v !used
  in
  (* Pass 1: receivers (edge destinations) and node-item broadcasters are
     forced; claim them before choosing edge broadcasters. *)
  let receiver = Array.make k None in
  Array.iteri
    (fun c item ->
      match item with
      | Game.State.Node v -> claim v
      | Game.State.Edge (_, w) ->
        receiver.(c) <- Some w;
        claim w)
    items;
  (* Pass 2: broadcasters.  An edge's source broadcasts itself when free;
     otherwise its first free surrogate stands in. *)
  let broadcaster = Array.make k (-1) in
  let owner = Array.make k (-1) in
  Array.iteri
    (fun c item ->
      match item with
      | Game.State.Node v ->
        broadcaster.(c) <- v;
        owner.(c) <- v
      | Game.State.Edge (v, _) ->
        owner.(c) <- v;
        if not (Int_set.mem v !used) then begin
          claim v;
          broadcaster.(c) <- v
        end
        else begin
          match List.find_opt (fun s -> not (Int_set.mem s !used)) (surrogates v) with
          | Some s ->
            claim s;
            broadcaster.(c) <- s
          | None -> raise (Divergence (Printf.sprintf "no free surrogate for node %d" v))
        end)
    items;
  (* Pass 3: watchers, in increasing id order from the uninvolved nodes. *)
  let watchers = Array.make k [||] in
  let witnesses = Array.make k [||] in
  let next_free = ref 0 in
  let take_free () =
    while !next_free < n && Int_set.mem !next_free !used do
      incr next_free
    done;
    if !next_free >= n then raise (Divergence "not enough nodes for watchers");
    let v = !next_free in
    used := Int_set.add v !used;
    v
  in
  for c = 0 to k - 1 do
    let ws = Array.init watchers_per_channel (fun _ -> take_free ()) in
    watchers.(c) <- ws;
    witnesses.(c) <- Array.sub ws 0 witness_size
  done;
  { items; broadcaster; owner; receiver; watchers; witnesses }

type role =
  | Broadcast of { channel : int; owner : int }
  | Receive of { channel : int; edge : int * int }
  | Watch of { channel : int }
  | Off

let role_of t id =
  let k = Array.length t.items in
  let rec scan c =
    if c >= k then Off
    else if t.broadcaster.(c) = id then Broadcast { channel = c; owner = t.owner.(c) }
    else if t.receiver.(c) = Some id then
      (match t.items.(c) with
       | Game.State.Edge e -> Receive { channel = c; edge = e }
       (* [make] only assigns a receiver on Edge channels, so this arm is
          unreachable by construction; crashing loudly beats
          mis-scheduling silently. *)
       (* radio-lint: allow partial-assert-false *)
       | Game.State.Node _ -> assert false)
    else if Array.exists (fun w -> w = id) t.watchers.(c) then Watch { channel = c }
    else scan (c + 1)
  in
  scan 0

let witness_channel t id =
  let k = Array.length t.items in
  let rec scan c =
    if c >= k then None
    else if Array.exists (fun w -> w = id) t.witnesses.(c) then Some c
    else scan (c + 1)
  in
  scan 0

let oracle_entry t =
  let kinds =
    Array.to_list
      (Array.mapi
         (fun c item ->
           match item with
           | Game.State.Node v -> (c, Oracle.Node_item v)
           | Game.State.Edge e -> (c, Oracle.Edge_item e))
         t.items)
  in
  { Oracle.channels_in_use = List.map fst kinds; kinds }
