exception Divergence of string

type t = {
  items : Game.State.item array;
  broadcaster : int array;
  owner : int array;
  receiver : int option array;
  watchers : int array array;
  witnesses : int array array;
}

(* Claimed-node scratch: a generation-stamped int array, so reusing it
   across builds costs one counter bump instead of an O(n) clear.  [build]
   runs once per node per move; before this was reusable, the per-build
   [Bytes.make n] was the dominant allocation of the f-AME epoch loop at
   population scale (n * moves large blocks straight into the major heap). *)
type scratch = { mutable stamps : int array; mutable gen : int }

let make_scratch () = { stamps = [||]; gen = 0 }

let build ?scratch ~proposal ~surrogates ~n ~witness_size ~watchers_per_channel () =
  if watchers_per_channel < witness_size then
    invalid_arg "Schedule.build: watchers_per_channel must be >= witness_size";
  let items = Array.of_list proposal in
  let k = Array.length items in
  if k = 0 then raise (Divergence "empty proposal");
  let scratch = match scratch with Some s -> s | None -> make_scratch () in
  if Array.length scratch.stamps < n then begin
    scratch.stamps <- Array.make n 0;
    scratch.gen <- 0
  end;
  scratch.gen <- scratch.gen + 1;
  let used = scratch.stamps in
  let gen = scratch.gen in
  (* radio-lint: allow partial-array-unsafe — v < n guarded on the same line *)
  let is_used v = v < n && Array.unsafe_get used v = gen in
  let claim v =
    if is_used v then raise (Divergence (Printf.sprintf "node %d claimed twice" v));
    (* radio-lint: allow partial-array-unsafe — 0 <= v < n guarded on the same line *)
    if v >= 0 && v < n then Array.unsafe_set used v gen
  in
  (* Pass 1: receivers (edge destinations) and node-item broadcasters are
     forced; claim them before choosing edge broadcasters. *)
  let receiver = Array.make k None in
  Array.iteri
    (fun c item ->
      match item with
      | Game.State.Node v -> claim v
      | Game.State.Edge (_, w) ->
        receiver.(c) <- Some w;
        claim w)
    items;
  (* Pass 2: broadcasters.  An edge's source broadcasts itself when free;
     otherwise its first free surrogate stands in. *)
  let broadcaster = Array.make k (-1) in
  let owner = Array.make k (-1) in
  Array.iteri
    (fun c item ->
      match item with
      | Game.State.Node v ->
        broadcaster.(c) <- v;
        owner.(c) <- v
      | Game.State.Edge (v, _) ->
        owner.(c) <- v;
        if not (is_used v) then begin
          claim v;
          broadcaster.(c) <- v
        end
        else begin
          let rec first_free = function
            | [] -> raise (Divergence (Printf.sprintf "no free surrogate for node %d" v))
            | s :: rest -> if is_used s then first_free rest else s
          in
          let s = first_free (surrogates v) in
          claim s;
          broadcaster.(c) <- s
        end)
    items;
  (* Pass 3: watchers, in increasing id order from the uninvolved nodes. *)
  let watchers = Array.make k [||] in
  let witnesses = Array.make k [||] in
  let next_free = ref 0 in
  let take_free () =
    (* radio-lint: allow partial-array-unsafe — !next_free < n guarded on the same line *)
    while !next_free < n && Array.unsafe_get used !next_free = gen do
      incr next_free
    done;
    if !next_free >= n then raise (Divergence "not enough nodes for watchers");
    let v = !next_free in
    (* radio-lint: allow partial-array-unsafe — v < n established by the raise above *)
    Array.unsafe_set used v gen;
    v
  in
  for c = 0 to k - 1 do
    let ws = Array.make watchers_per_channel 0 in
    for i = 0 to watchers_per_channel - 1 do
      ws.(i) <- take_free ()
    done;
    watchers.(c) <- ws;
    witnesses.(c) <- Array.sub ws 0 witness_size
  done;
  { items; broadcaster; owner; receiver; watchers; witnesses }

type role =
  | Broadcast of { channel : int; owner : int }
  | Receive of { channel : int; edge : int * int }
  | Watch of { channel : int }
  | Off

(* [Array.exists (fun w -> w = id)] without the per-call closure. *)
let mem_int arr (id : int) =
  let len = Array.length arr in
  (* radio-lint: allow partial-array-unsafe — i < len guarded on the same line *)
  let rec go i = i < len && (Array.unsafe_get arr i = id || go (i + 1)) in
  go 0

let role_of t id =
  let k = Array.length t.items in
  let rec scan c =
    if c >= k then Off
    else if t.broadcaster.(c) = id then Broadcast { channel = c; owner = t.owner.(c) }
    else if t.receiver.(c) = Some id then
      (match t.items.(c) with
       | Game.State.Edge e -> Receive { channel = c; edge = e }
       (* [make] only assigns a receiver on Edge channels, so this arm is
          unreachable by construction; crashing loudly beats
          mis-scheduling silently. *)
       (* radio-lint: allow partial-assert-false *)
       | Game.State.Node _ -> assert false)
    else if mem_int t.watchers.(c) id then Watch { channel = c }
    else scan (c + 1)
  in
  scan 0

let witness_channel t id =
  let k = Array.length t.items in
  let rec scan c =
    if c >= k then None
    else if mem_int t.witnesses.(c) id then Some c
    else scan (c + 1)
  in
  scan 0

let oracle_entry t =
  (* Both lists in one backward pass, no intermediate array. *)
  let k = Array.length t.items in
  let rec go c =
    if c >= k then ([], [])
    else begin
      let chans, kinds = go (c + 1) in
      let kind =
        match t.items.(c) with
        | Game.State.Node v -> Oracle.Node_item v
        | Game.State.Edge e -> Oracle.Edge_item e
      in
      (c :: chans, (c, kind) :: kinds)
    end
  in
  let channels_in_use, kinds = go 0 in
  { Oracle.channels_in_use; kinds }
