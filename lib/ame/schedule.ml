exception Divergence of string

(* Claimed-node scratch: generation-stamped int arrays, so reusing them
   across builds costs one counter bump instead of an O(n) clear.  [build]
   runs once per node per move; before this was reusable, the per-build
   [Bytes.make n] was the dominant allocation of the f-AME epoch loop at
   population scale (n * moves large blocks straight into the major heap).

   [stamps] marks the nodes claimed by the current build; [role_data]
   carries, for every claimed node, its packed role (written by the same
   pass that claims it), so the build doubles as a one-pass inverted
   node->role index.  [gen] is monotonic across the scratch's whole
   lifetime — a regrow keeps counting rather than restarting, so an index
   taken from an earlier build can never be revalidated by accident. *)
type scratch = {
  mutable stamps : int array;
  mutable role_data : int array;
  mutable gen : int;
}

let make_scratch () = { stamps = [||]; role_data = [||]; gen = 0 }

(* Packed role: 2 kind bits, then the channel, then (for watchers) the rank
   within the channel's watcher array.  Channels fit in 32 bits and ranks in
   the bits above — far beyond any feasible proposal. *)
let kind_broadcast = 0
let kind_receive = 1
let kind_watch = 2

let[@inline] pack ~kind ~chan ~rank = kind lor (chan lsl 2) lor (rank lsl 34)
let[@inline] packed_kind d = d land 3
let[@inline] packed_chan d = (d lsr 2) land 0xFFFFFFFF
let[@inline] packed_rank d = d lsr 34

(* The inverted index is a view into its scratch: valid only while no later
   build has bumped the generation.  [role_of] checks and falls back to the
   retained scans, so a stale index degrades to the old cost, never to a
   wrong answer. *)
type index = { src : scratch; built_gen : int }

type t = {
  items : Game.State.item array;
  broadcaster : int array;
  owner : int array;
  receiver : int option array;
  watchers : int array array;
  witness_size : int;
  index : index;
}

let build ?scratch ~proposal ~surrogates ~n ~witness_size ~watchers_per_channel () =
  if watchers_per_channel < witness_size then
    invalid_arg "Schedule.build: watchers_per_channel must be >= witness_size";
  let items = Array.of_list proposal in
  let k = Array.length items in
  if k = 0 then raise (Divergence "empty proposal");
  let scratch = match scratch with Some s -> s | None -> make_scratch () in
  if Array.length scratch.stamps < n then begin
    (* Regrow without resetting [gen]: stale indexes into the old arrays
       must stay stale forever. *)
    scratch.stamps <- Array.make n 0;
    scratch.role_data <- Array.make n 0
  end;
  scratch.gen <- scratch.gen + 1;
  let used = scratch.stamps in
  let roles = scratch.role_data in
  let gen = scratch.gen in
  (* radio-lint: allow partial-array-unsafe — v < n guarded on the same line *)
  let is_used v = v < n && Array.unsafe_get used v = gen in
  let claim v role =
    if is_used v then raise (Divergence (Printf.sprintf "node %d claimed twice" v));
    if v >= 0 && v < n then begin
      (* radio-lint: allow partial-array-unsafe — 0 <= v < n guarded above *)
      Array.unsafe_set used v gen;
      (* radio-lint: allow partial-array-unsafe — same bounds as the stamp *)
      Array.unsafe_set roles v role
    end
  in
  (* Pass 1: receivers (edge destinations) and node-item broadcasters are
     forced; claim them (and record their roles) before choosing edge
     broadcasters. *)
  let receiver = Array.make k None in
  Array.iteri
    (fun c item ->
      match item with
      | Game.State.Node v -> claim v (pack ~kind:kind_broadcast ~chan:c ~rank:0)
      | Game.State.Edge (_, w) ->
        receiver.(c) <- Some w;
        claim w (pack ~kind:kind_receive ~chan:c ~rank:0))
    items;
  (* Pass 2: broadcasters.  An edge's source broadcasts itself when free;
     otherwise its first free surrogate stands in. *)
  let broadcaster = Array.make k (-1) in
  let owner = Array.make k (-1) in
  Array.iteri
    (fun c item ->
      match item with
      | Game.State.Node v ->
        broadcaster.(c) <- v;
        owner.(c) <- v
      | Game.State.Edge (v, _) ->
        owner.(c) <- v;
        if not (is_used v) then begin
          claim v (pack ~kind:kind_broadcast ~chan:c ~rank:0);
          broadcaster.(c) <- v
        end
        else begin
          let subs = surrogates v in
          let len = Array.length subs in
          let s = ref (-1) in
          let j = ref 0 in
          while !s < 0 && !j < len do
            if not (is_used subs.(!j)) then s := subs.(!j);
            incr j
          done;
          if !s < 0 then
            raise (Divergence (Printf.sprintf "no free surrogate for node %d" v));
          claim !s (pack ~kind:kind_broadcast ~chan:c ~rank:0);
          broadcaster.(c) <- !s
        end)
    items;
  (* Pass 3: watchers, in increasing id order from the uninvolved nodes.
     The first [witness_size] of each channel's watchers double as its
     witness set — shared prefix, no copy. *)
  let watchers = Array.make k [||] in
  let next_free = ref 0 in
  let take_free role =
    (* radio-lint: allow partial-array-unsafe — !next_free < n guarded on the same line *)
    while !next_free < n && Array.unsafe_get used !next_free = gen do
      incr next_free
    done;
    if !next_free >= n then raise (Divergence "not enough nodes for watchers");
    let v = !next_free in
    (* radio-lint: allow partial-array-unsafe — v < n established by the raise above *)
    Array.unsafe_set used v gen;
    (* radio-lint: allow partial-array-unsafe — same bounds as the stamp *)
    Array.unsafe_set roles v role;
    v
  in
  for c = 0 to k - 1 do
    let ws = Array.make watchers_per_channel 0 in
    for i = 0 to watchers_per_channel - 1 do
      ws.(i) <- take_free (pack ~kind:kind_watch ~chan:c ~rank:i)
    done;
    watchers.(c) <- ws
  done;
  { items; broadcaster; owner; receiver; watchers; witness_size;
    index = { src = scratch; built_gen = gen } }

type role =
  | Broadcast of { channel : int; owner : int }
  | Receive of { channel : int; edge : int * int }
  | Watch of { channel : int }
  | Off

(* [Array.exists (fun w -> w = id)] without the per-call closure, limited to
   the first [len] entries. *)
let mem_prefix arr (id : int) len =
  (* radio-lint: allow partial-array-unsafe — i < len <= length by the callers *)
  let rec go i = i < len && (Array.unsafe_get arr i = id || go (i + 1)) in
  go 0

let mem_int arr id = mem_prefix arr id (Array.length arr)

(* The retained O(k * watchers) scans: the semantic reference for the
   indexed lookups (QCheck-pinned), and the fallback once a later build on
   the same scratch has invalidated this schedule's index. *)
let role_of_scan t id =
  let k = Array.length t.items in
  let rec scan c =
    if c >= k then Off
    else if t.broadcaster.(c) = id then Broadcast { channel = c; owner = t.owner.(c) }
    else if t.receiver.(c) = Some id then
      (match t.items.(c) with
       | Game.State.Edge e -> Receive { channel = c; edge = e }
       (* [build] only assigns a receiver on Edge channels, so this arm is
          unreachable by construction; crashing loudly beats
          mis-scheduling silently. *)
       (* radio-lint: allow partial-assert-false *)
       | Game.State.Node _ -> assert false)
    else if mem_int t.watchers.(c) id then Watch { channel = c }
    else scan (c + 1)
  in
  scan 0

let witness_channel_scan t id =
  let k = Array.length t.items in
  let rec scan c =
    if c >= k then None
    else if mem_prefix t.watchers.(c) id t.witness_size then Some c
    else scan (c + 1)
  in
  scan 0

let[@inline] index_live t =
  let ix = t.index in
  ix.src.gen = ix.built_gen

let[@inline] stamped t id =
  let ix = t.index in
  let stamps = ix.src.stamps in
  id >= 0 && id < Array.length stamps
  (* radio-lint: allow partial-array-unsafe — bounds guarded on the previous line *)
  && Array.unsafe_get stamps id = ix.built_gen

let role_of t id =
  if index_live t then
    if not (stamped t id) then Off
    else begin
      let d = t.index.src.role_data.(id) in
      let chan = packed_chan d in
      match packed_kind d with
      | 0 -> Broadcast { channel = chan; owner = t.owner.(chan) }
      | 1 ->
        (match t.items.(chan) with
         | Game.State.Edge e -> Receive { channel = chan; edge = e }
         (* receive roles are only recorded on Edge channels *)
         (* radio-lint: allow partial-assert-false *)
         | Game.State.Node _ -> assert false)
      | _ -> Watch { channel = chan }
    end
  else role_of_scan t id

let witness_channel t id =
  if index_live t then
    if not (stamped t id) then None
    else begin
      let d = t.index.src.role_data.(id) in
      if packed_kind d = kind_watch && packed_rank d < t.witness_size then
        Some (packed_chan d)
      else None
    end
  else witness_channel_scan t id

let witness_sets t =
  Array.map (fun ws -> Array.sub ws 0 t.witness_size) t.watchers

let oracle_entry t =
  (* Both lists in one backward loop — iterative, so proposals of any size
     (k >= 1e5) cannot overflow the stack. *)
  let k = Array.length t.items in
  let chans = ref [] in
  let kinds = ref [] in
  for c = k - 1 downto 0 do
    let kind =
      match t.items.(c) with
      | Game.State.Node v -> Oracle.Node_item v
      | Game.State.Edge e -> Oracle.Edge_item e
    in
    chans := c :: !chans;
    kinds := (c, kind) :: !kinds
  done;
  { Oracle.channels_in_use = !chans; kinds = !kinds }
