(** The purely randomized, unauthenticated exchange protocol that Theorem 2
    dooms — plus the simulating adversary from the theorem's proof.

    Each source broadcasts its message on a uniformly random channel every
    round; each destination listens on a uniformly random channel and
    outputs the first frame claiming its pair.  The {!simulating_adversary}
    mirrors each source's distribution with a fake payload; to the
    destination the two are statistically indistinguishable, so about half
    of all outputs are fake — experiment E7 measures this and contrasts it
    with f-AME's zero spoof rate on the same workload. *)

type verdict = Genuine | Fooled | Nothing

type outcome = {
  engine : Radio.Engine.result;
  verdicts : ((int * int) * verdict) list;  (** per pair, sorted *)
  fooled : int;
  genuine : int;
  nothing : int;
}

val fake_body : int * int -> string
(** The adversary's substitute payload for a pair (distinct from any honest
    payload by construction). *)

val simulating_adversary : Prng.Rng.t -> pairs:(int * int) list -> channels:int -> budget:int -> Radio.Adversary.t
(** For each of the first [budget] pairs, transmits the fake payload on an
    independently uniform channel each round (duplicate channel picks
    collapse to one strike, mirroring collisions among honest picks). *)

val run :
  rounds:int ->
  cfg:Radio.Config.t ->
  pairs:(int * int) list ->
  messages:(int * int -> string) ->
  adversary:Radio.Adversary.t ->
  unit ->
  outcome
(** Runs the naive protocol for exactly [rounds] rounds. *)
