(** Deterministic channel assignment for one f-AME message-transmission
    round (Section 5.4).

    Given the game proposal P (item i goes on channel i), the builder
    assigns: a broadcaster per channel (the node itself for node items; the
    source, or one of its recorded surrogates when the source is otherwise
    busy, for edge items); the destination of each edge item as the
    channel's receiver; and [watchers_per_channel] uninvolved listeners per
    used channel, the first [witness_size] of whom form the witness set
    W[c] for the following communication-feedback call (a shared prefix of
    the watcher array — no per-channel copy is made).

    The construction is a pure function of its arguments, so all nodes
    compute the identical schedule from identical game state (Invariant 1).

    Alongside the per-channel arrays, {!build} records a flat node->role
    table in its scratch in the same claiming passes (O(n + k*w) total), so
    {!role_of} and {!witness_channel} are O(1) lookups instead of
    O(k*watchers) scans per node per move.  The table is generation-stamped:
    it stays valid until a later build reuses the same scratch, after which
    the lookups silently fall back to the retained scans
    ({!role_of_scan} / {!witness_channel_scan}), which also serve as the
    QCheck reference oracle. *)

exception Divergence of string
(** Raised when no legal assignment exists (e.g. a starred source has no
    free surrogate).  Under the paper's parameter assumptions this can only
    happen after a low-probability feedback failure has desynchronized the
    nodes' game states; runners treat it as a whp-failure event. *)

type scratch
(** Reusable claimed-node workspace for {!build}: generation-stamped int
    arrays (claim stamps + the packed role table), grown on demand, so
    consecutive builds cost O(proposal) instead of an O(n) allocation +
    clear each.  A scratch must not be shared by builds that can overlap —
    use one per concurrent runner (fibers of one engine run interleave on a
    single domain and never overlap, so one scratch per protocol run is
    safe). *)

val make_scratch : unit -> scratch

type index
(** A schedule's view into its scratch's node->role table; consulted by
    {!role_of} / {!witness_channel} while still generation-current. *)

type t = {
  items : Game.State.item array;  (** index = channel *)
  broadcaster : int array;  (** per used channel *)
  owner : int array;  (** whose vector each channel carries *)
  receiver : int option array;  (** edge destination, per used channel *)
  watchers : int array array;  (** per used channel, sorted ids *)
  witness_size : int;  (** W[c] = first [witness_size] watchers of channel c *)
  index : index;
}

val build :
  ?scratch:scratch ->
  proposal:Game.State.item list ->
  surrogates:(int -> int array) ->
  n:int ->
  witness_size:int ->
  watchers_per_channel:int ->
  unit ->
  t
(** [surrogates v] must list, in deterministic order, the nodes known to
    hold v's message vector (the watchers of the round in which v was
    starred).  [witness_size] is C, the total channel count: each witness
    set W[c] must be able to occupy every channel during feedback, so
    [watchers_per_channel >= witness_size] is required.  Passing [?scratch]
    reuses the claimed-node workspace across builds; the result is
    identical either way. *)

type role =
  | Broadcast of { channel : int; owner : int }
  | Receive of { channel : int; edge : int * int }
  | Watch of { channel : int }
  | Off
      (** not scheduled this round (idles during the message round) *)

val role_of : t -> int -> role
(** O(1) via the inverted index while it is generation-current (always the
    case between a build and the next build on the same scratch); falls
    back to {!role_of_scan} afterwards.  Both paths return identical
    results. *)

val witness_channel : t -> int -> int option
(** The channel this node is a feedback witness for, if any.  Same O(1) /
    fallback structure as {!role_of}. *)

val role_of_scan : t -> int -> role
(** The retained linear-scan implementation: the reference oracle for
    {!role_of} and its fallback once the index is stale. *)

val witness_channel_scan : t -> int -> int option
(** Scan-based reference for {!witness_channel}. *)

val witness_sets : t -> int array array
(** Materialized copies of the witness prefixes (fresh arrays), for tests
    and diagnostics; protocol code should index the shared
    [watchers]/[witness_size] prefix instead. *)

val oracle_entry : t -> Oracle.entry
(** Iterative (stack-safe at any proposal size). *)
