(** Deterministic channel assignment for one f-AME message-transmission
    round (Section 5.4).

    Given the game proposal P (item i goes on channel i), the builder
    assigns: a broadcaster per channel (the node itself for node items; the
    source, or one of its recorded surrogates when the source is otherwise
    busy, for edge items); the destination of each edge item as the
    channel's receiver; and [watchers_per_channel] uninvolved listeners per
    used channel, the first C of whom form the witness set W[c] for the
    following communication-feedback call.

    The construction is a pure function of its arguments, so all nodes
    compute the identical schedule from identical game state (Invariant 1). *)

exception Divergence of string
(** Raised when no legal assignment exists (e.g. a starred source has no
    free surrogate).  Under the paper's parameter assumptions this can only
    happen after a low-probability feedback failure has desynchronized the
    nodes' game states; runners treat it as a whp-failure event. *)

type t = {
  items : Game.State.item array;  (** index = channel *)
  broadcaster : int array;  (** per used channel *)
  owner : int array;  (** whose vector each channel carries *)
  receiver : int option array;  (** edge destination, per used channel *)
  watchers : int array array;  (** per used channel, sorted ids *)
  witnesses : int array array;  (** per used channel: first C watchers = W[c] *)
}

type scratch
(** Reusable claimed-node workspace for {!build}: a generation-stamped int
    array, grown on demand, so consecutive builds cost O(proposal) instead
    of an O(n) allocation + clear each.  A scratch must not be shared by
    builds that can overlap — use one per concurrent runner (fibers of one
    engine run interleave on a single domain and never overlap, so one
    scratch per protocol run is safe). *)

val make_scratch : unit -> scratch

val build :
  ?scratch:scratch ->
  proposal:Game.State.item list ->
  surrogates:(int -> int list) ->
  n:int ->
  witness_size:int ->
  watchers_per_channel:int ->
  unit ->
  t
(** [surrogates v] must list, in deterministic order, the nodes known to
    hold v's message vector (the watchers of the round in which v was
    starred).  [witness_size] is C, the total channel count: each witness
    set W[c] must be able to occupy every channel during feedback, so
    [watchers_per_channel >= witness_size] is required.  Passing [?scratch]
    reuses the claimed-node workspace across builds; the result is
    identical either way. *)

type role =
  | Broadcast of { channel : int; owner : int }
  | Receive of { channel : int; edge : int * int }
  | Watch of { channel : int }
  | Off
      (** not scheduled this round (idles during the message round) *)

val role_of : t -> int -> role

val witness_channel : t -> int -> int option
(** The channel this node is a feedback witness for, if any. *)

val oracle_entry : t -> Oracle.entry
