type calendar = {
  epoch_rounds : int;
  epochs : ((int * int) * int * int) array;
}

let log2 x = log x /. log 2.0

let out_edges_of pairs v =
  List.sort Int.compare (List.filter_map (fun (x, w) -> if x = v then Some w else None) pairs)

let owners_of pairs =
  List.sort_uniq Int.compare (List.map fst pairs)

let make_calendar ?(gossip_beta = 3.0) ~pairs ~budget ~n () =
  let t1 = float_of_int (budget + 1) in
  let epoch_rounds =
    max 1 (int_of_float (ceil (gossip_beta *. t1 *. t1 *. log2 (float_of_int (max n 4)))))
  in
  let epochs =
    List.concat_map
      (fun v ->
        let dests = out_edges_of pairs v in
        let k = List.length dests in
        List.mapi (fun i w -> ((v, w), i, k)) dests)
      (owners_of pairs)
  in
  { epoch_rounds; epochs = Array.of_list epochs }

let epoch_of_round cal round =
  let e = round / cal.epoch_rounds in
  if e >= 0 && e < Array.length cal.epochs then Some cal.epochs.(e) else None

let encode_chain bodies =
  let buf = Buffer.create 64 in
  List.iter
    (fun b ->
      Buffer.add_string buf (string_of_int (String.length b));
      Buffer.add_char buf ':';
      Buffer.add_string buf b)
    bodies;
  Buffer.contents buf

let hash_chain bodies = Crypto.Sha256.digest ("H1|" ^ encode_chain bodies)

let vector_signature bodies = Crypto.Sha256.digest ("H2|" ^ encode_chain bodies)

let chain_spoofer rng cal ~channels ~budget =
  let counter = ref 0 in
  { Radio.Adversary.name = "chain-spoofer";
    act =
      (fun ~round ->
        match epoch_of_round cal round with
        | None -> []
        | Some ((v, _), index, _) ->
          let arr = Array.init channels Fun.id in
          Prng.Rng.shuffle rng arr;
          List.init (min budget channels) (fun i ->
              incr counter;
              let body = Printf.sprintf "SPOOF-%d" !counter in
              { Radio.Adversary.chan = arr.(i);
                spoof =
                  Some
                    (Radio.Frame.Chain
                       { owner = v; index; body; recon_hash = hash_chain [ body ] }) }));
    observe = (fun _ -> ()); observes = false }

type outcome = {
  gossip_engine : Radio.Engine.result;
  fame : Fame.outcome;
  delivered : ((int * int) * string) list;
  failed : (int * int) list;
  reconstruction_failures : int;
  max_honest_payload : int;
}

(* Phase B: backwards decoration.  Candidates per level are (body, hash)
   pairs; a chain survives level i when its head's hash equals
   hash_chain of the whole remaining chain. *)
let reconstruct ~levels =
  let k = Array.length levels in
  if k = 0 then []
  else begin
    let suffixes = ref [] in
    for i = k - 1 downto 0 do
      let extend (body, hash) =
        if i = k - 1 then if hash = hash_chain [ body ] then Some [ body ] else None
        else
          List.find_map
            (fun suffix ->
              if hash = hash_chain (body :: suffix) then Some (body :: suffix) else None)
            !suffixes
      in
      suffixes := List.filter_map extend levels.(i)
    done;
    !suffixes
  end

let run ?(ame_params = Params.default) ?gossip_beta ?(candidate_cap = 256) ~cfg ~pairs
    ~messages ~gossip_adversary ~fame_adversary () =
  let channels = cfg.Radio.Config.channels in
  let budget = cfg.Radio.Config.t in
  let n = cfg.Radio.Config.n in
  let cal = make_calendar ?gossip_beta ~pairs ~budget ~n () in
  let total_rounds = Array.length cal.epochs * cal.epoch_rounds in
  (* Per-node candidate store: (owner, level) -> (body, hash) list. *)
  let cands = Array.init n (fun _ -> Hashtbl.create 64) in
  let node_body (ctx : Radio.Engine.ctx) =
    let id = ctx.id in
    let my_dests = out_edges_of pairs id in
    let my_bodies = List.map (fun w -> messages (id, w)) my_dests in
    for round = 0 to total_rounds - 1 do
      match epoch_of_round cal round with
      | None -> Radio.Engine.idle ()
      | Some ((v, _), index, _) ->
        if v = id then begin
          (* My epoch: broadcast m_id,index with the reconstruction hash of
             the chain from index to the end. *)
          let rec drop i = function [] -> [] | _ :: tl when i > 0 -> drop (i - 1) tl | l -> l in
          (match drop index my_bodies with
           | body :: _ as tail ->
             let frame =
               Radio.Frame.Chain { owner = id; index; body; recon_hash = hash_chain tail }
             in
             Radio.Engine.transmit ~chan:(Prng.Rng.int ctx.rng channels) frame
           | [] ->
             (* Calendar epoch beyond my out-degree: nothing to send. *)
             Radio.Engine.idle ())
        end
        else begin
          match Radio.Engine.listen ~chan:(Prng.Rng.int ctx.rng channels) with
          | Some (Radio.Frame.Chain { owner; index; body; recon_hash }) ->
            let key = (owner, index) in
            let existing = Option.value (Hashtbl.find_opt cands.(id) key) ~default:[] in
            if
              List.length existing < candidate_cap
              && not (List.mem (body, recon_hash) existing)
            then Hashtbl.replace cands.(id) key ((body, recon_hash) :: existing)
          | Some _ | None -> ()
        end
    done
  in
  let gossip_engine =
    Radio.Engine.run_nodes cfg ~adversary:(gossip_adversary cal) node_body
  in
  (* Phase C: f-AME over constant-size vector signatures. *)
  let signature_of v =
    vector_signature (List.map (fun w -> messages (v, w)) (out_edges_of pairs v))
  in
  let fame =
    Fame.run ~ame_params ~cfg ~pairs
      ~messages:(fun (v, _) -> signature_of v)
      ~vector_for:(fun v -> [ (-1, signature_of v) ])
      ~adversary:fame_adversary ()
  in
  (* Destination-side reconstruction: match the authenticated signature
     against locally rebuilt chains. *)
  let reconstruction_failures = ref 0 in
  let delivered =
    List.filter_map
      (fun ((v, w), sig_received) ->
        let k = List.length (out_edges_of pairs v) in
        let levels =
          Array.init k (fun i -> Option.value (Hashtbl.find_opt cands.(w) (v, i)) ~default:[])
        in
        let chains = reconstruct ~levels in
        match List.find_opt (fun chain -> vector_signature chain = sig_received) chains with
        | Some chain ->
          let index =
            let dests = out_edges_of pairs v in
            let rec find i = function
              | [] -> -1
              | d :: _ when d = w -> i
              | _ :: tl -> find (i + 1) tl
            in
            find 0 dests
          in
          (match if index < 0 then None else List.nth_opt chain index with
           | Some body -> Some ((v, w), body)
           | None ->
             incr reconstruction_failures;
             None)
        | None ->
          incr reconstruction_failures;
          None)
      fame.Fame.delivered
  in
  let delivered =
    List.sort
      (fun (p, x) (q, y) ->
        let c = Rgraph.Digraph.edge_compare p q in
        if c <> 0 then c else String.compare x y)
      delivered
  in
  let failed =
    List.sort Rgraph.Digraph.edge_compare
      (List.filter (fun pair -> not (List.mem_assoc pair delivered)) pairs)
  in
  { gossip_engine; fame; delivered; failed;
    reconstruction_failures = !reconstruction_failures;
    max_honest_payload =
      max gossip_engine.Radio.Engine.stats.Radio.Transcript.Stats.max_payload
        fame.Fame.engine.Radio.Engine.stats.Radio.Transcript.Stats.max_payload }
