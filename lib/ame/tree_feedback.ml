let is_power_of_two x = x > 0 && x land (x - 1) = 0

let levels_of groups =
  let rec go acc x = if x <= 1 then acc else go (acc + 1) (x / 2) in
  go 0 groups

let rounds_consumed ~groups ~reps = ((2 * levels_of groups) + 2) * reps

(* Rank of the pair {lower, lower + 2^l} among level-l pairs: delete bit l
   from [lower]. *)
let pair_index ~level lower =
  ((lower lsr (level + 1)) lsl level) lor (lower land ((1 lsl level) - 1))

let run ~my_id ~rng ~channels ~budget ~reps ~witnesses ~witness_size ~my_flag =
  let groups = Array.length witnesses in
  if not (is_power_of_two groups) then
    invalid_arg "Tree_feedback.run: group count must be a power of two";
  if groups / 2 * budget > channels then
    invalid_arg "Tree_feedback.run: not enough channels for pair blocks";
  if witness_size <> budget + 1 then
    invalid_arg "Tree_feedback.run: witness groups must have t+1 members";
  Array.iter
    (fun g ->
      if Array.length g < witness_size then
        invalid_arg "Tree_feedback.run: witness groups must have t+1 members")
    witnesses;
  (* My group and member index, if I am a witness: the group is the first
     [witness_size] entries of each watcher array (shared prefix, no
     copy). *)
  let my_group = ref None in
  Array.iteri
    (fun c group ->
      for m = 0 to witness_size - 1 do
        if group.(m) = my_id then my_group := Some (c, m)
      done)
    witnesses;
  (* Accumulated knowledge: proposal channel -> success flag. *)
  let known : (int, bool) Hashtbl.t = Hashtbl.create 8 in
  (match !my_group with
   | Some (c, _) -> Hashtbl.replace known c my_flag
   | None -> ());
  let absorb = function
    | Some (Radio.Frame.Feedback_set flags) ->
      List.iter
        (fun (chan, flag) ->
          if chan >= 0 && chan < groups && not (Hashtbl.mem known chan) then
            Hashtbl.replace known chan flag)
        flags
    | Some _ | None -> ()
  in
  let my_set () = Radio.Frame.Feedback_set (Det.bindings known) in
  let group_size = budget + 1 in
  (* Merge levels: two directions each (even sub-phase: lower half sends).
     Non-witnesses idle through the whole merge — one parked suspension
     instead of a round-by-round idle loop. *)
  (match !my_group with
   | None -> Radio.Engine.idle_for (levels_of groups * 2 * reps)
   | Some (c, m) ->
     for level = 0 to levels_of groups - 1 do
       for direction = 0 to 1 do
         for r = 0 to reps - 1 do
           let partner = c lxor (1 lsl level) in
           let lower = min c partner in
           let block = pair_index ~level lower * budget in
           let my_side_sends =
             if c land (1 lsl level) = 0 then direction = 0 else direction = 1
           in
           if my_side_sends then begin
             let idx = (m + r) mod group_size in
             if idx < budget then Radio.Engine.transmit ~chan:(block + idx) (my_set ())
             else Radio.Engine.idle ()
           end
           else absorb (Radio.Engine.listen ~chan:(block + Prng.Rng.int rng budget))
         done
       done
     done);
  (* Dissemination: the witness pool keeps min(C, pool) channels occupied,
     with broadcast duty rotating through the pool so that every witness
     also gets listening rounds — a witness whose merge block was
     concentratedly jammed repairs its own knowledge here, which is what
     keeps the final D agreed upon network-wide. *)
  let pool_rank =
    match !my_group with Some (c, m) -> Some ((c * group_size) + m) | None -> None
  in
  let pool_size = groups * group_size in
  (* Keep at least one group's worth of witnesses listening every round:
     with d_channels = pool_size the rotation would never give a witness a
     listening turn, and a witness whose merge block was concentratedly
     jammed could keep a partial flag set forever.  pool - (t+1) is still
     greater than t, so listeners beat the jam with constant probability. *)
  let d_channels = min channels (pool_size - (budget + 1)) in
  (* Dissemination runs longer than a merge direction: it is the only phase
     every node depends on, and rotation dilutes each witness's airtime. *)
  let d_reps = 2 * reps in
  (match pool_rank with
   | Some rank ->
     for r = 0 to d_reps - 1 do
       if (rank + r) mod pool_size < d_channels then
         Radio.Engine.transmit ~chan:((rank + r) mod pool_size) (my_set ())
       else absorb (Radio.Engine.listen ~chan:(Prng.Rng.int rng d_channels))
     done
   | None ->
     (* Non-witnesses only listen: draw the whole hop sequence from the same
        per-node stream, declare it as one listen-series, and absorb the
        results in round order — byte-identical to the per-round loop. *)
     let chans_buf = Array.make d_reps 0 in
     for r = 0 to d_reps - 1 do
       chans_buf.(r) <- Prng.Rng.int rng d_channels
     done;
     let out_buf : Radio.Frame.t option array = Array.make d_reps None in
     Radio.Engine.listen_series ~chans:chans_buf ~into:out_buf;
     for r = 0 to d_reps - 1 do
       absorb out_buf.(r)
     done);
  List.filter_map (fun (c, flag) -> if flag then Some c else None) (Det.bindings known)
