type verdict = Genuine | Fooled | Nothing

type outcome = {
  engine : Radio.Engine.result;
  verdicts : ((int * int) * verdict) list;
  fooled : int;
  genuine : int;
  nothing : int;
}

let fake_body (v, w) = Printf.sprintf "FAKE<%d,%d>" v w

let simulating_adversary rng ~pairs ~channels ~budget =
  let targets = List.filteri (fun i _ -> i < budget) pairs in
  { Radio.Adversary.name = "simulating";
    act =
      (fun ~round:_ ->
        (* One spoof per simulated pair on an independent uniform channel;
           if two picks land on the same channel only the first is kept
           (the budget is per-channel). *)
        List.fold_left
          (fun acc ((v, w) as pair) ->
            let chan = Prng.Rng.int rng channels in
            if List.exists (fun s -> s.Radio.Adversary.chan = chan) acc then acc
            else
              { Radio.Adversary.chan;
                spoof = Some (Radio.Frame.Plain { src = v; dst = w; body = fake_body pair }) }
              :: acc)
          [] targets);
    observe = (fun _ -> ()); observes = false }

let run ~rounds ~cfg ~pairs ~messages ~adversary () =
  let channels = cfg.Radio.Config.channels in
  let first_claim : (int * int, string) Hashtbl.t = Hashtbl.create 16 in
  let node_body (ctx : Radio.Engine.ctx) =
    let id = ctx.id in
    let my_sends = List.filter (fun (v, _) -> v = id) pairs in
    let my_recvs = List.filter (fun (_, w) -> w = id) pairs in
    for _ = 1 to rounds do
      match (my_sends, my_recvs) with
      | (v, w) :: _, _ ->
        (* Sources broadcast their (single) message on a random channel. *)
        let chan = Prng.Rng.int ctx.rng channels in
        Radio.Engine.transmit ~chan
          (Radio.Frame.Plain { src = v; dst = w; body = messages (v, w) })
      | [], _ :: _ ->
        let chan = Prng.Rng.int ctx.rng channels in
        (match Radio.Engine.listen ~chan with
         | Some (Radio.Frame.Plain { src; dst; body }) when dst = id ->
           if (not (Hashtbl.mem first_claim (src, dst))) && List.mem (src, dst) pairs then
             Hashtbl.replace first_claim (src, dst) body
         | Some _ | None -> ())
      | [], [] -> Radio.Engine.idle ()
    done
  in
  let engine = Radio.Engine.run_nodes cfg ~adversary node_body in
  let verdicts =
    List.map
      (fun pair ->
        match Hashtbl.find_opt first_claim pair with
        | None -> (pair, Nothing)
        | Some body -> (pair, if body = messages pair then Genuine else Fooled))
      (List.sort Rgraph.Digraph.edge_compare pairs)
  in
  let count v = List.length (List.filter (fun (_, x) -> x = v) verdicts) in
  { engine; verdicts; fooled = count Fooled; genuine = count Genuine; nothing = count Nothing }
