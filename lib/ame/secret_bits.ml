type outcome = {
  engine : Radio.Engine.result;
  agreed : int;
  overheard : int;
  breached : bool;
  sender_key : string option;
  receiver_key : string option;
}

let value_body rng =
  String.init 8 (fun _ -> Char.chr (Prng.Rng.int rng 256))

let derive values =
  if values = [] then None
  else begin
    let buf = Buffer.create 64 in
    List.iter
      (fun (round, v) ->
        Buffer.add_string buf (string_of_int round);
        Buffer.add_char buf ':';
        Buffer.add_string buf v;
        Buffer.add_char buf '|')
      values;
    Some (Crypto.Sha256.digest ("it-secret|" ^ Buffer.contents buf))
  end

let run ~rounds ~cfg ~sender ~receiver ~eavesdrop_channels ?(jam_budget = 0) () =
  let channels = cfg.Radio.Config.channels in
  let n = cfg.Radio.Config.n in
  if jam_budget > cfg.Radio.Config.t then invalid_arg "Secret_bits.run: jam_budget > t";
  if sender = receiver || sender >= n || receiver >= n then
    invalid_arg "Secret_bits.run: bad endpoints";
  (* Sender-side record of transmitted values and channels, receiver-side
     receptions. *)
  let sent : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let sender_channel_of_round : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let got : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let node_body (ctx : Radio.Engine.ctx) =
    let id = ctx.id in
    for _ = 1 to rounds do
      if id = sender then begin
        let round = Radio.Engine.current_round () in
        let body = value_body ctx.rng in
        let chan = Prng.Rng.int ctx.rng channels in
        Hashtbl.replace sent round body;
        Hashtbl.replace sender_channel_of_round round chan;
        Radio.Engine.transmit ~chan
          (Radio.Frame.Plain { src = sender; dst = receiver; body })
      end
      else if id = receiver then begin
        let round = Radio.Engine.current_round () in
        match Radio.Engine.listen ~chan:(Prng.Rng.int ctx.rng channels) with
        | Some (Radio.Frame.Plain { src; dst; body }) when src = sender && dst = receiver ->
          Hashtbl.replace got round body
        | Some _ | None -> ()
      end
      else Radio.Engine.idle ()
    done
  in
  (* The restricted eavesdropper: monitors [eavesdrop_channels] random
     channels per round; may jam a subset of those it monitors. *)
  let adv_rng = Prng.Rng.create (Int64.logxor cfg.Radio.Config.seed 0xEA5EL) in
  let monitored : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  (* Reusable permutation scratch: reset to the identity before each
     shuffle, so the RNG consumption (and hence every result) is identical
     to a freshly allocated [Array.init channels Fun.id] per round. *)
  let perm = Array.init channels Fun.id in
  let watched_count = min eavesdrop_channels channels in
  let adversary =
    { Radio.Adversary.name = "restricted-eavesdropper";
      act =
        (fun ~round ->
          for i = 0 to channels - 1 do
            (* radio-lint: allow partial-array-unsafe — perm has length channels *)
            Array.unsafe_set perm i i
          done;
          Prng.Rng.shuffle adv_rng perm;
          let rec prefix i =
            if i >= watched_count then [] else perm.(i) :: prefix (i + 1)
          in
          let watched = prefix 0 in
          Hashtbl.replace monitored round watched;
          if jam_budget = 0 then []
          else
            List.filteri (fun i _ -> i < jam_budget) watched
            |> List.map (fun chan -> { Radio.Adversary.chan; spoof = None }));
      observe = (fun _ -> ()); observes = false }
  in
  let engine = Radio.Engine.run_nodes cfg ~adversary node_body in
  (* Public reconciliation: the receiver's round indices select the agreed
     values (indices are public, contents are not).  The eavesdropper knows
     an agreed value iff the channel the sender used that round is in its
     monitored set. *)
  let agreed_rounds = Det.keys got in
  let overheard =
    List.length
      (List.filter
         (fun round ->
           match (Hashtbl.find_opt sender_channel_of_round round,
                  Hashtbl.find_opt monitored round) with
           | Some chan, Some watched -> List.mem chan watched
           | _ -> false)
         agreed_rounds)
  in
  let agreed = List.length agreed_rounds in
  let receiver_values = List.map (fun r -> (r, Hashtbl.find got r)) agreed_rounds in
  let sender_values =
    List.filter_map
      (fun r -> Option.map (fun v -> (r, v)) (Hashtbl.find_opt sent r))
      agreed_rounds
  in
  { engine; agreed; overheard;
    breached = agreed > 0 && overheard = agreed;
    sender_key = derive sender_values;
    receiver_key = derive receiver_values }
