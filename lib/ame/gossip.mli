(** Oblivious multi-channel gossip: the related-work baseline ([13],
    Dolev-Gilbert-Guerraoui-Newport, DISC 2007).

    Every node holds a rumor; in each round it picks a uniformly random
    channel and, with probability 1/2, transmits its set of known rumors,
    otherwise listens.  The protocol is oblivious (decisions never depend on
    history) and unauthenticated: received rumors are taken at face value,
    so a spoofing adversary can plant fake rumors — one of the two reasons
    the paper rejects gossip for AME (the other being running time,
    which experiment E10 measures). *)

type outcome = {
  engine : Radio.Engine.result;
  rounds_to_completion : int option;
      (** first round after which all but t nodes knew all but t rumors;
          None if the bound was never reached within [max_rounds] *)
  coverage : int array;  (** rumors known per node at the end *)
  fake_rumors_accepted : int;
      (** rumor slots holding an adversarial payload at the end *)
}

val run :
  ?max_rounds:int ->
  cfg:Radio.Config.t ->
  rumors:(int -> string) ->
  adversary:Radio.Adversary.t ->
  unit ->
  outcome
(** [rumors i] is node i's initial rumor.  Runs until the all-but-t
    completion condition holds or [max_rounds] (default 200_000) elapse. *)
