(** f-AME: fast Authenticated Message Exchange (Section 5.4).

    A distributed simulation of the (G, t)-starred-edge removal game over
    the radio engine.  Each game move costs one message-transmission round
    plus one communication-feedback invocation; greedy play plus the graph
    equivalence invariant give t-disruptability in O(|E| t^2 log n) rounds
    when C = t+1, and O(|E| log n) when C = 2t (Section 5.5, case 1) — the
    same code runs both regimes, with proposal size = channels used.

    Guarantees measured by the experiments (Definition 1):
    - authentication: destinations only ever output genuinely-sent payloads;
    - sender awareness: each source learns exactly which of its messages
      were delivered;
    - t-disruptability: the failed-pair graph has vertex cover <= t.

    All of these hold with high probability; the runner reports the
    low-probability desynchronization events explicitly ({!field-diverged}). *)

type outcome = {
  engine : Radio.Engine.result;
  delivered : ((int * int) * string) list;
      (** pairs whose destination output a message, with that payload;
          sorted *)
  confirmed : (int * int) list;
      (** pairs whose source believes the exchange succeeded (sender
          awareness); sorted *)
  failed : (int * int) list;  (** pairs that output fail; sorted *)
  disruption_vc : int option;
      (** exact minimum vertex cover of the failed-pair graph, when small
          enough to decide (<= 64 failed pairs) *)
  diverged : bool;
      (** true if any whp event failed and the nodes' game states
          desynchronized *)
  moves : int;  (** game moves simulated *)
}

type feedback_mode =
  | Sequential
      (** Figure 1's per-channel feedback: O(t^2 log n) per move at C = t+1,
          O(t log n) at C = 2t. *)
  | Tree
      (** Section 5.5 case 2 (C >= 2t^2): hypercube merge of witness
          knowledge, O(log C' log n) per move.  Requires [channels_used] to
          be a power of two with (channels_used / 2) * t <= C. *)

type corruption =
  | Forge_as_surrogate  (** forge relayed vectors only *)
  | Lie_as_witness  (** invert feedback flags only *)
  | Full  (** both (default) *)

val run :
  ?ame_params:Params.t ->
  ?channels_used:int ->
  ?feedback_mode:feedback_mode ->
  ?vector_for:(int -> (int * string) list) ->
  ?corrupted:int list ->
  ?corruption:corruption ->
  cfg:Radio.Config.t ->
  pairs:(int * int) list ->
  messages:(int * int -> string) ->
  adversary:(Oracle.t -> Radio.Adversary.t) ->
  unit ->
  outcome
(** [run ~cfg ~pairs ~messages ~adversary ()] executes f-AME for the
    exchange set [pairs], where [messages (v, w)] is m_v,w.

    [channels_used] (default [cfg.channels]) is the game's proposal size;
    set it below [cfg.channels] to reproduce the larger-C regimes.
    [vector_for] overrides the vector payload a node broadcasts for an owner
    (the Section 5.6 optimization passes a constant-size digest); entries
    keyed [-1] are delivered to any destination.  [adversary] receives the
    schedule oracle so protocol-aware attacks can be expressed.

    [corrupted] models the Byzantine-corruption question of Section 8: the
    listed nodes follow the schedule (so honest nodes cannot detect them)
    but (a) forge the vector whenever they broadcast {e as surrogates} for
    another owner, and (b) invert their flag when serving {e as feedback
    witnesses}.  Attack (a) breaks f-AME's authentication — exactly why the
    paper's Byzantine sketch eliminates surrogates (see {!Direct}, which is
    immune because every message is received from its own source); attack
    (b) makes witnesses of one channel contradict each other, so listeners
    can disagree on the referee's response — the agreement failure behind
    the paper leaving Byzantine t-disruptability open.  Experiment E13
    measures both.

    Raises [Invalid_argument] if [cfg.n] is too small for the witness
    schedule (see {!Params.nodes_required}). *)

val default_vector : messages:(int * int -> string) -> pairs:(int * int) list -> int -> (int * string) list
(** The unoptimized vector m_v,*: all of v's outgoing payloads. *)
