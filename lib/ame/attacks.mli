(** Protocol-aware adversary strategies against AME protocols.

    Each constructor takes the schedule {!Oracle} so the strategy can aim at
    the deterministic part of the schedule — exactly the power the paper's
    adversary has.  None of them sees honest random choices. *)

type preference = Prefer_edges | Prefer_nodes | Any
(** Which proposal items to jam first during message-transmission rounds. *)

val schedule_jammer :
  Oracle.t -> channels:int -> budget:int -> prefer:preference -> Radio.Adversary.t
(** Jams up to [budget] in-use channels of every posted message round,
    ordered by [prefer]; jams channels 0..budget-1 in all other (feedback)
    rounds. *)

val triangle_jammer :
  Oracle.t -> channels:int -> budget:int -> triple_of:(int -> int option) -> Radio.Adversary.t
(** The Section 5 lower-bound adversary against direct exchange: jams any
    channel carrying an edge whose two endpoints belong to the same triple
    ([triple_of] maps a node to its triple index).  With t disjoint triples
    it keeps all intra-triple edges undelivered, forcing a disruption graph
    with vertex cover 2t against surrogate-free protocols. *)

val feedback_suppressor : Oracle.t -> channels:int -> budget:int -> Prng.Rng.t -> Radio.Adversary.t
(** Ignores message rounds entirely and jams [budget] random channels during
    feedback rounds only: stresses Lemma 5's agreement property (E5). *)
