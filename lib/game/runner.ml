type outcome = {
  moves : int;
  stars : int;
  edges_removed : int;
  final : State.t;
  won : bool;
}

exception Rule_violation of string

let subset_of response proposal =
  List.for_all (fun item -> List.exists (fun p -> State.item_compare item p = 0) proposal) response

let play ?max_moves st (referee : Referee.t) =
  let initial_edges = Rgraph.Digraph.Dense.edge_count st.State.graph in
  let limit =
    Option.value max_moves
      ~default:
        ((10 * initial_edges) + (10 * Rgraph.Digraph.Dense.vertex_count st.State.graph) + 10)
  in
  let rec loop st moves =
    if moves > limit then raise (Rule_violation "game exceeded move limit: non-termination bug");
    match Greedy.proposal st with
    | None -> (st, moves)
    | Some proposal ->
      (match State.check_proposal st proposal with
       | Error msg -> raise (Rule_violation ("player: " ^ msg))
       | Ok () ->
         let response = referee.Referee.choose st proposal in
         if response = [] then raise (Rule_violation "referee: empty response");
         if not (subset_of response proposal) then
           raise (Rule_violation "referee: response not a subset of the proposal");
         loop (State.apply st response) (moves + 1))
  in
  let final, moves = loop st 0 in
  { moves;
    stars = List.length final.State.starred;
    edges_removed = initial_edges - Rgraph.Digraph.Dense.edge_count final.State.graph;
    final;
    won = State.won final }
