(** Referee strategies for the starred-edge removal game.

    The referee must answer every proposal with a non-empty subset; in the
    base game it may return as little as one item (the radio analogue: the
    adversary disrupts t of the t+1 channels).  In the C >= 2t variants the
    referee must return at least [proposal_size - t] items. *)

type t = {
  name : string;
  choose : State.t -> State.item list -> State.item list;
      (** [choose state proposal] returns a non-empty subset. *)
}

val generous : t
(** Returns the whole proposal (an interference-free network). *)

val minimal_first : t
(** Returns exactly the smallest item: the deterministic worst case for the
    move-count bound of Theorem 4. *)

val stingy : min_return:int -> t
(** Returns the first [min_return] items: models the C >= 2t referee that
    must concede proposal_size - t items per move. *)

val random : Prng.Rng.t -> min_return:int -> t
(** Returns a uniformly random subset of size exactly [min_return]. *)

val spiteful : min_return:int -> t
(** Prefers returning nodes (stars) over edges, delaying edge removal as
    long as the rules allow: the strategy that maximizes total moves under
    greedy play. *)
