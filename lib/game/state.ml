type item = Node of int | Edge of (int * int)

type t = {
  graph : Rgraph.Digraph.Dense.t;
  starred : int list;  (* sorted; the external view of starred_bits *)
  starred_bits : Rgraph.Bitset.t;
  budget : int;
  min_proposal : int;
  max_proposal : int;
  universe : Rgraph.Bitset.t;  (* V: the node set fixed at game creation *)
}

let create_dense ?proposal_size ?min_proposal graph ~t =
  let max_proposal = Option.value proposal_size ~default:(t + 1) in
  let min_proposal = Option.value min_proposal ~default:(min (t + 1) max_proposal) in
  if min_proposal < 1 || max_proposal < min_proposal then
    invalid_arg "State.create: need 1 <= min_proposal <= max_proposal";
  let n = Rgraph.Digraph.Dense.universe graph in
  let universe = Rgraph.Bitset.create n in
  List.iter (Rgraph.Bitset.set universe) (Rgraph.Digraph.Dense.vertices graph);
  { graph; starred = []; starred_bits = Rgraph.Bitset.create n; budget = t;
    min_proposal; max_proposal; universe }

let create ?proposal_size ?min_proposal graph ~t =
  create_dense ?proposal_size ?min_proposal (Rgraph.Digraph.Dense.of_sparse graph) ~t

let is_starred t v = Rgraph.Bitset.mem t.starred_bits v

let item_compare a b =
  match (a, b) with
  | Node x, Node y -> Int.compare x y
  | Node _, Edge _ -> -1
  | Edge _, Node _ -> 1
  | Edge e1, Edge e2 -> Rgraph.Digraph.edge_compare e1 e2

let pp_item fmt = function
  | Node v -> Format.fprintf fmt "node %d" v
  | Edge (v, w) -> Format.fprintf fmt "edge (%d,%d)" v w

let check_proposal t items =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let len = List.length items in
  if len < t.min_proposal || len > t.max_proposal then
    fail "restriction 1: proposal has %d items, want %d..%d" len t.min_proposal t.max_proposal
  else begin
    let nodes = List.filter_map (function Node v -> Some v | Edge _ -> None) items in
    let edges = List.filter_map (function Edge e -> Some e | Node _ -> None) items in
    let bad_node = List.find_opt (fun v -> not (Rgraph.Bitset.mem t.universe v)) nodes in
    let bad_edge =
      List.find_opt (fun e -> not (Rgraph.Digraph.Dense.mem_edge t.graph e)) edges
    in
    match (bad_node, bad_edge) with
    | Some v, _ -> fail "restriction 1: node %d not in V" v
    | _, Some (v, w) -> fail "restriction 1: edge (%d,%d) not in E" v w
    | None, None ->
      let sorted_nodes = List.sort Int.compare nodes in
      let rec has_dup = function
        | a :: (b :: _ as rest) -> a = b || has_dup rest
        | _ -> false
      in
      if has_dup sorted_nodes then fail "restriction 2: duplicate node"
      else if
        List.exists
          (fun v -> List.exists (fun (s, d) -> s = v || d = v) edges)
          nodes
      then fail "restriction 2: a proposed node appears in a proposed edge"
      else begin
        let dests = List.sort Int.compare (List.map snd edges) in
        if has_dup dests then fail "restriction 3: two edges share a destination"
        else begin
          let shared_unstarred_source =
            let sources = List.sort Int.compare (List.map fst edges) in
            let rec find = function
              | a :: (b :: _ as rest) ->
                if a = b && not (is_starred t a) then Some a else find rest
              | _ -> None
            in
            find sources
          in
          match shared_unstarred_source with
          | Some v -> fail "restriction 4: edges share unstarred source %d" v
          | None -> Ok ()
        end
      end
  end

(* [starred] is kept sorted (see [apply]), so insertion preserves exactly
   what [List.sort compare (v :: starred)] used to produce. *)
let rec insert_sorted (v : int) = function
  | [] -> [ v ]
  | x :: tl as l -> if v < x then v :: l else if v = x then l else x :: insert_sorted v tl

let apply t chosen =
  if chosen = [] then invalid_arg "State.apply: referee response must be non-empty";
  (* Accumulate all updates, then copy the record once. *)
  let starred = ref t.starred and bits = ref t.starred_bits and graph = ref t.graph in
  List.iter
    (fun item ->
      match item with
      | Node v ->
        starred := insert_sorted v !starred;
        bits := Rgraph.Bitset.add !bits v
      | Edge e -> graph := Rgraph.Digraph.Dense.remove_edge !graph e)
    chosen;
  if !starred == t.starred && !graph == t.graph then t
  else { t with starred = !starred; starred_bits = !bits; graph = !graph }

let won t = Rgraph.Vertex_cover.at_most_dense t.graph t.budget
