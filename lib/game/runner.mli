(** Drives a full play of the starred-edge removal game: greedy player
    against a pluggable referee, validating every proposal and response
    against the rules.  Produces the move count and final state that
    experiment E4 measures against Theorem 4's O(|E|) bound. *)

type outcome = {
  moves : int;
  stars : int;  (** nodes added to S over the play *)
  edges_removed : int;
  final : State.t;
  won : bool;  (** vertex cover of the final graph <= t *)
}

exception Rule_violation of string
(** Raised if the player produces an illegal proposal or the referee an
    illegal response: either is a bug, not a game outcome. *)

val play : ?max_moves:int -> State.t -> Referee.t -> outcome
(** Greedy player vs [referee], until the greedy strategy terminates.
    [max_moves] (default 10 * |E| + 10 * |V| + 10) guards against
    non-termination bugs. *)
