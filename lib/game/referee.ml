type t = {
  name : string;
  choose : State.t -> State.item list -> State.item list;
}

let take k items = List.filteri (fun i _ -> i < k) items

let generous = { name = "generous"; choose = (fun _ proposal -> proposal) }

let minimal_first =
  { name = "minimal-first";
    choose =
      (fun _ proposal ->
        match List.sort State.item_compare proposal with
        | [] -> invalid_arg "Referee: empty proposal"
        | x :: _ -> [ x ]) }

let stingy ~min_return =
  { name = Printf.sprintf "stingy-%d" min_return;
    choose = (fun _ proposal -> take (max 1 min_return) proposal) }

let random rng ~min_return =
  { name = Printf.sprintf "random-%d" min_return;
    choose =
      (fun _ proposal ->
        let arr = Array.of_list proposal in
        Prng.Rng.shuffle rng arr;
        take (max 1 min_return) (Array.to_list arr)) }

let spiteful ~min_return =
  { name = Printf.sprintf "spiteful-%d" min_return;
    choose =
      (fun _ proposal ->
        let nodes, edges =
          List.partition (function State.Node _ -> true | State.Edge _ -> false) proposal
        in
        take (max 1 min_return) (nodes @ edges)) }
