(** The greedy-removal strategy (Section 5.2).

    With respect to the current game graph G = (V, E) and starred set S:
    - P1 = sources of E not yet starred;
    - P2 = edges of E touching no node of P1 (their sources are starred).

    The strategy proposes [proposal_size] items from P1 then
    destination-disjoint edges of P2, in sorted order, which provably
    satisfies Restrictions 1-4.  When no full proposal exists the game is
    already won: the remaining graph has a vertex cover of size <= t
    (Lemma 3), which {!proposal} reflects by returning [None].

    Construction is deterministic, so every node of a distributed simulation
    computes the identical proposal from identical state (Invariant 1 of
    Theorem 6). *)

val p1 : State.t -> int list
(** Unstarred sources, sorted. *)

val p2 : State.t -> (int * int) list
(** Edges with neither endpoint in P1, sorted. *)

val proposal : State.t -> State.item list option
(** [Some items] (a legal proposal of full size), or [None] when the greedy
    strategy has terminated. *)
