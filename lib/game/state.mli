(** State and rules of the (G, t)-starred-edge removal game (Section 5.1).

    The player proposes exactly [proposal_size] items (nodes of V or edges of
    E) subject to Restrictions 1-4; the referee answers with a non-empty
    subset; chosen nodes join the starred set S, chosen edges leave E.  The
    game is won when E's remaining graph has a vertex cover of size <= t.

    [proposal_size] is t+1 in the base game; the C >= 2t optimization of
    Section 5.5 plays the same game with larger proposals and a referee
    forced to return at least [proposal_size - t] items.

    The graph lives in the dense bitset representation
    ({!Rgraph.Digraph.Dense}): membership tests during proposal validation
    are O(1), the win check hits the memoized vertex-cover solver, and
    [apply] copies only the two adjacency rows an edge removal touches. *)

type item = Node of int | Edge of (int * int)

type t = private {
  graph : Rgraph.Digraph.Dense.t;
  starred : int list;  (** sorted *)
  starred_bits : Rgraph.Bitset.t;  (** same set as [starred], O(1) member *)
  budget : int;  (** the game's t *)
  min_proposal : int;  (** smallest legal proposal; t+1 in every regime *)
  max_proposal : int;  (** largest legal proposal; t+1 in the base game,
                           the number of used channels in the wider regimes *)
  universe : Rgraph.Bitset.t;  (** V, fixed at game creation *)
}

val create : ?proposal_size:int -> ?min_proposal:int -> Rgraph.Digraph.t -> t:int -> t
(** [create g ~t] starts a game on [g].  [proposal_size] (the maximum)
    defaults to t+1, as does [min_proposal]; the base game of Section 5.1
    therefore demands exactly t+1 items.  The C >= 2t regimes of Section
    5.5 raise the maximum to the used channel count while keeping the
    minimum at t+1, so that a tail with fewer than max-size proposals can
    still make progress (any proposal larger than t beats the adversary's
    budget). *)

val create_dense :
  ?proposal_size:int -> ?min_proposal:int -> Rgraph.Digraph.Dense.t -> t:int -> t
(** Like {!create} on an already-dense graph (no conversion). *)

val is_starred : t -> int -> bool
(** O(1). *)

val check_proposal : t -> item list -> (unit, string) result
(** Validates Restrictions 1-4:
    (1) between [min_proposal] and [max_proposal] items, nodes in V /
        edges in E;
    (2) proposed nodes appear in no proposed edge and are distinct from
        each other;
    (3) no two edges share a destination;
    (4) two edges share a source only if that source is starred. *)

val apply : t -> item list -> t
(** Apply a referee response: star the chosen nodes, delete the chosen
    edges.  The response must be a subset of a checked proposal (not
    re-validated here). *)

val won : t -> bool
(** Vertex cover of the remaining graph is at most [budget] (memoized). *)

val item_compare : item -> item -> int
(** Total order used for deterministic proposal construction. *)

val pp_item : Format.formatter -> item -> unit
