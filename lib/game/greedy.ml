module Int_set = Set.Make (Int)

let p1 (st : State.t) =
  List.filter (fun v -> not (State.is_starred st v)) (Rgraph.Digraph.sources st.graph)

let p2 (st : State.t) =
  let p1_set = Int_set.of_list (p1 st) in
  List.filter
    (fun (v, w) -> (not (Int_set.mem v p1_set)) && not (Int_set.mem w p1_set))
    (Rgraph.Digraph.edges st.graph)

let rec take_nodes k = function
  | v :: tl when k > 0 -> State.Node v :: take_nodes (k - 1) tl
  | _ -> []

let proposal (st : State.t) =
  let max_size = st.max_proposal in
  let nodes = p1 st in
  let node_items = take_nodes max_size nodes in
  let missing = max_size - List.length node_items in
  let items =
    if missing = 0 then node_items
    else begin
      (* Destination-disjoint edges from P2, in sorted order.  P2 edges touch
         no P1 node and their sources are starred, so the combined proposal
         satisfies Restrictions 2-4 by construction. *)
      let edges, _ =
        List.fold_left
          (fun (acc, used_dests) ((_, w) as e) ->
            if List.length acc >= missing || Int_set.mem w used_dests then (acc, used_dests)
            else (e :: acc, Int_set.add w used_dests))
          ([], Int_set.empty) (p2 st)
      in
      node_items @ List.map (fun e -> State.Edge e) (List.rev edges)
    end
  in
  if List.length items < st.min_proposal then None else Some items
