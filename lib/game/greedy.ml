(* The greedy player of Section 5.2, on the dense bitset graph.

   P1 is the set of unstarred sources; P2 is the set of edges touching no
   P1 node (their sources are therefore starred).  Both are enumerated in
   ascending order straight off the bitset rows — the same order the
   sorted-list implementation produced — so proposals, and hence whole
   game transcripts, are unchanged. *)

let p1_bits (st : State.t) =
  let g = st.State.graph in
  let n = Rgraph.Digraph.Dense.universe g in
  let bits = Rgraph.Bitset.create n in
  for v = 0 to n - 1 do
    if Rgraph.Digraph.Dense.has_outgoing g v && not (State.is_starred st v) then
      Rgraph.Bitset.set bits v
  done;
  bits

let p1 (st : State.t) = Rgraph.Bitset.to_list (p1_bits st)

let p2 (st : State.t) =
  let g = st.State.graph in
  let p1b = p1_bits st in
  let acc = ref [] in
  Rgraph.Digraph.Dense.iter_edges
    (fun (v, w) ->
      if (not (Rgraph.Bitset.mem p1b v)) && not (Rgraph.Bitset.mem p1b w) then
        acc := (v, w) :: !acc)
    g;
  List.rev !acc

let proposal (st : State.t) =
  let g = st.State.graph in
  let max_size = st.State.max_proposal in
  let p1b = p1_bits st in
  (* Up to [max_size] P1 nodes, ascending. *)
  let node_items = ref [] and taken = ref 0 in
  (try
     Rgraph.Bitset.iter
       (fun v ->
         if !taken >= max_size then raise Exit;
         node_items := State.Node v :: !node_items;
         incr taken)
       p1b
   with Exit -> ());
  let node_items = List.rev !node_items in
  let missing = max_size - !taken in
  let items =
    if missing = 0 then node_items
    else begin
      (* Destination-disjoint edges from P2, in ascending edge order.  P2
         edges touch no P1 node and their sources are starred, so the
         combined proposal satisfies Restrictions 2-4 by construction. *)
      let used_dests = Rgraph.Bitset.create (Rgraph.Digraph.Dense.universe g) in
      let edges = ref [] and found = ref 0 in
      (try
         Rgraph.Digraph.Dense.iter_edges
           (fun (v, w) ->
             if !found >= missing then raise Exit;
             if
               (not (Rgraph.Bitset.mem p1b v))
               && (not (Rgraph.Bitset.mem p1b w))
               && not (Rgraph.Bitset.mem used_dests w)
             then begin
               Rgraph.Bitset.set used_dests w;
               edges := State.Edge (v, w) :: !edges;
               incr found
             end)
           g
       with Exit -> ());
      node_items @ List.rev !edges
    end
  in
  if List.length items < st.State.min_proposal then None else Some items
