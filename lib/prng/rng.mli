(** The repository-wide deterministic random stream.

    Every node, adversary, workload generator, and experiment draws from an
    [Rng.t].  Streams are split hierarchically from one master seed so that
    each component's randomness is independent of the others and every run is
    a pure function of the master seed.

    The underlying engine is {!Xoshiro} (xoshiro256 "star-star"), seeded and
    split via {!Splitmix64}. *)

type t

val create : int64 -> t
(** [create seed] makes the root stream of a run. *)

val split : t -> t
(** A child stream statistically independent of the parent's future output.
    Splitting draws once from the parent, so parent determinism is kept. *)

val split_at : t -> int -> t
(** [split_at t label] derives a child keyed by [label] without consuming
    parent state.  Calling it twice with the same label yields identical
    streams: used to give node [i] the same coins across protocol phases. *)

val copy : t -> t

val bits64 : t -> int64
(** 64 uniform bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a list -> 'a list
(** [sample_without_replacement t k xs] draws [k] distinct elements (in a
    uniformly random order).  Requires [k <= List.length xs]. *)
