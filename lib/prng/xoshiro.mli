(** Xoshiro256**: the all-purpose 64-bit generator of Blackman & Vigna.

    State is 256 bits, period 2^256 - 1.  Seeded from a single 64-bit value
    via {!Splitmix64}, as the authors recommend. *)

type t

val create : int64 -> t
(** [create seed] derives the 256-bit state from [seed] with SplitMix64. *)

val copy : t -> t

val next : t -> int64
(** Next 64-bit output (boxed; equals [step] + [out_hi]/[out_lo]). *)

val step : t -> unit
(** Advance the state one draw without boxing the output; read it through
    {!out_hi}/{!out_lo} before the next [step].  This is the allocation-free
    hot path used by [Rng]'s small-bound draws. *)

val out_hi : t -> int
(** High 32 bits of the latest {!step} output, in [0, 2^32). *)

val out_lo : t -> int
(** Low 32 bits of the latest {!step} output, in [0, 2^32). *)

val jump : t -> unit
(** Advance the state by 2^128 steps; used to create non-overlapping
    subsequences from a common seed. *)
