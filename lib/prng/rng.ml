type t = { engine : Xoshiro.t; base : int64 }

let create seed = { engine = Xoshiro.create seed; base = seed }

let bits64 t = Xoshiro.next t.engine

let split t =
  let seed = Splitmix64.mix (bits64 t) in
  { engine = Xoshiro.create seed; base = seed }

let split_at t label =
  let seed = Splitmix64.mix (Int64.logxor t.base (Splitmix64.mix (Int64.of_int label))) in
  { engine = Xoshiro.create seed; base = seed }

let copy t = { engine = Xoshiro.copy t.engine; base = t.base }

let int t bound =
  assert (bound > 0);
  let bound64 = Int64.of_int bound in
  (* Rejection over the top 63 bits keeps the draw exactly uniform. *)
  let range = Int64.max_int in
  let limit = Int64.sub range (Int64.rem range bound64) in
  let rec draw () =
    let v = Int64.shift_right_logical (bits64 t) 1 in
    if v < limit then Int64.to_int (Int64.rem v bound64) else draw ()
  in
  draw ()

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t =
  (* 53 uniform bits mapped to [0,1). *)
  let v = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float v /. 9007199254740992.0

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let pick_list t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k xs =
  let arr = Array.of_list xs in
  assert (k <= Array.length arr);
  shuffle t arr;
  Array.to_list (Array.sub arr 0 k)
