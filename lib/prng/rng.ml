type t = { engine : Xoshiro.t; base : int64 }

let create seed = { engine = Xoshiro.create seed; base = seed }

let bits64 t = Xoshiro.next t.engine

let split t =
  let seed = Splitmix64.mix (bits64 t) in
  { engine = Xoshiro.create seed; base = seed }

let split_at t label =
  let seed = Splitmix64.mix (Int64.logxor t.base (Splitmix64.mix (Int64.of_int label))) in
  { engine = Xoshiro.create seed; base = seed }

let copy t = { engine = Xoshiro.copy t.engine; base = t.base }

(* Allocation-free rejection draw over the unboxed engine.  The drawn value
   v = bits64 >>> 1 is 63 bits — one more than a native int can hold — so it
   is handled as halves: v = hi * 2^31 + lo31 with hi = out_hi (32 bits) and
   lo31 = out_lo >> 1 (31 bits).  With R = 2^63 - 1 and r63 = R mod bound,
   limit = R - r63 always has high half 0xFFFFFFFF (r63 < 2^31), so
   v < limit iff hi <> 0xFFFFFFFF || lo31 < 2^31 - 1 - r63; and
   v mod bound = ((hi mod bound) * (2^31 mod bound) + lo31) mod bound, whose
   intermediate product stays under 2^61 for bound < 2^30.  Bit-identical to
   the Int64 fallback below (tested against it in test_prng.ml). *)
let rec draw_fast engine bound p31 limit_lo =
  Xoshiro.step engine;
  let hi = Xoshiro.out_hi engine in
  let lo31 = Xoshiro.out_lo engine lsr 1 in
  if hi <> 0xFFFFFFFF || lo31 < limit_lo then ((hi mod bound) * p31 + lo31) mod bound
  else draw_fast engine bound p31 limit_lo

let int t bound =
  assert (bound > 0);
  if bound <= 0x3FFFFFFF then begin
    (* R mod bound, with R = 2^63 - 1 = 2 * max_int + 1 (63-bit R itself
       does not fit a native int). *)
    let r63 = ((2 * (max_int mod bound)) + 1) mod bound in
    draw_fast t.engine bound (0x80000000 mod bound) (0x7FFFFFFF - r63)
  end
  else begin
    let bound64 = Int64.of_int bound in
    (* Rejection over the top 63 bits keeps the draw exactly uniform. *)
    let range = Int64.max_int in
    let limit = Int64.sub range (Int64.rem range bound64) in
    let rec draw () =
      let v = Int64.shift_right_logical (bits64 t) 1 in
      if v < limit then Int64.to_int (Int64.rem v bound64) else draw ()
    in
    draw ()
  end

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t =
  Xoshiro.step t.engine;
  Xoshiro.out_lo t.engine land 1 = 1

let float t =
  (* 53 uniform bits mapped to [0,1). *)
  Xoshiro.step t.engine;
  let v = (Xoshiro.out_hi t.engine lsl 21) lor (Xoshiro.out_lo t.engine lsr 11) in
  float_of_int v /. 9007199254740992.0

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let pick_list t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k xs =
  let arr = Array.of_list xs in
  assert (k <= Array.length arr);
  shuffle t arr;
  Array.to_list (Array.sub arr 0 k)
