type t = { mutable state : int64; inc : int64 }

let multiplier = 6364136223846793005L

let step t = t.state <- Int64.(add (mul t.state multiplier) t.inc)

let create ?(stream = 54L) seed =
  let inc = Int64.(logor (shift_left stream 1) 1L) in
  let t = { state = 0L; inc } in
  step t;
  t.state <- Int64.add t.state seed;
  step t;
  t

let copy t = { state = t.state; inc = t.inc }

let output state =
  let xorshifted =
    Int64.(to_int32 (shift_right_logical (logxor (shift_right_logical state 18) state) 27))
  in
  let rot = Int64.(to_int (shift_right_logical state 59)) in
  if rot = 0 then xorshifted
  else Int32.(logor (shift_right_logical xorshifted rot) (shift_left xorshifted (32 - rot)))

let next t =
  let old = t.state in
  step t;
  output old

let next_in t bound =
  assert (bound > 0);
  let bound64 = Int64.of_int bound in
  (* Rejection sampling: accept v < 2^32 - (2^32 mod bound) so that the
     modulo is exactly uniform. *)
  let limit = Int64.sub 4294967296L (Int64.rem 4294967296L bound64) in
  let rec draw () =
    let v = Int64.logand (Int64.of_int32 (next t)) 0xFFFFFFFFL in
    if v < limit then Int64.to_int (Int64.rem v bound64) else draw ()
  in
  draw ()
