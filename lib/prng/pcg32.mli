(** PCG32 (XSH-RR 64/32): O'Neill's permuted congruential generator.

    Small state, excellent statistical quality, 32-bit output.  Provided as an
    alternative engine and as an independent implementation for cross-checking
    distributional tests of the other generators. *)

type t

val create : ?stream:int64 -> int64 -> t
(** [create ?stream seed] initialises the generator.  Distinct [stream] values
    select provably non-overlapping sequences for the same seed. *)

val copy : t -> t

val next : t -> int32
(** Next 32-bit output. *)

val next_in : t -> int -> int
(** [next_in g bound] is uniform in [\[0, bound)] by unbiased rejection.
    Requires [0 < bound <= 2^31]. *)
