(* xoshiro256** on unboxed native ints.

   Each 64-bit state word is held as two 32-bit halves in immediate [int]
   fields, so stepping the generator allocates nothing — the original
   [mutable int64] record boxed every store and cost ~20 minor words per
   draw, which dominated the f-AME hot path.  The output stream is
   bit-identical to the reference Int64 formulation (tested against it in
   test_prng.ml).  Requires a 64-bit platform, like the native-int SHA-256.

   Multiplications by the constants 5 and 9 are shift-and-add, and 64-bit
   rotates/shifts are composed from half-word shifts; every half is kept
   masked to 32 bits so the cross terms never overflow the 63-bit int. *)

type t = {
  mutable s0h : int; mutable s0l : int;
  mutable s1h : int; mutable s1l : int;
  mutable s2h : int; mutable s2l : int;
  mutable s3h : int; mutable s3l : int;
  (* Output halves of the latest [step]; valid until the next step. *)
  mutable outh : int; mutable outl : int;
}

let mask32 = 0xFFFFFFFF

let hi64 x = Int64.to_int (Int64.shift_right_logical x 32)
let lo64 x = Int64.to_int (Int64.logand x 0xFFFFFFFFL)

let word hi lo = Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)

let create seed =
  let sm = Splitmix64.create seed in
  let s0 = Splitmix64.next sm in
  let s1 = Splitmix64.next sm in
  let s2 = Splitmix64.next sm in
  let s3 = Splitmix64.next sm in
  (* An all-zero state is a fixed point; SplitMix64 cannot produce four
     consecutive zeros, so this is safe, but assert it anyway. *)
  assert (not Int64.(equal s0 0L && equal s1 0L && equal s2 0L && equal s3 0L));
  { s0h = hi64 s0; s0l = lo64 s0;
    s1h = hi64 s1; s1l = lo64 s1;
    s2h = hi64 s2; s2l = lo64 s2;
    s3h = hi64 s3; s3l = lo64 s3;
    outh = 0; outl = 0 }

let copy t =
  { s0h = t.s0h; s0l = t.s0l;
    s1h = t.s1h; s1l = t.s1l;
    s2h = t.s2h; s2l = t.s2l;
    s3h = t.s3h; s3l = t.s3l;
    outh = t.outh; outl = t.outl }

let[@inline] step t =
  let s1h = t.s1h and s1l = t.s1l in
  (* x5 = s1 * 5 = s1 + (s1 << 2), carried across the halves. *)
  let l = (s1l lsl 2) land mask32 and h = ((s1h lsl 2) lor (s1l lsr 30)) land mask32 in
  let sum = l + s1l in
  let x5l = sum land mask32 and x5h = (h + s1h + (sum lsr 32)) land mask32 in
  (* r = rotl (x5, 7) *)
  let rh = ((x5h lsl 7) lor (x5l lsr 25)) land mask32
  and rl = ((x5l lsl 7) lor (x5h lsr 25)) land mask32 in
  (* out = r * 9 = r + (r << 3) *)
  let l = (rl lsl 3) land mask32 and h = ((rh lsl 3) lor (rl lsr 29)) land mask32 in
  let sum = l + rl in
  t.outl <- sum land mask32;
  t.outh <- (h + rh + (sum lsr 32)) land mask32;
  (* tmp = s1 << 17 *)
  let th = ((s1h lsl 17) lor (s1l lsr 15)) land mask32 and tl = (s1l lsl 17) land mask32 in
  let s2h = t.s2h lxor t.s0h and s2l = t.s2l lxor t.s0l in
  let s3h = t.s3h lxor s1h and s3l = t.s3l lxor s1l in
  t.s1h <- s1h lxor s2h;
  t.s1l <- s1l lxor s2l;
  t.s0h <- t.s0h lxor s3h;
  t.s0l <- t.s0l lxor s3l;
  t.s2h <- s2h lxor th;
  t.s2l <- s2l lxor tl;
  (* s3 = rotl (s3, 45) = rotl by 13 with the halves swapped. *)
  t.s3h <- ((s3l lsl 13) lor (s3h lsr 19)) land mask32;
  t.s3l <- ((s3h lsl 13) lor (s3l lsr 19)) land mask32

let out_hi t = t.outh
let out_lo t = t.outl

let next t =
  step t;
  word t.outh t.outl

let jump_table =
  [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL; 0x39ABDC4529B1661CL |]

(* Cold path; runs over the boxed representation for clarity. *)
let jump t =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun jump_word ->
      for b = 0 to 63 do
        if Int64.(logand jump_word (shift_left 1L b)) <> 0L then begin
          s0 := Int64.logxor !s0 (word t.s0h t.s0l);
          s1 := Int64.logxor !s1 (word t.s1h t.s1l);
          s2 := Int64.logxor !s2 (word t.s2h t.s2l);
          s3 := Int64.logxor !s3 (word t.s3h t.s3l)
        end;
        step t
      done)
    jump_table;
  t.s0h <- hi64 !s0;
  t.s0l <- lo64 !s0;
  t.s1h <- hi64 !s1;
  t.s1l <- lo64 !s1;
  t.s2h <- hi64 !s2;
  t.s2l <- lo64 !s2;
  t.s3h <- hi64 !s3;
  t.s3l <- lo64 !s3
