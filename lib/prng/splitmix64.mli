(** SplitMix64: a fast, splittable 64-bit pseudo-random generator.

    This is the generator from Steele, Lea & Flood, "Fast Splittable
    Pseudorandom Number Generators" (OOPSLA 2014), in the common public-domain
    formulation.  It passes BigCrush when used as specified and is primarily
    used here to seed and split the higher-quality {!Xoshiro} streams. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a generator whose output sequence is a pure function
    of [seed]. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val next : t -> int64
(** Next 64-bit output; advances the state. *)

val next_in : t -> int -> int
(** [next_in g bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val mix : int64 -> int64
(** The stateless finalizer used by [next]; useful as a cheap 64-bit hash for
    deriving seeds from identifiers. *)
