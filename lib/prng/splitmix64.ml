type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let next_in t bound =
  assert (bound > 0);
  (* Rejection-free for our purposes: 63 uniform bits modulo bound.  The
     modulo bias is < bound / 2^63, negligible for simulation bounds.  The
     modulo happens in Int64: converting 63 uniform bits to a native int
     first would wrap to negative values. *)
  let v = Int64.shift_right_logical (next t) 1 in
  Int64.to_int (Int64.rem v (Int64.of_int bound))
