(** Secure communication over radio channels — public API.

    This is the one-stop facade a downstream user imports.  It re-exports
    the subsystem libraries under stable names and offers one-call entry
    points for the paper's three deliverables:

    - {!exchange}: run f-AME for a set of (source, destination, payload)
      triples under a chosen adversary (Section 5);
    - {!establish_group_key}: the Section 6 protocol, returning each node's
      view and the agreed key statistics;
    - {!open_channel}: the Section 7 long-lived emulated secure channel.

    Lower-level access (custom adversaries, the starred-edge removal game,
    the radio engine itself) is available through the re-exported modules:
    {!Radio}, {!Game}, {!Ame}, {!Groupkey}, {!Secure_channel}, {!Crypto},
    {!Rgraph}, {!Prng}. *)

module Prng = Prng
module Crypto = Crypto
module Rgraph = Rgraph
module Radio = Radio
module Game = Game
module Ame = Ame
module Groupkey = Groupkey
module Secure_channel = Secure_channel

(** Canned adversaries selectable by name (CLI and examples). *)
type attack =
  | No_attack
  | Random_jam  (** t uniformly random channels jammed per round *)
  | Sweep_jam  (** deterministic rotating jam *)
  | Schedule_jam  (** protocol-aware: jams the f-AME schedule *)
  | Spoof  (** plants fake frames on random channels *)

val attack_of_string : string -> (attack, string) result

val attack_names : string list

type exchange_report = {
  delivered : ((int * int) * string) list;
  failed : (int * int) list;
  rounds : int;
  disruption_cover : int option;
  authentic : bool;  (** every delivered payload matches what was sent *)
  diverged : bool;
}

val exchange :
  ?seed:int64 ->
  ?channels:int ->
  t:int ->
  n:int ->
  attack:attack ->
  (int * int * string) list ->
  exchange_report
(** [exchange ~t ~n ~attack triples] runs f-AME on the given
    (source, destination, payload) triples with C = t+1 channels (or
    [channels] if given). *)

type group_key_report = {
  agreed_holders : int;
  wrong_holders : int;
  ignorant : int;
  setup_rounds : int;
  group_key_of : int -> string option;
}

val establish_group_key :
  ?seed:int64 -> t:int -> n:int -> attack:attack -> unit -> group_key_report

type channel_report = {
  deliveries : (int * int * string * int) list;
      (** emulated round, sender, message, receiver count *)
  rounds_per_message : int;
  secrecy_ok : bool;
  authentication_ok : bool;
}

val open_channel :
  ?seed:int64 ->
  ?key:string ->
  t:int ->
  n:int ->
  attack:attack ->
  (int * int * string) list ->
  channel_report
(** [open_channel ~t ~n ~attack sends] emulates the secure channel for a
    workload of (emulated round, sender, message) triples.  If [key] is
    omitted, a fresh random group key shared by all n nodes is used
    (composing with {!establish_group_key} is shown in the examples). *)

val version : string
