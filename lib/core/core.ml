module Prng = Prng
module Crypto = Crypto
module Rgraph = Rgraph
module Radio = Radio
module Game = Game
module Ame = Ame
module Groupkey = Groupkey
module Secure_channel = Secure_channel

let version = "1.0.0"

type attack =
  | No_attack
  | Random_jam
  | Sweep_jam
  | Schedule_jam
  | Spoof

let attack_names = [ "none"; "random-jam"; "sweep-jam"; "schedule-jam"; "spoof" ]

let attack_of_string = function
  | "none" -> Ok No_attack
  | "random-jam" -> Ok Random_jam
  | "sweep-jam" -> Ok Sweep_jam
  | "schedule-jam" -> Ok Schedule_jam
  | "spoof" -> Ok Spoof
  | s -> Error (Printf.sprintf "unknown attack %S (choose from: %s)" s (String.concat ", " attack_names))

let adversary_for ~attack ~channels ~budget ~seed board =
  let rng = Prng.Rng.create (Int64.logxor seed 0xADBEEFL) in
  match attack with
  | No_attack -> Radio.Adversary.null
  | Random_jam -> Radio.Adversary.random_jammer rng ~channels ~budget
  | Sweep_jam -> Radio.Adversary.sweep_jammer ~channels ~budget
  | Schedule_jam ->
    Ame.Attacks.schedule_jammer board ~channels ~budget ~prefer:Ame.Attacks.Prefer_edges
  | Spoof ->
    Radio.Adversary.spoofer rng ~channels ~budget
      ~forge:(fun ~round chan ->
        Radio.Frame.Plain { src = chan; dst = 0; body = Printf.sprintf "forged-%d" round })

let plain_adversary ~attack ~channels ~budget ~seed =
  adversary_for ~attack ~channels ~budget ~seed (Ame.Oracle.create ())

type exchange_report = {
  delivered : ((int * int) * string) list;
  failed : (int * int) list;
  rounds : int;
  disruption_cover : int option;
  authentic : bool;
  diverged : bool;
}

let exchange ?(seed = 1L) ?channels ~t ~n ~attack triples =
  let channels = Option.value channels ~default:(t + 1) in
  let cfg = Radio.Config.make ~seed ~n ~channels ~t () in
  let pairs = List.map (fun (v, w, _) -> (v, w)) triples in
  let payloads = Hashtbl.create 16 in
  List.iter (fun (v, w, body) -> Hashtbl.replace payloads (v, w) body) triples;
  let messages pair = Option.value (Hashtbl.find_opt payloads pair) ~default:"" in
  let outcome =
    Ame.Fame.run ~cfg ~pairs ~messages
      ~adversary:(adversary_for ~attack ~channels ~budget:t ~seed)
      ()
  in
  let authentic =
    List.for_all (fun (pair, body) -> body = messages pair) outcome.Ame.Fame.delivered
  in
  { delivered = outcome.Ame.Fame.delivered;
    failed = outcome.Ame.Fame.failed;
    rounds = outcome.Ame.Fame.engine.Radio.Engine.rounds_used;
    disruption_cover = outcome.Ame.Fame.disruption_vc;
    authentic;
    diverged = outcome.Ame.Fame.diverged }

type group_key_report = {
  agreed_holders : int;
  wrong_holders : int;
  ignorant : int;
  setup_rounds : int;
  group_key_of : int -> string option;
}

let establish_group_key ?(seed = 1L) ~t ~n ~attack () =
  let channels = t + 1 in
  let cfg = Radio.Config.make ~seed ~n ~channels ~t ~max_rounds:Radio.Config.default_max_rounds () in
  let outcome =
    Groupkey.Protocol.run ~cfg
      ~fame_adversary:(adversary_for ~attack ~channels ~budget:t ~seed)
      ~hop_adversary:(plain_adversary ~attack ~channels ~budget:t ~seed:(Int64.add seed 1L))
      ()
  in
  { agreed_holders = outcome.Groupkey.Protocol.agreed_key_holders;
    wrong_holders = outcome.Groupkey.Protocol.wrong_key_holders;
    ignorant = outcome.Groupkey.Protocol.no_key_holders;
    setup_rounds = outcome.Groupkey.Protocol.total_rounds;
    group_key_of =
      (fun i ->
        if i < 0 || i >= n then None
        else outcome.Groupkey.Protocol.nodes.(i).Groupkey.Protocol.group_key) }

type channel_report = {
  deliveries : (int * int * string * int) list;
  rounds_per_message : int;
  secrecy_ok : bool;
  authentication_ok : bool;
}

let open_channel ?(seed = 1L) ?key ~t ~n ~attack sends =
  let channels = t + 1 in
  let cfg = Radio.Config.make ~seed ~n ~channels ~t ~record_transcript:true () in
  let key =
    match key with
    | Some k -> k
    | None ->
      let rng = Prng.Rng.create (Int64.logxor seed 0x6B6579L) in
      String.init 32 (fun _ -> Char.chr (Prng.Rng.int rng 256))
  in
  let spec = Secure_channel.Service.make_spec ~key ~cfg () in
  let outcome =
    Secure_channel.Service.run_workload ~cfg ~key_holders:(List.init n Fun.id) ~spec ~sends
      ~adversary:(plain_adversary ~attack ~channels ~budget:t ~seed)
      ()
  in
  { deliveries =
      List.map
        (fun (d : Secure_channel.Service.delivery) ->
          (d.emulated_round, d.sender, d.message, List.length d.received_by))
        outcome.Secure_channel.Service.deliveries;
    rounds_per_message = outcome.Secure_channel.Service.real_rounds_per_emulated;
    secrecy_ok = outcome.Secure_channel.Service.plaintext_leaks = 0;
    authentication_ok = outcome.Secure_channel.Service.forged_accepts = 0 }
