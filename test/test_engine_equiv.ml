(* Sparse-vs-reference engine equivalence.

   The sparse event-driven core (Engine.run) must be observationally
   identical to the dense reference core (Engine.run_reference): same
   stats, same transcript records, same round counts, same completion
   flag, for every workload and adversary.  The sharded harvest path must
   additionally be byte-identical for every pool size, so `--jobs` can
   never change results. *)

module Config = Radio.Config
module Frame = Radio.Frame
module Engine = Radio.Engine
module Adversary = Radio.Adversary
module Transcript = Radio.Transcript
module Pool = Parallel.Pool

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* -- result comparison ----------------------------------------------------

   [Engine.result] is ints, bools, lists, arrays, and immutable frames all
   the way down, so structural equality is exact.  Mismatches are reported
   field by field for debuggability. *)

let stats_tuple (s : Transcript.Stats.t) =
  ( s.Transcript.Stats.rounds,
    s.Transcript.Stats.honest_transmissions,
    s.Transcript.Stats.deliveries,
    s.Transcript.Stats.spoofed_deliveries,
    s.Transcript.Stats.collisions,
    s.Transcript.Stats.jammed_rounds,
    s.Transcript.Stats.strikes,
    s.Transcript.Stats.max_payload )

let explain_mismatch fmt (a : Engine.result) (b : Engine.result) =
  if stats_tuple a.Engine.stats <> stats_tuple b.Engine.stats then
    Format.fprintf fmt "stats differ: {%a} vs {%a};@ " Transcript.Stats.pp a.Engine.stats
      Transcript.Stats.pp b.Engine.stats;
  if a.Engine.rounds_used <> b.Engine.rounds_used then
    Format.fprintf fmt "rounds_used %d vs %d;@ " a.Engine.rounds_used b.Engine.rounds_used;
  if a.Engine.completed <> b.Engine.completed then
    Format.fprintf fmt "completed %b vs %b;@ " a.Engine.completed b.Engine.completed;
  if a.Engine.transcript <> b.Engine.transcript then
    Format.fprintf fmt "transcripts differ (lengths %d vs %d)"
      (List.length a.Engine.transcript)
      (List.length b.Engine.transcript)

let same_result a b =
  a.Engine.stats = b.Engine.stats
  && a.Engine.rounds_used = b.Engine.rounds_used
  && a.Engine.completed = b.Engine.completed
  && a.Engine.transcript = b.Engine.transcript
  && a.Engine.channel_usage = b.Engine.channel_usage

(* -- workload generation --------------------------------------------------

   Node behaviour is driven entirely by [ctx.rng]: both cores hand node i
   the same split stream, so the scripts are identical run to run without
   shipping a script data structure across. *)

let node_body ~n ~channels ~steps (ctx : Engine.ctx) =
  let rng = ctx.Engine.rng in
  let id = ctx.Engine.id in
  for _ = 1 to steps do
    match Prng.Rng.int rng 7 with
    | 0 | 1 ->
      let chan = Prng.Rng.int rng channels in
      let body = String.make (Prng.Rng.int rng 5) 'x' in
      Engine.transmit ~chan (Frame.Plain { src = id; dst = (id + 1) mod n; body })
    | 2 | 3 -> ignore (Engine.listen ~chan:(Prng.Rng.int rng channels))
    | 4 -> Engine.idle ()
    | 5 ->
      (* Series lengths 0..6 cover the empty no-op, the one-round case, and
         multi-round runs; with record off and a non-observing adversary
         this is the parked fast path, otherwise the per-round path. *)
      let len = Prng.Rng.int rng 7 in
      let chans = Array.init len (fun _ -> Prng.Rng.int rng channels) in
      Engine.listen_series ~chans ~into:(Array.make len None)
    | _ -> Engine.idle_for (1 + Prng.Rng.int rng 5)
  done

(* Fresh adversary per engine run: the stateful strategies (jammer RNGs,
   reactive traffic memory, energy budget) must start from the same state
   on both sides. *)
let make_adversary ~which ~channels ~budget ~seed () =
  let rng () = Prng.Rng.create (Int64.of_int ((seed * 7919) + 13)) in
  match which mod 6 with
  | 0 -> Adversary.null
  | 1 -> Adversary.sweep_jammer ~channels ~budget
  | 2 -> Adversary.random_jammer (rng ()) ~channels ~budget
  | 3 ->
    Adversary.spoofer (rng ()) ~channels ~budget ~forge:(fun ~round chan ->
        Frame.Plain { src = 0; dst = chan; body = Printf.sprintf "spoof-%d-%d" round chan })
  | 4 -> Adversary.reactive_jammer (rng ()) ~channels ~budget
  | _ ->
    Adversary.energy_bounded ~total:(budget * 5) (Adversary.sweep_jammer ~channels ~budget)

type params = {
  n : int;
  channels : int;
  t : int;
  seed : int;
  steps : int;
  record : bool;
  track : bool;  (** per-channel usage accounting on *)
  which : int;  (** adversary choice *)
  abort : bool;  (** run with a tiny [max_rounds] to exercise the abort path *)
}

let pp_params p =
  Printf.sprintf "n=%d C=%d t=%d seed=%d steps=%d record=%b track=%b adv=%d abort=%b" p.n
    p.channels p.t p.seed p.steps p.record p.track p.which p.abort

let params_gen =
  QCheck.Gen.(
    let* n = int_range 2 40 in
    let* channels = int_range 2 6 in
    let* t = int_range 0 (channels - 1) in
    let* seed = int_range 1 1_000_000 in
    let* steps = int_range 0 25 in
    let* record = bool in
    let* track = bool in
    let* which = int_range 0 5 in
    let* abort = bool in
    return { n; channels; t; seed; steps; record; track; which; abort })

let params_arb = QCheck.make ~print:pp_params params_gen

let config_of p =
  let max_rounds = if p.abort then 4 else 2_000_000 in
  Config.make ~n:p.n ~channels:p.channels ~t:p.t ~seed:(Int64.of_int p.seed) ~max_rounds
    ~record_transcript:p.record ~track_channels:p.track ()

let run_with core ?pool ?shard_min p =
  let cfg = config_of p in
  let adversary =
    make_adversary ~which:p.which ~channels:p.channels ~budget:p.t ~seed:p.seed ()
  in
  let nodes = Array.init p.n (fun _ -> node_body ~n:p.n ~channels:p.channels ~steps:p.steps) in
  match core with
  | `Reference -> Engine.run_reference cfg ~adversary nodes
  | `Sparse -> Engine.run ?pool ?shard_min cfg ~adversary nodes

let fail_unequal p a b =
  QCheck.Test.fail_reportf "divergence on %s:@ %t" (pp_params p) (fun fmt ->
      explain_mismatch fmt a b)

(* -- property: sparse = reference on random workloads -- *)

let sparse_equals_reference =
  QCheck.Test.make ~name:"sparse core = reference core" ~count:300 params_arb (fun p ->
      let a = run_with `Reference p in
      let b = run_with `Sparse p in
      if not (same_result a b) then fail_unequal p a b else true)

(* -- property: sharded harvest = serial harvest for pool sizes 1/2/4 --

   [shard_min:1] forces sharding whenever a pool is present, so even the
   small random populations exercise the scatter/merge path.  Recording is
   forced off (the sharded path only runs on the cheap path; with record
   on, [run] must silently fall back and still match). *)

let sharded_equals_serial =
  QCheck.Test.make ~name:"sharded rounds byte-identical for jobs 1/2/4" ~count:40 params_arb
    (fun p ->
      let serial = run_with `Sparse p in
      List.for_all
        (fun domains ->
          Pool.with_pool ~domains (fun pool ->
              let sharded = run_with `Sparse ~pool ~shard_min:1 p in
              if not (same_result serial sharded) then fail_unequal p serial sharded
              else true))
        [ 1; 2; 4 ])

(* -- deterministic spot checks -- *)

let base_params =
  { n = 24; channels = 4; t = 2; seed = 7; steps = 18; record = true; track = false;
    which = 3; abort = false }

let idle_parking_parity () =
  (* Pure idle_for spans: the sparse core fast-forwards over parked rounds
     (no record, null adversary), the reference core grinds through each —
     results must still be identical. *)
  let p = { base_params with record = false; which = 0; steps = 0 } in
  let cfg = config_of p in
  let nodes =
    Array.init p.n (fun _ (ctx : Engine.ctx) ->
        Engine.idle_for (5000 + (100 * (ctx.Engine.id mod 7))))
  in
  let a = Engine.run_reference cfg ~adversary:Adversary.null nodes in
  let b = Engine.run cfg ~adversary:Adversary.null nodes in
  check Alcotest.bool "identical" true (same_result a b);
  check Alcotest.int "rounds" 5600 a.Engine.rounds_used;
  check Alcotest.bool "completed" true a.Engine.completed

let abort_with_parked_fibers () =
  (* max_rounds expires while fibers sleep in the wake queue: both cores
     must abort at the same round with the same stats. *)
  let cfg = Config.make ~n:6 ~channels:2 ~t:1 ~seed:9L ~max_rounds:100 () in
  let nodes = Array.init 6 (fun _ (_ : Engine.ctx) -> Engine.idle_for 10_000) in
  let a = Engine.run_reference cfg ~adversary:Adversary.null nodes in
  let b = Engine.run cfg ~adversary:Adversary.null nodes in
  check Alcotest.bool "identical" true (same_result a b);
  check Alcotest.bool "aborted" false a.Engine.completed;
  check Alcotest.int "rounds" 100 a.Engine.rounds_used

let staggered_wakes_parity () =
  (* Wake rounds interleave with active transmitters; recording on, so the
     sparse core takes the record path with real transcripts to compare. *)
  let p = { base_params with which = 4 } in
  let cfg = config_of p in
  let body (ctx : Engine.ctx) =
    let id = ctx.Engine.id in
    for k = 1 to 8 do
      Engine.idle_for ((id mod 5) + 1);
      if id land 1 = 0 then
        Engine.transmit ~chan:(k mod p.channels)
          (Frame.Plain { src = id; dst = (id + 1) mod p.n; body = "w" })
      else ignore (Engine.listen ~chan:(k mod p.channels))
    done
  in
  let mk () = make_adversary ~which:p.which ~channels:p.channels ~budget:p.t ~seed:p.seed () in
  let a = Engine.run_reference cfg ~adversary:(mk ()) (Array.make p.n body) in
  let b = Engine.run_nodes cfg ~adversary:(mk ()) body in
  check Alcotest.bool "identical" true (same_result a b);
  check Alcotest.bool "has transcript" true (a.Engine.transcript <> [])

let run_nodes_equals_run () =
  let p = { base_params with record = true } in
  let cfg = config_of p in
  let body = node_body ~n:p.n ~channels:p.channels ~steps:p.steps in
  let mk () = make_adversary ~which:p.which ~channels:p.channels ~budget:p.t ~seed:p.seed () in
  let a = Engine.run cfg ~adversary:(mk ()) (Array.init p.n (fun _ -> body)) in
  let b = Engine.run_nodes cfg ~adversary:(mk ()) body in
  check Alcotest.bool "identical" true (same_result a b)

let sharded_large_round_parity () =
  (* A population large enough that sharding engages at the default-ish
     threshold semantics (forced low here), with every node active every
     round — the worst case for the scatter/merge. *)
  let n = 2_000 in
  let channels = 4 and t = 1 in
  let cfg = Config.make ~n ~channels ~t ~seed:42L () in
  let body (ctx : Engine.ctx) =
    let id = ctx.Engine.id in
    for round = 1 to 12 do
      let chan = ((31 * round) + (17 * (id / 2))) mod channels in
      if id land 1 = 0 then
        Engine.transmit ~chan (Frame.Plain { src = id; dst = id + 1; body = "p" })
      else ignore (Engine.listen ~chan)
    done
  in
  let mk () = Adversary.sweep_jammer ~channels ~budget:t in
  let serial = Engine.run_nodes cfg ~adversary:(mk ()) body in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let sharded = Engine.run_nodes ~pool ~shard_min:64 cfg ~adversary:(mk ()) body in
          check Alcotest.bool
            (Printf.sprintf "jobs=%d byte-identical" domains)
            true (same_result serial sharded)))
    [ 1; 2; 4 ]

(* -- listen_series: parked vs per-round vs reference ---------------------

   The random property above only compares engine-side observables; these
   check the frames the listeners actually hear, through every core and
   both series paths (parked ring when nothing records, per-round slots
   when the transcript or an observing adversary needs identities), with
   mixed series lengths chosen to force the round-ring to regrow while
   series are outstanding. *)

let series_lengths = [| 3; 1; 40; 0; 7; 33 |]

let series_workload ~n ~channels ~record ~seed run_core =
  let heard = Array.make n [] in
  let cfg =
    Config.make ~n ~channels ~t:0 ~seed ~record_transcript:record ~track_channels:true ()
  in
  let body (ctx : Engine.ctx) =
    let id = ctx.Engine.id in
    if id < n / 2 then
      for k = 1 to 96 do
        (* Two transmitters per round on distinct channels (clean
           deliveries), plus an occasional third that collides. *)
        if k mod (n / 2) = id then
          Engine.transmit ~chan:(k mod channels)
            (Frame.Plain { src = id; dst = (id + 1) mod n; body = Printf.sprintf "b%d.%d" id k })
        else if (k + 1) mod (n / 2) = id then
          Engine.transmit ~chan:((k + 1) mod channels)
            (Frame.Plain { src = id; dst = (id + 1) mod n; body = Printf.sprintf "c%d.%d" id k })
        else if (k + 2) mod (n / 2) = id && k land 3 = 0 then
          Engine.transmit ~chan:(k mod channels)
            (Frame.Plain { src = id; dst = (id + 1) mod n; body = "clash" })
        else Engine.idle ()
      done
    else begin
      (* Staggered starts so outstanding series overlap at varying offsets. *)
      Engine.idle_for (id mod 4);
      Array.iter
        (fun len ->
          let chans = Array.init len (fun j -> (id + j) mod channels) in
          let into = Array.make len None in
          Engine.listen_series ~chans ~into;
          Array.iter
            (fun f ->
              let s =
                match f with
                | Some (Frame.Plain { src; body; _ }) -> Printf.sprintf "%d:%s" src body
                | Some _ -> "?"
                | None -> "-"
              in
              heard.(id) <- s :: heard.(id))
            into)
        series_lengths
    end
  in
  let r = run_core cfg (Array.init n (fun _ -> body)) in
  (r, heard)

let series_heard_parity () =
  let n = 12 and channels = 3 and seed = 5L in
  let go ~record core = series_workload ~n ~channels ~record ~seed core in
  let reference cfg nodes = Engine.run_reference cfg ~adversary:Adversary.null nodes in
  let sparse ?pool ?shard_min cfg nodes =
    Engine.run ?pool ?shard_min cfg ~adversary:Adversary.null nodes
  in
  (* Parked fast path (record off, non-observing adversary) vs reference. *)
  let ra, ha = go ~record:false reference in
  let rb, hb = go ~record:false (sparse ?pool:None ?shard_min:None) in
  check Alcotest.bool "parked: engine observables identical" true (same_result ra rb);
  check Alcotest.bool "parked: heard frames identical" true (ha = hb);
  check Alcotest.bool "listeners heard something" true
    (Array.exists (fun l -> List.exists (fun s -> s <> "-") l) hb);
  (* Per-round path (record on) must hear exactly the same frames. *)
  let rc, hc = go ~record:true reference in
  let rd, hd = go ~record:true (sparse ?pool:None ?shard_min:None) in
  check Alcotest.bool "recorded: engine observables identical" true (same_result rc rd);
  check Alcotest.bool "recorded: heard frames identical" true (hc = hd);
  check Alcotest.bool "recorded path hears what the parked path hears" true (hb = hd);
  (* Sharded harvest under the parked path, jobs 2 and 4. *)
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let re, he = go ~record:false (sparse ~pool ~shard_min:1) in
          check Alcotest.bool
            (Printf.sprintf "parked sharded jobs=%d identical" domains)
            true
            (same_result rb re && hb = he)))
    [ 2; 4 ]

let series_rejects_bad_arguments () =
  let cfg = Config.make ~n:2 ~channels:2 ~t:0 ~seed:3L () in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Engine.listen_series: chans and into must have equal length")
    (fun () ->
      ignore
        (Engine.run_nodes cfg ~adversary:Adversary.null (fun _ ->
             Engine.listen_series ~chans:[| 0; 1 |] ~into:(Array.make 1 None))));
  Alcotest.check_raises "invalid channel"
    (Invalid_argument "Engine: action on invalid channel 9") (fun () ->
      ignore
        (Engine.run_nodes cfg ~adversary:Adversary.null (fun _ ->
             Engine.listen_series ~chans:[| 0; 9 |] ~into:(Array.make 2 None))))

let channel_usage_totals_match_stats () =
  (* The per-channel counters are a refinement of the global stats: summed
     over channels they must reproduce deliveries and collisions exactly,
     on both cores. *)
  let p = { base_params with track = true; which = 1 } in
  let check_core label run =
    let r = run p in
    match r.Engine.channel_usage with
    | None -> Alcotest.failf "%s: track_channels on but no usage" label
    | Some u ->
      let sum = Array.fold_left ( + ) 0 in
      check Alcotest.int (label ^ " deliveries") r.Engine.stats.Transcript.Stats.deliveries
        (sum u.Transcript.Channel_usage.deliveries);
      check Alcotest.int (label ^ " collisions") r.Engine.stats.Transcript.Stats.collisions
        (sum u.Transcript.Channel_usage.collisions)
  in
  check_core "sparse" (run_with `Sparse);
  check_core "reference" (run_with `Reference)

let untracked_has_no_usage () =
  let r = run_with `Sparse { base_params with track = false } in
  check Alcotest.bool "no usage when off" true (r.Engine.channel_usage = None)

(* -- Adversary.validate: the null path must never allocate -- *)

let validate_empty_no_alloc () =
  (* Warm up so any one-time setup is paid before measuring. *)
  ignore (Adversary.validate ~channels:4 ~budget:2 []);
  let iters = 10_000 in
  let before = Gc.minor_words () in
  for _ = 1 to iters do
    ignore (Adversary.validate ~channels:4 ~budget:2 [])
  done;
  let after = Gc.minor_words () in
  (* The measurement itself boxes a float or two; anything growing with
     [iters] is a regression on the per-round null-adversary path. *)
  let per_call = (after -. before) /. float_of_int iters in
  if per_call > 0.01 then
    Alcotest.failf "Adversary.validate [] allocates %.3f words/call" per_call

let validate_nonempty_still_checks () =
  (* The early-out must not have disabled validation for real strikes. *)
  Alcotest.check_raises "invalid channel still rejected"
    (Invalid_argument "Adversary: strike on invalid channel") (fun () ->
      ignore
        (Adversary.validate ~channels:2 ~budget:2 [ { Adversary.chan = 5; spoof = None } ]))

let () =
  Alcotest.run "engine-equiv"
    [ ( "equivalence",
        [ qcheck sparse_equals_reference;
          Alcotest.test_case "idle parking parity" `Quick idle_parking_parity;
          Alcotest.test_case "abort with parked fibers" `Quick abort_with_parked_fibers;
          Alcotest.test_case "staggered wakes parity" `Quick staggered_wakes_parity;
          Alcotest.test_case "run_nodes = run" `Quick run_nodes_equals_run;
          Alcotest.test_case "channel usage totals = stats" `Quick
            channel_usage_totals_match_stats;
          Alcotest.test_case "usage absent when off" `Quick untracked_has_no_usage ] );
      ( "listen-series",
        [ Alcotest.test_case "heard parity across cores and paths" `Quick series_heard_parity;
          Alcotest.test_case "argument validation" `Quick series_rejects_bad_arguments ] );
      ( "sharding",
        [ qcheck sharded_equals_serial;
          Alcotest.test_case "large round jobs 1/2/4" `Quick sharded_large_round_parity ] );
      ( "adversary-validate",
        [ Alcotest.test_case "empty strikes allocation-free" `Quick validate_empty_no_alloc;
          Alcotest.test_case "nonempty strikes still validated" `Quick
            validate_nonempty_still_checks ] ) ]
