(* Tests for the domain-pool runner: ordering, exception propagation, and
   the determinism contract (parallel output byte-identical to serial). *)

let check = Alcotest.check

(* Busy work whose duration varies by input, to scramble completion order
   across domains; the merge must restore submission order regardless. *)
let jittered_square x =
  let spin = 1000 * (17 - (x mod 17)) in
  let acc = ref 0 in
  for i = 1 to spin do
    acc := !acc + (i mod 7)
  done;
  ignore !acc;
  x * x

exception Boom of int

(* -- Pool: real domains, unclamped -- *)

let pool_ordering () =
  let xs = List.init 100 Fun.id in
  let expected = List.map jittered_square xs in
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      let got = Parallel.Pool.map_ordered pool jittered_square xs in
      check (Alcotest.list Alcotest.int) "order preserved" expected got)

let pool_empty () =
  Parallel.Pool.with_pool ~domains:3 (fun pool ->
      check (Alcotest.list Alcotest.int) "empty input" []
        (Parallel.Pool.map_ordered pool jittered_square []);
      check (Alcotest.list Alcotest.int) "singleton" [ 49 ]
        (Parallel.Pool.map_ordered pool jittered_square [ 7 ]))

let pool_exception () =
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      match
        Parallel.Pool.map_ordered pool
          (fun x -> if x mod 3 = 0 then raise (Boom x) else x)
          [ 1; 2; 3; 4; 5; 6 ]
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x -> check Alcotest.int "earliest failure wins" 3 x)

let pool_survives_task_failure () =
  (* A raising task must not kill the worker; the pool stays usable. *)
  Parallel.Pool.with_pool ~domains:2 (fun pool ->
      (try ignore (Parallel.Pool.map_ordered pool (fun _ -> raise (Boom 0)) [ 1; 2 ]) with
       | Boom _ -> ());
      check (Alcotest.list Alcotest.int) "pool reusable after failure" [ 2; 4; 6 ]
        (Parallel.Pool.map_ordered pool (fun x -> 2 * x) [ 1; 2; 3 ]))

let pool_shutdown () =
  let pool = Parallel.Pool.create ~domains:2 in
  check Alcotest.int "size" 2 (Parallel.Pool.size pool);
  Parallel.Pool.shutdown pool;
  (* Idempotent. *)
  Parallel.Pool.shutdown pool

let pool_nested () =
  (* The tentpole contract: a task may submit to the pool it runs on.  The
     submitting task helps drain the queue instead of blocking a domain, so
     nesting can neither deadlock nor starve; both levels keep order. *)
  let expected =
    List.map (fun outer -> List.map (fun i -> jittered_square ((10 * outer) + i)) [ 0; 1; 2; 3 ])
      (List.init 8 Fun.id)
  in
  Parallel.Pool.with_pool ~domains:3 (fun pool ->
      let got =
        Parallel.Pool.map_ordered pool
          (fun outer ->
            Parallel.Pool.map_ordered pool
              (fun i -> jittered_square ((10 * outer) + i))
              [ 0; 1; 2; 3 ])
          (List.init 8 Fun.id)
      in
      check (Alcotest.list (Alcotest.list Alcotest.int)) "nested order preserved" expected got)

let pool_nested_exception () =
  (* An inner failure surfaces through both join points as the original
     exception, and the earliest inner failure wins. *)
  Parallel.Pool.with_pool ~domains:3 (fun pool ->
      match
        Parallel.Pool.map_ordered pool
          (fun outer ->
            Parallel.Pool.map_ordered pool
              (fun i -> if outer = 1 then raise (Boom ((10 * outer) + i)) else i)
              [ 0; 1; 2 ])
          [ 0; 1; 2 ]
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x -> check Alcotest.int "earliest inner failure" 10 x)

(* -- map_ordered: the clamped convenience form -- *)

let map_ordered_matches_serial () =
  let xs = List.init 50 (fun i -> i - 25) in
  List.iter
    (fun jobs ->
      check (Alcotest.list Alcotest.int)
        (Printf.sprintf "jobs=%d equals List.map" jobs)
        (List.map jittered_square xs)
        (Parallel.map_ordered ~jobs jittered_square xs))
    [ 1; 2; 4; 64 ]

let map_ordered_serial_exception () =
  match Parallel.map_ordered ~jobs:1 (fun x -> raise (Boom x)) [ 9 ] with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom x -> check Alcotest.int "serial path raises" 9 x

(* -- replicates combinator -- *)

let replicates_values () =
  (* 1-based trial indices, submission order, identical at every jobs. *)
  let expected = List.init 10 (fun i -> (i + 1) * (i + 1)) in
  List.iter
    (fun jobs ->
      check (Alcotest.list Alcotest.int)
        (Printf.sprintf "trials in order at jobs=%d" jobs)
        expected
        (Experiments.Common.replicates ~jobs ~trials:10 (fun trial -> trial * trial)))
    [ 1; 4 ]

let replicates_earliest_failure () =
  match Experiments.Common.replicates ~jobs:4 ~trials:8 (fun trial ->
      if trial >= 3 then raise (Boom trial) else trial)
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom t -> check Alcotest.int "earliest trial wins" 3 t

(* -- determinism of the experiment layer -- *)

let rendered id ~jobs =
  match Experiments.Registry.find id with
  | None -> Alcotest.fail (id ^ " missing")
  | Some e ->
    Experiments.Common.render_to_string (e.Experiments.Registry.run ~quick:true ~jobs)

let experiment_determinism () =
  (* The acceptance bar for the whole runner: parallel fan-out renders the
     exact bytes of the serial run.  e4/e5 have genuinely parallel inner
     loops; e7/e16/e17 are the Common.replicates adopters whose trial loops
     and grids both fan out. *)
  List.iter
    (fun id ->
      check Alcotest.string
        (id ^ " byte-identical at jobs=4")
        (rendered id ~jobs:1) (rendered id ~jobs:4))
    [ "e4"; "e5"; "e7"; "e16"; "e17" ]

(* -- JSON emitter -- *)

let json_escaping () =
  check Alcotest.string "string escaping" {|"a\"b\\c\nd"|}
    (Experiments.Json.to_string (Experiments.Json.String "a\"b\\c\nd"));
  check Alcotest.string "control chars" {|"\u0001"|}
    (Experiments.Json.to_string (Experiments.Json.String "\001"));
  check Alcotest.string "nan is null" "null"
    (Experiments.Json.to_string (Experiments.Json.Float Float.nan))

let json_document () =
  let doc =
    Experiments.Json.Obj
      [ ("xs", Experiments.Json.List [ Experiments.Json.Int 1; Experiments.Json.Bool true ]);
        ("y", Experiments.Json.Null) ]
  in
  check Alcotest.string "compact object" {|{"xs":[1,true],"y":null}|}
    (Experiments.Json.to_string doc)

let runner_json_has_metrics () =
  match Experiments.Registry.find "e4" with
  | None -> Alcotest.fail "e4 missing"
  | Some e ->
    let outcomes = Experiments.Runner.run_many ~quick:true ~jobs:2 [ e ] in
    let doc = Experiments.Runner.json_of_outcomes ~quick:true ~jobs:2 outcomes in
    let s = Experiments.Json.to_string doc in
    let mem needle =
      let n = String.length needle and l = String.length s in
      let rec go i = i + n <= l && (String.sub s i n = needle || go (i + 1)) in
      go 0
    in
    check Alcotest.bool "schema tag" true (mem {|"schema":"radio-experiments/v1"|});
    check Alcotest.bool "wall-clock metric" true (mem {|"wall_s":|});
    check Alcotest.bool "rounds metric" true (mem {|"total_rounds":|});
    check Alcotest.bool "table data" true (mem {|"header":|})

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "ordering" `Quick pool_ordering;
          Alcotest.test_case "empty + singleton" `Quick pool_empty;
          Alcotest.test_case "exception propagation" `Quick pool_exception;
          Alcotest.test_case "reusable after failure" `Quick pool_survives_task_failure;
          Alcotest.test_case "shutdown idempotent" `Quick pool_shutdown;
          Alcotest.test_case "nested submission" `Quick pool_nested;
          Alcotest.test_case "nested exception" `Quick pool_nested_exception ] );
      ( "map_ordered",
        [ Alcotest.test_case "matches serial" `Quick map_ordered_matches_serial;
          Alcotest.test_case "serial exception" `Quick map_ordered_serial_exception ] );
      ( "replicates",
        [ Alcotest.test_case "ordered trials" `Quick replicates_values;
          Alcotest.test_case "earliest failure" `Quick replicates_earliest_failure ] );
      ( "determinism",
        [ Alcotest.test_case "experiments jobs-invariant" `Slow experiment_determinism ] );
      ( "json",
        [ Alcotest.test_case "escaping" `Quick json_escaping;
          Alcotest.test_case "document" `Quick json_document;
          Alcotest.test_case "runner metrics" `Quick runner_json_has_metrics ] ) ]
