(* Tests for lib/verify: the exhaustive small-model theorem verifier.

   - QCheck agreement between the brute-force disruptability oracle and
     the memoized bitset kernel on random graphs up to 6 nodes;
   - unit tests for the minimax game-tree walker and its replay oracle;
   - jobs-parity: every check merges identically for any worker count;
   - the pinned-certificate regression: the quick tier's radio-verify/v1
     document must match the checked-in fixture field for field;
   - bench_compare exits 2 with a role-naming message on a missing file. *)

module Json = Experiments.Json

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* -- brute force vs kernel (Theorem 2 machinery) -- *)

let small_graph_gen =
  QCheck.Gen.(
    let* n = int_range 1 6 in
    let* density = int_range 0 4 in
    let* seed = int_range 0 1_000_000 in
    let rng = Prng.Rng.create (Int64.of_int seed) in
    let edges = ref [] in
    for v = 0 to n - 1 do
      for w = v + 1 to n - 1 do
        if Prng.Rng.int rng 5 < density then edges := (v, w) :: !edges
      done
    done;
    return (n, !edges))

let arb_small_graph =
  QCheck.make ~print:QCheck.Print.(pair int (list (pair int int))) small_graph_gen

let brute_agrees_at_most =
  QCheck.Test.make ~name:"brute_at_most agrees with at_most_dense (n <= 6)" ~count:200
    arb_small_graph (fun (n, edges) ->
      let g = Rgraph.Digraph.Dense.of_edges ~n edges in
      List.for_all
        (fun t ->
          let brute, _tested = Verify.Disrupt.brute_at_most g t in
          Bool.equal brute (Rgraph.Vertex_cover.at_most_dense g t))
        [ 0; 1; 2; 3 ])

let brute_agrees_minimum =
  QCheck.Test.make ~name:"brute_minimum_size agrees with minimum_size_dense (n <= 6)"
    ~count:200 arb_small_graph (fun (n, edges) ->
      let g = Rgraph.Digraph.Dense.of_edges ~n edges in
      Verify.Disrupt.brute_minimum_size g = Rgraph.Vertex_cover.minimum_size_dense g)

(* -- game-tree walker -- *)

let two_edge_root ~t =
  Game.State.create_dense ~proposal_size:(t + 1) ~min_proposal:(t + 1)
    (Rgraph.Digraph.Dense.of_edges [ (0, 1); (2, 3) ])
    ~t

let explore_two_disjoint_edges () =
  let r = Verify.Game_tree.explore (two_edge_root ~t:1) in
  check (Alcotest.list Alcotest.string) "no violations" [] r.Verify.Game_tree.violations;
  if r.Verify.Game_tree.worst_moves > 3 * 2 then
    Alcotest.failf "worst_moves %d above 3|E|=6" r.Verify.Game_tree.worst_moves;
  if r.Verify.Game_tree.worst_moves < 2 then
    Alcotest.failf "worst_moves %d: two disjoint edges need two moves at t=1"
      r.Verify.Game_tree.worst_moves;
  if r.Verify.Game_tree.states < 2 then Alcotest.fail "expected more than one state";
  check Alcotest.int "worst path length = worst moves"
    r.Verify.Game_tree.worst_moves
    (List.length r.Verify.Game_tree.worst_path)

let strike_paths_count_matches_strategies () =
  let root = two_edge_root ~t:1 in
  let r = Verify.Game_tree.explore root in
  match Verify.Game_tree.strike_paths root ~limit:10_000 with
  | Error msg -> Alcotest.fail msg
  | Ok paths ->
    check Alcotest.int "leaf count" r.Verify.Game_tree.strategies (List.length paths)

let strike_paths_limit_fails_loudly () =
  match Verify.Game_tree.strike_paths (two_edge_root ~t:1) ~limit:1 with
  | Error _ -> ()
  | Ok paths -> Alcotest.failf "expected Error, got %d paths" (List.length paths)

let replay_unjammed_delivers_everything () =
  let r = Verify.Game_tree.replay (two_edge_root ~t:1) ~jams:[] in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "all edges delivered" [ (0, 1); (2, 3) ] r.Verify.Game_tree.delivered_edges;
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "nothing failed" []
    r.Verify.Game_tree.failed_edges;
  (* Chosen edges star nodes that later moves must clear, so even the
     unjammed play takes more than the single removal move. *)
  if r.Verify.Game_tree.replay_moves < 1 || r.Verify.Game_tree.replay_moves > 6 then
    Alcotest.failf "replay_moves %d outside [1, 3|E|=6]" r.Verify.Game_tree.replay_moves

(* -- jobs parity: merged results are identical for every worker count -- *)

let disrupt_parity_across_jobs () =
  let run jobs = Verify.Disrupt.check ~max_nodes:4 ~budgets:[ 0; 1; 2 ] ~jobs in
  let a = run 1 and b = run 3 in
  check Alcotest.int "graphs" a.Verify.Disrupt.graphs b.Verify.Disrupt.graphs;
  check Alcotest.int "queries" a.Verify.Disrupt.queries b.Verify.Disrupt.queries;
  check Alcotest.int "subsets" a.Verify.Disrupt.subsets b.Verify.Disrupt.subsets;
  check Alcotest.string "worst graph" a.Verify.Disrupt.worst_graph b.Verify.Disrupt.worst_graph;
  check (Alcotest.list Alcotest.string) "violations" a.Verify.Disrupt.violations
    b.Verify.Disrupt.violations

let fame_parity_across_jobs () =
  let regime =
    { Verify.Fame_check.name = "parity-t1-C2"; budget = 1; channels = 2; channels_used = 2;
      mode = Ame.Fame.Sequential; pairs = [ (0, 1); (2, 3) ]; jam_feedback = false;
      seed = 77L }
  in
  let run jobs = Verify.Fame_check.check regime ~path_limit:10_000 ~jobs in
  let a = run 1 and b = run 4 in
  check Alcotest.int "strategies" a.Verify.Fame_check.strategies b.Verify.Fame_check.strategies;
  check Alcotest.int "runs" a.Verify.Fame_check.runs b.Verify.Fame_check.runs;
  check Alcotest.int "engine rounds" a.Verify.Fame_check.engine_rounds
    b.Verify.Fame_check.engine_rounds;
  check Alcotest.int "worst rounds" a.Verify.Fame_check.worst_rounds
    b.Verify.Fame_check.worst_rounds;
  check Alcotest.string "worst path" a.Verify.Fame_check.worst_path
    b.Verify.Fame_check.worst_path;
  check (Alcotest.list Alcotest.string) "violations" a.Verify.Fame_check.violations
    b.Verify.Fame_check.violations

(* Every strike strategy completes and none beats the replay oracle: the
   exhaustive f-AME check itself, on its smallest regime. *)
let fame_exhaustive_smallest_regime () =
  let regime =
    { Verify.Fame_check.name = "unit-t1-C2"; budget = 1; channels = 2; channels_used = 2;
      mode = Ame.Fame.Sequential; pairs = [ (0, 1); (2, 3) ]; jam_feedback = false;
      seed = 11L }
  in
  let r = Verify.Fame_check.check regime ~path_limit:10_000 ~jobs:1 in
  check (Alcotest.list Alcotest.string) "no violations" [] r.Verify.Fame_check.violations;
  if r.Verify.Fame_check.runs < 2 then
    Alcotest.failf "expected several strike strategies, got %d" r.Verify.Fame_check.runs;
  check Alcotest.int "one engine run per strategy" r.Verify.Fame_check.strategies
    r.Verify.Fame_check.runs

(* -- pinned certificate regression -- *)

(* Structural diff with a path, so a drift names the exact field. *)
let rec json_diff path a b =
  match (a, b) with
  | Json.Obj xs, Json.Obj ys ->
    if List.length xs <> List.length ys || List.exists2 (fun (k, _) (k', _) -> k <> k') xs ys
    then Some (Printf.sprintf "%s: object keys differ" path)
    else
      List.fold_left2
        (fun acc (k, x) (_, y) ->
          match acc with Some _ -> acc | None -> json_diff (path ^ "." ^ k) x y)
        None xs ys
  | Json.List xs, Json.List ys ->
    if List.length xs <> List.length ys then
      Some (Printf.sprintf "%s: list length %d vs %d" path (List.length xs) (List.length ys))
    else
      List.fold_left2
        (fun (i, acc) x y ->
          match acc with
          | Some _ -> (i + 1, acc)
          | None -> (i + 1, json_diff (Printf.sprintf "%s[%d]" path i) x y))
        (0, None) xs ys
      |> snd
  | a, b ->
    if a = b then None
    else Some (Printf.sprintf "%s: %s vs %s" path (Json.to_string a) (Json.to_string b))

let pinned_quick_certificates () =
  let fixture_path = "fixtures/verify-quick.json" in
  let fixture =
    match Json.of_string (In_channel.with_open_bin fixture_path In_channel.input_all) with
    | Ok doc -> doc
    | Error msg -> Alcotest.failf "fixture %s: %s" fixture_path msg
  in
  let report = Verify.Suite.run Verify.Instances.quick ~jobs:2 in
  if not report.Verify.Suite.passed then
    Alcotest.failf "quick tier FAILED:\n%s"
      (Experiments.Common.render_to_string report.Verify.Suite.human);
  match json_diff "$" report.Verify.Suite.doc fixture with
  | None -> ()
  | Some diff ->
    Alcotest.failf
      "quick certificates drifted from the pinned fixture at %s\n(regenerate with: dune exec \
       bin/radio_verify.exe -- --quick --json test/fixtures/verify-quick.json)"
      diff

(* -- bench_compare missing-file behaviour -- *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.equal (String.sub hay i ln) needle || go (i + 1)) in
  go 0

let bench_compare_missing_baseline () =
  let out = Filename.temp_file "bench_compare" ".out" in
  (* The current document exists (any readable file works: the baseline is
     loaded, and must fail, first); the baseline does not. *)
  let cmd =
    Printf.sprintf
      "../bin/bench_compare.exe /nonexistent/baseline.json fixtures/verify-quick.json >%s 2>&1"
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let output = In_channel.with_open_bin out In_channel.input_all in
  Sys.remove out;
  check Alcotest.int "exit code" 2 code;
  if not (contains output "baseline file" && contains output "/nonexistent/baseline.json") then
    Alcotest.failf "missing-baseline message should name the role and path, got: %s" output

let () =
  Alcotest.run "verify"
    [ ( "disrupt",
        [ qcheck brute_agrees_at_most;
          qcheck brute_agrees_minimum;
          Alcotest.test_case "jobs parity" `Quick disrupt_parity_across_jobs ] );
      ( "game_tree",
        [ Alcotest.test_case "explore two disjoint edges" `Quick explore_two_disjoint_edges;
          Alcotest.test_case "strike paths = strategies" `Quick
            strike_paths_count_matches_strategies;
          Alcotest.test_case "path limit fails loudly" `Quick strike_paths_limit_fails_loudly;
          Alcotest.test_case "unjammed replay delivers all" `Quick
            replay_unjammed_delivers_everything ] );
      ( "fame",
        [ Alcotest.test_case "exhaustive smallest regime" `Quick
            fame_exhaustive_smallest_regime;
          Alcotest.test_case "jobs parity" `Quick fame_parity_across_jobs ] );
      ( "suite",
        [ Alcotest.test_case "pinned quick certificates" `Slow pinned_quick_certificates ] );
      ( "bench_compare",
        [ Alcotest.test_case "missing baseline exits 2" `Quick bench_compare_missing_baseline ]
      ) ]
