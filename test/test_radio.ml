(* Tests for the radio engine: the Section 3 model semantics must hold
   exactly, because every protocol guarantee is argued against them. *)

module Config = Radio.Config
module Frame = Radio.Frame
module Engine = Radio.Engine
module Adversary = Radio.Adversary
module Transcript = Radio.Transcript

let check = Alcotest.check

let plain src dst body = Frame.Plain { src; dst; body }

let base_cfg ?(n = 4) ?(channels = 2) ?(t = 1) ?(seed = 1L) ?(record = false) () =
  Config.make ~n ~channels ~t ~seed ~record_transcript:record ()

(* A tiny scripted-protocol helper: node i executes script.(i), a list of
   per-round thunk actions; results are collected in cells. *)
let run_script ?(adversary = Adversary.null) cfg scripts =
  Engine.run cfg ~adversary
    (Array.map (fun steps (_ : Engine.ctx) -> List.iter (fun step -> step ()) steps) scripts)

(* -- config validation -- *)

let config_validation () =
  Alcotest.check_raises "t >= channels"
    (Invalid_argument "Config.make: need 0 <= t < channels") (fun () ->
      ignore (Config.make ~n:4 ~channels:2 ~t:2 ()));
  Alcotest.check_raises "one channel"
    (Invalid_argument "Config.make: need at least 2 channels") (fun () ->
      ignore (Config.make ~n:4 ~channels:1 ~t:0 ()));
  check Alcotest.bool "ample nodes" true
    (Config.ample_nodes (Config.make ~n:40 ~channels:3 ~t:2 ()));
  check Alcotest.bool "not ample" false
    (Config.ample_nodes (Config.make ~n:20 ~channels:3 ~t:2 ()))

(* -- delivery semantics -- *)

let single_transmitter_delivers () =
  let cfg = base_cfg () in
  let received = ref None in
  let result =
    Engine.run cfg ~adversary:Adversary.null
      [| (fun _ -> Engine.transmit ~chan:0 (plain 0 1 "hello"));
         (fun _ -> received := Engine.listen ~chan:0);
         (fun _ -> Engine.idle ());
         (fun _ -> Engine.idle ()) |]
  in
  check Alcotest.bool "completed" true result.Engine.completed;
  match !received with
  | Some (Frame.Plain { body; _ }) -> check Alcotest.string "payload" "hello" body
  | _ -> Alcotest.fail "expected delivery"

let two_transmitters_collide () =
  let cfg = base_cfg () in
  let received = ref (Some (plain 9 9 "sentinel")) in
  ignore
    (Engine.run cfg ~adversary:Adversary.null
       [| (fun _ -> Engine.transmit ~chan:0 (plain 0 3 "a"));
          (fun _ -> Engine.transmit ~chan:0 (plain 1 3 "b"));
          (fun _ -> Engine.idle ());
          (fun _ -> received := Engine.listen ~chan:0) |]);
  check Alcotest.bool "collision silences" true (!received = None)

let listener_on_other_channel_hears_nothing () =
  let cfg = base_cfg () in
  let received = ref (Some (plain 9 9 "sentinel")) in
  ignore
    (Engine.run cfg ~adversary:Adversary.null
       [| (fun _ -> Engine.transmit ~chan:0 (plain 0 1 "x"));
          (fun _ -> received := Engine.listen ~chan:1);
          (fun _ -> Engine.idle ());
          (fun _ -> Engine.idle ()) |]);
  check Alcotest.bool "nothing on channel 1" true (!received = None)

let jam_blocks_delivery () =
  let cfg = base_cfg () in
  let jam_chan0 =
    { Adversary.name = "jam0"; act = (fun ~round:_ -> [ { Adversary.chan = 0; spoof = None } ]);
      observe = (fun _ -> ()); observes = false }
  in
  let received = ref (Some (plain 9 9 "sentinel")) in
  ignore
    (Engine.run cfg ~adversary:jam_chan0
       [| (fun _ -> Engine.transmit ~chan:0 (plain 0 1 "x"));
          (fun _ -> received := Engine.listen ~chan:0);
          (fun _ -> Engine.idle ());
          (fun _ -> Engine.idle ()) |]);
  check Alcotest.bool "jammed" true (!received = None)

let spoof_lands_on_empty_channel () =
  let cfg = base_cfg () in
  let spoof =
    { Adversary.name = "spoof";
      act = (fun ~round:_ -> [ { Adversary.chan = 1; spoof = Some (plain 7 1 "fake") } ]);
      observe = (fun _ -> ()); observes = false }
  in
  let received = ref None in
  ignore
    (Engine.run cfg ~adversary:spoof
       [| (fun _ -> Engine.transmit ~chan:0 (plain 0 1 "real"));
          (fun _ -> received := Engine.listen ~chan:1);
          (fun _ -> Engine.idle ());
          (fun _ -> Engine.idle ()) |]);
  match !received with
  | Some (Frame.Plain { body = "fake"; _ }) -> ()
  | _ -> Alcotest.fail "spoof should deliver on an empty channel"

let spoof_collides_with_honest () =
  let cfg = base_cfg () in
  let spoof =
    { Adversary.name = "spoof";
      act = (fun ~round:_ -> [ { Adversary.chan = 0; spoof = Some (plain 7 1 "fake") } ]);
      observe = (fun _ -> ()); observes = false }
  in
  let received = ref (Some (plain 9 9 "sentinel")) in
  ignore
    (Engine.run cfg ~adversary:spoof
       [| (fun _ -> Engine.transmit ~chan:0 (plain 0 1 "real"));
          (fun _ -> received := Engine.listen ~chan:0);
          (fun _ -> Engine.idle ());
          (fun _ -> Engine.idle ()) |]);
  check Alcotest.bool "spoof on busy channel collides" true (!received = None)

let lone_jam_is_silence () =
  let cfg = base_cfg ~record:true () in
  let jam =
    { Adversary.name = "jam"; act = (fun ~round:_ -> [ { Adversary.chan = 0; spoof = None } ]);
      observe = (fun _ -> ()); observes = false }
  in
  let received = ref (Some (plain 9 9 "sentinel")) in
  let result =
    Engine.run cfg ~adversary:jam
      [| (fun _ -> received := Engine.listen ~chan:0);
         (fun _ -> Engine.idle ());
         (fun _ -> Engine.idle ());
         (fun _ -> Engine.idle ()) |]
  in
  check Alcotest.bool "noise is not a message" true (!received = None);
  match (List.hd result.Engine.transcript).Transcript.outcomes.(0) with
  | Transcript.Collision { jammed = true; _ } -> ()
  | _ -> Alcotest.fail "expected a jammed outcome"

let transmitter_learns_nothing () =
  (* No collision detection: a sender cannot tell if it was jammed. The API
     encodes this by returning unit; we assert both runs look identical from
     the sender's perspective via stats only. *)
  let jam =
    { Adversary.name = "jam"; act = (fun ~round:_ -> [ { Adversary.chan = 0; spoof = None } ]);
      observe = (fun _ -> ()); observes = false }
  in
  let run adversary =
    let cfg = base_cfg () in
    Engine.run cfg ~adversary
      [| (fun _ -> Engine.transmit ~chan:0 (plain 0 1 "x"));
         (fun _ -> Engine.idle ());
         (fun _ -> Engine.idle ());
         (fun _ -> Engine.idle ()) |]
  in
  let r1 = run Adversary.null and r2 = run jam in
  check Alcotest.int "same rounds either way" r1.Engine.rounds_used r2.Engine.rounds_used

let current_round_advances () =
  let cfg = base_cfg () in
  let rounds = ref [] in
  ignore
    (Engine.run cfg ~adversary:Adversary.null
       (Array.make 4 (fun (_ : Engine.ctx) ->
            for _ = 1 to 3 do
              rounds := Engine.current_round () :: !rounds;
              Engine.idle ()
            done)));
  let mine = List.rev (List.filteri (fun i _ -> i mod 4 = 0) !rounds) in
  ignore mine;
  check Alcotest.int "12 samples" 12 (List.length !rounds)

let max_rounds_aborts () =
  let cfg = Config.make ~n:2 ~channels:2 ~t:0 ~max_rounds:5 () in
  let result =
    Engine.run cfg ~adversary:Adversary.null
      (Array.make 2 (fun (_ : Engine.ctx) ->
           while true do
             Engine.idle ()
           done))
  in
  check Alcotest.bool "not completed" false result.Engine.completed;
  check Alcotest.int "stopped at limit" 5 result.Engine.rounds_used

let determinism () =
  let go () =
    let cfg = base_cfg ~n:6 ~seed:33L () in
    let adversary = Adversary.random_jammer (Prng.Rng.create 5L) ~channels:2 ~budget:1 in
    let hits = ref 0 in
    ignore
      (Engine.run cfg ~adversary
         (Array.make 6 (fun (ctx : Engine.ctx) ->
              for _ = 1 to 40 do
                if ctx.Engine.id = 0 then Engine.transmit ~chan:0 (plain 0 1 "x")
                else begin
                  match Engine.listen ~chan:(Prng.Rng.int ctx.Engine.rng 2) with
                  | Some _ -> incr hits
                  | None -> ()
                end
              done)));
    !hits
  in
  check Alcotest.int "identical reruns" (go ()) (go ())

(* The engine skips round_record construction entirely when recording is
   off and the adversary does not observe; the aggregated stats must be
   identical on both paths, and the cheap path must keep the transcript
   empty. *)
let cheap_path_matches_record_path () =
  let run record =
    let cfg = base_cfg ~n:6 ~channels:3 ~t:1 ~seed:77L ~record () in
    let adversary = Adversary.sweep_jammer ~channels:3 ~budget:1 in
    Engine.run cfg ~adversary
      (Array.init 6 (fun id (ctx : Engine.ctx) ->
           for round = 1 to 25 do
             let chan = (round + id) mod 3 in
             if id mod 2 = 0 then Engine.transmit ~chan (plain id (id + 1) "m")
             else ignore (Engine.listen ~chan);
             ignore ctx
           done))
  in
  let off = run false and on = run true in
  let s (r : Engine.result) = r.Engine.stats in
  check Alcotest.int "rounds" (s on).Transcript.Stats.rounds (s off).Transcript.Stats.rounds;
  check Alcotest.int "honest tx" (s on).Transcript.Stats.honest_transmissions
    (s off).Transcript.Stats.honest_transmissions;
  check Alcotest.int "deliveries" (s on).Transcript.Stats.deliveries
    (s off).Transcript.Stats.deliveries;
  check Alcotest.int "spoofed" (s on).Transcript.Stats.spoofed_deliveries
    (s off).Transcript.Stats.spoofed_deliveries;
  check Alcotest.int "collisions" (s on).Transcript.Stats.collisions
    (s off).Transcript.Stats.collisions;
  check Alcotest.int "jammed" (s on).Transcript.Stats.jammed_rounds
    (s off).Transcript.Stats.jammed_rounds;
  check Alcotest.int "strikes" (s on).Transcript.Stats.strikes (s off).Transcript.Stats.strikes;
  check Alcotest.int "max payload" (s on).Transcript.Stats.max_payload
    (s off).Transcript.Stats.max_payload;
  check Alcotest.int "rounds_used" on.Engine.rounds_used off.Engine.rounds_used;
  check Alcotest.bool "cheap path records nothing" true (off.Engine.transcript = []);
  check Alcotest.int "record path keeps every round" on.Engine.rounds_used
    (List.length on.Engine.transcript)

let bad_channel_rejected () =
  let cfg = base_cfg () in
  (try
     ignore
       (Engine.run cfg ~adversary:Adversary.null
          [| (fun _ -> Engine.transmit ~chan:7 (plain 0 1 "x"));
             (fun _ -> Engine.idle ());
             (fun _ -> Engine.idle ());
             (fun _ -> Engine.idle ()) |]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let wrong_node_count_rejected () =
  let cfg = base_cfg () in
  (try
     ignore (Engine.run cfg ~adversary:Adversary.null [| (fun _ -> ()) |]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* -- adversary validation and strategies -- *)

let validate_budget () =
  let strikes = [ { Adversary.chan = 0; spoof = None }; { Adversary.chan = 1; spoof = None } ] in
  (* Over-budget strike lists are clamped from the end, not rejected: the
     model simply ignores transmissions beyond [t]. *)
  (match Adversary.validate ~channels:3 ~budget:1 strikes with
   | [ { Adversary.chan = 0; spoof = None } ] -> ()
   | _ -> Alcotest.fail "expected clamp to the first strike");
  check Alcotest.int "within budget ok" 2
    (List.length (Adversary.validate ~channels:3 ~budget:2 strikes));
  check Alcotest.int "zero budget silences" 0
    (List.length (Adversary.validate ~channels:3 ~budget:0 strikes));
  (* Clamping happens before per-strike checks: an invalid channel beyond
     the budget is dropped, not a model violation. *)
  let tail_invalid = strikes @ [ { Adversary.chan = 99; spoof = None } ] in
  check Alcotest.int "invalid channel beyond budget is clamped away" 2
    (List.length (Adversary.validate ~channels:3 ~budget:2 tail_invalid))

let validate_duplicate_channel () =
  let strikes = [ { Adversary.chan = 0; spoof = None }; { Adversary.chan = 0; spoof = None } ] in
  try
    ignore (Adversary.validate ~channels:3 ~budget:2 strikes);
    Alcotest.fail "expected duplicate rejection"
  with Invalid_argument _ -> ()

let strategies_respect_budget () =
  let channels = 4 and budget = 2 in
  let strategies =
    [ Adversary.null;
      Adversary.random_jammer (Prng.Rng.create 2L) ~channels ~budget;
      Adversary.sweep_jammer ~channels ~budget;
      Adversary.targeted_jammer ~channels ~channels_of_round:(fun r -> [ r mod 4 ]) ~budget;
      Adversary.reactive_jammer (Prng.Rng.create 3L) ~channels ~budget;
      Adversary.spoofer (Prng.Rng.create 4L) ~channels ~budget
        ~forge:(fun ~round chan -> plain chan 0 (string_of_int round)) ]
  in
  List.iter
    (fun (s : Adversary.t) ->
      for round = 0 to 20 do
        let strikes = Adversary.validate ~channels ~budget (s.Adversary.act ~round) in
        check Alcotest.bool (s.Adversary.name ^ " within budget") true
          (List.length strikes <= budget)
      done)
    strategies

let reactive_jammer_follows_traffic () =
  let channels = 3 in
  let adversary = Adversary.reactive_jammer (Prng.Rng.create 6L) ~channels ~budget:1 in
  (* Feed an observation where channel 2 is the busiest, then expect the
     next strike there. *)
  adversary.Adversary.observe
    { Transcript.round = 0;
      honest_tx = [ (0, 2, plain 0 1 "a"); (1, 2, plain 1 0 "b"); (2, 0, plain 2 1 "c") ];
      listeners = [];
      strikes = [];
      outcomes = [| Transcript.Empty; Transcript.Empty; Transcript.Empty |] };
  match adversary.Adversary.act ~round:1 with
  | [ { Adversary.chan; _ } ] -> check Alcotest.int "targets busiest" 2 chan
  | _ -> Alcotest.fail "expected one strike"

(* -- transcript stats -- *)

let stats_capture_scenario () =
  let cfg = base_cfg ~n:4 ~record:true () in
  let result =
    run_script cfg
      [| [ (fun () -> Engine.transmit ~chan:0 (plain 0 1 "first"));
           (fun () -> Engine.transmit ~chan:1 (plain 0 2 "second")) ];
         [ (fun () -> ignore (Engine.listen ~chan:0)); (fun () -> ignore (Engine.listen ~chan:1)) ];
         [ (fun () -> ignore (Engine.listen ~chan:0)); (fun () -> Engine.idle ()) ];
         [ (fun () -> Engine.idle ()); (fun () -> Engine.idle ()) ] |]
  in
  let stats = result.Engine.stats in
  check Alcotest.int "rounds" 2 stats.Transcript.Stats.rounds;
  check Alcotest.int "transmissions" 2 stats.Transcript.Stats.honest_transmissions;
  (* Round 1: two listeners on chan 0; round 2: one on chan 1. *)
  check Alcotest.int "receptions" 3 stats.Transcript.Stats.deliveries;
  check Alcotest.int "no spoofs" 0 stats.Transcript.Stats.spoofed_deliveries;
  check Alcotest.int "transcript recorded" 2 (List.length result.Engine.transcript)

let spoof_detection_in_transcript () =
  let cfg = base_cfg ~record:true () in
  let spoof =
    { Adversary.name = "spoof";
      act = (fun ~round:_ -> [ { Adversary.chan = 1; spoof = Some (plain 9 1 "fake") } ]);
      observe = (fun _ -> ()); observes = false }
  in
  let result =
    Engine.run cfg ~adversary:spoof
      [| (fun _ -> ignore (Engine.listen ~chan:1));
         (fun _ -> Engine.idle ());
         (fun _ -> Engine.idle ());
         (fun _ -> Engine.idle ()) |]
  in
  check Alcotest.int "spoofed delivery counted" 1
    result.Engine.stats.Transcript.Stats.spoofed_deliveries;
  check Alcotest.bool "record flags spoof" true
    (Transcript.spoof_delivered (List.hd result.Engine.transcript))

(* -- auditor -- *)

module Auditor = Radio.Auditor

let auditor_passes_engine_runs () =
  let cfg = base_cfg ~n:6 ~record:true ~seed:21L () in
  let adversary = Adversary.random_jammer (Prng.Rng.create 4L) ~channels:2 ~budget:1 in
  let result =
    Engine.run cfg ~adversary
      (Array.make 6 (fun (ctx : Engine.ctx) ->
           for _ = 1 to 30 do
             if ctx.Engine.id = 0 then Engine.transmit ~chan:0 (plain 0 1 "x")
             else ignore (Engine.listen ~chan:(Prng.Rng.int ctx.Engine.rng 2))
           done))
  in
  check (Alcotest.list Alcotest.string) "clean audit" []
    (List.map (fun v -> Format.asprintf "%a" Auditor.pp_violation v)
       (Auditor.check_model ~channels:2 ~budget:1 result.Engine.transcript))

let auditor_detects_forged_outcome () =
  (* Hand-build a record whose outcome contradicts its transmissions. *)
  let record =
    { Transcript.round = 3;
      honest_tx = [ (0, 0, plain 0 1 "x") ];
      listeners = [ (1, 0) ];
      strikes = [];
      outcomes = [| Transcript.Empty; Transcript.Empty |] }
  in
  check Alcotest.bool "violation reported" true
    (Auditor.check_model ~channels:2 ~budget:1 [ record ] <> [])

let auditor_detects_budget_violation () =
  let record =
    { Transcript.round = 0;
      honest_tx = [];
      listeners = [];
      strikes = [ (0, None); (1, None) ];
      outcomes =
        [| Transcript.Collision { transmitters = 1; jammed = true };
           Transcript.Collision { transmitters = 1; jammed = true } |] }
  in
  check Alcotest.bool "budget violation reported" true
    (List.exists
       (fun v -> v.Auditor.what = "2 strikes exceed budget 1")
       (Auditor.check_model ~channels:2 ~budget:1 [ record ]))

let auditor_flags_spoofed_deliveries () =
  let cfg = base_cfg ~record:true () in
  let spoof =
    { Adversary.name = "spoof";
      act = (fun ~round:_ -> [ { Adversary.chan = 1; spoof = Some (plain 9 1 "fake") } ]);
      observe = (fun _ -> ()); observes = false }
  in
  let result =
    Engine.run cfg ~adversary:spoof
      [| (fun _ -> ignore (Engine.listen ~chan:1));
         (fun _ -> Engine.idle ());
         (fun _ -> Engine.idle ());
         (fun _ -> Engine.idle ()) |]
  in
  (* Model-conforming (spoofing is legal radio behaviour)... *)
  check Alcotest.int "model clean" 0
    (List.length (Auditor.check_model ~channels:2 ~budget:1 result.Engine.transcript));
  (* ...but the authentication property correctly fails. *)
  check Alcotest.bool "authentication check fires" true
    (Auditor.check_no_spoofed_delivery result.Engine.transcript <> [])

let () =
  Alcotest.run "radio"
    [ ( "config",
        [ Alcotest.test_case "validation" `Quick config_validation ] );
      ( "semantics",
        [ Alcotest.test_case "single transmitter delivers" `Quick single_transmitter_delivers;
          Alcotest.test_case "two transmitters collide" `Quick two_transmitters_collide;
          Alcotest.test_case "channel isolation" `Quick listener_on_other_channel_hears_nothing;
          Alcotest.test_case "jam blocks" `Quick jam_blocks_delivery;
          Alcotest.test_case "spoof on empty channel" `Quick spoof_lands_on_empty_channel;
          Alcotest.test_case "spoof on busy channel collides" `Quick spoof_collides_with_honest;
          Alcotest.test_case "lone jam is silence" `Quick lone_jam_is_silence;
          Alcotest.test_case "no collision detection" `Quick transmitter_learns_nothing ] );
      ( "engine",
        [ Alcotest.test_case "current_round" `Quick current_round_advances;
          Alcotest.test_case "max_rounds abort" `Quick max_rounds_aborts;
          Alcotest.test_case "determinism" `Quick determinism;
          Alcotest.test_case "cheap path = record path" `Quick cheap_path_matches_record_path;
          Alcotest.test_case "bad channel rejected" `Quick bad_channel_rejected;
          Alcotest.test_case "node count checked" `Quick wrong_node_count_rejected ] );
      ( "adversary",
        [ Alcotest.test_case "budget validation" `Quick validate_budget;
          Alcotest.test_case "duplicate channels rejected" `Quick validate_duplicate_channel;
          Alcotest.test_case "strategies respect budget" `Quick strategies_respect_budget;
          Alcotest.test_case "reactive follows traffic" `Quick reactive_jammer_follows_traffic ] );
      ( "transcript",
        [ Alcotest.test_case "stats capture scenario" `Quick stats_capture_scenario;
          Alcotest.test_case "spoof detection" `Quick spoof_detection_in_transcript ] );
      ( "auditor",
        [ Alcotest.test_case "engine runs audit clean" `Quick auditor_passes_engine_runs;
          Alcotest.test_case "forged outcome detected" `Quick auditor_detects_forged_outcome;
          Alcotest.test_case "budget violation detected" `Quick auditor_detects_budget_violation;
          Alcotest.test_case "spoofed delivery flagged" `Quick auditor_flags_spoofed_deliveries ] ) ]
