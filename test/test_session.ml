(* Tests for the session layer (fragmentation/reassembly over the secure
   channel) and the transcript trace tooling. *)

module Session = Secure_channel.Session
module Service = Secure_channel.Service
module Trace = Radio.Trace

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* -- fragment codec -- *)

let fragment_roundtrip =
  QCheck.Test.make ~name:"fragment/reassemble roundtrip" ~count:200
    QCheck.(pair (int_range 1 32) (string_of_size (Gen.int_range 0 300)))
    (fun (mtu, message) ->
      let frags = Session.fragment ~mtu ~msg_id:7 message in
      let r = Session.create_reassembler () in
      let results = List.filter_map (fun f -> Session.feed r ~sender:3 f) frags in
      results = [ (7, message) ])

let fragment_out_of_order () =
  let frags = Session.fragment ~mtu:4 ~msg_id:1 "abcdefghijkl" in
  let r = Session.create_reassembler () in
  let shuffled = List.rev frags in
  let results = List.filter_map (fun f -> Session.feed r ~sender:0 f) shuffled in
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string)) "reassembles out of order"
    [ (1, "abcdefghijkl") ] results

let duplicates_suppressed () =
  let frags = Session.fragment ~mtu:4 ~msg_id:2 "hello world!" in
  let r = Session.create_reassembler () in
  let fed = frags @ frags @ frags in
  let results = List.filter_map (fun f -> Session.feed r ~sender:0 f) fed in
  check Alcotest.int "delivered exactly once" 1 (List.length results)

let senders_do_not_interfere () =
  let f1 = Session.fragment ~mtu:4 ~msg_id:0 "from-node-one" in
  let f2 = Session.fragment ~mtu:4 ~msg_id:0 "from-node-two" in
  let r = Session.create_reassembler () in
  (* Interleave two senders using the same msg_id. *)
  let feed sender f = Session.feed r ~sender f in
  let results =
    List.filter_map Fun.id
      (List.concat (List.map2 (fun a b -> [ feed 1 a; feed 2 b ]) f1 f2))
  in
  check Alcotest.int "both complete" 2 (List.length results);
  check Alcotest.bool "payloads intact" true
    (List.mem (0, "from-node-one") results && List.mem (0, "from-node-two") results)

let pending_tracks_progress () =
  let frags = Session.fragment ~mtu:4 ~msg_id:9 "0123456789abcdef" in
  let r = Session.create_reassembler () in
  (match frags with
   | first :: _ -> ignore (Session.feed r ~sender:5 first)
   | [] -> Alcotest.fail "no fragments");
  match Session.pending r with
  | [ (5, 9, 1, 4) ] -> ()
  | other ->
    Alcotest.failf "unexpected pending set (%d entries)" (List.length other)

let decode_rejects_garbage =
  QCheck.Test.make ~name:"decode_fragment rejects garbage" ~count:200
    (QCheck.string_of_size (QCheck.Gen.int_range 0 40))
    (fun junk ->
      match Session.decode_fragment junk with
      | None -> true
      | Some (msg_id, index, count, _) -> msg_id >= 0 && index < count)

(* -- end-to-end over the radio -- *)

let e2e_large_message_under_jamming () =
  let t = 1 in
  let cfg = Radio.Config.make ~n:12 ~channels:2 ~t ~seed:31L () in
  let key = Crypto.Sha256.digest "session-key" in
  let spec = Service.make_spec ~key ~cfg () in
  let holders = List.init 12 Fun.id in
  let big = String.init 300 (fun i -> Char.chr (32 + (i mod 90))) in
  let o =
    Session.run_workload ~cfg ~key_holders:holders ~spec ~mtu:32
      ~sends:[ (0, big); (5, "short follow-up") ]
      ~adversary:(Radio.Adversary.random_jammer (Prng.Rng.create 6L) ~channels:2 ~budget:t)
      ()
  in
  check Alcotest.int "two messages scheduled" 2 (List.length o.Session.deliveries);
  List.iter
    (fun (d : Session.delivery) ->
      check Alcotest.int
        (Printf.sprintf "message %d reassembled by all" d.Session.msg_id)
        11
        (List.length d.Session.completed_by))
    o.Session.deliveries;
  check Alcotest.int "fragment count" (10 + 1) o.Session.fragments_sent

(* -- trace tooling -- *)

let recorded_run () =
  let cfg = Radio.Config.make ~n:4 ~channels:2 ~t:1 ~seed:3L ~record_transcript:true () in
  let jam =
    { Radio.Adversary.name = "jam0";
      act = (fun ~round -> if round = 0 then [ { Radio.Adversary.chan = 1; spoof = None } ] else []);
      observe = (fun _ -> ()); observes = false }
  in
  Radio.Engine.run cfg ~adversary:jam
    [| (fun _ ->
         Radio.Engine.transmit ~chan:0 (Radio.Frame.Plain { src = 0; dst = 1; body = "x" });
         Radio.Engine.idle ());
       (fun _ ->
         ignore (Radio.Engine.listen ~chan:0);
         Radio.Engine.idle ());
       (fun _ -> Radio.Engine.idle_for 2);
       (fun _ -> Radio.Engine.idle_for 2) |]

let trace_renders () =
  let result = recorded_run () in
  let text = Format.asprintf "%a" (Trace.pp_rounds ~limit:10) result.Radio.Engine.transcript in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "mentions delivery" true (contains text "delivered from 0")

let trace_csv_shape () =
  let result = recorded_run () in
  let csv = Trace.to_csv result.Radio.Engine.transcript in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (* Header + 2 rounds x 2 channels. *)
  check Alcotest.int "row count" 5 (List.length lines);
  check Alcotest.bool "header" true
    (String.length (List.hd lines) > 0 && String.sub (List.hd lines) 0 5 = "round")

let trace_utilization () =
  let result = recorded_run () in
  let usage = Trace.utilization ~channels:2 result.Radio.Engine.transcript in
  match usage with
  | [ ch0; ch1 ] ->
    check Alcotest.int "ch0 carried the frame" 1 ch0.Trace.deliveries;
    check Alcotest.int "ch1 jammed once" 1 ch1.Trace.jammed;
    check Alcotest.int "no spoofs" 0 (ch0.Trace.spoofed + ch1.Trace.spoofed)
  | _ -> Alcotest.fail "expected two channels"

let () =
  Alcotest.run "session"
    [ ( "codec",
        [ Alcotest.test_case "out of order" `Quick fragment_out_of_order;
          Alcotest.test_case "duplicates suppressed" `Quick duplicates_suppressed;
          Alcotest.test_case "senders independent" `Quick senders_do_not_interfere;
          Alcotest.test_case "pending progress" `Quick pending_tracks_progress;
          qcheck fragment_roundtrip;
          qcheck decode_rejects_garbage ] );
      ( "end-to-end",
        [ Alcotest.test_case "large message under jamming" `Quick e2e_large_message_under_jamming ] );
      ( "trace",
        [ Alcotest.test_case "renders" `Quick trace_renders;
          Alcotest.test_case "csv shape" `Quick trace_csv_shape;
          Alcotest.test_case "utilization" `Quick trace_utilization ] ) ]
