(* Fixture: the audited exception.  Same shape as true_escape, but the
   allocation carries an escape comment, so the finding is suppressed —
   and deleting the comment must flip it back to active. *)

(* radio-race: allow race-escape *)
let stats : (string, int) Hashtbl.t = Hashtbl.create 16

let run xs =
  Parallel.map_ordered ~jobs:2
    (fun x ->
      Hashtbl.replace stats "n" x;
      x)
    xs
