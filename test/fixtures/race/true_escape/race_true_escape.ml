(* Fixture: the textbook escape.  A module-level table written from a
   closure submitted to the pool — every task mutates the same store. *)

let memo : (int, int) Hashtbl.t = Hashtbl.create 64

let run xs =
  Parallel.map_ordered ~jobs:2
    (fun x ->
      let v = x * x in
      Hashtbl.replace memo x v;
      v)
    xs
