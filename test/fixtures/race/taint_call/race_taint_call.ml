(* Fixture: taint through the call graph.  The pool task looks clean;
   the nondeterminism is two calls away. *)

let jitter () = Random.int 10

let noisy x = x + jitter ()

let run xs = Parallel.map_ordered ~jobs:2 (fun x -> noisy x) xs
