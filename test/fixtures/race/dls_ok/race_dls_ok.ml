(* Fixture: the sanctioned patterns.  Per-domain DLS state and
   closure-local allocations are both fine — the analyzer must stay
   silent here. *)

let slot = Domain.DLS.new_key (fun () -> ref 0)

let run xs =
  Parallel.map_ordered ~jobs:2
    (fun x ->
      let buf = Buffer.create 8 in
      Buffer.add_string buf (string_of_int x);
      let r = Domain.DLS.get slot in
      incr r;
      Buffer.length buf + x)
    xs
