(* Fixture: the laundered escape.  The shared array reaches the task
   closure through a module-level alias, a local rebinding, and a helper
   that mutates its parameter — each step defeats a syntactic checker,
   none defeats alias- and call-graph-aware analysis. *)

let scratch = Array.make 16 0

let table = scratch

let bump arr i = arr.(i) <- arr.(i) + 1

let run xs =
  let t = table in
  Parallel.map_ordered ~jobs:2
    (fun x ->
      bump t (x land 15);
      x)
    xs
