(* Lint fixture: module-level mutable state that the test config
   allowlists wholesale (a blessed registry module). *)

let registry : (string, int) Hashtbl.t = Hashtbl.create 16

let registered = ref 0
