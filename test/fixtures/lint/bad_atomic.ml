(* Lint fixture: Atomic cells created or mutated outside the parallel
   runtime (lib/parallel, lib/cache). *)

let hits = Atomic.make 0

let record () = Atomic.incr hits

let reset () = Atomic.set hits 0

let swap v = Atomic.exchange hits v

let bump n = Atomic.fetch_and_add hits n
