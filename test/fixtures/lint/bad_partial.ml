(* Lint fixture: partial functions in (fixture-scoped) protocol code. *)

let first xs = List.hd xs

let select xs n = List.nth xs n

let force o = Option.get o

let peek a = Array.unsafe_get a 0

let unreachable () = assert false
