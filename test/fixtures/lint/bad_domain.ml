(* Lint fixture: raw parallelism primitives outside lib/parallel. *)

let worker f = Domain.spawn f

let wait d = Domain.join d

let lock = Mutex.create ()

let cond = Condition.create ()

let sem = Semaphore.Counting.make 4
