(* Lint fixture: module-level mutable state, including inside a
   submodule; the function-local ref at the end must NOT fire. *)

let cache : (string, int) Hashtbl.t = Hashtbl.create 16

let hits = ref 0

let scratch = Buffer.create 80

module Inner = struct
  let nested = ref []
end

let counter () =
  let c = ref 0 in
  fun () ->
    incr c;
    !c
