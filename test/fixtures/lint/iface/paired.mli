(** Lint fixture: the interface that makes [paired.ml] compliant. *)

val answer : int
