(* Lint fixture: a library module with no .mli. *)

let answer = 42
