(* Lint fixture: a module whose .mli exists. *)

let answer = 42
