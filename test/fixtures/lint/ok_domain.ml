(* Lint fixture: the same primitives, each quieted by an escape comment —
   the shape lib/parallel itself would need if it were not allowlisted. *)

let worker f = Domain.spawn f (* radio-lint: allow nondet-domain — fixture *)

(* radio-lint: allow nondet-domain *)
let wait d = Domain.join d

(* radio-lint: allow nondet-domain *)
let lock = Mutex.create ()

let cond = Condition.create () (* radio-lint: allow nondet-domain *)

(* radio-lint: allow nondet-domain *)
let sem = Semaphore.Counting.make 4
