(* Lint fixture: printing quieted by escape comments; fprintf to a
   caller-supplied formatter is always fine. *)

(* radio-lint: allow io-print *)
let shout () = print_endline "hello"

let report n = Printf.printf "n = %d\n" n (* radio-lint: allow io-print *)

let render fmt n = Format.fprintf fmt "n = %d@." n
