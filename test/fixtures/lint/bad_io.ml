(* Lint fixture: printing from library code. *)

let shout () = print_endline "hello"

let report n = Printf.printf "n = %d\n" n

let warn msg = Format.eprintf "warning: %s@." msg

let channel () = Format.std_formatter
