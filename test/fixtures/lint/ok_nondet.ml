(* Lint fixture: the same escapes, each quieted by an escape comment
   (same line or the line above). *)

let pick () = Random.int 6 (* radio-lint: allow nondet-random — fixture *)

(* radio-lint: allow nondet-time *)
let stamp () = Sys.time ()

(* radio-lint: allow nondet-unix — justification text is ignored *)
let wall () = Unix.gettimeofday ()

(* radio-lint: allow nondet-hashtbl-order *)
let entries h = Hashtbl.fold (fun k v acc -> (k, v) :: acc) h []

let spread h = Hashtbl.iter (fun _ _ -> ()) h (* radio-lint: allow nondet-hashtbl-order *)

(* radio-lint: allow nondet-hashtbl-order *)
let stream h = Hashtbl.to_seq h

(* radio-lint: allow nondet-poly-hash *)
let fingerprint x = Hashtbl.hash x

(* radio-lint: allow nondet-poly-compare *)
let rank xs = List.sort compare xs
