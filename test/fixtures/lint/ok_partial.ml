(* Lint fixture: the same partial calls, escape-commented. *)

(* radio-lint: allow partial-list *)
let first xs = List.hd xs

let select xs n = List.nth xs n (* radio-lint: allow partial-list *)

(* radio-lint: allow partial-option-get *)
let force o = Option.get o

(* radio-lint: allow partial-array-unsafe *)
let peek a = Array.unsafe_get a 0

(* radio-lint: allow partial-assert-false *)
let unreachable () = assert false
