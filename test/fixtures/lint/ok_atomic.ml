(* Lint fixture: the same Atomic primitives, each quieted by an escape
   comment — the shape lib/parallel and lib/cache would need if they were
   not allowlisted.  Atomic.get is a plain read and never fires. *)

(* radio-lint: allow nondet-atomic *)
let hits = Atomic.make 0

let record () = Atomic.incr hits (* radio-lint: allow nondet-atomic — fixture *)

(* radio-lint: allow nondet-atomic *)
let reset () = Atomic.set hits 0

let peek () = Atomic.get hits
