(* Lint fixture: every nondeterminism escape fires. *)

let pick () = Random.int 6

let stamp () = Sys.time ()

let wall () = Unix.gettimeofday ()

let entries h = Hashtbl.fold (fun k v acc -> (k, v) :: acc) h []

let spread h = Hashtbl.iter (fun _ _ -> ()) h

let stream h = Hashtbl.to_seq h

let fingerprint x = Hashtbl.hash x

let rank xs = List.sort compare xs
