(* Tests for the multiplexed secure-channel service: replay windows, epoch
   re-keying, backpressure, crypto-mode equivalence (batched vs per-message
   byte identity), pool-size determinism, and both transports end-to-end. *)

module Mux = Secure_channel.Mux

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let key = Crypto.Sha256.digest "mux-test-group-key"

(* ------------------------------------------------------------------ *)
(* Window properties (against a naive reference model).                *)
(* ------------------------------------------------------------------ *)

(* Reference model: remember every delivered seq and the running maximum. *)
let window_matches_model =
  QCheck.Test.make ~name:"window matches naive model" ~count:300
    QCheck.(pair (int_range 1 62) (small_list (int_range 0 80)))
    (fun (width, seqs) ->
      let w = Mux.Window.create ~width in
      let delivered = Hashtbl.create 16 in
      let hi = ref (-1) in
      List.for_all
        (fun seq ->
          let expect =
            if !hi >= 0 && seq <= !hi && !hi - seq >= width then Mux.Window.Out_of_window
            else if Hashtbl.mem delivered seq then Mux.Window.Duplicate
            else Mux.Window.Fresh
          in
          let got = Mux.Window.check w seq in
          let ok =
            match (got, expect) with
            | Mux.Window.Fresh, Mux.Window.Fresh
            | Mux.Window.Duplicate, Mux.Window.Duplicate
            | Mux.Window.Out_of_window, Mux.Window.Out_of_window -> true
            | _ -> false
          in
          (match got with
          | Mux.Window.Fresh ->
            Mux.Window.note w seq;
            Hashtbl.replace delivered seq ();
            hi := max !hi seq
          | Mux.Window.Duplicate | Mux.Window.Out_of_window -> ());
          ok && Mux.Window.highest w = !hi)
        seqs)

let window_duplicate_after_note () =
  let w = Mux.Window.create ~width:8 in
  Mux.Window.note w 5;
  (match Mux.Window.check w 5 with
  | Mux.Window.Duplicate -> ()
  | _ -> Alcotest.fail "seq 5 should be a duplicate");
  (match Mux.Window.check w 6 with
  | Mux.Window.Fresh -> ()
  | _ -> Alcotest.fail "seq 6 should be fresh");
  Mux.Window.note w 20;
  (* 5 fell more than width-1 below the new top. *)
  match Mux.Window.check w 5 with
  | Mux.Window.Out_of_window -> ()
  | _ -> Alcotest.fail "seq 5 should now be out of window"

let window_rejects_bad_width () =
  Alcotest.check_raises "width 0" (Invalid_argument "Mux.Window.create: width must be in 1..62")
    (fun () -> ignore (Mux.Window.create ~width:0));
  Alcotest.check_raises "width 63" (Invalid_argument "Mux.Window.create: width must be in 1..62")
    (fun () -> ignore (Mux.Window.create ~width:63))

(* ------------------------------------------------------------------ *)
(* Epoch verdict properties.                                           *)
(* ------------------------------------------------------------------ *)

let epoch_verdict_properties =
  QCheck.Test.make ~name:"epoch verdict: current always, previous in grace, rest stale"
    ~count:500
    QCheck.(
      quad (int_range 1 50) (int_range 0 50) (int_range 0 2000) (int_range (-2) 130))
    (fun (epoch_len, grace_raw, now, frame_epoch) ->
      let grace = min grace_raw epoch_len in
      let cur = now / epoch_len in
      let got = Mux.epoch_verdict ~epoch_len ~grace ~now ~frame_epoch in
      let expect =
        if frame_epoch = cur then Mux.Current
        else if frame_epoch = cur - 1 && now mod epoch_len < grace then Mux.Previous
        else Mux.Stale
      in
      match (got, expect) with
      | Mux.Current, Mux.Current | Mux.Previous, Mux.Previous | Mux.Stale, Mux.Stale ->
        true
      | _ -> false)

let epoch_boundary_cases () =
  (* epoch_len 10, grace 3: rounds 10,11,12 still accept epoch 0; 13 no. *)
  let v ~now ~fe = Mux.epoch_verdict ~epoch_len:10 ~grace:3 ~now ~frame_epoch:fe in
  (match v ~now:10 ~fe:0 with Mux.Previous -> () | _ -> Alcotest.fail "grace start");
  (match v ~now:12 ~fe:0 with Mux.Previous -> () | _ -> Alcotest.fail "grace end");
  (match v ~now:13 ~fe:0 with Mux.Stale -> () | _ -> Alcotest.fail "stale after grace");
  (match v ~now:12 ~fe:1 with Mux.Current -> () | _ -> Alcotest.fail "current epoch");
  (match v ~now:5 ~fe:1 with Mux.Stale -> () | _ -> Alcotest.fail "future epoch stale");
  match v ~now:25 ~fe:0 with Mux.Stale -> () | _ -> Alcotest.fail "two epochs back"

(* ------------------------------------------------------------------ *)
(* End-to-end runs.                                                    *)
(* ------------------------------------------------------------------ *)

let null = Radio.Adversary.null

let jammer seed budget = Radio.Adversary.random_jammer (Prng.Rng.create seed) ~channels:8 ~budget

let base_spec ?(crypto = Mux.Batched) ?(transport = Mux.Acked) ?(rounds = 40)
    ?(logical = 24) ?(rate = 1) ?(queue_cap = 8) ?(outsiders = 0) () =
  Mux.make ~key ~logical ~phys:8 ~budget:2 ~transport ~crypto ~rounds ~rate ~queue_cap
    ~epoch_len:8 ~grace:3 ~outsiders ~seed:11L ()

let acked_null_delivers () =
  let r = Mux.run (base_spec ()) ~adversary:null in
  check Alcotest.bool "completed" true r.Mux.engine.Radio.Engine.completed;
  check Alcotest.bool "delivers plenty" true (r.Mux.stats.Mux.delivered > 500);
  check Alcotest.int "no forged accepts" 0 r.Mux.stats.Mux.forged_accepts;
  check Alcotest.int "no leaks" 0 r.Mux.stats.Mux.plaintext_leaks;
  check Alcotest.bool "acks retire heads" true (r.Mux.stats.Mux.acked > 500);
  check Alcotest.bool "epochs rolled" true (r.Mux.stats.Mux.rekeys >= 4);
  (* Under the null adversary nothing is lost: every slot is collision-free
     by construction, so no retransmissions and no duplicates. *)
  check Alcotest.int "no retransmissions" 0 r.Mux.stats.Mux.retransmissions;
  check Alcotest.int "no duplicates" 0 r.Mux.stats.Mux.duplicates

let acked_jamming_retransmits () =
  let r = Mux.run (base_spec ~rounds:60 ()) ~adversary:(jammer 5L 2) in
  check Alcotest.bool "completed" true r.Mux.engine.Radio.Engine.completed;
  check Alcotest.bool "still delivers" true (r.Mux.stats.Mux.delivered > 200);
  check Alcotest.bool "jamming forces retransmissions" true
    (r.Mux.stats.Mux.retransmissions > 0);
  check Alcotest.int "authentication holds" 0 r.Mux.stats.Mux.forged_accepts;
  check Alcotest.int "secrecy holds" 0 r.Mux.stats.Mux.plaintext_leaks

let backpressure_sheds () =
  (* Offered load of 3/round into a queue of 2 under jamming must shed. *)
  let r = Mux.run (base_spec ~rounds:30 ~rate:3 ~queue_cap:2 ()) ~adversary:(jammer 7L 2) in
  check Alcotest.bool "sheds under overload" true (r.Mux.stats.Mux.shed > 0);
  check Alcotest.int "offered = rate * channels * rounds"
    (3 * 24 * 30) r.Mux.stats.Mux.offered

let outsiders_cannot_read_or_forge () =
  let r = Mux.run (base_spec ~rounds:40 ~outsiders:3 ()) ~adversary:null in
  check Alcotest.bool "outsiders overheard traffic" true (r.Mux.stats.Mux.snooped > 0);
  check Alcotest.int "secrecy: no outsider decryption" 0 r.Mux.stats.Mux.plaintext_leaks;
  check Alcotest.int "authenticity: no forged accepts" 0 r.Mux.stats.Mux.forged_accepts;
  (* Outsider injections that land on a listened slot die on the MAC. *)
  check Alcotest.bool "service still works" true (r.Mux.stats.Mux.delivered > 500)

let crypto_modes_byte_identical () =
  List.iter
    (fun mk_adversary ->
      (* A fresh adversary per run: random_jammer carries mutable rng state. *)
      let a = Mux.run (base_spec ~crypto:Mux.Batched ~rounds:30 ()) ~adversary:(mk_adversary ()) in
      let b = Mux.run (base_spec ~crypto:Mux.Per_message ~rounds:30 ()) ~adversary:(mk_adversary ()) in
      check Alcotest.string "render_stats identical across crypto modes"
        (Mux.render_stats a) (Mux.render_stats b);
      check Alcotest.string "digest identical" (Mux.output_digest a) (Mux.output_digest b))
    [ (fun () -> null); (fun () -> jammer 3L 2) ]

let pool_sizes_byte_identical () =
  let run pool = Mux.run ?pool (base_spec ~rounds:30 ~outsiders:2 ()) ~adversary:(jammer 9L 2) in
  let solo = run None in
  List.iter
    (fun domains ->
      Parallel.Pool.with_pool ~domains (fun pool ->
          let r = run (Some pool) in
          check Alcotest.string
            (Printf.sprintf "render_stats identical at %d domains" domains)
            (Mux.render_stats solo) (Mux.render_stats r)))
    [ 2; 4 ]

let repeat_transport_full_delivery () =
  let spec =
    base_spec ~transport:(Mux.Repeat { reps = 12; group = 5 }) ~logical:2 ~rounds:25 ()
  in
  let r = Mux.run spec ~adversary:(jammer 13L 2) in
  check Alcotest.bool "completed" true r.Mux.engine.Radio.Engine.completed;
  check Alcotest.bool "heads retired" true (r.Mux.stats.Mux.messages_done > 0);
  check Alcotest.bool "most heads reach every receiver" true
    (r.Mux.stats.Mux.full_deliveries * 10 >= r.Mux.stats.Mux.messages_done * 8);
  check Alcotest.int "no forged accepts" 0 r.Mux.stats.Mux.forged_accepts;
  let b =
    Mux.run
      { spec with Mux.crypto = Mux.Per_message }
      ~adversary:(jammer 13L 2)
  in
  check Alcotest.string "repeat crypto modes identical" (Mux.render_stats r)
    (Mux.render_stats b)

let latency_percentiles_sane () =
  let r = Mux.run (base_spec ~rounds:40 ()) ~adversary:null in
  let p50 = Mux.latency_percentile r 0.50 and p99 = Mux.latency_percentile r 0.99 in
  check Alcotest.bool "p50 <= p99" true (p50 <= p99);
  (* Null adversary: everything delivers the round it is sent. *)
  check Alcotest.int "null-adversary p99 latency" 0 p99

let spec_validation () =
  Alcotest.check_raises "budget >= phys"
    (Invalid_argument "Mux.make: need 0 <= budget < phys") (fun () ->
      ignore (Mux.make ~key ~logical:4 ~phys:4 ~budget:4 ~rounds:10 ()));
  Alcotest.check_raises "grace > epoch_len"
    (Invalid_argument "Mux.make: need 0 <= grace <= epoch_len") (fun () ->
      ignore (Mux.make ~key ~logical:4 ~phys:4 ~budget:1 ~rounds:10 ~epoch_len:4 ~grace:5 ()))

(* ------------------------------------------------------------------ *)
(* Piggybacked acks.                                                   *)
(* ------------------------------------------------------------------ *)

let pig_spec ?(crypto = Mux.Batched) ?(ack_mode = Mux.Piggybacked) ?(rounds = 40)
    ?(logical = 24) ?(rate = 1) ?(queue_cap = 64) ?(outsiders = 0) () =
  Mux.make ~key ~logical ~phys:8 ~budget:2 ~transport:Mux.Acked ~ack_mode ~crypto ~rounds
    ~rate ~queue_cap ~epoch_len:8 ~grace:3 ~outsiders ~seed:11L ()

(* Jams [budget] fixed channels during the first [real_rounds] engine rounds
   and then falls silent forever, so early losses are retransmitted out of
   the queue while the adversary is quiet and the run still drains. *)
let early_jammer ~real_rounds ~budget =
  { Radio.Adversary.name = "early-jammer";
    act =
      (fun ~round ->
        if round < real_rounds then
          List.init budget (fun i -> { Radio.Adversary.chan = i; spoof = None })
        else []);
    observe = (fun _ -> ());
    observes = false }

(* The parity set: every counter both ack modes must agree on for a fully
   drained run.  Duplicates, retransmissions, and latency are mechanism
   noise (piggybacking re-sends the final head as an ack carrier) and are
   deliberately excluded. *)
let parity_counters (s : Mux.stats) =
  (s.Mux.offered, s.Mux.delivered, s.Mux.acked, s.Mux.shed, s.Mux.forged_accepts,
   s.Mux.plaintext_leaks)

let pig_null_drains_and_matches_slotted () =
  let p = Mux.run (pig_spec ()) ~adversary:null in
  let s = Mux.run (pig_spec ~ack_mode:Mux.Slotted ()) ~adversary:null in
  check Alcotest.bool "completed" true p.Mux.engine.Radio.Engine.completed;
  let ps = p.Mux.stats in
  check Alcotest.int "offered = rate * logical * rounds" (24 * 40) ps.Mux.offered;
  check Alcotest.int "fully drained: delivered = offered" ps.Mux.offered ps.Mux.delivered;
  check Alcotest.int "fully drained: acked = delivered" ps.Mux.delivered ps.Mux.acked;
  check Alcotest.int "no shedding" 0 ps.Mux.shed;
  check Alcotest.int "no forged accepts" 0 ps.Mux.forged_accepts;
  check Alcotest.int "no leaks" 0 ps.Mux.plaintext_leaks;
  (* The one flush round re-sends each final head as its ack carrier. *)
  check Alcotest.int "flush-round retransmissions only" 24 ps.Mux.retransmissions;
  check Alcotest.bool "parity with slotted on the drained counters" true
    (parity_counters ps = parity_counters s.Mux.stats);
  (* Fewer real radio rounds for the same emulated service. *)
  check Alcotest.bool "piggybacking uses fewer real rounds" true
    (p.Mux.engine.Radio.Engine.rounds_used < s.Mux.engine.Radio.Engine.rounds_used)

let pig_rpe_pinned () =
  (* The headline reduction at service-bench scale: 1024 logical channels
     over 16 physical ones go from 2S + 2 = 130 real rounds per emulated
     round to S + 1 = 65 — an exact 2x. *)
  let big ack_mode =
    Mux.make ~key ~logical:1024 ~phys:16 ~budget:2 ~ack_mode ~rounds:1 ()
  in
  check Alcotest.int "slotted rpe at 1024/16" 130
    (Mux.real_rounds_per_emulated (big Mux.Slotted));
  check Alcotest.int "piggybacked rpe at 1024/16" 65
    (Mux.real_rounds_per_emulated (big Mux.Piggybacked));
  check Alcotest.int "slotted rpe at 24/8" 8
    (Mux.real_rounds_per_emulated (pig_spec ~ack_mode:Mux.Slotted ()));
  check Alcotest.int "piggybacked rpe at 24/8" 4
    (Mux.real_rounds_per_emulated (pig_spec ()));
  (* Duplex pairing also halves the node count. *)
  check Alcotest.int "slotted nodes" (2 * 1024) (Mux.node_count (big Mux.Slotted));
  check Alcotest.int "piggybacked nodes" 1024 (Mux.node_count (big Mux.Piggybacked))

let pig_early_jamming_recovers () =
  let spec = pig_spec ~rounds:60 () in
  let jam_window = 6 * Mux.real_rounds_per_emulated spec in
  let p = Mux.run spec ~adversary:(early_jammer ~real_rounds:jam_window ~budget:2) in
  let ps = p.Mux.stats in
  check Alcotest.bool "completed" true p.Mux.engine.Radio.Engine.completed;
  check Alcotest.int "offered in full" (24 * 60) ps.Mux.offered;
  check Alcotest.bool "jamming forces retransmissions" true
    (ps.Mux.retransmissions > 24);
  check Alcotest.int "no shedding into a generous queue" 0 ps.Mux.shed;
  check Alcotest.int "authentication holds" 0 ps.Mux.forged_accepts;
  check Alcotest.int "secrecy holds" 0 ps.Mux.plaintext_leaks;
  (* Rate 1 leaves no spare slots, so messages stalled during the jam
     window stay queued to the end — but never more than the window holds,
     and acks trail deliveries by at most the flush round's sends. *)
  check Alcotest.bool "delivered within backlog bound" true
    (ps.Mux.delivered >= ps.Mux.offered - (6 * 24));
  check Alcotest.bool "acked close behind delivered" true
    (ps.Mux.acked <= ps.Mux.delivered && ps.Mux.delivered - ps.Mux.acked <= 2 * 24)

let pig_crypto_modes_byte_identical () =
  List.iter
    (fun mk_adversary ->
      let a = Mux.run (pig_spec ~crypto:Mux.Batched ()) ~adversary:(mk_adversary ()) in
      let b = Mux.run (pig_spec ~crypto:Mux.Per_message ()) ~adversary:(mk_adversary ()) in
      check Alcotest.string "piggybacked render_stats identical across crypto modes"
        (Mux.render_stats a) (Mux.render_stats b))
    [ (fun () -> null);
      (fun () -> early_jammer ~real_rounds:(4 * 4) ~budget:2);
      (fun () -> jammer 3L 2) ]

let pig_pool_sizes_byte_identical () =
  let run pool =
    Mux.run ?pool (pig_spec ~outsiders:2 ()) ~adversary:(jammer 9L 2)
  in
  let solo = run None in
  List.iter
    (fun domains ->
      Parallel.Pool.with_pool ~domains (fun pool ->
          let r = run (Some pool) in
          check Alcotest.string
            (Printf.sprintf "piggybacked render_stats identical at %d domains" domains)
            (Mux.render_stats solo) (Mux.render_stats r)))
    [ 2; 4 ]

let pig_outsiders_blocked () =
  let r = Mux.run (pig_spec ~outsiders:3 ()) ~adversary:null in
  check Alcotest.bool "outsiders overheard traffic" true (r.Mux.stats.Mux.snooped > 0);
  check Alcotest.int "secrecy: no outsider decryption" 0 r.Mux.stats.Mux.plaintext_leaks;
  check Alcotest.int "authenticity: no forged accepts" 0 r.Mux.stats.Mux.forged_accepts;
  (* Outsider forgeries collide with data slots like jamming, so the rate-1
     pipeline keeps a small backlog; the service must still mostly deliver. *)
  check Alcotest.bool "service still works" true
    (r.Mux.stats.Mux.delivered > (r.Mux.stats.Mux.offered * 3) / 4)

let pig_spec_validation () =
  Alcotest.check_raises "piggybacked needs Acked"
    (Invalid_argument "Mux.make: Piggybacked acks need the Acked transport") (fun () ->
      ignore
        (Mux.make ~key ~logical:4 ~phys:4 ~budget:1
           ~transport:(Mux.Repeat { reps = 3; group = 2 })
           ~ack_mode:Mux.Piggybacked ~rounds:10 ()));
  Alcotest.check_raises "piggybacked needs even logical"
    (Invalid_argument "Mux.make: Piggybacked acks need an even number of logical channels")
    (fun () ->
      ignore (Mux.make ~key ~logical:5 ~phys:4 ~budget:1 ~ack_mode:Mux.Piggybacked ~rounds:10 ()))

let () =
  Alcotest.run "mux"
    [ ( "window",
        [ qcheck window_matches_model;
          Alcotest.test_case "duplicate and eviction" `Quick window_duplicate_after_note;
          Alcotest.test_case "width validation" `Quick window_rejects_bad_width ] );
      ( "epoch",
        [ qcheck epoch_verdict_properties;
          Alcotest.test_case "boundary cases" `Quick epoch_boundary_cases ] );
      ( "acked",
        [ Alcotest.test_case "null adversary delivers" `Quick acked_null_delivers;
          Alcotest.test_case "jamming retransmits" `Quick acked_jamming_retransmits;
          Alcotest.test_case "backpressure sheds" `Quick backpressure_sheds;
          Alcotest.test_case "outsiders blocked" `Quick outsiders_cannot_read_or_forge;
          Alcotest.test_case "latency sane" `Quick latency_percentiles_sane;
          Alcotest.test_case "spec validation" `Quick spec_validation ] );
      ( "determinism",
        [ Alcotest.test_case "crypto modes byte-identical" `Quick crypto_modes_byte_identical;
          Alcotest.test_case "pool sizes byte-identical" `Quick pool_sizes_byte_identical ] );
      ( "repeat",
        [ Alcotest.test_case "full delivery under jamming" `Quick repeat_transport_full_delivery ] );
      ( "piggybacked",
        [ Alcotest.test_case "null drains and matches slotted" `Quick
            pig_null_drains_and_matches_slotted;
          Alcotest.test_case "real-rounds reduction pinned" `Quick pig_rpe_pinned;
          Alcotest.test_case "early jamming recovers" `Quick pig_early_jamming_recovers;
          Alcotest.test_case "crypto modes byte-identical" `Quick
            pig_crypto_modes_byte_identical;
          Alcotest.test_case "pool sizes byte-identical" `Quick pig_pool_sizes_byte_identical;
          Alcotest.test_case "outsiders blocked" `Quick pig_outsiders_blocked;
          Alcotest.test_case "spec validation" `Quick pig_spec_validation ] ) ]
