(* Tests for the typed interprocedural race/determinism analyzer.

   The fixture mini-projects under fixtures/race/ are real dune libraries
   linked into this executable, which guarantees their .cmt files exist in
   the build tree before the suite runs.  The driver is exercised
   in-process (cwd is _build/default/test, so the build dir is [.] for the
   fixtures and [..] for the repo itself); the CLI binary is spawned only
   for the exit-code-2 contract. *)

module Config = Lint.Config
module Driver = Analysis.Driver
module Report = Analysis.Report
module Json = Experiments.Json

let config =
  match Config.load "../lint.toml" with
  | Ok c -> c
  | Error e -> Alcotest.failf "lint.toml: %s" e

let fixture_options ?read_source ?(jobs = 1) () =
  { Driver.build_dir = ".";
    source_root = ".";
    roots = [ "fixtures/race" ];
    config;
    jobs;
    read_source
  }

let run_exn options =
  match Driver.run options with
  | Ok o -> o
  | Error e -> Alcotest.failf "driver: %s" e

let finding_file (f : Report.finding) = f.Report.f_loc.Analysis.Names.file

(* Replace the first occurrence of [marker] in [text] so the escape
   comment no longer matches, leaving every other line untouched. *)
let drop_first_marker text =
  let marker = Report.escape_marker in
  let mlen = String.length marker in
  let n = String.length text in
  let rec find i =
    if i + mlen > n then None
    else if String.sub text i mlen = marker then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> text
  | Some i ->
    String.concat ""
      [ String.sub text 0 i; String.make mlen 'x'; String.sub text (i + mlen) (n - i - mlen) ]

let classified_for report ~file =
  List.filter
    (fun c -> finding_file c.Report.c_finding = file)
    report.Report.r_findings

let test_fixture_findings () =
  let o = run_exn (fixture_options ()) in
  let report = o.Driver.o_report in
  Alcotest.(check int) "exit code" 1 (Report.exit_code report);
  Alcotest.(check (list string)) "load errors" [] (List.map fst report.Report.r_errors);
  let active = Report.active report in
  let case name = "fixtures/race/" ^ name in
  let active_in name rule =
    List.filter
      (fun f -> f.Report.f_rule = rule && finding_file f = "test/" ^ case name)
      active
  in
  (* true escape: a module-level Hashtbl written from a pool task. *)
  (match active_in "true_escape/race_true_escape.ml" "race-escape" with
  | [ f ] ->
    Alcotest.(check bool) "true_escape crosses a pool entry" true (f.Report.f_entry <> None)
  | fs -> Alcotest.failf "true_escape: %d race-escape findings" (List.length fs));
  (* alias laundering: the write goes through two lets and a helper, and
     the chain must surface that derivation. *)
  (match active_in "alias_escape/race_alias_escape.ml" "race-escape" with
  | [ f ] ->
    Alcotest.(check bool)
      "alias chain reaches through the helper" true
      (List.length f.Report.f_chain >= 2)
  | fs -> Alcotest.failf "alias_escape: %d race-escape findings" (List.length fs));
  (* taint through the call graph: closure -> noisy -> jitter -> Random. *)
  (match active_in "taint_call/race_taint_call.ml" "race-taint" with
  | [ f ] ->
    Alcotest.(check bool)
      "taint chain spans the call graph" true
      (List.length f.Report.f_chain >= 2)
  | fs -> Alcotest.failf "taint_call: %d race-taint findings" (List.length fs));
  Alcotest.(check int) "exactly three active findings" 3 (List.length active);
  (* Domain-local state is the sanctioned pattern and must stay silent. *)
  Alcotest.(check int)
    "dls_ok is clean" 0
    (List.length (classified_for report ~file:("test/" ^ case "dls_ok/race_dls_ok.ml")));
  (* The escape comment downgrades allow_ok to suppressed, not gone. *)
  match classified_for report ~file:("test/" ^ case "allow_ok/race_allow_ok.ml") with
  | [ { Report.c_status = Suppressed reason; _ } ] ->
    Alcotest.(check string) "suppression reason" "escape-comment" reason
  | cs -> Alcotest.failf "allow_ok: %d classified findings" (List.length cs)

let test_allow_comment_flip () =
  (* Deleting the escape comment must flip the suppressed finding back to
     active: the comment is load-bearing, not decorative. *)
  let victim = "test/fixtures/race/allow_ok/race_allow_ok.ml" in
  let read_source file =
    let text = Analysis.Loader.source_text ~source_root:"." file in
    if file = victim then Option.map drop_first_marker text else text
  in
  let o = run_exn (fixture_options ~read_source ()) in
  let report = o.Driver.o_report in
  Alcotest.(check int) "exit flips to 1" 1 (Report.exit_code report);
  match classified_for report ~file:victim with
  | [ { Report.c_status = Active; _ } ] -> ()
  | cs -> Alcotest.failf "allow_ok after comment removal: %d findings" (List.length cs)

let head_options ?read_source () =
  { Driver.build_dir = "..";
    source_root = "..";
    roots = [ "lib"; "bin" ];
    config;
    jobs = 1;
    read_source
  }

let test_head_clean () =
  let o = run_exn (head_options ()) in
  let report = o.Driver.o_report in
  Alcotest.(check bool) "cmts found" true (o.Driver.o_cmts > 0);
  Alcotest.(check (list string)) "load errors" [] (List.map fst report.Report.r_errors);
  Alcotest.(check (list string))
    "no active findings at HEAD" []
    (List.map
       (fun f -> f.Report.f_rule ^ " " ^ finding_file f)
       (Report.active report));
  (* The sanctioned writer in runner.ml must be visible as suppressed:
     proof the analyzer actually looked at the experiments pipeline. *)
  let suppressed =
    List.filter
      (fun c -> c.Report.c_status <> Report.Active)
      (classified_for report ~file:"lib/experiments/runner.ml")
  in
  Alcotest.(check bool) "runner.ml sink is audited" true (List.length suppressed >= 3)

let test_head_allow_flip () =
  (* Acceptance: removing one [radio-race: allow] at HEAD flips the exit
     code to 1. *)
  let victim = "lib/experiments/runner.ml" in
  let read_source file =
    let text = Analysis.Loader.source_text ~source_root:".." file in
    if file = victim then Option.map drop_first_marker text else text
  in
  let o = run_exn (head_options ~read_source ()) in
  let report = o.Driver.o_report in
  Alcotest.(check int) "exit flips to 1" 1 (Report.exit_code report);
  match Report.active report with
  | f :: _ ->
    Alcotest.(check string) "rule" "race-taint" f.Report.f_rule;
    Alcotest.(check string) "file" victim (finding_file f)
  | [] -> Alcotest.fail "expected an active finding after dropping the comment"

(* Field-for-field JSON comparison with a path to the first mismatch, so a
   schema drift names the field instead of dumping two blobs. *)
let rec json_diff path (a : Json.t) (b : Json.t) =
  match (a, b) with
  | Json.Null, Json.Null -> None
  | Json.Bool x, Json.Bool y when x = y -> None
  | Json.Int x, Json.Int y when x = y -> None
  | Json.Float x, Json.Float y when Float.equal x y -> None
  | Json.String x, Json.String y when String.equal x y -> None
  | Json.List xs, Json.List ys ->
    if List.length xs <> List.length ys then
      Some (Printf.sprintf "%s: list length %d <> %d" path (List.length xs) (List.length ys))
    else
      let rec go i = function
        | [], [] -> None
        | x :: xs, y :: ys -> (
          match json_diff (Printf.sprintf "%s[%d]" path i) x y with
          | Some d -> Some d
          | None -> go (i + 1) (xs, ys))
        | _ -> Some (path ^ ": list length mismatch")
      in
      go 0 (xs, ys)
  | Json.Obj xs, Json.Obj ys ->
    if List.map fst xs <> List.map fst ys then
      Some (Printf.sprintf "%s: object keys differ" path)
    else
      List.fold_left2
        (fun acc (k, x) (_, y) ->
          match acc with
          | Some _ -> acc
          | None -> json_diff (path ^ "." ^ k) x y)
        None xs ys
  | _ -> Some (Printf.sprintf "%s: values differ" path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_pinned_quick_json () =
  let o = run_exn (fixture_options ()) in
  let got = Report.to_json o.Driver.o_report in
  let pinned =
    match Json.of_string (read_file "fixtures/race/race-quick.json") with
    | Ok j -> j
    | Error e -> Alcotest.failf "pinned race-quick.json: %s" e
  in
  match json_diff "$" pinned got with
  | None -> ()
  | Some d -> Alcotest.failf "report drifted from pinned race-quick.json at %s" d

let test_jobs_parity () =
  let render jobs =
    Json.to_string (Report.to_json (run_exn (fixture_options ~jobs ())).Driver.o_report)
  in
  let j1 = render 1 in
  Alcotest.(check string) "jobs 2 byte-identical" j1 (render 2);
  Alcotest.(check string) "jobs 4 byte-identical" j1 (render 4)

let test_missing_cmts_message () =
  match
    Driver.run
      { Driver.build_dir = "fixtures/race/no-such-build";
        source_root = ".";
        roots = [ "lib" ];
        config;
        jobs = 1;
        read_source = None
      }
  with
  | Ok _ -> Alcotest.fail "expected an error for a cmt-less build dir"
  | Error msg ->
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      "error names dune build @check" true
      (contains msg "dune build @check")

let test_cli_exit_two () =
  (* The binary must exit 2 (not 1, not a crash) when no cmts exist, and
     point the user at [dune build @check] on stderr. *)
  let dir = Filename.temp_dir "radio_race_test" "" in
  let oc = open_out (Filename.concat dir "lint.toml") in
  output_string oc "[lint]\nroots = [\"src\"]\n";
  close_out oc;
  let err = Filename.concat dir "stderr.txt" in
  let cmd =
    Printf.sprintf "%s --root %s 2>%s"
      (Filename.quote "../bin/radio_race.exe")
      (Filename.quote dir) (Filename.quote err)
  in
  let code = Sys.command cmd in
  Alcotest.(check int) "exit code" 2 code;
  let stderr_text = read_file err in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    "stderr names dune build @check" true
    (contains stderr_text "dune build @check")

let () =
  Alcotest.run "race"
    [ ( "fixtures",
        [ Alcotest.test_case "findings and suppression" `Quick test_fixture_findings;
          Alcotest.test_case "allow-comment flip" `Quick test_allow_comment_flip;
          Alcotest.test_case "pinned race-quick.json" `Quick test_pinned_quick_json;
          Alcotest.test_case "jobs byte-parity" `Quick test_jobs_parity
        ] );
      ( "head",
        [ Alcotest.test_case "repo is clean" `Quick test_head_clean;
          Alcotest.test_case "allow flip at HEAD" `Quick test_head_allow_flip
        ] );
      ( "cli",
        [ Alcotest.test_case "missing cmts error" `Quick test_missing_cmts_message;
          Alcotest.test_case "missing cmts exits 2" `Quick test_cli_exit_two
        ] )
    ]
