(* Tests for the Section 6 group-key protocol: pairwise key symmetry,
   leader completeness, and the all-but-t agreement guarantee. *)

module Protocol = Groupkey.Protocol

let check = Alcotest.check

let run_once ?(seed = 7L) ?(t = 1) ?(n = 20) ~fame_attack ~hop_attack () =
  let channels = t + 1 in
  let cfg = Radio.Config.make ~n ~channels ~t ~seed ~max_rounds:50_000_000 () in
  Protocol.run ~cfg ~fame_adversary:fame_attack ~hop_adversary:hop_attack ()

let null_fame (_ : Ame.Oracle.t) = Radio.Adversary.null

let basics () =
  check (Alcotest.list Alcotest.int) "reporters t=2" [ 3; 4; 5; 6; 7 ] (Protocol.reporters ~t:2);
  check Alcotest.int "leader count" 3 (Protocol.leader_count ~t:2)

let clean_run_everyone_agrees () =
  let o = run_once ~fame_attack:null_fame ~hop_attack:Radio.Adversary.null () in
  check Alcotest.int "everyone agrees" 20 o.Protocol.agreed_key_holders;
  check Alcotest.int "nobody wrong" 0 o.Protocol.wrong_key_holders;
  check Alcotest.int "nobody ignorant" 0 o.Protocol.no_key_holders;
  check Alcotest.bool "leader 0 complete" true (List.mem 0 o.Protocol.complete_leaders)

let pairwise_keys_symmetric () =
  let o = run_once ~fame_attack:null_fame ~hop_attack:Radio.Adversary.null () in
  Array.iteri
    (fun v (r : Protocol.node_result) ->
      List.iter
        (fun (w, key) ->
          match List.assoc_opt v o.Protocol.nodes.(w).Protocol.pairwise with
          | Some key' ->
            check Alcotest.bool (Printf.sprintf "key %d<->%d symmetric" v w) true (key = key')
          | None -> Alcotest.failf "node %d lacks the key back to %d" w v)
        r.Protocol.pairwise)
    o.Protocol.nodes

let group_key_is_a_leader_proposal () =
  let o = run_once ~fame_attack:null_fame ~hop_attack:Radio.Adversary.null () in
  let leader0_key =
    List.assoc 0 o.Protocol.nodes.(0).Protocol.leader_keys
  in
  Array.iter
    (fun (r : Protocol.node_result) ->
      match r.Protocol.group_key with
      | Some k -> check Alcotest.bool "adopted smallest leader's key" true (k = leader0_key)
      | None -> Alcotest.fail "clean run should give everyone the key")
    o.Protocol.nodes

let jammed_run_meets_guarantee () =
  List.iter
    (fun seed ->
      let t = 1 and n = 20 in
      let o =
        run_once ~seed ~t ~n
          ~fame_attack:(fun board ->
            Ame.Attacks.schedule_jammer board ~channels:(t + 1) ~budget:t
              ~prefer:Ame.Attacks.Prefer_edges)
          ~hop_attack:
            (Radio.Adversary.random_jammer
               (Prng.Rng.create (Int64.add seed 100L))
               ~channels:(t + 1) ~budget:t)
          ()
      in
      check Alcotest.bool
        (Printf.sprintf "seed %Ld: >= n-t agree" seed)
        true
        (o.Protocol.agreed_key_holders >= n - t);
      check Alcotest.int "nobody wrong" 0 o.Protocol.wrong_key_holders)
    [ 1L; 2L; 3L ]

let adversary_never_sees_key_material () =
  (* Every honest frame in parts 2-3 must be Sealed or a Report; leader key
     bytes never travel in the clear. *)
  let t = 1 and n = 20 in
  let channels = t + 1 in
  let cfg =
    Radio.Config.make ~n ~channels ~t ~seed:5L ~max_rounds:50_000_000
      ~record_transcript:true ()
  in
  let o =
    Protocol.run ~cfg ~fame_adversary:null_fame ~hop_adversary:Radio.Adversary.null ()
  in
  let leader_proposals =
    List.filter_map
      (fun (r : Protocol.node_result) ->
        match r.Protocol.leader_keys with (_, k) :: _ -> Some k | [] -> None)
      (Array.to_list o.Protocol.nodes)
  in
  List.iter
    (fun record ->
      List.iter
        (fun (_, _, frame) ->
          match frame with
          | Radio.Frame.Sealed _ | Radio.Frame.Report _ -> ()
          | Radio.Frame.Plain { body; _ } ->
            List.iter
              (fun k ->
                check Alcotest.bool "no key in plain frame" false (String.equal body k))
              leader_proposals
          | _ -> ())
        record.Radio.Transcript.honest_tx)
    o.Protocol.engine.Radio.Engine.transcript

let report_replay_attack_is_harmless () =
  (* Part-3 attack analysis: the adversary can replay Report frames it
     heard (even with forged reporter ids it cannot fabricate verifiable
     hashes it never saw).  Replays only amplify support for leaders whose
     keys honest nodes already hold, so the agreement guarantee must
     survive: >= n - t on one key, nobody wrong. *)
  let t = 1 and n = 20 in
  let heard : Radio.Frame.t list ref = ref [] in
  let forged_id = ref 100 in
  let replayer =
    { Radio.Adversary.name = "report-replayer";
      act =
        (fun ~round ->
          ignore round;
          match !heard with
          | Radio.Frame.Report { leader; key_hash; _ } :: _ ->
            incr forged_id;
            (* Replay with a forged reporter identity. *)
            [ { Radio.Adversary.chan = 0;
                spoof =
                  Some (Radio.Frame.Report { reporter = !forged_id; leader; key_hash }) } ]
          | _ -> []);
      observe =
        (fun record ->
          Array.iter
            (fun outcome ->
              match outcome with
              | Radio.Transcript.Delivered { frame = Radio.Frame.Report _ as f; _ } ->
                heard := f :: !heard
              | _ -> ())
            record.Radio.Transcript.outcomes);
      observes = true }
  in
  let o = run_once ~seed:99L ~t ~n ~fame_attack:null_fame ~hop_attack:replayer () in
  check Alcotest.bool "agreement survives replay" true
    (o.Protocol.agreed_key_holders >= n - t);
  check Alcotest.int "nobody adopts a wrong key" 0 o.Protocol.wrong_key_holders

let deterministic () =
  let go () =
    let o = run_once ~fame_attack:null_fame ~hop_attack:Radio.Adversary.null () in
    (o.Protocol.agreed_key_holders, o.Protocol.total_rounds)
  in
  check (Alcotest.pair Alcotest.int Alcotest.int) "identical reruns" (go ()) (go ())

let () =
  Alcotest.run "groupkey"
    [ ( "protocol",
        [ Alcotest.test_case "basics" `Quick basics;
          Alcotest.test_case "clean run agrees" `Slow clean_run_everyone_agrees;
          Alcotest.test_case "pairwise symmetry" `Slow pairwise_keys_symmetric;
          Alcotest.test_case "adopts leader proposal" `Slow group_key_is_a_leader_proposal;
          Alcotest.test_case "jammed run meets guarantee" `Slow jammed_run_meets_guarantee;
          Alcotest.test_case "no key material leaks" `Slow adversary_never_sees_key_material;
          Alcotest.test_case "report replay is harmless" `Slow report_replay_attack_is_harmless;
          Alcotest.test_case "deterministic" `Slow deterministic ] ) ]
