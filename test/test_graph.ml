(* Tests for the graph substrate: digraphs, vertex covers (the measure of
   disruptability), the leader spanner, and workload generators. *)

module Digraph = Rgraph.Digraph
module Vertex_cover = Rgraph.Vertex_cover
module Spanner = Rgraph.Spanner
module Workload = Rgraph.Workload

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let edge = Alcotest.(pair int int)

(* Random small digraph generator for properties. *)
let graph_gen =
  QCheck.Gen.(
    let* n = int_range 2 9 in
    let* density = int_range 1 3 in
    let* seed = int_range 0 10000 in
    let rng = Prng.Rng.create (Int64.of_int seed) in
    let edges = ref [] in
    for v = 0 to n - 1 do
      for w = 0 to n - 1 do
        if v <> w && Prng.Rng.int rng 4 < density then edges := (v, w) :: !edges
      done
    done;
    return !edges)

let arb_graph = QCheck.make ~print:(fun es -> QCheck.Print.(list (pair int int)) es) graph_gen

(* -- Digraph -- *)

let digraph_basics () =
  let g = Digraph.of_edges [ (1, 2); (2, 3); (1, 2) ] in
  check Alcotest.int "duplicates collapse" 2 (Digraph.edge_count g);
  check Alcotest.bool "mem" true (Digraph.mem_edge g (1, 2));
  check Alcotest.bool "not mem" false (Digraph.mem_edge g (2, 1));
  let g = Digraph.remove_edge g (1, 2) in
  check Alcotest.int "removal" 1 (Digraph.edge_count g);
  check (Alcotest.list edge) "edges sorted" [ (2, 3) ] (Digraph.edges g)

let digraph_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Digraph: self-loop") (fun () ->
      ignore (Digraph.of_edges [ (1, 1) ]))

let digraph_rejects_negative () =
  Alcotest.check_raises "negative id" (Invalid_argument "Digraph: negative node id") (fun () ->
      ignore (Digraph.of_edges [ (-1, 2) ]))

let digraph_queries () =
  let g = Digraph.of_edges [ (0, 1); (0, 2); (3, 1) ] in
  check (Alcotest.list Alcotest.int) "vertices" [ 0; 1; 2; 3 ] (Digraph.vertices g);
  check (Alcotest.list Alcotest.int) "sources" [ 0; 3 ] (Digraph.sources g);
  check (Alcotest.list edge) "out edges" [ (0, 1); (0, 2) ] (Digraph.out_edges g 0);
  check (Alcotest.list edge) "in edges" [ (0, 1); (3, 1) ] (Digraph.in_edges g 1);
  check Alcotest.int "out degree" 2 (Digraph.out_degree g 0);
  check Alcotest.bool "has outgoing" true (Digraph.has_outgoing g 3);
  check Alcotest.bool "no outgoing" false (Digraph.has_outgoing g 1)

(* -- Bitset -- *)

let bitset_word_boundaries () =
  (* Exercise bits either side of the 63-bit word boundary, including the
     native-int sign bit (bit 62), which the SWAR popcount must count. *)
  let module B = Rgraph.Bitset in
  let s = B.create 130 in
  List.iter (B.set s) [ 0; 61; 62; 63; 64; 125; 126; 129 ];
  check Alcotest.int "count" 8 (B.count s);
  check (Alcotest.list Alcotest.int) "ascending iteration"
    [ 0; 61; 62; 63; 64; 125; 126; 129 ] (B.to_list s);
  B.unset s 62;
  check Alcotest.bool "unset" false (B.mem s 62);
  check Alcotest.int "count after unset" 7 (B.count s);
  check Alcotest.bool "out of range mem is false" false (B.mem s 1000);
  check Alcotest.bool "negative mem is false" false (B.mem s (-1))

let bitset_popcount_all_ones () =
  let module B = Rgraph.Bitset in
  let s = B.create 63 in
  for i = 0 to 62 do
    B.set s i
  done;
  check Alcotest.int "full word" 63 (B.count s)

(* -- Dense / edge-set equivalence -- *)

let dense_matches_sparse =
  QCheck.Test.make ~name:"Dense agrees with edge-set op-for-op" ~count:300 arb_graph
    (fun edges ->
      let s = Digraph.of_edges edges in
      let d = Digraph.Dense.of_edges edges in
      let nodes = List.init 11 Fun.id in
      Digraph.edges s = Digraph.Dense.edges d
      && Digraph.edge_count s = Digraph.Dense.edge_count d
      && Digraph.vertices s = Digraph.Dense.vertices d
      && Digraph.sources s = Digraph.Dense.sources d
      && List.for_all
           (fun v ->
             Digraph.out_edges s v = Digraph.Dense.out_edges d v
             && Digraph.in_edges s v = Digraph.Dense.in_edges d v
             && Digraph.out_degree s v = Digraph.Dense.out_degree d v
             && Digraph.has_outgoing s v = Digraph.Dense.has_outgoing d v)
           nodes
      && List.for_all
           (fun e -> Digraph.mem_edge s e = Digraph.Dense.mem_edge d e)
           (List.concat_map (fun v -> List.map (fun w -> (v, w)) nodes) nodes)
      && Digraph.equal (Digraph.Dense.to_sparse d) s)

let dense_update_matches_sparse =
  QCheck.Test.make ~name:"Dense add/remove tracks edge-set" ~count:300
    QCheck.(pair arb_graph arb_graph)
    (fun (base, updates) ->
      QCheck.assume (base <> []);
      (* Interpret the second edge list as an update script: remove the
         edge if present, add it otherwise. *)
      let s = ref (Digraph.of_edges base) in
      let d = ref (Digraph.Dense.of_edges ~n:11 base) in
      List.iter
        (fun e ->
          if Digraph.mem_edge !s e then begin
            s := Digraph.remove_edge !s e;
            d := Digraph.Dense.remove_edge !d e
          end
          else begin
            s := Digraph.add_edge !s e;
            d := Digraph.Dense.add_edge !d e
          end)
        updates;
      Digraph.edges !s = Digraph.Dense.edges !d)

let dense_remove_noop_is_physical () =
  let d = Digraph.Dense.of_edges [ (0, 1); (1, 2) ] in
  check Alcotest.bool "absent removal returns same value" true
    (Digraph.Dense.remove_edge d (2, 0) == d)

(* -- Vertex cover -- *)

(* Brute-force reference: smallest subset of the endpoint set covering
   every edge, by enumerating subsets in size-then-lex order. *)
let brute_force_minimum edges =
  let g = Digraph.of_edges edges in
  let vs = Array.of_list (Digraph.vertices g) in
  let n = Array.length vs in
  let covers mask =
    List.for_all
      (fun (v, w) ->
        let bit x =
          let rec idx i = if vs.(i) = x then i else idx (i + 1) in
          1 lsl idx 0
        in
        mask land bit v <> 0 || mask land bit w <> 0)
      edges
  in
  let best = ref n and best_mask = ref ((1 lsl n) - 1) in
  for mask = 0 to (1 lsl n) - 1 do
    let size = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then incr size
    done;
    if !size < !best && covers mask then begin
      best := !size;
      best_mask := mask
    end
  done;
  List.filteri (fun i _ -> !best_mask land (1 lsl i) <> 0) (Array.to_list vs)

let vc_matches_brute_force =
  QCheck.Test.make ~name:"FPT solver matches subset enumeration" ~count:150 arb_graph
    (fun edges ->
      let g = Digraph.of_edges edges in
      let opt = List.length (brute_force_minimum edges) in
      Vertex_cover.minimum_size g = opt
      && Vertex_cover.at_most g opt
      && ((opt = 0) || not (Vertex_cover.at_most g (opt - 1))))

let vc_known_graphs () =
  let cases =
    [ ("triangle", [ (0, 1); (1, 2); (2, 0) ], 2);
      ("K4", Workload.complete ~n:4, 3);
      ("star-out", Workload.star ~n:6 ~hub:0, 1);
      ("path", [ (0, 1); (1, 2); (2, 3); (3, 4) ], 2);
      ("two disjoint edges", [ (0, 1); (2, 3) ], 2);
      ("empty", [], 0) ]
  in
  List.iter
    (fun (name, edges, expected) ->
      check Alcotest.int name expected (Vertex_cover.minimum_size (Digraph.of_edges edges)))
    cases

let vc_minimum_is_cover =
  QCheck.Test.make ~name:"minimum is a cover" ~count:200 arb_graph (fun edges ->
      let g = Digraph.of_edges edges in
      Vertex_cover.is_cover g (Vertex_cover.minimum g))

let vc_greedy_within_2x =
  QCheck.Test.make ~name:"greedy within 2x of optimum" ~count:150 arb_graph (fun edges ->
      let g = Digraph.of_edges edges in
      let greedy = Vertex_cover.greedy_2approx g in
      Vertex_cover.is_cover g greedy
      && List.length greedy <= 2 * Vertex_cover.minimum_size g)

let vc_at_most_consistent =
  QCheck.Test.make ~name:"at_most agrees with minimum" ~count:150 arb_graph (fun edges ->
      let g = Digraph.of_edges edges in
      let m = Vertex_cover.minimum_size g in
      Vertex_cover.at_most g m && ((m = 0) || not (Vertex_cover.at_most g (m - 1))))

let vc_is_cover_negative () =
  let g = Digraph.of_edges [ (0, 1); (2, 3) ] in
  check Alcotest.bool "partial set is not a cover" false (Vertex_cover.is_cover g [ 0 ])

(* -- memo cache determinism -- *)

let vc_cache_on_off_agree =
  QCheck.Test.make ~name:"cached and uncached solves agree" ~count:100 arb_graph
    (fun edges ->
      let g = Digraph.of_edges edges in
      let cached = Vertex_cover.minimum g in
      let uncached = Cache.with_disabled (fun () -> Vertex_cover.minimum g) in
      let cached_again = Vertex_cover.minimum g in
      cached = uncached && cached = cached_again)

let vc_cache_hits_on_repeat () =
  let g = Digraph.Dense.of_edges (Workload.complete ~n:7) in
  let first = Vertex_cover.minimum_dense g in
  let hits_of () =
    match Vertex_cover.cache_stats () with
    | [ _; (_, s) ] -> s.Cache.hits
    | _ -> Alcotest.fail "expected two caches"
  in
  let h0 = hits_of () in
  let again = Vertex_cover.minimum_dense g in
  check Alcotest.bool "same cover" true (first = again);
  check Alcotest.bool "repeat query hit the memo" true (hits_of () > h0)

let vc_pool_matches_serial () =
  (* The same batch of covers through 4 pool workers and serially: the
     memo tables are domain-local, so pooled solves must agree with serial
     ones byte-for-byte. *)
  let rng = Prng.Rng.create 99L in
  let graphs =
    List.init 24 (fun i ->
        let n = 4 + (i mod 6) in
        Digraph.of_edges (Workload.random_pairs rng ~n ~count:(min 8 (n * (n - 1) / 2))))
  in
  let serial = List.map Vertex_cover.minimum graphs in
  let pooled =
    Parallel.Pool.with_pool ~domains:4 (fun pool ->
        Parallel.Pool.map_ordered pool Vertex_cover.minimum graphs)
  in
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "pooled covers equal serial covers" serial pooled

(* -- Spanner -- *)

let spanner_pair_count () =
  (* All ordered pairs with at least one endpoint among t+1 leaders:
     2(t+1)(n-t-1) cross pairs plus (t+1)t intra-leader pairs. *)
  List.iter
    (fun (n, t) ->
      let expected = (2 * (t + 1) * (n - t - 1)) + ((t + 1) * t) in
      check Alcotest.int
        (Printf.sprintf "count n=%d t=%d" n t)
        expected
        (List.length (Spanner.pairs ~n ~t)))
    [ (10, 1); (12, 2); (20, 3) ]

let spanner_leaders () =
  check (Alcotest.list Alcotest.int) "leaders" [ 0; 1; 2 ] (Spanner.leaders ~t:2)

let spanner_survives_all_t_removals () =
  (* Exhaustive for t=1: removing any single node leaves it connected. *)
  let n = 8 and t = 1 in
  for v = 0 to n - 1 do
    check Alcotest.bool
      (Printf.sprintf "remove %d" v)
      true
      (Spanner.survives_removal ~n ~t ~removed:[ v ])
  done

let spanner_survives_sampled_removals () =
  let n = 12 and t = 2 in
  let rng = Prng.Rng.create 15L in
  for _ = 1 to 30 do
    let removed = Prng.Rng.sample_without_replacement rng t (List.init n Fun.id) in
    check Alcotest.bool "survives t removals" true (Spanner.survives_removal ~n ~t ~removed)
  done

let spanner_dies_when_all_leaders_and_cut () =
  (* Removing all t+1 leaders disconnects everything (non-leaders have no
     mutual edges). *)
  let n = 8 and t = 1 in
  check Alcotest.bool "removing both leaders disconnects" false
    (Spanner.survives_removal ~n ~t ~removed:[ 0; 1 ])

(* -- Workloads -- *)

let workload_disjoint () =
  let pairs = Workload.disjoint_pairs ~n:10 ~count:5 in
  check Alcotest.int "count" 5 (List.length pairs);
  let nodes = List.concat_map (fun (v, w) -> [ v; w ]) pairs in
  check Alcotest.int "all nodes distinct" 10 (List.length (List.sort_uniq compare nodes))

let workload_complete () =
  check Alcotest.int "n(n-1) ordered pairs" 20 (List.length (Workload.complete ~n:5))

let workload_complete_on () =
  let pairs = Workload.complete_on [ 3; 5; 9 ] in
  check Alcotest.int "count" 6 (List.length pairs);
  check Alcotest.bool "contains" true (List.mem (5, 9) pairs)

let workload_star () =
  let pairs = Workload.star ~n:5 ~hub:2 in
  check Alcotest.int "count" 4 (List.length pairs);
  List.iter (fun (v, _) -> check Alcotest.int "hub is source" 2 v) pairs

let workload_random_distinct =
  QCheck.Test.make ~name:"random pairs distinct" ~count:100
    QCheck.(pair small_int (int_range 2 10))
    (fun (seed, n) ->
      let count = min 5 (n * (n - 1)) in
      let pairs = Workload.random_pairs (Prng.Rng.create (Int64.of_int seed)) ~n ~count in
      List.length pairs = count
      && List.length (List.sort_uniq compare pairs) = count
      && List.for_all (fun (v, w) -> v <> w && v < n && w < n) pairs)

let workload_bidirectional () =
  let pairs = Workload.bidirectional [ (1, 2); (3, 4) ] in
  check Alcotest.int "closure" 4 (List.length pairs);
  check Alcotest.bool "reverse present" true (List.mem (2, 1) pairs)

let () =
  Alcotest.run "graph"
    [ ( "digraph",
        [ Alcotest.test_case "basics" `Quick digraph_basics;
          Alcotest.test_case "rejects self-loops" `Quick digraph_rejects_self_loop;
          Alcotest.test_case "rejects negative ids" `Quick digraph_rejects_negative;
          Alcotest.test_case "queries" `Quick digraph_queries ] );
      ( "bitset",
        [ Alcotest.test_case "word boundaries" `Quick bitset_word_boundaries;
          Alcotest.test_case "popcount full word" `Quick bitset_popcount_all_ones ] );
      ( "dense",
        [ Alcotest.test_case "no-op removal is physical" `Quick dense_remove_noop_is_physical;
          qcheck dense_matches_sparse;
          qcheck dense_update_matches_sparse ] );
      ( "vertex-cover",
        [ Alcotest.test_case "known graphs" `Quick vc_known_graphs;
          Alcotest.test_case "is_cover negative" `Quick vc_is_cover_negative;
          qcheck vc_minimum_is_cover;
          qcheck vc_greedy_within_2x;
          qcheck vc_at_most_consistent;
          qcheck vc_matches_brute_force ] );
      ( "memo-cache",
        [ Alcotest.test_case "hits on repeat" `Quick vc_cache_hits_on_repeat;
          Alcotest.test_case "pool matches serial" `Quick vc_pool_matches_serial;
          qcheck vc_cache_on_off_agree ] );
      ( "spanner",
        [ Alcotest.test_case "pair count" `Quick spanner_pair_count;
          Alcotest.test_case "leaders" `Quick spanner_leaders;
          Alcotest.test_case "survives any single removal" `Quick spanner_survives_all_t_removals;
          Alcotest.test_case "survives sampled t removals" `Quick spanner_survives_sampled_removals;
          Alcotest.test_case "leaders are the cut" `Quick spanner_dies_when_all_leaders_and_cut ] );
      ( "workload",
        [ Alcotest.test_case "disjoint pairs" `Quick workload_disjoint;
          Alcotest.test_case "complete" `Quick workload_complete;
          Alcotest.test_case "complete_on" `Quick workload_complete_on;
          Alcotest.test_case "star" `Quick workload_star;
          Alcotest.test_case "bidirectional" `Quick workload_bidirectional;
          qcheck workload_random_distinct ] ) ]
