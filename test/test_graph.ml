(* Tests for the graph substrate: digraphs, vertex covers (the measure of
   disruptability), the leader spanner, and workload generators. *)

module Digraph = Rgraph.Digraph
module Vertex_cover = Rgraph.Vertex_cover
module Spanner = Rgraph.Spanner
module Workload = Rgraph.Workload

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let edge = Alcotest.(pair int int)

(* Random small digraph generator for properties. *)
let graph_gen =
  QCheck.Gen.(
    let* n = int_range 2 9 in
    let* density = int_range 1 3 in
    let* seed = int_range 0 10000 in
    let rng = Prng.Rng.create (Int64.of_int seed) in
    let edges = ref [] in
    for v = 0 to n - 1 do
      for w = 0 to n - 1 do
        if v <> w && Prng.Rng.int rng 4 < density then edges := (v, w) :: !edges
      done
    done;
    return !edges)

let arb_graph = QCheck.make ~print:(fun es -> QCheck.Print.(list (pair int int)) es) graph_gen

(* -- Digraph -- *)

let digraph_basics () =
  let g = Digraph.of_edges [ (1, 2); (2, 3); (1, 2) ] in
  check Alcotest.int "duplicates collapse" 2 (Digraph.edge_count g);
  check Alcotest.bool "mem" true (Digraph.mem_edge g (1, 2));
  check Alcotest.bool "not mem" false (Digraph.mem_edge g (2, 1));
  let g = Digraph.remove_edge g (1, 2) in
  check Alcotest.int "removal" 1 (Digraph.edge_count g);
  check (Alcotest.list edge) "edges sorted" [ (2, 3) ] (Digraph.edges g)

let digraph_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Digraph: self-loop") (fun () ->
      ignore (Digraph.of_edges [ (1, 1) ]))

let digraph_rejects_negative () =
  Alcotest.check_raises "negative id" (Invalid_argument "Digraph: negative node id") (fun () ->
      ignore (Digraph.of_edges [ (-1, 2) ]))

let digraph_queries () =
  let g = Digraph.of_edges [ (0, 1); (0, 2); (3, 1) ] in
  check (Alcotest.list Alcotest.int) "vertices" [ 0; 1; 2; 3 ] (Digraph.vertices g);
  check (Alcotest.list Alcotest.int) "sources" [ 0; 3 ] (Digraph.sources g);
  check (Alcotest.list edge) "out edges" [ (0, 1); (0, 2) ] (Digraph.out_edges g 0);
  check (Alcotest.list edge) "in edges" [ (0, 1); (3, 1) ] (Digraph.in_edges g 1);
  check Alcotest.int "out degree" 2 (Digraph.out_degree g 0);
  check Alcotest.bool "has outgoing" true (Digraph.has_outgoing g 3);
  check Alcotest.bool "no outgoing" false (Digraph.has_outgoing g 1)

(* -- Vertex cover -- *)

let vc_known_graphs () =
  let cases =
    [ ("triangle", [ (0, 1); (1, 2); (2, 0) ], 2);
      ("K4", Workload.complete ~n:4, 3);
      ("star-out", Workload.star ~n:6 ~hub:0, 1);
      ("path", [ (0, 1); (1, 2); (2, 3); (3, 4) ], 2);
      ("two disjoint edges", [ (0, 1); (2, 3) ], 2);
      ("empty", [], 0) ]
  in
  List.iter
    (fun (name, edges, expected) ->
      check Alcotest.int name expected (Vertex_cover.minimum_size (Digraph.of_edges edges)))
    cases

let vc_minimum_is_cover =
  QCheck.Test.make ~name:"minimum is a cover" ~count:200 arb_graph (fun edges ->
      let g = Digraph.of_edges edges in
      Vertex_cover.is_cover g (Vertex_cover.minimum g))

let vc_greedy_within_2x =
  QCheck.Test.make ~name:"greedy within 2x of optimum" ~count:150 arb_graph (fun edges ->
      let g = Digraph.of_edges edges in
      let greedy = Vertex_cover.greedy_2approx g in
      Vertex_cover.is_cover g greedy
      && List.length greedy <= 2 * Vertex_cover.minimum_size g)

let vc_at_most_consistent =
  QCheck.Test.make ~name:"at_most agrees with minimum" ~count:150 arb_graph (fun edges ->
      let g = Digraph.of_edges edges in
      let m = Vertex_cover.minimum_size g in
      Vertex_cover.at_most g m && ((m = 0) || not (Vertex_cover.at_most g (m - 1))))

let vc_is_cover_negative () =
  let g = Digraph.of_edges [ (0, 1); (2, 3) ] in
  check Alcotest.bool "partial set is not a cover" false (Vertex_cover.is_cover g [ 0 ])

(* -- Spanner -- *)

let spanner_pair_count () =
  (* All ordered pairs with at least one endpoint among t+1 leaders:
     2(t+1)(n-t-1) cross pairs plus (t+1)t intra-leader pairs. *)
  List.iter
    (fun (n, t) ->
      let expected = (2 * (t + 1) * (n - t - 1)) + ((t + 1) * t) in
      check Alcotest.int
        (Printf.sprintf "count n=%d t=%d" n t)
        expected
        (List.length (Spanner.pairs ~n ~t)))
    [ (10, 1); (12, 2); (20, 3) ]

let spanner_leaders () =
  check (Alcotest.list Alcotest.int) "leaders" [ 0; 1; 2 ] (Spanner.leaders ~t:2)

let spanner_survives_all_t_removals () =
  (* Exhaustive for t=1: removing any single node leaves it connected. *)
  let n = 8 and t = 1 in
  for v = 0 to n - 1 do
    check Alcotest.bool
      (Printf.sprintf "remove %d" v)
      true
      (Spanner.survives_removal ~n ~t ~removed:[ v ])
  done

let spanner_survives_sampled_removals () =
  let n = 12 and t = 2 in
  let rng = Prng.Rng.create 15L in
  for _ = 1 to 30 do
    let removed = Prng.Rng.sample_without_replacement rng t (List.init n Fun.id) in
    check Alcotest.bool "survives t removals" true (Spanner.survives_removal ~n ~t ~removed)
  done

let spanner_dies_when_all_leaders_and_cut () =
  (* Removing all t+1 leaders disconnects everything (non-leaders have no
     mutual edges). *)
  let n = 8 and t = 1 in
  check Alcotest.bool "removing both leaders disconnects" false
    (Spanner.survives_removal ~n ~t ~removed:[ 0; 1 ])

(* -- Workloads -- *)

let workload_disjoint () =
  let pairs = Workload.disjoint_pairs ~n:10 ~count:5 in
  check Alcotest.int "count" 5 (List.length pairs);
  let nodes = List.concat_map (fun (v, w) -> [ v; w ]) pairs in
  check Alcotest.int "all nodes distinct" 10 (List.length (List.sort_uniq compare nodes))

let workload_complete () =
  check Alcotest.int "n(n-1) ordered pairs" 20 (List.length (Workload.complete ~n:5))

let workload_complete_on () =
  let pairs = Workload.complete_on [ 3; 5; 9 ] in
  check Alcotest.int "count" 6 (List.length pairs);
  check Alcotest.bool "contains" true (List.mem (5, 9) pairs)

let workload_star () =
  let pairs = Workload.star ~n:5 ~hub:2 in
  check Alcotest.int "count" 4 (List.length pairs);
  List.iter (fun (v, _) -> check Alcotest.int "hub is source" 2 v) pairs

let workload_random_distinct =
  QCheck.Test.make ~name:"random pairs distinct" ~count:100
    QCheck.(pair small_int (int_range 2 10))
    (fun (seed, n) ->
      let count = min 5 (n * (n - 1)) in
      let pairs = Workload.random_pairs (Prng.Rng.create (Int64.of_int seed)) ~n ~count in
      List.length pairs = count
      && List.length (List.sort_uniq compare pairs) = count
      && List.for_all (fun (v, w) -> v <> w && v < n && w < n) pairs)

let workload_bidirectional () =
  let pairs = Workload.bidirectional [ (1, 2); (3, 4) ] in
  check Alcotest.int "closure" 4 (List.length pairs);
  check Alcotest.bool "reverse present" true (List.mem (2, 1) pairs)

let () =
  Alcotest.run "graph"
    [ ( "digraph",
        [ Alcotest.test_case "basics" `Quick digraph_basics;
          Alcotest.test_case "rejects self-loops" `Quick digraph_rejects_self_loop;
          Alcotest.test_case "rejects negative ids" `Quick digraph_rejects_negative;
          Alcotest.test_case "queries" `Quick digraph_queries ] );
      ( "vertex-cover",
        [ Alcotest.test_case "known graphs" `Quick vc_known_graphs;
          Alcotest.test_case "is_cover negative" `Quick vc_is_cover_negative;
          qcheck vc_minimum_is_cover;
          qcheck vc_greedy_within_2x;
          qcheck vc_at_most_consistent ] );
      ( "spanner",
        [ Alcotest.test_case "pair count" `Quick spanner_pair_count;
          Alcotest.test_case "leaders" `Quick spanner_leaders;
          Alcotest.test_case "survives any single removal" `Quick spanner_survives_all_t_removals;
          Alcotest.test_case "survives sampled t removals" `Quick spanner_survives_sampled_removals;
          Alcotest.test_case "leaders are the cut" `Quick spanner_dies_when_all_leaders_and_cut ] );
      ( "workload",
        [ Alcotest.test_case "disjoint pairs" `Quick workload_disjoint;
          Alcotest.test_case "complete" `Quick workload_complete;
          Alcotest.test_case "complete_on" `Quick workload_complete_on;
          Alcotest.test_case "star" `Quick workload_star;
          Alcotest.test_case "bidirectional" `Quick workload_bidirectional;
          qcheck workload_random_distinct ] ) ]
