(* Tests for the deterministic PRNG substrate: every protocol and experiment
   depends on these streams being reproducible, well-ranged, and reasonably
   uniform. *)

module Rng = Prng.Rng
module Splitmix64 = Prng.Splitmix64
module Xoshiro = Prng.Xoshiro
module Pcg32 = Prng.Pcg32

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* -- SplitMix64 -- *)

let splitmix_deterministic () =
  let a = Splitmix64.create 42L and b = Splitmix64.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Splitmix64.next a) (Splitmix64.next b)
  done

let splitmix_seed_sensitivity () =
  let a = Splitmix64.create 1L and b = Splitmix64.create 2L in
  let distinct = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Splitmix64.next a) (Splitmix64.next b)) then distinct := true
  done;
  check Alcotest.bool "streams differ" true !distinct

let splitmix_copy_independent () =
  let a = Splitmix64.create 7L in
  ignore (Splitmix64.next a);
  let b = Splitmix64.copy a in
  check Alcotest.int64 "copies agree" (Splitmix64.next a) (Splitmix64.next b);
  ignore (Splitmix64.next a);
  (* b is one draw behind now; advancing b must reproduce a's last value *)
  ignore (Splitmix64.next b);
  check Alcotest.int64 "lockstep maintained" (Splitmix64.next a) (Splitmix64.next b)

let splitmix_mix_pure () =
  check Alcotest.int64 "mix is a pure function" (Splitmix64.mix 123L) (Splitmix64.mix 123L)

let splitmix_next_in_bounds =
  QCheck.Test.make ~name:"splitmix next_in stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Splitmix64.create (Int64.of_int seed) in
      let v = Splitmix64.next_in g bound in
      v >= 0 && v < bound)

(* -- Xoshiro -- *)

let xoshiro_deterministic () =
  let a = Xoshiro.create 99L and b = Xoshiro.create 99L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Xoshiro.next a) (Xoshiro.next b)
  done

let xoshiro_jump_disjoint () =
  let a = Xoshiro.create 5L in
  let b = Xoshiro.copy a in
  Xoshiro.jump b;
  let overlap = ref false in
  let from_a = List.init 50 (fun _ -> Xoshiro.next a) in
  for _ = 1 to 50 do
    if List.mem (Xoshiro.next b) from_a then overlap := true
  done;
  check Alcotest.bool "jumped stream does not collide" false !overlap

(* The textbook Int64 formulation of xoshiro256**, seeded exactly like the
   production generator.  The unboxed half-word implementation must stay
   bit-identical to this stream forever — every recorded experiment table
   depends on it. *)
module Xoshiro_reference = struct
  type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

  let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

  let create seed =
    let sm = Splitmix64.create seed in
    let s0 = Splitmix64.next sm in
    let s1 = Splitmix64.next sm in
    let s2 = Splitmix64.next sm in
    let s3 = Splitmix64.next sm in
    { s0; s1; s2; s3 }

  let next t =
    let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
    let tmp = Int64.shift_left t.s1 17 in
    t.s2 <- Int64.logxor t.s2 t.s0;
    t.s3 <- Int64.logxor t.s3 t.s1;
    t.s1 <- Int64.logxor t.s1 t.s2;
    t.s0 <- Int64.logxor t.s0 t.s3;
    t.s2 <- Int64.logxor t.s2 tmp;
    t.s3 <- rotl t.s3 45;
    result
end

let xoshiro_matches_reference () =
  List.iter
    (fun seed ->
      let fast = Xoshiro.create seed and slow = Xoshiro_reference.create seed in
      for i = 1 to 1000 do
        let expect = Xoshiro_reference.next slow in
        if not (Int64.equal (Xoshiro.next fast) expect) then
          Alcotest.failf "seed %Ld: draw %d diverges from the Int64 reference" seed i
      done)
    [ 0L; 1L; 42L; -1L; 0x123456789ABCDEFL ]

let xoshiro_reference_qcheck =
  QCheck.Test.make ~name:"half-word stream equals Int64 reference" ~count:200
    QCheck.(pair int (int_range 1 64))
    (fun (seed, draws) ->
      let seed = Int64.of_int seed in
      let fast = Xoshiro.create seed and slow = Xoshiro_reference.create seed in
      let ok = ref true in
      for _ = 1 to draws do
        if not (Int64.equal (Xoshiro.next fast) (Xoshiro_reference.next slow)) then
          ok := false
      done;
      !ok)

let xoshiro_step_halves () =
  (* [step] + [out_hi]/[out_lo] is the allocation-free view of [next]: the
     halves must reassemble into exactly the boxed draw. *)
  let a = Xoshiro.create 314L and b = Xoshiro.create 314L in
  for _ = 1 to 100 do
    let boxed = Xoshiro.next a in
    Xoshiro.step b;
    let hi = Int64.of_int (Xoshiro.out_hi b) and lo = Int64.of_int (Xoshiro.out_lo b) in
    check Alcotest.int64 "halves reassemble" boxed
      (Int64.logor (Int64.shift_left hi 32) lo)
  done

let xoshiro_distribution () =
  (* Coarse uniformity: bucket 64k draws into 16 buckets; each within 20%
     of the expectation.  A systematic bias would blow well past this. *)
  let g = Xoshiro.create 1234L in
  let buckets = Array.make 16 0 in
  let draws = 65536 in
  for _ = 1 to draws do
    let v = Int64.to_int (Int64.shift_right_logical (Xoshiro.next g) 60) in
    buckets.(v) <- buckets.(v) + 1
  done;
  let expect = draws / 16 in
  Array.iteri
    (fun i count ->
      if abs (count - expect) > expect / 5 then
        Alcotest.failf "bucket %d has %d, expected about %d" i count expect)
    buckets

(* -- PCG32 -- *)

let pcg_deterministic () =
  let a = Pcg32.create 77L and b = Pcg32.create 77L in
  for _ = 1 to 100 do
    check Alcotest.int32 "same stream" (Pcg32.next a) (Pcg32.next b)
  done

let pcg_streams_differ () =
  let a = Pcg32.create ~stream:1L 7L and b = Pcg32.create ~stream:2L 7L in
  let distinct = ref false in
  for _ = 1 to 10 do
    if not (Int32.equal (Pcg32.next a) (Pcg32.next b)) then distinct := true
  done;
  check Alcotest.bool "streams differ" true !distinct

let pcg_next_in_bounds =
  QCheck.Test.make ~name:"pcg next_in stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 100000))
    (fun (seed, bound) ->
      let g = Pcg32.create (Int64.of_int seed) in
      let v = Pcg32.next_in g bound in
      v >= 0 && v < bound)

(* -- Rng facade -- *)

let rng_deterministic () =
  let a = Rng.create 3L and b = Rng.create 3L in
  for _ = 1 to 50 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let rng_split_at_stable () =
  let parent = Rng.create 11L in
  let c1 = Rng.split_at parent 5 and c2 = Rng.split_at parent 5 in
  check Alcotest.int64 "same label, same child stream" (Rng.bits64 c1) (Rng.bits64 c2);
  let c3 = Rng.split_at parent 6 in
  check Alcotest.bool "different label differs" true
    (not (Int64.equal (Rng.bits64 (Rng.split_at parent 5)) (Rng.bits64 c3)))

let rng_split_does_not_disturb_split_at () =
  let p1 = Rng.create 21L and p2 = Rng.create 21L in
  ignore (Rng.split p1);
  (* split_at keys off the base seed, so consuming p1 does not change it *)
  check Alcotest.int64 "split_at unaffected by draws"
    (Rng.bits64 (Rng.split_at p1 3))
    (Rng.bits64 (Rng.split_at p2 3))

let rng_int_matches_reference () =
  (* Rng.int has a half-word fast path for small bounds and an Int64
     rejection path for large ones; both must reproduce the historical
     Int64 rejection sampler draw for draw. *)
  let reference_int g bound =
    let bound64 = Int64.of_int bound in
    let limit = Int64.sub Int64.max_int (Int64.rem Int64.max_int bound64) in
    let rec draw () =
      let v = Int64.shift_right_logical (Xoshiro_reference.next g) 1 in
      if v < limit then Int64.to_int (Int64.rem v bound64) else draw ()
    in
    draw ()
  in
  List.iter
    (fun bound ->
      let g = Rng.create 2718L and r = Xoshiro_reference.create 2718L in
      for i = 1 to 500 do
        let expect = reference_int r bound in
        let got = Rng.int g bound in
        if got <> expect then
          Alcotest.failf "bound %d: draw %d gives %d, reference %d" bound i got expect
      done)
    (* Fast-path bounds (<= 2^30 - 1), the boundary, and fallback bounds. *)
    [ 1; 2; 6; 256; 65537; 0x3FFFFFFF; 0x40000000; 0x7FFFFFFFF ]

let rng_int_bounds =
  QCheck.Test.make ~name:"rng int stays in range" ~count:1000
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let g = Rng.create (Int64.of_int seed) in
      let v = Rng.int g bound in
      v >= 0 && v < bound)

let rng_int_in_bounds =
  QCheck.Test.make ~name:"rng int_in inclusive range" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let g = Rng.create (Int64.of_int seed) in
      let v = Rng.int_in g lo (lo + span) in
      v >= lo && v <= lo + span)

let rng_float_range =
  QCheck.Test.make ~name:"rng float in [0,1)" ~count:500 QCheck.small_int (fun seed ->
      let g = Rng.create (Int64.of_int seed) in
      let f = Rng.float g in
      f >= 0.0 && f < 1.0)

let rng_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle permutes" ~count:200
    QCheck.(pair small_int (list_of_size (Gen.int_range 0 30) int))
    (fun (seed, xs) ->
      let g = Rng.create (Int64.of_int seed) in
      let arr = Array.of_list xs in
      Rng.shuffle g arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let rng_sample_without_replacement () =
  let g = Rng.create 8L in
  let xs = List.init 20 Fun.id in
  let s = Rng.sample_without_replacement g 7 xs in
  check Alcotest.int "sample size" 7 (List.length s);
  check Alcotest.int "distinct" 7 (List.length (List.sort_uniq compare s));
  List.iter (fun x -> check Alcotest.bool "member" true (List.mem x xs)) s

let rng_pick_member =
  QCheck.Test.make ~name:"pick returns a member" ~count:300
    QCheck.(pair small_int (list_of_size (Gen.int_range 1 20) int))
    (fun (seed, xs) ->
      let g = Rng.create (Int64.of_int seed) in
      List.mem (Rng.pick_list g xs) xs)

let () =
  Alcotest.run "prng"
    [ ( "splitmix64",
        [ Alcotest.test_case "deterministic" `Quick splitmix_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick splitmix_seed_sensitivity;
          Alcotest.test_case "copy independence" `Quick splitmix_copy_independent;
          Alcotest.test_case "mix pure" `Quick splitmix_mix_pure;
          qcheck splitmix_next_in_bounds ] );
      ( "xoshiro",
        [ Alcotest.test_case "deterministic" `Quick xoshiro_deterministic;
          Alcotest.test_case "matches Int64 reference" `Quick xoshiro_matches_reference;
          Alcotest.test_case "step exposes halves" `Quick xoshiro_step_halves;
          Alcotest.test_case "jump disjoint" `Quick xoshiro_jump_disjoint;
          Alcotest.test_case "distribution" `Quick xoshiro_distribution;
          qcheck xoshiro_reference_qcheck ] );
      ( "pcg32",
        [ Alcotest.test_case "deterministic" `Quick pcg_deterministic;
          Alcotest.test_case "streams differ" `Quick pcg_streams_differ;
          qcheck pcg_next_in_bounds ] );
      ( "rng",
        [ Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "split_at stable" `Quick rng_split_at_stable;
          Alcotest.test_case "split_at base-keyed" `Quick rng_split_does_not_disturb_split_at;
          Alcotest.test_case "sample without replacement" `Quick rng_sample_without_replacement;
          Alcotest.test_case "int matches rejection reference" `Quick rng_int_matches_reference;
          qcheck rng_int_bounds;
          qcheck rng_int_in_bounds;
          qcheck rng_float_range;
          qcheck rng_shuffle_is_permutation;
          qcheck rng_pick_member ] ) ]
