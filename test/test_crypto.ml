(* Tests for the cryptographic substrate.  SHA-256 and HMAC are checked
   against the published NIST / RFC 4231 vectors; the arithmetic, DH, PRF,
   and cipher layers are checked for their algebraic contracts. *)

module Sha256 = Crypto.Sha256
module Hmac = Crypto.Hmac
module Modarith = Crypto.Modarith
module Dh = Crypto.Dh
module Prf = Crypto.Prf
module Cipher = Crypto.Cipher

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* -- SHA-256 standard vectors -- *)

let sha_empty () =
  check Alcotest.string "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest_hex "")

let sha_abc () =
  check Alcotest.string "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest_hex "abc")

let sha_two_blocks () =
  check Alcotest.string "448-bit message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest_hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let sha_million_a () =
  check Alcotest.string "million 'a'"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest_hex (String.make 1_000_000 'a'))

let sha_length () =
  check Alcotest.int "digest size" 32 (String.length (Sha256.digest "anything"))

let sha_streaming_equals_oneshot =
  QCheck.Test.make ~name:"streaming = one-shot" ~count:200
    QCheck.(pair (string_of_size (Gen.int_range 0 300)) (int_range 0 300))
    (fun (s, cut) ->
      let cut = min cut (String.length s) in
      let ctx = Sha256.init () in
      Sha256.update ctx (String.sub s 0 cut);
      Sha256.update ctx (String.sub s cut (String.length s - cut));
      Sha256.finalize ctx = Sha256.digest s)

let sha_distinct_inputs =
  QCheck.Test.make ~name:"distinct short inputs hash apart" ~count:200
    QCheck.(pair (string_of_size (Gen.int_range 0 64)) (string_of_size (Gen.int_range 0 64)))
    (fun (a, b) -> a = b || Sha256.digest a <> Sha256.digest b)

(* -- HMAC-SHA256 (RFC 4231) -- *)

let hmac_case1 () =
  check Alcotest.string "rfc4231 case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.mac_hex ~key:(String.make 20 '\x0b') "Hi There")

let hmac_case2 () =
  check Alcotest.string "rfc4231 case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.mac_hex ~key:"Jefe" "what do ya want for nothing?")

let hmac_long_key () =
  (* Keys longer than one block are pre-hashed; just assert stability and
     tag size. *)
  let tag = Hmac.mac ~key:(String.make 131 '\xaa') "Test Using Larger Than Block-Size Key" in
  check Alcotest.int "tag size" 32 (String.length tag)

let hmac_verify_roundtrip =
  QCheck.Test.make ~name:"verify accepts correct tags" ~count:200
    QCheck.(pair string string)
    (fun (key, msg) -> Hmac.verify ~key ~tag:(Hmac.mac ~key msg) msg)

let hmac_verify_rejects_tamper =
  QCheck.Test.make ~name:"verify rejects flipped bit" ~count:200
    QCheck.(pair string (string_of_size (Gen.int_range 1 100)))
    (fun (key, msg) ->
      let tag = Bytes.of_string (Hmac.mac ~key msg) in
      Bytes.set tag 0 (Char.chr (Char.code (Bytes.get tag 0) lxor 1));
      not (Hmac.verify ~key ~tag:(Bytes.to_string tag) msg))

(* -- modular arithmetic -- *)

let mulmod_matches_small () =
  for a = 0 to 30 do
    for b = 0 to 30 do
      if a < 29 && b < 29 then
        check Alcotest.int
          (Printf.sprintf "%d*%d mod 29" a b)
          (a * b mod 29)
          (Int64.to_int (Modarith.mul_mod (Int64.of_int a) (Int64.of_int b) 29L))
    done
  done

let mulmod_large_no_overflow () =
  (* p close to 2^61: products would overflow naive multiplication. *)
  let p = 2305843009213693951L (* 2^61 - 1, prime *) in
  let a = Int64.sub p 2L and b = Int64.sub p 3L in
  (* (p-2)(p-3) mod p = 6 mod p *)
  check Alcotest.int64 "near-modulus product" 6L (Modarith.mul_mod a b p)

let powmod_fermat () =
  let p = 1000003L in
  List.iter
    (fun a -> check Alcotest.int64 "fermat little" 1L (Modarith.pow_mod a (Int64.sub p 1L) p))
    [ 2L; 3L; 999999L; 123456L ]

let inv_mod_works =
  QCheck.Test.make ~name:"inv_mod inverts" ~count:300
    QCheck.(int_range 1 1000002)
    (fun a ->
      let p = 1000003L in
      let a = Int64.of_int a in
      let inv = Modarith.inv_mod a p in
      Modarith.mul_mod (Int64.rem a p) inv p = 1L)

let miller_rabin_known () =
  List.iter
    (fun (x, expected) ->
      check Alcotest.bool (Int64.to_string x) expected (Modarith.is_probable_prime x))
    [ (0L, false); (1L, false); (2L, true); (3L, true); (4L, false); (17L, true);
      (561L, false) (* Carmichael *); (7919L, true); (1000003L, true);
      (2305843009213693951L, true) (* M61 *); (2305843009213693949L, false) ]

let safe_prime_properties () =
  List.iter
    (fun bits ->
      let p = Modarith.find_safe_prime ~bits ~seed:99L in
      check Alcotest.bool "p prime" true (Modarith.is_probable_prime p);
      let q = Int64.shift_right_logical (Int64.sub p 1L) 1 in
      check Alcotest.bool "q prime" true (Modarith.is_probable_prime q);
      let lo = Int64.shift_left 1L (bits - 1) and hi = Int64.shift_left 1L bits in
      check Alcotest.bool "bit length" true (p >= lo && p < hi))
    [ 16; 24; 32; 48 ]

let safe_prime_deterministic () =
  check Alcotest.int64 "same seed, same prime"
    (Modarith.find_safe_prime ~bits:32 ~seed:5L)
    (Modarith.find_safe_prime ~bits:32 ~seed:5L)

(* -- Diffie-Hellman -- *)

let dh_params_sane () =
  let ps = Lazy.force Dh.default_params in
  check Alcotest.bool "p prime" true (Modarith.is_probable_prime ps.Dh.p);
  check Alcotest.bool "q prime" true (Modarith.is_probable_prime ps.Dh.q);
  check Alcotest.int64 "g has order q" 1L (Modarith.pow_mod ps.Dh.g ps.Dh.q ps.Dh.p)

let dh_agreement =
  QCheck.Test.make ~name:"dh both sides agree" ~count:50 QCheck.small_int (fun seed ->
      let rng = Prng.Rng.create (Int64.of_int (seed + 1)) in
      let a = Dh.generate rng and b = Dh.generate rng in
      Dh.shared_secret ~secret:a.Dh.secret b.Dh.public
      = Dh.shared_secret ~secret:b.Dh.secret a.Dh.public)

let dh_validation () =
  let ps = Lazy.force Dh.default_params in
  let rng = Prng.Rng.create 4L in
  let kp = Dh.generate rng in
  check Alcotest.bool "generated key valid" true (Dh.valid_public kp.Dh.public);
  check Alcotest.bool "0 invalid" false (Dh.valid_public 0L);
  check Alcotest.bool "1 invalid" false (Dh.valid_public 1L);
  check Alcotest.bool "p-1 invalid" false (Dh.valid_public (Int64.sub ps.Dh.p 1L))

let dh_encode_roundtrip =
  QCheck.Test.make ~name:"public key wire roundtrip" ~count:100 QCheck.small_int (fun seed ->
      let rng = Prng.Rng.create (Int64.of_int (seed + 7)) in
      let kp = Dh.generate rng in
      Dh.decode_public (Dh.encode_public kp.Dh.public) = Some kp.Dh.public)

let dh_derive_key_separates () =
  check Alcotest.bool "info separates keys" true
    (Dh.derive_key ~info:"a" 42L <> Dh.derive_key ~info:"b" 42L)

(* -- PRF -- *)

let prf_deterministic () =
  check Alcotest.string "same inputs same output"
    (Sha256.hex_of (Prf.bytes ~key:"k" ~label:"l" ~counter:3))
    (Sha256.hex_of (Prf.bytes ~key:"k" ~label:"l" ~counter:3))

let prf_label_separation () =
  check Alcotest.bool "labels separate" true
    (Prf.bytes ~key:"k" ~label:"a" ~counter:0 <> Prf.bytes ~key:"k" ~label:"b" ~counter:0)

let prf_channel_hop_range =
  QCheck.Test.make ~name:"channel_hop in range" ~count:500
    QCheck.(pair (int_range 0 10000) (int_range 1 64))
    (fun (round, channels) ->
      let c = Prf.channel_hop ~key:"shared" ~round ~channels in
      c >= 0 && c < channels)

let prf_keystream_length =
  QCheck.Test.make ~name:"keystream length exact" ~count:100 (QCheck.int_range 0 500)
    (fun len -> String.length (Prf.keystream ~key:"k" ~nonce:"n" len) = len)

(* -- keyed fast paths: byte-identical to the one-shot forms.

   The simulator's determinism contract rests on these equalities: the
   prepared-handle paths (HMAC midstate caching, incremental SHA-256
   feeding, exact-length keystream) must agree with the naive forms on
   every byte, for every input. *)

let sha_feed_string_equals_update =
  QCheck.Test.make ~name:"feed_string windows = one-shot" ~count:300
    QCheck.(triple (string_of_size (Gen.int_range 0 300)) (int_range 0 300) (int_range 0 300))
    (fun (s, a, b) ->
      (* Split s into [0,cut1), [cut1,cut2), [cut2,len) and feed the three
         windows through feed_string ~off ~len. *)
      let len = String.length s in
      let cut1 = min a len in
      let cut2 = cut1 + min b (len - cut1) in
      let ctx = Sha256.init () in
      Sha256.feed_string ctx s ~off:0 ~len:cut1;
      Sha256.feed_string ctx s ~off:cut1 ~len:(cut2 - cut1);
      Sha256.feed_string ctx s ~off:cut2 ~len:(len - cut2);
      Sha256.finalize ctx = Sha256.digest s)

let hmac_keyed_equals_oneshot =
  QCheck.Test.make ~name:"mac_keyed = mac" ~count:300
    QCheck.(pair (string_of_size (Gen.int_range 0 100)) (string_of_size (Gen.int_range 0 300)))
    (fun (key, msg) -> Hmac.mac_keyed (Hmac.key key) msg = Hmac.mac ~key msg)

let hmac_keyed_reusable () =
  let handle = Hmac.key "reused-key" in
  check Alcotest.string "handle is reusable across messages"
    (Sha256.hex_of (Hmac.mac ~key:"reused-key" "second"))
    (Sha256.hex_of
       (let _ = Hmac.mac_keyed handle "first" in
        Hmac.mac_keyed handle "second"))

let hmac_verify_wrong_length =
  QCheck.Test.make ~name:"verify rejects truncated/extended tags" ~count:200
    QCheck.(pair string (int_range 0 40))
    (fun (msg, cut) ->
      let tag = Hmac.mac ~key:"k" msg in
      let truncated = String.sub tag 0 (min cut (String.length tag)) in
      let extended = tag ^ "\000" in
      (not (Hmac.verify ~key:"k" ~tag:extended msg))
      && (String.length truncated = String.length tag
          || not (Hmac.verify ~key:"k" ~tag:truncated msg)))

let prf_keyed_equals_oneshot =
  QCheck.Test.make ~name:"Keyed.bytes = bytes" ~count:300
    QCheck.(
      quad
        (string_of_size (Gen.int_range 0 100))
        (string_of_size (Gen.int_range 0 50))
        (int_range 0 1_000_000) (int_range 1 1024))
    (fun (key, label, counter, channels) ->
      let keyed = Prf.Keyed.create key in
      Prf.Keyed.bytes keyed ~label ~counter = Prf.bytes ~key ~label ~counter
      && Prf.Keyed.int64 keyed ~label ~counter = Prf.int64 ~key ~label ~counter
      && Prf.Keyed.below keyed ~label ~counter channels
         = Prf.below ~key ~label ~counter channels
      && Prf.Keyed.channel_hop keyed ~round:counter ~channels
         = Prf.channel_hop ~key ~round:counter ~channels)

let prf_keyed_keystream_equals_oneshot =
  QCheck.Test.make ~name:"Keyed.keystream = keystream" ~count:200
    QCheck.(
      triple
        (string_of_size (Gen.int_range 0 100))
        (string_of_size (Gen.int_range 0 20))
        (int_range 0 500))
    (fun (key, nonce, len) ->
      Prf.Keyed.keystream (Prf.Keyed.create key) ~nonce len = Prf.keystream ~key ~nonce len)

(* -- authenticated cipher -- *)

let cipher_roundtrip =
  QCheck.Test.make ~name:"seal/open roundtrip" ~count:300
    QCheck.(triple string small_int string)
    (fun (key, nonce, plaintext) ->
      let sealed = Cipher.seal ~key ~nonce:(Int64.of_int nonce) plaintext in
      Cipher.open_ ~key sealed = Some plaintext)

let cipher_rejects_wrong_key =
  QCheck.Test.make ~name:"wrong key rejected" ~count:100
    QCheck.(pair string string)
    (fun (key, plaintext) ->
      let sealed = Cipher.seal ~key ~nonce:1L plaintext in
      Cipher.open_ ~key:(key ^ "x") sealed = None)

let cipher_rejects_tamper () =
  let sealed = Cipher.seal ~key:"k" ~nonce:9L "attack at dawn" in
  let body = Bytes.of_string sealed.Cipher.body in
  if Bytes.length body > 0 then
    Bytes.set body 0 (Char.chr (Char.code (Bytes.get body 0) lxor 0x80));
  check
    (Alcotest.option Alcotest.string)
    "tampered body rejected" None
    (Cipher.open_ ~key:"k" { sealed with Cipher.body = Bytes.to_string body })

let cipher_hides_plaintext () =
  let plaintext = "super secret content here" in
  let sealed = Cipher.seal ~key:"key" ~nonce:4L plaintext in
  (* The ciphertext must not contain the plaintext as a substring. *)
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "ciphertext opaque" false (contains sealed.Cipher.body plaintext)

let cipher_wire_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:200
    QCheck.(pair string string)
    (fun (key, plaintext) ->
      let sealed = Cipher.seal ~key ~nonce:2L plaintext in
      match Cipher.decode (Cipher.encode sealed) with
      | Some s -> Cipher.open_ ~key s = Some plaintext
      | None -> false)

let cipher_decode_garbage =
  QCheck.Test.make ~name:"decode rejects garbage gracefully" ~count:200
    (QCheck.string_of_size (QCheck.Gen.int_range 0 50))
    (fun junk ->
      match Cipher.decode junk with
      | None -> true
      | Some sealed -> Cipher.encode sealed = junk)

let cipher_keyed_equals_oneshot =
  QCheck.Test.make ~name:"seal_keyed/open_keyed = seal/open_" ~count:300
    QCheck.(triple (string_of_size (Gen.int_range 0 60)) int (string_of_size (Gen.int_range 0 200)))
    (fun (key, nonce_bits, plaintext) ->
      let nonce = Int64.of_int nonce_bits in
      let ck = Cipher.key key in
      let keyed = Cipher.seal_keyed ck ~nonce plaintext in
      Cipher.encode keyed = Cipher.encode (Cipher.seal ~key ~nonce plaintext)
      && Cipher.open_keyed ck keyed = Some plaintext
      && Cipher.open_keyed ck keyed = Cipher.open_ ~key keyed)

(* -- batch entry points: byte-identical to the keyed per-message forms.

   The mux service A/Bs batched against per-message crypto and asserts the
   outputs are byte-identical; these properties are the foundation of that
   claim.  One scratch is deliberately reused across the whole batch (and
   across batches) to exercise buffer-reuse bugs. *)

let batch_gen =
  QCheck.(
    pair
      (string_of_size (Gen.int_range 0 60))
      (small_list (string_of_size (Gen.int_range 0 120))))

let sha_copy_into_equals_copy =
  QCheck.Test.make ~name:"copy_into midstate = copy" ~count:200
    QCheck.(pair (string_of_size (Gen.int_range 0 200)) (string_of_size (Gen.int_range 0 200)))
    (fun (a, b) ->
      let ctx = Sha256.init () in
      Sha256.update ctx a;
      let spare = Sha256.init () in
      Sha256.copy_into ctx ~into:spare;
      Sha256.update spare b;
      let into = Bytes.create Sha256.digest_size in
      Sha256.finalize_into spare into ~pos:0;
      Bytes.to_string into = Sha256.digest (a ^ b))

let hmac_mac_batch_equals_keyed =
  QCheck.Test.make ~name:"mac_batch = mac_keyed per element" ~count:200 batch_gen
    (fun (key, msgs) ->
      let k = Hmac.key key in
      let batch = Hmac.mac_batch k (Array.of_list msgs) in
      List.for_all2
        (fun m tag -> String.equal tag (Hmac.mac_keyed k m))
        msgs (Array.to_list batch))

let hmac_verify_batch_equals_keyed =
  QCheck.Test.make ~name:"verify_batch accepts right, rejects flipped" ~count:200 batch_gen
    (fun (key, msgs) ->
      let k = Hmac.key key in
      let arr = Array.of_list msgs in
      let tags = Hmac.mac_batch k arr in
      let ok = Hmac.verify_batch k ~tags arr in
      let flipped =
        Array.map
          (fun tag ->
            let b = Bytes.of_string tag in
            Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
            Bytes.to_string b)
          tags
      in
      let bad = Hmac.verify_batch k ~tags:flipped arr in
      Array.for_all Fun.id ok && not (Array.exists Fun.id bad))

let prf_keystream_into_equals_keystream =
  QCheck.Test.make ~name:"keystream_into = keystream (shared scratch, offsets)" ~count:200
    QCheck.(
      quad
        (string_of_size (Gen.int_range 0 60))
        (string_of_size (Gen.int_range 0 20))
        (int_range 0 300) (int_range 0 7))
    (fun (key, nonce, len, pos) ->
      let keyed = Prf.Keyed.create key in
      let scratch = Prf.Keyed.scratch () in
      let out = Bytes.make (pos + len) 'Z' in
      Prf.Keyed.keystream_into keyed scratch ~nonce out ~pos ~len;
      Bytes.sub_string out pos len = Prf.Keyed.keystream keyed ~nonce len
      (* bytes before [pos] untouched *)
      && String.for_all (Char.equal 'Z') (Bytes.sub_string out 0 pos))

let cipher_batch_equals_keyed =
  QCheck.Test.make ~name:"seal_batch/open_batch = seal_keyed/open_keyed" ~count:200
    batch_gen
    (fun (key, msgs) ->
      let ck = Cipher.key key in
      let scratch = Cipher.scratch () in
      let arr = Array.of_list msgs in
      let nonces = Array.mapi (fun i _ -> Int64.of_int (i * 7)) arr in
      let batch = Cipher.seal_batch ck scratch ~nonces arr in
      let singles = Array.mapi (fun i m -> Cipher.seal_keyed ck ~nonce:nonces.(i) m) arr in
      let same_bytes =
        Array.for_all2
          (fun a b -> String.equal (Cipher.encode a) (Cipher.encode b))
          batch singles
      in
      let reopened = Cipher.open_batch ck scratch batch in
      let roundtrip =
        Array.for_all2
          (fun opened m ->
            match opened with Some p -> String.equal p m | None -> false)
          reopened arr
      in
      same_bytes && roundtrip)

let cipher_batch_rejects_cross_frame_tamper () =
  (* Swapping tags between two frames of one batch must fail both opens:
     scratch reuse must not leak one frame's MAC state into the next. *)
  let ck = Cipher.key "batch-key" in
  let scratch = Cipher.scratch () in
  let sealed =
    Cipher.seal_batch ck scratch ~nonces:[| 1L; 2L |] [| "first frame"; "other frame" |]
  in
  let swapped =
    [| { sealed.(0) with Cipher.tag = sealed.(1).Cipher.tag };
       { sealed.(1) with Cipher.tag = sealed.(0).Cipher.tag } |]
  in
  let opened = Cipher.open_batch ck scratch swapped in
  check Alcotest.bool "both rejected" true (Array.for_all (fun o -> o = None) opened)

let batch_length_mismatch () =
  let ck = Cipher.key "k" and k = Hmac.key "k" in
  let scratch = Cipher.scratch () in
  Alcotest.check_raises "seal_batch mismatch"
    (Invalid_argument "Cipher.seal_batch: length mismatch") (fun () ->
      ignore (Cipher.seal_batch ck scratch ~nonces:[| 1L |] [| "a"; "b" |]));
  Alcotest.check_raises "verify_batch mismatch"
    (Invalid_argument "Hmac.verify_batch: length mismatch") (fun () ->
      ignore (Hmac.verify_batch k ~tags:[| "t" |] [| "a"; "b" |]))

let () =
  Alcotest.run "crypto"
    [ ( "sha256",
        [ Alcotest.test_case "empty vector" `Quick sha_empty;
          Alcotest.test_case "abc vector" `Quick sha_abc;
          Alcotest.test_case "two-block vector" `Quick sha_two_blocks;
          Alcotest.test_case "million-a vector" `Slow sha_million_a;
          Alcotest.test_case "digest length" `Quick sha_length;
          qcheck sha_streaming_equals_oneshot;
          qcheck sha_feed_string_equals_update;
          qcheck sha_copy_into_equals_copy;
          qcheck sha_distinct_inputs ] );
      ( "hmac",
        [ Alcotest.test_case "rfc4231 case 1" `Quick hmac_case1;
          Alcotest.test_case "rfc4231 case 2" `Quick hmac_case2;
          Alcotest.test_case "long key" `Quick hmac_long_key;
          qcheck hmac_verify_roundtrip;
          qcheck hmac_verify_rejects_tamper;
          qcheck hmac_keyed_equals_oneshot;
          Alcotest.test_case "keyed handle reusable" `Quick hmac_keyed_reusable;
          qcheck hmac_verify_wrong_length;
          qcheck hmac_mac_batch_equals_keyed;
          qcheck hmac_verify_batch_equals_keyed ] );
      ( "modarith",
        [ Alcotest.test_case "mulmod small reference" `Quick mulmod_matches_small;
          Alcotest.test_case "mulmod large" `Quick mulmod_large_no_overflow;
          Alcotest.test_case "fermat" `Quick powmod_fermat;
          Alcotest.test_case "miller-rabin knowns" `Quick miller_rabin_known;
          Alcotest.test_case "safe prime properties" `Quick safe_prime_properties;
          Alcotest.test_case "safe prime deterministic" `Quick safe_prime_deterministic;
          qcheck inv_mod_works ] );
      ( "dh",
        [ Alcotest.test_case "params sane" `Quick dh_params_sane;
          Alcotest.test_case "public validation" `Quick dh_validation;
          Alcotest.test_case "derive separates" `Quick dh_derive_key_separates;
          qcheck dh_agreement;
          qcheck dh_encode_roundtrip ] );
      ( "prf",
        [ Alcotest.test_case "deterministic" `Quick prf_deterministic;
          Alcotest.test_case "label separation" `Quick prf_label_separation;
          qcheck prf_channel_hop_range;
          qcheck prf_keystream_length;
          qcheck prf_keyed_equals_oneshot;
          qcheck prf_keyed_keystream_equals_oneshot;
          qcheck prf_keystream_into_equals_keystream ] );
      ( "cipher",
        [ Alcotest.test_case "rejects tamper" `Quick cipher_rejects_tamper;
          Alcotest.test_case "hides plaintext" `Quick cipher_hides_plaintext;
          qcheck cipher_roundtrip;
          qcheck cipher_rejects_wrong_key;
          qcheck cipher_wire_roundtrip;
          qcheck cipher_decode_garbage;
          qcheck cipher_keyed_equals_oneshot;
          qcheck cipher_batch_equals_keyed;
          Alcotest.test_case "batch cross-frame tamper" `Quick
            cipher_batch_rejects_cross_frame_tamper;
          Alcotest.test_case "batch length mismatch" `Quick batch_length_mismatch ] ) ]
